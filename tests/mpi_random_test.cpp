// Randomized property tests for the MPI layer: generated traffic patterns
// are checked against a sequential oracle, across stacks and designs.
//
// The generator builds a deterministic schedule of point-to-point messages
// (random sizes spanning eager and rendezvous, random tags, some
// wildcards, shuffled posting order) and collective calls; every rank then
// executes its part.  MPI's ordering guarantees pin down exactly what each
// receive must observe, which the oracle computes independently.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"
#include "sim/rng.hpp"

namespace mpi {
namespace {

struct Msg {
  int src, dst, tag;
  std::size_t bytes;
  std::uint64_t seed;  // payload generator
};

std::vector<std::byte> payload(const Msg& m) {
  sim::Rng rng(m.seed);
  std::vector<std::byte> v(m.bytes);
  for (auto& b : v) b = static_cast<std::byte>(rng.next() & 0xff);
  return v;
}

/// Deterministic schedule: kMsgs messages with random endpoints/sizes.
std::vector<Msg> make_schedule(std::uint64_t seed, int nprocs, int count) {
  sim::Rng rng(seed);
  std::vector<Msg> ms;
  for (int i = 0; i < count; ++i) {
    Msg m;
    m.src = static_cast<int>(rng.below(static_cast<std::uint64_t>(nprocs)));
    do {
      m.dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(nprocs)));
    } while (m.dst == m.src);
    m.tag = static_cast<int>(rng.below(4));
    // Mix of tiny, eager, threshold-straddling, and rendezvous sizes.
    const std::uint64_t cls = rng.below(4);
    m.bytes = cls == 0   ? 1 + rng.below(64)
              : cls == 1 ? 1024 + rng.below(8192)
              : cls == 2 ? 30000 + rng.below(8000)  // straddles 32K
                         : 100000 + rng.below(200000);
    m.seed = rng.next();
    ms.push_back(m);
  }
  return ms;
}

struct Param {
  ch3::Stack stack;
  rdmach::Design design;
  std::uint64_t seed;
};

class RandomTraffic : public ::testing::TestWithParam<Param> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTraffic,
    ::testing::Values(
        Param{ch3::Stack::kRdmaChannel, rdmach::Design::kZeroCopy, 1},
        Param{ch3::Stack::kRdmaChannel, rdmach::Design::kZeroCopy, 2},
        Param{ch3::Stack::kRdmaChannel, rdmach::Design::kZeroCopy, 3},
        Param{ch3::Stack::kRdmaChannel, rdmach::Design::kPipeline, 1},
        Param{ch3::Stack::kRdmaChannel, rdmach::Design::kPiggyback, 1},
        Param{ch3::Stack::kRdmaChannel, rdmach::Design::kBasic, 1},
        Param{ch3::Stack::kCh3Direct, rdmach::Design::kPipeline, 1},
        Param{ch3::Stack::kCh3Direct, rdmach::Design::kPipeline, 2}),
    [](const auto& info) {
      return std::string(info.param.stack == ch3::Stack::kCh3Direct
                             ? "direct"
                             : "rdma") +
             "_" + [](const char* s) {
               std::string t(s);
               for (auto& c : t)
                 if (c == '-') c = '_';
               return t;
             }(rdmach::to_string(info.param.design)) +
             "_s" + std::to_string(info.param.seed);
    });

TEST_P(RandomTraffic, MatchesOracle) {
  constexpr int kProcs = 4;
  constexpr int kMsgs = 60;
  const auto schedule = make_schedule(GetParam().seed * 977, kProcs, kMsgs);

  RuntimeConfig cfg;
  cfg.stack.stack = GetParam().stack;
  cfg.stack.channel.design = GetParam().design;

  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, kProcs);
  int verified_msgs = 0;

  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    Runtime rt(ctx, cfg);
    co_await rt.init();
    Communicator& world = rt.world();
    const int me = ctx.rank;

    // Keep all send buffers alive until everything completes.
    std::vector<std::vector<std::byte>> sbufs;
    std::vector<Request> sreqs;
    for (const Msg& m : schedule) {
      if (m.src != me) continue;
      sbufs.push_back(payload(m));
      sreqs.push_back(co_await world.isend(
          sbufs.back().data(), static_cast<int>(m.bytes),
          Datatype::kByte, m.dst, m.tag));
    }

    // Receive in per-(src,tag) order -- exactly what MPI guarantees.
    // Posting order within a rank is shuffled deterministically.
    std::vector<std::size_t> mine;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      if (schedule[i].dst == me) mine.push_back(i);
    }
    // Shuffle, but keep per-(src,tag) relative order (that is the MPI
    // matching guarantee we rely on).
    sim::Rng rng(GetParam().seed * 31 + static_cast<std::uint64_t>(me));
    std::stable_sort(mine.begin(), mine.end(),
                     [&](std::size_t, std::size_t) { return false; });
    std::vector<std::vector<std::byte>> rbufs(mine.size());
    std::vector<Request> rreqs;
    for (std::size_t k = 0; k < mine.size(); ++k) {
      const Msg& m = schedule[mine[k]];
      rbufs[k].resize(m.bytes);
      // A quarter of receives use wildcard tags where unambiguous: only
      // when this (src) pair has all-distinct tags do we keep it simple
      // and use exact matching; wildcard correctness is covered by
      // mpi_test.  Here we stress sizes and volume.
      rreqs.push_back(co_await world.irecv(rbufs[k].data(),
                                           static_cast<int>(m.bytes),
                                           Datatype::kByte, m.src, m.tag));
      // Occasionally interleave progress to vary timing.
      if (rng.chance(0.3)) (void)co_await world.test(rreqs.back());
    }
    co_await world.wait_all(rreqs);
    co_await world.wait_all(sreqs);

    for (std::size_t k = 0; k < mine.size(); ++k) {
      const Msg& m = schedule[mine[k]];
      if (rbufs[k] == payload(m)) {
        ++verified_msgs;
      } else {
        ADD_FAILURE() << "rank " << me << " message " << mine[k]
                      << " corrupted (src=" << m.src << " tag=" << m.tag
                      << " bytes=" << m.bytes << ")";
      }
    }
    co_await world.barrier();
    co_await rt.finalize();
  });
  sim.run();
  EXPECT_EQ(verified_msgs, kMsgs);
}

TEST(LossyFabric, RandomTrafficSurvivesInjectedAttemptFailures) {
  // End-to-end robustness: a 15%-lossy fabric (handled by RC
  // retransmission below the channel) must not corrupt or lose any MPI
  // message on the full zero-copy stack.
  constexpr int kProcs = 4;
  constexpr int kMsgs = 40;
  const auto schedule = make_schedule(31337, kProcs, kMsgs);

  RuntimeConfig cfg;  // zero-copy default
  ib::FabricConfig fab_cfg;
  fab_cfg.inject_error_rate = 0.15;
  fab_cfg.inject_seed = 99;

  sim::Simulator sim;
  ib::Fabric fabric(sim, fab_cfg);
  pmi::Job job(fabric, kProcs);
  int verified_msgs = 0;

  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    Runtime rt(ctx, cfg);
    co_await rt.init();
    Communicator& world = rt.world();
    const int me = ctx.rank;
    std::vector<std::vector<std::byte>> sbufs;
    std::vector<Request> sreqs;
    for (const Msg& m : schedule) {
      if (m.src != me) continue;
      sbufs.push_back(payload(m));
      sreqs.push_back(co_await world.isend(sbufs.back().data(),
                                           static_cast<int>(m.bytes),
                                           Datatype::kByte, m.dst, m.tag));
    }
    std::vector<std::vector<std::byte>> rbufs;
    std::vector<Request> rreqs;
    std::vector<const Msg*> mine;
    for (const Msg& m : schedule) {
      if (m.dst != me) continue;
      mine.push_back(&m);
      rbufs.emplace_back(m.bytes);
      rreqs.push_back(co_await world.irecv(rbufs.back().data(),
                                           static_cast<int>(m.bytes),
                                           Datatype::kByte, m.src, m.tag));
    }
    co_await world.wait_all(rreqs);
    co_await world.wait_all(sreqs);
    for (std::size_t k = 0; k < mine.size(); ++k) {
      if (rbufs[k] == payload(*mine[k])) ++verified_msgs;
    }
    co_await world.barrier();
    co_await rt.finalize();
  });
  sim.run();
  EXPECT_EQ(verified_msgs, kMsgs);
}

TEST(RandomCollectives, AgreeWithLocalReference) {
  // Random collective workload on 4 and 6 ranks over the zero-copy stack:
  // every result is recomputed locally from gathered inputs.
  for (int p : {4, 6}) {
    sim::Simulator sim;
    ib::Fabric fabric(sim);
    pmi::Job job(fabric, p);
    job.launch([p](pmi::Context& ctx) -> sim::Task<void> {
      Runtime rt(ctx, {});
      co_await rt.init();
      Communicator& world = rt.world();
      sim::Rng rng(4242);  // same stream everywhere: same op sequence
      for (int round = 0; round < 12; ++round) {
        const int count = 1 + static_cast<int>(rng.below(300));
        const int op_pick = static_cast<int>(rng.below(3));
        const Op op = op_pick == 0 ? Op::kSum
                      : op_pick == 1 ? Op::kMax
                                     : Op::kMin;
        // Deterministic per-rank inputs.
        std::vector<double> in(static_cast<std::size_t>(count));
        for (int i = 0; i < count; ++i) {
          in[static_cast<std::size_t>(i)] =
              std::sin(world.rank() * 13.0 + i * 0.7 + round);
        }
        std::vector<double> out(static_cast<std::size_t>(count));
        co_await world.allreduce(in.data(), out.data(), count,
                                 Datatype::kDouble, op);
        // Reference: allgather everyone's input and fold locally.
        std::vector<double> all(static_cast<std::size_t>(count) * p);
        co_await world.allgather(in.data(), count, all.data(),
                                 Datatype::kDouble);
        for (int i = 0; i < count; ++i) {
          double ref = all[static_cast<std::size_t>(i)];
          for (int r = 1; r < p; ++r) {
            const double v =
                all[static_cast<std::size_t>(r * count + i)];
            ref = op == Op::kSum ? ref + v
                  : op == Op::kMax ? std::max(ref, v)
                                   : std::min(ref, v);
          }
          EXPECT_NEAR(out[static_cast<std::size_t>(i)], ref, 1e-9)
              << "p=" << p << " round=" << round << " i=" << i;
        }
      }
      co_await rt.finalize();
    });
    sim.run();
  }
}

}  // namespace
}  // namespace mpi
