// Process-fault suite (`procfault` ctest label): permanent rank death and
// the ULFM-style recovery stack on top of it.
//
// Five layers, mirroring the detection -> propagation -> recovery pipeline:
//   * Obituary propagation: exactly one rank burns a retry budget convicting
//     a dead peer; everyone else reads the board and fails fast.
//   * Revocation: a revoked communicator interrupts members *blocked inside*
//     a collective, on every channel design -- nobody waits out the harness
//     deadline.
//   * Agreement: agree() terminates and stays consistent with a member dying
//     at every step of the protocol (before contributing, after
//     contributing, as the decision leader, already convicted).
//   * Shrink: the survivor communicator is re-ranked densely and actually
//     works -- its collectives are checked against locally computed oracles.
//   * Uniform error + continuation: a real mid-job death surfaces as
//     ProcFailedError on every survivor (no hang, no mixed success), and
//     revoke/agree/shrink then carry the survivors to a working 3-rank
//     communicator, on every channel design.
//   * Bit-identity: with no faults scheduled, arming the detector changes
//     nothing observable -- virtual finish times, event counts, and channel
//     byte counters are identical to the unarmed run.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "channel_test_util.hpp"
#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"
#include "rdmach/channel.hpp"
#include "sim/simulator.hpp"

namespace {

using rdmach::testutil::FaultPlan;
using rdmach::testutil::recv_all;
using rdmach::testutil::send_all;

constexpr sim::Tick kDeadline = sim::usec(30'000'000);  // 30 virtual seconds

/// Two rails so the multi-method design has its full method set available.
ib::FabricConfig two_rails() {
  ib::FabricConfig f;
  f.ports_per_hca = 2;
  return f;
}

mpi::RuntimeConfig ft_config(rdmach::Design design) {
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = design;
  cfg.stack.channel.ft_detector = true;
  return cfg;
}

class ProcFaultDesignTest : public ::testing::TestWithParam<rdmach::Design> {};

INSTANTIATE_TEST_SUITE_P(AllRdmaDesigns, ProcFaultDesignTest,
                         ::testing::Values(rdmach::Design::kBasic,
                                           rdmach::Design::kPiggyback,
                                           rdmach::Design::kPipeline,
                                           rdmach::Design::kZeroCopy,
                                           rdmach::Design::kMultiMethod,
                                           rdmach::Design::kAdaptive),
                         [](const auto& info) {
                           std::string n = rdmach::to_string(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Obituary propagation: one conviction job-wide, everyone else fails fast
// ---------------------------------------------------------------------------

TEST(ProcFault, ObituaryPropagationBurnsOneRetryBudgetJobWide) {
  // Rank 3 dies right after init.  Rank 0 walks into the corpse first and
  // pays the full conviction cost (lazy-connect attempts until the budget
  // convicts).  Ranks 1 and 2 deliberately wait for the obituary to appear
  // on the board, then try to talk to the dead rank themselves: they must
  // fail fast on the board entry -- zero recovery attempts, zero budget
  // burned -- so job-wide exactly one budget was spent on the corpse.
  FaultPlan plan;
  rdmach::ChannelConfig cfg;
  cfg.design = rdmach::Design::kBasic;
  cfg.lazy_connect = true;
  cfg.recovery_max_attempts = 3;
  cfg.ft_detector = true;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  fabric.attach_faults(&plan.schedule);
  pmi::Job job{fabric, 4};
  std::unique_ptr<rdmach::Channel> ch[4];
  bool errored[4] = {false, false, false, false};
  std::string whats[4];
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    ch[ctx.rank] = rdmach::Channel::create(ctx, cfg);
    rdmach::Channel& c = *ch[ctx.rank];
    co_await c.init();
    if (ctx.rank == 3) {
      // Process death: the network dies with the rank, and the rank-main
      // stops executing.
      plan.schedule.rank_down(FaultPlan::scope_of(3));
      co_return;
    }
    if (ctx.rank != 0) {
      // Late senders: only approach the corpse once the obituary is
      // published, so any budget they burn would be a propagation bug.
      const std::string posted =
          co_await ctx.kvs->get("ft:dead:3");
      (void)posted;
    }
    try {
      const std::byte probe{0x5a};
      co_await send_all(c, c.connection(3), &probe, 1);
    } catch (const rdmach::ChannelError& e) {
      errored[ctx.rank] = true;
      whats[ctx.rank] = e.to_string();
    }
  });
  sim.run_until(kDeadline);

  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(errored[r]) << "rank " << r << " hung against the dead rank";
  }
  std::uint64_t obits = 0, fast_fails = 0;
  for (int r = 0; r < 3; ++r) obits += ch[r]->stats().obits_posted;
  EXPECT_EQ(obits, 1u) << "exactly one rank may convict";
  EXPECT_EQ(ch[0]->stats().obits_posted, 1u);
  for (int r = 1; r < 3; ++r) {
    const rdmach::ChannelStats st = ch[r]->stats();
    fast_fails += st.obit_fast_fails;
    EXPECT_EQ(st.recoveries, 0u)
        << "rank " << r << " burned a retry budget despite the obituary";
    EXPECT_NE(whats[r].find("obituary"), std::string::npos) << whats[r];
  }
  EXPECT_GE(fast_fails, 2u);
}

// ---------------------------------------------------------------------------
// Revoke: interrupts members blocked inside a collective, on every design
// ---------------------------------------------------------------------------

TEST_P(ProcFaultDesignTest, RevokeInterruptsBlockedCollective) {
  // Ranks 1..3 enter an allreduce that can never complete (rank 0 never
  // joins).  One virtual millisecond later rank 0 revokes the communicator:
  // every blocked member must come out with RevokedError -- promptly, not
  // at the harness deadline -- and rank 0's own next collective must be
  // refused at entry.
  const mpi::RuntimeConfig cfg = ft_config(GetParam());
  sim::Simulator sim;
  ib::Fabric fabric{sim, two_rails()};
  pmi::Job job{fabric, 4};
  bool revoked_out[4] = {false, false, false, false};
  sim::Tick out_at[4] = {0, 0, 0, 0};
  sim::Tick revoke_at = 0;
  // Runtimes owned outside the rank bodies: these scenarios end without the
  // collective finalize, so per-rank teardown must wait until the whole
  // simulation has drained (a peer may still have WQEs in flight against
  // this rank's rings).
  std::vector<std::unique_ptr<mpi::Runtime>> rts(4);
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    rts[ctx.rank] = std::make_unique<mpi::Runtime>(ctx, cfg);
    mpi::Runtime& rt = *rts[ctx.rank];
    co_await rt.init();
    if (ctx.rank == 0) {
      co_await ctx.sim().delay(sim::usec(1'000));
      revoke_at = ctx.sim().now();
      rt.world().revoke();
      try {
        co_await rt.world().barrier();
      } catch (const mpi::RevokedError&) {
        revoked_out[0] = true;
        out_at[0] = ctx.sim().now();
      }
      co_return;  // a revoked world cannot finalize collectively
    }
    int in = ctx.rank, out = 0;
    try {
      co_await rt.world().allreduce(&in, &out, 1, mpi::Datatype::kInt,
                                    mpi::Op::kSum);
    } catch (const mpi::RevokedError&) {
      revoked_out[ctx.rank] = true;
      out_at[ctx.rank] = ctx.sim().now();
    }
  });
  sim.run_until(kDeadline);

  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(revoked_out[r]) << "rank " << r << " not interrupted";
  }
  // The blocked members were genuinely parked inside the collective when
  // the revocation landed, and came out promptly.
  for (int r = 1; r < 4; ++r) {
    EXPECT_GE(out_at[r], revoke_at) << "rank " << r;
    EXPECT_LT(out_at[r], revoke_at + sim::usec(100'000)) << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Agree: terminates with a member dying at every protocol step
// ---------------------------------------------------------------------------

enum class AgreeDeath {
  kSilentFromStart,          // dies before contributing
  kContributedThenSilent,    // contributes, then dies before the decision
  kLeaderContributedThenSilent,  // the decision leader dies mid-protocol
  kPreConvicted,             // already on the obituary board at entry
};

struct AgreeOutcome {
  bool done[4] = {false, false, false, false};
  int value[4] = {-1, -1, -1, -1};
};

AgreeOutcome run_agree_death(AgreeDeath death) {
  const mpi::RuntimeConfig cfg = ft_config(rdmach::Design::kBasic);
  const int victim =
      death == AgreeDeath::kLeaderContributedThenSilent ? 0 : 3;
  AgreeOutcome out;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job{fabric, 4};
  std::vector<std::unique_ptr<mpi::Runtime>> rts(4);
  job.launch([&, victim, death](pmi::Context& ctx) -> sim::Task<void> {
    rts[ctx.rank] = std::make_unique<mpi::Runtime>(ctx, cfg);
    mpi::Runtime& rt = *rts[ctx.rank];
    co_await rt.init();
    if (ctx.rank == victim) {
      if (death == AgreeDeath::kContributedThenSilent ||
          death == AgreeDeath::kLeaderContributedThenSilent) {
        // Whitebox: the member got as far as publishing its contribution
        // (world context 0, first agree -> sequence 1) and then died.
        ctx.kvs->put("agr:0:1:c:" + std::to_string(ctx.rank), "5");
      }
      co_return;  // silent forever after
    }
    if (death == AgreeDeath::kPreConvicted && ctx.rank == 0) {
      if (ctx.kvs->post_obit(victim)) pmi::wake_all_ranks(ctx);
    }
    const int got = co_await rt.world().agree(7);
    out.value[ctx.rank] = got;
    out.done[ctx.rank] = true;
  });
  sim.run_until(kDeadline);
  return out;
}

TEST(ProcFault, AgreeTerminatesWithDeathAtEveryProtocolStep) {
  struct Case {
    AgreeDeath death;
    int expect;
    const char* name;
  };
  // A member that dies *after* contributing is indistinguishable from a
  // slow one that made it: its value is folded in and no failure is
  // flagged.  Every other death step must both exclude the corpse and set
  // the kAgreeFlagDead bit.
  const Case cases[] = {
      {AgreeDeath::kSilentFromStart,
       7 | mpi::Communicator::kAgreeFlagDead, "silent-from-start"},
      {AgreeDeath::kContributedThenSilent, 7 & 5, "contributed-then-silent"},
      {AgreeDeath::kLeaderContributedThenSilent,
       (7 & 5) | mpi::Communicator::kAgreeFlagDead, "leader-died"},
      {AgreeDeath::kPreConvicted,
       7 | mpi::Communicator::kAgreeFlagDead, "pre-convicted"},
  };
  for (const Case& c : cases) {
    const int victim =
        c.death == AgreeDeath::kLeaderContributedThenSilent ? 0 : 3;
    const AgreeOutcome out = run_agree_death(c.death);
    for (int r = 0; r < 4; ++r) {
      if (r == victim) continue;
      ASSERT_TRUE(out.done[r]) << c.name << ": rank " << r << " hung";
      EXPECT_EQ(out.value[r], c.expect) << c.name << ": rank " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Shrink: the survivor communicator is re-ranked and actually works
// ---------------------------------------------------------------------------

TEST(ProcFault, ShrinkProducesWorkingReRankedCommunicator) {
  // Rank 1 dies after init.  The survivors agree (which convicts the silent
  // member), shrink, and then drive the new 3-rank communicator through
  // barrier / allreduce / bcast, each checked against a locally computed
  // oracle over the surviving world ranks {0, 2, 3}.
  const mpi::RuntimeConfig cfg = ft_config(rdmach::Design::kBasic);
  constexpr int kVictim = 1;
  constexpr int kVec = 8;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job{fabric, 4};
  bool done[4] = {false, false, false, false};
  std::vector<std::unique_ptr<mpi::Runtime>> rts(4);
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    rts[ctx.rank] = std::make_unique<mpi::Runtime>(ctx, cfg);
    mpi::Runtime& rt = *rts[ctx.rank];
    co_await rt.init();
    if (ctx.rank == kVictim) co_return;

    const int flag = co_await rt.world().agree(0);
    EXPECT_NE(flag & mpi::Communicator::kAgreeFlagDead, 0)
        << "agree did not notice the death";
    const std::vector<int> failed = rt.world().failed_ranks();
    EXPECT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed.empty() ? -1 : failed[0], kVictim);

    mpi::Communicator* sc = co_await rt.world().shrink();
    EXPECT_NE(sc, nullptr);
    if (sc == nullptr) co_return;
    EXPECT_EQ(sc->size(), 3);
    if (sc->size() != 3) co_return;
    // Dense re-rank in old relative order: world {0, 2, 3} -> {0, 1, 2}.
    const int expect_rank = ctx.rank == 0 ? 0 : ctx.rank - 1;
    EXPECT_EQ(sc->rank(), expect_rank);
    EXPECT_EQ(sc->world_rank(sc->rank()), ctx.rank);

    co_await sc->barrier();

    int v[kVec], sum[kVec];
    for (int i = 0; i < kVec; ++i) v[i] = ctx.rank * 1000 + i;
    co_await sc->allreduce(v, sum, kVec, mpi::Datatype::kInt, mpi::Op::kSum);
    for (int i = 0; i < kVec; ++i) {
      EXPECT_EQ(sum[i], (0 + 2 + 3) * 1000 + 3 * i) << "element " << i;
    }

    int root_word = sc->rank() == 0 ? 4242 : -1;
    co_await sc->bcast(&root_word, 1, mpi::Datatype::kInt, 0);
    EXPECT_EQ(root_word, 4242);

    done[ctx.rank] = true;
  });
  sim.run_until(kDeadline);
  for (int r = 0; r < 4; ++r) {
    if (r == kVictim) continue;
    EXPECT_TRUE(done[r]) << "survivor " << r << " hung";
  }
}

// ---------------------------------------------------------------------------
// Uniform error + shrink-and-continue, end to end, on every design
// ---------------------------------------------------------------------------

TEST_P(ProcFaultDesignTest, DeadMemberUniformErrorThenShrinkContinues) {
  // Rank 3 dies for real (its node's QPs fail every WQE) after init.  Rank
  // 0 discovers it the hard way -- a send whose retry budget convicts --
  // and ranks 1..2 at the collective entry check once the obituary lands.
  // Differential uniformity: every survivor must surface ProcFailedError
  // (never a hang, never a silent success), and the standard
  // revoke/agree/shrink sequence must then deliver a working 3-rank
  // communicator on which an allreduce matches the oracle.
  mpi::RuntimeConfig cfg = ft_config(GetParam());
  cfg.stack.channel.recovery_max_attempts = 4;
  FaultPlan plan;
  sim::Simulator sim;
  ib::Fabric fabric{sim, two_rails()};
  fabric.attach_faults(&plan.schedule);
  pmi::Job job{fabric, 4};
  bool proc_failed[4] = {false, false, false, false};
  bool collective_succeeded[4] = {false, false, false, false};
  bool continued[4] = {false, false, false, false};
  std::vector<std::unique_ptr<mpi::Runtime>> rts(4);
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    rts[ctx.rank] = std::make_unique<mpi::Runtime>(ctx, cfg);
    mpi::Runtime& rt = *rts[ctx.rank];
    co_await rt.init();
    if (ctx.rank == 3) {
      plan.schedule.rank_down(FaultPlan::scope_of(3));
      co_return;
    }
    mpi::Communicator& world = rt.world();
    try {
      if (ctx.rank == 0) {
        // Rendezvous-sized so the send needs the corpse's half of the
        // handshake on every design -- a tiny eager send can complete
        // locally before the failure has anywhere to surface.
        std::vector<int> big(64 * 1024, 99);
        co_await world.send(big.data(), static_cast<int>(big.size()),
                            mpi::Datatype::kInt, 3, 7);
      } else {
        // Enter only once the obituary is on the board, so the error comes
        // from the uniform entry check, not a second conviction.
        const std::string posted = co_await ctx.kvs->get("ft:dead:3");
        (void)posted;
        int in = ctx.rank, out = 0;
        co_await world.allreduce(&in, &out, 1, mpi::Datatype::kInt,
                                 mpi::Op::kSum);
      }
      collective_succeeded[ctx.rank] = true;
    } catch (const mpi::ProcFailedError& e) {
      proc_failed[ctx.rank] = true;
      EXPECT_EQ(e.world_rank(), 3);
    }
    if (!proc_failed[ctx.rank]) co_return;

    // Survivors rendezvous on the board before anyone revokes, so the error
    // each one observed above is the entry check's ProcFailedError -- never
    // a racing peer's RevokedError.
    ctx.kvs->put("uerr:" + std::to_string(ctx.rank), "1");
    for (int r = 0; r < 3; ++r) {
      const std::string seen =
          co_await ctx.kvs->get("uerr:" + std::to_string(r));
      (void)seen;
    }

    // The ULFM recovery idiom.
    world.revoke();
    const int flag = co_await world.agree(0);
    EXPECT_NE(flag & mpi::Communicator::kAgreeFlagDead, 0);
    mpi::Communicator* sc = co_await world.shrink();
    EXPECT_NE(sc, nullptr);
    if (sc == nullptr) co_return;
    EXPECT_EQ(sc->size(), 3);
    if (sc->size() != 3) co_return;
    int in = ctx.rank, out = 0;
    co_await sc->allreduce(&in, &out, 1, mpi::Datatype::kInt, mpi::Op::kSum);
    EXPECT_EQ(out, 0 + 1 + 2);  // surviving world ranks
    continued[ctx.rank] = true;
  });
  sim.run_until(kDeadline);

  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(proc_failed[r]) << "survivor " << r << " saw no error";
    EXPECT_FALSE(collective_succeeded[r])
        << "survivor " << r << " succeeded against a dead member";
    EXPECT_TRUE(continued[r]) << "survivor " << r << " failed to continue";
  }
}

// ---------------------------------------------------------------------------
// Bit-identity: arming the detector costs nothing on a fault-free run
// ---------------------------------------------------------------------------

struct TraceDigest {
  sim::Tick finish[4] = {0, 0, 0, 0};
  std::uint64_t events = 0;
  std::uint64_t eager_ops = 0, eager_bytes = 0;
  std::uint64_t rndv_ops = 0, rndv_bytes = 0;
  std::uint64_t obits = 0;
  long long sums = 0;
};

TraceDigest run_trace(bool armed) {
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = rdmach::Design::kPiggyback;
  cfg.stack.channel.ft_detector = armed;
  TraceDigest d;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job{fabric, 4};
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<int> block(4096);
    for (std::size_t i = 0; i < block.size(); ++i) {
      block[i] = ctx.rank * 7 + static_cast<int>(i);
    }
    std::vector<int> echo(block.size());
    for (int round = 0; round < 3; ++round) {
      int in = ctx.rank + round, out = 0;
      co_await world.allreduce(&in, &out, 1, mpi::Datatype::kInt,
                               mpi::Op::kSum);
      d.sums += out;
      const int next = (ctx.rank + 1) % 4;
      const int prev = (ctx.rank + 3) % 4;
      co_await world.sendrecv(block.data(), static_cast<int>(block.size()),
                              mpi::Datatype::kInt, next, round, echo.data(),
                              static_cast<int>(echo.size()),
                              mpi::Datatype::kInt, prev, round);
      d.sums += echo[1];
      co_await world.barrier();
    }
    const rdmach::ChannelStats st = rt.engine().channel().channel_stats();
    d.eager_ops += st.eager.ops;
    d.eager_bytes += st.eager.bytes;
    d.rndv_ops += st.rndv_write.ops + st.rndv_read.ops;
    d.rndv_bytes += st.rndv_write.bytes + st.rndv_read.bytes;
    d.obits += st.obits_posted + st.obit_fast_fails;
    d.finish[ctx.rank] = ctx.sim().now();
    co_await rt.finalize();
  });
  sim.run_until(kDeadline);
  d.events = sim.stats().events_dispatched;
  return d;
}

TEST(ProcFault, FaultFreeTraceBitIdenticalWithDetectorArmed) {
  const TraceDigest off = run_trace(false);
  const TraceDigest on = run_trace(true);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(off.finish[r], on.finish[r]) << "rank " << r << " finish time";
    EXPECT_GT(off.finish[r], 0) << "rank " << r << " never finished";
  }
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.eager_ops, on.eager_ops);
  EXPECT_EQ(off.eager_bytes, on.eager_bytes);
  EXPECT_EQ(off.rndv_ops, on.rndv_ops);
  EXPECT_EQ(off.rndv_bytes, on.rndv_bytes);
  EXPECT_EQ(off.sums, on.sums);
  EXPECT_EQ(on.obits, 0u);
}

}  // namespace
