// NAS-under-fault suite (`nasfault` ctest label): phased fault campaigns
// on real kernels, the recovery watchdog's no-wedge guarantee, and the
// bounded-cost contract.
//
// Three layers:
//   * Watchdog: a recovery episode that can never complete (every rail of
//     both nodes dead mid-replay, attempt budget effectively infinite)
//     must surface ChannelError::kDead with a diagnostic RecoverySnapshot
//     within the virtual-time deadline, on every channel design -- never a
//     hang.  Before the watchdog this scenario spun in the retry loop
//     until the harness deadline.
//   * Standard mix on real kernels: IS and CG class A on 4 nodes complete
//     with numerically verified results under the combined seeded mix, and
//     the Mop/s loss against a clean run stays within the 25% bound
//     (bench/nas_fault.cpp reports the full table).
//   * Campaign soak: 60 seeded random campaigns (class S IS, rotating over
//     all six designs and all four mixes) each end in a verified result or
//     a clean per-rank transport error -- no schedule may wedge a run.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "campaign_util.hpp"
#include "channel_test_util.hpp"
#include "ib/fabric.hpp"
#include "pmi/pmi.hpp"
#include "rdmach/channel.hpp"
#include "sim/campaign.hpp"
#include "sim/simulator.hpp"

namespace {

using rdmach::testutil::FaultPlan;
using rdmach::testutil::Traffic;

constexpr sim::Tick kDeadline = sim::usec(5'000'000);  // 5 virtual seconds

// ---------------------------------------------------------------------------
// Watchdog: stuck recovery surfaces kDead + snapshot, bounded in time
// ---------------------------------------------------------------------------

struct WatchdogRun {
  bool send_done = false, recv_done = false;
  bool send_error = false, recv_error = false;
  rdmach::ChannelError::Kind send_kind = rdmach::ChannelError::kDead;
  rdmach::ChannelError::Kind recv_kind = rdmach::ChannelError::kDead;
  bool send_snapshot = false, recv_snapshot = false;
  rdmach::RecoverySnapshot first_snapshot;
  sim::Tick first_error_time = 0;
  std::uint64_t watchdog_trips = 0;
};

/// Streams `traffic` rank0 -> rank1 under `plan`; same deadline-bounded
/// shape as the chaos harness, plus snapshot and error-time capture.
WatchdogRun run_watchdog(rdmach::Design design, const Traffic& traffic,
                         FaultPlan& plan, rdmach::ChannelConfig cfg) {
  WatchdogRun rr;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  fabric.attach_faults(&plan.schedule);
  pmi::Job job{fabric, 2};
  cfg.design = design;
  std::unique_ptr<rdmach::Channel> ch[2];
  std::vector<std::byte> received(traffic.total());

  auto note_error = [&](const rdmach::ChannelError& e, bool sender) {
    (sender ? rr.send_error : rr.recv_error) = true;
    (sender ? rr.send_kind : rr.recv_kind) = e.kind();
    (sender ? rr.send_snapshot : rr.recv_snapshot) = e.has_snapshot();
    if (rr.first_error_time == 0) {
      rr.first_error_time = sim.now();
      if (e.has_snapshot()) rr.first_snapshot = e.snapshot();
    }
  };

  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    ch[ctx.rank] = rdmach::Channel::create(ctx, cfg);
    rdmach::Channel& c = *ch[ctx.rank];
    co_await c.init();
    rdmach::Connection& conn = c.connection(1 - ctx.rank);
    if (ctx.rank == 0) {
      try {
        std::size_t off = 0;
        for (const std::size_t sz : traffic.sizes) {
          co_await rdmach::testutil::send_all(c, conn,
                                              traffic.bytes.data() + off, sz);
          off += sz;
        }
        std::byte token{};
        co_await rdmach::testutil::recv_all(c, conn, &token, 1);
        rr.send_done = true;
      } catch (const rdmach::ChannelError& e) {
        note_error(e, /*sender=*/true);
      }
    } else {
      try {
        co_await rdmach::testutil::recv_all(c, conn, received.data(),
                                            received.size());
        const std::byte token{0x1};
        co_await rdmach::testutil::send_all(c, conn, &token, 1);
        rr.recv_done = true;
      } catch (const rdmach::ChannelError& e) {
        note_error(e, /*sender=*/false);
      }
    }
  });
  sim.run_until(kDeadline);
  for (int r = 0; r < 2; ++r) {
    if (ch[r] != nullptr) rr.watchdog_trips += ch[r]->stats().watchdog_trips;
  }
  return rr;
}

class NasFaultDesignTest : public ::testing::TestWithParam<rdmach::Design> {};

INSTANTIATE_TEST_SUITE_P(AllRdmaDesigns, NasFaultDesignTest,
                         ::testing::Values(rdmach::Design::kBasic,
                                           rdmach::Design::kPiggyback,
                                           rdmach::Design::kPipeline,
                                           rdmach::Design::kZeroCopy,
                                           rdmach::Design::kMultiMethod,
                                           rdmach::Design::kAdaptive),
                         [](const auto& info) {
                           std::string n = rdmach::to_string(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(NasFaultDesignTest, StuckRecoverySurfacesDeadWithSnapshot) {
  // Both nodes lose their only rail mid-stream: every replay and re-issued
  // WQE dies, so no recovery epoch can ever complete.  The attempt budget
  // is effectively infinite -- before the watchdog this spun in the
  // backoff loop for the whole 5 virtual seconds.  The watchdog must
  // convert the stuck episode into kDead with a diagnostic snapshot within
  // its epoch deadline, and no rank may still be running at the harness
  // deadline.
  const Traffic traffic = Traffic::make(/*seed=*/400, /*messages=*/30,
                                        /*min_len=*/200, /*max_len=*/2000);
  FaultPlan plan;
  plan.rail_down(0, 0, /*from=*/6).rail_down(1, 0, /*from=*/6);
  rdmach::ChannelConfig cfg;
  cfg.recovery_max_attempts = 1'000'000;
  cfg.recovery_epoch_deadline = sim::usec(3'000);
  WatchdogRun rr = run_watchdog(GetParam(), traffic, plan, cfg);

  // No wedge: every rank either finished or failed clean.
  EXPECT_TRUE(rr.send_done || rr.send_error);
  EXPECT_TRUE(rr.recv_done || rr.recv_error);
  ASSERT_TRUE(rr.send_error || rr.recv_error);
  EXPECT_GE(rr.watchdog_trips, 1u);
  // The first failure carries the episode diagnostics.
  ASSERT_TRUE(rr.send_error ? rr.send_snapshot : rr.recv_snapshot);
  if (rr.send_error) EXPECT_EQ(rr.send_kind, rdmach::ChannelError::kDead);
  if (rr.recv_error) EXPECT_EQ(rr.recv_kind, rdmach::ChannelError::kDead);
  EXPECT_EQ(rr.first_snapshot.stage.rfind("watchdog:", 0), 0u)
      << rr.first_snapshot.to_string();
  EXPECT_EQ(rr.first_snapshot.live_rails, 0);
  EXPECT_GE(rr.first_snapshot.total_rails, 1);
  // Bounded: the trip lands within a small multiple of the epoch deadline,
  // not at the harness deadline.
  EXPECT_GT(rr.first_error_time, 0);
  EXPECT_LT(rr.first_error_time, sim::usec(1'000'000));
}

TEST(NasFaultWatchdog, BudgetExhaustionCarriesSnapshotWhenDisabled) {
  // recovery_epoch_deadline = 0 disables the watchdog; the classic attempt
  // budget still bounds the episode and its error now carries the same
  // diagnostic snapshot, tagged with the retry-budget stage.
  const Traffic traffic = Traffic::make(/*seed=*/401, /*messages=*/20,
                                        /*min_len=*/100, /*max_len=*/1000);
  FaultPlan plan;
  plan.kill_from(0, /*from=*/6);
  rdmach::ChannelConfig cfg;
  cfg.recovery_max_attempts = 3;
  cfg.recovery_epoch_deadline = 0;
  WatchdogRun rr =
      run_watchdog(rdmach::Design::kPiggyback, traffic, plan, cfg);
  ASSERT_TRUE(rr.send_error);
  EXPECT_EQ(rr.send_kind, rdmach::ChannelError::kDead);
  ASSERT_TRUE(rr.send_snapshot);
  EXPECT_EQ(rr.first_snapshot.stage, "retry-budget");
  EXPECT_EQ(rr.watchdog_trips, 0u);
}

// ---------------------------------------------------------------------------
// Standard mix on real kernels: verified results, bounded cost
// ---------------------------------------------------------------------------

void expect_bounded(const std::string& kernel) {
  const mpi::RuntimeConfig cfg =
      benchutil::campaign_config(rdmach::Design::kZeroCopy);
  const ib::FabricConfig fabric = benchutil::two_rail_fabric();
  const benchutil::CampaignOutcome clean =
      benchutil::run_nas_campaign(kernel, 4, nas::Class::A, cfg, nullptr,
                                  fabric);
  ASSERT_TRUE(clean.completed);
  ASSERT_TRUE(clean.result.verified);

  sim::FaultCampaign campaign(/*seed=*/2026);
  benchutil::mix_combined(campaign, benchutil::phase_of(kernel), 4);
  const benchutil::CampaignOutcome r = benchutil::run_nas_campaign(
      kernel, 4, nas::Class::A, cfg, &campaign, fabric);
  EXPECT_FALSE(r.wedged);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.errors, 0);
  ASSERT_TRUE(r.result.verified) << r.result.detail;
  EXPECT_GE(r.faults_armed, 1u);
  EXPECT_GE(r.stats.recoveries, 1u);  // the mix actually bit
  const double loss = 100.0 * (1.0 - r.result.mops / clean.result.mops);
  EXPECT_LE(loss, 25.0) << "clean " << clean.result.mops << " Mop/s, faulted "
                        << r.result.mops << " Mop/s";
}

TEST(NasFaultCampaign, IsClassAStandardMixVerifiedAndBounded) {
  expect_bounded("is");
}

TEST(NasFaultCampaign, CgClassAStandardMixVerifiedAndBounded) {
  expect_bounded("cg");
}

// ---------------------------------------------------------------------------
// Randomized campaign soak: never wedged, never silently wrong
// ---------------------------------------------------------------------------

TEST(NasFaultCampaign, SeededCampaignSoakTerminatesCleanOnEveryDesign) {
  const rdmach::Design designs[] = {
      rdmach::Design::kBasic,     rdmach::Design::kPiggyback,
      rdmach::Design::kPipeline,  rdmach::Design::kZeroCopy,
      rdmach::Design::kMultiMethod, rdmach::Design::kAdaptive,
  };
  const auto& mixes = benchutil::standard_mixes();
  const ib::FabricConfig fabric = benchutil::two_rail_fabric();
  // Wall-clock budget: the soak normally takes a couple of seconds, but a
  // pathological schedule (or a sanitizer build on a loaded machine) must
  // not turn it into the suite's long pole.  Seeds are visited in order, so
  // a capped run still covers a deterministic prefix.
  const auto wall_start = std::chrono::steady_clock::now();
  constexpr auto kWallBudget = std::chrono::seconds(120);
  std::uint64_t ran = 0;
  int completed_verified = 0, clean_errors = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    if (std::chrono::steady_clock::now() - wall_start > kWallBudget) break;
    ++ran;
    const rdmach::Design design = designs[seed % 6];
    const mpi::RuntimeConfig cfg = benchutil::campaign_config(design);
    sim::FaultCampaign campaign(seed);
    mixes[seed % mixes.size()].second(campaign, "is.iter", 4);
    // One extra seed-jittered kill so no two campaigns hit alike.
    campaign.at_phase("is.iter")
        .times(2)
        .jitter(32)
        .kill(static_cast<int>(seed % 4));
    const benchutil::CampaignOutcome r = benchutil::run_nas_campaign(
        "is", 4, nas::Class::S, cfg, &campaign, fabric,
        /*deadline=*/sim::usec(30'000'000));
    ASSERT_FALSE(r.wedged) << "seed " << seed << " design "
                           << rdmach::to_string(design);
    ASSERT_TRUE(r.completed) << "seed " << seed;
    if (r.errors == 0) {
      EXPECT_TRUE(r.result.verified)
          << "seed " << seed << ": completed but wrong answer";
      ++completed_verified;
    } else {
      ASSERT_FALSE(r.error_whats.empty());
      ++clean_errors;
    }
  }
  // The soak is useful only if most campaigns actually complete, and the
  // wall-clock cap may only trim the tail, never gut the suite.
  EXPECT_EQ(completed_verified + clean_errors, static_cast<int>(ran));
  EXPECT_GE(ran, 12u) << "wall-clock cap cut the soak below usefulness";
  EXPECT_GE(completed_verified, static_cast<int>(ran * 2 / 3));
}

}  // namespace
