// Tests for the SDP-style socket layer: blocking stream semantics
// (partial recv, exact framing), zero-copy pass-through for large sends,
// and a small RPC-style exchange.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ib/fabric.hpp"
#include "pmi/pmi.hpp"
#include "sdp/sdp.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace sdp {
namespace {

struct SdpRig {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job;
  rdmach::ChannelConfig cfg;

  explicit SdpRig(int n) : job(fabric, n) {}

  using Body = std::function<sim::Task<void>(Endpoint&, pmi::Context&)>;

  void run(Body body) {
    job.launch([this, body](pmi::Context& ctx) -> sim::Task<void> {
      auto ep = co_await Endpoint::create(ctx, cfg);
      co_await body(*ep, ctx);
      co_await ep->close();
    });
    sim.run();
  }
};

TEST(Sdp, StreamDeliversBytesInOrder) {
  SdpRig rig(2);
  rig.run([](Endpoint& ep, pmi::Context&) -> sim::Task<void> {
    if (ep.rank() == 0) {
      const char* parts[] = {"hello ", "stream ", "world"};
      for (const char* p : parts) {
        co_await ep.stream(1).send(p, std::strlen(p));
      }
    } else {
      char buf[32] = {};
      co_await ep.stream(0).recv_exact(buf, 18);
      EXPECT_STREQ(buf, "hello stream world");
    }
  });
}

TEST(Sdp, RecvReturnsPartialDataLikeASocket) {
  SdpRig rig(2);
  rig.run([](Endpoint& ep, pmi::Context& ctx) -> sim::Task<void> {
    if (ep.rank() == 0) {
      std::byte a[100];
      std::memset(a, 1, sizeof(a));
      co_await ep.stream(1).send(a, 100);
      co_await ctx.sim().delay(sim::usec(100));
      co_await ep.stream(1).send(a, 100);
    } else {
      // Ask for 512 bytes: a socket returns what has arrived (100), not
      // blocks for the full request.
      std::byte buf[512];
      const std::size_t got = co_await ep.stream(0).recv(buf, 512);
      EXPECT_EQ(got, 100u);
      const std::size_t got2 = co_await ep.stream(0).recv(buf, 512);
      EXPECT_EQ(got2, 100u);
    }
  });
}

TEST(Sdp, LargeSendRidesTheZeroCopyPath) {
  SdpRig rig(2);
  sim::TraceSink sink;
  rig.fabric.attach_tracer(&sink);
  constexpr std::size_t kN = 1 << 20;
  rig.run([](Endpoint& ep, pmi::Context&) -> sim::Task<void> {
    static std::vector<std::byte> big(kN, std::byte{0x42});
    if (ep.rank() == 0) {
      co_await ep.stream(1).send(big.data(), kN);
    } else {
      std::vector<std::byte> got(kN);
      co_await ep.stream(0).recv_exact(got.data(), kN);
      EXPECT_EQ(got, big);
    }
  });
  // SDP Z-Copy: the payload moved by RDMA read, not through the rings.
  EXPECT_EQ(sink.count("rdma_read"), 1u);
}

TEST(Sdp, RequestResponseRpcAcrossFourRanks) {
  // A tiny RPC pattern: rank 0 is the server, everyone else sends a
  // length-prefixed request and reads a doubled response.
  SdpRig rig(4);
  rig.run([](Endpoint& ep, pmi::Context&) -> sim::Task<void> {
    if (ep.rank() == 0) {
      for (int c = 1; c < ep.size(); ++c) {
        std::uint32_t len = 0;
        co_await ep.stream(c).recv_exact(&len, 4);
        std::vector<std::byte> req(len);
        co_await ep.stream(c).recv_exact(req.data(), len);
        std::vector<std::byte> resp(req);
        resp.insert(resp.end(), req.begin(), req.end());  // echo twice
        const std::uint32_t rlen = static_cast<std::uint32_t>(resp.size());
        co_await ep.stream(c).send(&rlen, 4);
        co_await ep.stream(c).send(resp.data(), resp.size());
      }
    } else {
      sim::Rng rng(static_cast<std::uint64_t>(ep.rank()));
      std::vector<std::byte> req(64 + rng.below(400));
      for (auto& b : req) b = static_cast<std::byte>(rng.next());
      const std::uint32_t len = static_cast<std::uint32_t>(req.size());
      co_await ep.stream(0).send(&len, 4);
      co_await ep.stream(0).send(req.data(), req.size());
      std::uint32_t rlen = 0;
      co_await ep.stream(0).recv_exact(&rlen, 4);
      EXPECT_EQ(rlen, 2 * len);
      std::vector<std::byte> resp(rlen);
      co_await ep.stream(0).recv_exact(resp.data(), rlen);
      EXPECT_TRUE(std::equal(req.begin(), req.end(), resp.begin()));
      EXPECT_TRUE(std::equal(req.begin(), req.end(),
                             resp.begin() + static_cast<std::ptrdiff_t>(len)));
    }
  });
}

}  // namespace
}  // namespace sdp
