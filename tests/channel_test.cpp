// Tests for the RDMA Channel designs: correctness of the FIFO pipe
// semantics across all five implementations (differential against the
// shared-memory reference), protocol-level properties (RDMA write counts,
// zero-copy behaviour, piggybacked tail updates), latency/bandwidth
// calibration, and the registration cache.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "channel_test_util.hpp"
#include "ib/fabric.hpp"
#include "pmi/pmi.hpp"
#include "rdmach/adaptive_channel.hpp"
#include "rdmach/basic_channel.hpp"
#include "rdmach/channel.hpp"
#include "rdmach/piggyback_channel.hpp"
#include "rdmach/protocol_selector.hpp"
#include "rdmach/reg_cache.hpp"
#include "rdmach/zerocopy_channel.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace rdmach {
namespace {

using testutil::recv_all;
using testutil::send_all;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next() & 0xff);
  return v;
}

/// Two-rank harness running sender/receiver bodies over a fresh channel.
struct Duo {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job{fabric, 2};
  ChannelConfig cfg;
  std::unique_ptr<Channel> ch[2];

  explicit Duo(Design d, ChannelConfig base = {}) {
    cfg = base;
    cfg.design = d;
  }

  using Body = std::function<sim::Task<void>(Channel&, Connection&)>;

  void run(Body rank0, Body rank1) {
    job.launch([this, rank0, rank1](pmi::Context& ctx) -> sim::Task<void> {
      ch[ctx.rank] = Channel::create(ctx, cfg);
      Channel& c = *ch[ctx.rank];
      co_await c.init();
      co_await (ctx.rank == 0 ? rank0 : rank1)(c, c.connection(1 - ctx.rank));
      co_await c.finalize();
    });
    sim.run();
  }
};

class DesignTest : public ::testing::TestWithParam<Design> {};

INSTANTIATE_TEST_SUITE_P(AllDesigns, DesignTest,
                         ::testing::Values(Design::kShm, Design::kBasic,
                                           Design::kPiggyback,
                                           Design::kPipeline,
                                           Design::kZeroCopy,
                                           Design::kAdaptive),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

TEST_P(DesignTest, SmallMessageRoundTrips) {
  Duo duo(GetParam());
  auto msg = pattern(64, 1);
  std::vector<std::byte> echo(64);
  duo.run(
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await send_all(ch, c, msg.data(), msg.size());
        co_await recv_all(ch, c, echo.data(), echo.size());
      },
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        std::vector<std::byte> buf(64);
        co_await recv_all(ch, c, buf.data(), buf.size());
        co_await send_all(ch, c, buf.data(), buf.size());
      });
  EXPECT_EQ(echo, msg);
}

TEST_P(DesignTest, MegabyteTransferIsByteExact) {
  Duo duo(GetParam());
  constexpr std::size_t kN = 1 << 20;
  auto msg = pattern(kN, 2);
  std::vector<std::byte> got(kN);
  duo.run(
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await send_all(ch, c, msg.data(), msg.size());
      },
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await recv_all(ch, c, got.data(), got.size());
      });
  EXPECT_EQ(got, msg);
}

TEST_P(DesignTest, StreamIsFifoAcrossManyMessages) {
  // Property test: a stream chopped into random put sizes and drained with
  // random get sizes must reassemble exactly, for every design.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    Duo duo(GetParam());
    constexpr std::size_t kTotal = 400 * 1024;
    auto msg = pattern(kTotal, seed);
    std::vector<std::byte> got(kTotal);
    duo.run(
        [&](Channel& ch, Connection& c) -> sim::Task<void> {
          sim::Rng rng(seed * 7);
          std::size_t off = 0;
          while (off < kTotal) {
            const std::size_t n = std::min<std::size_t>(
                kTotal - off, 1 + rng.below(60'000));
            co_await send_all(ch, c, msg.data() + off, n);
            off += n;
          }
        },
        [&](Channel& ch, Connection& c) -> sim::Task<void> {
          sim::Rng rng(seed * 13);
          std::size_t off = 0;
          while (off < kTotal) {
            const std::size_t n = std::min<std::size_t>(
                kTotal - off, 1 + rng.below(50'000));
            co_await recv_all(ch, c, got.data() + off, n);
            off += n;
          }
        });
    ASSERT_EQ(got, msg) << "design=" << to_string(GetParam())
                        << " seed=" << seed;
  }
}

TEST_P(DesignTest, BidirectionalTrafficDoesNotDeadlock) {
  Duo duo(GetParam());
  constexpr std::size_t kN = 256 * 1024;
  auto m0 = pattern(kN, 21), m1 = pattern(kN, 22);
  std::vector<std::byte> g0(kN), g1(kN);
  auto body = [&](int me) {
    return [&, me](Channel& ch, Connection& c) -> sim::Task<void> {
      // Interleave sends and receives in small pieces both ways.
      const auto& out = me == 0 ? m0 : m1;
      auto& in = me == 0 ? g1 : g0;  // rank0 receives m1 into g1
      std::size_t so = 0, ro = 0;
      while (so < kN || ro < kN) {
        if (so < kN) {
          const std::size_t n = std::min<std::size_t>(kN - so, 8192);
          co_await send_all(ch, c, out.data() + so, n);
          so += n;
        }
        if (ro < kN) {
          const std::size_t n = std::min<std::size_t>(kN - ro, 8192);
          co_await recv_all(ch, c, in.data() + ro, n);
          ro += n;
        }
      }
    };
  };
  duo.run(body(0), body(1));
  EXPECT_EQ(g1, m1);
  EXPECT_EQ(g0, m0);
}

TEST_P(DesignTest, PutBeyondRingCapacityCompletesPartially) {
  Duo duo(GetParam());
  const std::size_t kBig = duo.cfg.ring_bytes * 3;
  auto msg = pattern(kBig, 31);
  std::vector<std::byte> got(kBig);
  std::size_t first_put = 0;
  auto gate = std::make_shared<sim::Gate>(duo.sim);  // holds receiver back
  duo.run(
      [&, gate](Channel& ch, Connection& c) -> sim::Task<void> {
        first_put = co_await ch.put(c, msg.data(), msg.size());
        // With the receiver quiescent, at most one ring's worth fits.  The
        // zero-copy and adaptive designs accept nothing: a large buffer goes
        // rendezvous and put reports 0 until the ack (paper section 5).
        EXPECT_LT(first_put, msg.size());
        if (GetParam() == Design::kZeroCopy ||
            GetParam() == Design::kAdaptive) {
          EXPECT_EQ(first_put, 0u);
        } else {
          EXPECT_GT(first_put, 0u);
        }
        gate->open();
        co_await send_all(ch, c, msg.data() + first_put,
                          msg.size() - first_put);
      },
      [&, gate](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await gate->wait();
        co_await recv_all(ch, c, got.data(), got.size());
      });
  EXPECT_EQ(got, msg);
}

TEST(BasicDesign, ThreeRdmaWritesPerMessage) {
  // Paper section 4.2.1: "a matching pair of send and receive operations in
  // MPI require three RDMA write operations: one for transfer of data, and
  // two for updating head and tail pointers."
  sim::TraceSink sink;
  Duo duo(Design::kBasic);
  duo.fabric.attach_tracer(&sink);
  constexpr int kMsgs = 10;
  duo.run(
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        std::vector<std::byte> m(256);
        for (int i = 0; i < kMsgs; ++i) {
          co_await send_all(ch, c, m.data(), m.size());
        }
      },
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        std::vector<std::byte> b(256);
        for (int i = 0; i < kMsgs; ++i) {
          co_await recv_all(ch, c, b.data(), b.size());
        }
      });
  EXPECT_EQ(sink.count("rdma_write"), 3u * kMsgs);
}

TEST(PiggybackDesign, OneRdmaWritePerSmallMessagePlusRareTailUpdates) {
  sim::TraceSink sink;
  Duo duo(Design::kPiggyback);
  duo.fabric.attach_tracer(&sink);
  constexpr int kMsgs = 32;
  duo.run(
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        std::vector<std::byte> m(256);
        for (int i = 0; i < kMsgs; ++i) {
          co_await send_all(ch, c, m.data(), m.size());
        }
      },
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        std::vector<std::byte> b(256);
        for (int i = 0; i < kMsgs; ++i) {
          co_await recv_all(ch, c, b.data(), b.size());
        }
      });
  const std::size_t writes = sink.count("rdma_write");
  // One data write per message plus batched explicit tail updates: with 8
  // slots and a threshold of 4, at most kMsgs/4 extra writes.
  EXPECT_GE(writes, static_cast<std::size_t>(kMsgs));
  EXPECT_LE(writes, static_cast<std::size_t>(kMsgs + kMsgs / 4 + 2));
}

TEST(ZeroCopyDesign, LargeMessageUsesRdmaReadWithoutPayloadCopies) {
  sim::TraceSink sink;
  Duo duo(Design::kZeroCopy);
  duo.fabric.attach_tracer(&sink);
  constexpr std::size_t kN = 1 << 20;
  auto msg = pattern(kN, 41);
  std::vector<std::byte> got(kN);
  duo.run(
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await send_all(ch, c, msg.data(), msg.size());
      },
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await recv_all(ch, c, got.data(), got.size());
      });
  EXPECT_EQ(got, msg);
  EXPECT_EQ(sink.count("rdma_read"), 1u);
  // No data ever crossed the rings: the only modelled memcpys are the
  // (empty) control slots, so total copied bytes must be << the payload.
  EXPECT_LT(sink.total_bytes("memcpy"), static_cast<std::int64_t>(kN / 100));
}

TEST(ZeroCopyDesign, SmallMessagesStillUseRing) {
  sim::TraceSink sink;
  Duo duo(Design::kZeroCopy);
  duo.fabric.attach_tracer(&sink);
  auto msg = pattern(4096, 42);
  std::vector<std::byte> got(4096);
  duo.run(
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await send_all(ch, c, msg.data(), msg.size());
      },
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await recv_all(ch, c, got.data(), got.size());
      });
  EXPECT_EQ(got, msg);
  EXPECT_EQ(sink.count("rdma_read"), 0u);
  EXPECT_EQ(sink.count("rdma_write"), 1u);
}

// ---------------------------------------------------------------------------
// Adaptive rendezvous engine.
// ---------------------------------------------------------------------------

TEST(AdaptiveDesign, MidBandMessageUsesZeroCopyWriteRendezvous) {
  // 40K sits in the write band of the static thresholds (>= 32K eager max,
  // < 256K read threshold): the transfer must be a sender-driven RDMA write
  // straight between user buffers -- no read request leg, no payload copy.
  sim::TraceSink sink;
  Duo duo(Design::kAdaptive);
  duo.fabric.attach_tracer(&sink);
  constexpr std::size_t kN = 40 * 1024;
  auto msg = pattern(kN, 61);
  std::vector<std::byte> got(kN);
  duo.run(
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await send_all(ch, c, msg.data(), msg.size());
      },
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await recv_all(ch, c, got.data(), got.size());
      });
  EXPECT_EQ(got, msg);
  EXPECT_EQ(sink.count("rdma_read"), 0u);
  EXPECT_LT(sink.total_bytes("memcpy"), static_cast<std::int64_t>(kN / 100));
}

TEST(AdaptiveDesign, LargeMessageStripesChunkedReadsOverAuxQps) {
  // 1M on the read pipeline: ceil(1M / 128K-chunk) = 8 RDMA reads, striped
  // over the aux QPs so several are outstanding despite the one-read-per-QP
  // limit; still zero-copy.
  sim::TraceSink sink;
  Duo duo(Design::kAdaptive);
  duo.fabric.attach_tracer(&sink);
  constexpr std::size_t kN = 1 << 20;
  auto msg = pattern(kN, 62);
  std::vector<std::byte> got(kN);
  duo.run(
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await send_all(ch, c, msg.data(), msg.size());
      },
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await recv_all(ch, c, got.data(), got.size());
      });
  EXPECT_EQ(got, msg);
  EXPECT_EQ(sink.count("rdma_read"), 8u);
  EXPECT_LT(sink.total_bytes("memcpy"), static_cast<std::int64_t>(kN / 100));
}

TEST(AdaptiveDesign, StatsCountEveryProtocolAfterMixedTraffic) {
  // A mixed-size exchange must leave nonzero per-protocol counters in the
  // ChannelStats snapshot: eager for the small messages, write rendezvous
  // for the mid-band one, read rendezvous for the large one.
  Duo duo(Design::kAdaptive);
  const std::size_t small = 2048, mid = 40 * 1024, large = 256 * 1024;
  auto ms = pattern(small, 63);
  auto mm = pattern(mid, 64);
  auto ml = pattern(large, 65);
  std::vector<std::byte> gs(small), gm(mid), gl(large);
  duo.run(
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        for (int i = 0; i < 4; ++i) co_await send_all(ch, c, ms.data(), small);
        co_await send_all(ch, c, mm.data(), mid);
        co_await send_all(ch, c, ml.data(), large);
      },
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        for (int i = 0; i < 4; ++i) co_await recv_all(ch, c, gs.data(), small);
        co_await recv_all(ch, c, gm.data(), mid);
        co_await recv_all(ch, c, gl.data(), large);
      });
  EXPECT_EQ(gm, mm);
  EXPECT_EQ(gl, ml);
  const ChannelStats s = duo.ch[0]->stats();
  EXPECT_GE(s.eager.ops, 4u);
  EXPECT_GE(s.eager.bytes, 4 * small);
  EXPECT_EQ(s.rndv_write.ops, 1u);
  EXPECT_EQ(s.rndv_write.bytes, mid);
  EXPECT_EQ(s.rndv_read.ops, 1u);
  EXPECT_EQ(s.rndv_read.bytes, large);
  EXPECT_GT(s.rndv_write.mbps, 0.0);
  EXPECT_GT(s.rndv_read.mbps, 0.0);
  EXPECT_EQ(s.eager_threshold, 32u * 1024);
  EXPECT_EQ(s.write_read_crossover, 256u * 1024);
  // The receiver initiated no rendezvous of its own.
  const ChannelStats r = duo.ch[1]->stats();
  EXPECT_EQ(r.rndv_write.ops + r.rndv_read.ops, 0u);
  EXPECT_GE(r.eager.bytes, 0u);
}

TEST(AdaptiveDesign, SymmetricRendezvousBothDirections) {
  // Both ranks run rendezvous toward each other at once; CTS/FIN bypass the
  // slot rings (direct writes), so neither side can wedge the other's pipe.
  Duo duo(Design::kAdaptive);
  constexpr std::size_t kN = 192 * 1024;
  auto m0 = pattern(kN, 71), m1 = pattern(kN, 72);
  std::vector<std::byte> g0(kN), g1(kN);
  auto body = [&](int me) {
    return [&, me](Channel& ch, Connection& c) -> sim::Task<void> {
      const auto& out = me == 0 ? m0 : m1;
      auto& in = me == 0 ? g1 : g0;  // rank0 receives m1 into g1
      std::size_t sent = 0, rcvd = 0;
      while (sent < kN || rcvd < kN) {
        const std::uint64_t gen = ch.activity_count();
        bool moved = false;
        if (sent < kN) {
          const std::size_t k =
              co_await ch.put(c, out.data() + sent, kN - sent);
          sent += k;
          moved |= k > 0;
        }
        if (rcvd < kN) {
          const std::size_t k = co_await ch.get(c, in.data() + rcvd,
                                                kN - rcvd);
          rcvd += k;
          moved |= k > 0;
        }
        if (!moved && ch.activity_count() == gen) {
          co_await ch.wait_for_activity();
        }
      }
    };
  };
  duo.run(body(0), body(1));
  EXPECT_EQ(g1, m1);
  EXPECT_EQ(g0, m0);
}

TEST(AdaptiveDesign, ReadQpsZeroDegradesToSingleReadAtATime) {
  // rndv_read_qps = 0: the pipeline falls back to one read at a time on the
  // main QP -- the zero-copy design's behavior -- and stays correct.
  sim::TraceSink sink;
  ChannelConfig base;
  base.rndv_read_qps = 0;
  Duo duo(Design::kAdaptive, base);
  duo.fabric.attach_tracer(&sink);
  constexpr std::size_t kN = 512 * 1024;
  auto msg = pattern(kN, 73);
  std::vector<std::byte> got(kN);
  duo.run(
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await send_all(ch, c, msg.data(), msg.size());
      },
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        co_await recv_all(ch, c, got.data(), got.size());
      });
  EXPECT_EQ(got, msg);
  EXPECT_EQ(sink.count("rdma_read"), 4u);  // 512K / 128K chunks, serial
}

// ---------------------------------------------------------------------------
// Protocol selector (unit).
// ---------------------------------------------------------------------------

TEST(ProtocolSelector, StaticThresholdsBeforeAnySamples) {
  ProtocolSelector sel(ProtocolSelector::Config{32 * 1024, 64 * 1024, 32,
                                                0.3});
  EXPECT_EQ(sel.decision(16 * 1024), ProtocolSelector::Proto::kEager);
  EXPECT_EQ(sel.decision(32 * 1024), ProtocolSelector::Proto::kWrite);
  EXPECT_EQ(sel.decision(48 * 1024), ProtocolSelector::Proto::kWrite);
  EXPECT_EQ(sel.decision(64 * 1024), ProtocolSelector::Proto::kRead);
  EXPECT_EQ(sel.decision(1 << 20), ProtocolSelector::Proto::kRead);
  EXPECT_EQ(sel.write_read_crossover(), 64u * 1024);
}

TEST(ProtocolSelector, LearnsCrossoverFromSyntheticGoodput) {
  ProtocolSelector sel(ProtocolSelector::Config{32 * 1024, 64 * 1024, 32,
                                                0.3});
  // Synthetic history: at 96K (the 64K-128K bucket) the write path moves
  // 96K in 100us (960 MB/s) while reads crawl at 96K/200us.  The learned
  // decision must flip that bucket to write, moving the crossover past it.
  for (int i = 0; i < 8; ++i) {
    sel.record(ProtocolSelector::Proto::kWrite, 96 * 1024, 96 * 1024, 100.0);
    sel.record(ProtocolSelector::Proto::kRead, 96 * 1024, 96 * 1024, 200.0);
  }
  EXPECT_EQ(sel.decision(96 * 1024), ProtocolSelector::Proto::kWrite);
  EXPECT_EQ(sel.write_read_crossover(), 128u * 1024);

  // Opposite evidence in the 32K-64K bucket pulls the crossover down to
  // the eager boundary.
  for (int i = 0; i < 8; ++i) {
    sel.record(ProtocolSelector::Proto::kWrite, 40 * 1024, 40 * 1024, 200.0);
    sel.record(ProtocolSelector::Proto::kRead, 40 * 1024, 40 * 1024, 50.0);
  }
  EXPECT_EQ(sel.decision(40 * 1024), ProtocolSelector::Proto::kRead);
  // 128K and up still favors write (learned); below it read wins again, so
  // the scan from eager_max finds 32K.
  EXPECT_EQ(sel.write_read_crossover(), 32u * 1024);
}

TEST(ProtocolSelector, ProbesUnderSampledArmOnSchedule) {
  ProtocolSelector sel(ProtocolSelector::Config{32 * 1024, 64 * 1024,
                                                /*probe_interval=*/4, 0.3});
  // Decisions 1-3 follow the static boundary (read at 128K); the 4th is a
  // probe of the arm with fewer samples -- the write path.
  EXPECT_EQ(sel.choose(128 * 1024), ProtocolSelector::Proto::kRead);
  EXPECT_EQ(sel.choose(128 * 1024), ProtocolSelector::Proto::kRead);
  EXPECT_EQ(sel.choose(128 * 1024), ProtocolSelector::Proto::kRead);
  EXPECT_EQ(sel.choose(128 * 1024), ProtocolSelector::Proto::kWrite);
  // With write now sampled (and read not), the next probe measures read.
  sel.record(ProtocolSelector::Proto::kWrite, 128 * 1024, 128 * 1024, 100.0);
  EXPECT_EQ(sel.choose(128 * 1024), ProtocolSelector::Proto::kRead);
  EXPECT_EQ(sel.choose(128 * 1024), ProtocolSelector::Proto::kRead);
  EXPECT_EQ(sel.choose(128 * 1024), ProtocolSelector::Proto::kRead);
  EXPECT_EQ(sel.choose(128 * 1024), ProtocolSelector::Proto::kRead);  // probe
  // probe_interval = 0 disables probing entirely.
  ProtocolSelector fixed(ProtocolSelector::Config{32 * 1024, 64 * 1024, 0,
                                                  0.3});
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(fixed.choose(128 * 1024), ProtocolSelector::Proto::kRead);
  }
}

// ---------------------------------------------------------------------------
// Latency calibration at the channel level (MPI-level numbers add the MPI
// stack overhead on top; see bench/fig*).
// ---------------------------------------------------------------------------

double one_way_latency_usec(Design d) {
  Duo duo(d);
  constexpr int kIters = 16;
  std::byte ping[8] = {};
  sim::Tick elapsed = 0;
  duo.run(
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        std::byte buf[8];
        // warmup
        co_await send_all(ch, c, ping, 8);
        co_await recv_all(ch, c, buf, 8);
        const sim::Tick start = ch.ctx().sim().now();
        for (int i = 0; i < kIters; ++i) {
          co_await send_all(ch, c, ping, 8);
          co_await recv_all(ch, c, buf, 8);
        }
        elapsed = ch.ctx().sim().now() - start;
      },
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        std::byte buf[8];
        for (int i = 0; i < kIters + 1; ++i) {
          co_await recv_all(ch, c, buf, 8);
          co_await send_all(ch, c, buf, 8);
        }
      });
  return sim::to_usec(elapsed) / (2 * kIters);
}

TEST(Latency, BasicDesignNearPaperValue) {
  // Paper: 18.6 us at the MPI level; the channel alone is a bit under.
  const double usec = one_way_latency_usec(Design::kBasic);
  EXPECT_GT(usec, 15.0);
  EXPECT_LT(usec, 19.5);
}

TEST(Latency, PiggybackCutsBasicLatencyByHalfOrMore) {
  const double basic = one_way_latency_usec(Design::kBasic);
  const double piggy = one_way_latency_usec(Design::kPiggyback);
  EXPECT_LT(piggy * 2.0, basic);
  // Paper: 7.4 us at MPI level; channel-only is below that.
  EXPECT_GT(piggy, 5.5);
  EXPECT_LT(piggy, 7.5);
}

TEST(Latency, ZeroCopySlightlyAbovePiggybackForSmall) {
  const double piggy = one_way_latency_usec(Design::kPiggyback);
  const double zc = one_way_latency_usec(Design::kZeroCopy);
  EXPECT_GE(zc, piggy - 0.01);
  EXPECT_LT(zc, piggy + 0.6);
}

TEST(Latency, AdaptiveMatchesZeroCopyForSmall) {
  // The adaptive engine's small-message path is the same slot ring with the
  // same per-call state-machine charge, so its latency must track the
  // zero-copy design's within a fifth of a microsecond.
  const double zc = one_way_latency_usec(Design::kZeroCopy);
  const double ad = one_way_latency_usec(Design::kAdaptive);
  EXPECT_LT(std::abs(ad - zc), 0.2);
}

// ---------------------------------------------------------------------------
// Bandwidth calibration.
// ---------------------------------------------------------------------------

double stream_bandwidth_mbps(Design d, std::size_t msg, std::size_t total) {
  Duo duo(d);
  auto data = pattern(msg, 51);
  sim::Tick elapsed = 0;
  duo.run(
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        const sim::Tick start = ch.ctx().sim().now();
        for (std::size_t off = 0; off < total; off += msg) {
          co_await send_all(ch, c, data.data(), msg);
        }
        // Wait for the receiver's final drain notification.
        std::byte done;
        co_await recv_all(ch, c, &done, 1);
        elapsed = ch.ctx().sim().now() - start;
      },
      [&](Channel& ch, Connection& c) -> sim::Task<void> {
        std::vector<std::byte> buf(msg);
        for (std::size_t off = 0; off < total; off += msg) {
          co_await recv_all(ch, c, buf.data(), msg);
        }
        std::byte done{1};
        co_await send_all(ch, c, &done, 1);
      });
  return sim::bandwidth_mbps(static_cast<std::int64_t>(total), elapsed);
}

TEST(Bandwidth, DesignsReproducePaperOrdering) {
  // Paper peaks: basic 230, pipeline >500, zero-copy 857 MB/s.
  const double basic = stream_bandwidth_mbps(Design::kBasic, 64 * 1024,
                                             8 << 20);
  const double pipe = stream_bandwidth_mbps(Design::kPipeline, 64 * 1024,
                                            8 << 20);
  const double zc = stream_bandwidth_mbps(Design::kZeroCopy, 1 << 20,
                                          32 << 20);
  EXPECT_LT(basic, 350.0);
  EXPECT_GT(pipe, 1.5 * basic);
  EXPECT_GT(pipe, 450.0);
  EXPECT_LT(pipe, 620.0);
  EXPECT_GT(zc, 800.0);
  EXPECT_LE(zc, 870.0);
}

TEST(Bandwidth, PipelineDroopsBeyondCacheSize) {
  // Figure 11: the pipelining design loses bandwidth for messages past the
  // L2 size because the copies run at the uncached rate.
  const double mid = stream_bandwidth_mbps(Design::kPipeline, 256 * 1024,
                                           8 << 20);
  const double big = stream_bandwidth_mbps(Design::kPipeline, 1 << 20,
                                           16 << 20);
  EXPECT_LT(big, 0.9 * mid);
}

// ---------------------------------------------------------------------------
// Registration cache.
// ---------------------------------------------------------------------------

struct CacheRig {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  ib::Node* n = nullptr;
  ib::ProtectionDomain* pd = nullptr;

  CacheRig() {
    n = &fabric.add_node("n");
    pd = &n->hca().alloc_pd();
  }
};

TEST(RegCache, HitsOnReuseAndChargesOnlyOnce) {
  CacheRig rig;
  RegCache cache(*rig.pd, 1 << 20, /*enabled=*/true);
  static std::vector<std::byte> buf(64 * 1024);
  rig.sim.spawn(
      [](CacheRig& r, RegCache& cc) -> sim::Task<void> {
        ib::MemoryRegion* a = co_await cc.acquire(buf.data(), buf.size());
        co_await cc.release(a);
        const sim::Tick before = r.sim.now();
        ib::MemoryRegion* b = co_await cc.acquire(buf.data(), buf.size());
        EXPECT_EQ(a, b);                       // same registration reused
        EXPECT_EQ(r.sim.now(), before);        // hit costs no virtual time
        co_await cc.release(b);
        EXPECT_EQ(cc.hits(), 1u);
        EXPECT_EQ(cc.misses(), 1u);
      }(rig, cache),
      "cache-user");
  rig.sim.run();
}

TEST(RegCache, SubRangeOfCachedRegionHits) {
  CacheRig rig;
  RegCache cache(*rig.pd, 1 << 20, true);
  static std::vector<std::byte> buf(64 * 1024);
  rig.sim.spawn(
      [](RegCache& cc) -> sim::Task<void> {
        ib::MemoryRegion* a = co_await cc.acquire(buf.data(), buf.size());
        co_await cc.release(a);
        ib::MemoryRegion* b = co_await cc.acquire(buf.data() + 1024, 4096);
        EXPECT_EQ(a, b);
        co_await cc.release(b);
        EXPECT_EQ(cc.hits(), 1u);
      }(cache),
      "subrange");
  rig.sim.run();
}

TEST(RegCache, EnclosingRegionBehindNearerStartStillHits) {
  // Regression: the covering entry is not always the one whose start is the
  // nearest predecessor of the request.  A short entry starting closer must
  // not mask a longer, older entry that actually encloses the range -- the
  // lookup has to keep walking back (bounded by the longest cached entry).
  CacheRig rig;
  RegCache cache(*rig.pd, 1 << 20, true);
  static std::vector<std::byte> buf(64 * 1024);
  rig.sim.spawn(
      [](RegCache& cc) -> sim::Task<void> {
        ib::MemoryRegion* small =
            co_await cc.acquire(buf.data() + 16 * 1024, 4096);
        co_await cc.release(small);
        ib::MemoryRegion* whole = co_await cc.acquire(buf.data(), buf.size());
        co_await cc.release(whole);
        // [24K, 28K): nearest start is the small entry (ends at 20K); only
        // the whole-buffer entry covers it.
        ib::MemoryRegion* m = co_await cc.acquire(buf.data() + 24 * 1024,
                                                  4096);
        EXPECT_EQ(m, whole);
        EXPECT_EQ(cc.hits(), 1u);
        EXPECT_EQ(cc.misses(), 2u);
        co_await cc.release(m);
      }(cache),
      "enclosing");
  rig.sim.run();
}

TEST(RegCache, EvictsLruWhenOverCapacity) {
  CacheRig rig;
  RegCache cache(*rig.pd, 128 * 1024, true);  // fits two 64K buffers
  static std::vector<std::byte> a(64 * 1024), b(64 * 1024), c(64 * 1024);
  rig.sim.spawn(
      [](RegCache& cc) -> sim::Task<void> {
        ib::MemoryRegion* ma = co_await cc.acquire(a.data(), a.size());
        co_await cc.release(ma);
        ib::MemoryRegion* mb = co_await cc.acquire(b.data(), b.size());
        co_await cc.release(mb);
        ib::MemoryRegion* mc = co_await cc.acquire(c.data(), c.size());
        co_await cc.release(mc);
        EXPECT_EQ(cc.evictions(), 1u);  // a (LRU) evicted
        // b should still hit; a re-registers.
        (void)co_await cc.acquire(b.data(), b.size());
        EXPECT_EQ(cc.hits(), 1u);
        (void)co_await cc.acquire(a.data(), a.size());
        EXPECT_EQ(cc.misses(), 4u);
      }(cache),
      "evict");
  rig.sim.run();
}

TEST(RegCache, PinnedEntriesAreNotEvicted) {
  CacheRig rig;
  RegCache cache(*rig.pd, 32 * 1024, true);  // smaller than one buffer
  static std::vector<std::byte> a(64 * 1024);
  rig.sim.spawn(
      [](RegCache& cc) -> sim::Task<void> {
        ib::MemoryRegion* ma = co_await cc.acquire(a.data(), a.size());
        EXPECT_EQ(cc.evictions(), 0u);  // over capacity but pinned
        EXPECT_TRUE(ma->valid());
        co_await cc.release(ma);        // now evictable
        EXPECT_EQ(cc.evictions(), 1u);
      }(cache),
      "pinned");
  rig.sim.run();
}

TEST(RegCache, DisabledModeRegistersEveryTime) {
  CacheRig rig;
  RegCache cache(*rig.pd, 1 << 20, /*enabled=*/false);
  static std::vector<std::byte> buf(64 * 1024);
  rig.sim.spawn(
      [](RegCache& cc) -> sim::Task<void> {
        ib::MemoryRegion* a = co_await cc.acquire(buf.data(), buf.size());
        co_await cc.release(a);
        ib::MemoryRegion* b = co_await cc.acquire(buf.data(), buf.size());
        co_await cc.release(b);
        EXPECT_EQ(cc.hits(), 0u);
        EXPECT_EQ(cc.misses(), 2u);
      }(cache),
      "disabled");
  rig.sim.run();
}

// ---------------------------------------------------------------------------
// Multi-rank smoke test.
// ---------------------------------------------------------------------------

TEST(MultiRank, FourRankAllToAllStreams) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 4);
  ChannelConfig cfg;
  cfg.design = Design::kZeroCopy;
  std::vector<std::unique_ptr<Channel>> chans(4);
  int verified = 0;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    chans[ctx.rank] = Channel::create(ctx, cfg);
    Channel& ch = *chans[ctx.rank];
    co_await ch.init();
    // Everyone sends a distinct (rendezvous-sized) pattern to the next rank
    // and receives from the previous one, twice around the ring.  Send and
    // receive must progress together -- rendezvous needs receiver-side
    // get() calls -- so this loop is a miniature progress engine.
    const int to = (ctx.rank + 1) % 4;
    const int from = (ctx.rank + 3) % 4;
    for (int round = 0; round < 2; ++round) {
      auto msg = pattern(32 * 1024, 100u + ctx.rank + round * 10);
      auto expect = pattern(32 * 1024, 100u + from + round * 10);
      std::vector<std::byte> got(32 * 1024);
      std::size_t sent = 0, rcvd = 0;
      while (sent < msg.size() || rcvd < got.size()) {
        const std::uint64_t gen = ch.activity_count();
        bool moved = false;
        if (sent < msg.size()) {
          const std::size_t k = co_await ch.put(
              ch.connection(to), msg.data() + sent, msg.size() - sent);
          sent += k;
          moved |= k > 0;
        }
        if (rcvd < got.size()) {
          const std::size_t k = co_await ch.get(
              ch.connection(from), got.data() + rcvd, got.size() - rcvd);
          rcvd += k;
          moved |= k > 0;
        }
        if (!moved && ch.activity_count() == gen) {
          co_await ch.wait_for_activity();
        }
      }
      if (got == expect) ++verified;
    }
    co_await ch.finalize();
  });
  sim.run();
  EXPECT_EQ(verified, 8);
}

}  // namespace
}  // namespace rdmach
