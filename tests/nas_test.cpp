// NAS kernel tests: every kernel must self-verify on class S over several
// process counts and over the three stacks the paper compares in Figures
// 16/17 (pipelining, RDMA-channel zero-copy, CH3 zero-copy), plus basic
// sanity of the NAS random-number generator.
#include <gtest/gtest.h>

#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "nas/nas.hpp"
#include "nas/nas_random.hpp"
#include "pmi/pmi.hpp"

namespace nas {
namespace {

mpi::RuntimeConfig stack_cfg(ch3::Stack stack, rdmach::Design design) {
  mpi::RuntimeConfig cfg;
  cfg.stack.stack = stack;
  cfg.stack.channel.design = design;
  return cfg;
}

Result run_kernel(const std::string& name, int nprocs, Class cls,
                  mpi::RuntimeConfig cfg) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, nprocs);
  Result result;
  job.launch([&, name, cls](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    Result r = co_await kernel(name)(rt.world(), ctx, cls);
    if (ctx.rank == 0) result = r;
    co_await rt.finalize();
  });
  sim.run();
  return result;
}

TEST(NasRandom, MatchesKnownReferenceStream) {
  // The NPB generator with the default seed/multiplier: the first value.
  double x = 314159265.0;
  const double r1 = randlc(&x, kDefaultA);
  EXPECT_GT(r1, 0.0);
  EXPECT_LT(r1, 1.0);
  // Seed advance must equal stepping one-by-one.
  double y = 314159265.0;
  for (int i = 0; i < 1000; ++i) (void)randlc(&y, kDefaultA);
  const double jumped = advance_seed(314159265.0, kDefaultA, 1000);
  EXPECT_DOUBLE_EQ(jumped, y);
}

TEST(NasRandom, StreamSlicesAreConsistent) {
  // Concatenating two half streams equals the full stream.
  double full_seed = 271828183.0;
  std::vector<double> full(100);
  vranlc(100, &full_seed, kDefaultA, full.data());
  double s2 = advance_seed(271828183.0, kDefaultA, 50);
  std::vector<double> second(50);
  vranlc(50, &s2, kDefaultA, second.data());
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(second[static_cast<std::size_t>(i)],
                     full[static_cast<std::size_t>(50 + i)]);
  }
}

struct KernelParam {
  const char* name;
  int nprocs;
};

class KernelTest : public ::testing::TestWithParam<KernelParam> {};

INSTANTIATE_TEST_SUITE_P(
    ClassS, KernelTest,
    ::testing::Values(KernelParam{"ep", 4}, KernelParam{"is", 4},
                      KernelParam{"cg", 4}, KernelParam{"mg", 4},
                      KernelParam{"ft", 4}, KernelParam{"lu", 4},
                      KernelParam{"sp", 4}, KernelParam{"bt", 4},
                      KernelParam{"ep", 2}, KernelParam{"is", 2},
                      KernelParam{"cg", 2}, KernelParam{"mg", 2},
                      KernelParam{"ft", 2}, KernelParam{"lu", 2},
                      KernelParam{"sp", 2}, KernelParam{"bt", 2}),
    [](const auto& info) {
      return std::string(info.param.name) + "_p" +
             std::to_string(info.param.nprocs);
    });

TEST_P(KernelTest, VerifiesOnZeroCopyStack) {
  const Result r = run_kernel(
      GetParam().name, GetParam().nprocs, Class::S,
      stack_cfg(ch3::Stack::kRdmaChannel, rdmach::Design::kZeroCopy));
  EXPECT_TRUE(r.verified) << r.name << ": " << r.detail;
  EXPECT_GT(r.time_sec, 0.0);
  EXPECT_GT(r.mops, 0.0);
}

TEST(NasStacks, AllThreePaperDesignsVerifyOnClassS) {
  const std::pair<ch3::Stack, rdmach::Design> stacks[] = {
      {ch3::Stack::kRdmaChannel, rdmach::Design::kPipeline},
      {ch3::Stack::kRdmaChannel, rdmach::Design::kZeroCopy},
      {ch3::Stack::kCh3Direct, rdmach::Design::kPipeline},
  };
  for (const auto& [stack, design] : stacks) {
    for (const auto& [name, fn] : suite()) {
      const Result r =
          run_kernel(name, 4, Class::S, stack_cfg(stack, design));
      EXPECT_TRUE(r.verified)
          << name << " on " << ch3::to_string(stack) << "/"
          << rdmach::to_string(design) << ": " << r.detail;
    }
  }
}

TEST(NasDeterminism, ResultIndependentOfProcessCountForEp) {
  // EP's tallies must be identical for any decomposition (exact stream
  // splitting); the Result.detail carries sx.
  const Result r2 = run_kernel(
      "ep", 2, Class::S,
      stack_cfg(ch3::Stack::kRdmaChannel, rdmach::Design::kZeroCopy));
  const Result r4 = run_kernel(
      "ep", 4, Class::S,
      stack_cfg(ch3::Stack::kRdmaChannel, rdmach::Design::kZeroCopy));
  EXPECT_EQ(r2.detail, r4.detail);
}

}  // namespace
}  // namespace nas
