// Scalability suite (`scale` ctest label): on-demand (lazy) connection
// establishment, the LRU connection cache under qp_budget, SRQ-style
// shared receive-ring pooling, kill-faults against cold/evicted peers,
// and the DES hot-path pooling counters.
//
// The oracle throughout is the eager (lazy_connect off) configuration:
// every lazy/budgeted/pooled run must deliver the identical byte streams,
// differing only in its connection-plane statistics.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "channel_test_util.hpp"
#include "ib/fabric.hpp"
#include "pmi/pmi.hpp"
#include "rdmach/channel.hpp"
#include "sim/rng.hpp"

namespace rdmach {
namespace {

using testutil::FaultPlan;
using testutil::recv_all;
using testutil::send_all;

constexpr sim::Tick kDeadline = sim::usec(30'000'000);  // 30 virtual seconds

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next() & 0xff);
  return v;
}

/// Per-ordered-pair deterministic payload: the differential oracle.
std::vector<std::byte> pair_msg(int from, int to, std::size_t n) {
  return pattern(n, 0x5CA1E000ull + static_cast<std::uint64_t>(from) * 4096 +
                        static_cast<std::uint64_t>(to));
}

/// N-rank harness: every rank runs `body`, under an optional fault plan.
struct Fleet {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  int n;
  pmi::Job job;
  ChannelConfig cfg;
  std::vector<std::unique_ptr<Channel>> ch;
  std::vector<bool> done;
  std::vector<bool> error;

  Fleet(int ranks, ChannelConfig base, FaultPlan* plan = nullptr)
      : n(ranks), job{fabric, ranks}, cfg(base), ch(static_cast<std::size_t>(
                                                     ranks)),
        done(static_cast<std::size_t>(ranks), false),
        error(static_cast<std::size_t>(ranks), false) {
    if (plan != nullptr) fabric.attach_faults(&plan->schedule);
  }

  using Body = std::function<sim::Task<void>(pmi::Context&, Channel&)>;

  void run(Body body) {
    job.launch([this, body](pmi::Context& ctx) -> sim::Task<void> {
      ch[static_cast<std::size_t>(ctx.rank)] = Channel::create(ctx, cfg);
      Channel& c = *ch[static_cast<std::size_t>(ctx.rank)];
      try {
        co_await c.init();
        co_await body(ctx, c);
        co_await c.finalize();
        done[static_cast<std::size_t>(ctx.rank)] = true;
      } catch (const ChannelError&) {
        error[static_cast<std::size_t>(ctx.rank)] = true;
      }
    });
    sim.run_until(kDeadline);
  }

  bool all_done() const {
    for (const bool d : done) {
      if (!d) return false;
    }
    return true;
  }
  bool all_settled() const {
    for (std::size_t r = 0; r < done.size(); ++r) {
      if (!done[r] && !error[r]) return false;
    }
    return true;
  }
};

/// Pairwise all-to-all: XOR pairing (n must be a power of two) makes every
/// phase a symmetric matching, so the blocking send/recv exchanges are
/// deadlock-free even when ranks drift across phases.  The lower rank of
/// each pair sends first.
sim::Task<void> all_pairs_body(pmi::Context& ctx, Channel& ch,
                               std::size_t msg_len,
                               std::vector<std::vector<std::byte>>& got) {
  const int n = ctx.size;
  const int me = ctx.rank;
  for (int phase = 1; phase < n; ++phase) {
    const int peer = me ^ phase;
    Connection& conn = ch.connection(peer);
    const std::vector<std::byte> out = pair_msg(me, peer, msg_len);
    got[static_cast<std::size_t>(peer)].resize(msg_len);
    if (me < peer) {
      co_await send_all(ch, conn, out.data(), out.size());
      co_await recv_all(ch, conn,
                        got[static_cast<std::size_t>(peer)].data(), msg_len);
    } else {
      co_await recv_all(ch, conn,
                        got[static_cast<std::size_t>(peer)].data(), msg_len);
      co_await send_all(ch, conn, out.data(), out.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Differential: lazy connect (with and without budget/pool) vs eager
// ---------------------------------------------------------------------------

class ScaleDesignTest : public ::testing::TestWithParam<Design> {};

INSTANTIATE_TEST_SUITE_P(AllRdmaDesigns, ScaleDesignTest,
                         ::testing::Values(Design::kBasic, Design::kPiggyback,
                                           Design::kPipeline,
                                           Design::kZeroCopy,
                                           Design::kAdaptive),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

TEST_P(ScaleDesignTest, LazyConnectAllPairsMatchesEagerOracle) {
  // 8 ranks, every ordered pair exchanges an eager-sized and (via the
  // second length) a rendezvous-sized message, under four configurations.
  constexpr int kRanks = 8;
  const std::size_t lens[] = {2'000, 48'000};
  struct Variant {
    const char* name;
    bool lazy;
    int budget;
    std::size_t rings;
  };
  const Variant variants[] = {
      {"eager", false, 0, 0},
      {"lazy", true, 0, 0},
      {"lazy-budget", true, 3, 0},
      {"lazy-srq", true, 3, kRanks},
  };
  for (const std::size_t len : lens) {
    for (const Variant& v : variants) {
      ChannelConfig cfg;
      cfg.design = GetParam();
      cfg.lazy_connect = v.lazy;
      cfg.qp_budget = v.budget;
      cfg.srq_pool_rings = v.rings;
      Fleet fleet(kRanks, cfg);
      std::vector<std::vector<std::vector<std::byte>>> got(
          kRanks, std::vector<std::vector<std::byte>>(kRanks));
      fleet.run([&](pmi::Context& ctx, Channel& ch) -> sim::Task<void> {
        co_await all_pairs_body(ctx, ch, len,
                                got[static_cast<std::size_t>(ctx.rank)]);
      });
      ASSERT_TRUE(fleet.all_done())
          << v.name << " len=" << len << " hung or errored";
      for (int r = 0; r < kRanks; ++r) {
        for (int s = 0; s < kRanks; ++s) {
          if (r == s) continue;
          EXPECT_EQ(got[static_cast<std::size_t>(r)]
                       [static_cast<std::size_t>(s)],
                    pair_msg(s, r, len))
              << v.name << " len=" << len << " stream " << s << "->" << r;
        }
      }
      const ChannelStats st = fleet.ch[0]->stats();
      if (v.lazy) {
        EXPECT_GT(st.connects_on_demand, 0u) << v.name;
        EXPECT_GT(st.qps_created, 0u) << v.name;
      } else {
        EXPECT_EQ(st.connects_on_demand, 0u);
      }
      if (v.rings > 0) {
        EXPECT_GT(st.srq_pool_high_water, 0u) << v.name;
        EXPECT_LE(st.srq_pool_high_water, v.rings) << v.name;
      }
    }
  }
}

TEST(ScaleDifferential, RingExchangeAt64RanksLazyBudgetMatchesEager) {
  // The rank-dimension point: 64 ranks, neighbour-ring traffic, lazy
  // connect with a 4-connection cache.  Per-rank QP state must stay
  // O(active peers), not O(ranks), while the delivered bytes match the
  // eager oracle exactly.
  constexpr int kRanks = 64;
  constexpr std::size_t kLen = 4'000;
  for (const bool lazy : {false, true}) {
    ChannelConfig cfg;
    cfg.design = Design::kBasic;
    cfg.lazy_connect = lazy;
    cfg.qp_budget = lazy ? 4 : 0;
    cfg.srq_pool_rings = lazy ? 8 : 0;
    Fleet fleet(kRanks, cfg);
    std::vector<std::vector<std::byte>> got(kRanks);
    fleet.run([&](pmi::Context& ctx, Channel& ch) -> sim::Task<void> {
      const int me = ctx.rank;
      const int next = (me + 1) % kRanks;
      const int prev = (me + kRanks - 1) % kRanks;
      const std::vector<std::byte> out = pair_msg(me, next, kLen);
      got[static_cast<std::size_t>(me)].resize(kLen);
      Connection& cs = ch.connection(next);
      Connection& cr = ch.connection(prev);
      // Even ranks send first; odd ranks receive first -- no cycle.
      if (me % 2 == 0) {
        co_await send_all(ch, cs, out.data(), out.size());
        co_await recv_all(ch, cr, got[static_cast<std::size_t>(me)].data(),
                          kLen);
      } else {
        co_await recv_all(ch, cr, got[static_cast<std::size_t>(me)].data(),
                          kLen);
        co_await send_all(ch, cs, out.data(), out.size());
      }
    });
    ASSERT_TRUE(fleet.all_done()) << (lazy ? "lazy" : "eager") << " hung";
    for (int r = 0; r < kRanks; ++r) {
      const int prev = (r + kRanks - 1) % kRanks;
      EXPECT_EQ(got[static_cast<std::size_t>(r)], pair_msg(prev, r, kLen))
          << "stream " << prev << "->" << r;
    }
    for (int r = 0; r < kRanks; ++r) {
      const ChannelStats st = fleet.ch[static_cast<std::size_t>(r)]->stats();
      if (lazy) {
        // A ring rank talks to 2 peers: the connection plane must never
        // have grown toward the rank dimension.
        EXPECT_LE(st.qps_created, 4u) << "rank " << r;
        EXPECT_LE(st.connects_on_demand, 4u) << "rank " << r;
      } else {
        // Eager: full mesh, the exact O(ranks) cost lazy connect removes.
        EXPECT_GE(st.qps_created, static_cast<std::uint64_t>(kRanks - 1))
            << "rank " << r;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Connection cache: LRU eviction, transparent reconnect, journal pinning
// ---------------------------------------------------------------------------

TEST(ConnectionCache, LruEvictionAndTransparentReconnect) {
  // Rank 0 visits peers 1, 2, 3 with qp_budget=2: wiring peer 3 evicts the
  // LRU connection (peer 1).  A second visit to peer 1 must transparently
  // re-connect and deliver byte-exact data.
  constexpr std::size_t kLen = 1'500;
  ChannelConfig cfg;
  cfg.design = Design::kBasic;
  cfg.lazy_connect = true;
  cfg.qp_budget = 2;
  Fleet fleet(4, cfg);
  std::vector<std::vector<std::byte>> echoes(4);
  fleet.run([&](pmi::Context& ctx, Channel& ch) -> sim::Task<void> {
    if (ctx.rank == 0) {
      const int visits[] = {1, 2, 3, 1};
      for (int i = 0; i < 4; ++i) {
        const int peer = visits[i];
        Connection& conn = ch.connection(peer);
        const std::vector<std::byte> out =
            pair_msg(100 + i, peer, kLen);  // distinct per visit
        std::vector<std::byte>& echo = echoes[static_cast<std::size_t>(i)];
        echo.resize(kLen);
        co_await send_all(ch, conn, out.data(), out.size());
        co_await recv_all(ch, conn, echo.data(), echo.size());
      }
    } else {
      Connection& conn = ch.connection(0);
      const int rounds = ctx.rank == 1 ? 2 : 1;
      for (int i = 0; i < rounds; ++i) {
        std::vector<std::byte> buf(kLen);
        co_await recv_all(ch, conn, buf.data(), buf.size());
        co_await send_all(ch, conn, buf.data(), buf.size());
      }
    }
  });
  ASSERT_TRUE(fleet.all_done());
  const int visits[] = {1, 2, 3, 1};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(echoes[static_cast<std::size_t>(i)],
              pair_msg(100 + i, visits[i], kLen))
        << "visit " << i;
  }
  const ChannelStats st = fleet.ch[0]->stats();
  EXPECT_GE(st.qps_evicted, 1u);
  EXPECT_GE(st.connects_on_demand, 4u);  // 3 peers + 1 re-connect
  EXPECT_LE(st.qps_live, 3u);
}

TEST(ConnectionCache, EvictionBlockedWhileJournalOutstanding) {
  // qp_budget=1: rank 0 sends to peer 1 (who defers consuming), then wires
  // peer 2, going over budget.  The connection to peer 1 holds unconsumed
  // journal state, so eviction must NOT proceed until peer 1 drains and
  // its tail acknowledgement lands.
  constexpr std::size_t kLen = 1'000;
  ChannelConfig cfg;
  cfg.design = Design::kBasic;
  cfg.lazy_connect = true;
  cfg.qp_budget = 1;
  Fleet fleet(3, cfg);
  std::uint64_t evicted_while_pinned = ~0ull;
  bool evicted_after_drain = false;
  fleet.run([&](pmi::Context& ctx, Channel& ch) -> sim::Task<void> {
    pmi::Kvs& kvs = *ctx.kvs;
    if (ctx.rank == 0) {
      const std::vector<std::byte> a = pair_msg(0, 1, kLen);
      const std::vector<std::byte> b = pair_msg(0, 2, kLen);
      Connection& c1 = ch.connection(1);
      Connection& c2 = ch.connection(2);
      co_await send_all(ch, c1, a.data(), a.size());
      std::vector<std::byte> echo(kLen);
      co_await send_all(ch, c2, b.data(), b.size());
      co_await recv_all(ch, c2, echo.data(), echo.size());
      EXPECT_EQ(echo, b);
      // Over budget, but peer 1 has not consumed: the connection is
      // pinned by its outstanding journal.
      evicted_while_pinned = ch.stats().qps_evicted;
      kvs.put("consume-now", "1");
      // Drive the control plane until the now-unpinned LRU connection is
      // evicted (the zero-length get runs the lazy service).  Self-wake on
      // a virtual timer: the tail update that unpins us arrives as a DMA,
      // but the evict handshake needs further service passes.
      std::byte dummy{};
      ib::Node* n0 = ctx.node;
      for (int i = 0; i < 1'000 && ch.stats().qps_evicted == 0; ++i) {
        co_await ch.get(c1, &dummy, 0);
        if (ch.stats().qps_evicted != 0) break;
        fleet.sim.call_at(fleet.sim.now() + sim::usec(100),
                          [n0] { n0->dma_arrival().fire(); });
        co_await ch.wait_for_activity();
      }
      evicted_after_drain = ch.stats().qps_evicted > 0;
    } else if (ctx.rank == 1) {
      // Park without consuming -- but keep servicing the connection
      // control plane (zero-length gets) so rank 0's lazy connect and the
      // later evict handshake are answered.
      Connection& conn = ch.connection(0);
      std::byte dummy{};
      ib::Node* n1 = ctx.node;
      while (!kvs.has("consume-now")) {
        co_await ch.get(conn, &dummy, 0);
        if (kvs.has("consume-now")) break;
        fleet.sim.call_at(fleet.sim.now() + sim::usec(100),
                          [n1] { n1->dma_arrival().fire(); });
        co_await ch.wait_for_activity();
      }
      std::vector<std::byte> buf(kLen);
      co_await recv_all(ch, conn, buf.data(), buf.size());
      EXPECT_EQ(buf, pair_msg(0, 1, kLen));
    } else {
      std::vector<std::byte> buf(kLen);
      Connection& conn = ch.connection(0);
      co_await recv_all(ch, conn, buf.data(), buf.size());
      co_await send_all(ch, conn, buf.data(), buf.size());
    }
  });
  ASSERT_TRUE(fleet.all_done());
  EXPECT_EQ(evicted_while_pinned, 0u);
  EXPECT_TRUE(evicted_after_drain);
}

/// Shared scenario for the evict-handshake kill tests: rank 0 visits peers
/// 1, 2, 3, 1 with qp_budget=2, so wiring peer 3 runs the two-sided LRU
/// evict handshake against peer 1, and the final visit re-connects.  The
/// caller's plan lands kills inside that window; recovery must keep every
/// echo byte-exact and the eviction must still complete.
void run_evict_kill_scenario(FaultPlan& plan) {
  constexpr std::size_t kLen = 1'500;
  ChannelConfig cfg;
  cfg.design = Design::kBasic;
  cfg.lazy_connect = true;
  cfg.qp_budget = 2;
  cfg.recovery_max_attempts = 8;
  Fleet fleet(4, cfg, &plan);
  std::vector<std::vector<std::byte>> echoes(4);
  fleet.run([&](pmi::Context& ctx, Channel& ch) -> sim::Task<void> {
    if (ctx.rank == 0) {
      const int visits[] = {1, 2, 3, 1};
      for (int i = 0; i < 4; ++i) {
        const int peer = visits[i];
        Connection& conn = ch.connection(peer);
        const std::vector<std::byte> out = pair_msg(300 + i, peer, kLen);
        std::vector<std::byte>& echo = echoes[static_cast<std::size_t>(i)];
        echo.resize(kLen);
        co_await send_all(ch, conn, out.data(), out.size());
        co_await recv_all(ch, conn, echo.data(), echo.size());
      }
    } else {
      Connection& conn = ch.connection(0);
      const int rounds = ctx.rank == 1 ? 2 : 1;
      for (int i = 0; i < rounds; ++i) {
        std::vector<std::byte> buf(kLen);
        co_await recv_all(ch, conn, buf.data(), buf.size());
        co_await send_all(ch, conn, buf.data(), buf.size());
      }
    }
  });
  ASSERT_TRUE(fleet.all_done()) << "evict-handshake kill recovery hung";
  const int visits[] = {1, 2, 3, 1};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(echoes[static_cast<std::size_t>(i)],
              pair_msg(300 + i, visits[i], kLen))
        << "visit " << i;
  }
  const ChannelStats st = fleet.ch[0]->stats();
  EXPECT_GE(st.qps_evicted, 1u) << "the evict handshake never completed";
  EXPECT_GT(plan.schedule.killed(), 0u) << "no kill landed in the window";
}

TEST(ConnectionCache, KillsOnInitiatorDuringEvictHandshakeRecover) {
  // Non-fatal kills on the evicting side (rank 0), clustered over the WQE
  // window where the third visit forces the LRU eviction of peer 1 and the
  // fourth re-connects: the handshake's replay traffic keeps dying under
  // it, and recovery must carry it through anyway.
  FaultPlan plan;
  for (std::uint64_t n = 5; n <= 9; ++n) plan.kill(0, n, /*fatal=*/false);
  run_evict_kill_scenario(plan);
}

TEST(ConnectionCache, KillsOnEvictedTargetDuringEvictHandshakeRecover) {
  // The mirror image: the kills land on the evicted peer (rank 1), from its
  // tail-drain acknowledgement of the handshake through its half of the
  // post-eviction reconnect exchange.
  FaultPlan plan;
  for (std::uint64_t n = 2; n <= 6; ++n) plan.kill(1, n, /*fatal=*/false);
  run_evict_kill_scenario(plan);
}

// ---------------------------------------------------------------------------
// SRQ-style shared receive pool
// ---------------------------------------------------------------------------

TEST(SharedRecvPool, ExhaustionBackpressuresThenWiresViaEviction) {
  // 5 ranks, 2 pooled rings, no QP budget: rank 0's third connection finds
  // the pool exhausted.  That must surface as credit_stalls backpressure
  // and an LRU lease eviction -- never a deadlock -- and every byte still
  // arrives.
  constexpr std::size_t kLen = 1'200;
  ChannelConfig cfg;
  cfg.design = Design::kBasic;
  cfg.lazy_connect = true;
  cfg.qp_budget = 0;
  cfg.srq_pool_rings = 2;
  Fleet fleet(5, cfg);
  std::vector<std::vector<std::byte>> echoes(5);
  fleet.run([&](pmi::Context& ctx, Channel& ch) -> sim::Task<void> {
    if (ctx.rank == 0) {
      for (int peer = 1; peer < 5; ++peer) {
        Connection& conn = ch.connection(peer);
        const std::vector<std::byte> out = pair_msg(0, peer, kLen);
        std::vector<std::byte>& echo =
            echoes[static_cast<std::size_t>(peer)];
        echo.resize(kLen);
        co_await send_all(ch, conn, out.data(), out.size());
        co_await recv_all(ch, conn, echo.data(), echo.size());
      }
    } else {
      Connection& conn = ch.connection(0);
      std::vector<std::byte> buf(kLen);
      co_await recv_all(ch, conn, buf.data(), buf.size());
      co_await send_all(ch, conn, buf.data(), buf.size());
    }
  });
  ASSERT_TRUE(fleet.all_done());
  for (int peer = 1; peer < 5; ++peer) {
    EXPECT_EQ(echoes[static_cast<std::size_t>(peer)],
              pair_msg(0, peer, kLen))
        << "echo from " << peer;
  }
  const ChannelStats st = fleet.ch[0]->stats();
  EXPECT_GT(st.credit_stalls, 0u);  // the pool said "not yet" at least once
  EXPECT_GE(st.qps_evicted, 1u);    // a lease had to be recycled
  EXPECT_EQ(st.srq_pool_high_water, 2u);
}

// ---------------------------------------------------------------------------
// Kill-faults against cold and evicted connections
// ---------------------------------------------------------------------------

TEST_P(ScaleDesignTest, KillFromStartOnColdConnectSurfacesCleanError) {
  // Every WQE of rank 0 dies, starting before the first (lazy, cold)
  // connect: the retry budget must exhaust into ChannelError on both
  // ranks -- no hang, no spin.
  FaultPlan plan;
  plan.kill_from(0, 0);
  ChannelConfig cfg;
  cfg.design = GetParam();
  cfg.lazy_connect = true;
  cfg.recovery_max_attempts = 3;
  Fleet fleet(2, cfg, &plan);
  const std::vector<std::byte> msg = pattern(20'000, 77);
  fleet.run([&](pmi::Context& ctx, Channel& ch) -> sim::Task<void> {
    // The completion token keeps the sender's progress engine turning:
    // unsignaled slot-write failures are only discovered at the next
    // put/get entry, so a send-and-exit body would park in finalize
    // instead of surfacing the dead connection.
    if (ctx.rank == 0) {
      Connection& conn = ch.connection(1);
      co_await send_all(ch, conn, msg.data(), msg.size());
      std::byte token{};
      co_await recv_all(ch, conn, &token, 1);
    } else {
      Connection& conn = ch.connection(0);
      std::vector<std::byte> buf(msg.size());
      co_await recv_all(ch, conn, buf.data(), buf.size());
      const std::byte token{0x1};
      co_await send_all(ch, conn, &token, 1);
    }
  });
  EXPECT_TRUE(fleet.all_settled()) << "a rank hung instead of failing";
  EXPECT_TRUE(fleet.error[0]);
  EXPECT_TRUE(fleet.error[1]);
}

TEST_P(ScaleDesignTest, SingleKillsDuringEvictReconnectTrafficRecover) {
  // Two passes of rank 0 over peers 1 and 2 with qp_budget=1 force an
  // evict + transparent re-connect per visit; sprinkled single-WQE kills
  // land across connect, evict, and replay phases.  Recovery must keep
  // every byte exact with no hang.
  constexpr std::size_t kLen = 6'000;
  FaultPlan plan;
  plan.kill(0, 4, /*fatal=*/false);
  plan.kill(1, 3, /*fatal=*/false);
  plan.kill(0, 11, /*fatal=*/false);
  plan.kill(2, 5, /*fatal=*/false);
  ChannelConfig cfg;
  cfg.design = GetParam();
  cfg.lazy_connect = true;
  cfg.qp_budget = 1;
  cfg.recovery_max_attempts = 8;
  Fleet fleet(3, cfg, &plan);
  std::vector<std::vector<std::byte>> echoes(4);
  fleet.run([&](pmi::Context& ctx, Channel& ch) -> sim::Task<void> {
    if (ctx.rank == 0) {
      const int visits[] = {1, 2, 1, 2};
      for (int i = 0; i < 4; ++i) {
        Connection& conn = ch.connection(visits[i]);
        const std::vector<std::byte> out = pair_msg(200 + i, visits[i], kLen);
        std::vector<std::byte>& echo = echoes[static_cast<std::size_t>(i)];
        echo.resize(kLen);
        co_await send_all(ch, conn, out.data(), out.size());
        co_await recv_all(ch, conn, echo.data(), echo.size());
      }
    } else {
      Connection& conn = ch.connection(0);
      for (int i = 0; i < 2; ++i) {
        std::vector<std::byte> buf(kLen);
        co_await recv_all(ch, conn, buf.data(), buf.size());
        co_await send_all(ch, conn, buf.data(), buf.size());
      }
    }
  });
  ASSERT_TRUE(fleet.all_done()) << "fault recovery hung";
  const int visits[] = {1, 2, 1, 2};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(echoes[static_cast<std::size_t>(i)],
              pair_msg(200 + i, visits[i], kLen))
        << "visit " << i;
  }
  EXPECT_GT(plan.schedule.killed(), 0u);
}

TEST(ScaleFault, KillOnEvictedPeerSurfacesCleanErrorOnReconnect) {
  // Rank 0 exchanges with peer 1, evicts it by visiting peer 2
  // (qp_budget=1), then re-connects to peer 1 -- whose HCA now kills
  // everything it processes.  The evicted-then-reconnected path must
  // surface the death as a clean ChannelError, not a hang.
  constexpr std::size_t kLen = 2'000;
  FaultPlan plan;
  // Measured no-fault WQE budget for peer 1: the first exchange costs it
  // WQEs 0..2 (echo slots + tail update) and the evict handshake posts
  // none, so everything from WQE 3 on is its half of the post-eviction
  // reconnect traffic -- which all dies.
  plan.kill_from(1, 3);
  ChannelConfig cfg;
  cfg.design = Design::kBasic;
  cfg.lazy_connect = true;
  cfg.qp_budget = 1;
  cfg.recovery_max_attempts = 3;
  Fleet fleet(3, cfg, &plan);
  bool phase1_ok = false;
  bool bystander_exchanged = false;
  std::uint64_t evicted = 0;
  fleet.run([&](pmi::Context& ctx, Channel& ch) -> sim::Task<void> {
    if (ctx.rank == 0) {
      std::vector<std::byte> echo(kLen);
      const std::vector<std::byte> a = pair_msg(0, 1, kLen);
      Connection& c1 = ch.connection(1);
      co_await send_all(ch, c1, a.data(), a.size());
      co_await recv_all(ch, c1, echo.data(), echo.size());
      phase1_ok = echo == a;
      const std::vector<std::byte> b = pair_msg(0, 2, kLen);
      Connection& c2 = ch.connection(2);
      co_await send_all(ch, c2, b.data(), b.size());
      co_await recv_all(ch, c2, echo.data(), echo.size());
      evicted = ch.stats().qps_evicted;
      // Second visit to the (now evicted) peer 1: its HCA is dead.
      co_await send_all(ch, c1, a.data(), a.size());
      co_await recv_all(ch, c1, echo.data(), echo.size());
    } else {
      Connection& conn = ch.connection(0);
      const int rounds = ctx.rank == 1 ? 2 : 1;
      for (int i = 0; i < rounds; ++i) {
        std::vector<std::byte> buf(kLen);
        co_await recv_all(ch, conn, buf.data(), buf.size());
        co_await send_all(ch, conn, buf.data(), buf.size());
      }
      if (ctx.rank == 2) bystander_exchanged = true;
    }
  });
  // Ranks 0 and 1 must FAIL (not hang); rank 2's exchange must be
  // untouched.  Rank 2 then necessarily parks in the collective finalize
  // barrier -- its peers died and will never arrive -- so "clean" for the
  // bystander means completed data + no error, not full finalize.
  EXPECT_TRUE(fleet.error[0]) << "dead reconnect must surface at rank 0";
  EXPECT_TRUE(fleet.error[1]);
  EXPECT_TRUE(phase1_ok);
  EXPECT_TRUE(bystander_exchanged);
  EXPECT_FALSE(fleet.error[2]);
  EXPECT_GE(evicted, 1u);
}

// ---------------------------------------------------------------------------
// DES hot-path counters
// ---------------------------------------------------------------------------

TEST(SimCounters, EventAndPoolStatsTrackAHotRun) {
  // Perf-guard for the DES overhaul: a traffic-heavy run must show the
  // event counter advancing and the WQE/completion buffer pool recycling
  // allocations (hits dominating misses) instead of per-op heap churn.
  ChannelConfig cfg;
  cfg.design = Design::kPiggyback;
  Fleet fleet(2, cfg);
  const std::vector<std::byte> msg = pattern(256 * 1024, 99);
  fleet.run([&](pmi::Context& ctx, Channel& ch) -> sim::Task<void> {
    if (ctx.rank == 0) {
      for (int i = 0; i < 8; ++i) {
        co_await send_all(ch, ch.connection(1), msg.data(), msg.size());
      }
    } else {
      std::vector<std::byte> buf(msg.size());
      for (int i = 0; i < 8; ++i) {
        co_await recv_all(ch, ch.connection(0), buf.data(), buf.size());
      }
    }
  });
  ASSERT_TRUE(fleet.all_done());
  const sim::Simulator::Stats st = fleet.sim.stats();
  EXPECT_GT(st.events_dispatched, 1'000u);
  EXPECT_GT(st.pool_hits, 0u);
  EXPECT_GT(st.pool_hits, st.pool_misses)
      << "buffer pool is not recycling -- hot path regressed to per-op "
         "allocation";
}

}  // namespace
}  // namespace rdmach
