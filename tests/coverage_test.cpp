// Cross-cutting coverage: NAS class W on 8 ranks, one-sided windows over
// subcommunicators, RDMA collectives on split communicators, and the SDP
// stream layer over the basic channel design (every component on a
// non-default configuration).
#include <gtest/gtest.h>

#include "ib/fabric.hpp"
#include "mpi/rdma_coll.hpp"
#include "mpi/runtime.hpp"
#include "mpi/window.hpp"
#include "nas/nas.hpp"
#include "pmi/pmi.hpp"
#include "sdp/sdp.hpp"

namespace {

TEST(Coverage, NasClassWVerifiesOnEightRanks) {
  for (const auto& [name, fn] : nas::suite()) {
    sim::Simulator sim;
    ib::Fabric fabric(sim);
    pmi::Job job(fabric, 8);
    bool verified = false;
    job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
      mpi::Runtime rt(ctx, {});
      co_await rt.init();
      const nas::Result r =
          co_await nas::kernel(name)(rt.world(), ctx, nas::Class::W);
      if (ctx.rank == 0) verified = r.verified;
      co_await rt.finalize();
    });
    sim.run();
    EXPECT_TRUE(verified) << name << " class W on 8 ranks";
  }
}

TEST(Coverage, WindowOnSplitCommunicator) {
  // Two disjoint subcommunicators each run their own window epoch with
  // the same displacement pattern; no cross-talk.
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 4);
  job.launch([](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    mpi::Communicator* sub = co_await world.split(world.rank() % 2, 0);
    EXPECT_NE(sub, nullptr);
    if (sub == nullptr) co_return;
    std::vector<std::int64_t> mem(4, -7);
    auto win = co_await mpi::Window::create(*sub, mem.data(), 32);
    co_await win->fence();
    const std::int64_t v = 100 * world.rank();
    const int peer = 1 - sub->rank();
    co_await win->put(&v, 1, mpi::Datatype::kLong, peer,
                      static_cast<std::size_t>(sub->rank()) * 8);
    co_await win->fence();
    // My slot[peer_rank] holds the peer's world-rank stamp.
    const int peer_world = sub->world_rank(peer);
    EXPECT_EQ(mem[static_cast<std::size_t>(peer)], 100 * peer_world);
    EXPECT_EQ(mem[2], -7);  // untouched
    co_await world.barrier();
    co_await rt.finalize();
  });
  sim.run();
}

TEST(Coverage, RdmaCollOnSplitCommunicator) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 8);
  job.launch([](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    mpi::Communicator* sub = co_await world.split(world.rank() % 2, 0);
    EXPECT_NE(sub, nullptr);
    if (sub == nullptr) co_return;
    auto coll = co_await mpi::RdmaColl::create(*sub, 1024);
    // Sum of world ranks within my parity class.
    double v = world.rank(), sum = 0;
    co_await coll->allreduce(&v, &sum, 1, mpi::Datatype::kDouble,
                             mpi::Op::kSum);
    const double expect = world.rank() % 2 == 0 ? 0 + 2 + 4 + 6 : 1 + 3 + 5 + 7;
    EXPECT_DOUBLE_EQ(sum, expect);
    co_await coll->barrier();
    co_await world.barrier();
    co_await rt.finalize();
  });
  sim.run();
}

TEST(Coverage, SdpStreamsOverBasicDesign) {
  // The socket layer is design-agnostic: run it over the slowest channel.
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 2);
  rdmach::ChannelConfig cfg;
  cfg.design = rdmach::Design::kBasic;
  job.launch([cfg](pmi::Context& ctx) -> sim::Task<void> {
    auto ep = co_await sdp::Endpoint::create(ctx, cfg);
    if (ep->rank() == 0) {
      std::vector<int> data(5000);
      for (int i = 0; i < 5000; ++i) data[static_cast<std::size_t>(i)] = i;
      co_await ep->stream(1).send(data.data(), data.size() * 4);
    } else {
      std::vector<int> data(5000, -1);
      co_await ep->stream(0).recv_exact(data.data(), data.size() * 4);
      EXPECT_EQ(data[4999], 4999);
      EXPECT_EQ(data[0], 0);
    }
    co_await ep->close();
  });
  sim.run();
}

TEST(Coverage, WindowAccumulateAllOpsOnDoubles) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 2);
  job.launch([](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<double> mem(4, 10.0);
    auto win = co_await mpi::Window::create(world, mem.data(), 32);
    co_await win->fence();
    if (world.rank() == 1) {
      const double v[4] = {3.0, 3.0, 30.0, 2.0};
      co_await win->accumulate(&v[0], 1, mpi::Datatype::kDouble, mpi::Op::kSum,
                               0, 0);
      co_await win->accumulate(&v[1], 1, mpi::Datatype::kDouble, mpi::Op::kProd,
                               0, 8);
      co_await win->accumulate(&v[2], 1, mpi::Datatype::kDouble, mpi::Op::kMax,
                               0, 16);
      co_await win->accumulate(&v[3], 1, mpi::Datatype::kDouble, mpi::Op::kMin,
                               0, 24);
    }
    co_await win->fence();
    if (world.rank() == 0) {
      EXPECT_DOUBLE_EQ(mem[0], 13.0);
      EXPECT_DOUBLE_EQ(mem[1], 30.0);
      EXPECT_DOUBLE_EQ(mem[2], 30.0);
      EXPECT_DOUBLE_EQ(mem[3], 2.0);
    }
    co_await world.barrier();
    co_await rt.finalize();
  });
  sim.run();
}

}  // namespace
