// Tests for the multi-method channel (Figure 1): shared memory for
// intra-node pairs, InfiniBand zero-copy for inter-node pairs, under one
// channel interface and one MPI stack.
#include <gtest/gtest.h>

#include <vector>

#include "channel_test_util.hpp"
#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"
#include "nas/nas.hpp"
#include "rdmach/multi_method_channel.hpp"
#include "sim/rng.hpp"

namespace rdmach {
namespace {

using testutil::recv_all;
using testutil::send_all;

TEST(MultiMethod, RoutesLocalPeersThroughSharedMemory) {
  // 4 ranks on 2 nodes: (0,1) on node0, (2,3) on node1.
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 4, /*ranks_per_node=*/2);
  ChannelConfig cfg;
  cfg.design = Design::kMultiMethod;
  std::vector<std::unique_ptr<Channel>> chans(4);
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    chans[ctx.rank] = Channel::create(ctx, cfg);
    co_await chans[ctx.rank]->init();
    auto* mm = static_cast<MultiMethodChannel*>(chans[ctx.rank].get());
    const int buddy = ctx.rank ^ 1;         // same node
    const int across = (ctx.rank + 2) % 4;  // other node
    EXPECT_TRUE(mm->is_local(buddy));
    EXPECT_FALSE(mm->is_local(across));
    co_await chans[ctx.rank]->finalize();
  });
  sim.run();
}

TEST(MultiMethod, ResetStatsZeroesMemberCounters) {
  // stats() sums the shm and net members' monotone counters; before
  // reset_stats() forwarded to them, "resetting" the facade left the
  // members counting and every post-reset delta included the whole
  // bootstrap.  A reset right after traffic must therefore zero the
  // summed ops/bytes, and fresh traffic afterwards must count from zero.
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 4, 2);
  ChannelConfig cfg;
  cfg.design = Design::kMultiMethod;
  std::vector<std::unique_ptr<Channel>> chans(4);
  bool checked = false;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    chans[ctx.rank] = Channel::create(ctx, cfg);
    Channel& ch = *chans[ctx.rank];
    co_await ch.init();
    const int buddy = ctx.rank ^ 1;  // same node: shm member
    std::vector<std::byte> buf(4096);
    if (ctx.rank % 2 == 0) {
      co_await testutil::send_all(ch, ch.connection(buddy), buf.data(),
                                  buf.size());
    } else {
      co_await testutil::recv_all(ch, ch.connection(buddy), buf.data(),
                                  buf.size());
    }
    if (ctx.rank == 0) {
      EXPECT_GE(ch.stats().eager.bytes, buf.size());
      ch.reset_stats();
      const ChannelStats after = ch.stats();
      EXPECT_EQ(after.eager.ops, 0u);
      EXPECT_EQ(after.eager.bytes, 0u);
      EXPECT_EQ(after.rndv_write.bytes + after.rndv_read.bytes, 0u);
      checked = true;
    }
    co_await ch.finalize();
  });
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(MultiMethod, DataIsByteExactOnBothPaths) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 4, 2);
  ChannelConfig cfg;
  cfg.design = Design::kMultiMethod;
  std::vector<std::unique_ptr<Channel>> chans(4);
  int ok = 0;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    chans[ctx.rank] = Channel::create(ctx, cfg);
    Channel& ch = *chans[ctx.rank];
    co_await ch.init();
    // Every rank sends a distinct pattern to its node buddy AND to its
    // cross-node partner, then receives from both.
    auto pattern = [](int from, int to) {
      sim::Rng rng(static_cast<std::uint64_t>(from * 10 + to));
      std::vector<std::byte> v(200'000);
      for (auto& b : v) b = static_cast<std::byte>(rng.next() & 0xff);
      return v;
    };
    const int buddy = ctx.rank ^ 1;
    const int across = (ctx.rank + 2) % 4;
    auto to_buddy = pattern(ctx.rank, buddy);
    auto to_across = pattern(ctx.rank, across);
    std::vector<std::byte> from_buddy(200'000), from_across(200'000);

    // Interleave: a miniature progress engine over both connections.
    std::size_t sb = 0, sa = 0, rb = 0, ra = 0;
    const std::size_t n = 200'000;
    while (sb < n || sa < n || rb < n || ra < n) {
      const std::uint64_t gen = ch.activity_count();
      bool moved = false;
      auto step = [&](std::size_t& off, auto& buf, int peer,
                      bool sending) -> sim::Task<void> {
        if (off >= n) co_return;
        std::size_t k;
        if (sending) {
          k = co_await ch.put(ch.connection(peer), buf.data() + off, n - off);
        } else {
          k = co_await ch.get(ch.connection(peer), buf.data() + off, n - off);
        }
        off += k;
        moved |= k > 0;
      };
      co_await step(sb, to_buddy, buddy, true);
      co_await step(sa, to_across, across, true);
      co_await step(rb, from_buddy, buddy, false);
      co_await step(ra, from_across, across, false);
      if (!moved && ch.activity_count() == gen) {
        co_await ch.wait_for_activity();
      }
    }
    if (from_buddy == pattern(buddy, ctx.rank) &&
        from_across == pattern(across, ctx.rank)) {
      ++ok;
    }
    co_await ch.finalize();
  });
  sim.run();
  EXPECT_EQ(ok, 4);
}

TEST(MultiMethod, MpiLatencyIsMuchLowerIntraNode) {
  // MPI ping-pong rank0<->rank1 (same node) vs rank0<->rank2 (other node).
  auto latency = [](int peer) {
    sim::Simulator sim;
    ib::Fabric fabric(sim);
    pmi::Job job(fabric, 4, 2);
    mpi::RuntimeConfig cfg;
    cfg.stack.channel.design = Design::kMultiMethod;
    sim::Tick elapsed = 0;
    job.launch([&, peer](pmi::Context& ctx) -> sim::Task<void> {
      mpi::Runtime rt(ctx, cfg);
      co_await rt.init();
      mpi::Communicator& world = rt.world();
      std::byte buf[8] = {};
      constexpr int kIters = 20;
      if (world.rank() == 0) {
        for (int i = 0; i < kIters + 1; ++i) {
          co_await world.send(buf, 8, mpi::Datatype::kByte, peer, 0);
          co_await world.recv(buf, 8, mpi::Datatype::kByte, peer, 0);
          if (i == 0) elapsed = ctx.sim().now();  // reset after warmup
        }
        elapsed = ctx.sim().now() - elapsed;
      } else if (world.rank() == peer) {
        for (int i = 0; i < kIters + 1; ++i) {
          co_await world.recv(buf, 8, mpi::Datatype::kByte, 0, 0);
          co_await world.send(buf, 8, mpi::Datatype::kByte, 0, 0);
        }
      }
      co_await rt.finalize();
    });
    sim.run();
    return sim::to_usec(elapsed) / (2 * 20);
  };
  const double local = latency(1);
  const double remote = latency(2);
  EXPECT_LT(local, 0.5 * remote);  // shared memory skips the fabric
  EXPECT_NEAR(remote, 7.5, 1.0);   // the zero-copy RDMA path
}

TEST(MultiMethod, NasKernelRunsOnSmpLayout) {
  // CG class S on 4 ranks / 2 nodes over the multi-method stack.
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 4, 2);
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = Design::kMultiMethod;
  bool verified = false;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    auto result = co_await nas::kernel("cg")(rt.world(), ctx, nas::Class::S);
    if (ctx.rank == 0) verified = result.verified;
    co_await rt.finalize();
  });
  sim.run();
  EXPECT_TRUE(verified);
}

}  // namespace
}  // namespace rdmach
