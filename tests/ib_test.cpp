// Unit tests for the software InfiniBand verbs layer: registration and
// protection, RDMA write/read data paths and latencies, channel-semantics
// send/recv, error handling (NAK, flush, injection), and the memory-bus
// contention model.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "ib/cq.hpp"
#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "ib/mr.hpp"
#include "ib/node.hpp"
#include "ib/qp.hpp"
#include "ib/types.hpp"
#include "sim/simulator.hpp"

namespace ib {
namespace {

/// Pair of connected endpoints used by most tests.
struct Pair {
  sim::Simulator sim;
  Fabric fabric{sim};
  Node* a = nullptr;
  Node* b = nullptr;
  ProtectionDomain* pda = nullptr;
  ProtectionDomain* pdb = nullptr;
  CompletionQueue* cqa = nullptr;
  CompletionQueue* cqb = nullptr;
  QueuePair* qpa = nullptr;
  QueuePair* qpb = nullptr;

  explicit Pair(FabricConfig cfg = {}) : fabric(sim, cfg) {
    a = &fabric.add_node("a");
    b = &fabric.add_node("b");
    pda = &a->hca().alloc_pd();
    pdb = &b->hca().alloc_pd();
    cqa = &a->hca().create_cq("cqa");
    cqb = &b->hca().create_cq("cqb");
    qpa = &a->hca().create_qp(*pda, *cqa, *cqa);
    qpb = &b->hca().create_qp(*pdb, *cqb, *cqb);
    qpa->connect(*qpb);
  }
};

TEST(Mr, RegistrationYieldsUniqueKeysAndCostsTime) {
  Pair p;
  std::vector<std::byte> buf(8192);
  MemoryRegion* mr1 = nullptr;
  MemoryRegion* mr2 = nullptr;
  p.sim.spawn(
      [](Pair& pr, std::vector<std::byte>& b, MemoryRegion*& m1,
         MemoryRegion*& m2) -> sim::Task<void> {
        m1 = co_await pr.pda->register_memory(b.data(), 4096);
        m2 = co_await pr.pda->register_memory(b.data() + 4096, 4096);
      }(p, buf, mr1, mr2),
      "reg");
  p.sim.run();
  ASSERT_NE(mr1, nullptr);
  ASSERT_NE(mr2, nullptr);
  EXPECT_NE(mr1->rkey(), mr2->rkey());
  EXPECT_NE(mr1->lkey(), mr2->lkey());
  EXPECT_NE(mr1->lkey(), mr1->rkey());
  // Two registrations of one page each: 2 * (reg_base + 1 page).
  const sim::Tick expect = 2 * p.fabric.cfg().reg_cost(4096);
  EXPECT_EQ(p.sim.now(), expect);
  EXPECT_EQ(p.pda->region_count(), 2u);
  EXPECT_EQ(p.pda->registered_bytes(), 8192);
}

TEST(Mr, DeregisterInvalidatesKeys) {
  Pair p;
  std::vector<std::byte> buf(4096);
  p.sim.spawn(
      [](Pair& pr, std::vector<std::byte>& b) -> sim::Task<void> {
        MemoryRegion* mr = co_await pr.pda->register_memory(b.data(), 4096);
        const std::uint32_t rkey = mr->rkey();
        EXPECT_NE(pr.pda->find_rkey(rkey), nullptr);
        co_await pr.pda->deregister(mr);
        EXPECT_EQ(pr.pda->find_rkey(rkey), nullptr);
        EXPECT_FALSE(mr->valid());
        EXPECT_EQ(pr.pda->registered_bytes(), 0);
      }(p, buf),
      "dereg");
  p.sim.run();
}

TEST(Mr, CheckSgeRejectsOutOfBounds) {
  Pair p;
  std::vector<std::byte> buf(4096);
  p.sim.spawn(
      [](Pair& pr, std::vector<std::byte>& b) -> sim::Task<void> {
        MemoryRegion* mr = co_await pr.pda->register_memory(b.data(), 4096);
        EXPECT_TRUE(pr.pda->check_sge(Sge{b.data(), 4096, mr->lkey()}));
        EXPECT_FALSE(pr.pda->check_sge(Sge{b.data() + 1, 4096, mr->lkey()}));
        EXPECT_FALSE(pr.pda->check_sge(Sge{b.data(), 4096, mr->lkey() + 999}));
      }(p, buf),
      "bounds");
  p.sim.run();
}

TEST(Rdma, SmallWriteLatencyMatchesCalibration) {
  // The paper's raw verbs layer: 5.9 us small-message RDMA write latency.
  Pair p;
  alignas(8) static std::byte src[64];
  alignas(8) static std::byte dst[64];
  std::memset(src, 0xab, sizeof(src));
  std::memset(dst, 0, sizeof(dst));
  sim::Tick delivered = 0;
  p.sim.spawn(
      [](Pair& pr, sim::Tick& t) -> sim::Task<void> {
        MemoryRegion* ms = co_await pr.pda->register_memory(src, 64);
        MemoryRegion* md = co_await pr.pdb->register_memory(dst, 64);
        const sim::Tick start = pr.sim.now();
        pr.qpa->post_send(SendWr{1, Opcode::kRdmaWrite,
                                 {Sge{src, 4, ms->lkey()}},
                                 reinterpret_cast<std::uint64_t>(dst),
                                 md->rkey(), true});
        co_await pr.b->dma_arrival().wait();
        t = pr.sim.now() - start;
        EXPECT_EQ(dst[0], std::byte{0xab});
      }(p, delivered),
      "writer");
  p.sim.run();
  EXPECT_NEAR(sim::to_usec(delivered), 5.9, 0.1);
}

TEST(Rdma, WriteCompletionArrivesAfterAck) {
  Pair p;
  static std::byte src[8];
  static std::byte dst[8];
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        MemoryRegion* ms = co_await pr.pda->register_memory(src, 8);
        MemoryRegion* md = co_await pr.pdb->register_memory(dst, 8);
        const sim::Tick start = pr.sim.now();
        pr.qpa->post_send(SendWr{7, Opcode::kRdmaWrite,
                                 {Sge{src, 8, ms->lkey()}},
                                 reinterpret_cast<std::uint64_t>(dst),
                                 md->rkey(), true});
        const Wc wc = co_await pr.cqa->next();
        EXPECT_EQ(wc.wr_id, 7u);
        EXPECT_EQ(wc.status, WcStatus::kSuccess);
        EXPECT_EQ(wc.opcode, Opcode::kRdmaWrite);
        // Completion = delivery (~5.9) + ack propagation (4.1).
        EXPECT_NEAR(sim::to_usec(pr.sim.now() - start), 10.0, 0.2);
      }(p),
      "acked");
  p.sim.run();
}

TEST(Rdma, LargeWriteBandwidthApproachesLinkRate) {
  Pair p;
  constexpr std::size_t kMsg = 1 << 20;
  constexpr int kCount = 16;
  static std::vector<std::byte> src(kMsg, std::byte{0x5a});
  static std::vector<std::byte> dst(kMsg);
  sim::Tick elapsed = 0;
  p.sim.spawn(
      [](Pair& pr, sim::Tick& out) -> sim::Task<void> {
        MemoryRegion* ms = co_await pr.pda->register_memory(src.data(), kMsg);
        MemoryRegion* md = co_await pr.pdb->register_memory(dst.data(), kMsg);
        const sim::Tick start = pr.sim.now();
        for (int i = 0; i < kCount; ++i) {
          pr.qpa->post_send(SendWr{static_cast<std::uint64_t>(i),
                                   Opcode::kRdmaWrite,
                                   {Sge{src.data(), kMsg, ms->lkey()}},
                                   reinterpret_cast<std::uint64_t>(dst.data()),
                                   md->rkey(), true});
        }
        for (int i = 0; i < kCount; ++i) (void)co_await pr.cqa->next();
        out = pr.sim.now() - start;
      }(p, elapsed),
      "bw");
  p.sim.run();
  const double mbps =
      sim::bandwidth_mbps(static_cast<std::int64_t>(kMsg) * kCount, elapsed);
  EXPECT_GT(mbps, 855.0);
  EXPECT_LE(mbps, 871.0);
  EXPECT_TRUE(std::memcmp(src.data(), dst.data(), kMsg) == 0);
}

TEST(Rdma, WritesDeliverInOrder) {
  Pair p;
  static std::byte dst[8] = {};
  static std::byte v1[8], v2[8];
  std::memset(v1, 1, 8);
  std::memset(v2, 2, 8);
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        MemoryRegion* m1 = co_await pr.pda->register_memory(v1, 8);
        MemoryRegion* m2 = co_await pr.pda->register_memory(v2, 8);
        MemoryRegion* md = co_await pr.pdb->register_memory(dst, 8);
        pr.qpa->post_send(SendWr{1, Opcode::kRdmaWrite,
                                 {Sge{v1, 8, m1->lkey()}},
                                 reinterpret_cast<std::uint64_t>(dst),
                                 md->rkey(), false});
        pr.qpa->post_send(SendWr{2, Opcode::kRdmaWrite,
                                 {Sge{v2, 8, m2->lkey()}},
                                 reinterpret_cast<std::uint64_t>(dst),
                                 md->rkey(), true});
        (void)co_await pr.cqa->next();
        EXPECT_EQ(dst[0], std::byte{2});  // second write overwrote first
      }(p),
      "order");
  p.sim.run();
}

TEST(Rdma, UnsignaledWriteProducesNoCqe) {
  Pair p;
  static std::byte src[8];
  static std::byte dst[8];
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        MemoryRegion* ms = co_await pr.pda->register_memory(src, 8);
        MemoryRegion* md = co_await pr.pdb->register_memory(dst, 8);
        pr.qpa->post_send(SendWr{1, Opcode::kRdmaWrite,
                                 {Sge{src, 8, ms->lkey()}},
                                 reinterpret_cast<std::uint64_t>(dst),
                                 md->rkey(), false});
        co_await pr.b->dma_arrival().wait();
        co_await pr.sim.delay(sim::usec(50));
        EXPECT_TRUE(pr.cqa->empty());
      }(p),
      "unsignaled");
  p.sim.run();
}

TEST(Rdma, ReadPullsDataAndLatencyIncludesRoundTrip) {
  Pair p;
  static std::byte remote[16];
  static std::byte local[16];
  std::memset(remote, 0x77, sizeof(remote));
  std::memset(local, 0, sizeof(local));
  sim::Tick elapsed = 0;
  p.sim.spawn(
      [](Pair& pr, sim::Tick& out) -> sim::Task<void> {
        MemoryRegion* ml = co_await pr.pda->register_memory(local, 16);
        MemoryRegion* mr = co_await pr.pdb->register_memory(remote, 16);
        const sim::Tick start = pr.sim.now();
        pr.qpa->post_send(SendWr{9, Opcode::kRdmaRead,
                                 {Sge{local, 16, ml->lkey()}},
                                 reinterpret_cast<std::uint64_t>(remote),
                                 mr->rkey(), true});
        const Wc wc = co_await pr.cqa->next();
        EXPECT_EQ(wc.status, WcStatus::kSuccess);
        EXPECT_EQ(wc.byte_len, 16u);
        out = pr.sim.now() - start;
        EXPECT_EQ(local[15], std::byte{0x77});
      }(p, elapsed),
      "reader");
  p.sim.run();
  // wqe 0.8 + wire 4.1 + responder 1.5 + wire 4.1 + rx 1.0 (+ serialization)
  EXPECT_NEAR(sim::to_usec(elapsed), 11.5, 0.3);
}

TEST(Rdma, MidSizeReadBandwidthBelowWriteBandwidth) {
  // Figure 15: writes pipeline freely, but reads are capped by the
  // outstanding-read context limit, so each mid-size read pays its request
  // round trip; read bandwidth trails write bandwidth until the transfer
  // time dwarfs the round trip.
  auto run = [](Opcode op, std::size_t msg) {
    Pair p;
    constexpr int kCount = 32;
    static std::vector<std::byte> x(1 << 20), y(1 << 20);
    sim::Tick elapsed = 0;
    p.sim.spawn(
        [](Pair& pr, Opcode o, std::size_t m, sim::Tick& out)
            -> sim::Task<void> {
          MemoryRegion* ma = co_await pr.pda->register_memory(x.data(), m);
          MemoryRegion* mb = co_await pr.pdb->register_memory(y.data(), m);
          const sim::Tick start = pr.sim.now();
          for (int i = 0; i < kCount; ++i) {
            pr.qpa->post_send(SendWr{static_cast<std::uint64_t>(i), o,
                                     {Sge{x.data(), m, ma->lkey()}},
                                     reinterpret_cast<std::uint64_t>(y.data()),
                                     mb->rkey(), true});
          }
          for (int i = 0; i < kCount; ++i) (void)co_await pr.cqa->next();
          out = pr.sim.now() - start;
        }(p, op, msg, elapsed),
        "op");
    p.sim.run();
    return sim::bandwidth_mbps(static_cast<std::int64_t>(msg) * kCount,
                               elapsed);
  };
  const double write_32k = run(Opcode::kRdmaWrite, 32 * 1024);
  const double read_32k = run(Opcode::kRdmaRead, 32 * 1024);
  EXPECT_GT(write_32k, read_32k * 1.3);  // clear write advantage at 32K
  EXPECT_GT(read_32k, 350.0);
  const double write_1m = run(Opcode::kRdmaWrite, 1 << 20);
  const double read_1m = run(Opcode::kRdmaRead, 1 << 20);
  EXPECT_LT(write_1m, read_1m * 1.1);  // converged at 1M
}

TEST(Rdma, BadRkeyCompletesWithRemoteAccessErrorAndFlushesQp) {
  Pair p;
  static std::byte src[8];
  static std::byte dst[8];
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        MemoryRegion* ms = co_await pr.pda->register_memory(src, 8);
        (void)co_await pr.pdb->register_memory(dst, 8);
        pr.qpa->post_send(SendWr{1, Opcode::kRdmaWrite,
                                 {Sge{src, 8, ms->lkey()}},
                                 reinterpret_cast<std::uint64_t>(dst),
                                 0xdeadbeef, true});
        Wc wc = co_await pr.cqa->next();
        EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
        EXPECT_TRUE(pr.qpa->in_error());
        // Subsequent posts flush.
        pr.qpa->post_send(SendWr{2, Opcode::kRdmaWrite,
                                 {Sge{src, 8, ms->lkey()}},
                                 reinterpret_cast<std::uint64_t>(dst), 0,
                                 true});
        wc = co_await pr.cqa->next();
        EXPECT_EQ(wc.wr_id, 2u);
        EXPECT_EQ(wc.status, WcStatus::kFlushError);
      }(p),
      "bad-rkey");
  p.sim.run();
}

TEST(Rdma, WriteBeyondRegionBoundsIsRejected) {
  Pair p;
  static std::byte src[64];
  static std::byte dst[64];
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        MemoryRegion* ms = co_await pr.pda->register_memory(src, 64);
        MemoryRegion* md = co_await pr.pdb->register_memory(dst, 32);
        pr.qpa->post_send(SendWr{1, Opcode::kRdmaWrite,
                                 {Sge{src, 64, ms->lkey()}},
                                 reinterpret_cast<std::uint64_t>(dst),
                                 md->rkey(), true});
        const Wc wc = co_await pr.cqa->next();
        EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
      }(p),
      "oob");
  p.sim.run();
}

TEST(Rdma, ReadWithoutRemoteReadPermissionFails) {
  Pair p;
  static std::byte remote[64];
  static std::byte local[64];
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        MemoryRegion* ml = co_await pr.pda->register_memory(local, 64);
        MemoryRegion* mr = co_await pr.pdb->register_memory(
            remote, 64, kLocalWrite | kRemoteWrite);
        pr.qpa->post_send(SendWr{1, Opcode::kRdmaRead,
                                 {Sge{local, 64, ml->lkey()}},
                                 reinterpret_cast<std::uint64_t>(remote),
                                 mr->rkey(), true});
        const Wc wc = co_await pr.cqa->next();
        EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
      }(p),
      "no-read-perm");
  p.sim.run();
}

TEST(Rdma, BadLocalLkeyIsLocalProtectionError) {
  Pair p;
  static std::byte src[8];
  static std::byte dst[8];
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        (void)co_await pr.pda->register_memory(src, 8);
        MemoryRegion* md = co_await pr.pdb->register_memory(dst, 8);
        pr.qpa->post_send(SendWr{1, Opcode::kRdmaWrite,
                                 {Sge{src, 8, 424242}},
                                 reinterpret_cast<std::uint64_t>(dst),
                                 md->rkey(), true});
        const Wc wc = co_await pr.cqa->next();
        EXPECT_EQ(wc.status, WcStatus::kLocalProtectionError);
        EXPECT_TRUE(pr.qpa->in_error());
      }(p),
      "bad-lkey");
  p.sim.run();
}

TEST(SendRecv, PrepostedReceiveMatches) {
  Pair p;
  static std::byte src[128];
  static std::byte dst[128];
  std::memset(src, 0x3c, sizeof(src));
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        MemoryRegion* ms = co_await pr.pda->register_memory(src, 128);
        MemoryRegion* md = co_await pr.pdb->register_memory(dst, 128);
        pr.qpb->post_recv(RecvWr{100, {Sge{dst, 128, md->lkey()}}});
        pr.qpa->post_send(
            SendWr{1, Opcode::kSend, {Sge{src, 128, ms->lkey()}}, 0, 0, true});
        const Wc rwc = co_await pr.cqb->next();
        EXPECT_EQ(rwc.wr_id, 100u);
        EXPECT_TRUE(rwc.is_recv);
        EXPECT_EQ(rwc.byte_len, 128u);
        EXPECT_EQ(dst[127], std::byte{0x3c});
        const Wc swc = co_await pr.cqa->next();
        EXPECT_EQ(swc.wr_id, 1u);
        EXPECT_EQ(swc.status, WcStatus::kSuccess);
      }(p),
      "sendrecv");
  p.sim.run();
}

TEST(SendRecv, LateReceiveConsumesBufferedArrival) {
  Pair p;
  static std::byte src[64];
  static std::byte dst[64];
  std::memset(src, 0x11, sizeof(src));
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        MemoryRegion* ms = co_await pr.pda->register_memory(src, 64);
        MemoryRegion* md = co_await pr.pdb->register_memory(dst, 64);
        pr.qpa->post_send(
            SendWr{1, Opcode::kSend, {Sge{src, 64, ms->lkey()}}, 0, 0, true});
        co_await pr.sim.delay(sim::usec(50));  // arrival buffered, no recv yet
        EXPECT_TRUE(pr.cqb->empty());
        pr.qpb->post_recv(RecvWr{5, {Sge{dst, 64, md->lkey()}}});
        const Wc wc = co_await pr.cqb->next();
        EXPECT_EQ(wc.wr_id, 5u);
        EXPECT_EQ(dst[0], std::byte{0x11});
      }(p),
      "late-recv");
  p.sim.run();
}

TEST(SendRecv, TruncatingReceiveFails) {
  Pair p;
  static std::byte src[128];
  static std::byte dst[32];
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        MemoryRegion* ms = co_await pr.pda->register_memory(src, 128);
        MemoryRegion* md = co_await pr.pdb->register_memory(dst, 32);
        pr.qpb->post_recv(RecvWr{8, {Sge{dst, 32, md->lkey()}}});
        pr.qpa->post_send(
            SendWr{1, Opcode::kSend, {Sge{src, 128, ms->lkey()}}, 0, 0, true});
        const Wc wc = co_await pr.cqb->next();
        EXPECT_EQ(wc.status, WcStatus::kLocalProtectionError);
      }(p),
      "trunc");
  p.sim.run();
}

TEST(Bus, InboundDmaStealsCopyBandwidth) {
  // The mechanism behind the paper's pipelining bottleneck: CPU copies and
  // HCA DMA share the node's memory bus.  An 870 MB/s inbound DMA stream
  // consumes 870 of the 1600 MB/s raw bus, so a concurrent memcpy (2
  // bus-bytes per byte) drops from ~800 MB/s toward (1600-870)/2 = 365 MB/s,
  // while the paced DMA stream itself still fits in the remaining capacity.
  constexpr std::size_t kMsg = 1 << 20;
  auto run = [](bool with_dma) {
    Pair p;
    static std::vector<std::byte> src(kMsg), dst(kMsg);
    static std::vector<std::byte> ca(64 * 1024), cb(64 * 1024);
    sim::Tick copy_elapsed = 0;
    constexpr int kCopies = 64;
    if (with_dma) {
      p.sim.spawn_daemon(
          [](Pair& pr) -> sim::Task<void> {
            MemoryRegion* ms =
                co_await pr.pda->register_memory(src.data(), kMsg);
            MemoryRegion* md =
                co_await pr.pdb->register_memory(dst.data(), kMsg);
            for (;;) {
              pr.qpa->post_send(SendWr{
                  1, Opcode::kRdmaWrite, {Sge{src.data(), kMsg, ms->lkey()}},
                  reinterpret_cast<std::uint64_t>(dst.data()), md->rkey(),
                  true});
              (void)co_await pr.cqa->next();
            }
          }(p),
          "dma-stream");
    }
    p.sim.spawn(
        [](Pair& pr, sim::Tick& out) -> sim::Task<void> {
          co_await pr.sim.delay(sim::usec(100));  // let the DMA stream ramp
          const sim::Tick start = pr.sim.now();
          for (int i = 0; i < kCopies; ++i) {
            co_await pr.b->copy(cb.data(), ca.data(), 64 * 1024);
          }
          out = pr.sim.now() - start;
        }(p, copy_elapsed),
        "copier");
    p.sim.run_until(sim::kSecond);
    return sim::bandwidth_mbps(static_cast<std::int64_t>(64 * 1024) * kCopies,
                               copy_elapsed);
  };
  const double alone = run(false);
  const double contended = run(true);
  EXPECT_NEAR(alone, 800.0, 10.0);
  EXPECT_LT(contended, 0.60 * alone);
  EXPECT_GT(contended, 0.30 * alone);
}

TEST(Node, CopyFactorDependsOnWorkingSet) {
  Pair p;
  static std::vector<std::byte> a(1 << 20), b(1 << 20);
  sim::Tick cached = 0, uncached = 0;
  p.sim.spawn(
      [](Pair& pr, sim::Tick& tc, sim::Tick& tu) -> sim::Task<void> {
        sim::Tick t0 = pr.sim.now();
        co_await pr.a->copy(b.data(), a.data(), 128 * 1024);  // ws <= cache
        tc = pr.sim.now() - t0;
        t0 = pr.sim.now();
        co_await pr.a->copy(b.data(), a.data(), 128 * 1024, 1 << 20);
        tu = pr.sim.now() - t0;
      }(p, cached, uncached),
      "copies");
  p.sim.run();
  EXPECT_NEAR(static_cast<double>(uncached) / static_cast<double>(cached),
              1.5, 0.01);
  // Standalone copy bandwidth ~800 MB/s in-cache (bus/2).
  EXPECT_NEAR(sim::bandwidth_mbps(128 * 1024, cached), 800.0, 8.0);
}

TEST(Inject, ExhaustedRetriesSurfaceAsTransportErrors) {
  FabricConfig cfg;
  cfg.inject_error_rate = 0.5;
  cfg.inject_seed = 42;
  cfg.retry_count = 0;  // no HW retransmission: every failure surfaces
  Pair p(cfg);
  static std::byte src[8];
  static std::byte dst[8];
  int errors = 0, successes = 0;
  p.sim.spawn(
      [](Pair& pr, int& err, int& ok) -> sim::Task<void> {
        MemoryRegion* ms = co_await pr.pda->register_memory(src, 8);
        MemoryRegion* md = co_await pr.pdb->register_memory(dst, 8);
        for (int i = 0; i < 50; ++i) {
          pr.qpa->post_send(SendWr{static_cast<std::uint64_t>(i),
                                   Opcode::kRdmaWrite,
                                   {Sge{src, 8, ms->lkey()}},
                                   reinterpret_cast<std::uint64_t>(dst),
                                   md->rkey(), true});
          const Wc wc = co_await pr.cqa->next();
          if (wc.status == WcStatus::kTransportError) {
            ++err;
          } else {
            EXPECT_EQ(wc.status, WcStatus::kSuccess);
            ++ok;
          }
          EXPECT_FALSE(pr.qpa->in_error());  // injected errors don't kill QP
        }
      }(p, errors, successes),
      "inject");
  p.sim.run();
  EXPECT_GT(errors, 10);
  EXPECT_GT(successes, 10);
}

TEST(Inject, RcRetransmissionHidesAttemptFailures) {
  // With the default retry budget, a 40%-lossy link costs time (visible
  // retransmit trace records), not completions.
  FabricConfig cfg;
  cfg.inject_error_rate = 0.4;
  cfg.inject_seed = 7;
  sim::TraceSink sink;
  Pair p(cfg);
  p.fabric.attach_tracer(&sink);
  static std::byte src[8];
  static std::byte dst[8];
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        MemoryRegion* ms = co_await pr.pda->register_memory(src, 8);
        MemoryRegion* md = co_await pr.pdb->register_memory(dst, 8);
        for (int i = 0; i < 100; ++i) {
          pr.qpa->post_send(SendWr{static_cast<std::uint64_t>(i),
                                   Opcode::kRdmaWrite,
                                   {Sge{src, 8, ms->lkey()}},
                                   reinterpret_cast<std::uint64_t>(dst),
                                   md->rkey(), true});
          const Wc wc = co_await pr.cqa->next();
          EXPECT_EQ(wc.status, WcStatus::kSuccess);
        }
      }(p),
      "lossy");
  p.sim.run();
  EXPECT_GT(sink.count("retransmit"), 20u);  // ~0.4/0.6 * 100 expected
}

TEST(Qp, ApiMisuseThrows) {
  sim::Simulator sim;
  Fabric fabric(sim);
  Node& a = fabric.add_node("a");
  ProtectionDomain& pd = a.hca().alloc_pd();
  CompletionQueue& cq = a.hca().create_cq("cq");
  QueuePair& qp = a.hca().create_qp(pd, cq, cq);
  EXPECT_THROW(qp.post_send(SendWr{}), VerbsError);  // not connected
  EXPECT_THROW(qp.connect(qp), VerbsError);          // self-connection
  Node& b = fabric.add_node("b");
  ProtectionDomain& pdb = b.hca().alloc_pd();
  EXPECT_THROW(a.hca().create_qp(pdb, cq, cq), VerbsError);  // foreign PD
}

}  // namespace
}  // namespace ib
