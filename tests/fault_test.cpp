// Fault-injection and recovery tests.
//
// Three levels, mirroring the stack:
//   * verbs     -- RC error semantics: flush order on an errored QP,
//                  close/quiesce/reset lifecycle, and the documented
//                  retry-storm timing of the random injector.
//   * channel   -- the differential harness: randomized put/get traffic
//                  through every design with transport errors killed
//                  mid-stream, asserting the delivered byte stream is
//                  bit-identical to the ShmChannel oracle's, plus
//                  retry-budget exhaustion surfacing as ChannelError on
//                  both ranks instead of a hang.
//   * MPI       -- recovery is invisible to send/recv; budget exhaustion
//                  propagates as a clean process failure (VcError), not a
//                  deadlock.
// Plus unit tests for sim::FaultSchedule and the registration cache's
// eviction/invalidation behavior under pin-down pressure.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "channel_test_util.hpp"
#include "ib/cq.hpp"
#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "ib/mr.hpp"
#include "ib/node.hpp"
#include "ib/qp.hpp"
#include "ib/types.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"
#include "rdmach/channel.hpp"
#include "rdmach/multi_method_channel.hpp"
#include "rdmach/reg_cache.hpp"
#include "rdmach/verbs_base.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace {

using rdmach::testutil::FaultPlan;
using rdmach::testutil::Traffic;

// ---------------------------------------------------------------------------
// sim::FaultSchedule
// ---------------------------------------------------------------------------

TEST(FaultSchedule, CountsOperationsAndDeliversScheduledKills) {
  sim::FaultSchedule s;
  s.kill("x", 2);
  s.kill_from("x", 5);
  EXPECT_FALSE(s.check("x").has_value());  // 0
  EXPECT_FALSE(s.check("x").has_value());  // 1
  EXPECT_TRUE(s.check("x").has_value());   // 2: the scheduled kill
  EXPECT_FALSE(s.check("x").has_value());  // 3
  EXPECT_FALSE(s.check("x").has_value());  // 4
  EXPECT_TRUE(s.check("x").has_value());   // 5: kill_from
  EXPECT_TRUE(s.check("x").has_value());   // 6: kill_from
  EXPECT_EQ(s.observed("x"), 7u);
  EXPECT_EQ(s.observed("y"), 0u);
  EXPECT_EQ(s.killed(), 3u);
}

TEST(FaultSchedule, ScopesAreIndependentAndFatalityIsCarried) {
  sim::FaultSchedule s;
  s.kill("a", 0, /*fatal=*/false);
  s.kill("b", 0, /*fatal=*/true);
  const auto fa = s.check("a");
  ASSERT_TRUE(fa.has_value());
  EXPECT_FALSE(fa->fatal);
  const auto fb = s.check("b");
  ASSERT_TRUE(fb.has_value());
  EXPECT_TRUE(fb->fatal);
  EXPECT_FALSE(s.check("a").has_value());
  EXPECT_EQ(s.killed(), 2u);
}

TEST(FaultSchedule, CorruptAndExhaustCarryTheirKindAndAreNonFatal) {
  using Kind = sim::FaultSchedule::Fault::Kind;
  sim::FaultSchedule s;
  s.corrupt("x", 1);
  s.exhaust("x.reg", 3, /*n=*/2);
  EXPECT_FALSE(s.check("x").has_value());  // 0
  const auto fc = s.check("x");            // 1: the corruption
  ASSERT_TRUE(fc.has_value());
  EXPECT_EQ(fc->kind, Kind::kCorrupt);
  EXPECT_FALSE(fc->fatal);  // delivered as success, not a QP error
  EXPECT_FALSE(s.check("x").has_value());  // 2
  // Resource sub-scopes count independently of the WQE scope.
  EXPECT_FALSE(s.check("x.reg").has_value());  // 0
  EXPECT_FALSE(s.check("x.reg").has_value());  // 1
  EXPECT_FALSE(s.check("x.reg").has_value());  // 2
  for (int i = 0; i < 2; ++i) {
    const auto fe = s.check("x.reg");  // 3, 4: the denial window
    ASSERT_TRUE(fe.has_value());
    EXPECT_EQ(fe->kind, Kind::kExhaust);
    EXPECT_FALSE(fe->fatal);
  }
  EXPECT_FALSE(s.check("x.reg").has_value());  // 5: window closed
  EXPECT_EQ(s.observed("x"), 3u);
  EXPECT_EQ(s.observed("x.reg"), 6u);
  EXPECT_EQ(s.killed(), 3u);  // every delivered fault counts, any kind
}

// ---------------------------------------------------------------------------
// Verbs-level RC error semantics
// ---------------------------------------------------------------------------

/// Connected QP pair, same shape as ib_test's rig.
struct Pair {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  ib::Node* a = nullptr;
  ib::Node* b = nullptr;
  ib::ProtectionDomain* pda = nullptr;
  ib::ProtectionDomain* pdb = nullptr;
  ib::CompletionQueue* cqa = nullptr;
  ib::CompletionQueue* cqb = nullptr;
  ib::QueuePair* qpa = nullptr;
  ib::QueuePair* qpb = nullptr;

  explicit Pair(ib::FabricConfig cfg = {}) : fabric(sim, cfg) {
    a = &fabric.add_node("a");
    b = &fabric.add_node("b");
    pda = &a->hca().alloc_pd();
    pdb = &b->hca().alloc_pd();
    cqa = &a->hca().create_cq("cqa");
    cqb = &b->hca().create_cq("cqb");
    qpa = &a->hca().create_qp(*pda, *cqa, *cqa);
    qpb = &b->hca().create_qp(*pdb, *cqb, *cqb);
    qpa->connect(*qpb);
  }
};

TEST(FlushSemantics, ErrorQpFlushesSubsequentWqesInPostOrder) {
  Pair p;
  sim::FaultSchedule faults;
  faults.kill("a", 0);  // first WQE dies fatally -> QP enters error state
  p.fabric.attach_faults(&faults);
  alignas(8) static std::byte buf[64];
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        // The victim never reaches SGE validation (the fault fires first),
        // so no registration is needed.
        pr.qpa->post_send(ib::SendWr{1, ib::Opcode::kRdmaWrite,
                                     {ib::Sge{buf, 8, 0}}, 0, 0, true});
        const ib::Wc victim = co_await pr.cqa->next();
        EXPECT_EQ(victim.wr_id, 1u);
        EXPECT_EQ(victim.status, ib::WcStatus::kTransportError);
        EXPECT_TRUE(pr.qpa->in_error());
        // Everything posted to the errored QP completes kFlushError, in
        // exactly the order posted (RC error semantics).
        for (std::uint64_t id = 10; id < 15; ++id) {
          pr.qpa->post_send(ib::SendWr{id, ib::Opcode::kRdmaWrite,
                                       {ib::Sge{buf, 8, 0}}, 0, 0, true});
        }
        for (std::uint64_t id = 10; id < 15; ++id) {
          const ib::Wc wc = co_await pr.cqa->next();
          EXPECT_EQ(wc.wr_id, id);
          EXPECT_EQ(wc.status, ib::WcStatus::kFlushError);
        }
      }(p),
      "flush_order");
  p.sim.run();
  EXPECT_EQ(faults.killed(), 1u);
}

TEST(FlushSemantics, ResetAfterQuiesceReturnsErroredQpToService) {
  Pair p;
  sim::FaultSchedule faults;
  faults.kill("a", 0);
  p.fabric.attach_faults(&faults);
  alignas(8) static std::byte src[64];
  alignas(8) static std::byte dst[64];
  std::memset(src, 0x5c, sizeof(src));
  std::memset(dst, 0, sizeof(dst));
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        ib::MemoryRegion* ms = co_await pr.pda->register_memory(src, 64);
        ib::MemoryRegion* md = co_await pr.pdb->register_memory(dst, 64);
        pr.qpa->post_send(ib::SendWr{1, ib::Opcode::kRdmaWrite,
                                     {ib::Sge{src, 64, ms->lkey()}},
                                     reinterpret_cast<std::uint64_t>(dst),
                                     md->rkey(), true});
        const ib::Wc victim = co_await pr.cqa->next();
        EXPECT_EQ(victim.status, ib::WcStatus::kTransportError);
        EXPECT_TRUE(pr.qpa->in_error());
        // Recovery lifecycle: close (already errored), drain, reset.
        pr.qpa->close();
        co_await pr.qpa->quiesce();
        pr.qpa->reset();
        EXPECT_FALSE(pr.qpa->in_error());
        // The reset QP carries traffic again.
        pr.qpa->post_send(ib::SendWr{2, ib::Opcode::kRdmaWrite,
                                     {ib::Sge{src, 64, ms->lkey()}},
                                     reinterpret_cast<std::uint64_t>(dst),
                                     md->rkey(), true});
        const ib::Wc wc = co_await pr.cqa->next();
        EXPECT_EQ(wc.wr_id, 2u);
        EXPECT_EQ(wc.status, ib::WcStatus::kSuccess);
        EXPECT_EQ(dst[0], std::byte{0x5c});
      }(p),
      "reset");
  p.sim.run();
}

TEST(FlushSemantics, ResetBeforeQuiesceThrows) {
  Pair p;
  alignas(8) static std::byte buf[8];
  p.sim.spawn(
      [](Pair& pr) -> sim::Task<void> {
        // A queued WQE makes the QP non-quiescent; close() will flush it,
        // but reset() must refuse until the drain has actually happened.
        pr.qpa->post_send(ib::SendWr{1, ib::Opcode::kRdmaWrite,
                                     {ib::Sge{buf, 8, 0}}, 0, 0, true});
        pr.qpa->close();
        EXPECT_THROW(pr.qpa->reset(), ib::VerbsError);
        co_await pr.qpa->quiesce();
        pr.qpa->reset();  // fine once drained
        EXPECT_FALSE(pr.qpa->in_error());
        co_return;
      }(p),
      "early_reset");
  p.sim.run();
}

TEST(Inject, RetryStormTimingMatchesDoc) {
  // Pins the timing documented on FabricConfig::inject_error_rate: with
  // rate 1.0 and retry_count 3, a WQE spends wqe_overhead, then 3 failed
  // retransmissions (one retry_delay each), and the kTransportError CQE
  // lags the final attempt by the NAK round trip (2 * wire_latency).
  ib::FabricConfig cfg;
  cfg.inject_error_rate = 1.0;
  cfg.retry_count = 3;
  Pair p(cfg);
  sim::TraceSink sink;
  p.fabric.attach_tracer(&sink);
  alignas(8) static std::byte src[8];
  p.sim.spawn(
      [](Pair& pr, sim::TraceSink& sk) -> sim::Task<void> {
        ib::MemoryRegion* ms = co_await pr.pda->register_memory(src, 8);
        const sim::Tick t0 = pr.sim.now();
        pr.qpa->post_send(ib::SendWr{1, ib::Opcode::kRdmaWrite,
                                     {ib::Sge{src, 8, ms->lkey()}},
                                     reinterpret_cast<std::uint64_t>(src),
                                     ms->rkey(), true});
        const ib::Wc wc = co_await pr.cqa->next();
        EXPECT_EQ(wc.status, ib::WcStatus::kTransportError);
        const ib::FabricConfig& c = pr.fabric.cfg();
        EXPECT_EQ(pr.sim.now(), t0 + c.wqe_overhead + 3 * c.retry_delay +
                                    2 * c.wire_latency);
        EXPECT_EQ(sk.count("retransmit"), 3u);
      }(p, sink),
      "storm");
  p.sim.run();
}

// ---------------------------------------------------------------------------
// Differential fault harness (channel level)
// ---------------------------------------------------------------------------

constexpr sim::Tick kDeadline = sim::usec(5'000'000);  // 5 virtual seconds

struct RunResult {
  std::vector<std::byte> received;
  bool send_done = false;
  bool recv_done = false;
  bool send_error = false;
  bool recv_error = false;
  std::uint64_t recoveries = 0;
  std::uint64_t kills = 0;
};

std::uint64_t recoveries_of(rdmach::Channel* ch) {
  if (auto* mm = dynamic_cast<rdmach::MultiMethodChannel*>(ch)) {
    ch = mm->net();
  }
  auto* vb = dynamic_cast<rdmach::VerbsChannelBase*>(ch);
  return vb != nullptr ? vb->recoveries() : 0;
}

/// Streams `traffic` rank0 -> rank1 under `plan`'s fault schedule, then a
/// one-byte completion token rank1 -> rank0 (which keeps the sender's
/// progress engine turning until the receiver has drained everything --
/// unsignaled slot-write failures are only discovered at the next put/get
/// entry).  Runs under a virtual-time deadline, never sim.run(), so a
/// recovery bug shows up as unmet flags rather than a hung test binary.
RunResult run_stream(rdmach::Design design, const Traffic& traffic,
                     FaultPlan* plan, int recovery_max_attempts = 8,
                     rdmach::ChannelConfig base = {}) {
  RunResult rr;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  if (plan != nullptr) fabric.attach_faults(&plan->schedule);
  pmi::Job job{fabric, 2};
  rdmach::ChannelConfig cfg = base;
  cfg.design = design;
  cfg.recovery_max_attempts = recovery_max_attempts;
  std::unique_ptr<rdmach::Channel> ch[2];
  rr.received.resize(traffic.total());

  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    ch[ctx.rank] = rdmach::Channel::create(ctx, cfg);
    rdmach::Channel& c = *ch[ctx.rank];
    co_await c.init();
    rdmach::Connection& conn = c.connection(1 - ctx.rank);
    if (ctx.rank == 0) {
      try {
        std::size_t off = 0;
        for (const std::size_t sz : traffic.sizes) {
          co_await rdmach::testutil::send_all(c, conn,
                                              traffic.bytes.data() + off, sz);
          off += sz;
        }
        std::byte token{};
        co_await rdmach::testutil::recv_all(c, conn, &token, 1);
        rr.send_done = true;
        co_await c.finalize();
      } catch (const rdmach::ChannelError&) {
        rr.send_error = true;
      }
    } else {
      try {
        co_await rdmach::testutil::recv_all(c, conn, rr.received.data(),
                                            rr.received.size());
        const std::byte token{0x1};
        co_await rdmach::testutil::send_all(c, conn, &token, 1);
        rr.recv_done = true;
        co_await c.finalize();
      } catch (const rdmach::ChannelError&) {
        rr.recv_error = true;
      }
    }
  });
  sim.run_until(kDeadline);
  for (int r = 0; r < 2; ++r) rr.recoveries += recoveries_of(ch[r].get());
  if (plan != nullptr) rr.kills = plan->schedule.killed();
  return rr;
}

class FaultDesignTest : public ::testing::TestWithParam<rdmach::Design> {};

INSTANTIATE_TEST_SUITE_P(AllRdmaDesigns, FaultDesignTest,
                         ::testing::Values(rdmach::Design::kBasic,
                                           rdmach::Design::kPiggyback,
                                           rdmach::Design::kPipeline,
                                           rdmach::Design::kZeroCopy,
                                           rdmach::Design::kMultiMethod,
                                           rdmach::Design::kAdaptive),
                         [](const auto& info) {
                           std::string n = rdmach::to_string(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(FaultDesignTest, DeliversOracleByteStreamAcrossMidStreamFaults) {
  const Traffic traffic = Traffic::make(/*seed=*/21, /*messages=*/40,
                                        /*min_len=*/1, /*max_len=*/3000);
  // The oracle: the same traffic through the literally-shared-memory
  // channel, fault-free.  By the FIFO-pipe contract its output must equal
  // the concatenated input stream.
  const RunResult oracle =
      run_stream(rdmach::Design::kShm, traffic, /*plan=*/nullptr);
  ASSERT_TRUE(oracle.recv_done);
  ASSERT_TRUE(oracle.send_done);
  ASSERT_EQ(oracle.received, traffic.bytes);

  // Same traffic, transport errors killed mid-stream on both sides.
  FaultPlan plan;
  plan.kill(0, 5).kill(0, 25).kill(1, 3);
  RunResult rr = run_stream(GetParam(), traffic, &plan);
  EXPECT_GE(rr.kills, 1u);
  EXPECT_GE(rr.recoveries, 1u);
  EXPECT_FALSE(rr.send_error);
  EXPECT_FALSE(rr.recv_error);
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, oracle.received);
}

TEST(ZeroCopyFault, RendezvousRdmaReadRestartsAfterTransportError) {
  // One message large enough for the zero-copy rendezvous path; the
  // receiver's very first WQE is the RDMA read -- kill it.  Recovery must
  // re-issue the read on the replacement QP (re-registering the
  // destination) and the sender must re-deliver the control slot.
  const Traffic traffic =
      Traffic::make(/*seed=*/7, /*messages=*/1, /*min_len=*/262144,
                    /*max_len=*/262144);
  FaultPlan plan;
  plan.kill(1, 0);
  RunResult rr = run_stream(rdmach::Design::kZeroCopy, traffic, &plan);
  EXPECT_EQ(rr.kills, 1u);
  EXPECT_GE(rr.recoveries, 2u);  // both sides re-handshake
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, traffic.bytes);
}

TEST(ZeroCopyFault, BidirectionalStreamsRecoverIndependently) {
  // Both directions carry traffic and both nodes lose a QP; each side's
  // recovery replays its own outbound ring over the shared re-handshake.
  const Traffic t0 = Traffic::make(101, 3, 1500, 2500);
  const Traffic t1 = Traffic::make(202, 3, 1500, 2500);
  FaultPlan plan;
  plan.kill(0, 2).kill(1, 1);

  sim::Simulator sim;
  ib::Fabric fabric{sim};
  fabric.attach_faults(&plan.schedule);
  pmi::Job job{fabric, 2};
  rdmach::ChannelConfig cfg;
  cfg.design = rdmach::Design::kZeroCopy;
  std::unique_ptr<rdmach::Channel> ch[2];
  std::vector<std::byte> got0(t1.total());
  std::vector<std::byte> got1(t0.total());
  bool done[2] = {false, false};

  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    ch[ctx.rank] = rdmach::Channel::create(ctx, cfg);
    rdmach::Channel& c = *ch[ctx.rank];
    co_await c.init();
    rdmach::Connection& conn = c.connection(1 - ctx.rank);
    const Traffic& out = ctx.rank == 0 ? t0 : t1;
    std::vector<std::byte>& in = ctx.rank == 0 ? got0 : got1;
    // Both streams fit in the ring, so send-then-receive cannot deadlock.
    std::size_t off = 0;
    for (const std::size_t sz : out.sizes) {
      co_await rdmach::testutil::send_all(c, conn, out.bytes.data() + off, sz);
      off += sz;
    }
    co_await rdmach::testutil::recv_all(c, conn, in.data(), in.size());
    done[ctx.rank] = true;
    co_await c.finalize();
  });
  sim.run_until(kDeadline);

  EXPECT_TRUE(done[0]);
  EXPECT_TRUE(done[1]);
  EXPECT_EQ(got0, t1.bytes);
  EXPECT_EQ(got1, t0.bytes);
  EXPECT_GE(plan.schedule.killed(), 2u);
  EXPECT_GE(recoveries_of(ch[0].get()) + recoveries_of(ch[1].get()), 2u);
}

TEST(AdaptiveFault, ChunkedReadPipelineRecoversAfterAuxQpError) {
  // One read-path rendezvous (256K = two 128K chunk reads on aux QPs); the
  // receiver's very first WQE is the first chunk read -- kill it.  The aux
  // QP errors, the main-QP epoch recovery runs, and replay must reset the
  // aux QP in place and re-pull the failed chunk with a fresh destination
  // registration.
  const Traffic traffic =
      Traffic::make(/*seed=*/8, /*messages=*/1, /*min_len=*/262144,
                    /*max_len=*/262144);
  FaultPlan plan;
  plan.kill(1, 0);
  RunResult rr = run_stream(rdmach::Design::kAdaptive, traffic, &plan);
  EXPECT_EQ(rr.kills, 1u);
  EXPECT_GE(rr.recoveries, 2u);  // both sides re-handshake
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, traffic.bytes);
}

TEST(AdaptiveFault, WriteRendezvousRecoversMidRound) {
  // Force every rendezvous onto the write path (read threshold beyond any
  // message) and kill the sender's data write.  The unsignaled data and FIN
  // writes die with the QP; replay must re-post the whole open CTS round --
  // data then FIN -- from the loaned source bytes.
  rdmach::ChannelConfig base;
  base.rndv_read_threshold = std::size_t{1} << 30;
  const Traffic traffic =
      Traffic::make(/*seed=*/9, /*messages=*/1, /*min_len=*/200000,
                    /*max_len=*/200000);
  FaultPlan plan;
  plan.kill(0, 1);  // op 0 is the RTS slot write, op 1 the rendezvous data
  RunResult rr = run_stream(rdmach::Design::kAdaptive, traffic, &plan,
                            /*recovery_max_attempts=*/8, base);
  EXPECT_EQ(rr.kills, 1u);
  EXPECT_GE(rr.recoveries, 2u);
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, traffic.bytes);
}

TEST(AdaptiveFault, MixedRendezvousDifferentialAcrossFaults) {
  // Rendezvous-heavy differential against the shared-memory oracle: message
  // sizes span the eager, write, and read bands, with transport errors
  // killed on both sides mid-stream.
  const Traffic traffic = Traffic::make(/*seed=*/10, /*messages=*/12,
                                        /*min_len=*/20'000,
                                        /*max_len=*/300'000);
  const RunResult oracle =
      run_stream(rdmach::Design::kShm, traffic, /*plan=*/nullptr);
  ASSERT_TRUE(oracle.recv_done);
  ASSERT_EQ(oracle.received, traffic.bytes);

  FaultPlan plan;
  plan.kill(0, 5).kill(0, 40).kill(1, 2).kill(1, 30);
  RunResult rr = run_stream(rdmach::Design::kAdaptive, traffic, &plan);
  EXPECT_GE(rr.kills, 2u);
  EXPECT_GE(rr.recoveries, 2u);
  EXPECT_FALSE(rr.send_error);
  EXPECT_FALSE(rr.recv_error);
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, oracle.received);
}

TEST(RecoveryBudget, ExhaustionSurfacesChannelErrorOnBothRanksWithoutHang) {
  // node0's HCA never completes another WQE: every recovery epoch replays
  // into the same wall.  After recovery_max_attempts consecutive attempts
  // with no watermark progress the sender must declare the connection dead
  // and raise ChannelError; the peer learns of it through the published
  // dead marker and raises too.  Neither side may hang.
  const Traffic traffic = Traffic::make(/*seed=*/33, /*messages=*/10,
                                        /*min_len=*/100, /*max_len=*/1000);
  FaultPlan plan;
  plan.kill_from(0, 0);
  const RunResult rr = run_stream(rdmach::Design::kPiggyback, traffic, &plan,
                                  /*recovery_max_attempts=*/3);
  EXPECT_TRUE(rr.send_error);
  EXPECT_TRUE(rr.recv_error);
  EXPECT_FALSE(rr.send_done);
  EXPECT_FALSE(rr.recv_done);
  EXPECT_GE(rr.kills, 1u);
}

TEST(RecoveryBudget, FaultFreeTrafficPerformsNoRecoveries) {
  // The recovery machinery must be invisible when nothing fails.
  const Traffic traffic = Traffic::make(5, 10, 1, 2000);
  const RunResult rr =
      run_stream(rdmach::Design::kZeroCopy, traffic, /*plan=*/nullptr);
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, traffic.bytes);
  EXPECT_EQ(rr.recoveries, 0u);
}

// ---------------------------------------------------------------------------
// MPI-level behavior
// ---------------------------------------------------------------------------

TEST(MpiFault, SendRecvCompletesAcrossTransportErrors) {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  sim::FaultSchedule faults;
  faults.kill("node0", 0);
  faults.kill("node0", 3);
  faults.kill("node1", 0);
  fabric.attach_faults(&faults);
  pmi::Job job{fabric, 2};
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = rdmach::Design::kPipeline;
  constexpr int kN = 20'000;  // several ring slots' worth
  std::vector<int> got(kN, -1);
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    if (ctx.rank == 0) {
      std::vector<int> data(kN);
      std::iota(data.begin(), data.end(), 0);
      co_await rt.world().send(data.data(), kN, mpi::Datatype::kInt, 1, 7);
    } else {
      co_await rt.world().recv(got.data(), kN, mpi::Datatype::kInt, 0, 7);
    }
    co_await rt.finalize();
  });
  sim.run();  // completes: recovery is invisible at the MPI layer
  EXPECT_GE(faults.killed(), 2u);
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i) << "at index " << i;
  }
}

TEST(MpiFault, RecoveryBudgetExhaustionFailsTheProcessCleanly) {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  sim::FaultSchedule faults;
  faults.kill_from("node0", 0);
  fabric.attach_faults(&faults);
  pmi::Job job{fabric, 2};
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = rdmach::Design::kPiggyback;
  cfg.stack.channel.recovery_max_attempts = 2;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    int v = 42;
    if (ctx.rank == 0) {
      co_await rt.world().send(&v, 1, mpi::Datatype::kInt, 1, 0);
    } else {
      co_await rt.world().recv(&v, 1, mpi::Datatype::kInt, 0, 0);
    }
    co_await rt.finalize();
  });
  // The dead connection surfaces as ch3::VcError out of the rank body,
  // which the simulator reports as a failed process -- not a deadlock.
  EXPECT_THROW(sim.run(), sim::ProcessError);
  EXPECT_GE(faults.killed(), 1u);
}

// ---------------------------------------------------------------------------
// Registration cache under pin-down pressure
// ---------------------------------------------------------------------------

struct CacheRig {
  sim::Simulator sim;
  ib::Fabric fabric;
  ib::Node* node = nullptr;
  ib::ProtectionDomain* pd = nullptr;

  explicit CacheRig(ib::FabricConfig cfg = {}) : fabric(sim, cfg) {
    node = &fabric.add_node("n");
    pd = &node->hca().alloc_pd();
  }
};

TEST(RegCache, EvictsUnpinnedEntriesWhenTheHcaRefusesToRegister) {
  ib::FabricConfig fcfg;
  fcfg.max_registered_bytes = 8192;  // room for exactly two pages
  CacheRig rig(fcfg);
  rdmach::RegCache cache(*rig.pd, /*capacity_bytes=*/1u << 20,
                         /*enabled=*/true);
  std::vector<std::byte> a(4096), b(4096), c(4096), d(4096);
  rig.sim.spawn(
      [](CacheRig& r, rdmach::RegCache& cc, std::vector<std::byte>& ba,
         std::vector<std::byte>& bb, std::vector<std::byte>& bc,
         std::vector<std::byte>& bd) -> sim::Task<void> {
        ib::MemoryRegion* ma = co_await cc.acquire(ba.data(), ba.size());
        co_await cc.release(ma);  // cached, unpinned
        ib::MemoryRegion* mb = co_await cc.acquire(bb.data(), bb.size());
        EXPECT_EQ(r.pd->registered_bytes(), 8192);
        // Third page: the HCA refuses; the cache must evict the unpinned
        // entry and retry rather than surface the failure.
        ib::MemoryRegion* mc = co_await cc.acquire(bc.data(), bc.size());
        EXPECT_NE(mc, nullptr);
        EXPECT_EQ(cc.evictions(), 1u);
        EXPECT_EQ(r.pd->registered_bytes(), 8192);
        // Fourth page with everything pinned: nothing evictable, so the
        // RegistrationError propagates to the caller.
        bool threw = false;
        try {
          co_await cc.acquire(bd.data(), bd.size());
        } catch (const ib::RegistrationError&) {
          threw = true;
        }
        EXPECT_TRUE(threw);
        co_await cc.release(mb);
        co_await cc.release(mc);
        co_await cc.flush();
        EXPECT_EQ(r.pd->registered_bytes(), 0);
      }(rig, cache, a, b, c, d),
      "evict");
  rig.sim.run();
}

TEST(RegCache, InvalidateRemovesTheEntryEvenWhilePinned) {
  CacheRig rig;
  rdmach::RegCache cache(*rig.pd, 1u << 20, /*enabled=*/true);
  std::vector<std::byte> buf(8192);
  rig.sim.spawn(
      [](CacheRig& r, rdmach::RegCache& cc,
         std::vector<std::byte>& b) -> sim::Task<void> {
        ib::MemoryRegion* mr = co_await cc.acquire(b.data(), b.size());
        EXPECT_EQ(cc.misses(), 1u);
        EXPECT_EQ(cc.entry_count(), 1u);
        // Recovery path: the registration is involved in a torn-down
        // transfer; it must go away even though it is still pinned.
        co_await cc.invalidate(mr);
        EXPECT_EQ(cc.entry_count(), 0u);
        EXPECT_EQ(cc.cached_bytes(), 0u);
        EXPECT_EQ(r.pd->registered_bytes(), 0);
        // Reuse is a fresh miss, not a stale hit.
        ib::MemoryRegion* again = co_await cc.acquire(b.data(), b.size());
        EXPECT_EQ(cc.misses(), 2u);
        EXPECT_EQ(cc.hits(), 0u);
        co_await cc.release(again);
        co_await cc.flush();
      }(rig, cache, buf),
      "invalidate");
  rig.sim.run();
}

TEST(RegCache, CountersStayConsistentUnderRandomChurn) {
  CacheRig rig;
  // Small capacity so LRU eviction runs constantly.
  rdmach::RegCache cache(*rig.pd, 3 * 4096, /*enabled=*/true);
  constexpr std::size_t kBufs = 8;
  std::vector<std::vector<std::byte>> bufs(kBufs,
                                           std::vector<std::byte>(4096));
  rig.sim.spawn(
      [](CacheRig& r, rdmach::RegCache& cc,
         std::vector<std::vector<std::byte>>& bs) -> sim::Task<void> {
        sim::Rng rng(77);
        std::vector<ib::MemoryRegion*> pinned(bs.size(), nullptr);
        std::uint64_t acquires = 0;
        for (int i = 0; i < 200; ++i) {
          const std::size_t k =
              static_cast<std::size_t>(rng.below(bs.size()));
          if (pinned[k] != nullptr) {
            co_await cc.release(pinned[k]);
            pinned[k] = nullptr;
          } else {
            pinned[k] = co_await cc.acquire(bs[k].data(), bs[k].size());
            ++acquires;
          }
          // Invariants at every step: the counters partition the acquire
          // stream and byte accounting matches the entry table.
          EXPECT_EQ(cc.hits() + cc.misses(), acquires);
          EXPECT_EQ(cc.cached_bytes(), cc.entry_count() * 4096);
          EXPECT_LE(cc.evictions(), cc.misses());
        }
        for (std::size_t k = 0; k < bs.size(); ++k) {
          if (pinned[k] != nullptr) co_await cc.release(pinned[k]);
        }
        co_await cc.flush();
        EXPECT_EQ(cc.entry_count(), 0u);
        EXPECT_EQ(cc.cached_bytes(), 0u);
        EXPECT_EQ(r.pd->registered_bytes(), 0);
      }(rig, cache, bufs),
      "churn");
  rig.sim.run();
}

}  // namespace
