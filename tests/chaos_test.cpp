// Chaos soak harness: end-to-end data integrity + resource exhaustion.
//
// Every test streams randomized traffic through a channel design while the
// fault schedule corrupts payloads in flight (delivered as successes),
// denies memory registrations, drops CQEs into the overrun buffer, or
// withholds ring credit -- then differentially checks the delivered byte
// stream against the concatenated input (the ShmChannel oracle contract
// from fault_test): no reorder, no duplication, no silent corruption.  The
// `integrity_check` knob is ON here; a dedicated test pins the documented
// silent-corruption behavior with it off.  The suite carries the `chaos`
// ctest label so `ctest -L chaos` (and the asan-chaos preset) can soak the
// degradation paths alone.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "channel_test_util.hpp"
#include "ch3/ch3.hpp"
#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"
#include "rdmach/channel.hpp"
#include "rdmach/multi_method_channel.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using rdmach::testutil::FaultPlan;
using rdmach::testutil::Traffic;

constexpr sim::Tick kDeadline = sim::usec(5'000'000);  // 5 virtual seconds

struct RunResult {
  std::vector<std::byte> received;
  bool send_done = false;
  bool recv_done = false;
  bool send_error = false;
  bool recv_error = false;
  rdmach::ChannelError::Kind send_kind = rdmach::ChannelError::kDead;
  rdmach::ChannelError::Kind recv_kind = rdmach::ChannelError::kDead;
  std::uint64_t recoveries = 0;
  std::uint64_t faults = 0;
  rdmach::ChannelStats stats;  // both ranks' counters, summed
};

/// Streams `traffic` rank0 -> rank1 under `plan`, then a one-byte token
/// rank1 -> rank0 (keeps the sender's progress engine turning until the
/// receiver drained everything).  Same deadline-bounded shape as
/// fault_test's harness, plus ChannelError-kind capture and the summed
/// hardening counters.
RunResult run_stream(rdmach::Design design, const Traffic& traffic,
                     FaultPlan* plan, rdmach::ChannelConfig base = {},
                     int recovery_max_attempts = 8) {
  RunResult rr;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  if (plan != nullptr) fabric.attach_faults(&plan->schedule);
  pmi::Job job{fabric, 2};
  rdmach::ChannelConfig cfg = base;
  cfg.design = design;
  cfg.recovery_max_attempts = recovery_max_attempts;
  std::unique_ptr<rdmach::Channel> ch[2];
  rr.received.resize(traffic.total());

  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    ch[ctx.rank] = rdmach::Channel::create(ctx, cfg);
    rdmach::Channel& c = *ch[ctx.rank];
    co_await c.init();
    rdmach::Connection& conn = c.connection(1 - ctx.rank);
    if (ctx.rank == 0) {
      try {
        std::size_t off = 0;
        for (const std::size_t sz : traffic.sizes) {
          co_await rdmach::testutil::send_all(c, conn,
                                              traffic.bytes.data() + off, sz);
          off += sz;
        }
        std::byte token{};
        co_await rdmach::testutil::recv_all(c, conn, &token, 1);
        rr.send_done = true;
        co_await c.finalize();
      } catch (const rdmach::ChannelError& e) {
        rr.send_error = true;
        rr.send_kind = e.kind();
      }
    } else {
      try {
        co_await rdmach::testutil::recv_all(c, conn, rr.received.data(),
                                            rr.received.size());
        const std::byte token{0x1};
        co_await rdmach::testutil::send_all(c, conn, &token, 1);
        rr.recv_done = true;
        co_await c.finalize();
      } catch (const rdmach::ChannelError& e) {
        rr.recv_error = true;
        rr.recv_kind = e.kind();
      }
    }
  });
  sim.run_until(kDeadline);
  for (int r = 0; r < 2; ++r) {
    if (ch[r] == nullptr) continue;
    const rdmach::ChannelStats t = ch[r]->stats();
    rr.recoveries += t.recoveries;
    rr.stats.recoveries += t.recoveries;
    rr.stats.crc_failures += t.crc_failures;
    rr.stats.retransmits += t.retransmits;
    rr.stats.reg_fallbacks += t.reg_fallbacks;
    rr.stats.cq_overruns += t.cq_overruns;
    rr.stats.credit_stalls += t.credit_stalls;
  }
  if (plan != nullptr) rr.faults = plan->schedule.killed();
  return rr;
}

rdmach::ChannelConfig integrity_on() {
  rdmach::ChannelConfig cfg;
  cfg.integrity_check = true;
  return cfg;
}

class ChaosDesignTest : public ::testing::TestWithParam<rdmach::Design> {};

INSTANTIATE_TEST_SUITE_P(AllRdmaDesigns, ChaosDesignTest,
                         ::testing::Values(rdmach::Design::kBasic,
                                           rdmach::Design::kPiggyback,
                                           rdmach::Design::kPipeline,
                                           rdmach::Design::kZeroCopy,
                                           rdmach::Design::kMultiMethod,
                                           rdmach::Design::kAdaptive),
                         [](const auto& info) {
                           std::string n = rdmach::to_string(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Silent corruption healed by the integrity option
// ---------------------------------------------------------------------------

TEST_P(ChaosDesignTest, CorruptedTrafficHealsAndDeliversOracle) {
  const Traffic traffic = Traffic::make(/*seed=*/121, /*messages=*/40,
                                        /*min_len=*/1, /*max_len=*/3000);
  FaultPlan plan;
  plan.corrupt(0, 5).corrupt(0, 25).corrupt(1, 3);
  RunResult rr = run_stream(GetParam(), traffic, &plan, integrity_on());
  EXPECT_GE(rr.faults, 1u);
  EXPECT_FALSE(rr.send_error);
  EXPECT_FALSE(rr.recv_error);
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, traffic.bytes);
  // The CRC machinery must have both caught the damage and repaired it.
  EXPECT_GE(rr.stats.crc_failures, 1u);
  EXPECT_GE(rr.stats.retransmits, 1u);
}

TEST(ChaosIntegrity, CorruptionIsSilentWithIntegrityOff) {
  // Pins the `integrity_check = false` default contract: a corrupted data
  // write is delivered as a success and nothing downstream notices -- the
  // stream completes but differs from the oracle.  (Basic design: rank0's
  // WQEs alternate data, head, data, head..., so op 4 is the third put's
  // data write and the flip lands in payload, not a pointer.)
  const Traffic traffic = Traffic::make(/*seed=*/122, /*messages=*/20,
                                        /*min_len=*/100, /*max_len=*/1000);
  FaultPlan plan;
  plan.corrupt(0, 4);
  RunResult rr = run_stream(rdmach::Design::kBasic, traffic, &plan);
  EXPECT_EQ(rr.faults, 1u);
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_NE(rr.received, traffic.bytes);  // silently corrupted
  EXPECT_EQ(rr.stats.crc_failures, 0u);
  EXPECT_EQ(rr.recoveries, 0u);
}

TEST(ChaosIntegrity, CorruptFloodRaisesIntegrityErrorNotHang) {
  // Every WQE rank0's HCA processes is corrupted: each replay rewrites
  // damaged bytes, the receiver NACKs forever, and after the recovery
  // budget drains with no verified progress the failure must surface as
  // ChannelError::kIntegrity on the receiver (the side that proved the
  // corruption) -- never as a hang or as silently wrong bytes.
  const Traffic traffic = Traffic::make(/*seed=*/123, /*messages=*/10,
                                        /*min_len=*/100, /*max_len=*/1000);
  FaultPlan plan;
  for (std::uint64_t i = 0; i < 400; ++i) plan.corrupt(0, i);
  RunResult rr = run_stream(rdmach::Design::kPiggyback, traffic, &plan,
                            integrity_on(), /*recovery_max_attempts=*/3);
  EXPECT_GE(rr.faults, 1u);
  EXPECT_FALSE(rr.recv_done);
  EXPECT_FALSE(rr.send_done);
  ASSERT_TRUE(rr.recv_error);
  EXPECT_EQ(rr.recv_kind, rdmach::ChannelError::kIntegrity);
  EXPECT_TRUE(rr.send_error);  // peer learns through the dead marker
  EXPECT_GE(rr.stats.crc_failures, 1u);
}

// ---------------------------------------------------------------------------
// Resource exhaustion: graceful degradation paths
// ---------------------------------------------------------------------------

TEST(ChaosExhaustion, ZeroCopyRegistrationDenialFallsBackToCopyPath) {
  // One rendezvous-sized message; rank0's init pins exactly three regions
  // (ring, staging, ctrl), so its op-3 registration is the zero-copy
  // source acquire.  Deny a window covering it: the put must degrade to
  // the pipelined copy path and still deliver the oracle stream, with no
  // recovery epoch spent.
  const Traffic traffic =
      Traffic::make(/*seed=*/124, /*messages=*/1, /*min_len=*/262144,
                    /*max_len=*/262144);
  FaultPlan plan;
  plan.exhaust_reg(0, /*from=*/3, /*n=*/10);
  RunResult rr =
      run_stream(rdmach::Design::kZeroCopy, traffic, &plan, integrity_on());
  EXPECT_GE(rr.faults, 1u);
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, traffic.bytes);
  EXPECT_GE(rr.stats.reg_fallbacks, 1u);
  EXPECT_EQ(rr.recoveries, 0u);
}

TEST(ChaosExhaustion, AdaptiveRegistrationDenialFallsBackAndRecoversLater) {
  // Adaptive init pins five regions (ring, staging, ctrl, FIN flags, FIN
  // sources); deny a window starting at its first data-phase acquire.  The
  // first rendezvous degrades to the copy path (teaching the selector the
  // penalty); once the window passes, later rendezvous run normally.
  const Traffic traffic =
      Traffic::make(/*seed=*/125, /*messages=*/4, /*min_len=*/262144,
                    /*max_len=*/262144);
  FaultPlan plan;
  plan.exhaust_reg(0, /*from=*/5, /*n=*/1);
  RunResult rr =
      run_stream(rdmach::Design::kAdaptive, traffic, &plan, integrity_on());
  EXPECT_GE(rr.faults, 1u);
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, traffic.bytes);
  EXPECT_GE(rr.stats.reg_fallbacks, 1u);
}

TEST(ChaosExhaustion, CqOverrunDrainsAndRearms) {
  // Drop two of rank0's delivered CQEs into the overrun buffer.  The basic
  // design waits on every data/head completion, so the lost CQEs must
  // resurface as flush errors through drain-and-rearm and replay must
  // rewrite the affected region -- delivery still matches the oracle.
  const Traffic traffic = Traffic::make(/*seed=*/126, /*messages=*/20,
                                        /*min_len=*/100, /*max_len=*/2000);
  FaultPlan plan;
  plan.exhaust_cq(0, /*from=*/1, /*n=*/2);
  RunResult rr =
      run_stream(rdmach::Design::kBasic, traffic, &plan, integrity_on());
  EXPECT_GE(rr.faults, 1u);
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, traffic.bytes);
  EXPECT_GE(rr.stats.cq_overruns, 1u);
  EXPECT_GE(rr.recoveries, 1u);
}

TEST(ChaosExhaustion, CreditDenialBackpressuresWithoutRecovery) {
  // Withhold rank0's first five ring-credit grants: each denied put
  // returns 0 and schedules its own wakeup, so the sender retries under
  // backpressure instead of deadlocking in wait_for_activity.  No QP ever
  // fails, so the recovery machinery must stay cold.
  const Traffic traffic = Traffic::make(/*seed=*/127, /*messages=*/20,
                                        /*min_len=*/100, /*max_len=*/2000);
  FaultPlan plan;
  plan.exhaust_credit(0, /*from=*/0, /*n=*/5);
  RunResult rr =
      run_stream(rdmach::Design::kPipeline, traffic, &plan, integrity_on());
  EXPECT_GE(rr.faults, 5u);
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, traffic.bytes);
  EXPECT_GE(rr.stats.credit_stalls, 5u);
  EXPECT_EQ(rr.recoveries, 0u);
}

// ---------------------------------------------------------------------------
// Seeded randomized chaos soak
// ---------------------------------------------------------------------------

TEST_P(ChaosDesignTest, SeededChaosSoakDeliversOracleByteStream) {
  // Hundreds of messages per design under a seeded random mix of kills,
  // corruptions, CQ drops, and credit denials on both ranks (registration
  // denial has its own targeted tests: its op index is design-specific and
  // a denial inside bootstrap would be a setup error, not a degradation).
  // The schedule is deterministic -- same seed, same faults, same virtual
  // timeline -- so a failure here reproduces exactly.
  const Traffic traffic = Traffic::make(/*seed=*/200, /*messages=*/800,
                                        /*min_len=*/1, /*max_len=*/30'000);
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  FaultPlan plan;
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < 5; ++i) {
      plan.corrupt(r, rng.below(2000));
    }
    for (int i = 0; i < 3; ++i) {
      plan.kill(r, rng.below(2000));
    }
    plan.exhaust_cq(r, rng.below(500), 2);
    plan.exhaust_credit(r, rng.below(200), 3);
  }
  RunResult rr = run_stream(GetParam(), traffic, &plan, integrity_on());
  EXPECT_GE(rr.faults, 4u);
  EXPECT_FALSE(rr.send_error);
  EXPECT_FALSE(rr.recv_error);
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  // The oracle contract: the FIFO byte stream, bit-exact, no silent loss.
  EXPECT_EQ(rr.received, traffic.bytes);
  // Bounded self-healing: retries happened but did not run away.
  EXPECT_LE(rr.recoveries, 64u);
  EXPECT_LE(rr.stats.retransmits, 100'000u);
}

TEST(ChaosSoak, FaultFreeIntegrityRunKeepsHardeningCountersAtZero) {
  // With integrity on but no faults injected, the checksums must all
  // verify silently: no NACKs, no retransmits, no fallbacks, no stalls.
  const Traffic traffic = Traffic::make(/*seed=*/201, /*messages=*/60,
                                        /*min_len=*/1, /*max_len=*/30'000);
  RunResult rr = run_stream(rdmach::Design::kAdaptive, traffic,
                            /*plan=*/nullptr, integrity_on());
  EXPECT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, traffic.bytes);
  EXPECT_EQ(rr.stats.crc_failures, 0u);
  EXPECT_EQ(rr.stats.retransmits, 0u);
  EXPECT_EQ(rr.stats.reg_fallbacks, 0u);
  EXPECT_EQ(rr.stats.cq_overruns, 0u);
  EXPECT_EQ(rr.stats.credit_stalls, 0u);
  EXPECT_EQ(rr.recoveries, 0u);
}

// ---------------------------------------------------------------------------
// CH3 exposure of the hardening counters
// ---------------------------------------------------------------------------

TEST(ChaosMpi, HardeningCountersSurfaceThroughCh3Adapter) {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  FaultPlan plan;
  plan.corrupt(0, 5).corrupt(0, 9);
  fabric.attach_faults(&plan.schedule);
  pmi::Job job{fabric, 2};
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = rdmach::Design::kPipeline;
  cfg.stack.channel.integrity_check = true;
  constexpr int kN = 20'000;  // several ring slots' worth
  std::vector<int> got(kN, -1);
  rdmach::ChannelStats st[2];
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    if (ctx.rank == 0) {
      std::vector<int> data(kN);
      std::iota(data.begin(), data.end(), 0);
      co_await rt.world().send(data.data(), kN, mpi::Datatype::kInt, 1, 7);
    } else {
      co_await rt.world().recv(got.data(), kN, mpi::Datatype::kInt, 0, 7);
    }
    // Read counters after finalize: the sender's send() can return with
    // all bytes accepted into the ring before the receiver's NACK forces
    // the replay, so the retransmit may land during the shutdown drain.
    co_await rt.finalize();
    st[ctx.rank] = rt.engine().channel().channel_stats();
  });
  sim.run();  // completes: detection + retransmit are invisible to MPI
  EXPECT_GE(plan.schedule.killed(), 1u);
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i) << "at index " << i;
  }
  // The receiver proved the corruption; the sender paid the retransmit;
  // both movements must be visible through the CH3 stats surface.
  EXPECT_GE(st[0].crc_failures + st[1].crc_failures, 1u);
  EXPECT_GE(st[0].retransmits + st[1].retransmits, 1u);
}

}  // namespace
