// Unit tests for the discrete-event simulation kernel: task semantics,
// event ordering, process lifecycle, synchronization primitives, and the
// bandwidth-resource contention model.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/campaign.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace sim {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(usec(1.0), kMicrosecond);
  EXPECT_EQ(usec(5.9), 5'900'000);
  EXPECT_EQ(nsec(2.5), 2'500);
  EXPECT_DOUBLE_EQ(to_usec(kMillisecond), 1000.0);
  EXPECT_DOUBLE_EQ(to_sec(kSecond), 1.0);
}

TEST(Time, TransferTimeMatchesRate) {
  // 870 MB/s: 87 bytes take exactly 100 ns.
  EXPECT_EQ(transfer_time(87, 870.0), 100 * kNanosecond);
  // One byte at 1 GB/s is 1 ns.
  EXPECT_EQ(transfer_time(1, 1000.0), kNanosecond);
  EXPECT_EQ(transfer_time(0, 870.0), 0);
  // Never free: rounding is upward.
  EXPECT_GT(transfer_time(1, 1e9), 0);
}

TEST(Time, BandwidthInverse) {
  const Tick t = transfer_time(1'000'000, 857.0);
  EXPECT_NEAR(bandwidth_mbps(1'000'000, t), 857.0, 0.1);
}

TEST(Simulator, DelayAdvancesClock) {
  Simulator sim;
  Tick seen = -1;
  sim.spawn(
      [](Simulator& s, Tick& out) -> Task<void> {
        co_await s.delay(usec(3.5));
        out = s.now();
      }(sim, seen),
      "delayer");
  sim.run();
  EXPECT_EQ(seen, usec(3.5));
}

TEST(Simulator, EqualTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.spawn(
        [](Simulator& s, std::vector<int>& ord, int id) -> Task<void> {
          co_await s.delay(usec(1.0));
          ord.push_back(id);
        }(sim, order, i),
        "p" + std::to_string(i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedTaskCallsPropagateValues) {
  Simulator sim;
  int result = 0;
  struct Helpers {
    static Task<int> leaf(Simulator& s) {
      co_await s.delay(usec(1.0));
      co_return 21;
    }
    static Task<int> mid(Simulator& s) {
      int v = co_await leaf(s);
      co_return v * 2;
    }
  };
  sim.spawn(
      [](Simulator& s, int& out) -> Task<void> {
        out = co_await Helpers::mid(s);
      }(sim, result),
      "nest");
  sim.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(sim.now(), usec(1.0));
}

TEST(Simulator, ExceptionInProcessSurfacesAsProcessError) {
  Simulator sim;
  sim.spawn(
      [](Simulator& s) -> Task<void> {
        co_await s.delay(usec(1.0));
        throw std::runtime_error("boom");
      }(sim),
      "failing-process");
  try {
    sim.run();
    FAIL() << "expected ProcessError";
  } catch (const ProcessError& e) {
    EXPECT_EQ(e.process(), "failing-process");
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Simulator, ExceptionPropagatesThroughNestedTasks) {
  Simulator sim;
  bool caught = false;
  struct Helpers {
    static Task<void> thrower(Simulator& s) {
      co_await s.delay(usec(1.0));
      throw std::logic_error("inner");
    }
  };
  sim.spawn(
      [](Simulator& s, bool& c) -> Task<void> {
        try {
          co_await Helpers::thrower(s);
        } catch (const std::logic_error&) {
          c = true;
        }
      }(sim, caught),
      "catcher");
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulator, BlockedRootProcessIsDeadlock) {
  Simulator sim;
  Trigger never(sim);
  sim.spawn(
      [](Trigger& t) -> Task<void> { co_await t.wait(); }(never),
      "stuck-one");
  EXPECT_THROW(sim.run(), DeadlockError);
}

TEST(Simulator, DaemonMayBlockForever) {
  Simulator sim;
  Trigger never(sim);
  sim.spawn_daemon(
      [](Trigger& t) -> Task<void> {
        for (;;) co_await t.wait();
      }(never),
      "service");
  sim.spawn(
      [](Simulator& s) -> Task<void> { co_await s.delay(usec(1.0)); }(sim),
      "worker");
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(sim.live_root_processes(), 0u);
}

TEST(Simulator, RunUntilStopsAtBound) {
  Simulator sim;
  int steps = 0;
  sim.spawn_daemon(
      [](Simulator& s, int& n) -> Task<void> {
        for (;;) {
          co_await s.delay(usec(1.0));
          ++n;
        }
      }(sim, steps),
      "ticker");
  sim.run_until(usec(10.0));
  EXPECT_EQ(steps, 10);
  EXPECT_EQ(sim.now(), usec(10.0));
}

TEST(Simulator, DestructionWithPendingProcessesDoesNotLeak) {
  // ASAN (if enabled) would flag leaked coroutine frames; structurally we
  // just check this doesn't crash.
  auto sim = std::make_unique<Simulator>();
  Trigger* never = new Trigger(*sim);
  sim->spawn(
      [](Trigger& t) -> Task<void> { co_await t.wait(); }(*never),
      "pending");
  sim->run_until(usec(1.0));
  sim.reset();
  delete never;
}

TEST(Trigger, FireWakesAllCurrentWaiters) {
  Simulator sim;
  Trigger t(sim);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(
        [](Trigger& tr, int& w) -> Task<void> {
          co_await tr.wait();
          ++w;
        }(t, woken),
        "waiter");
  }
  sim.spawn(
      [](Simulator& s, Trigger& tr) -> Task<void> {
        co_await s.delay(usec(2.0));
        tr.fire();
      }(sim, t),
      "firer");
  sim.run();
  EXPECT_EQ(woken, 3);
}

TEST(Trigger, FireBeforeWaitIsNotLatched) {
  Simulator sim;
  Trigger t(sim);
  t.fire();  // nobody listening; must not latch
  bool woke = false;
  sim.spawn(
      [](Trigger& tr, bool& w) -> Task<void> {
        co_await tr.wait();
        w = true;
      }(t, woke),
      "late-waiter");
  EXPECT_THROW(sim.run(), DeadlockError);
  EXPECT_FALSE(woke);
}

TEST(Gate, LatchesOpenState) {
  Simulator sim;
  Gate g(sim);
  g.open();
  bool passed = false;
  sim.spawn(
      [](Gate& gate, bool& p) -> Task<void> {
        co_await gate.wait();
        p = true;
      }(g, passed),
      "pass");
  sim.run();
  EXPECT_TRUE(passed);
}

TEST(Gate, ReleasesWaitersOnOpen) {
  Simulator sim;
  Gate g(sim);
  Tick when = -1;
  sim.spawn(
      [](Simulator& s, Gate& gate, Tick& w) -> Task<void> {
        co_await gate.wait();
        w = s.now();
      }(sim, g, when),
      "waiter");
  sim.spawn(
      [](Simulator& s, Gate& gate) -> Task<void> {
        co_await s.delay(usec(7.0));
        gate.open();
      }(sim, g),
      "opener");
  sim.run();
  EXPECT_EQ(when, usec(7.0));
}

TEST(Semaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int peak = 0, active = 0;
  for (int i = 0; i < 6; ++i) {
    sim.spawn(
        [](Simulator& s, Semaphore& sm, int& act, int& pk) -> Task<void> {
          co_await sm.acquire();
          ++act;
          pk = act > pk ? act : pk;
          co_await s.delay(usec(1.0));
          --act;
          sm.release();
        }(sim, sem, active, peak),
        "user" + std::to_string(i));
  }
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sem.available(), 2);
}

TEST(Mailbox, FifoOrderAcrossBlockingPops) {
  Simulator sim;
  Mailbox<int> mb(sim);
  std::vector<int> got;
  sim.spawn(
      [](Mailbox<int>& m, std::vector<int>& out) -> Task<void> {
        for (int i = 0; i < 4; ++i) out.push_back(co_await m.pop());
      }(mb, got),
      "consumer");
  sim.spawn(
      [](Simulator& s, Mailbox<int>& m) -> Task<void> {
        for (int i = 0; i < 4; ++i) {
          co_await s.delay(usec(1.0));
          m.push(i);
        }
      }(sim, mb),
      "producer");
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Mailbox, TryPopNonBlocking) {
  Simulator sim;
  Mailbox<int> mb(sim);
  EXPECT_FALSE(mb.try_pop().has_value());
  mb.push(9);
  auto v = mb.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
}

TEST(BandwidthResource, SingleStreamRunsAtFullRate) {
  Simulator sim;
  BandwidthResource link(sim, "link", 870.0);
  Tick done = -1;
  sim.spawn(
      [](Simulator& s, BandwidthResource& r, Tick& d) -> Task<void> {
        co_await r.transfer(870'000);  // 1 ms at 870 MB/s
        d = s.now();
      }(sim, link, done),
      "stream");
  sim.run();
  EXPECT_NEAR(to_usec(done), 1000.0, 1.0);
  EXPECT_EQ(link.total_bytes(), 870'000);
}

TEST(BandwidthResource, TwoStreamsShareRateFairly) {
  Simulator sim;
  BandwidthResource bus(sim, "bus", 1600.0);
  Tick d0 = -1, d1 = -1;
  auto stream = [](Simulator& s, BandwidthResource& r, Tick& d) -> Task<void> {
    co_await r.transfer(1'600'000);  // alone: 1 ms
    d = s.now();
  };
  sim.spawn(stream(sim, bus, d0), "s0");
  sim.spawn(stream(sim, bus, d1), "s1");
  sim.run();
  // Interleaved at chunk granularity: both finish near 2 ms.
  EXPECT_NEAR(to_usec(d0), 2000.0, 20.0);
  EXPECT_NEAR(to_usec(d1), 2000.0, 20.0);
}

TEST(BandwidthResource, LateArriverQueuesBehindBacklog) {
  Simulator sim;
  BandwidthResource link(sim, "link", 1000.0);  // 1 byte/ns
  Tick done = -1;
  sim.spawn(
      [](BandwidthResource& r) -> Task<void> {
        co_await r.transfer(4096);  // books [0, 4096 ns] in one chunk
      }(link),
      "first");
  sim.spawn(
      [](Simulator& s, BandwidthResource& r, Tick& d) -> Task<void> {
        co_await s.delay(nsec(100));
        co_await r.transfer(1000);
        d = s.now();
      }(sim, link, done),
      "second");
  sim.run();
  EXPECT_EQ(done, nsec(4096 + 1000));
}

TEST(BandwidthResource, UtilizationAccounting) {
  Simulator sim;
  BandwidthResource link(sim, "link", 1000.0);
  sim.spawn(
      [](Simulator& s, BandwidthResource& r) -> Task<void> {
        co_await r.transfer(1000);
        co_await s.delay(nsec(1000));  // idle tail
      }(sim, link),
      "half-busy");
  sim.run();
  EXPECT_NEAR(link.utilization(), 0.5, 0.01);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    const auto v = r.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformMeanIsPlausible) {
  Rng r(99);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Trace, SinkCountsAndBytes) {
  TraceSink sink;
  Tracer tr(&sink);
  tr.record(0, "qp0", "rdma_write", 1024);
  tr.record(5, "qp0", "rdma_write", 2048);
  tr.record(9, "qp0", "memcpy", 512);
  EXPECT_EQ(sink.count("rdma_write"), 2u);
  EXPECT_EQ(sink.total_bytes("rdma_write"), 3072);
  EXPECT_EQ(sink.count("memcpy"), 1u);
  Tracer off;
  off.record(0, "x", "y");  // must be a safe no-op
  EXPECT_FALSE(off.enabled());
}

// Drains `n` operations from `scope`, returning the indices (relative to
// the first drained op) at which the schedule delivered a fault.
std::vector<std::uint64_t> drain(FaultSchedule& s, const std::string& scope,
                                 std::uint64_t n) {
  std::vector<std::uint64_t> hits;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (s.check(scope)) hits.push_back(i);
  }
  return hits;
}

TEST(FaultCampaign, AtPhaseArmsRelativeToObservedCount) {
  FaultCampaign c;
  c.at_phase("k.iter").kill(0, /*delta=*/2);
  // Five operations happen before the phase event: the armed index must be
  // relative to that moment, not to the start of the run.
  drain(c.schedule(), "node0", 5);
  c.on_phase("k.iter");
  EXPECT_EQ(c.armed(), 1u);
  const auto hits = drain(c.schedule(), "node0", 6);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2u);  // ops 5,6 clean; op 7 = observed(5) + delta(2)
}

TEST(FaultCampaign, FromRepeatEveryTimesGateOccurrences) {
  FaultCampaign c;
  auto& rule = c.at_phase("p").from(2).repeat_every(3).times(2).corrupt(1);
  for (int i = 0; i < 12; ++i) c.on_phase("p");
  // Eligible occurrences are 2, 5, 8, 11; times(2) stops after two.
  EXPECT_EQ(rule.firings(), 2);
  EXPECT_EQ(c.armed(), 2u);
  c.on_phase("q");  // unrelated phase never matches
  EXPECT_EQ(rule.firings(), 2);
}

TEST(FaultCampaign, JitterIsBoundedAndSeedReproducible) {
  std::vector<std::uint64_t> hits[2];
  for (int run = 0; run < 2; ++run) {
    FaultCampaign c(/*seed=*/7);
    c.at_phase("p").jitter(4).kill(3);
    c.on_phase("p");
    hits[run] = drain(c.schedule(), "node3", 10);
    ASSERT_EQ(hits[run].size(), 1u);
    EXPECT_LE(hits[run][0], 4u);  // delta 0 + jitter in [0, 4]
  }
  EXPECT_EQ(hits[0], hits[1]);  // same seed, same arming
}

TEST(FaultCampaign, RailDownAndExhaustUseScopedCounters) {
  FaultCampaign c;
  c.at_phase("p").rail_down(1, 1).exhaust_cq(0, /*n=*/2, /*delta=*/1);
  drain(c.schedule(), FaultSchedule::rail_scope("node1", 1), 3);
  drain(c.schedule(), "node0.cq", 2);
  c.on_phase("p");
  EXPECT_EQ(c.armed(), 3u);  // 1 rail kill + 2 exhausts
  // Rail death is sticky from the occurrence point onward.
  const auto rail =
      drain(c.schedule(), FaultSchedule::rail_scope("node1", 1), 4);
  EXPECT_EQ(rail.size(), 4u);
  // CQ denial covers ops [observed(2) + 1, +2) of the .cq scope.
  const auto cq = drain(c.schedule(), "node0.cq", 5);
  EXPECT_EQ(cq, (std::vector<std::uint64_t>{1, 2}));
}

TEST(FaultSchedule, DegradeWindowHealsAndCounts) {
  FaultSchedule s;
  EXPECT_FALSE(s.any_degrade());
  FaultSchedule::DegradeSpec spec;
  spec.latency_mult = 10.0;
  s.degrade("node0", /*from=*/2, /*until=*/5, spec);
  EXPECT_TRUE(s.any_degrade());
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto d = s.degrade_at("node0", i);
    EXPECT_EQ(d.active(), i >= 2 && i < 5) << "op " << i;
  }
  EXPECT_EQ(s.degraded_ops(), 3u);  // only ops 2, 3, 4 were inside
  // A different scope never sees the window.
  EXPECT_FALSE(s.degrade_at("node1", 3).active());
}

TEST(FaultSchedule, OverlappingDegradeWindowsCompose) {
  FaultSchedule s;
  FaultSchedule::DegradeSpec a;
  a.latency_add = 100;
  a.bandwidth_mult = 0.5;
  FaultSchedule::DegradeSpec b;
  b.latency_add = 50;
  b.bandwidth_mult = 0.5;
  b.drop_prob = 0.5;
  s.degrade("n", 0, 10, a);
  s.degrade("n", 5, 15, b);
  const auto only_a = s.degrade_at("n", 2);
  EXPECT_EQ(only_a.latency_add, 100);
  EXPECT_DOUBLE_EQ(only_a.bandwidth_mult, 0.5);
  const auto both = s.degrade_at("n", 7);  // covered by a AND b: stacked
  EXPECT_EQ(both.latency_add, 150);
  EXPECT_DOUBLE_EQ(both.bandwidth_mult, 0.25);
  EXPECT_DOUBLE_EQ(both.drop_prob, 0.5);
  const auto only_b = s.degrade_at("n", 12);
  EXPECT_EQ(only_b.latency_add, 50);
  EXPECT_FALSE(s.degrade_at("n", 15).active());  // both healed
}

TEST(FaultSchedule, FlakyDutyCycleAndForeverWindow) {
  FaultSchedule s;
  FaultSchedule::DegradeSpec spec;
  spec.latency_add = 1;
  // duty 2 of every 4, window [4, 12): degraded ops are 4,5, 8,9.
  s.flaky("n", spec, /*period=*/4, /*duty=*/2, /*from=*/4, /*until=*/12);
  std::vector<std::uint64_t> hit;
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (s.degrade_at("n", i).active()) hit.push_back(i);
  }
  EXPECT_EQ(hit, (std::vector<std::uint64_t>{4, 5, 8, 9}));
  // Default window is forever (a permanently flapping link).
  FaultSchedule s2;
  s2.flaky("m", spec, 2, 1);
  EXPECT_TRUE(s2.degrade_at("m", 1'000'000).active());
  EXPECT_FALSE(s2.degrade_at("m", 1'000'001).active());
}

TEST(FaultSchedule, DegradeNeverConsumesCheckVictims) {
  FaultSchedule s;
  FaultSchedule::DegradeSpec spec;
  spec.bandwidth_mult = 0.1;
  s.degrade("n", 0, 10, spec);
  s.kill("n", 3);
  // check() sees only the kill; the degrade rides beside it on the same
  // op index without shifting the victim slot.
  const auto hits = drain(s, "n", 10);
  EXPECT_EQ(hits, (std::vector<std::uint64_t>{3}));
  EXPECT_TRUE(s.degrade_at("n", 3).active());
  EXPECT_EQ(s.killed(), 1u);  // degrades are not "delivered faults"
}

TEST(FaultCampaign, DegradeBuildersArmRelativeToObserved) {
  FaultCampaign c;
  FaultSchedule::DegradeSpec spec;
  spec.latency_mult = 4.0;
  c.at_phase("p").degrade(0, spec, /*n_ops=*/3, /*delta=*/1);
  c.at_phase("p").degrade_rail(1, 1, spec, /*n_ops=*/2);
  drain(c.schedule(), "node0", 4);  // four ops pass before the phase
  c.on_phase("p");
  EXPECT_EQ(c.armed(), 2u);
  // Node scope: window is [observed(4) + delta(1), +3) = [5, 8).
  EXPECT_FALSE(c.schedule().degrade_at("node0", 4).active());
  EXPECT_TRUE(c.schedule().degrade_at("node0", 5).active());
  EXPECT_TRUE(c.schedule().degrade_at("node0", 7).active());
  EXPECT_FALSE(c.schedule().degrade_at("node0", 8).active());
  // Rail scope keys against its own counter (nothing observed: [0, 2)) and
  // stays out of the node scope -- sub-scope windows are independent, the
  // WQE site composes them.
  const std::string rs = FaultSchedule::rail_scope("node1", 1);
  EXPECT_TRUE(c.schedule().degrade_at(rs, 0).active());
  EXPECT_FALSE(c.schedule().degrade_at(rs, 2).active());
  EXPECT_FALSE(c.schedule().degrade_at("node1", 0).active());
}

TEST(FaultCampaign, FlakyRailBuilderSetsDutyCycle) {
  FaultCampaign c;
  FaultSchedule::DegradeSpec spec;
  spec.drop_prob = 0.5;
  c.at_phase("p").flaky_rail(2, 0, spec, /*period=*/3, /*duty=*/1,
                             /*n_ops=*/6);
  c.on_phase("p");
  const std::string rs = FaultSchedule::rail_scope("node2", 0);
  std::vector<std::uint64_t> hit;
  for (std::uint64_t i = 0; i < 9; ++i) {
    if (c.schedule().degrade_at(rs, i).active()) hit.push_back(i);
  }
  EXPECT_EQ(hit, (std::vector<std::uint64_t>{0, 3}));  // healed at 6
}

}  // namespace
}  // namespace sim
