// Edge-case and robustness tests across layers: the bandwidth calendar's
// gap-filling, slot-generation wraparound in the ring protocol, zero-length
// transfers, incast fairness on the RX link, and deep churn runs.
#include <gtest/gtest.h>

#include <vector>

#include "channel_test_util.hpp"
#include "ib/cq.hpp"
#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "ib/mr.hpp"
#include "ib/qp.hpp"
#include "pmi/pmi.hpp"
#include "rdmach/channel.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"

namespace {

using rdmach::testutil::recv_all;
using rdmach::testutil::send_all;

// ---------------------------------------------------------------------------
// Bandwidth calendar.
// ---------------------------------------------------------------------------

TEST(Calendar, LocalRequestFillsGapBeforeFutureBooking) {
  sim::Simulator sim;
  sim::BandwidthResource bus(sim, "bus", 1000.0);  // 1 byte/ns
  // A future booking leaves [now, 10us) idle.
  const sim::Tick far = bus.reserve_from(sim::usec(10.0), 1000);
  EXPECT_EQ(far, sim::usec(11.0));
  // A small immediate request must slot into the gap, not queue behind.
  const sim::Tick nearby = bus.reserve(2000);
  EXPECT_EQ(nearby, sim::usec(2.0));
  // A request too large for the gap goes after the future booking.
  const sim::Tick big = bus.reserve(9000);
  EXPECT_EQ(big, sim::usec(20.0));
}

TEST(Calendar, CoalescingKeepsCalendarSmallUnderChurn) {
  sim::Simulator sim;
  sim::BandwidthResource bus(sim, "bus", 1000.0);
  // Back-to-back bookings coalesce into one interval; total time is exact.
  sim::Tick last = 0;
  for (int i = 0; i < 10'000; ++i) last = bus.reserve(100);
  EXPECT_EQ(last, sim::usec(1000.0));
  EXPECT_EQ(bus.total_bytes(), 1'000'000);
}

TEST(Calendar, RandomizedBookingsNeverOverlap) {
  // Property: completion times returned for a fixed arrival instant are
  // distinct and each request takes at least its serialization time.
  sim::Simulator sim;
  sim::BandwidthResource bus(sim, "bus", 1600.0);
  sim::Rng rng(555);
  std::vector<std::pair<sim::Tick, sim::Tick>> spans;  // (done, bytes-time)
  for (int i = 0; i < 300; ++i) {
    const std::int64_t bytes = 1 + static_cast<std::int64_t>(rng.below(8192));
    const sim::Tick earliest = static_cast<sim::Tick>(rng.below(sim::usec(50)));
    const sim::Tick done = bus.reserve_from(earliest, bytes);
    const sim::Tick dur = sim::transfer_time(bytes, 1600.0);
    EXPECT_GE(done, earliest + dur);
    spans.emplace_back(done, dur);
  }
  // Total busy time equals the sum of durations (no double booking).
  sim::Tick total = 0;
  for (auto& [done, dur] : spans) total += dur;
  EXPECT_EQ(bus.busy_ticks(), total);
}

// ---------------------------------------------------------------------------
// Ring protocol wraparound.
// ---------------------------------------------------------------------------

TEST(SlotRing, GenerationFlagsSurviveThousandsOfWraps) {
  // 8 slots per ring: 4000 messages wrap the ring 500 times; generation
  // stamps must keep stale flags from ever matching.
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 2);
  rdmach::ChannelConfig cfg;
  cfg.design = rdmach::Design::kPiggyback;
  std::unique_ptr<rdmach::Channel> chans[2];
  int checked = 0;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    chans[ctx.rank] = rdmach::Channel::create(ctx, cfg);
    auto& ch = *chans[ctx.rank];
    co_await ch.init();
    auto& conn = ch.connection(1 - ctx.rank);
    constexpr int kMsgs = 4000;
    if (ctx.rank == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        co_await send_all(ch, conn, &i, sizeof(i));
      }
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        int v = -1;
        co_await recv_all(ch, conn, &v, sizeof(v));
        if (v == i) ++checked;
      }
    }
    co_await ch.finalize();
  });
  sim.run();
  EXPECT_EQ(checked, 4000);
}

TEST(Channels, ZeroLengthPutGetAreSafeNoOps) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 2);
  rdmach::ChannelConfig cfg;  // zero-copy default
  std::unique_ptr<rdmach::Channel> chans[2];
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    chans[ctx.rank] = rdmach::Channel::create(ctx, cfg);
    auto& ch = *chans[ctx.rank];
    co_await ch.init();
    auto& conn = ch.connection(1 - ctx.rank);
    std::byte b{};
    const std::size_t p = co_await ch.put(conn, &b, 0);
    EXPECT_EQ(p, 0u);
    const std::size_t g = co_await ch.get(conn, &b, 0);
    EXPECT_EQ(g, 0u);
    // A real byte still flows afterwards.
    if (ctx.rank == 0) {
      b = std::byte{0x7e};
      co_await send_all(ch, conn, &b, 1);
    } else {
      co_await recv_all(ch, conn, &b, 1);
      EXPECT_EQ(b, std::byte{0x7e});
    }
    co_await ch.finalize();
  });
  sim.run();
}

// ---------------------------------------------------------------------------
// Incast: several senders share one receiver's RX link fairly enough.
// ---------------------------------------------------------------------------

TEST(Incast, SevenSendersShareTheReceiverLink) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  constexpr int kSenders = 7;
  constexpr std::size_t kMsg = 1 << 20;
  ib::Node& rx = fabric.add_node("rx");
  ib::ProtectionDomain& rx_pd = rx.hca().alloc_pd();
  static std::vector<std::vector<std::byte>> dst(
      kSenders, std::vector<std::byte>(kMsg));
  static std::vector<std::byte> src(kMsg, std::byte{1});
  std::vector<sim::Tick> done(kSenders, 0);

  for (int s = 0; s < kSenders; ++s) {
    ib::Node& tx = fabric.add_node("tx" + std::to_string(s));
    ib::ProtectionDomain& pd = tx.hca().alloc_pd();
    ib::CompletionQueue& cq = tx.hca().create_cq("cq" + std::to_string(s));
    ib::CompletionQueue& rcq = rx.hca().create_cq("rcq" + std::to_string(s));
    ib::QueuePair& qp = tx.hca().create_qp(pd, cq, cq);
    ib::QueuePair& rqp = rx.hca().create_qp(rx_pd, rcq, rcq);
    qp.connect(rqp);
    sim.spawn(
        [](ib::ProtectionDomain& spd, ib::ProtectionDomain& dpd,
           ib::QueuePair& q, ib::CompletionQueue& c, int idx,
           sim::Tick& out) -> sim::Task<void> {
          ib::MemoryRegion* ms = co_await spd.register_memory(src.data(), kMsg);
          ib::MemoryRegion* md = co_await dpd.register_memory(
              dst[static_cast<std::size_t>(idx)].data(), kMsg);
          q.post_send(ib::SendWr{
              1, ib::Opcode::kRdmaWrite, {ib::Sge{src.data(), kMsg, ms->lkey()}},
              reinterpret_cast<std::uint64_t>(
                  dst[static_cast<std::size_t>(idx)].data()),
              md->rkey(), true});
          (void)co_await c.next();
          out = q.hca().fabric().sim().now();
        }(pd, rx_pd, qp, cq, s, done[static_cast<std::size_t>(s)]),
        "sender" + std::to_string(s));
  }
  sim.run();
  // All seven 1 MB writes funnel through one 870 MB/s RX link: aggregate
  // time ~= 7 MB / 870 MB/s ~= 8.4 ms, and completion times are spread
  // (fair-ish interleaving), not one-at-a-time serial.
  sim::Tick min_done = done[0], max_done = done[0];
  for (sim::Tick t : done) {
    min_done = std::min(min_done, t);
    max_done = std::max(max_done, t);
  }
  EXPECT_NEAR(sim::to_usec(max_done), 7.0 * kMsg / 870.0, 600.0);
  // Chunk-level interleaving: the first completion cannot be a single
  // un-contended transfer (that would be ~1.2 ms).
  EXPECT_GT(sim::to_usec(min_done), 2.0 * kMsg / 870.0);
}

}  // namespace
