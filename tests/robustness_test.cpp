// Edge-case and robustness tests across layers: the bandwidth calendar's
// gap-filling, slot-generation wraparound in the ring protocol, zero-length
// transfers, incast fairness on the RX link, deep churn runs, and the
// gray-failure stack (degraded-link injection, accrual suspicion, rail
// quarantine) under differential oracle checks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "channel_test_util.hpp"
#include "ib/cq.hpp"
#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "ib/mr.hpp"
#include "ib/qp.hpp"
#include "pmi/pmi.hpp"
#include "rdmach/channel.hpp"
#include "sim/fault.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"

namespace {

using rdmach::testutil::FaultPlan;
using rdmach::testutil::recv_all;
using rdmach::testutil::send_all;
using rdmach::testutil::Traffic;

// ---------------------------------------------------------------------------
// Bandwidth calendar.
// ---------------------------------------------------------------------------

TEST(Calendar, LocalRequestFillsGapBeforeFutureBooking) {
  sim::Simulator sim;
  sim::BandwidthResource bus(sim, "bus", 1000.0);  // 1 byte/ns
  // A future booking leaves [now, 10us) idle.
  const sim::Tick far = bus.reserve_from(sim::usec(10.0), 1000);
  EXPECT_EQ(far, sim::usec(11.0));
  // A small immediate request must slot into the gap, not queue behind.
  const sim::Tick nearby = bus.reserve(2000);
  EXPECT_EQ(nearby, sim::usec(2.0));
  // A request too large for the gap goes after the future booking.
  const sim::Tick big = bus.reserve(9000);
  EXPECT_EQ(big, sim::usec(20.0));
}

TEST(Calendar, CoalescingKeepsCalendarSmallUnderChurn) {
  sim::Simulator sim;
  sim::BandwidthResource bus(sim, "bus", 1000.0);
  // Back-to-back bookings coalesce into one interval; total time is exact.
  sim::Tick last = 0;
  for (int i = 0; i < 10'000; ++i) last = bus.reserve(100);
  EXPECT_EQ(last, sim::usec(1000.0));
  EXPECT_EQ(bus.total_bytes(), 1'000'000);
}

TEST(Calendar, RandomizedBookingsNeverOverlap) {
  // Property: completion times returned for a fixed arrival instant are
  // distinct and each request takes at least its serialization time.
  sim::Simulator sim;
  sim::BandwidthResource bus(sim, "bus", 1600.0);
  sim::Rng rng(555);
  std::vector<std::pair<sim::Tick, sim::Tick>> spans;  // (done, bytes-time)
  for (int i = 0; i < 300; ++i) {
    const std::int64_t bytes = 1 + static_cast<std::int64_t>(rng.below(8192));
    const sim::Tick earliest = static_cast<sim::Tick>(rng.below(sim::usec(50)));
    const sim::Tick done = bus.reserve_from(earliest, bytes);
    const sim::Tick dur = sim::transfer_time(bytes, 1600.0);
    EXPECT_GE(done, earliest + dur);
    spans.emplace_back(done, dur);
  }
  // Total busy time equals the sum of durations (no double booking).
  sim::Tick total = 0;
  for (auto& [done, dur] : spans) total += dur;
  EXPECT_EQ(bus.busy_ticks(), total);
}

// ---------------------------------------------------------------------------
// Ring protocol wraparound.
// ---------------------------------------------------------------------------

TEST(SlotRing, GenerationFlagsSurviveThousandsOfWraps) {
  // 8 slots per ring: 4000 messages wrap the ring 500 times; generation
  // stamps must keep stale flags from ever matching.
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 2);
  rdmach::ChannelConfig cfg;
  cfg.design = rdmach::Design::kPiggyback;
  std::unique_ptr<rdmach::Channel> chans[2];
  int checked = 0;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    chans[ctx.rank] = rdmach::Channel::create(ctx, cfg);
    auto& ch = *chans[ctx.rank];
    co_await ch.init();
    auto& conn = ch.connection(1 - ctx.rank);
    constexpr int kMsgs = 4000;
    if (ctx.rank == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        co_await send_all(ch, conn, &i, sizeof(i));
      }
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        int v = -1;
        co_await recv_all(ch, conn, &v, sizeof(v));
        if (v == i) ++checked;
      }
    }
    co_await ch.finalize();
  });
  sim.run();
  EXPECT_EQ(checked, 4000);
}

TEST(Channels, ZeroLengthPutGetAreSafeNoOps) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 2);
  rdmach::ChannelConfig cfg;  // zero-copy default
  std::unique_ptr<rdmach::Channel> chans[2];
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    chans[ctx.rank] = rdmach::Channel::create(ctx, cfg);
    auto& ch = *chans[ctx.rank];
    co_await ch.init();
    auto& conn = ch.connection(1 - ctx.rank);
    std::byte b{};
    const std::size_t p = co_await ch.put(conn, &b, 0);
    EXPECT_EQ(p, 0u);
    const std::size_t g = co_await ch.get(conn, &b, 0);
    EXPECT_EQ(g, 0u);
    // A real byte still flows afterwards.
    if (ctx.rank == 0) {
      b = std::byte{0x7e};
      co_await send_all(ch, conn, &b, 1);
    } else {
      co_await recv_all(ch, conn, &b, 1);
      EXPECT_EQ(b, std::byte{0x7e});
    }
    co_await ch.finalize();
  });
  sim.run();
}

// ---------------------------------------------------------------------------
// Incast: several senders share one receiver's RX link fairly enough.
// ---------------------------------------------------------------------------

TEST(Incast, SevenSendersShareTheReceiverLink) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  constexpr int kSenders = 7;
  constexpr std::size_t kMsg = 1 << 20;
  ib::Node& rx = fabric.add_node("rx");
  ib::ProtectionDomain& rx_pd = rx.hca().alloc_pd();
  static std::vector<std::vector<std::byte>> dst(
      kSenders, std::vector<std::byte>(kMsg));
  static std::vector<std::byte> src(kMsg, std::byte{1});
  std::vector<sim::Tick> done(kSenders, 0);

  for (int s = 0; s < kSenders; ++s) {
    ib::Node& tx = fabric.add_node("tx" + std::to_string(s));
    ib::ProtectionDomain& pd = tx.hca().alloc_pd();
    ib::CompletionQueue& cq = tx.hca().create_cq("cq" + std::to_string(s));
    ib::CompletionQueue& rcq = rx.hca().create_cq("rcq" + std::to_string(s));
    ib::QueuePair& qp = tx.hca().create_qp(pd, cq, cq);
    ib::QueuePair& rqp = rx.hca().create_qp(rx_pd, rcq, rcq);
    qp.connect(rqp);
    sim.spawn(
        [](ib::ProtectionDomain& spd, ib::ProtectionDomain& dpd,
           ib::QueuePair& q, ib::CompletionQueue& c, int idx,
           sim::Tick& out) -> sim::Task<void> {
          ib::MemoryRegion* ms = co_await spd.register_memory(src.data(), kMsg);
          ib::MemoryRegion* md = co_await dpd.register_memory(
              dst[static_cast<std::size_t>(idx)].data(), kMsg);
          q.post_send(ib::SendWr{
              1, ib::Opcode::kRdmaWrite, {ib::Sge{src.data(), kMsg, ms->lkey()}},
              reinterpret_cast<std::uint64_t>(
                  dst[static_cast<std::size_t>(idx)].data()),
              md->rkey(), true});
          (void)co_await c.next();
          out = q.hca().fabric().sim().now();
        }(pd, rx_pd, qp, cq, s, done[static_cast<std::size_t>(s)]),
        "sender" + std::to_string(s));
  }
  sim.run();
  // All seven 1 MB writes funnel through one 870 MB/s RX link: aggregate
  // time ~= 7 MB / 870 MB/s ~= 8.4 ms, and completion times are spread
  // (fair-ish interleaving), not one-at-a-time serial.
  sim::Tick min_done = done[0], max_done = done[0];
  for (sim::Tick t : done) {
    min_done = std::min(min_done, t);
    max_done = std::max(max_done, t);
  }
  EXPECT_NEAR(sim::to_usec(max_done), 7.0 * kMsg / 870.0, 600.0);
  // Chunk-level interleaving: the first completion cannot be a single
  // un-contended transfer (that would be ~1.2 ms).
  EXPECT_GT(sim::to_usec(min_done), 2.0 * kMsg / 870.0);
}

// ---------------------------------------------------------------------------
// Gray failures: degraded links, suspicion, quarantine (ctest label: gray).
// ---------------------------------------------------------------------------

constexpr sim::Tick kGrayDeadline = sim::usec(5'000'000);

struct GrayResult {
  std::vector<std::byte> received;
  bool send_done = false;
  bool recv_done = false;
  int errors = 0;  // ranks that surfaced a ChannelError
  sim::Tick finished = 0;
  rdmach::ChannelStats stats;  // both ranks, summed
};

/// Same deadline-bounded rank0 -> rank1 stream shape as the chaos and
/// multirail harnesses, for an arbitrary design and fabric, summing the
/// gray-failure counters.
GrayResult run_gray(rdmach::Design design, const ib::FabricConfig& fcfg,
                    const rdmach::testutil::Traffic& traffic, FaultPlan* plan,
                    rdmach::ChannelConfig cfg) {
  GrayResult rr;
  sim::Simulator sim;
  ib::Fabric fabric{sim, fcfg};
  if (plan != nullptr) fabric.attach_faults(&plan->schedule);
  pmi::Job job{fabric, 2};
  cfg.design = design;
  std::unique_ptr<rdmach::Channel> ch[2];
  rr.received.resize(traffic.total());
  int done_ranks = 0;

  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    ch[ctx.rank] = rdmach::Channel::create(ctx, cfg);
    rdmach::Channel& c = *ch[ctx.rank];
    co_await c.init();
    rdmach::Connection& conn = c.connection(1 - ctx.rank);
    if (ctx.rank == 0) {
      try {
        std::size_t off = 0;
        for (const std::size_t sz : traffic.sizes) {
          co_await send_all(c, conn, traffic.bytes.data() + off, sz);
          off += sz;
        }
        std::byte token{};
        co_await recv_all(c, conn, &token, 1);
        rr.send_done = true;
        if (++done_ranks == 2) rr.finished = ctx.sim().now();
        co_await c.finalize();
      } catch (const rdmach::ChannelError&) {
        ++rr.errors;
      }
    } else {
      try {
        co_await recv_all(c, conn, rr.received.data(), rr.received.size());
        const std::byte token{0x1};
        co_await send_all(c, conn, &token, 1);
        rr.recv_done = true;
        if (++done_ranks == 2) rr.finished = ctx.sim().now();
        co_await c.finalize();
      } catch (const rdmach::ChannelError&) {
        ++rr.errors;
      }
    }
  });
  sim.run_until(kGrayDeadline);
  for (int r = 0; r < 2; ++r) {
    if (ch[r] == nullptr) continue;
    const rdmach::ChannelStats t = ch[r]->stats();
    rr.stats.recoveries += t.recoveries;
    rr.stats.retransmits += t.retransmits;
    rr.stats.watchdog_trips += t.watchdog_trips;
    rr.stats.rail_failovers += t.rail_failovers;
    rr.stats.rail_quarantines += t.rail_quarantines;
    rr.stats.rail_reinstates += t.rail_reinstates;
    rr.stats.suspicion_trips += t.suspicion_trips;
    rr.stats.false_suspicions += t.false_suspicions;
    rr.stats.degraded_ns += t.degraded_ns;
  }
  return rr;
}

ib::FabricConfig gray_rails(int ports) {
  ib::FabricConfig f;
  f.ports_per_hca = ports;
  return f;
}

TEST(GrayFailure, DegradeOnlyChaosStaysOracleEqualAcrossDesigns) {
  // Differential: a seeded degrade-only mix (stacked latency/bandwidth
  // windows, an extra-latency window, a lossy-but-retried window) must be
  // invisible to correctness on EVERY design -- same oracle byte stream,
  // zero ChannelErrors, zero recovery episodes.  Gray is slow, never
  // fail-stop.
  const Traffic traffic = Traffic::make(/*seed=*/301, /*messages=*/100,
                                        /*min_len=*/1, /*max_len=*/16'000);
  const rdmach::Design designs[] = {
      rdmach::Design::kBasic,     rdmach::Design::kPiggyback,
      rdmach::Design::kPipeline,  rdmach::Design::kZeroCopy,
      rdmach::Design::kMultiMethod, rdmach::Design::kAdaptive};
  for (const rdmach::Design d : designs) {
    FaultPlan plan;
    sim::FaultSchedule::DegradeSpec slow;
    slow.latency_mult = 5.0;
    slow.bandwidth_mult = 0.5;
    sim::FaultSchedule::DegradeSpec lag;
    lag.latency_add = sim::usec(20);
    sim::FaultSchedule::DegradeSpec lossy;
    lossy.drop_prob = 0.05;
    plan.degrade(0, slow, 10, 150);
    plan.degrade(0, lossy, 40, 90);  // overlaps `slow`: specs stack
    plan.degrade(1, lag, 20, 120);
    rdmach::ChannelConfig cfg;
    cfg.integrity_check = true;
    GrayResult rr = run_gray(d, {}, traffic, &plan, cfg);
    const std::string name = rdmach::to_string(d);
    EXPECT_EQ(rr.errors, 0) << name;
    ASSERT_TRUE(rr.send_done) << name;
    ASSERT_TRUE(rr.recv_done) << name;
    EXPECT_EQ(rr.received, traffic.bytes) << name;
    EXPECT_EQ(rr.stats.recoveries, 0u) << name;
    EXPECT_EQ(plan.schedule.killed(), 0u) << name;
    EXPECT_GT(plan.schedule.degraded_ops(), 0u) << name;
  }
}

TEST(GrayFailure, TenXLatencyRailIsNeverConvictedDead) {
  // Satellite regression for the watchdog re-arm asymmetry: under a
  // sustained 10x-latency / quarter-bandwidth degrade (no drops, nothing
  // actually dead) and a watchdog deadline 50x tighter than the default,
  // real kills must still recover -- each successful completion drained
  // during an armed episode counts as progress and re-arms the deadline --
  // and the degraded-but-alive link must NEVER be converted into
  // ChannelError::kDead.
  const Traffic traffic = Traffic::make(/*seed=*/302, /*messages=*/60,
                                        /*min_len=*/100, /*max_len=*/4'000);
  for (const rdmach::Design d :
       {rdmach::Design::kPipeline, rdmach::Design::kAdaptive}) {
    FaultPlan plan;
    sim::FaultSchedule::DegradeSpec gray;
    gray.latency_mult = 10.0;
    gray.bandwidth_mult = 0.25;
    plan.degrade(0, gray);  // forever: the link never heals
    plan.degrade(1, gray);
    plan.kill(0, 30).kill(0, 90).kill(0, 150);  // real faults to recover
    rdmach::ChannelConfig cfg;
    cfg.recovery_epoch_deadline = sim::usec(1'000);
    GrayResult rr = run_gray(d, {}, traffic, &plan, cfg);
    const std::string name = rdmach::to_string(d);
    EXPECT_EQ(rr.errors, 0) << name;
    ASSERT_TRUE(rr.send_done) << name;
    ASSERT_TRUE(rr.recv_done) << name;
    EXPECT_EQ(rr.received, traffic.bytes) << name;
    EXPECT_GE(rr.stats.recoveries, 1u) << name;
    EXPECT_EQ(rr.stats.watchdog_trips, 0u) << name;
  }
}

TEST(GrayFailure, SuspicionQuarantinesGrayRailThenReinstates) {
  // Two equal rails; the receiver's rail 1 (it initiates the chunk reads)
  // turns gray after the detector's warmup window and heals later.  The
  // accrual detector must pull the rail from the stripe set proactively --
  // no watchdog trip, no recovery episode, nothing was ever dead -- keep
  // it on probation probes, and reinstate it once probes measure healthy.
  const Traffic traffic =
      Traffic::make(/*seed=*/303, /*messages=*/48, /*min_len=*/256u << 10,
                    /*max_len=*/512u << 10);
  FaultPlan plan;
  sim::FaultSchedule::DegradeSpec gray;
  gray.latency_mult = 8.0;
  gray.bandwidth_mult = 0.125;
  plan.degrade_rail(/*rank=*/1, /*rail=*/1, gray, /*from=*/12, /*until=*/30);
  rdmach::ChannelConfig cfg;
  cfg.health_detector = true;
  cfg.health_probe_interval = 2;   // probe often: the window is op-indexed
  cfg.health_reinstate_probes = 2;
  GrayResult rr = run_gray(rdmach::Design::kAdaptive, gray_rails(2), traffic,
                           &plan, cfg);
  EXPECT_EQ(rr.errors, 0);
  ASSERT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_EQ(rr.received, traffic.bytes);
  EXPECT_GE(rr.stats.suspicion_trips, 1u);
  EXPECT_GE(rr.stats.rail_quarantines, 1u);
  EXPECT_GE(rr.stats.rail_reinstates, 1u);  // healed without a reconnect
  EXPECT_GT(rr.stats.degraded_ns, 0u);
  EXPECT_EQ(rr.stats.watchdog_trips, 0u);   // quarantine preempted it
  EXPECT_EQ(rr.stats.recoveries, 0u);
  EXPECT_EQ(rr.stats.rail_failovers, 0u);   // the rail never died
}

TEST(GrayFailure, QuarantineBeatsNoQuarantineOnAsymmetricGrayRail) {
  // Acceptance duel on the >= 1MB plateau: an 870 + 290 MB/s fabric whose
  // slow rail additionally turns gray (quarter bandwidth, 4x latency, 20%
  // drops).  Weighted striping + quarantine must finish the stream at
  // least 1.3x faster than the no-quarantine baseline (naive round-robin
  // striping, detector off), which keeps gating every stripe on the gray
  // rail.
  const Traffic traffic =
      Traffic::make(/*seed=*/304, /*messages=*/16, /*min_len=*/1u << 20,
                    /*max_len=*/2u << 20);
  ib::FabricConfig fcfg = gray_rails(2);
  fcfg.rail_link_mbps = {870.0, 290.0};
  sim::FaultSchedule::DegradeSpec gray;
  gray.latency_mult = 4.0;
  gray.bandwidth_mult = 0.25;
  gray.drop_prob = 0.2;

  FaultPlan plan_on;
  plan_on.degrade_rail(1, 1, gray, /*from=*/12);
  rdmach::ChannelConfig with;
  with.health_detector = true;
  with.rail_policy = rdmach::RailPolicy::kWeighted;
  const GrayResult on =
      run_gray(rdmach::Design::kAdaptive, fcfg, traffic, &plan_on, with);

  FaultPlan plan_off;
  plan_off.degrade_rail(1, 1, gray, /*from=*/12);
  rdmach::ChannelConfig without;
  without.health_detector = false;
  without.rail_policy = rdmach::RailPolicy::kRoundRobin;
  const GrayResult off =
      run_gray(rdmach::Design::kAdaptive, fcfg, traffic, &plan_off, without);

  ASSERT_TRUE(on.send_done && on.recv_done);
  ASSERT_TRUE(off.send_done && off.recv_done);
  EXPECT_EQ(on.errors, 0);
  EXPECT_EQ(off.errors, 0);
  EXPECT_EQ(on.received, traffic.bytes);
  EXPECT_EQ(off.received, traffic.bytes);
  EXPECT_GE(on.stats.rail_quarantines, 1u);
  EXPECT_GE(static_cast<double>(off.finished),
            1.3 * static_cast<double>(on.finished))
      << "quarantine=" << sim::to_usec(on.finished)
      << "us no-quarantine=" << sim::to_usec(off.finished) << "us";
}

TEST(GrayFailure, ArmedButFaultFreeDetectorChangesNothing) {
  // The same-binary bit-identity rule, observable face: with no faults
  // injected, turning the health detector ON must not move a single event
  // -- identical bytes, identical finish tick, every gray counter zero.
  const Traffic traffic =
      Traffic::make(/*seed=*/305, /*messages=*/24, /*min_len=*/1'000,
                    /*max_len=*/300'000);
  rdmach::ChannelConfig off;
  const GrayResult a =
      run_gray(rdmach::Design::kAdaptive, gray_rails(2), traffic, nullptr, off);
  rdmach::ChannelConfig onn;
  onn.health_detector = true;
  const GrayResult b =
      run_gray(rdmach::Design::kAdaptive, gray_rails(2), traffic, nullptr, onn);
  ASSERT_TRUE(a.send_done && a.recv_done);
  ASSERT_TRUE(b.send_done && b.recv_done);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(b.stats.suspicion_trips, 0u);
  EXPECT_EQ(b.stats.rail_quarantines, 0u);
  EXPECT_EQ(b.stats.false_suspicions, 0u);
  EXPECT_EQ(b.stats.degraded_ns, 0u);
}

}  // namespace
