// Tests for the MPI layer over both CH3 stacks: point-to-point semantics
// (ordering, wildcards, unexpected messages, rendezvous), collectives
// against local references, communicator splitting, and the paper's
// MPI-level latency targets.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"
#include "sim/rng.hpp"

namespace mpi {
namespace {

struct StackParam {
  ch3::Stack stack;
  rdmach::Design design;
};

RuntimeConfig make_cfg(const StackParam& p) {
  RuntimeConfig cfg;
  cfg.stack.stack = p.stack;
  cfg.stack.channel.design = p.design;
  return cfg;
}

struct MpiRig {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job;
  RuntimeConfig cfg;

  explicit MpiRig(int n, RuntimeConfig c = {}) : job(fabric, n), cfg(c) {}

  using Body = std::function<sim::Task<void>(Communicator&, pmi::Context&)>;

  void run(Body body) {
    job.launch([this, body](pmi::Context& ctx) -> sim::Task<void> {
      Runtime rt(ctx, cfg);
      co_await rt.init();
      co_await body(rt.world(), ctx);
      co_await rt.finalize();
    });
    sim.run();
  }
};

std::vector<double> iota_doubles(int n, double base) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = base + i;
  return v;
}

class StackTest : public ::testing::TestWithParam<StackParam> {};

INSTANTIATE_TEST_SUITE_P(
    Stacks, StackTest,
    ::testing::Values(
        StackParam{ch3::Stack::kRdmaChannel, rdmach::Design::kZeroCopy},
        StackParam{ch3::Stack::kRdmaChannel, rdmach::Design::kPipeline},
        StackParam{ch3::Stack::kRdmaChannel, rdmach::Design::kPiggyback},
        StackParam{ch3::Stack::kRdmaChannel, rdmach::Design::kBasic},
        StackParam{ch3::Stack::kCh3Direct, rdmach::Design::kPipeline}),
    [](const auto& info) {
      return std::string(ch3::to_string(info.param.stack)) == "ch3-direct"
                 ? std::string("ch3_direct")
                 : std::string("rdma_") +
                       [](const char* s) {
                         std::string t(s);
                         for (auto& c : t)
                           if (c == '-') c = '_';
                         return t;
                       }(rdmach::to_string(info.param.design));
    });

TEST_P(StackTest, BlockingSendRecvSmall) {
  MpiRig rig(2, make_cfg(GetParam()));
  rig.run([](Communicator& world, pmi::Context&) -> sim::Task<void> {
    if (world.rank() == 0) {
      const int v = 12345;
      co_await world.send(&v, 1, Datatype::kInt, 1, 7);
    } else {
      int v = 0;
      Status st;
      co_await world.recv(&v, 1, Datatype::kInt, 0, 7, &st);
      EXPECT_EQ(v, 12345);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count(Datatype::kInt), 1);
    }
  });
}

TEST_P(StackTest, LargeMessageRendezvous) {
  MpiRig rig(2, make_cfg(GetParam()));
  constexpr int kN = 200'000;  // > any eager/zero-copy threshold
  rig.run([](Communicator& world, pmi::Context&) -> sim::Task<void> {
    if (world.rank() == 0) {
      auto data = iota_doubles(kN, 0.5);
      co_await world.send(data.data(), kN, Datatype::kDouble, 1, 1);
    } else {
      std::vector<double> data(kN, -1.0);
      co_await world.recv(data.data(), kN, Datatype::kDouble, 0, 1);
      EXPECT_DOUBLE_EQ(data[0], 0.5);
      EXPECT_DOUBLE_EQ(data[kN - 1], 0.5 + kN - 1);
    }
  });
}

TEST_P(StackTest, UnexpectedMessagesMatchInOrder) {
  MpiRig rig(2, make_cfg(GetParam()));
  rig.run([](Communicator& world, pmi::Context&) -> sim::Task<void> {
    if (world.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        co_await world.send(&i, 1, Datatype::kInt, 1, 3);
      }
      const int done = 99;
      co_await world.send(&done, 1, Datatype::kInt, 1, 4);
    } else {
      // Let all five land unexpectedly first.
      int done = 0;
      co_await world.recv(&done, 1, Datatype::kInt, 0, 4);
      EXPECT_EQ(done, 99);
      for (int i = 0; i < 5; ++i) {
        int v = -1;
        co_await world.recv(&v, 1, Datatype::kInt, 0, 3);
        EXPECT_EQ(v, i);  // FIFO among same (src, tag)
      }
    }
  });
}

TEST_P(StackTest, UnexpectedLargeMessage) {
  MpiRig rig(2, make_cfg(GetParam()));
  constexpr int kN = 100'000;
  rig.run([](Communicator& world, pmi::Context&) -> sim::Task<void> {
    if (world.rank() == 0) {
      auto data = iota_doubles(kN, 1.0);
      // isend: a blocking send may legitimately not complete before the
      // receiver posts the matching recv (true rendezvous semantics).
      Request r = co_await world.isend(data.data(), kN, Datatype::kDouble, 1,
                                       5);
      const int flag = 1;
      co_await world.send(&flag, 1, Datatype::kInt, 1, 6);
      co_await world.wait(r);
    } else {
      int flag = 0;
      co_await world.recv(&flag, 1, Datatype::kInt, 0, 6);
      // The big message is already waiting (rendezvous parked or buffered).
      std::vector<double> data(kN);
      co_await world.recv(data.data(), kN, Datatype::kDouble, 0, 5);
      EXPECT_DOUBLE_EQ(data[kN - 1], static_cast<double>(kN));
    }
  });
}

TEST_P(StackTest, WildcardSourceAndTag) {
  MpiRig rig(3, make_cfg(GetParam()));
  rig.run([](Communicator& world, pmi::Context&) -> sim::Task<void> {
    if (world.rank() == 0) {
      int got = 0;
      Status st;
      co_await world.recv(&got, 1, Datatype::kInt, kAnySource, kAnyTag, &st);
      EXPECT_EQ(got, st.source * 100 + st.tag);
      co_await world.recv(&got, 1, Datatype::kInt, kAnySource, kAnyTag, &st);
      EXPECT_EQ(got, st.source * 100 + st.tag);
    } else {
      const int v = world.rank() * 100 + world.rank();
      co_await world.send(&v, 1, Datatype::kInt, 0, world.rank());
    }
  });
}

TEST_P(StackTest, NonblockingWindowAndWaitall) {
  MpiRig rig(2, make_cfg(GetParam()));
  constexpr int kW = 16;
  rig.run([](Communicator& world, pmi::Context&) -> sim::Task<void> {
    std::vector<std::vector<int>> bufs(kW, std::vector<int>(256));
    std::vector<Request> reqs;
    if (world.rank() == 0) {
      for (int i = 0; i < kW; ++i) {
        std::fill(bufs[static_cast<std::size_t>(i)].begin(),
                  bufs[static_cast<std::size_t>(i)].end(), i);
        reqs.push_back(co_await world.isend(
            bufs[static_cast<std::size_t>(i)].data(), 256, Datatype::kInt, 1,
            i));
      }
    } else {
      for (int i = 0; i < kW; ++i) {
        reqs.push_back(co_await world.irecv(
            bufs[static_cast<std::size_t>(i)].data(), 256, Datatype::kInt, 0,
            i));
      }
    }
    co_await world.wait_all(reqs);
    if (world.rank() == 1) {
      for (int i = 0; i < kW; ++i) {
        EXPECT_EQ(bufs[static_cast<std::size_t>(i)][255], i);
      }
    }
  });
}

TEST_P(StackTest, ProcNullAndSelfSend) {
  MpiRig rig(2, make_cfg(GetParam()));
  rig.run([](Communicator& world, pmi::Context&) -> sim::Task<void> {
    // Proc-null completes immediately.
    int dummy = 7;
    co_await world.send(&dummy, 1, Datatype::kInt, kProcNull, 0);
    Status st;
    co_await world.recv(&dummy, 1, Datatype::kInt, kProcNull, 0, &st);
    EXPECT_EQ(st.source, kProcNull);
    EXPECT_EQ(dummy, 7);
    // Self messaging through the matching engine.
    const int v = world.rank() + 500;
    Request r = co_await world.irecv(&dummy, 1, Datatype::kInt, world.rank(),
                                     9);
    co_await world.send(&v, 1, Datatype::kInt, world.rank(), 9);
    co_await world.wait(r);
    EXPECT_EQ(dummy, v);
  });
}

TEST_P(StackTest, CollectivesProduceReferenceResults) {
  for (int p : {4, 5}) {  // power-of-two and not
    MpiRig rig(p, make_cfg(GetParam()));
    rig.run([p](Communicator& world, pmi::Context&) -> sim::Task<void> {
      const int r = world.rank();

      // bcast
      int x = r == 2 ? 777 : 0;
      co_await world.bcast(&x, 1, Datatype::kInt, 2);
      EXPECT_EQ(x, 777);

      // allreduce sum & max
      double v = r + 1.0;
      double sum = 0, mx = 0;
      co_await world.allreduce(&v, &sum, 1, Datatype::kDouble, Op::kSum);
      co_await world.allreduce(&v, &mx, 1, Datatype::kDouble, Op::kMax);
      EXPECT_DOUBLE_EQ(sum, p * (p + 1) / 2.0);
      EXPECT_DOUBLE_EQ(mx, p);

      // reduce to root 1
      double rsum = -1;
      co_await world.reduce(&v, &rsum, 1, Datatype::kDouble, Op::kSum, 1);
      if (r == 1) {
        EXPECT_DOUBLE_EQ(rsum, p * (p + 1) / 2.0);
      }

      // maxloc
      DoubleInt di{static_cast<double>((r * 7) % p), r};
      DoubleInt win{};
      co_await world.allreduce(&di, &win, 1, Datatype::kDoubleInt,
                               Op::kMaxLoc);
      // reference
      double best = -1;
      int best_i = -1;
      for (int i = 0; i < p; ++i) {
        const double val = (i * 7) % p;
        if (val > best) {
          best = val;
          best_i = i;
        }
      }
      EXPECT_DOUBLE_EQ(win.value, best);
      EXPECT_EQ(win.index, best_i);

      // allgather
      std::vector<int> all(static_cast<std::size_t>(p), -1);
      const int mine = r * r;
      co_await world.allgather(&mine, 1, all.data(), Datatype::kInt);
      for (int i = 0; i < p; ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(i)], i * i);
      }

      // alltoall
      std::vector<int> sbuf(static_cast<std::size_t>(p)),
          rbuf(static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        sbuf[static_cast<std::size_t>(i)] = r * 1000 + i;
      }
      co_await world.alltoall(sbuf.data(), 1, rbuf.data(), Datatype::kInt);
      for (int i = 0; i < p; ++i) {
        EXPECT_EQ(rbuf[static_cast<std::size_t>(i)], i * 1000 + r);
      }

      // alltoallv (rank r sends r+1 ints to everyone)
      std::vector<int> scounts(static_cast<std::size_t>(p), r + 1);
      std::vector<int> sdispls(static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        sdispls[static_cast<std::size_t>(i)] = i * (r + 1);
      }
      std::vector<int> sdata(static_cast<std::size_t>(p * (r + 1)), r);
      std::vector<int> rcounts(static_cast<std::size_t>(p)),
          rdispls(static_cast<std::size_t>(p));
      int tot = 0;
      for (int i = 0; i < p; ++i) {
        rcounts[static_cast<std::size_t>(i)] = i + 1;
        rdispls[static_cast<std::size_t>(i)] = tot;
        tot += i + 1;
      }
      std::vector<int> rdata(static_cast<std::size_t>(tot), -1);
      co_await world.alltoallv(sdata.data(), scounts, sdispls, rdata.data(),
                               rcounts, rdispls, Datatype::kInt);
      for (int i = 0; i < p; ++i) {
        for (int k = 0; k < i + 1; ++k) {
          EXPECT_EQ(rdata[static_cast<std::size_t>(
                        rdispls[static_cast<std::size_t>(i)] + k)],
                    i);
        }
      }

      // gather / scatter round trip via root 0
      std::vector<int> gathered(static_cast<std::size_t>(p));
      co_await world.gather(&mine, 1, gathered.data(), Datatype::kInt, 0);
      int back = -1;
      co_await world.scatter(gathered.data(), 1, &back, Datatype::kInt, 0);
      EXPECT_EQ(back, mine);

      // reduce_scatter
      std::vector<int> contrib(static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        contrib[static_cast<std::size_t>(i)] = r + i;
      }
      std::vector<int> ones(static_cast<std::size_t>(p), 1);
      int piece = -1;
      co_await world.reduce_scatter(contrib.data(), &piece, ones,
                                    Datatype::kInt, Op::kSum);
      // sum over ranks of (rank + my_index)
      EXPECT_EQ(piece, p * (p - 1) / 2 + r * p);

      // scan
      int mine2 = r + 1, pref = 0;
      co_await world.scan(&mine2, &pref, 1, Datatype::kInt, Op::kSum);
      EXPECT_EQ(pref, (r + 1) * (r + 2) / 2);

      co_await world.barrier();
    });
  }
}

TEST_P(StackTest, CommSplitIsolatesTraffic) {
  MpiRig rig(4, make_cfg(GetParam()));
  rig.run([](Communicator& world, pmi::Context&) -> sim::Task<void> {
    // Even / odd split, reversed key order inside each group.
    Communicator* sub =
        co_await world.split(world.rank() % 2, -world.rank());
    EXPECT_NE(sub, nullptr);
    if (sub == nullptr) co_return;  // ASSERT_* cannot be used in coroutines
    EXPECT_EQ(sub->size(), 2);
    // key = -rank reverses order: world rank 2 -> sub rank 0 of evens, etc.
    const int expect_rank = world.rank() < 2 ? 1 : 0;
    EXPECT_EQ(sub->rank(), expect_rank);

    // Message within the subcomm; same tag used concurrently in both
    // subcomms must not cross.
    int v = world.rank() * 11;
    int got = -1;
    if (sub->rank() == 0) {
      co_await sub->send(&v, 1, Datatype::kInt, 1, 42);
    } else {
      co_await sub->recv(&got, 1, Datatype::kInt, 0, 42);
      const int sender_world = sub->world_rank(0);
      EXPECT_EQ(got, sender_world * 11);
    }
    double s = 1.0, total = 0.0;
    co_await sub->allreduce(&s, &total, 1, Datatype::kDouble, Op::kSum);
    EXPECT_DOUBLE_EQ(total, 2.0);
    co_await world.barrier();
  });
}

TEST_P(StackTest, MessageOrderingBetweenPairsPreserved) {
  MpiRig rig(2, make_cfg(GetParam()));
  rig.run([](Communicator& world, pmi::Context&) -> sim::Task<void> {
    constexpr int kMsgs = 50;
    if (world.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        co_await world.send(&i, 1, Datatype::kInt, 1, 0);
      }
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        int v = -1;
        co_await world.recv(&v, 1, Datatype::kInt, 0, 0);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST_P(StackTest, ProbeAndIprobeSeeEnvelopeWithoutConsuming) {
  MpiRig rig(2, make_cfg(GetParam()));
  rig.run([](Communicator& world, pmi::Context& ctx) -> sim::Task<void> {
    if (world.rank() == 0) {
      // Nothing pending yet.
      Status st;
      const bool early = co_await world.iprobe(1, 5, &st);
      EXPECT_FALSE(early);
      // Tell rank 1 to send, then probe (blocking) for it.
      const int go = 1;
      co_await world.send(&go, 1, Datatype::kInt, 1, 9);
      st = co_await world.probe(1, 5);
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(st.tag, 5);
      EXPECT_EQ(st.count(Datatype::kDouble), 300);
      // Probing again still sees it (not consumed).
      Status st2;
      EXPECT_TRUE(co_await world.iprobe(kAnySource, kAnyTag, &st2));
      EXPECT_EQ(st2.bytes, st.bytes);
      // Size the receive from the probed envelope (the classic idiom).
      std::vector<double> buf(static_cast<std::size_t>(st.count(Datatype::kDouble)));
      co_await world.recv(buf.data(), st.count(Datatype::kDouble),
                          Datatype::kDouble, st.source, st.tag);
      EXPECT_DOUBLE_EQ(buf[299], 299.0);
      EXPECT_FALSE(co_await world.iprobe(1, 5, &st));  // consumed now
    } else {
      int go = 0;
      co_await world.recv(&go, 1, Datatype::kInt, 0, 9);
      std::vector<double> data(300);
      for (int i = 0; i < 300; ++i) data[static_cast<std::size_t>(i)] = i;
      co_await world.send(data.data(), 300, Datatype::kDouble, 0, 5);
      (void)ctx;
    }
  });
}

TEST(MpiErrors, TruncationThrows) {
  MpiRig rig(2);
  EXPECT_THROW(
      rig.run([](Communicator& world, pmi::Context&) -> sim::Task<void> {
        if (world.rank() == 0) {
          std::vector<int> big(100, 1);
          co_await world.send(big.data(), 100, Datatype::kInt, 1, 0);
        } else {
          int small[10];
          co_await world.recv(small, 10, Datatype::kInt, 0, 0);
        }
      }),
      sim::ProcessError);
}

// ---------------------------------------------------------------------------
// MPI-level latency calibration: the paper's headline numbers.
// ---------------------------------------------------------------------------

double mpi_one_way_latency_usec(rdmach::Design design,
                                ch3::Stack stack = ch3::Stack::kRdmaChannel) {
  RuntimeConfig cfg;
  cfg.stack.stack = stack;
  cfg.stack.channel.design = design;
  MpiRig rig(2, cfg);
  sim::Tick elapsed = 0;
  constexpr int kIters = 20;
  rig.run([&elapsed](Communicator& world, pmi::Context& ctx) -> sim::Task<void> {
    std::byte buf[4] = {};
    if (world.rank() == 0) {
      co_await world.send(buf, 4, Datatype::kByte, 1, 0);
      co_await world.recv(buf, 4, Datatype::kByte, 1, 0);
      const sim::Tick t0 = ctx.sim().now();
      for (int i = 0; i < kIters; ++i) {
        co_await world.send(buf, 4, Datatype::kByte, 1, 0);
        co_await world.recv(buf, 4, Datatype::kByte, 1, 0);
      }
      elapsed = ctx.sim().now() - t0;
    } else {
      for (int i = 0; i < kIters + 1; ++i) {
        co_await world.recv(buf, 4, Datatype::kByte, 0, 0);
        co_await world.send(buf, 4, Datatype::kByte, 0, 0);
      }
    }
  });
  return sim::to_usec(elapsed) / (2 * kIters);
}

TEST(MpiLatency, BasicDesignNearPaper18_6) {
  const double usec = mpi_one_way_latency_usec(rdmach::Design::kBasic);
  EXPECT_NEAR(usec, 18.6, 1.8);  // within 10%
}

TEST(MpiLatency, PiggybackNearPaper7_4) {
  const double usec = mpi_one_way_latency_usec(rdmach::Design::kPiggyback);
  EXPECT_NEAR(usec, 7.4, 0.75);
}

TEST(MpiLatency, ZeroCopyNearPaper7_6) {
  const double usec = mpi_one_way_latency_usec(rdmach::Design::kZeroCopy);
  EXPECT_NEAR(usec, 7.6, 0.76);
}

}  // namespace
}  // namespace mpi
