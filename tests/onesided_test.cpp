// Tests for the future-work extensions: InfiniBand atomics at the verbs
// level, and the MPI-2 one-sided subset (Window put/get/accumulate/
// fetch_add/fence) built on them.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ib/cq.hpp"
#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "ib/mr.hpp"
#include "ib/qp.hpp"
#include "mpi/runtime.hpp"
#include "mpi/window.hpp"
#include "pmi/pmi.hpp"

namespace {

// ---------------------------------------------------------------------------
// Verbs-level atomics.
// ---------------------------------------------------------------------------

struct AtomicPair {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  ib::Node* a;
  ib::Node* b;
  ib::ProtectionDomain* pda;
  ib::ProtectionDomain* pdb;
  ib::CompletionQueue* cqa;
  ib::QueuePair* qpa;

  AtomicPair() {
    a = &fabric.add_node("a");
    b = &fabric.add_node("b");
    pda = &a->hca().alloc_pd();
    pdb = &b->hca().alloc_pd();
    cqa = &a->hca().create_cq("cqa");
    auto& cqb = b->hca().create_cq("cqb");
    qpa = &a->hca().create_qp(*pda, *cqa, *cqa);
    auto& qpb = b->hca().create_qp(*pdb, cqb, cqb);
    qpa->connect(qpb);
  }
};

TEST(IbAtomics, FetchAddReturnsOldValueAndApplies) {
  AtomicPair p;
  alignas(8) static std::uint64_t target = 100;
  alignas(8) static std::uint64_t old_val = 0;
  p.sim.spawn(
      [](AtomicPair& ap) -> sim::Task<void> {
        ib::MemoryRegion* ml =
            co_await ap.pda->register_memory(&old_val, 8);
        ib::MemoryRegion* mt = co_await ap.pdb->register_memory(&target, 8);
        for (int i = 0; i < 3; ++i) {
          ib::SendWr wr;
          wr.wr_id = static_cast<std::uint64_t>(i);
          wr.opcode = ib::Opcode::kFetchAdd;
          wr.sgl = {ib::Sge{reinterpret_cast<std::byte*>(&old_val), 8,
                            ml->lkey()}};
          wr.remote_addr = reinterpret_cast<std::uint64_t>(&target);
          wr.rkey = mt->rkey();
          wr.atomic_arg = 7;
          ap.qpa->post_send(std::move(wr));
          const ib::Wc wc = co_await ap.cqa->next();
          EXPECT_EQ(wc.status, ib::WcStatus::kSuccess);
          EXPECT_EQ(old_val, 100u + 7u * static_cast<unsigned>(i));
        }
        EXPECT_EQ(target, 121u);
      }(p),
      "fa");
  p.sim.run();
}

TEST(IbAtomics, CompareSwapOnlySwapsOnMatch) {
  AtomicPair p;
  alignas(8) static std::uint64_t target = 5;
  alignas(8) static std::uint64_t old_val = 0;
  p.sim.spawn(
      [](AtomicPair& ap) -> sim::Task<void> {
        ib::MemoryRegion* ml =
            co_await ap.pda->register_memory(&old_val, 8);
        ib::MemoryRegion* mt = co_await ap.pdb->register_memory(&target, 8);
        auto cas = [&](std::uint64_t expect,
                       std::uint64_t swap) -> sim::Task<std::uint64_t> {
          ib::SendWr wr;
          wr.wr_id = 1;
          wr.opcode = ib::Opcode::kCompareSwap;
          wr.sgl = {ib::Sge{reinterpret_cast<std::byte*>(&old_val), 8,
                            ml->lkey()}};
          wr.remote_addr = reinterpret_cast<std::uint64_t>(&target);
          wr.rkey = mt->rkey();
          wr.atomic_arg = expect;
          wr.atomic_swap = swap;
          ap.qpa->post_send(std::move(wr));
          (void)co_await ap.cqa->next();
          co_return old_val;
        };
        EXPECT_EQ(co_await cas(5, 9), 5u);   // matches: 5 -> 9
        EXPECT_EQ(target, 9u);
        EXPECT_EQ(co_await cas(5, 42), 9u);  // stale expect: no swap
        EXPECT_EQ(target, 9u);
      }(p),
      "cas");
  p.sim.run();
}

TEST(IbAtomics, WrongLengthIsRejected) {
  AtomicPair p;
  alignas(8) static std::uint64_t target = 0;
  static std::byte local[16];
  p.sim.spawn(
      [](AtomicPair& ap) -> sim::Task<void> {
        ib::MemoryRegion* ml = co_await ap.pda->register_memory(local, 16);
        ib::MemoryRegion* mt = co_await ap.pdb->register_memory(&target, 8);
        ib::SendWr wr;
        wr.wr_id = 9;
        wr.opcode = ib::Opcode::kFetchAdd;
        wr.sgl = {ib::Sge{local, 16, ml->lkey()}};  // atomics must be 8B
        wr.remote_addr = reinterpret_cast<std::uint64_t>(&target);
        wr.rkey = mt->rkey();
        ap.qpa->post_send(std::move(wr));
        const ib::Wc wc = co_await ap.cqa->next();
        EXPECT_EQ(wc.status, ib::WcStatus::kRemoteAccessError);
      }(p),
      "badlen");
  p.sim.run();
}

// ---------------------------------------------------------------------------
// MPI-2 one-sided windows.
// ---------------------------------------------------------------------------

struct WinRig {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job;

  explicit WinRig(int n) : job(fabric, n) {}

  void run(const std::function<sim::Task<void>(mpi::Communicator&,
                                               pmi::Context&)>& body) {
    job.launch([body](pmi::Context& ctx) -> sim::Task<void> {
      mpi::Runtime rt(ctx, {});
      co_await rt.init();
      co_await body(rt.world(), ctx);
      co_await rt.finalize();
    });
    sim.run();
  }
};

TEST(Window, PutThenFenceMakesDataVisible) {
  WinRig rig(4);
  rig.run([](mpi::Communicator& world, pmi::Context&) -> sim::Task<void> {
    std::vector<std::int64_t> mem(16, -1);
    auto win = co_await mpi::Window::create(world, mem.data(),
                                            mem.size() * 8);
    co_await win->fence();
    // Everyone deposits its rank into slot `rank` of the right neighbour.
    const int to = (world.rank() + 1) % world.size();
    const std::int64_t v = world.rank();
    co_await win->put(&v, 1, mpi::Datatype::kLong, to,
                      static_cast<std::size_t>(world.rank()) * 8);
    co_await win->fence();
    const int from = (world.rank() + world.size() - 1) % world.size();
    EXPECT_EQ(mem[static_cast<std::size_t>(from)], from);
    co_await world.barrier();
  });
}

TEST(Window, GetReadsRemoteMemory) {
  WinRig rig(2);
  rig.run([](mpi::Communicator& world, pmi::Context&) -> sim::Task<void> {
    std::vector<double> mem(64, world.rank() + 0.5);
    auto win = co_await mpi::Window::create(world, mem.data(),
                                            mem.size() * 8);
    co_await win->fence();
    std::vector<double> got(64, 0.0);
    co_await win->get(got.data(), 64, mpi::Datatype::kDouble,
                      1 - world.rank(), 0);
    co_await win->fence();
    EXPECT_DOUBLE_EQ(got[0], (1 - world.rank()) + 0.5);
    EXPECT_DOUBLE_EQ(got[63], (1 - world.rank()) + 0.5);
    co_await world.barrier();
  });
}

TEST(Window, FetchAddIsAtomicAcrossAllRanks) {
  WinRig rig(4);
  int final_value = 0;
  std::vector<std::int64_t> seen;
  rig.run([&](mpi::Communicator& world, pmi::Context&) -> sim::Task<void> {
    std::vector<std::int64_t> mem(1, 0);
    auto win = co_await mpi::Window::create(world, mem.data(), 8);
    co_await win->fence();
    // Everyone increments rank 0's counter 10 times concurrently.
    for (int i = 0; i < 10; ++i) {
      const std::int64_t old = co_await win->fetch_add(0, 0, 1);
      if (world.rank() != 0) seen.push_back(old);  // just exercise values
    }
    co_await win->fence();
    if (world.rank() == 0) final_value = static_cast<int>(mem[0]);
    co_await world.barrier();
  });
  EXPECT_EQ(final_value, 40);  // 4 ranks x 10 increments, none lost
}

TEST(Window, AccumulateSumsIntoTarget) {
  WinRig rig(4);
  rig.run([](mpi::Communicator& world, pmi::Context&) -> sim::Task<void> {
    std::vector<double> mem(8, 1.0);
    auto win = co_await mpi::Window::create(world, mem.data(),
                                            mem.size() * 8);
    co_await win->fence();
    // Each rank accumulates into a DISTINCT slot of rank 0's window
    // (the documented restriction: no conflicting concurrent targets).
    std::vector<double> contrib(1, world.rank() + 1.0);
    co_await win->accumulate(contrib.data(), 1, mpi::Datatype::kDouble,
                             mpi::Op::kSum, 0,
                             static_cast<std::size_t>(world.rank()) * 8);
    co_await win->fence();
    if (world.rank() == 0) {
      for (int r = 0; r < world.size(); ++r) {
        EXPECT_DOUBLE_EQ(mem[static_cast<std::size_t>(r)], 1.0 + r + 1.0);
      }
    }
    co_await world.barrier();
  });
}

TEST(Window, OutOfRangeAccessThrows) {
  WinRig rig(2);
  EXPECT_THROW(
      rig.run([](mpi::Communicator& world, pmi::Context&) -> sim::Task<void> {
        std::vector<std::int64_t> mem(4, 0);
        auto win = co_await mpi::Window::create(world, mem.data(), 32);
        co_await win->fence();
        std::int64_t v = 1;
        co_await win->put(&v, 1, mpi::Datatype::kLong, 1 - world.rank(), 32);
        co_await win->fence();
      }),
      sim::ProcessError);
}

TEST(Window, HaloExchangeViaOneSided) {
  // The paper's DSM/one-sided motivation: a stencil halo implemented with
  // puts instead of sendrecv.
  WinRig rig(4);
  rig.run([](mpi::Communicator& world, pmi::Context&) -> sim::Task<void> {
    constexpr int kN = 256;
    // Layout: [ghost_lo | kN own | ghost_hi]
    std::vector<double> field(kN + 2, world.rank() * 1000.0);
    for (int i = 1; i <= kN; ++i) {
      field[static_cast<std::size_t>(i)] = world.rank() * 1000.0 + i;
    }
    auto win = co_await mpi::Window::create(world, field.data(),
                                            field.size() * 8);
    co_await win->fence();
    const int p = world.size();
    const int up = (world.rank() + 1) % p;
    const int down = (world.rank() - 1 + p) % p;
    // Push my last own cell into up's low ghost, my first into down's high.
    co_await win->put(&field[kN], 1, mpi::Datatype::kDouble, up, 0);
    co_await win->put(&field[1], 1, mpi::Datatype::kDouble, down,
                      (kN + 1) * 8);
    co_await win->fence();
    EXPECT_DOUBLE_EQ(field[0], down * 1000.0 + kN);
    EXPECT_DOUBLE_EQ(field[kN + 1], up * 1000.0 + 1);
    co_await world.barrier();
  });
}

}  // namespace
