// Helpers for driving the nonblocking put/get interface from tests:
// blocking send/recv retry loops with the standard activity-count pattern
// that closes the check-then-sleep race, a rank-addressed fault-schedule
// builder, and a randomized traffic generator whose concatenated byte
// stream doubles as the differential-test oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "rdmach/channel.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"

namespace rdmach::testutil {

inline sim::Task<void> send_all(Channel& ch, Connection& c, const void* buf,
                                std::size_t n) {
  const auto* p = static_cast<const std::byte*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const std::uint64_t gen = ch.activity_count();
    const std::size_t k = co_await ch.put(c, p + done, n - done);
    done += k;
    if (done < n && k == 0 && ch.activity_count() == gen) {
      co_await ch.wait_for_activity();
    }
  }
}

inline sim::Task<void> recv_all(Channel& ch, Connection& c, void* buf,
                                std::size_t n) {
  auto* p = static_cast<std::byte*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const std::uint64_t gen = ch.activity_count();
    const std::size_t k = co_await ch.get(c, p + done, n - done);
    done += k;
    if (done < n && k == 0 && ch.activity_count() == gen) {
      co_await ch.wait_for_activity();
    }
  }
}

/// Rank-addressed wrapper over sim::FaultSchedule: pmi::Job names nodes
/// "node0".."nodeN-1", one rank per node (the default), so "kill rank R's
/// Nth WQE" translates directly to a node-name scope.  Attach `schedule`
/// to the fabric before launching.
struct FaultPlan {
  sim::FaultSchedule schedule;

  static std::string scope_of(int rank) {
    return "node" + std::to_string(rank);
  }

  /// Kills the `nth` (0-based) WQE that rank's HCA processes.
  FaultPlan& kill(int rank, std::uint64_t nth, bool fatal = true) {
    schedule.kill(scope_of(rank), nth, fatal);
    return *this;
  }

  /// Kills every WQE from the `from`th onward (budget-exhaustion tests).
  FaultPlan& kill_from(int rank, std::uint64_t from, bool fatal = true) {
    schedule.kill_from(scope_of(rank), from, fatal);
    return *this;
  }

  /// Takes rail `rail` of that rank's node down, sticky, at the `from`th
  /// WQE the rank initiates through it (multi-rail failure domains: the
  /// surviving rails absorb the stripe set).
  FaultPlan& rail_down(int rank, int rail, std::uint64_t from = 0) {
    schedule.rail_down(scope_of(rank), rail, from);
    return *this;
  }

  /// Flips one payload bit in the `nth` WQE that rank's HCA processes; the
  /// operation still completes with kSuccess (silent data corruption).
  FaultPlan& corrupt(int rank, std::uint64_t nth) {
    schedule.corrupt(scope_of(rank), nth);
    return *this;
  }

  /// Denies `n` memory registrations on that rank starting from its
  /// `from`th register_memory call.  Init-time registrations (rings, ctrl
  /// blocks, FIN arrays) come first, so chaos schedules should keep `from`
  /// past the bootstrap -- a denied bootstrap is a setup error, not a
  /// degradation path.
  FaultPlan& exhaust_reg(int rank, std::uint64_t from, std::uint64_t n = 1) {
    schedule.exhaust(scope_of(rank) + ".reg", from, n);
    return *this;
  }

  /// Drops `n` CQEs into that rank's CQ overrun buffer starting from its
  /// `from`th delivered completion (drain-and-rearm recovery path).
  FaultPlan& exhaust_cq(int rank, std::uint64_t from, std::uint64_t n = 1) {
    schedule.exhaust(scope_of(rank) + ".cq", from, n);
    return *this;
  }

  /// Denies `n` ring-credit grants on that rank starting from its `from`th
  /// put-side credit check (backpressure/retry path).
  FaultPlan& exhaust_credit(int rank, std::uint64_t from,
                            std::uint64_t n = 1) {
    schedule.exhaust(scope_of(rank) + ".credit", from, n);
    return *this;
  }

  /// Gray-degrades rank's WQEs [from, until) with `spec` (node scope; the
  /// link heals once the window passes).
  FaultPlan& degrade(int rank, sim::FaultSchedule::DegradeSpec spec,
                     std::uint64_t from = 0,
                     std::uint64_t until = sim::FaultSchedule::kForever) {
    schedule.degrade(scope_of(rank), from, until, spec);
    return *this;
  }

  /// Gray-degrades WQEs [from, until) initiated through rank's rail `rail`
  /// only -- the other rails stay at full health.
  FaultPlan& degrade_rail(int rank, int rail,
                          sim::FaultSchedule::DegradeSpec spec,
                          std::uint64_t from = 0,
                          std::uint64_t until = sim::FaultSchedule::kForever) {
    schedule.degrade(sim::FaultSchedule::rail_scope(scope_of(rank), rail),
                     from, until, spec);
    return *this;
  }

  /// Flapping link: inside [from, until), `duty` of every `period` WQEs on
  /// rank's rail `rail` are degraded by `spec`.
  FaultPlan& flaky_rail(int rank, int rail,
                        sim::FaultSchedule::DegradeSpec spec,
                        std::uint64_t period, std::uint64_t duty,
                        std::uint64_t from = 0,
                        std::uint64_t until = sim::FaultSchedule::kForever) {
    schedule.flaky(sim::FaultSchedule::rail_scope(scope_of(rank), rail), spec,
                   period, duty, from, until);
    return *this;
  }
};

/// Randomized put-sized message stream.  `bytes` is the full concatenated
/// stream in FIFO order -- exactly what a correct channel must deliver, so
/// it serves as the oracle for differential fault tests.
struct Traffic {
  std::vector<std::size_t> sizes;
  std::vector<std::byte> bytes;

  static Traffic make(std::uint64_t seed, std::size_t messages,
                      std::size_t min_len, std::size_t max_len) {
    sim::Rng rng(seed);
    Traffic t;
    t.sizes.reserve(messages);
    for (std::size_t i = 0; i < messages; ++i) {
      const std::size_t n =
          min_len + static_cast<std::size_t>(rng.below(
                        static_cast<std::uint64_t>(max_len - min_len + 1)));
      t.sizes.push_back(n);
      for (std::size_t b = 0; b < n; ++b) {
        t.bytes.push_back(static_cast<std::byte>(rng.next() & 0xff));
      }
    }
    return t;
  }

  std::size_t total() const { return bytes.size(); }
};

}  // namespace rdmach::testutil
