// Helpers for driving the nonblocking put/get interface from tests:
// blocking send/recv retry loops with the standard activity-count pattern
// that closes the check-then-sleep race.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rdmach/channel.hpp"
#include "sim/task.hpp"

namespace rdmach::testutil {

inline sim::Task<void> send_all(Channel& ch, Connection& c, const void* buf,
                                std::size_t n) {
  const auto* p = static_cast<const std::byte*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const std::uint64_t gen = ch.activity_count();
    const std::size_t k = co_await ch.put(c, p + done, n - done);
    done += k;
    if (done < n && k == 0 && ch.activity_count() == gen) {
      co_await ch.wait_for_activity();
    }
  }
}

inline sim::Task<void> recv_all(Channel& ch, Connection& c, void* buf,
                                std::size_t n) {
  auto* p = static_cast<std::byte*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const std::uint64_t gen = ch.activity_count();
    const std::size_t k = co_await ch.get(c, p + done, n - done);
    done += k;
    if (done < n && k == 0 && ch.activity_count() == gen) {
      co_await ch.wait_for_activity();
    }
  }
}

}  // namespace rdmach::testutil
