// Tests for the scalable one-sided RMA engine: passive-target epochs
// (lock_all / flush), the serialized accumulate path, notified access,
// and the recovery composition (journal replay across a QP kill, obituary
// fast-fail toward convicted ranks under ft_detector).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "channel_test_util.hpp"
#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "mpi/window.hpp"
#include "pmi/pmi.hpp"

namespace {

using rdmach::testutil::FaultPlan;

constexpr sim::Tick kDeadline = sim::usec(30'000'000);  // 30 virtual seconds

// ---------------------------------------------------------------------------
// Differential: one RMA program, several stacks, one oracle
// ---------------------------------------------------------------------------

/// Runs the flush/lock-all RMA program on `design` and checks every rank's
/// final window memory against the locally computed oracle.  The window
/// drives its own QP mesh, so the result must be identical no matter which
/// two-sided design carries the bootstrap traffic -- including the pure
/// shared-memory stack (all ranks on one node).
void run_rma_program(rdmach::Design design, int ranks_per_node) {
  constexpr int kP = 4;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job{fabric, kP, ranks_per_node};
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = design;
  int checked = 0;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    const int me = world.rank();
    const int right = (me + 1) % kP;
    const int left = (me + kP - 1) % kP;
    std::vector<std::int64_t> mem(64, me);
    auto win = co_await mpi::Window::create(world, mem.data(), 64 * 8);
    co_await win->fence();
    win->lock_all();

    // Phase 1: deposit my rank into slot `me` of my right neighbour, then
    // complete it with a per-target flush (no barrier, no target code).
    const std::int64_t tag = me;
    co_await win->put(&tag, 1, mpi::Datatype::kLong, right,
                      static_cast<std::size_t>(me) * 8);
    co_await win->flush(right);
    co_await world.barrier();  // order the *check*, not the completion
    EXPECT_EQ(mem[static_cast<std::size_t>(left)], left);

    // Phase 2: everyone accumulates into the SAME word of rank 0 (the
    // serialized-RMW path) and fetch_adds the word next to it.
    const std::int64_t contrib = me + 1;
    co_await win->accumulate(&contrib, 1, mpi::Datatype::kLong, mpi::Op::kSum,
                             0, 60 * 8);
    (void)co_await win->fetch_add(0, 61 * 8, 1);
    co_await win->flush_all();
    co_await win->unlock_all();
    co_await win->fence();
    if (me == 0) {
      EXPECT_EQ(mem[60], 0 + 1 + 2 + 3 + 4);  // init 0 + sum(r+1)
      EXPECT_EQ(mem[61], kP);                 // one fetch_add per rank
    }

    // Phase 3: read the accumulate word back from everywhere.
    std::int64_t got = -1;
    co_await win->get(&got, 1, mpi::Datatype::kLong, 0, 60 * 8);
    co_await win->flush(0);
    EXPECT_EQ(got, 10);
    ++checked;
    co_await win->fence();
    co_await rt.finalize();
  });
  sim.run_until(kDeadline);
  EXPECT_EQ(checked, kP) << "a rank never finished the RMA program";
}

TEST(RmaDifferential, BasicDesignMatchesOracle) {
  run_rma_program(rdmach::Design::kBasic, 1);
}

TEST(RmaDifferential, ZeroCopyDesignMatchesOracle) {
  run_rma_program(rdmach::Design::kZeroCopy, 1);
}

TEST(RmaDifferential, ShmStackMatchesOracle) {
  // All four ranks on one node: the bootstrap runs over the shared-memory
  // channel, the window QPs are HCA-loopback.
  run_rma_program(rdmach::Design::kShm, 4);
}

// ---------------------------------------------------------------------------
// The accumulate data race (historical bug): conflicting targets
// ---------------------------------------------------------------------------

TEST(Rma, AccumulateContentionIsSerialized) {
  // Every rank accumulates into the SAME window word of rank 0,
  // concurrently.  The historical read-modify-write emulation lost
  // updates here; the CAS-lock serialization must not drop any.
  constexpr int kP = 4;
  constexpr int kHits = 10;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job{fabric, kP};
  std::int64_t final_value = -1;
  std::uint64_t lock_spins = 0;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<std::int64_t> mem(1, 0);
    auto win = co_await mpi::Window::create(world, mem.data(), 8);
    co_await win->fence();
    win->lock_all();
    const std::int64_t one = 1;
    for (int i = 0; i < kHits; ++i) {
      co_await win->accumulate(&one, 1, mpi::Datatype::kLong, mpi::Op::kSum,
                               0, 0);
    }
    co_await win->unlock_all();
    co_await win->fence();
    if (world.rank() == 0) {
      final_value = mem[0];
      lock_spins = win->stats().lock_spins;
    }
    co_await world.barrier();
    co_await rt.finalize();
  });
  sim.run_until(kDeadline);
  EXPECT_EQ(final_value, kP * kHits);  // no lost updates
  (void)lock_spins;  // contention may or may not spin; correctness above
}

TEST(Rma, FetchAddContentionUnderFlushEpochs) {
  constexpr int kP = 4;
  constexpr int kHits = 8;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job{fabric, kP};
  std::int64_t final_value = -1;
  bool olds_distinct = true;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<std::int64_t> mem(1, 0);
    auto win = co_await mpi::Window::create(world, mem.data(), 8);
    co_await win->fence();
    win->lock_all();
    std::int64_t prev = -1;
    for (int i = 0; i < kHits; ++i) {
      const std::int64_t old = co_await win->fetch_add(0, 0, 1);
      if (old <= prev) olds_distinct = false;  // must be strictly increasing
      prev = old;
      co_await win->flush(0);
    }
    co_await win->unlock_all();
    co_await win->fence();
    if (world.rank() == 0) final_value = mem[0];
    co_await world.barrier();
    co_await rt.finalize();
  });
  sim.run_until(kDeadline);
  EXPECT_EQ(final_value, kP * kHits);
  EXPECT_TRUE(olds_distinct);
}

// ---------------------------------------------------------------------------
// Notified access
// ---------------------------------------------------------------------------

TEST(Rma, PutNotifyProducerConsumer) {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job{fabric, 2};
  int consumed = 0;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<std::int64_t> mem(4, 0);
    auto win = co_await mpi::Window::create(world, mem.data(), 4 * 8);
    co_await win->fence();
    if (world.rank() == 0) {
      win->lock_all();
      for (std::int64_t i = 1; i <= 3; ++i) {
        const std::int64_t v = 100 + i;
        co_await win->put_notify(&v, 1, mpi::Datatype::kLong, 1,
                                 static_cast<std::size_t>(i - 1) * 8);
        co_await win->flush(1);  // origin-side completion of data + flag
      }
      co_await win->unlock_all();
    } else {
      for (std::int64_t i = 1; i <= 3; ++i) {
        co_await win->wait_notify(0, static_cast<std::uint64_t>(i));
        // The flag rode the same QP behind the data: observing notify i
        // means puts 1..i all landed.
        for (std::int64_t k = 1; k <= i; ++k) {
          EXPECT_EQ(mem[static_cast<std::size_t>(k - 1)], 100 + k);
        }
        ++consumed;
      }
      EXPECT_EQ(win->notify_count(0), 3u);
    }
    co_await win->fence();
    co_await rt.finalize();
  });
  sim.run_until(kDeadline);
  EXPECT_EQ(consumed, 3);
}

TEST(Rma, PipelinedPutNotifyKeepsFlagOrdering) {
  // Back-to-back put_notify calls with NO intervening flush: each flag
  // write must own its registered source until its CQE retires it (the
  // HCA gathers the source at WQE-processing time), or an early flag can
  // carry a later absolute count and unblock the consumer before the
  // corresponding puts landed.  24 notifies also overflows the 16-slot
  // ring, exercising the drain fallback.
  constexpr std::int64_t kN = 24;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job{fabric, 2};
  int consumed = 0;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<std::int64_t> mem(kN, -1);
    auto win = co_await mpi::Window::create(world, mem.data(), kN * 8);
    co_await win->fence();
    if (world.rank() == 0) {
      win->lock_all();
      // Warm the RegCache with one covering registration (content is the
      // -1s the target already holds), so the burst's acquires are cache
      // hits and every put_notify posts in the same tick -- the deepest,
      // most adversarial pipeline the origin can create.
      std::vector<std::int64_t> vals(static_cast<std::size_t>(kN), -1);
      co_await win->put(vals.data(), static_cast<int>(kN),
                        mpi::Datatype::kLong, 1, 0);
      co_await win->flush(1);
      for (std::int64_t i = 1; i <= kN; ++i) {
        vals[static_cast<std::size_t>(i - 1)] = 100 + i;
        co_await win->put_notify(&vals[static_cast<std::size_t>(i - 1)], 1,
                                 mpi::Datatype::kLong, 1,
                                 static_cast<std::size_t>(i - 1) * 8);
        // Deliberately no flush: the whole burst is in flight at once.
      }
      co_await win->flush(1);
      co_await win->unlock_all();
    } else {
      for (std::int64_t i = 1; i <= kN; ++i) {
        co_await win->wait_notify(0, static_cast<std::uint64_t>(i));
        // Whatever count is visible, every put up to it must have landed.
        const std::uint64_t c = win->notify_count(0);
        for (std::uint64_t k = 1; k <= c; ++k) {
          EXPECT_EQ(mem[static_cast<std::size_t>(k - 1)],
                    static_cast<std::int64_t>(100 + k))
              << "notify " << c << " visible but put " << k << " missing";
        }
        ++consumed;
      }
      EXPECT_EQ(win->notify_count(0), static_cast<std::uint64_t>(kN));
    }
    co_await win->fence();
    co_await rt.finalize();
  });
  sim.run_until(kDeadline);
  EXPECT_EQ(consumed, kN);
}

sim::Task<void> self_notify_waiter(mpi::Window& win, int me, bool& woke) {
  co_await win.wait_notify(me, 1);
  woke = true;
}

TEST(Rma, PutNotifyToSelfWakesBlockedWaiter) {
  // A coroutine already blocked in wait_notify(self) re-evaluates its
  // predicate only when the node's dma_arrival trigger fires; a local
  // put_notify must fire it just like an inbound flag write does.
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job{fabric, 1};
  bool woke = false;
  bool done = false;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<std::int64_t> mem(2, 0);
    auto win = co_await mpi::Window::create(world, mem.data(), 2 * 8);
    co_await win->fence();
    ctx.sim().spawn(self_notify_waiter(*win, 0, woke), "self-waiter");
    co_await ctx.sim().delay(sim::usec(10));  // let the waiter block first
    EXPECT_FALSE(woke);
    const std::int64_t v = 42;
    co_await win->put_notify(&v, 1, mpi::Datatype::kLong, 0, 0);
    co_await ctx.sim().delay(sim::usec(100));
    EXPECT_TRUE(woke) << "self put_notify never woke the blocked waiter";
    EXPECT_EQ(mem[0], 42);
    co_await win->fence();
    done = true;
    co_await rt.finalize();
  });
  sim.run_until(kDeadline);
  EXPECT_TRUE(woke);
  EXPECT_TRUE(done);
}

TEST(Rma, AsymmetricWindowsValidateAgainstTargetSize) {
  // create() takes per-rank bytes, so legality of an access is a property
  // of the *target's* window: rank 0 exposes 8 bytes, rank 1 exposes 64.
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job{fabric, 2};
  bool stored = false;
  bool rejected = false;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    const int me = world.rank();
    std::vector<std::int64_t> mem(me == 0 ? 1 : 8, -1);
    auto win =
        co_await mpi::Window::create(world, mem.data(), mem.size() * 8);
    co_await win->fence();
    if (me == 0) {
      // Legal at the target (disp 32 < 64) though beyond our own 8 bytes.
      win->lock_all();
      const std::int64_t v = 77;
      co_await win->put(&v, 1, mpi::Datatype::kLong, 1, 4 * 8);
      co_await win->flush(1);
      co_await win->unlock_all();
    } else {
      // Out of range at the target: a clean local MpiError, no wire op.
      const std::int64_t v = 5;
      try {
        co_await win->put(&v, 1, mpi::Datatype::kLong, 0, 4 * 8);
      } catch (const mpi::MpiError&) {
        rejected = true;
      }
    }
    co_await world.barrier();
    if (me == 1) stored = (mem[4] == 77);
    co_await win->fence();
    co_await rt.finalize();
  });
  sim.run_until(kDeadline);
  EXPECT_TRUE(stored) << "legal access to the larger remote window failed";
  EXPECT_TRUE(rejected) << "out-of-range access was not rejected locally";
}

// ---------------------------------------------------------------------------
// Recovery composition
// ---------------------------------------------------------------------------

TEST(RmaFault, FlushSpansQpKillAndReplays) {
  // A transient fatal kill lands mid-burst on the origin's window QP.  The
  // flush must observe the error CQEs, reset the QP, replay the journal,
  // and complete -- the target's memory ends up exactly as if no fault had
  // happened (puts are idempotent; the killed WQE never reached the
  // responder).
  FaultPlan plan;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  fabric.attach_faults(&plan.schedule);
  pmi::Job job{fabric, 2};
  std::uint64_t replays = 0, recoveries = 0;
  int verified = 0;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    constexpr int kBurst = 8;
    std::vector<std::int64_t> mem(kBurst, -1);
    auto win = co_await mpi::Window::create(world, mem.data(), kBurst * 8);
    co_await win->fence();
    if (world.rank() == 0) {
      // Kill the third window WQE this node processes from here on; the
      // channel is quiescent between the fence and the flush, so the
      // burst's puts are the next WQEs in scope.
      const std::string scope = FaultPlan::scope_of(0);
      plan.schedule.kill(scope, plan.schedule.observed(scope) + 2);
      win->lock_all();
      std::vector<std::int64_t> vals(kBurst);
      for (int i = 0; i < kBurst; ++i) vals[i] = 1000 + i;
      for (int i = 0; i < kBurst; ++i) {
        co_await win->put(&vals[static_cast<std::size_t>(i)], 1,
                          mpi::Datatype::kLong, 1,
                          static_cast<std::size_t>(i) * 8);
      }
      co_await win->flush(1);
      co_await win->unlock_all();
      replays = win->stats().replays;
      recoveries = win->stats().recoveries;
    }
    co_await world.barrier();  // flush happened-before the check
    if (world.rank() == 1) {
      for (int i = 0; i < kBurst; ++i) {
        EXPECT_EQ(mem[static_cast<std::size_t>(i)], 1000 + i) << "slot " << i;
      }
      ++verified;
    }
    co_await win->fence();
    co_await rt.finalize();
  });
  sim.run_until(kDeadline);
  EXPECT_EQ(verified, 1) << "target never verified (hang?)";
  EXPECT_GE(recoveries, 1u) << "the kill was never recovered from";
  EXPECT_GE(replays, 1u) << "no journal entry was replayed";
}

TEST(RmaFault, AccumulateFailureReleasesRemoteLock) {
  // Rank 1's RMW read dies (non-fatal kill, zero retry budget) after its
  // CAS took rank 0's accumulate lock: the accumulate raises
  // ChannelError, but the failure path must still release the remote
  // lock word -- otherwise rank 2, accumulating to the same live target,
  // spins on the leaked lock until its watchdog and raises a false kDead.
  constexpr int kP = 3;
  mpi::WindowConfig wcfg;
  wcfg.recovery_max_attempts = 0;
  FaultPlan plan;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  fabric.attach_faults(&plan.schedule);
  pmi::Job job{fabric, kP};
  bool failed = false;
  bool second_ok = false;
  std::int64_t final_value = -1;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<std::int64_t> mem(1, 0);
    auto win = co_await mpi::Window::create(world, mem.data(), 8, wcfg);
    co_await win->fence();
    win->lock_all();
    const std::int64_t contrib = 5;
    if (world.rank() == 1) {
      // Next window WQEs this node initiates: the CAS (lock acquire),
      // then the RMW read -- kill the read, non-fatally (the QP
      // survives, the zero budget does not).
      const std::string scope = FaultPlan::scope_of(1);
      plan.schedule.kill(scope, plan.schedule.observed(scope) + 1,
                         /*fatal=*/false);
      try {
        co_await win->accumulate(&contrib, 1, mpi::Datatype::kLong,
                                 mpi::Op::kSum, 0, 0);
      } catch (const rdmach::ChannelError&) {
        failed = true;
      }
      ctx.kvs->put("rma:lockleak:failed", "1");
    } else if (world.rank() == 2) {
      (void)co_await ctx.kvs->get("rma:lockleak:failed");
      co_await win->accumulate(&contrib, 1, mpi::Datatype::kLong,
                               mpi::Op::kSum, 0, 0);
      second_ok = true;
      ctx.kvs->put("rma:lockleak:done", "1");
    } else {
      (void)co_await ctx.kvs->get("rma:lockleak:done");
      final_value = mem[0];
    }
    co_await win->unlock_all();
    co_await win->fence();
    co_await rt.finalize();
  });
  sim.run_until(kDeadline);
  EXPECT_TRUE(failed) << "the injected kill never surfaced";
  EXPECT_TRUE(second_ok) << "healthy origin hung on a leaked lock";
  EXPECT_EQ(final_value, 5) << "the healthy accumulate was lost";
}

TEST(RmaFault, RmaToDeadRankFailsFastUnderFtDetector) {
  // Rank 3 dies for real after the window is up.  Rank 0 discovers it the
  // hard way -- a flush whose retry budget convicts and posts the obituary
  // -- and every subsequent RMA entry toward the corpse fails fast off the
  // board, from every survivor.  Never a hang.
  constexpr int kP = 4;
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = rdmach::Design::kZeroCopy;
  cfg.stack.channel.ft_detector = true;
  cfg.stack.channel.recovery_max_attempts = 4;
  mpi::WindowConfig wcfg;
  wcfg.recovery_max_attempts = 3;  // shorten the conviction
  FaultPlan plan;
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  fabric.attach_faults(&plan.schedule);
  pmi::Job job{fabric, kP};
  bool proc_failed[kP] = {false, false, false, false};
  bool fast_failed[kP] = {false, false, false, false};
  std::uint64_t fast_fail_count = 0;
  std::vector<std::unique_ptr<mpi::Runtime>> rts(kP);
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    rts[static_cast<std::size_t>(ctx.rank)] =
        std::make_unique<mpi::Runtime>(ctx, cfg);
    mpi::Runtime& rt = *rts[static_cast<std::size_t>(ctx.rank)];
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<std::int64_t> mem(8, 0);
    auto win =
        co_await mpi::Window::create(world, mem.data(), 8 * 8, wcfg);
    co_await win->fence();
    if (ctx.rank == 3) {
      plan.schedule.rank_down(FaultPlan::scope_of(3));
      co_return;  // the corpse: never progresses again
    }
    win->lock_all();
    const std::int64_t v = 7;
    if (ctx.rank == 0) {
      // The hard way: put + flush burns the window's retry budget, posts
      // the obituary, raises ProcFailedError naming the corpse.
      try {
        co_await win->put(&v, 1, mpi::Datatype::kLong, 3, 0);
        co_await win->flush(3);
      } catch (const mpi::ProcFailedError& e) {
        proc_failed[0] = true;
        EXPECT_EQ(e.world_rank(), 3);
      }
      // Fast path: with the obituary on the board, the entry check fires
      // before any WQE is posted.
      try {
        co_await win->put(&v, 1, mpi::Datatype::kLong, 3, 0);
      } catch (const mpi::ProcFailedError& e) {
        fast_failed[0] = true;
        EXPECT_EQ(e.world_rank(), 3);
      }
      fast_fail_count = win->stats().obit_fast_fails;
    } else {
      // Enter only once the obituary is on the board, so the error comes
      // from the uniform entry check.
      const std::string posted = co_await ctx.kvs->get("ft:dead:3");
      (void)posted;
      try {
        co_await win->put(&v, 1, mpi::Datatype::kLong, 3, 0);
      } catch (const mpi::ProcFailedError& e) {
        proc_failed[ctx.rank] = true;
        fast_failed[ctx.rank] = true;
        EXPECT_EQ(e.world_rank(), 3);
      }
    }
  });
  sim.run_until(kDeadline);
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(r == 0 ? proc_failed[0] : proc_failed[r])
        << "survivor " << r << " saw no error";
    EXPECT_TRUE(fast_failed[r]) << "survivor " << r << " did not fast-fail";
  }
  EXPECT_GE(fast_fail_count, 1u);
}

// ---------------------------------------------------------------------------
// ChannelStats facade plumbing
// ---------------------------------------------------------------------------

TEST(RmaStats, FacadeCountsAndResets) {
  // The multi-method facade keeps its own rma_* counters (summed on top of
  // both members' tracks) and reset_channel_stats must zero them.
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job{fabric, 2, /*ranks_per_node=*/2};
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = rdmach::Design::kMultiMethod;
  bool checked = false;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<std::int64_t> mem(4, 0);
    auto win = co_await mpi::Window::create(world, mem.data(), 4 * 8);
    co_await win->fence();
    win->lock_all();
    if (world.rank() == 0) {
      const std::int64_t v = 1;
      co_await win->put(&v, 1, mpi::Datatype::kLong, 1, 0);
      co_await win->flush(1);
      std::int64_t got = 0;
      co_await win->get(&got, 1, mpi::Datatype::kLong, 1, 0);
      co_await win->flush(1);
      (void)co_await win->fetch_add(1, 8, 1);

      const rdmach::ChannelStats st = rt.engine().channel().channel_stats();
      EXPECT_EQ(st.rma_puts, 1u);
      EXPECT_EQ(st.rma_gets, 1u);
      EXPECT_EQ(st.rma_atomics, 1u);
      EXPECT_EQ(st.rma_flushes, 2u);

      rt.engine().channel().reset_channel_stats();
      const rdmach::ChannelStats zero = rt.engine().channel().channel_stats();
      EXPECT_EQ(zero.rma_puts, 0u);
      EXPECT_EQ(zero.rma_gets, 0u);
      EXPECT_EQ(zero.rma_atomics, 0u);
      EXPECT_EQ(zero.rma_flushes, 0u);

      rt.engine().channel().note_rma(rdmach::RmaOp::kPut);
      EXPECT_EQ(rt.engine().channel().channel_stats().rma_puts, 1u);
      checked = true;
    }
    co_await win->unlock_all();
    co_await win->fence();
    co_await rt.finalize();
  });
  sim.run_until(kDeadline);
  EXPECT_TRUE(checked);
}

}  // namespace
