// Tests for derived datatypes: layout normalization, pack/unpack round
// trips (including a property test over random indexed types), and typed
// transfers over the full stack (matrix-column exchange via Type_vector).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ib/fabric.hpp"
#include "mpi/datatype.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"
#include "sim/rng.hpp"

namespace mpi {
namespace {

TEST(TypeLayout, ContiguousIsOneBlock) {
  const TypeLayout t = TypeLayout::contiguous(10, Datatype::kDouble);
  EXPECT_EQ(t.size(), 80u);
  EXPECT_EQ(t.extent(), 80u);
  EXPECT_EQ(t.block_count(), 1u);
}

TEST(TypeLayout, VectorDescribesStridedColumns) {
  // A column of a 4x6 row-major double matrix: count=4, blocklen=1, stride=6.
  const TypeLayout col = TypeLayout::vector(4, 1, 6, Datatype::kDouble);
  EXPECT_EQ(col.size(), 4u * 8u);
  EXPECT_EQ(col.extent(), (3u * 6u + 1u) * 8u);
  EXPECT_EQ(col.block_count(), 4u);
}

TEST(TypeLayout, VectorWithBlocklenEqualStrideCoalesces) {
  const TypeLayout t = TypeLayout::vector(5, 3, 3, Datatype::kInt);
  EXPECT_EQ(t.block_count(), 1u);  // fully contiguous after merging
  EXPECT_EQ(t.size(), 60u);
}

TEST(TypeLayout, OverlappingVectorRejected) {
  EXPECT_THROW(TypeLayout::vector(3, 4, 2, Datatype::kInt), MpiError);
}

TEST(TypeLayout, PackUnpackColumnRoundTrip) {
  // Extract column 2 of a 4x6 matrix and put it back elsewhere.
  std::vector<double> mat(24);
  std::iota(mat.begin(), mat.end(), 0.0);
  const TypeLayout col = TypeLayout::vector(4, 1, 6, Datatype::kDouble);
  std::vector<double> packed(4);
  col.pack(mat.data() + 2, 1, packed.data());
  EXPECT_EQ(packed, (std::vector<double>{2, 8, 14, 20}));
  std::vector<double> out(24, -1.0);
  col.unpack(packed.data(), 1, out.data() + 3);  // deposit as column 3
  EXPECT_DOUBLE_EQ(out[3], 2);
  EXPECT_DOUBLE_EQ(out[9], 8);
  EXPECT_DOUBLE_EQ(out[15], 14);
  EXPECT_DOUBLE_EQ(out[21], 20);
  EXPECT_DOUBLE_EQ(out[0], -1.0);  // untouched elsewhere
}

TEST(TypeLayout, MultiCountUsesExtent) {
  // Two consecutive "column" elements advance by the extent.
  const TypeLayout col = TypeLayout::vector(2, 1, 3, Datatype::kInt);
  std::vector<int> data(16);
  std::iota(data.begin(), data.end(), 0);
  std::vector<int> packed(4);
  col.pack(data.data(), 2, packed.data());
  // element 0: offsets {0, 3}; element 1 starts at extent = 4 ints: {4, 7}.
  EXPECT_EQ(packed, (std::vector<int>{0, 3, 4, 7}));
}

TEST(TypeLayout, RandomIndexedRoundTripProperty) {
  sim::Rng rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    const int nblocks = 1 + static_cast<int>(rng.below(8));
    std::vector<int> lens, displs;
    int cursor = 0;
    for (int b = 0; b < nblocks; ++b) {
      cursor += static_cast<int>(rng.below(5));
      const int len = 1 + static_cast<int>(rng.below(6));
      displs.push_back(cursor);
      lens.push_back(len);
      cursor += len;
    }
    const TypeLayout t = TypeLayout::indexed(lens, displs, Datatype::kInt);
    std::vector<int> src(static_cast<std::size_t>(cursor) + 4);
    for (auto& v : src) v = static_cast<int>(rng.next() & 0x7fffffff);
    std::vector<int> packed(t.size() / 4);
    t.pack(src.data(), 1, packed.data());
    std::vector<int> dst(src.size(), -1);
    t.unpack(packed.data(), 1, dst.data());
    // Every described element must round-trip; others stay untouched.
    std::vector<bool> covered(src.size(), false);
    for (std::size_t b = 0; b < lens.size(); ++b) {
      for (int k = 0; k < lens[b]; ++k) {
        covered[static_cast<std::size_t>(displs[b] + k)] = true;
      }
    }
    for (std::size_t i = 0; i < src.size(); ++i) {
      if (covered[i]) {
        ASSERT_EQ(dst[i], src[i]) << "trial " << trial << " index " << i;
      } else {
        ASSERT_EQ(dst[i], -1) << "trial " << trial << " index " << i;
      }
    }
  }
}

TEST(TypedTransfer, ColumnExchangeOverFullStack) {
  // The canonical Type_vector use case: exchange a matrix column between
  // two ranks (e.g. a vertical halo in a 2-D domain decomposition).
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 2);
  constexpr int kRows = 64, kCols = 48;
  job.launch([](pmi::Context& ctx) -> sim::Task<void> {
    Runtime rt(ctx, {});
    co_await rt.init();
    Communicator& world = rt.world();
    std::vector<double> mat(kRows * kCols);
    for (int r = 0; r < kRows; ++r) {
      for (int c = 0; c < kCols; ++c) {
        mat[static_cast<std::size_t>(r * kCols + c)] =
            world.rank() * 10000.0 + r * 100.0 + c;
      }
    }
    const TypeLayout col =
        TypeLayout::vector(kRows, 1, kCols, Datatype::kDouble);
    // Send my last column to the peer's column 0 ghost; receive theirs.
    const int peer = 1 - world.rank();
    if (world.rank() == 0) {
      co_await world.send_typed(mat.data() + (kCols - 1), 1, col, peer, 3);
      co_await world.recv_typed(mat.data(), 1, col, peer, 3);
    } else {
      std::vector<double> ghost_src(static_cast<std::size_t>(kRows));
      co_await world.recv_typed(mat.data(), 1, col, peer, 3);
      co_await world.send_typed(mat.data() + (kCols - 1), 1, col, peer, 3);
      (void)ghost_src;
    }
    // Column 0 now holds the peer's column kCols-1.
    for (int r = 0; r < kRows; ++r) {
      EXPECT_DOUBLE_EQ(mat[static_cast<std::size_t>(r * kCols)],
                       peer * 10000.0 + r * 100.0 + (kCols - 1));
    }
    co_await rt.finalize();
  });
  sim.run();
}

}  // namespace
}  // namespace mpi
