// Multi-rail fabric: striping, failure domains, and stripe-policy tests.
//
// A Node may own several HCAs with several ports each (ib::FabricConfig
// num_hcas / ports_per_hca); each (hca, port) pair is one *rail* with its
// own modeled link, CQ, and failure domain.  The adaptive channel stripes
// large rendezvous chunks (and assigns whole write rounds) over the rails
// while the small-message ring stays on rail 0.  This suite pins:
//
//   * aggregate scaling: two equal rails must beat one by >= 1.7x at the
//     >= 1MB rendezvous plateau (wire-bound -> node-bus-bound);
//   * failure domains: a rail dying mid-rendezvous moves its in-flight
//     chunks to the survivors through the journal/NACK machinery, the
//     delivered stream still matches the ShmChannel oracle byte-for-byte,
//     and the rail_failovers / retransmits counters are pinned;
//   * every-rail-dead is the only way to a ChannelError;
//   * stripe policy: on an asymmetric (fast + slow) fabric the learned
//     weighted split beats naive strict round-robin and puts more bytes on
//     the fast rail.
//
// Carries the `multirail` ctest label (wired into the asan-fault /
// asan-chaos presets next to their own labels).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "channel_test_util.hpp"
#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"
#include "rdmach/channel.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace {

using rdmach::testutil::FaultPlan;
using rdmach::testutil::Traffic;

constexpr sim::Tick kDeadline = sim::usec(5'000'000);  // 5 virtual seconds

ib::FabricConfig rails(int num_hcas, int ports_per_hca) {
  ib::FabricConfig f;
  f.num_hcas = num_hcas;
  f.ports_per_hca = ports_per_hca;
  return f;
}

struct RunResult {
  std::vector<std::byte> received;
  bool send_done = false;
  bool recv_done = false;
  bool send_error = false;
  bool recv_error = false;
  rdmach::ChannelError::Kind send_kind = rdmach::ChannelError::kDead;
  rdmach::ChannelError::Kind recv_kind = rdmach::ChannelError::kDead;
  sim::Tick finished = 0;  // virtual time when both ranks were done
  std::uint64_t recoveries = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rail_failovers = 0;
  std::vector<rdmach::ChannelStats::RailStats> rails;  // both ranks, summed
};

/// Streams `traffic` rank0 -> rank1 on a `fcfg` fabric, then a one-byte
/// token back (same deadline-bounded shape as the chaos harness), and sums
/// both ranks' rail statistics.
RunResult run_stream(const ib::FabricConfig& fcfg, const Traffic& traffic,
                     FaultPlan* plan, rdmach::ChannelConfig cfg,
                     int recovery_max_attempts = 8) {
  RunResult rr;
  sim::Simulator sim;
  ib::Fabric fabric{sim, fcfg};
  if (plan != nullptr) fabric.attach_faults(&plan->schedule);
  pmi::Job job{fabric, 2};
  cfg.design = rdmach::Design::kAdaptive;
  cfg.recovery_max_attempts = recovery_max_attempts;
  std::unique_ptr<rdmach::Channel> ch[2];
  rr.received.resize(traffic.total());
  int done_ranks = 0;

  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    ch[ctx.rank] = rdmach::Channel::create(ctx, cfg);
    rdmach::Channel& c = *ch[ctx.rank];
    co_await c.init();
    rdmach::Connection& conn = c.connection(1 - ctx.rank);
    if (ctx.rank == 0) {
      try {
        std::size_t off = 0;
        for (const std::size_t sz : traffic.sizes) {
          co_await rdmach::testutil::send_all(c, conn,
                                              traffic.bytes.data() + off, sz);
          off += sz;
        }
        std::byte token{};
        co_await rdmach::testutil::recv_all(c, conn, &token, 1);
        rr.send_done = true;
        if (++done_ranks == 2) rr.finished = ctx.sim().now();
        co_await c.finalize();
      } catch (const rdmach::ChannelError& e) {
        rr.send_error = true;
        rr.send_kind = e.kind();
      }
    } else {
      try {
        co_await rdmach::testutil::recv_all(c, conn, rr.received.data(),
                                            rr.received.size());
        const std::byte token{0x1};
        co_await rdmach::testutil::send_all(c, conn, &token, 1);
        rr.recv_done = true;
        if (++done_ranks == 2) rr.finished = ctx.sim().now();
        co_await c.finalize();
      } catch (const rdmach::ChannelError& e) {
        rr.recv_error = true;
        rr.recv_kind = e.kind();
      }
    }
  });
  sim.run_until(kDeadline);
  for (int r = 0; r < 2; ++r) {
    if (ch[r] == nullptr) continue;
    const rdmach::ChannelStats t = ch[r]->stats();
    rr.recoveries += t.recoveries;
    rr.retransmits += t.retransmits;
    rr.rail_failovers += t.rail_failovers;
    if (t.rails.size() > rr.rails.size()) rr.rails.resize(t.rails.size());
    for (std::size_t i = 0; i < t.rails.size(); ++i) {
      rr.rails[i].bytes += t.rails[i].bytes;
      rr.rails[i].stripes += t.rails[i].stripes;
      rr.rails[i].failovers += t.rails[i].failovers;
    }
  }
  return rr;
}

// ---------------------------------------------------------------------------
// Aggregate scaling: two equal rails vs one at the rendezvous plateau.
// ---------------------------------------------------------------------------

TEST(MultiRail, TwoEqualRailsScaleBandwidthAtLeast1_7x) {
  const mpi::RuntimeConfig cfg =
      benchutil::design_config(rdmach::Design::kAdaptive);
  for (const std::size_t msg : {1u << 20, 4u << 20}) {
    const double one =
        benchutil::mpi_bandwidth_mbps(cfg, msg, 32u << 20, 16, rails(1, 1));
    const double two =
        benchutil::mpi_bandwidth_mbps(cfg, msg, 32u << 20, 16, rails(2, 1));
    EXPECT_GE(two, 1.7 * one) << "msg=" << msg << " one-rail=" << one
                              << " two-rail=" << two;
  }
}

TEST(MultiRail, RailTrafficIsStripedAcrossBothRails) {
  Traffic t = Traffic::make(/*seed=*/7, /*messages=*/6, /*min_len=*/1u << 20,
                            /*max_len=*/2u << 20);
  const RunResult rr = run_stream(rails(1, 2), t, nullptr, {});
  ASSERT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  ASSERT_EQ(rr.rails.size(), 2u);
  // Equal rails, weighted policy: both carry real traffic, roughly evenly.
  EXPECT_GT(rr.rails[0].bytes, 0u);
  EXPECT_GT(rr.rails[1].bytes, 0u);
  EXPECT_GT(rr.rails[0].stripes, 0u);
  EXPECT_GT(rr.rails[1].stripes, 0u);
  const double hi = static_cast<double>(
      std::max(rr.rails[0].bytes, rr.rails[1].bytes));
  const double lo = static_cast<double>(
      std::min(rr.rails[0].bytes, rr.rails[1].bytes));
  EXPECT_LT(hi, 2.0 * lo) << "stripe badly skewed on equal rails";
  EXPECT_EQ(rr.rail_failovers, 0u);
}

// ---------------------------------------------------------------------------
// Failure domains.
// ---------------------------------------------------------------------------

TEST(MultiRail, RailDeathMidRendezvousFailsOverAndMatchesOracle) {
  Traffic t = Traffic::make(/*seed=*/11, /*messages=*/8,
                            /*min_len=*/512u << 10, /*max_len=*/2u << 20);
  // The receiver (rank 1) initiates the chunk reads; kill its rail 1 at
  // the 3rd WQE that rail carries -- mid-stripe of an early rendezvous.
  FaultPlan plan;
  plan.rail_down(/*rank=*/1, /*rail=*/1, /*from=*/2);
  const RunResult rr = run_stream(rails(2, 1), t, &plan, {});
  ASSERT_TRUE(rr.send_done) << "sender did not finish";
  ASSERT_TRUE(rr.recv_done) << "receiver did not finish";
  EXPECT_FALSE(rr.send_error);
  EXPECT_FALSE(rr.recv_error);
  // Byte-for-byte against the oracle stream (the ShmChannel contract).
  ASSERT_EQ(rr.received.size(), t.bytes.size());
  EXPECT_TRUE(std::memcmp(rr.received.data(), t.bytes.data(),
                          t.bytes.size()) == 0);
  // Counters pinned: exactly one (connection, rail) failover -- rank 1's
  // connection abandoning its rail 1 -- and a bounded, non-zero number of
  // chunk retransmits through the journal/replay machinery.
  EXPECT_EQ(rr.rail_failovers, 1u);
  EXPECT_GE(rr.recoveries, 1u);
  EXPECT_GE(rr.retransmits, 1u);
  EXPECT_LE(rr.retransmits, 16u);
  // Surviving rail 0 carried the bulk of the stream.
  ASSERT_EQ(rr.rails.size(), 2u);
  EXPECT_GT(rr.rails[0].bytes, rr.rails[1].bytes);
  EXPECT_EQ(rr.rails[1].failovers, 1u);

  // Determinism: the same schedule reproduces the same counters exactly.
  FaultPlan plan2;
  plan2.rail_down(1, 1, 2);
  const RunResult rr2 = run_stream(rails(2, 1), t, &plan2, {});
  EXPECT_EQ(rr2.retransmits, rr.retransmits);
  EXPECT_EQ(rr2.recoveries, rr.recoveries);
  EXPECT_EQ(rr2.rail_failovers, rr.rail_failovers);
}

TEST(MultiRail, SenderRailDeathFailsOverWriteAndRingTraffic) {
  // Mid-band messages take the RDMA-write rendezvous; small ones the ring.
  // Killing the *sender's* rail 0 (which carries the ring AND is a stripe
  // target) must fail everything over to rail 1.
  Traffic t = Traffic::make(/*seed=*/23, /*messages=*/12,
                            /*min_len=*/16u << 10, /*max_len=*/128u << 10);
  FaultPlan plan;
  plan.rail_down(/*rank=*/0, /*rail=*/0, /*from=*/6);
  const RunResult rr = run_stream(rails(2, 1), t, &plan, {});
  ASSERT_TRUE(rr.send_done);
  ASSERT_TRUE(rr.recv_done);
  EXPECT_FALSE(rr.send_error);
  EXPECT_FALSE(rr.recv_error);
  ASSERT_EQ(rr.received.size(), t.bytes.size());
  EXPECT_TRUE(std::memcmp(rr.received.data(), t.bytes.data(),
                          t.bytes.size()) == 0);
  EXPECT_GE(rr.rail_failovers, 1u);
  EXPECT_GE(rr.recoveries, 1u);
}

TEST(MultiRail, AllRailsDeadRaisesChannelErrorDead) {
  Traffic t = Traffic::make(/*seed=*/31, /*messages=*/4,
                            /*min_len=*/256u << 10, /*max_len=*/1u << 20);
  // Kill the *receiver's* rails: the chunk reads are receiver-initiated,
  // so its rails are the data plane (the sender's rails only carry ring
  // control; killing those alone is survivable, as the failover tests
  // show).
  FaultPlan plan;
  plan.rail_down(/*rank=*/1, /*rail=*/0, /*from=*/4);
  plan.rail_down(/*rank=*/1, /*rail=*/1, /*from=*/0);
  const RunResult rr =
      run_stream(rails(2, 1), t, &plan, {}, /*recovery_max_attempts=*/3);
  // With every rail dead nothing can be delivered; the retry budget must
  // surface a kDead ChannelError rather than hang past the deadline.
  EXPECT_TRUE(rr.send_error || rr.recv_error);
  if (rr.send_error) {
    EXPECT_EQ(rr.send_kind, rdmach::ChannelError::kDead);
  }
  if (rr.recv_error) {
    EXPECT_EQ(rr.recv_kind, rdmach::ChannelError::kDead);
  }
  EXPECT_FALSE(rr.recv_done);
}

// ---------------------------------------------------------------------------
// Stripe policy: learned weights vs naive round-robin on asymmetric rails.
// ---------------------------------------------------------------------------

TEST(MultiRail, WeightedSplitBeatsNaiveRoundRobinOnAsymmetricRails) {
  // One fast rail at the calibrated 870 MB/s, one at a third of it.  The
  // naive strict rotation gates every other chunk on the slow rail; the
  // weighted policy converges to a goodput-proportional split.
  ib::FabricConfig fcfg = rails(1, 2);
  fcfg.rail_link_mbps = {870.0, 290.0};
  Traffic t = Traffic::make(/*seed=*/43, /*messages=*/16,
                            /*min_len=*/1u << 20, /*max_len=*/1u << 20);

  rdmach::ChannelConfig weighted;
  weighted.rail_policy = rdmach::RailPolicy::kWeighted;
  const RunResult w = run_stream(fcfg, t, nullptr, weighted);
  ASSERT_TRUE(w.send_done);
  ASSERT_TRUE(w.recv_done);

  rdmach::ChannelConfig naive;
  naive.rail_policy = rdmach::RailPolicy::kRoundRobin;
  const RunResult n = run_stream(fcfg, t, nullptr, naive);
  ASSERT_TRUE(n.send_done);
  ASSERT_TRUE(n.recv_done);

  // Same oracle stream either way...
  EXPECT_TRUE(std::memcmp(w.received.data(), t.bytes.data(),
                          t.bytes.size()) == 0);
  EXPECT_TRUE(std::memcmp(n.received.data(), t.bytes.data(),
                          t.bytes.size()) == 0);
  // ...but the weighted split finishes measurably sooner (>= 15% here;
  // the gap widens with rail asymmetry).
  ASSERT_GT(w.finished, 0);
  ASSERT_GT(n.finished, 0);
  EXPECT_LT(static_cast<double>(w.finished) * 1.15,
            static_cast<double>(n.finished))
      << "weighted=" << w.finished << " naive=" << n.finished;
  // And the split converged: the fast rail carried clearly more bytes,
  // while naive rotation forced a near-even chunk count.
  ASSERT_EQ(w.rails.size(), 2u);
  EXPECT_GT(static_cast<double>(w.rails[0].bytes),
            1.5 * static_cast<double>(w.rails[1].bytes));
}

}  // namespace
