// Tests for the RDMA-accelerated collectives: correctness against the
// point-to-point implementations, slot-reuse safety under back-to-back
// operations, fallback paths, and the latency advantage itself.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ib/fabric.hpp"
#include "mpi/rdma_coll.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"

namespace mpi {
namespace {

struct CollRig {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  pmi::Job job;

  explicit CollRig(int n) : job(fabric, n) {}

  void run(const std::function<sim::Task<void>(Communicator&, RdmaColl&,
                                               pmi::Context&)>& body) {
    job.launch([body](pmi::Context& ctx) -> sim::Task<void> {
      Runtime rt(ctx, {});
      co_await rt.init();
      auto coll = co_await RdmaColl::create(rt.world(), 4096);
      co_await body(rt.world(), *coll, ctx);
      co_await rt.finalize();
    });
    sim.run();
  }
};

TEST(RdmaColl, BarrierSynchronizesAndIsReusable) {
  CollRig rig(8);
  rig.run([](Communicator& world, RdmaColl& coll,
             pmi::Context& ctx) -> sim::Task<void> {
    // Stagger arrival; after the barrier everyone must be past the
    // latest arrival time.
    co_await ctx.sim().delay(sim::usec(10.0 * world.rank()));
    const double before = world.wtime();
    co_await coll.barrier();
    EXPECT_GE(world.wtime() * 1e6, 70.0);  // slowest rank arrived at 70us
    (void)before;
    // Back-to-back reuse (exceeds the slot depth).
    for (int i = 0; i < 20; ++i) co_await coll.barrier();
    co_await world.barrier();
  });
}

TEST(RdmaColl, BcastMatchesPt2ptBcast) {
  for (int p : {4, 7}) {  // binomial tree on non-power-of-two too
    CollRig rig(p);
    rig.run([](Communicator& world, RdmaColl& coll,
               pmi::Context&) -> sim::Task<void> {
      for (int root = 0; root < world.size(); ++root) {
        std::vector<double> a(100), b(100);
        if (world.rank() == root) {
          for (int i = 0; i < 100; ++i) {
            a[static_cast<std::size_t>(i)] = root * 1000.0 + i;
            b[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)];
          }
        }
        co_await coll.bcast(a.data(), 100, Datatype::kDouble, root);
        co_await world.bcast(b.data(), 100, Datatype::kDouble, root);
        EXPECT_EQ(a, b);
      }
      co_await world.barrier();
    });
  }
}

TEST(RdmaColl, BcastSurvivesDeepBackToBackStreams) {
  // More consecutive bcasts than the slot depth: exercises the periodic
  // resynchronization that bounds receiver lag.
  CollRig rig(4);
  rig.run([](Communicator& world, RdmaColl& coll,
             pmi::Context&) -> sim::Task<void> {
    for (int i = 0; i < 50; ++i) {
      int v = world.rank() == 1 ? i * 7 : -1;
      co_await coll.bcast(&v, 1, Datatype::kInt, 1);
      EXPECT_EQ(v, i * 7);
    }
    co_await world.barrier();
  });
}

TEST(RdmaColl, AllreduceMatchesPt2pt) {
  CollRig rig(8);
  rig.run([](Communicator& world, RdmaColl& coll,
             pmi::Context&) -> sim::Task<void> {
    for (int round = 0; round < 10; ++round) {
      std::vector<double> in(33);
      for (int i = 0; i < 33; ++i) {
        in[static_cast<std::size_t>(i)] =
            std::cos(world.rank() * 3.0 + i + round);
      }
      std::vector<double> a(33), b(33);
      co_await coll.allreduce(in.data(), a.data(), 33, Datatype::kDouble,
                              Op::kSum);
      co_await world.allreduce(in.data(), b.data(), 33, Datatype::kDouble,
                               Op::kSum);
      for (int i = 0; i < 33; ++i) {
        EXPECT_NEAR(a[static_cast<std::size_t>(i)],
                    b[static_cast<std::size_t>(i)], 1e-12);
      }
    }
    co_await world.barrier();
  });
}

TEST(RdmaColl, NonPowerOfTwoAllreduceFallsBack) {
  CollRig rig(6);
  rig.run([](Communicator& world, RdmaColl& coll,
             pmi::Context&) -> sim::Task<void> {
    double v = world.rank() + 1.0, sum = 0;
    co_await coll.allreduce(&v, &sum, 1, Datatype::kDouble, Op::kSum);
    EXPECT_DOUBLE_EQ(sum, 21.0);
    co_await world.barrier();
  });
}

TEST(RdmaColl, OversizedPayloadFallsBack) {
  CollRig rig(4);
  rig.run([](Communicator& world, RdmaColl& coll,
             pmi::Context&) -> sim::Task<void> {
    std::vector<double> big(4096, world.rank() == 0 ? 3.5 : 0.0);  // 32 KB
    co_await coll.bcast(big.data(), 4096, Datatype::kDouble, 0);
    EXPECT_DOUBLE_EQ(big[4095], 3.5);
    co_await world.barrier();
  });
}

TEST(RdmaColl, BarrierIsFasterThanPt2ptBarrier) {
  // The whole point of the extension: direct flag writes beat the full
  // MPI send/recv path.
  CollRig rig(8);
  double rdma_us = 0, pt2pt_us = 0;
  rig.run([&](Communicator& world, RdmaColl& coll,
              pmi::Context& ctx) -> sim::Task<void> {
    constexpr int kIters = 20;
    co_await world.barrier();
    sim::Tick t0 = ctx.sim().now();
    for (int i = 0; i < kIters; ++i) co_await coll.barrier();
    if (world.rank() == 0) {
      rdma_us = sim::to_usec(ctx.sim().now() - t0) / kIters;
    }
    co_await world.barrier();
    t0 = ctx.sim().now();
    for (int i = 0; i < kIters; ++i) co_await world.barrier();
    if (world.rank() == 0) {
      pt2pt_us = sim::to_usec(ctx.sim().now() - t0) / kIters;
    }
  });
  EXPECT_LT(rdma_us, 0.8 * pt2pt_us);
}

}  // namespace
}  // namespace mpi
