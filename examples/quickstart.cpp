// Quickstart: the smallest complete program against the public API.
//
// Builds a 4-node simulated InfiniBand cluster, brings up the MPI runtime
// on the zero-copy RDMA channel, and runs hello-world + ping-pong +
// allreduce.  Everything below main() is ordinary MPI-style code; the
// co_await keywords are the only trace of the simulated environment.
#include <cstdio>

#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"

namespace {

sim::Task<void> rank_main(pmi::Context& ctx) {
  mpi::RuntimeConfig cfg;  // defaults: RDMA channel, zero-copy design
  mpi::Runtime rt(ctx, cfg);
  co_await rt.init();
  mpi::Communicator& world = rt.world();

  std::printf("[t=%8.2f us] hello from rank %d of %d on %s\n",
              world.wtime() * 1e6, world.rank(), world.size(),
              ctx.node->name().c_str());

  // Ping-pong between ranks 0 and 1.
  if (world.rank() == 0) {
    int payload = 42;
    co_await world.send(&payload, 1, mpi::Datatype::kInt, 1, /*tag=*/7);
    co_await world.recv(&payload, 1, mpi::Datatype::kInt, 1, 7);
    std::printf("[t=%8.2f us] rank 0 got the echo: %d\n",
                world.wtime() * 1e6, payload);
  } else if (world.rank() == 1) {
    int payload = 0;
    co_await world.recv(&payload, 1, mpi::Datatype::kInt, 0, 7);
    ++payload;
    co_await world.send(&payload, 1, mpi::Datatype::kInt, 0, 7);
  }

  // A collective: everyone contributes rank+1; the sum is n(n+1)/2.
  double mine = world.rank() + 1.0;
  double sum = 0.0;
  co_await world.allreduce(&mine, &sum, 1, mpi::Datatype::kDouble,
                           mpi::Op::kSum);
  if (world.rank() == 0) {
    std::printf("[t=%8.2f us] allreduce sum = %.0f (expected %d)\n",
                world.wtime() * 1e6, sum,
                world.size() * (world.size() + 1) / 2);
  }

  co_await rt.finalize();
}

}  // namespace

int main() {
  sim::Simulator sim;
  ib::Fabric fabric(sim);     // the simulated switched fabric
  pmi::Job job(fabric, 4);    // 4 processing nodes, one rank each
  job.launch(rank_main);
  sim.run();                  // deterministic: same output every run
  return 0;
}
