// onesided_counter: dynamic load balancing with MPI-2 one-sided RMA and
// InfiniBand atomics (the paper's future-work direction, implemented in
// mpi::Window).
//
// Rank 0 hosts a window with a work counter and a results array.  Every
// rank (rank 0 included) grabs work items with an atomic fetch_add --
// no receiver-side software involved, exactly the RDMA promise -- computes
// on them, and deposits results with one-sided puts.  The fence at the end
// makes everything visible; rank 0 verifies all items were processed
// exactly once.
#include <cstdio>
#include <vector>

#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "mpi/window.hpp"
#include "pmi/pmi.hpp"

namespace {

constexpr int kItems = 200;

sim::Task<void> rank_main(pmi::Context& ctx) {
  mpi::Runtime rt(ctx, {});
  co_await rt.init();
  mpi::Communicator& world = rt.world();

  // Window layout on every rank (only rank 0's is used):
  // [ counter (1 x i64) | results (kItems x i64) ]
  std::vector<std::int64_t> mem(1 + kItems, 0);
  auto win = co_await mpi::Window::create(world, mem.data(), mem.size() * 8);
  co_await win->fence();

  int processed = 0;
  for (;;) {
    // Claim the next work item from rank 0's counter -- atomically.
    const std::int64_t item = co_await win->fetch_add(0, 0, 1);
    if (item >= kItems) break;
    // "Compute": square the item number (plus some modelled CPU time).
    co_await ctx.node->compute(sim::usec(20));
    const std::int64_t result = item * item;
    co_await win->put(&result, 1, mpi::Datatype::kLong, 0,
                      static_cast<std::size_t>(1 + item) * 8);
    ++processed;
  }
  co_await win->fence();

  // Everyone reports; rank 0 verifies the full result table.
  int total = 0;
  co_await world.allreduce(&processed, &total, 1, mpi::Datatype::kInt,
                           mpi::Op::kSum);
  if (world.rank() == 0) {
    bool ok = total == kItems;
    for (int i = 0; i < kItems; ++i) {
      ok = ok && mem[static_cast<std::size_t>(1 + i)] ==
                     static_cast<std::int64_t>(i) * i;
    }
    std::printf(
        "onesided_counter: %d items processed by %d ranks in %.2f ms "
        "virtual [%s]\n",
        total, world.size(), world.wtime() * 1e3, ok ? "verified" : "FAILED");
  }
  std::printf("  rank %d claimed %d items\n", world.rank(), processed);
  co_await rt.finalize();
}

}  // namespace

int main() {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 4);
  job.launch(rank_main);
  sim.run();
  return 0;
}
