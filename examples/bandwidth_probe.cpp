// bandwidth_probe: an interactive-style survey tool that prints the full
// latency/bandwidth profile of every channel design side by side -- the
// quickest way to see the paper's entire section 4-5 story in one table.
#include <cstdio>
#include <vector>

#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"

namespace {

struct Probe {
  std::size_t msg;
  double lat_us;
  double bw_mbps;
};

sim::Task<void> probe_rank(pmi::Context& ctx, rdmach::Design design,
                           std::vector<Probe>* out) {
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = design;
  mpi::Runtime rt(ctx, cfg);
  co_await rt.init();
  mpi::Communicator& world = rt.world();

  for (std::size_t msg = 4; msg <= (1u << 20); msg *= 8) {
    std::vector<std::byte> buf(msg);
    const int n = static_cast<int>(msg);
    constexpr int kIters = 12;
    // Latency (ping-pong).
    const double t_lat0 = world.wtime();
    for (int i = 0; i < kIters; ++i) {
      if (world.rank() == 0) {
        co_await world.send(buf.data(), n, mpi::Datatype::kByte, 1, 0);
        co_await world.recv(buf.data(), n, mpi::Datatype::kByte, 1, 0);
      } else {
        co_await world.recv(buf.data(), n, mpi::Datatype::kByte, 0, 0);
        co_await world.send(buf.data(), n, mpi::Datatype::kByte, 0, 0);
      }
    }
    const double lat_us =
        (world.wtime() - t_lat0) * 1e6 / (2 * kIters);

    // Bandwidth (windowed, receiver pre-posts).
    constexpr int kWindow = 12;
    const double t_bw0 = world.wtime();
    std::vector<mpi::Request> reqs;
    if (world.rank() == 0) {
      std::byte ready;
      co_await world.recv(&ready, 1, mpi::Datatype::kByte, 1, 2);
      for (int w = 0; w < kWindow; ++w) {
        reqs.push_back(
            co_await world.isend(buf.data(), n, mpi::Datatype::kByte, 1, 1));
      }
      co_await world.wait_all(reqs);
      co_await world.recv(&ready, 1, mpi::Datatype::kByte, 1, 2);
    } else {
      std::vector<std::vector<std::byte>> bufs(
          kWindow, std::vector<std::byte>(msg));
      for (int w = 0; w < kWindow; ++w) {
        reqs.push_back(co_await world.irecv(
            bufs[static_cast<std::size_t>(w)].data(), n, mpi::Datatype::kByte,
            0, 1));
      }
      std::byte ready{1};
      co_await world.send(&ready, 1, mpi::Datatype::kByte, 0, 2);
      co_await world.wait_all(reqs);
      co_await world.send(&ready, 1, mpi::Datatype::kByte, 0, 2);
    }
    const double bw =
        static_cast<double>(msg) * kWindow / (world.wtime() - t_bw0) / 1e6;
    if (world.rank() == 0 && out != nullptr) {
      out->push_back(Probe{msg, lat_us, bw});
    }
  }
  co_await rt.finalize();
}

}  // namespace

int main() {
  const rdmach::Design designs[] = {
      rdmach::Design::kBasic, rdmach::Design::kPiggyback,
      rdmach::Design::kPipeline, rdmach::Design::kZeroCopy};

  std::vector<std::vector<Probe>> results;
  for (rdmach::Design d : designs) {
    sim::Simulator sim;
    ib::Fabric fabric(sim);
    pmi::Job job(fabric, 2);
    results.emplace_back();
    auto* out = &results.back();
    job.launch([d, out](pmi::Context& ctx) -> sim::Task<void> {
      co_await probe_rank(ctx, d, out);
    });
    sim.run();
  }

  std::printf("MPI point-to-point profile, all channel designs\n\n");
  std::printf("%8s |", "size");
  for (rdmach::Design d : designs) std::printf(" %9.9s lat |", rdmach::to_string(d));
  std::printf("\n");
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    std::printf("%8zu |", results[0][i].msg);
    for (const auto& r : results) std::printf(" %10.2fus |", r[i].lat_us);
    std::printf("\n");
  }
  std::printf("\n%8s |", "size");
  for (rdmach::Design d : designs) std::printf(" %9.9s bw  |", rdmach::to_string(d));
  std::printf("\n");
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    std::printf("%8zu |", results[0][i].msg);
    for (const auto& r : results) std::printf(" %8.1fMB/s |", r[i].bw_mbps);
    std::printf("\n");
  }
  return 0;
}
