// heat2d: a classic halo-exchange stencil application.
//
// Jacobi iteration for the 2-D heat equation on an n x n grid with a hot
// left wall, row-block partitioned.  Each step exchanges one boundary row
// with each z-neighbour (sendrecv), then computes; every 100 steps an
// allreduce checks convergence.  Run it to see how the channel design
// changes a real application's step time: the halo rows are small, so the
// piggyback/pipeline/zero-copy stacks all behave alike, while the basic
// design's triple-RDMA-write latency shows up directly.
#include <cmath>
#include <cstdio>
#include <vector>

#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"

namespace {

constexpr int kN = 192;       // global grid edge
constexpr int kMaxSteps = 600;
constexpr double kTol = 1e-4;

sim::Task<void> solve(pmi::Context& ctx, rdmach::Design design,
                      double* out_us_per_step) {
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = design;
  mpi::Runtime rt(ctx, cfg);
  co_await rt.init();
  mpi::Communicator& world = rt.world();
  const int p = world.size();
  const int rank = world.rank();
  const int rows = kN / p;
  const int up = rank > 0 ? rank - 1 : mpi::kProcNull;
  const int down = rank + 1 < p ? rank + 1 : mpi::kProcNull;

  auto idx = [](int i, int j) {
    return static_cast<std::size_t>(i + 1) * kN + j;  // ghost rows at +-1
  };
  std::vector<double> u(static_cast<std::size_t>(rows + 2) * kN, 0.0);
  std::vector<double> next = u;
  for (int i = -1; i <= rows; ++i) u[idx(i, 0)] = 100.0;  // hot left wall

  int steps = 0;
  double diff = 1.0;
  const double t0 = world.wtime();
  while (steps < kMaxSteps && diff > kTol) {
    // Halo exchange with both neighbours.
    co_await world.sendrecv(&u[idx(rows - 1, 0)], kN, mpi::Datatype::kDouble,
                            down, 0, &u[idx(-1, 0)], kN,
                            mpi::Datatype::kDouble, up, 0);
    co_await world.sendrecv(&u[idx(0, 0)], kN, mpi::Datatype::kDouble, up, 1,
                            &u[idx(rows, 0)], kN, mpi::Datatype::kDouble,
                            down, 1);
    double local_diff = 0.0;
    for (int i = 0; i < rows; ++i) {
      const int gi = rank * rows + i;
      for (int j = 0; j < kN; ++j) {
        if (j == 0 || j == kN - 1 || gi == 0 || gi == kN - 1) {
          next[idx(i, j)] = u[idx(i, j)];  // fixed boundary
          continue;
        }
        next[idx(i, j)] = 0.25 * (u[idx(i - 1, j)] + u[idx(i + 1, j)] +
                                  u[idx(i, j - 1)] + u[idx(i, j + 1)]);
        local_diff = std::max(local_diff,
                              std::fabs(next[idx(i, j)] - u[idx(i, j)]));
      }
    }
    co_await ctx.node->compute(sim::nsec(6.0 * rows * kN));
    std::swap(u, next);
    ++steps;
    if (steps % 100 == 0) {
      co_await world.allreduce(&local_diff, &diff, 1, mpi::Datatype::kDouble,
                               mpi::Op::kMax);
    }
  }
  const double elapsed = world.wtime() - t0;
  if (rank == 0) {
    std::printf("  %-10s %5d steps, %8.2f ms virtual, %7.2f us/step\n",
                rdmach::to_string(design), steps, elapsed * 1e3,
                elapsed * 1e6 / steps);
    if (out_us_per_step != nullptr) *out_us_per_step = elapsed * 1e6 / steps;
  }
  co_await rt.finalize();
}

}  // namespace

int main() {
  std::printf("heat2d: %dx%d Jacobi on 4 simulated nodes\n", kN, kN);
  for (rdmach::Design d :
       {rdmach::Design::kBasic, rdmach::Design::kPiggyback,
        rdmach::Design::kZeroCopy}) {
    sim::Simulator sim;
    ib::Fabric fabric(sim);
    pmi::Job job(fabric, 4);
    job.launch([d](pmi::Context& ctx) -> sim::Task<void> {
      co_await solve(ctx, d, nullptr);
    });
    sim.run();
  }
  return 0;
}
