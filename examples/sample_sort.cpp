// sample_sort: a distributed sort with large alltoallv exchanges -- the
// workload class where the zero-copy rendezvous path earns its keep.
//
// Classic parallel sample sort: each rank sorts its local slice, all ranks
// agree on p-1 splitters (via a gathered sample), and one big alltoallv
// scatters every key to its destination bucket.  The bucket exchanges are
// hundreds of kilobytes, so switching the channel design between pipeline
// (copy through the ring) and zero-copy (RDMA read of the user buffer)
// changes the end-to-end sort time measurably.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"
#include "sim/rng.hpp"

namespace {

constexpr int kKeysPerRank = 1 << 17;  // 128K 64-bit keys per rank

sim::Task<void> sort_main(pmi::Context& ctx, rdmach::Design design) {
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = design;
  mpi::Runtime rt(ctx, cfg);
  co_await rt.init();
  mpi::Communicator& world = rt.world();
  const int p = world.size();
  const int rank = world.rank();

  // Deterministic local keys.
  sim::Rng rng(1000 + static_cast<std::uint64_t>(rank));
  std::vector<std::int64_t> keys(kKeysPerRank);
  for (auto& k : keys) k = static_cast<std::int64_t>(rng.next() >> 1);
  std::sort(keys.begin(), keys.end());
  co_await ctx.node->compute(sim::nsec(40.0 * kKeysPerRank));

  const double t0 = world.wtime();

  // 1. Sample s keys per rank, gather at root, pick splitters, broadcast.
  constexpr int kSample = 32;
  std::vector<std::int64_t> sample(kSample);
  for (int i = 0; i < kSample; ++i) {
    sample[static_cast<std::size_t>(i)] =
        keys[static_cast<std::size_t>(i) * keys.size() / kSample];
  }
  std::vector<std::int64_t> all_samples(static_cast<std::size_t>(kSample) * p);
  co_await world.gather(sample.data(), kSample * 8, all_samples.data(),
                        mpi::Datatype::kByte, 0);
  std::vector<std::int64_t> splitters(static_cast<std::size_t>(p - 1));
  if (rank == 0) {
    std::sort(all_samples.begin(), all_samples.end());
    for (int i = 1; i < p; ++i) {
      splitters[static_cast<std::size_t>(i - 1)] =
          all_samples[static_cast<std::size_t>(i) * all_samples.size() / p];
    }
  }
  co_await world.bcast(splitters.data(), (p - 1) * 8, mpi::Datatype::kByte, 0);

  // 2. Partition local keys by splitter and exchange counts.
  std::vector<int> scounts(static_cast<std::size_t>(p), 0);
  {
    std::size_t i = 0;
    for (int b = 0; b < p; ++b) {
      const std::size_t start = i;
      while (i < keys.size() &&
             (b == p - 1 ||
              keys[i] < splitters[static_cast<std::size_t>(b)])) {
        ++i;
      }
      scounts[static_cast<std::size_t>(b)] = static_cast<int>(i - start);
    }
  }
  std::vector<int> rcounts(static_cast<std::size_t>(p));
  co_await world.alltoall(scounts.data(), 1, rcounts.data(),
                          mpi::Datatype::kInt);

  // 3. The big alltoallv of keys themselves.
  std::vector<int> sdispls(static_cast<std::size_t>(p), 0),
      rdispls(static_cast<std::size_t>(p), 0);
  for (int i = 1; i < p; ++i) {
    sdispls[static_cast<std::size_t>(i)] =
        sdispls[static_cast<std::size_t>(i - 1)] +
        scounts[static_cast<std::size_t>(i - 1)];
    rdispls[static_cast<std::size_t>(i)] =
        rdispls[static_cast<std::size_t>(i - 1)] +
        rcounts[static_cast<std::size_t>(i - 1)];
  }
  const int total = rdispls[static_cast<std::size_t>(p - 1)] +
                    rcounts[static_cast<std::size_t>(p - 1)];
  std::vector<std::int64_t> mine(static_cast<std::size_t>(total));
  // Counts are in 8-byte elements.
  co_await world.alltoallv(keys.data(), scounts, sdispls, mine.data(),
                           rcounts, rdispls, mpi::Datatype::kLong);

  // 4. Local merge (buckets arrive sorted per source).
  std::sort(mine.begin(), mine.end());
  co_await ctx.node->compute(sim::nsec(25.0 * total));
  const double elapsed = world.wtime() - t0;

  // Verify global order across rank boundaries.
  std::int64_t my_last = mine.empty() ? INT64_MIN : mine.back();
  std::int64_t prev_last = INT64_MIN;
  co_await world.sendrecv(&my_last, 1, mpi::Datatype::kLong,
                          rank + 1 < p ? rank + 1 : mpi::kProcNull, 9,
                          &prev_last, 1, mpi::Datatype::kLong,
                          rank > 0 ? rank - 1 : mpi::kProcNull, 9);
  const bool ordered =
      std::is_sorted(mine.begin(), mine.end()) &&
      (rank == 0 || mine.empty() || prev_last <= mine.front());
  long n_local = total, n_total = 0;
  co_await world.allreduce(&n_local, &n_total, 1, mpi::Datatype::kLong,
                           mpi::Op::kSum);

  if (rank == 0) {
    std::printf("  %-10s sorted %ld keys in %8.2f ms virtual  [%s]\n",
                rdmach::to_string(design), n_total, elapsed * 1e3,
                ordered && n_total == static_cast<long>(kKeysPerRank) * p
                    ? "verified"
                    : "FAILED");
  }
  co_await rt.finalize();
}

}  // namespace

int main() {
  std::printf("sample_sort: %d keys across 8 simulated nodes\n",
              kKeysPerRank * 8);
  for (rdmach::Design d :
       {rdmach::Design::kPipeline, rdmach::Design::kZeroCopy}) {
    sim::Simulator sim;
    ib::Fabric fabric(sim);
    pmi::Job job(fabric, 8);
    job.launch([d](pmi::Context& ctx) -> sim::Task<void> {
      co_await sort_main(ctx, d);
    });
    sim.run();
  }
  return 0;
}
