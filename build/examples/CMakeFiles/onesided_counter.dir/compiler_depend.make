# Empty compiler generated dependencies file for onesided_counter.
# This may be replaced when dependencies are built.
