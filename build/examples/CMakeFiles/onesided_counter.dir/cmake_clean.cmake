file(REMOVE_RECURSE
  "CMakeFiles/onesided_counter.dir/onesided_counter.cpp.o"
  "CMakeFiles/onesided_counter.dir/onesided_counter.cpp.o.d"
  "onesided_counter"
  "onesided_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onesided_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
