file(REMOVE_RECURSE
  "CMakeFiles/heat2d.dir/heat2d.cpp.o"
  "CMakeFiles/heat2d.dir/heat2d.cpp.o.d"
  "heat2d"
  "heat2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
