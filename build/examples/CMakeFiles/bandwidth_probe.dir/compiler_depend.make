# Empty compiler generated dependencies file for bandwidth_probe.
# This may be replaced when dependencies are built.
