file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_probe.dir/bandwidth_probe.cpp.o"
  "CMakeFiles/bandwidth_probe.dir/bandwidth_probe.cpp.o.d"
  "bandwidth_probe"
  "bandwidth_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
