
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault_test.cpp" "tests/CMakeFiles/fault_test.dir/fault_test.cpp.o" "gcc" "tests/CMakeFiles/fault_test.dir/fault_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/mpib_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/ch3/CMakeFiles/mpib_ch3.dir/DependInfo.cmake"
  "/root/repo/build/src/rdmach/CMakeFiles/mpib_rdmach.dir/DependInfo.cmake"
  "/root/repo/build/src/pmi/CMakeFiles/mpib_pmi.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/mpib_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpib_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
