file(REMOVE_RECURSE
  "CMakeFiles/onesided_test.dir/onesided_test.cpp.o"
  "CMakeFiles/onesided_test.dir/onesided_test.cpp.o.d"
  "onesided_test"
  "onesided_test.pdb"
  "onesided_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onesided_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
