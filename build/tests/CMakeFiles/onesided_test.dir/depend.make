# Empty dependencies file for onesided_test.
# This may be replaced when dependencies are built.
