# Empty dependencies file for rdma_coll_test.
# This may be replaced when dependencies are built.
