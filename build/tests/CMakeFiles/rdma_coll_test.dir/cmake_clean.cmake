file(REMOVE_RECURSE
  "CMakeFiles/rdma_coll_test.dir/rdma_coll_test.cpp.o"
  "CMakeFiles/rdma_coll_test.dir/rdma_coll_test.cpp.o.d"
  "rdma_coll_test"
  "rdma_coll_test.pdb"
  "rdma_coll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_coll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
