# Empty compiler generated dependencies file for mpi_random_test.
# This may be replaced when dependencies are built.
