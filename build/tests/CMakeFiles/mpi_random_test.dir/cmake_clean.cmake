file(REMOVE_RECURSE
  "CMakeFiles/mpi_random_test.dir/mpi_random_test.cpp.o"
  "CMakeFiles/mpi_random_test.dir/mpi_random_test.cpp.o.d"
  "mpi_random_test"
  "mpi_random_test.pdb"
  "mpi_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
