# Empty dependencies file for multimethod_test.
# This may be replaced when dependencies are built.
