file(REMOVE_RECURSE
  "CMakeFiles/multimethod_test.dir/multimethod_test.cpp.o"
  "CMakeFiles/multimethod_test.dir/multimethod_test.cpp.o.d"
  "multimethod_test"
  "multimethod_test.pdb"
  "multimethod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimethod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
