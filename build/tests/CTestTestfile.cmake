# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/ib_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/nas_test[1]_include.cmake")
include("/root/repo/build/tests/onesided_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_random_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_coll_test[1]_include.cmake")
include("/root/repo/build/tests/multimethod_test[1]_include.cmake")
include("/root/repo/build/tests/datatype_test[1]_include.cmake")
include("/root/repo/build/tests/sdp_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
