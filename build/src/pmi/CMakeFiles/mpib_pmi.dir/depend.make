# Empty dependencies file for mpib_pmi.
# This may be replaced when dependencies are built.
