file(REMOVE_RECURSE
  "CMakeFiles/mpib_pmi.dir/pmi.cpp.o"
  "CMakeFiles/mpib_pmi.dir/pmi.cpp.o.d"
  "libmpib_pmi.a"
  "libmpib_pmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpib_pmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
