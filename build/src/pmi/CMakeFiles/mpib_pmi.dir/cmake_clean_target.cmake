file(REMOVE_RECURSE
  "libmpib_pmi.a"
)
