file(REMOVE_RECURSE
  "libmpib_sdp.a"
)
