file(REMOVE_RECURSE
  "CMakeFiles/mpib_sdp.dir/sdp.cpp.o"
  "CMakeFiles/mpib_sdp.dir/sdp.cpp.o.d"
  "libmpib_sdp.a"
  "libmpib_sdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpib_sdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
