# Empty dependencies file for mpib_sdp.
# This may be replaced when dependencies are built.
