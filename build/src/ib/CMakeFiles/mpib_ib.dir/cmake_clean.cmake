file(REMOVE_RECURSE
  "CMakeFiles/mpib_ib.dir/fabric.cpp.o"
  "CMakeFiles/mpib_ib.dir/fabric.cpp.o.d"
  "CMakeFiles/mpib_ib.dir/hca.cpp.o"
  "CMakeFiles/mpib_ib.dir/hca.cpp.o.d"
  "CMakeFiles/mpib_ib.dir/mr.cpp.o"
  "CMakeFiles/mpib_ib.dir/mr.cpp.o.d"
  "CMakeFiles/mpib_ib.dir/node.cpp.o"
  "CMakeFiles/mpib_ib.dir/node.cpp.o.d"
  "CMakeFiles/mpib_ib.dir/qp.cpp.o"
  "CMakeFiles/mpib_ib.dir/qp.cpp.o.d"
  "CMakeFiles/mpib_ib.dir/types.cpp.o"
  "CMakeFiles/mpib_ib.dir/types.cpp.o.d"
  "libmpib_ib.a"
  "libmpib_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpib_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
