file(REMOVE_RECURSE
  "libmpib_ib.a"
)
