# Empty dependencies file for mpib_ib.
# This may be replaced when dependencies are built.
