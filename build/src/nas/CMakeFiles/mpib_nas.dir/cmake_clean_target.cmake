file(REMOVE_RECURSE
  "libmpib_nas.a"
)
