file(REMOVE_RECURSE
  "CMakeFiles/mpib_nas.dir/bt.cpp.o"
  "CMakeFiles/mpib_nas.dir/bt.cpp.o.d"
  "CMakeFiles/mpib_nas.dir/cg.cpp.o"
  "CMakeFiles/mpib_nas.dir/cg.cpp.o.d"
  "CMakeFiles/mpib_nas.dir/ep.cpp.o"
  "CMakeFiles/mpib_nas.dir/ep.cpp.o.d"
  "CMakeFiles/mpib_nas.dir/ft.cpp.o"
  "CMakeFiles/mpib_nas.dir/ft.cpp.o.d"
  "CMakeFiles/mpib_nas.dir/is.cpp.o"
  "CMakeFiles/mpib_nas.dir/is.cpp.o.d"
  "CMakeFiles/mpib_nas.dir/lu.cpp.o"
  "CMakeFiles/mpib_nas.dir/lu.cpp.o.d"
  "CMakeFiles/mpib_nas.dir/mg.cpp.o"
  "CMakeFiles/mpib_nas.dir/mg.cpp.o.d"
  "CMakeFiles/mpib_nas.dir/nas.cpp.o"
  "CMakeFiles/mpib_nas.dir/nas.cpp.o.d"
  "CMakeFiles/mpib_nas.dir/nas_random.cpp.o"
  "CMakeFiles/mpib_nas.dir/nas_random.cpp.o.d"
  "CMakeFiles/mpib_nas.dir/sp.cpp.o"
  "CMakeFiles/mpib_nas.dir/sp.cpp.o.d"
  "libmpib_nas.a"
  "libmpib_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpib_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
