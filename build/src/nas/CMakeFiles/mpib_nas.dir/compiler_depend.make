# Empty compiler generated dependencies file for mpib_nas.
# This may be replaced when dependencies are built.
