file(REMOVE_RECURSE
  "CMakeFiles/mpib_rdmach.dir/basic_channel.cpp.o"
  "CMakeFiles/mpib_rdmach.dir/basic_channel.cpp.o.d"
  "CMakeFiles/mpib_rdmach.dir/channel.cpp.o"
  "CMakeFiles/mpib_rdmach.dir/channel.cpp.o.d"
  "CMakeFiles/mpib_rdmach.dir/multi_method_channel.cpp.o"
  "CMakeFiles/mpib_rdmach.dir/multi_method_channel.cpp.o.d"
  "CMakeFiles/mpib_rdmach.dir/piggyback_channel.cpp.o"
  "CMakeFiles/mpib_rdmach.dir/piggyback_channel.cpp.o.d"
  "CMakeFiles/mpib_rdmach.dir/reg_cache.cpp.o"
  "CMakeFiles/mpib_rdmach.dir/reg_cache.cpp.o.d"
  "CMakeFiles/mpib_rdmach.dir/shm_channel.cpp.o"
  "CMakeFiles/mpib_rdmach.dir/shm_channel.cpp.o.d"
  "CMakeFiles/mpib_rdmach.dir/verbs_base.cpp.o"
  "CMakeFiles/mpib_rdmach.dir/verbs_base.cpp.o.d"
  "CMakeFiles/mpib_rdmach.dir/zerocopy_channel.cpp.o"
  "CMakeFiles/mpib_rdmach.dir/zerocopy_channel.cpp.o.d"
  "libmpib_rdmach.a"
  "libmpib_rdmach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpib_rdmach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
