
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdmach/basic_channel.cpp" "src/rdmach/CMakeFiles/mpib_rdmach.dir/basic_channel.cpp.o" "gcc" "src/rdmach/CMakeFiles/mpib_rdmach.dir/basic_channel.cpp.o.d"
  "/root/repo/src/rdmach/channel.cpp" "src/rdmach/CMakeFiles/mpib_rdmach.dir/channel.cpp.o" "gcc" "src/rdmach/CMakeFiles/mpib_rdmach.dir/channel.cpp.o.d"
  "/root/repo/src/rdmach/multi_method_channel.cpp" "src/rdmach/CMakeFiles/mpib_rdmach.dir/multi_method_channel.cpp.o" "gcc" "src/rdmach/CMakeFiles/mpib_rdmach.dir/multi_method_channel.cpp.o.d"
  "/root/repo/src/rdmach/piggyback_channel.cpp" "src/rdmach/CMakeFiles/mpib_rdmach.dir/piggyback_channel.cpp.o" "gcc" "src/rdmach/CMakeFiles/mpib_rdmach.dir/piggyback_channel.cpp.o.d"
  "/root/repo/src/rdmach/reg_cache.cpp" "src/rdmach/CMakeFiles/mpib_rdmach.dir/reg_cache.cpp.o" "gcc" "src/rdmach/CMakeFiles/mpib_rdmach.dir/reg_cache.cpp.o.d"
  "/root/repo/src/rdmach/shm_channel.cpp" "src/rdmach/CMakeFiles/mpib_rdmach.dir/shm_channel.cpp.o" "gcc" "src/rdmach/CMakeFiles/mpib_rdmach.dir/shm_channel.cpp.o.d"
  "/root/repo/src/rdmach/verbs_base.cpp" "src/rdmach/CMakeFiles/mpib_rdmach.dir/verbs_base.cpp.o" "gcc" "src/rdmach/CMakeFiles/mpib_rdmach.dir/verbs_base.cpp.o.d"
  "/root/repo/src/rdmach/zerocopy_channel.cpp" "src/rdmach/CMakeFiles/mpib_rdmach.dir/zerocopy_channel.cpp.o" "gcc" "src/rdmach/CMakeFiles/mpib_rdmach.dir/zerocopy_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ib/CMakeFiles/mpib_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/pmi/CMakeFiles/mpib_pmi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpib_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
