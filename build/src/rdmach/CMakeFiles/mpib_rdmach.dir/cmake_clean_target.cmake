file(REMOVE_RECURSE
  "libmpib_rdmach.a"
)
