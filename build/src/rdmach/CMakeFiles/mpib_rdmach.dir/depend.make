# Empty dependencies file for mpib_rdmach.
# This may be replaced when dependencies are built.
