# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("ib")
subdirs("pmi")
subdirs("rdmach")
subdirs("ch3")
subdirs("mpi")
subdirs("nas")
subdirs("sdp")
