file(REMOVE_RECURSE
  "libmpib_ch3.a"
)
