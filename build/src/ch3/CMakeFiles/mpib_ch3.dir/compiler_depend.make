# Empty compiler generated dependencies file for mpib_ch3.
# This may be replaced when dependencies are built.
