file(REMOVE_RECURSE
  "CMakeFiles/mpib_ch3.dir/ch3.cpp.o"
  "CMakeFiles/mpib_ch3.dir/ch3.cpp.o.d"
  "CMakeFiles/mpib_ch3.dir/ib_direct_channel.cpp.o"
  "CMakeFiles/mpib_ch3.dir/ib_direct_channel.cpp.o.d"
  "CMakeFiles/mpib_ch3.dir/stream_mux.cpp.o"
  "CMakeFiles/mpib_ch3.dir/stream_mux.cpp.o.d"
  "libmpib_ch3.a"
  "libmpib_ch3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpib_ch3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
