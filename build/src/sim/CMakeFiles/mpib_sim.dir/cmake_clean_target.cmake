file(REMOVE_RECURSE
  "libmpib_sim.a"
)
