file(REMOVE_RECURSE
  "CMakeFiles/mpib_sim.dir/simulator.cpp.o"
  "CMakeFiles/mpib_sim.dir/simulator.cpp.o.d"
  "libmpib_sim.a"
  "libmpib_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpib_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
