# Empty compiler generated dependencies file for mpib_sim.
# This may be replaced when dependencies are built.
