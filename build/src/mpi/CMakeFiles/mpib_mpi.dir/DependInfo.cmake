
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/collectives.cpp" "src/mpi/CMakeFiles/mpib_mpi.dir/collectives.cpp.o" "gcc" "src/mpi/CMakeFiles/mpib_mpi.dir/collectives.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/mpi/CMakeFiles/mpib_mpi.dir/comm.cpp.o" "gcc" "src/mpi/CMakeFiles/mpib_mpi.dir/comm.cpp.o.d"
  "/root/repo/src/mpi/datatype.cpp" "src/mpi/CMakeFiles/mpib_mpi.dir/datatype.cpp.o" "gcc" "src/mpi/CMakeFiles/mpib_mpi.dir/datatype.cpp.o.d"
  "/root/repo/src/mpi/engine.cpp" "src/mpi/CMakeFiles/mpib_mpi.dir/engine.cpp.o" "gcc" "src/mpi/CMakeFiles/mpib_mpi.dir/engine.cpp.o.d"
  "/root/repo/src/mpi/rdma_coll.cpp" "src/mpi/CMakeFiles/mpib_mpi.dir/rdma_coll.cpp.o" "gcc" "src/mpi/CMakeFiles/mpib_mpi.dir/rdma_coll.cpp.o.d"
  "/root/repo/src/mpi/reduce.cpp" "src/mpi/CMakeFiles/mpib_mpi.dir/reduce.cpp.o" "gcc" "src/mpi/CMakeFiles/mpib_mpi.dir/reduce.cpp.o.d"
  "/root/repo/src/mpi/window.cpp" "src/mpi/CMakeFiles/mpib_mpi.dir/window.cpp.o" "gcc" "src/mpi/CMakeFiles/mpib_mpi.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ch3/CMakeFiles/mpib_ch3.dir/DependInfo.cmake"
  "/root/repo/build/src/rdmach/CMakeFiles/mpib_rdmach.dir/DependInfo.cmake"
  "/root/repo/build/src/pmi/CMakeFiles/mpib_pmi.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/mpib_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpib_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
