file(REMOVE_RECURSE
  "libmpib_mpi.a"
)
