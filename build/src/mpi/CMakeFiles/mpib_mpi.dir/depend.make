# Empty dependencies file for mpib_mpi.
# This may be replaced when dependencies are built.
