file(REMOVE_RECURSE
  "CMakeFiles/mpib_mpi.dir/collectives.cpp.o"
  "CMakeFiles/mpib_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/mpib_mpi.dir/comm.cpp.o"
  "CMakeFiles/mpib_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/mpib_mpi.dir/datatype.cpp.o"
  "CMakeFiles/mpib_mpi.dir/datatype.cpp.o.d"
  "CMakeFiles/mpib_mpi.dir/engine.cpp.o"
  "CMakeFiles/mpib_mpi.dir/engine.cpp.o.d"
  "CMakeFiles/mpib_mpi.dir/rdma_coll.cpp.o"
  "CMakeFiles/mpib_mpi.dir/rdma_coll.cpp.o.d"
  "CMakeFiles/mpib_mpi.dir/reduce.cpp.o"
  "CMakeFiles/mpib_mpi.dir/reduce.cpp.o.d"
  "CMakeFiles/mpib_mpi.dir/window.cpp.o"
  "CMakeFiles/mpib_mpi.dir/window.cpp.o.d"
  "libmpib_mpi.a"
  "libmpib_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpib_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
