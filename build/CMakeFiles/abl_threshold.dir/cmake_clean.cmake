file(REMOVE_RECURSE
  "CMakeFiles/abl_threshold.dir/bench/abl_threshold.cpp.o"
  "CMakeFiles/abl_threshold.dir/bench/abl_threshold.cpp.o.d"
  "bench/abl_threshold"
  "bench/abl_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
