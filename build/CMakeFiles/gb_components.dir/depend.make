# Empty dependencies file for gb_components.
# This may be replaced when dependencies are built.
