file(REMOVE_RECURSE
  "CMakeFiles/gb_components.dir/bench/gb_components.cpp.o"
  "CMakeFiles/gb_components.dir/bench/gb_components.cpp.o.d"
  "bench/gb_components"
  "bench/gb_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
