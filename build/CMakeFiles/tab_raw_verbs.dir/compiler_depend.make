# Empty compiler generated dependencies file for tab_raw_verbs.
# This may be replaced when dependencies are built.
