file(REMOVE_RECURSE
  "CMakeFiles/tab_raw_verbs.dir/bench/tab_raw_verbs.cpp.o"
  "CMakeFiles/tab_raw_verbs.dir/bench/tab_raw_verbs.cpp.o.d"
  "bench/tab_raw_verbs"
  "bench/tab_raw_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_raw_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
