# Empty dependencies file for ext_multimethod.
# This may be replaced when dependencies are built.
