file(REMOVE_RECURSE
  "CMakeFiles/ext_multimethod.dir/bench/ext_multimethod.cpp.o"
  "CMakeFiles/ext_multimethod.dir/bench/ext_multimethod.cpp.o.d"
  "bench/ext_multimethod"
  "bench/ext_multimethod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multimethod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
