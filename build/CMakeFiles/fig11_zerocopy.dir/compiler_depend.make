# Empty compiler generated dependencies file for fig11_zerocopy.
# This may be replaced when dependencies are built.
