file(REMOVE_RECURSE
  "CMakeFiles/fig11_zerocopy.dir/bench/fig11_zerocopy.cpp.o"
  "CMakeFiles/fig11_zerocopy.dir/bench/fig11_zerocopy.cpp.o.d"
  "bench/fig11_zerocopy"
  "bench/fig11_zerocopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_zerocopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
