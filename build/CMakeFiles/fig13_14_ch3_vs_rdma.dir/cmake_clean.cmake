file(REMOVE_RECURSE
  "CMakeFiles/fig13_14_ch3_vs_rdma.dir/bench/fig13_14_ch3_vs_rdma.cpp.o"
  "CMakeFiles/fig13_14_ch3_vs_rdma.dir/bench/fig13_14_ch3_vs_rdma.cpp.o.d"
  "bench/fig13_14_ch3_vs_rdma"
  "bench/fig13_14_ch3_vs_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_14_ch3_vs_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
