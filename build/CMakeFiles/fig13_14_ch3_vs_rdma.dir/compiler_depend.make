# Empty compiler generated dependencies file for fig13_14_ch3_vs_rdma.
# This may be replaced when dependencies are built.
