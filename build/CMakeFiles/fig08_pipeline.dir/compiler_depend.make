# Empty compiler generated dependencies file for fig08_pipeline.
# This may be replaced when dependencies are built.
