file(REMOVE_RECURSE
  "CMakeFiles/fig08_pipeline.dir/bench/fig08_pipeline.cpp.o"
  "CMakeFiles/fig08_pipeline.dir/bench/fig08_pipeline.cpp.o.d"
  "bench/fig08_pipeline"
  "bench/fig08_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
