file(REMOVE_RECURSE
  "CMakeFiles/ext_scalability.dir/bench/ext_scalability.cpp.o"
  "CMakeFiles/ext_scalability.dir/bench/ext_scalability.cpp.o.d"
  "bench/ext_scalability"
  "bench/ext_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
