# Empty compiler generated dependencies file for nas_profile.
# This may be replaced when dependencies are built.
