file(REMOVE_RECURSE
  "CMakeFiles/nas_profile.dir/bench/nas_profile.cpp.o"
  "CMakeFiles/nas_profile.dir/bench/nas_profile.cpp.o.d"
  "bench/nas_profile"
  "bench/nas_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
