file(REMOVE_RECURSE
  "CMakeFiles/fig06_07_piggyback.dir/bench/fig06_07_piggyback.cpp.o"
  "CMakeFiles/fig06_07_piggyback.dir/bench/fig06_07_piggyback.cpp.o.d"
  "bench/fig06_07_piggyback"
  "bench/fig06_07_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_07_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
