file(REMOVE_RECURSE
  "CMakeFiles/abl_regcache.dir/bench/abl_regcache.cpp.o"
  "CMakeFiles/abl_regcache.dir/bench/abl_regcache.cpp.o.d"
  "bench/abl_regcache"
  "bench/abl_regcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_regcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
