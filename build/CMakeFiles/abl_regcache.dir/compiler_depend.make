# Empty compiler generated dependencies file for abl_regcache.
# This may be replaced when dependencies are built.
