# Empty dependencies file for fig15_verbs_read_write.
# This may be replaced when dependencies are built.
