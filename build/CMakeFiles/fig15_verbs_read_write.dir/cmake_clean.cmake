file(REMOVE_RECURSE
  "CMakeFiles/fig15_verbs_read_write.dir/bench/fig15_verbs_read_write.cpp.o"
  "CMakeFiles/fig15_verbs_read_write.dir/bench/fig15_verbs_read_write.cpp.o.d"
  "bench/fig15_verbs_read_write"
  "bench/fig15_verbs_read_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_verbs_read_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
