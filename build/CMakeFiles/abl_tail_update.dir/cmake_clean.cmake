file(REMOVE_RECURSE
  "CMakeFiles/abl_tail_update.dir/bench/abl_tail_update.cpp.o"
  "CMakeFiles/abl_tail_update.dir/bench/abl_tail_update.cpp.o.d"
  "bench/abl_tail_update"
  "bench/abl_tail_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tail_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
