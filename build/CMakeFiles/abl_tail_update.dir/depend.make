# Empty dependencies file for abl_tail_update.
# This may be replaced when dependencies are built.
