file(REMOVE_RECURSE
  "CMakeFiles/fig17_nas_b8.dir/bench/fig17_nas_b8.cpp.o"
  "CMakeFiles/fig17_nas_b8.dir/bench/fig17_nas_b8.cpp.o.d"
  "bench/fig17_nas_b8"
  "bench/fig17_nas_b8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_nas_b8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
