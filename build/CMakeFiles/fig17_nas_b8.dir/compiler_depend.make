# Empty compiler generated dependencies file for fig17_nas_b8.
# This may be replaced when dependencies are built.
