file(REMOVE_RECURSE
  "CMakeFiles/ext_rdma_coll.dir/bench/ext_rdma_coll.cpp.o"
  "CMakeFiles/ext_rdma_coll.dir/bench/ext_rdma_coll.cpp.o.d"
  "bench/ext_rdma_coll"
  "bench/ext_rdma_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rdma_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
