# Empty dependencies file for ext_rdma_coll.
# This may be replaced when dependencies are built.
