file(REMOVE_RECURSE
  "CMakeFiles/ext_onesided.dir/bench/ext_onesided.cpp.o"
  "CMakeFiles/ext_onesided.dir/bench/ext_onesided.cpp.o.d"
  "bench/ext_onesided"
  "bench/ext_onesided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_onesided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
