# Empty dependencies file for ext_onesided.
# This may be replaced when dependencies are built.
