# Empty compiler generated dependencies file for fig16_nas_a4.
# This may be replaced when dependencies are built.
