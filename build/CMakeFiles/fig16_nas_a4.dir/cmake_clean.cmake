file(REMOVE_RECURSE
  "CMakeFiles/fig16_nas_a4.dir/bench/fig16_nas_a4.cpp.o"
  "CMakeFiles/fig16_nas_a4.dir/bench/fig16_nas_a4.cpp.o.d"
  "bench/fig16_nas_a4"
  "bench/fig16_nas_a4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_nas_a4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
