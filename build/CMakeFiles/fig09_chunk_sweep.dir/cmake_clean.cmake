file(REMOVE_RECURSE
  "CMakeFiles/fig09_chunk_sweep.dir/bench/fig09_chunk_sweep.cpp.o"
  "CMakeFiles/fig09_chunk_sweep.dir/bench/fig09_chunk_sweep.cpp.o.d"
  "bench/fig09_chunk_sweep"
  "bench/fig09_chunk_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_chunk_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
