# Empty dependencies file for fig09_chunk_sweep.
# This may be replaced when dependencies are built.
