file(REMOVE_RECURSE
  "CMakeFiles/fig04_05_basic.dir/bench/fig04_05_basic.cpp.o"
  "CMakeFiles/fig04_05_basic.dir/bench/fig04_05_basic.cpp.o.d"
  "bench/fig04_05_basic"
  "bench/fig04_05_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_05_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
