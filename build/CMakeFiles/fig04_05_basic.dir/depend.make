# Empty dependencies file for fig04_05_basic.
# This may be replaced when dependencies are built.
