// Figure 8: MPI bandwidth with pipelining (section 4.4).  Paper anchor:
// peak rises from 230 MB/s (basic) to over 500 MB/s -- but no further,
// because the copies and the DMA share the memory bus (~bus/3).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  const mpi::RuntimeConfig basic =
      benchutil::design_config(rdmach::Design::kBasic);
  const mpi::RuntimeConfig pipe =
      benchutil::design_config(rdmach::Design::kPipeline);

  benchutil::title(
      "Figure 8: MPI bandwidth, basic vs pipelining (paper: 230 -> 500+ MB/s)");
  std::printf("%8s %14s %14s\n", "size", "basic MB/s", "pipeline MB/s");
  for (std::size_t s : benchutil::sizes_4_to(64 * 1024)) {
    std::printf("%8s %14.1f %14.1f\n", benchutil::human_size(s).c_str(),
                benchutil::mpi_bandwidth_mbps(basic, s),
                benchutil::mpi_bandwidth_mbps(pipe, s));
  }
  return 0;
}
