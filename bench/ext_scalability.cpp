// Extension: the scalability study the paper defers to future work ("we
// plan to use larger clusters to study various aspects of our designs
// regarding scalability").  Sweeps the process count well past the
// paper's 8 nodes and reports the latency-sensitive collectives (whose
// cost grows ~log p over point-to-point) and a NAS kernel.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

double allreduce_usec(int nprocs, std::size_t doubles) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, nprocs);
  sim::Tick elapsed = 0;
  constexpr int kIters = 20;
  job.launch([&, doubles](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<double> in(doubles, 1.0), out(doubles);
    co_await world.barrier();
    const sim::Tick t0 = ctx.sim().now();
    for (int i = 0; i < kIters; ++i) {
      co_await world.allreduce(in.data(), out.data(),
                               static_cast<int>(doubles),
                               mpi::Datatype::kDouble, mpi::Op::kSum);
    }
    if (ctx.rank == 0) elapsed = ctx.sim().now() - t0;
    co_await rt.finalize();
  });
  sim.run();
  return sim::to_usec(elapsed) / kIters;
}

double barrier_usec(int nprocs) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, nprocs);
  sim::Tick elapsed = 0;
  constexpr int kIters = 20;
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    co_await world.barrier();
    const sim::Tick t0 = ctx.sim().now();
    for (int i = 0; i < kIters; ++i) co_await world.barrier();
    if (ctx.rank == 0) elapsed = ctx.sim().now() - t0;
    co_await rt.finalize();
  });
  sim.run();
  return sim::to_usec(elapsed) / kIters;
}

}  // namespace

int main() {
  benchutil::title(
      "Extension: scalability beyond the paper's 8 nodes (zero-copy stack)");
  std::printf("%6s %12s %16s %16s %12s\n", "nodes", "barrier us",
              "allreduce-8B us", "allreduce-64K us", "EP-A Mop/s");
  for (int p : {2, 4, 8, 16, 32}) {
    const nas::Result ep = benchutil::run_nas(
        "ep", p, nas::Class::A,
        benchutil::design_config(rdmach::Design::kZeroCopy));
    std::printf("%6d %12.2f %16.2f %16.2f %12.1f\n", p, barrier_usec(p),
                allreduce_usec(p, 1), allreduce_usec(p, 8192), ep.mops);
  }
  std::printf(
      "\nBarrier/allreduce grow ~log2(p) as expected of dissemination /\n"
      "recursive doubling; EP scales near-linearly (compute-bound).\n");
  return 0;
}
