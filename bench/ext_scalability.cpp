// Extension: the scalability study the paper defers to future work ("we
// plan to use larger clusters to study various aspects of our designs
// regarding scalability").  Sweeps the rank count well past the paper's
// 8 nodes -- 64 to 512 by default, 1024 with SCALE_FULL=1 -- under the
// lazy-connect / shared-receive-pool configuration, and reports:
//
//   * latency-sensitive collectives (barrier, 8B and 64KB allreduce),
//   * a NAS EP point,
//   * per-rank resource accounting: live/created QPs, on-demand
//     connects, LRU evictions, SRQ pool high water, resident bytes --
//     the evidence that per-rank cost is O(active peers) bounded by
//     `qp_budget`, not O(ranks),
//   * DES kernel micro-counters (events dispatched, pool hit rate).
//
// Emits BENCH_scalability.json with every measured point.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"

namespace {

constexpr int kQpBudget = 32;
constexpr std::size_t kSrqRings = 32;

/// Zero-copy stack with the rank-dimension scaling knobs on: QPs wired on
/// first use, receive rings leased from a shared pool, and the connection
/// cache tearing down past `qp_budget` live peers.
mpi::RuntimeConfig lazy_config() {
  mpi::RuntimeConfig cfg = benchutil::design_config(rdmach::Design::kZeroCopy);
  cfg.stack.channel.lazy_connect = true;
  cfg.stack.channel.qp_budget = kQpBudget;
  cfg.stack.channel.srq_pool_rings = kSrqRings;
  return cfg;
}

/// Per-rank resource footprint reduced across the job: maxima for the
/// bounded quantities (a single rank over budget is a failure), plus the
/// eviction total as the cache-churn signal.
struct RankFootprint {
  std::uint64_t qps_live_max = 0;
  std::uint64_t qps_created_max = 0;
  std::uint64_t connects_on_demand_max = 0;
  std::uint64_t srq_high_water_max = 0;
  std::uint64_t resident_bytes_max = 0;
  std::uint64_t qps_evicted_total = 0;

  void absorb(const rdmach::ChannelStats& st) {
    qps_live_max = std::max(qps_live_max, st.qps_live);
    qps_created_max = std::max(qps_created_max, st.qps_created);
    connects_on_demand_max =
        std::max(connects_on_demand_max, st.connects_on_demand);
    srq_high_water_max = std::max(srq_high_water_max, st.srq_pool_high_water);
    resident_bytes_max = std::max(resident_bytes_max, st.resident_bytes);
    qps_evicted_total += st.qps_evicted;
  }
};

struct CollPoint {
  double barrier_us = 0;
  double allreduce8_us = 0;
  double allreduce64k_us = 0;
  RankFootprint fp;
  sim::Simulator::Stats des;
};

/// One job runs the whole collective battery so the footprint reflects the
/// steady state after barrier + small/large allreduce traffic.  Fewer
/// timing iterations at large p keep the event count (and CI wall time)
/// bounded; per-iteration cost is what is reported either way.
CollPoint run_collectives(int nprocs, const mpi::RuntimeConfig& cfg) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, nprocs);
  CollPoint pt;
  const int iters = nprocs >= 256 ? 5 : 20;
  job.launch([&, iters](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<double> in8(1, 1.0), out8(1);
    std::vector<double> in64k(8192, 1.0), out64k(8192);
    co_await world.barrier();

    sim::Tick t0 = ctx.sim().now();
    for (int i = 0; i < iters; ++i) co_await world.barrier();
    if (ctx.rank == 0) pt.barrier_us = sim::to_usec(ctx.sim().now() - t0) / iters;

    t0 = ctx.sim().now();
    for (int i = 0; i < iters; ++i) {
      co_await world.allreduce(in8.data(), out8.data(), 1,
                               mpi::Datatype::kDouble, mpi::Op::kSum);
    }
    if (ctx.rank == 0) {
      pt.allreduce8_us = sim::to_usec(ctx.sim().now() - t0) / iters;
    }

    t0 = ctx.sim().now();
    for (int i = 0; i < iters; ++i) {
      co_await world.allreduce(in64k.data(), out64k.data(), 8192,
                               mpi::Datatype::kDouble, mpi::Op::kSum);
    }
    if (ctx.rank == 0) {
      pt.allreduce64k_us = sim::to_usec(ctx.sim().now() - t0) / iters;
    }

    pt.fp.absorb(rt.engine().channel().channel_stats());
    co_await rt.finalize();
  });
  sim.run();
  pt.des = sim.stats();
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::smoke_mode(argc, argv);
  const bool full = std::getenv("SCALE_FULL") != nullptr;
  benchutil::title(
      "Extension: rank-dimension scalability (zero-copy stack, lazy connect, "
      "shared receive pool)");
  std::printf("config: lazy_connect=on qp_budget=%d srq_pool_rings=%zu%s\n",
              kQpBudget, kSrqRings,
              smoke ? "  [--smoke]" : full ? "  [SCALE_FULL]" : "");

  std::vector<int> sweep;
  if (smoke) {
    sweep = {16, 64};
  } else {
    sweep = {64, 128, 256, 512};
    if (full) sweep.push_back(1024);
  }

  benchutil::JsonResult json("ext_scalability");
  json.add("qp_budget", 0, kQpBudget, "qps");
  json.add("srq_pool_rings", 0, static_cast<double>(kSrqRings), "rings");

  std::printf("%6s %11s %13s %14s %10s | %8s %8s %8s %8s %12s\n", "ranks",
              "barrier us", "allred-8B us", "allred-64K us", "EP Mop/s",
              "qps-live", "created", "evicted", "srq-hw", "resident/rk");
  for (int p : sweep) {
    const mpi::RuntimeConfig cfg = lazy_config();
    const CollPoint pt = run_collectives(p, cfg);
    const nas::Result ep = benchutil::run_nas("ep", p, nas::Class::A, cfg);

    std::printf("%6d %11.2f %13.2f %14.2f %10.1f | %8llu %8llu %8llu %8llu %11s\n",
                p, pt.barrier_us, pt.allreduce8_us, pt.allreduce64k_us, ep.mops,
                static_cast<unsigned long long>(pt.fp.qps_live_max),
                static_cast<unsigned long long>(pt.fp.qps_created_max),
                static_cast<unsigned long long>(pt.fp.qps_evicted_total),
                static_cast<unsigned long long>(pt.fp.srq_high_water_max),
                benchutil::human_size(pt.fp.resident_bytes_max).c_str());

    const std::size_t key = static_cast<std::size_t>(p);
    json.add("barrier", key, pt.barrier_us, "us");
    json.add("allreduce_8B", key, pt.allreduce8_us, "us");
    json.add("allreduce_64K", key, pt.allreduce64k_us, "us");
    json.add("nas_ep_A", key, ep.mops, "mops");
    json.add("qps_live_max", key, static_cast<double>(pt.fp.qps_live_max),
             "qps");
    json.add("qps_created_max", key,
             static_cast<double>(pt.fp.qps_created_max), "qps");
    json.add("connects_on_demand_max", key,
             static_cast<double>(pt.fp.connects_on_demand_max), "connects");
    json.add("qps_evicted_total", key,
             static_cast<double>(pt.fp.qps_evicted_total), "qps");
    json.add("srq_pool_high_water_max", key,
             static_cast<double>(pt.fp.srq_high_water_max), "rings");
    json.add("resident_bytes_per_rank_max", key,
             static_cast<double>(pt.fp.resident_bytes_max), "bytes");
    json.add("sim_events", key, static_cast<double>(pt.des.events_dispatched),
             "events");
    const std::uint64_t pool_total = pt.des.pool_hits + pt.des.pool_misses;
    json.add("sim_pool_hit_pct", key,
             pool_total == 0 ? 0.0
                             : 100.0 * static_cast<double>(pt.des.pool_hits) /
                                   static_cast<double>(pool_total),
             "%");
  }
  json.write("BENCH_scalability.json");

  std::printf(
      "\nBarrier/allreduce grow ~log2(p) (dissemination / recursive\n"
      "doubling); EP stays compute-bound.  Live QPs and resident bytes stay\n"
      "flat across the sweep -- O(active peers) capped by qp_budget -- while\n"
      "an eager stack would wire p-1 QPs and rings per rank.\n");
  return 0;
}
