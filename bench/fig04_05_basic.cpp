// Figures 4 and 5: MPI latency and bandwidth of the basic design
// (section 4.2.1).  Paper anchors: 18.6 us small-message latency,
// 230 MB/s peak bandwidth.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  const mpi::RuntimeConfig cfg =
      benchutil::design_config(rdmach::Design::kBasic);

  benchutil::title("Figure 4: MPI latency, basic design (paper: 18.6 us small)");
  std::printf("%8s %14s\n", "size", "latency (us)");
  for (std::size_t s : benchutil::sizes_4_to(16 * 1024)) {
    std::printf("%8s %14.2f\n", benchutil::human_size(s).c_str(),
                benchutil::mpi_latency_usec(cfg, s));
  }

  benchutil::title(
      "Figure 5: MPI bandwidth, basic design (paper: 230 MB/s peak)");
  std::printf("%8s %14s\n", "size", "bw (MB/s)");
  for (std::size_t s : benchutil::sizes_4_to(64 * 1024)) {
    std::printf("%8s %14.1f\n", benchutil::human_size(s).c_str(),
                benchutil::mpi_bandwidth_mbps(cfg, s));
  }
  return 0;
}
