// Ablation: delayed tail-pointer updates (section 4.3).  The piggyback
// design batches explicit tail updates; forcing an update after every
// consumed slot (threshold 1) recreates part of the basic design's
// per-message pointer traffic, which shows up as extra RDMA writes and
// lower small-message bandwidth.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  benchutil::title(
      "Ablation: tail-update batching (piggyback design, 8 slots/ring)");
  std::printf("%-28s %12s %14s\n", "threshold (slots)", "lat 4B (us)",
              "bw 4K (MB/s)");
  for (std::size_t thresh : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{7}}) {
    mpi::RuntimeConfig cfg =
        benchutil::design_config(rdmach::Design::kPiggyback);
    cfg.stack.channel.tail_update_slots = thresh;
    std::printf("%-28zu %12.2f %14.1f\n", thresh,
                benchutil::mpi_latency_usec(cfg, 4),
                benchutil::mpi_bandwidth_mbps(cfg, 4096));
  }
  std::printf(
      "\n(larger thresholds batch more updates; the default is half the "
      "slot count)\n");
  return 0;
}
