// Figure 17: NAS class B on 8 nodes (section 7).  SP and BT require a
// square number of nodes, so -- as in the paper -- their results are
// reported on 4 nodes.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"

int main() {
  const struct {
    const char* label;
    mpi::RuntimeConfig cfg;
  } designs[] = {
      {"Pipelining", benchutil::design_config(rdmach::Design::kPipeline)},
      {"RDMA Channel", benchutil::design_config(rdmach::Design::kZeroCopy)},
      {"CH3", benchutil::stack_config(ch3::Stack::kCh3Direct,
                                      rdmach::Design::kPipeline)},
  };

  benchutil::title(
      "Figure 17: NAS class B on 8 nodes (SP/BT on 4: square counts only)");
  std::printf("%-4s %6s %12s %14s %10s  %s\n", "bm", "nodes", "Pipelining",
              "RDMA Channel", "CH3", "(verified)");

  double ratio_pipe = 0, ratio_ch3 = 0;
  int count = 0;
  for (const auto& [name, fn] : nas::suite()) {
    const bool square_only = name == "sp" || name == "bt";
    const int nodes = square_only ? 4 : 8;
    double mops[3];
    bool verified = true;
    std::string label;
    for (int d = 0; d < 3; ++d) {
      const nas::Result r =
          benchutil::run_nas(name, nodes, nas::Class::B, designs[d].cfg);
      mops[d] = r.mops;
      verified = verified && r.verified;
      label = r.name;
    }
    std::printf("%-4s %6d %12.1f %14.1f %10.1f  %s\n", label.c_str(), nodes,
                mops[0], mops[1], mops[2], verified ? "ok" : "FAILED");
    ratio_pipe += mops[0] / mops[1];
    ratio_ch3 += mops[2] / mops[1];
    ++count;
  }
  std::printf(
      "\nPipelining averages %.1f%% of RDMA-Channel zero-copy "
      "(paper: worst in all cases)\n",
      100.0 * ratio_pipe / count);
  std::printf(
      "CH3 averages %+.2f%% vs RDMA-Channel zero-copy (paper: < 1%% better)\n",
      100.0 * (ratio_ch3 / count - 1.0));
  return 0;
}
