// Figure 16: NAS Parallel Benchmarks, class A on 4 nodes, comparing the
// three competitive designs (section 7): RDMA-Channel pipelining,
// RDMA-Channel zero-copy, and CH3-level zero-copy.  Paper findings: the
// differences are small, pipelining is the worst in all cases, and the
// CH3 design averages < 1% better than the RDMA-Channel zero-copy design.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main() {
  const struct {
    const char* label;
    mpi::RuntimeConfig cfg;
  } designs[] = {
      {"Pipelining", benchutil::design_config(rdmach::Design::kPipeline)},
      {"RDMA Channel", benchutil::design_config(rdmach::Design::kZeroCopy)},
      {"CH3", benchutil::stack_config(ch3::Stack::kCh3Direct,
                                      rdmach::Design::kPipeline)},
  };

  benchutil::title("Figure 16: NAS class A on 4 nodes (Mop/s, higher better)");
  std::printf("%-4s %12s %14s %10s  %s\n", "bm", "Pipelining",
              "RDMA Channel", "CH3", "(verified)");

  double ratio_pipe = 0, ratio_ch3 = 0;
  int count = 0;
  for (const auto& [name, fn] : nas::suite()) {
    double mops[3];
    bool verified = true;
    std::string label;
    for (int d = 0; d < 3; ++d) {
      const nas::Result r = benchutil::run_nas(name, 4, nas::Class::A,
                                               designs[d].cfg);
      mops[d] = r.mops;
      verified = verified && r.verified;
      label = r.name;
    }
    std::printf("%-4s %12.1f %14.1f %10.1f  %s\n", label.c_str(), mops[0],
                mops[1], mops[2], verified ? "ok" : "FAILED");
    ratio_pipe += mops[0] / mops[1];
    ratio_ch3 += mops[2] / mops[1];
    ++count;
  }
  std::printf(
      "\nPipelining averages %.1f%% of RDMA-Channel zero-copy "
      "(paper: worst in all cases)\n",
      100.0 * ratio_pipe / count);
  std::printf(
      "CH3 averages %+.2f%% vs RDMA-Channel zero-copy (paper: < 1%% better)\n",
      100.0 * (ratio_ch3 / count - 1.0));
  return 0;
}
