// NAS-under-fault campaign harness.
//
// Runs one NAS kernel on an MPI job while a sim::FaultCampaign keys faults
// to the kernel's own progress events (nas::notify_phase -> campaign
// on_phase), then reports what a fault mix actually cost: the kernel's
// Result (verified + Mop/s), the summed per-rank ChannelStats *for the
// workload alone* (counters are reset right after init, so bootstrap
// traffic never pollutes the deltas), and how the run ended -- completed,
// clean ChannelError/VcError per rank, or wedged at the virtual deadline
// (which the recovery watchdog is there to make impossible).
//
// Shared between bench/nas_fault.cpp (the Mop/s-vs-clean cost tables in
// BENCH_nasfault.json) and tests/nas_fault_test.cpp (bounded-cost checks,
// watchdog guarantees, randomized campaign soak).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ch3/ch3.hpp"
#include "sim/campaign.hpp"

namespace benchutil {

struct CampaignOutcome {
  nas::Result result;      // rank 0's Result (meaningful when completed)
  bool completed = false;  // every rank finished its kernel or failed clean
  bool wedged = false;     // virtual deadline hit with a rank still stuck
  int errors = 0;          // ranks that surfaced a transport error
  std::vector<std::string> error_whats;  // their messages (snapshot texts)
  rdmach::ChannelStats stats;            // all ranks, workload-only deltas
  std::uint64_t faults_armed = 0;        // campaign rules -> schedule
  std::uint64_t faults_delivered = 0;    // kills the fabric actually dealt
  int phase_events = 0;                  // rank-0 progress events observed
};

/// Phase key each kernel announces from its main loop (src/nas/*.cpp).
inline std::string phase_of(const std::string& kernel) {
  if (kernel == "is") return "is.iter";
  if (kernel == "cg") return "cg.iter";
  if (kernel == "ft") return "ft.pass";
  if (kernel == "bt") return "bt.sweep";
  if (kernel == "mg") return "mg.cycle";
  if (kernel == "lu") return "lu.ssor";
  if (kernel == "sp") return "sp.sweep";
  if (kernel == "ep") return "ep.tally";
  return kernel + ".iter";
}

/// Runs `kernel` on `nprocs` ranks under `campaign` (nullptr: clean run).
/// Rank 0's phase events drive the campaign; faults armed by its rules are
/// injected through the fabric's schedule.  The job is bounded by
/// `deadline` virtual time -- a run that neither completes nor errors by
/// then comes back wedged, which no fault schedule may cause.
inline CampaignOutcome run_nas_campaign(
    const std::string& kernel, int nprocs, nas::Class cls,
    const mpi::RuntimeConfig& cfg, sim::FaultCampaign* campaign,
    const ib::FabricConfig& fcfg = {},
    sim::Tick deadline = sim::usec(120'000'000)) {
  CampaignOutcome out;
  sim::Simulator sim;
  ib::Fabric fabric(sim, fcfg);
  if (campaign != nullptr) fabric.attach_faults(&campaign->schedule());
  pmi::Job job(fabric, nprocs);

  // The hook fires once per rank per loop turn; the campaign wants one
  // event per logical iteration, so only rank 0's announcements count.
  nas::ScopedPhaseHook hook([&](const nas::PhaseEvent& e) {
    if (e.rank != 0) return;
    ++out.phase_events;
    if (campaign != nullptr) campaign->on_phase(e.phase);
  });

  std::vector<int> done(static_cast<std::size_t>(nprocs), 0);
  std::vector<rdmach::ChannelStats> stats(static_cast<std::size_t>(nprocs));
  job.launch([&, kernel, cls](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    // Workload-only counters: drop everything bootstrap charged.
    rt.engine().channel().reset_channel_stats();
    const std::size_t me = static_cast<std::size_t>(ctx.rank);
    bool failed = false;
    std::string what;
    try {
      nas::Result r = co_await nas::kernel(kernel)(rt.world(), ctx, cls);
      stats[me] = rt.engine().channel().channel_stats();
      done[me] = 1;
      if (ctx.rank == 0) out.result = r;
    } catch (const rdmach::ChannelError& e) {
      failed = true;
      what = e.to_string();  // kind + peer + recovery snapshot, not just the message
    } catch (const ch3::VcError& e) {
      failed = true;
      what = e.what();
    }
    if (failed) {
      stats[me] = rt.engine().channel().channel_stats();
      done[me] = 1;
      ++out.errors;
      out.error_whats.push_back(std::move(what));
      co_return;  // finalize would barrier against a fenced-off peer
    }
    co_await rt.finalize();
  });
  sim.run_until(deadline);

  out.completed = true;
  for (const int d : done) out.completed = out.completed && d != 0;
  out.wedged = !out.completed;
  for (const rdmach::ChannelStats& t : stats) {
    const rdmach::ProtoStats* from[] = {&t.eager, &t.rndv_write,
                                        &t.rndv_read};
    rdmach::ProtoStats* to[] = {&out.stats.eager, &out.stats.rndv_write,
                                &out.stats.rndv_read};
    for (int i = 0; i < 3; ++i) {
      to[i]->ops += from[i]->ops;
      to[i]->bytes += from[i]->bytes;
      to[i]->retries += from[i]->retries;
    }
    out.stats.recoveries += t.recoveries;
    out.stats.crc_failures += t.crc_failures;
    out.stats.retransmits += t.retransmits;
    out.stats.reg_fallbacks += t.reg_fallbacks;
    out.stats.cq_overruns += t.cq_overruns;
    out.stats.credit_stalls += t.credit_stalls;
    out.stats.watchdog_trips += t.watchdog_trips;
    out.stats.replayed_bytes += t.replayed_bytes;
    out.stats.rail_failovers += t.rail_failovers;
    out.stats.rail_quarantines += t.rail_quarantines;
    out.stats.rail_reinstates += t.rail_reinstates;
    out.stats.suspicion_trips += t.suspicion_trips;
    out.stats.false_suspicions += t.false_suspicions;
    out.stats.degraded_ns += t.degraded_ns;
  }
  if (campaign != nullptr) {
    out.faults_armed = campaign->armed();
    out.faults_delivered = campaign->schedule().killed();
  }
  return out;
}

// ---- seeded standard mixes --------------------------------------------------
// Each installs rules into a fresh campaign.  Intensity is phrased per
// phase occurrence so the same mix scales from IS's 10 iterations to CG's
// 25; jitter scatters the hit points across each iteration's traffic so a
// seed sweep exercises different operations, reproducibly.

/// Kill-only: every iteration past the first, one rank's QP takes a fatal
/// WQE error (rotating over ranks); recovery must replay and rejoin.  Each
/// rule is capped with times() so total campaign intensity is bounded --
/// LU's 60 wavefront iterations get the same fault count as IS's 10, and
/// the Mop/s-loss bound measures recovery cost, not kernel length.
inline void mix_kill(sim::FaultCampaign& c, const std::string& phase,
                     int nprocs) {
  for (int r = 0; r < nprocs; ++r) {
    c.at_phase(phase)
        .from(1 + r)
        .repeat_every(nprocs)
        .times(4)
        .jitter(16)
        .kill(r);
  }
}

/// Corrupt + exhaust: silent payload corruption (caught by the end-to-end
/// CRC; requires integrity_check on) plus registration / CQ / credit
/// denial, staggered over ranks.
inline void mix_corrupt_exhaust(sim::FaultCampaign& c,
                                const std::string& phase, int nprocs) {
  for (int r = 0; r < nprocs; ++r) {
    c.at_phase(phase)
        .from(1 + r)
        .repeat_every(2 * nprocs)
        .times(4)
        .jitter(24)
        .corrupt(r);
    c.at_phase(phase)
        .from(2 + r)
        .repeat_every(3 * nprocs)
        .times(3)
        .jitter(8)
        .exhaust_reg(r, 1)
        .exhaust_cq(r, 2)
        .exhaust_credit(r, 2);
  }
}

/// Rail-down: on a >= 2-rail fabric, two ranks each lose one (different)
/// port for good early in the run; striping must fail over to the
/// surviving rail.  Every node keeps at least one live rail.
inline void mix_raildown(sim::FaultCampaign& c, const std::string& phase,
                         int nprocs) {
  c.at_phase(phase).from(1).once().rail_down(0, 1);
  if (nprocs > 1) c.at_phase(phase).from(2).once().rail_down(1, 0);
}

/// Combined (the standard mix): kills, corruption, exhaustion, and one
/// rail loss in the same run, each at half the single-mix rate.
inline void mix_combined(sim::FaultCampaign& c, const std::string& phase,
                         int nprocs) {
  for (int r = 0; r < nprocs; ++r) {
    c.at_phase(phase)
        .from(1 + r)
        .repeat_every(2 * nprocs)
        .times(3)
        .jitter(16)
        .kill(r);
    c.at_phase(phase)
        .from(2 + r)
        .repeat_every(3 * nprocs)
        .times(3)
        .jitter(24)
        .corrupt(r);
    c.at_phase(phase)
        .from(3 + r)
        .repeat_every(4 * nprocs)
        .times(2)
        .jitter(8)
        .exhaust_reg(r, 1)
        .exhaust_credit(r, 1);
  }
  c.at_phase(phase).from(1).once().rail_down(0, 1);
}

/// Degrade-only (gray failures): no rank ever dies.  Each node's
/// *secondary* rail turns gray for a window -- 10x latency and a tenth of
/// the bandwidth -- then heals; rank 0's rail 1 also flickers with a
/// duty-cycled flaky window.  Rail 1 is the classic gray-failure spot:
/// the main QP (eager ring + control slots) lives on rail 0, so a sick
/// secondary only drags the rendezvous stripes that land on it -- exactly
/// the traffic the suspicion detector samples and quarantine can steer
/// away.  The acceptance bar is zero kDead convictions and zero
/// ChannelErrors: everything must flow through suspicion + quarantine,
/// never the kill path.  Windows are op-indexed, so they are sized to
/// expire mid-run: once a rail is quarantined only probe traffic advances
/// its op counter, and an oversized window would self-sustain -- the probe
/// keeps measuring the degrade it is trying to outlive.
inline void mix_degrade(sim::FaultCampaign& c, const std::string& phase,
                        int nprocs) {
  sim::FaultSchedule::DegradeSpec gray;
  gray.latency_mult = 10.0;
  gray.bandwidth_mult = 0.1;
  for (int r = 0; r < nprocs; ++r) {
    c.at_phase(phase)
        .from(1 + r)
        .repeat_every(2 * nprocs)
        .times(2)
        .jitter(16)
        .degrade_rail(r, 1, gray, 60);
  }
  sim::FaultSchedule::DegradeSpec flicker;
  flicker.latency_add = 40'000;  // +40us on every covered op
  c.at_phase(phase).from(2).once().flaky_rail(0, 1, flicker, 8, 3, 120);
}

/// Degrade + kill: the gray mix above at half intensity, plus one real
/// fatal kill per surviving rank -- the detector must keep degraded (but
/// alive) rails out of the kDead path while still convicting the peers
/// that genuinely die.
inline void mix_degrade_kill(sim::FaultCampaign& c, const std::string& phase,
                             int nprocs) {
  sim::FaultSchedule::DegradeSpec gray;
  gray.latency_mult = 10.0;
  gray.bandwidth_mult = 0.1;
  for (int r = 0; r < nprocs; ++r) {
    c.at_phase(phase)
        .from(1 + r)
        .repeat_every(3 * nprocs)
        .times(2)
        .jitter(16)
        .degrade_rail(r, 1, gray, 60);
    c.at_phase(phase)
        .from(2 + r)
        .repeat_every(2 * nprocs)
        .times(2)
        .jitter(16)
        .kill(r);
  }
}

using MixFn = std::function<void(sim::FaultCampaign&, const std::string&,
                                 int)>;

/// The four seeded mixes of the NAS-under-fault evaluation, in table order.
inline const std::vector<std::pair<std::string, MixFn>>& standard_mixes() {
  static const std::vector<std::pair<std::string, MixFn>> mixes = {
      {"kill", mix_kill},
      {"corrupt+exhaust", mix_corrupt_exhaust},
      {"raildown", mix_raildown},
      {"combined", mix_combined},
  };
  return mixes;
}

/// Gray-failure mixes (degrade-only and degrade+kill), kept separate from
/// standard_mixes() so the original four-mix tables are byte-stable.
inline const std::vector<std::pair<std::string, MixFn>>& gray_mixes() {
  static const std::vector<std::pair<std::string, MixFn>> mixes = {
      {"degrade", mix_degrade},
      {"degrade+kill", mix_degrade_kill},
  };
  return mixes;
}

/// Fabric for the campaign runs: two rails per node so the rail-down mixes
/// have a failure domain to take away and a survivor to fail over to.
inline ib::FabricConfig two_rail_fabric() {
  ib::FabricConfig f;
  f.ports_per_hca = 2;
  return f;
}

/// Channel configuration for all campaign runs: end-to-end integrity on
/// (corruption mixes are silent without it), same design for clean and
/// faulted runs so Mop/s deltas isolate the fault cost.
inline mpi::RuntimeConfig campaign_config(rdmach::Design design) {
  mpi::RuntimeConfig cfg = design_config(design);
  cfg.stack.channel.integrity_check = true;
  return cfg;
}

}  // namespace benchutil
