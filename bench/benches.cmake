# Figure-reproduction benches.  Included from the top-level CMakeLists so
# ${CMAKE_BINARY_DIR}/bench holds only the executables.
set(MPIB_BENCH_DIR ${CMAKE_SOURCE_DIR}/bench)

function(mpib_add_bench name)
  add_executable(${name} ${MPIB_BENCH_DIR}/${name}.cpp)
  target_include_directories(${name} PRIVATE ${MPIB_BENCH_DIR})
  target_link_libraries(${name} PRIVATE mpib_nas)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

mpib_add_bench(tab_raw_verbs)
mpib_add_bench(fig04_05_basic)
mpib_add_bench(fig06_07_piggyback)
mpib_add_bench(fig08_pipeline)
mpib_add_bench(fig09_chunk_sweep)
mpib_add_bench(fig11_zerocopy)
mpib_add_bench(fig13_14_ch3_vs_rdma)
mpib_add_bench(fig15_verbs_read_write)
mpib_add_bench(fig16_nas_a4)
mpib_add_bench(fig17_nas_b8)
mpib_add_bench(abl_adaptive)
mpib_add_bench(abl_integrity)
mpib_add_bench(abl_multirail)
mpib_add_bench(abl_regcache)
mpib_add_bench(abl_tail_update)
mpib_add_bench(abl_threshold)
mpib_add_bench(ext_scalability)
mpib_add_bench(ext_onesided)
mpib_add_bench(ext_rma)
mpib_add_bench(ext_rdma_coll)
mpib_add_bench(ext_multimethod)
mpib_add_bench(nas_profile)
mpib_add_bench(nas_fault)

mpib_add_bench(gb_components)
target_link_libraries(gb_components PRIVATE benchmark::benchmark mpib_rdmach)

# Bench smokes under the `perf` ctest label: the key perf benches run
# end-to-end with reduced sweeps (--smoke), so a bandwidth or latency
# regression surfaces from `ctest -L perf` without the full figure runs.
add_test(NAME perf.smoke.abl_adaptive
         COMMAND abl_adaptive --smoke)
add_test(NAME perf.smoke.fig13_14_ch3_vs_rdma
         COMMAND fig13_14_ch3_vs_rdma --smoke)
add_test(NAME perf.smoke.abl_integrity
         COMMAND abl_integrity --smoke)
add_test(NAME perf.smoke.abl_multirail
         COMMAND abl_multirail --smoke)
add_test(NAME perf.smoke.nas_fault
         COMMAND nas_fault --smoke)
add_test(NAME perf.smoke.nas_grayfault
         COMMAND nas_fault --smoke --gray)
add_test(NAME perf.smoke.ext_scalability
         COMMAND ext_scalability --smoke)
add_test(NAME perf.smoke.ext_onesided
         COMMAND ext_onesided --smoke)
add_test(NAME perf.smoke.ext_rma
         COMMAND ext_rma --smoke)
set_tests_properties(perf.smoke.abl_adaptive perf.smoke.fig13_14_ch3_vs_rdma
                     perf.smoke.abl_integrity perf.smoke.abl_multirail
                     perf.smoke.nas_fault perf.smoke.nas_grayfault
                     perf.smoke.ext_scalability
                     perf.smoke.ext_onesided perf.smoke.ext_rma
  PROPERTIES LABELS perf
             WORKING_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
