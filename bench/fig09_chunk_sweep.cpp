// Figure 9: pipelining bandwidth vs chunk size (section 4.4).  Paper:
// 1K chunks (per-chunk overhead) and 32K chunks (too few slots in flight)
// both perform poorly; 2K-16K are comparable; 16K is chosen.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main() {
  const std::vector<std::size_t> chunks = {1024, 2048, 4096, 8192,
                                           16 * 1024, 32 * 1024};

  benchutil::title(
      "Figure 9: pipelining bandwidth vs chunk size (ring = 128K)");
  std::printf("%8s", "size");
  for (std::size_t c : chunks) {
    std::printf(" %9s", benchutil::human_size(c).c_str());
  }
  std::printf("   (MB/s per chunk size)\n");

  for (std::size_t msg : benchutil::sizes_4_to(1 << 20)) {
    if (msg < 4096) continue;  // the figure starts at 4K
    std::printf("%8s", benchutil::human_size(msg).c_str());
    for (std::size_t c : chunks) {
      mpi::RuntimeConfig cfg =
          benchutil::design_config(rdmach::Design::kPipeline);
      cfg.stack.channel.chunk_bytes = c;
      std::printf(" %9.1f", benchutil::mpi_bandwidth_mbps(cfg, msg));
    }
    std::printf("\n");
  }
  return 0;
}
