// Extension: the multi-method channel of Figure 1 on an SMP-cluster
// layout (2 ranks per node).  Intra-node pairs ride shared memory;
// inter-node pairs ride the zero-copy RDMA design.
#include <cstdio>

#include "bench_util.hpp"

namespace {

double pingpong_usec(int peer, std::size_t msg) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 4, /*ranks_per_node=*/2);
  mpi::RuntimeConfig cfg;
  cfg.stack.channel.design = rdmach::Design::kMultiMethod;
  sim::Tick elapsed = 0;
  constexpr int kIters = 20;
  job.launch([&, peer, msg](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<std::byte> buf(msg);
    const int n = static_cast<int>(msg);
    if (world.rank() == 0) {
      co_await world.send(buf.data(), n, mpi::Datatype::kByte, peer, 0);
      co_await world.recv(buf.data(), n, mpi::Datatype::kByte, peer, 0);
      const sim::Tick t0 = ctx.sim().now();
      for (int i = 0; i < kIters; ++i) {
        co_await world.send(buf.data(), n, mpi::Datatype::kByte, peer, 0);
        co_await world.recv(buf.data(), n, mpi::Datatype::kByte, peer, 0);
      }
      elapsed = ctx.sim().now() - t0;
    } else if (world.rank() == peer) {
      for (int i = 0; i < kIters + 1; ++i) {
        co_await world.recv(buf.data(), n, mpi::Datatype::kByte, 0, 0);
        co_await world.send(buf.data(), n, mpi::Datatype::kByte, 0, 0);
      }
    }
    co_await rt.finalize();
  });
  sim.run();
  return sim::to_usec(elapsed) / (2 * kIters);
}

}  // namespace

int main() {
  benchutil::title(
      "Extension: multi-method channel, 4 ranks on 2 nodes (MPI latency, us)");
  std::printf("%8s %18s %18s %9s\n", "size", "intra-node (shm)",
              "inter-node (IB)", "ratio");
  for (std::size_t s : benchutil::sizes_4_to(256 * 1024)) {
    const double local = pingpong_usec(1, s);
    const double remote = pingpong_usec(2, s);
    std::printf("%8s %18.2f %18.2f %8.1fx\n",
                benchutil::human_size(s).c_str(), local, remote,
                remote / local);
  }
  return 0;
}
