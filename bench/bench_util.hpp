// Shared measurement harness for the figure-reproduction benches.
//
// Methodology mirrors the paper (section 4.2.1): latency is half the
// average ping-pong round trip; bandwidth sends back-to-back windows of W
// messages, waits for them to finish, and repeats, deriving MB/s (MB =
// 1e6 bytes) from total bytes and total time.  All numbers are virtual
// time from the deterministic simulation: rerunning a bench reproduces
// them exactly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "ib/fabric.hpp"
#include "mpi/runtime.hpp"
#include "nas/nas.hpp"
#include "pmi/pmi.hpp"

namespace benchutil {

inline mpi::RuntimeConfig stack_config(ch3::Stack stack,
                                       rdmach::Design design) {
  mpi::RuntimeConfig cfg;
  cfg.stack.stack = stack;
  cfg.stack.channel.design = design;
  return cfg;
}

inline mpi::RuntimeConfig design_config(rdmach::Design design) {
  return stack_config(ch3::Stack::kRdmaChannel, design);
}

/// Runs a 2-rank MPI job; `body` executes on both ranks.  `fcfg` selects
/// the fabric model (rail counts, per-rail link speeds); the default is
/// the calibrated single-rail fabric every figure bench uses.
inline void run_pair(
    const mpi::RuntimeConfig& cfg,
    const std::function<sim::Task<void>(mpi::Communicator&, pmi::Context&)>&
        body,
    const ib::FabricConfig& fcfg = {}) {
  sim::Simulator sim;
  ib::Fabric fabric(sim, fcfg);
  pmi::Job job(fabric, 2);
  job.launch([&cfg, body](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    co_await body(rt.world(), ctx);
    co_await rt.finalize();
  });
  sim.run();
}

/// run_pair variant whose body also receives the Runtime -- for benches
/// that read engine/channel statistics before finalize.
inline void run_pair_rt(
    const mpi::RuntimeConfig& cfg,
    const std::function<sim::Task<void>(mpi::Runtime&, mpi::Communicator&,
                                        pmi::Context&)>& body,
    const ib::FabricConfig& fcfg = {}) {
  sim::Simulator sim;
  ib::Fabric fabric(sim, fcfg);
  pmi::Job job(fabric, 2);
  job.launch([&cfg, body](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    co_await body(rt, rt.world(), ctx);
    co_await rt.finalize();
  });
  sim.run();
}

/// One-way MPI latency in microseconds for `msg`-byte messages.
inline double mpi_latency_usec(const mpi::RuntimeConfig& cfg, std::size_t msg,
                               int iters = 30,
                               const ib::FabricConfig& fcfg = {}) {
  sim::Tick elapsed = 0;
  run_pair(cfg, [msg, iters, &elapsed](mpi::Communicator& world,
                                       pmi::Context& ctx) -> sim::Task<void> {
    std::vector<std::byte> buf(msg > 0 ? msg : 1);
    const int n = static_cast<int>(msg);
    if (world.rank() == 0) {
      co_await world.send(buf.data(), n, mpi::Datatype::kByte, 1, 0);
      co_await world.recv(buf.data(), n, mpi::Datatype::kByte, 1, 0);
      const sim::Tick t0 = ctx.sim().now();
      for (int i = 0; i < iters; ++i) {
        co_await world.send(buf.data(), n, mpi::Datatype::kByte, 1, 0);
        co_await world.recv(buf.data(), n, mpi::Datatype::kByte, 1, 0);
      }
      elapsed = ctx.sim().now() - t0;
    } else {
      for (int i = 0; i < iters + 1; ++i) {
        co_await world.recv(buf.data(), n, mpi::Datatype::kByte, 0, 0);
        co_await world.send(buf.data(), n, mpi::Datatype::kByte, 0, 0);
      }
    }
  }, fcfg);
  return sim::to_usec(elapsed) / (2.0 * iters);
}

/// Streaming MPI bandwidth (MB/s, MB = 1e6 B) at message size `msg`.
inline double mpi_bandwidth_mbps(const mpi::RuntimeConfig& cfg,
                                 std::size_t msg, std::size_t total_bytes = 0,
                                 int window = 16,
                                 const ib::FabricConfig& fcfg = {}) {
  if (total_bytes == 0) {
    total_bytes = std::max<std::size_t>(msg * 128, 8u << 20);
    total_bytes = std::min<std::size_t>(total_bytes, 64u << 20);
  }
  int rounds = static_cast<int>(total_bytes / (msg * window));
  // Small messages reach steady state within a few windows; cap the count
  // so tiny-message sweeps stay fast.
  rounds = std::min(rounds, 2048 / window);
  rounds = std::max(rounds, 1);
  sim::Tick elapsed = 0;
  std::size_t moved = 0;
  run_pair(cfg, [msg, window, rounds, &elapsed, &moved](
                    mpi::Communicator& world,
                    pmi::Context& ctx) -> sim::Task<void> {
    std::vector<std::vector<std::byte>> bufs(
        static_cast<std::size_t>(window), std::vector<std::byte>(msg));
    const int n = static_cast<int>(msg);
    // Each round is handshaked so the receiver's window is pre-posted
    // before the sender fires (standard bandwidth-test methodology; it
    // keeps the measurement on the transport, not on the unexpected-
    // message copy path).
    std::byte token{1};
    if (world.rank() == 0) {
      const sim::Tick t0 = ctx.sim().now();
      for (int r = 0; r < rounds; ++r) {
        co_await world.recv(&token, 1, mpi::Datatype::kByte, 1, 1);
        std::vector<mpi::Request> reqs;
        for (int w = 0; w < window; ++w) {
          reqs.push_back(co_await world.isend(
              bufs[static_cast<std::size_t>(w)].data(), n,
              mpi::Datatype::kByte, 1, 0));
        }
        co_await world.wait_all(reqs);
      }
      // Final handshake so the clock covers delivery of the last window.
      co_await world.recv(&token, 1, mpi::Datatype::kByte, 1, 2);
      elapsed = ctx.sim().now() - t0;
    } else {
      for (int r = 0; r < rounds; ++r) {
        std::vector<mpi::Request> reqs;
        for (int w = 0; w < window; ++w) {
          reqs.push_back(co_await world.irecv(
              bufs[static_cast<std::size_t>(w)].data(), n,
              mpi::Datatype::kByte, 0, 0));
        }
        co_await world.send(&token, 1, mpi::Datatype::kByte, 0, 1);
        co_await world.wait_all(reqs);
      }
      co_await world.send(&token, 1, mpi::Datatype::kByte, 0, 2);
    }
  }, fcfg);
  moved = msg * static_cast<std::size_t>(window) *
          static_cast<std::size_t>(rounds);
  return sim::bandwidth_mbps(static_cast<std::int64_t>(moved), elapsed);
}

/// Runs one NAS kernel on `nprocs` ranks; returns rank 0's Result.
inline nas::Result run_nas(const std::string& name, int nprocs,
                           nas::Class cls, const mpi::RuntimeConfig& cfg) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, nprocs);
  nas::Result result;
  job.launch([&, name, cls](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    nas::Result r = co_await nas::kernel(name)(rt.world(), ctx, cls);
    if (ctx.rank == 0) result = r;
    co_await rt.finalize();
  });
  sim.run();
  return result;
}

/// Message-size sweeps used across the figures.
inline std::vector<std::size_t> sizes_4_to(std::size_t max) {
  std::vector<std::size_t> v;
  for (std::size_t s = 4; s <= max; s *= 4) v.push_back(s);
  return v;
}
inline std::vector<std::size_t> sizes_pow2(std::size_t from, std::size_t to) {
  std::vector<std::size_t> v;
  for (std::size_t s = from; s <= to; s *= 2) v.push_back(s);
  return v;
}

inline std::string human_size(std::size_t s) {
  if (s >= (1u << 20) && s % (1u << 20) == 0) {
    return std::to_string(s >> 20) + "M";
  }
  if (s >= 1024 && s % 1024 == 0) return std::to_string(s >> 10) + "K";
  return std::to_string(s);
}

inline void title(const std::string& t) {
  std::printf("\n=== %s ===\n", t.c_str());
}

/// Machine-readable bench output: rows of (series, message size, value)
/// collected during a run and dumped as one JSON file next to the console
/// tables, so plots and regression checks need no text scraping.
class JsonResult {
 public:
  explicit JsonResult(std::string bench) : bench_(std::move(bench)) {}

  void add(const std::string& series, std::size_t msg_bytes, double value,
           const std::string& unit) {
    rows_.push_back(Row{series, unit, msg_bytes, value});
  }

  /// Writes `path` (overwriting); returns false when the file cannot be
  /// opened.  Values use enough digits to round-trip a double.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n",
                 bench_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f,
                   "    {\"series\": \"%s\", \"msg_bytes\": %zu, "
                   "\"value\": %.17g, \"unit\": \"%s\"}%s\n",
                   r.series.c_str(), r.msg_bytes, r.value, r.unit.c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  struct Row {
    std::string series;
    std::string unit;
    std::size_t msg_bytes;
    double value;
  };
  std::string bench_;
  std::vector<Row> rows_;
};

/// True when argv carries --smoke: benches then run reduced sweeps so the
/// `perf`-labelled ctest smokes stay fast.
inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

}  // namespace benchutil
