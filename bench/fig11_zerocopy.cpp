// Figure 11: MPI bandwidth, pipelining vs zero-copy (section 5).  Paper
// anchors: zero-copy peaks at 857 MB/s (vs 870 raw); the pipelining curve
// *drops* for large messages (cache effect on the copies).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  const mpi::RuntimeConfig pipe =
      benchutil::design_config(rdmach::Design::kPipeline);
  const mpi::RuntimeConfig zc =
      benchutil::design_config(rdmach::Design::kZeroCopy);

  benchutil::title(
      "Figure 11: MPI bandwidth, pipelining vs zero-copy (paper: 857 MB/s peak)");
  std::printf("%8s %16s %16s\n", "size", "pipeline MB/s", "zero-copy MB/s");
  for (std::size_t s : benchutil::sizes_4_to(1 << 20)) {
    std::printf("%8s %16.1f %16.1f\n", benchutil::human_size(s).c_str(),
                benchutil::mpi_bandwidth_mbps(pipe, s),
                benchutil::mpi_bandwidth_mbps(zc, s));
  }
  return 0;
}
