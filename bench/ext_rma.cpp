// Extension: scalable one-sided RMA epochs (foMPI direction).  The fence
// path closes every epoch with a collective barrier, so its per-op cost
// grows with the rank count even when a rank talks to one neighbour.  The
// passive-target path (lock_all + flush) completes an origin's RDMA over
// its own CQ -- no barrier, no target involvement -- so halo-style
// small-put latency stays flat as the job grows.  Three patterns:
//
//   * ring/halo small puts (8..256 B) at 64+ ranks: per-iteration latency
//     of put+fence vs put+flush vs two-sided isend/recv,
//   * random-target puts with periodic flush_all (the irregular-access
//     pattern one-sided exists for),
//   * 2-rank large-message streaming goodput: windowed puts + flush vs
//     the two-sided rendezvous path at the same sizes.
//
// Emits BENCH_rma.json with every measured point.
#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "mpi/window.hpp"

namespace {

constexpr int kQpBudget = 32;
constexpr std::size_t kSrqRings = 32;

/// Same rank-dimension scaling knobs as ext_scalability: the two-sided
/// bootstrap traffic (barriers, allreduce in window creation) stays
/// O(active peers) while the window wires its own dedicated QP mesh.
mpi::RuntimeConfig lazy_config() {
  mpi::RuntimeConfig cfg = benchutil::design_config(rdmach::Design::kZeroCopy);
  cfg.stack.channel.lazy_connect = true;
  cfg.stack.channel.qp_budget = kQpBudget;
  cfg.stack.channel.srq_pool_rings = kSrqRings;
  return cfg;
}

enum class Sync { kFence, kFlush, kTwoSided };

/// Ring/halo: every rank sends `msg` bytes to its right neighbour each
/// iteration; the sync mode is the variable.  Returns rank 0's
/// per-iteration latency in us.
double run_halo(int p, std::size_t msg, Sync sync, int iters) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, p);
  const mpi::RuntimeConfig cfg = lazy_config();
  double out = 0;
  job.launch([&, msg, sync, iters, p](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    const int me = world.rank();
    const int right = (me + 1) % p;
    const int left = (me + p - 1) % p;
    const int n = static_cast<int>(msg);
    std::vector<std::byte> wmem(msg), src(msg);

    if (sync == Sync::kTwoSided) {
      co_await world.barrier();
      const sim::Tick t0 = ctx.sim().now();
      for (int i = 0; i < iters; ++i) {
        std::vector<mpi::Request> reqs;
        reqs.push_back(co_await world.irecv(wmem.data(), n,
                                            mpi::Datatype::kByte, left, 0));
        co_await world.send(src.data(), n, mpi::Datatype::kByte, right, 0);
        co_await world.wait_all(reqs);
      }
      if (me == 0) out = sim::to_usec(ctx.sim().now() - t0) / iters;
      co_await world.barrier();
    } else {
      auto win = co_await mpi::Window::create(world, wmem.data(), msg);
      co_await win->fence();
      if (sync == Sync::kFlush) win->lock_all();
      const sim::Tick t0 = ctx.sim().now();
      for (int i = 0; i < iters; ++i) {
        co_await win->put(src.data(), n, mpi::Datatype::kByte, right, 0);
        if (sync == Sync::kFence) {
          co_await win->fence();
        } else {
          co_await win->flush(right);
        }
      }
      if (me == 0) out = sim::to_usec(ctx.sim().now() - t0) / iters;
      if (sync == Sync::kFlush) co_await win->unlock_all();
      co_await win->fence();
    }
    co_await rt.finalize();
  });
  sim.run();
  return out;
}

/// Random-target puts (the irregular-access pattern): each rank fires
/// `ops` puts of `msg` bytes at deterministic pseudo-random targets,
/// flushing all targets every 16 ops.  Returns aggregate us per op.
double run_random(int p, std::size_t msg, int ops) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, p);
  const mpi::RuntimeConfig cfg = lazy_config();
  sim::Tick elapsed = 0;
  job.launch([&, msg, ops, p](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    const int me = world.rank();
    const int n = static_cast<int>(msg);
    // Every origin owns a private displacement, so concurrent writes to
    // one target never overlap.
    std::vector<std::byte> wmem(msg * static_cast<std::size_t>(p));
    std::vector<std::byte> src(msg);
    auto win = co_await mpi::Window::create(world, wmem.data(), wmem.size());
    co_await win->fence();
    win->lock_all();
    std::minstd_rand rng(static_cast<unsigned>(me + 1));
    co_await world.barrier();
    const sim::Tick t0 = ctx.sim().now();
    for (int i = 0; i < ops; ++i) {
      int target = static_cast<int>(rng() % static_cast<unsigned>(p - 1));
      if (target >= me) ++target;  // never self
      co_await win->put(src.data(), n, mpi::Datatype::kByte, target,
                        msg * static_cast<std::size_t>(me));
      if ((i + 1) % 16 == 0) co_await win->flush_all();
    }
    co_await win->unlock_all();
    co_await world.barrier();
    if (me == 0) elapsed = ctx.sim().now() - t0;
    co_await win->fence();
    co_await rt.finalize();
  });
  sim.run();
  return sim::to_usec(elapsed) /
         (static_cast<double>(ops) * static_cast<double>(p));
}

/// 2-rank streaming goodput: rank 0 fires windows of `window` puts of
/// `msg` bytes and flushes; MB/s over the whole run.
double run_put_bw(std::size_t msg, int window, int rounds) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, 2);
  const mpi::RuntimeConfig cfg =
      benchutil::design_config(rdmach::Design::kZeroCopy);
  sim::Tick elapsed = 0;
  job.launch([&, msg, window, rounds](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, cfg);
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    std::vector<std::byte> wmem(msg * static_cast<std::size_t>(window));
    auto win = co_await mpi::Window::create(world, wmem.data(), wmem.size());
    co_await win->fence();
    if (world.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs(
          static_cast<std::size_t>(window), std::vector<std::byte>(msg));
      win->lock_all();
      const sim::Tick t0 = ctx.sim().now();
      for (int r = 0; r < rounds; ++r) {
        for (int w = 0; w < window; ++w) {
          co_await win->put(bufs[static_cast<std::size_t>(w)].data(),
                            static_cast<int>(msg), mpi::Datatype::kByte, 1,
                            msg * static_cast<std::size_t>(w));
        }
        co_await win->flush(1);
      }
      elapsed = ctx.sim().now() - t0;
      co_await win->unlock_all();
    }
    co_await win->fence();
    co_await rt.finalize();
  });
  sim.run();
  const std::size_t moved = msg * static_cast<std::size_t>(window) *
                            static_cast<std::size_t>(rounds);
  return sim::bandwidth_mbps(static_cast<std::int64_t>(moved), elapsed);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::smoke_mode(argc, argv);
  benchutil::title(
      "Extension: one-sided RMA epochs -- flush vs fence vs two-sided");
  std::printf("config: lazy_connect=on qp_budget=%d srq_pool_rings=%zu%s\n",
              kQpBudget, kSrqRings, smoke ? "  [--smoke]" : "");

  benchutil::JsonResult json("ext_rma");
  const std::vector<int> halo_ranks = smoke ? std::vector<int>{16}
                                            : std::vector<int>{64, 128};
  const std::vector<std::size_t> halo_sizes =
      smoke ? std::vector<std::size_t>{8, 256}
            : std::vector<std::size_t>{8, 64, 256};
  const int halo_iters = smoke ? 10 : 30;

  std::printf("\n-- ring/halo per-iteration latency (us): put+sync to right "
              "neighbour --\n");
  std::printf("%6s %6s %12s %12s %12s %10s\n", "ranks", "size", "put+fence",
              "put+flush", "two-sided", "speedup");
  for (int p : halo_ranks) {
    for (std::size_t s : halo_sizes) {
      const double fence_us = run_halo(p, s, Sync::kFence, halo_iters);
      const double flush_us = run_halo(p, s, Sync::kFlush, halo_iters);
      const double two_us = run_halo(p, s, Sync::kTwoSided, halo_iters);
      const double speedup = flush_us > 0 ? fence_us / flush_us : 0;
      std::printf("%6d %6s %12.2f %12.2f %12.2f %9.1fx\n", p,
                  benchutil::human_size(s).c_str(), fence_us, flush_us,
                  two_us, speedup);
      const std::size_t key = s;
      const std::string tag = "_p" + std::to_string(p);
      json.add("halo_fence_us" + tag, key, fence_us, "us");
      json.add("halo_flush_us" + tag, key, flush_us, "us");
      json.add("halo_twosided_us" + tag, key, two_us, "us");
      json.add("halo_flush_speedup" + tag, key, speedup, "x");
    }
  }

  std::printf("\n-- random-target puts, flush_all every 16 ops (aggregate "
              "us/op) --\n");
  const std::vector<int> rand_ranks = smoke ? std::vector<int>{16}
                                            : std::vector<int>{64, 128};
  const int rand_ops = smoke ? 64 : 256;
  std::printf("%6s %8s %12s\n", "ranks", "ops/rk", "us/op");
  for (int p : rand_ranks) {
    const double usop = run_random(p, 256, rand_ops);
    std::printf("%6d %8d %12.3f\n", p, rand_ops, usop);
    json.add("random_put_usop", static_cast<std::size_t>(p), usop, "us");
  }

  std::printf("\n-- 2-rank large-message streaming goodput (MB/s) --\n");
  std::printf("%8s %12s %14s\n", "size", "rma put", "two-sided");
  const std::vector<std::size_t> bw_sizes =
      smoke ? std::vector<std::size_t>{256 * 1024, 1u << 20}
            : std::vector<std::size_t>{256 * 1024, 1u << 20, 4u << 20};
  const int bw_rounds = smoke ? 4 : 8;
  for (std::size_t s : bw_sizes) {
    const double rma = run_put_bw(s, 16, bw_rounds);
    const double two = benchutil::mpi_bandwidth_mbps(
        benchutil::design_config(rdmach::Design::kZeroCopy), s);
    std::printf("%8s %12.1f %14.1f\n", benchutil::human_size(s).c_str(), rma,
                two);
    json.add("rma_put_mbps", s, rma, "MB/s");
    json.add("twosided_mbps", s, two, "MB/s");
  }

  json.write("BENCH_rma.json");

  std::printf(
      "\nFence pays a p-wide barrier per epoch, so its small-put cost grows\n"
      "with the job; flush completes over the origin's CQ alone and stays\n"
      "flat.  Large puts stream at the same goodput as the two-sided\n"
      "rendezvous path minus its handshake, straight from the registered\n"
      "window.\n");
  return 0;
}
