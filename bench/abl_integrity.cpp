// Ablation: the end-to-end integrity option's cost.
//
// `integrity_check` adds a CRC32C over every ring slot (header + payload),
// rendezvous payload checksums carried in RTS/FIN, and value+CRC pairs on
// the control-block replica writes -- all charged to the modeled memory
// bus.  This bench sweeps latency and bandwidth with the knob off (the
// default; wire format and figures bit-identical to the pre-integrity
// code) and on, per design, so the protection's overhead stays visible.
// Emits BENCH_integrity.json with every measured point.
#include <cstdio>

#include "bench_util.hpp"

namespace {

struct Series {
  const char* name;
  mpi::RuntimeConfig cfg;
};

mpi::RuntimeConfig with_integrity(rdmach::Design design) {
  mpi::RuntimeConfig cfg = benchutil::design_config(design);
  cfg.stack.channel.integrity_check = true;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::smoke_mode(argc, argv);
  benchutil::JsonResult json("abl_integrity");

  const Series series[] = {
      {"pipeline", benchutil::design_config(rdmach::Design::kPipeline)},
      {"pipeline+crc", with_integrity(rdmach::Design::kPipeline)},
      {"adaptive", benchutil::design_config(rdmach::Design::kAdaptive)},
      {"adaptive+crc", with_integrity(rdmach::Design::kAdaptive)},
  };

  benchutil::title("Integrity ablation: MPI latency (us)");
  std::printf("%8s", "size");
  for (const Series& s : series) std::printf(" %14s", s.name);
  std::printf("\n");
  for (const std::size_t sz :
       benchutil::sizes_4_to(smoke ? 256 : 16 * 1024)) {
    std::printf("%8s", benchutil::human_size(sz).c_str());
    for (const Series& s : series) {
      const double us = benchutil::mpi_latency_usec(s.cfg, sz);
      std::printf(" %14.2f", us);
      json.add(std::string("latency-") + s.name, sz, us, "us");
    }
    std::printf("\n");
  }

  benchutil::title("Integrity ablation: MPI bandwidth (MB/s)");
  std::printf("%8s", "size");
  for (const Series& s : series) std::printf(" %14s", s.name);
  std::printf("\n");
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64 * 1024, 256 * 1024}
            : benchutil::sizes_pow2(4 * 1024, 1 << 20);
  for (const std::size_t sz : sizes) {
    std::printf("%8s", benchutil::human_size(sz).c_str());
    for (const Series& s : series) {
      const double mbps = benchutil::mpi_bandwidth_mbps(s.cfg, sz);
      std::printf(" %14.1f", mbps);
      json.add(std::string("bandwidth-") + s.name, sz, mbps, "MB/s");
    }
    std::printf("\n");
  }

  json.write("BENCH_integrity.json");
  return 0;
}
