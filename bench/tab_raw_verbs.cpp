// Raw verbs-level numbers quoted in section 4.2.1: the calibration anchor
// of the whole model.  Paper: 5.9 us small RDMA write latency, 870 MB/s
// peak bandwidth.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/mr.hpp"
#include "ib/qp.hpp"

namespace {

struct VerbsPair {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  ib::Node* a;
  ib::Node* b;
  ib::ProtectionDomain* pda;
  ib::ProtectionDomain* pdb;
  ib::CompletionQueue* cqa;
  ib::QueuePair* qpa;

  VerbsPair() {
    a = &fabric.add_node("a");
    b = &fabric.add_node("b");
    pda = &a->hca().alloc_pd();
    pdb = &b->hca().alloc_pd();
    cqa = &a->hca().create_cq("cqa");
    auto& cqb = b->hca().create_cq("cqb");
    qpa = &a->hca().create_qp(*pda, *cqa, *cqa);
    auto& qpb = b->hca().create_qp(*pdb, cqb, cqb);
    qpa->connect(qpb);
  }
};

double write_latency_usec(std::size_t msg) {
  VerbsPair p;
  static std::vector<std::byte> src(1 << 20), dst(1 << 20);
  sim::Tick elapsed = 0;
  constexpr int kIters = 20;
  p.sim.spawn(
      [](VerbsPair& vp, std::size_t m, sim::Tick& out) -> sim::Task<void> {
        ib::MemoryRegion* ms = co_await vp.pda->register_memory(src.data(), m);
        ib::MemoryRegion* md = co_await vp.pdb->register_memory(dst.data(), m);
        const sim::Tick t0 = vp.sim.now();
        for (int i = 0; i < kIters; ++i) {
          vp.qpa->post_send(ib::SendWr{
              static_cast<std::uint64_t>(i), ib::Opcode::kRdmaWrite,
              {ib::Sge{src.data(), m, ms->lkey()}},
              reinterpret_cast<std::uint64_t>(dst.data()), md->rkey(), true});
          (void)co_await vp.cqa->next();
        }
        // Completion includes the ack; one-way latency excludes it.
        out = (vp.sim.now() - t0) / kIters -
              vp.fabric.cfg().ack_latency;
      }(p, msg, elapsed),
      "lat");
  p.sim.run();
  return sim::to_usec(elapsed);
}

double write_bandwidth_mbps(std::size_t msg) {
  VerbsPair p;
  static std::vector<std::byte> src(1 << 20), dst(1 << 20);
  sim::Tick elapsed = 0;
  constexpr int kCount = 32;
  p.sim.spawn(
      [](VerbsPair& vp, std::size_t m, sim::Tick& out) -> sim::Task<void> {
        ib::MemoryRegion* ms = co_await vp.pda->register_memory(src.data(), m);
        ib::MemoryRegion* md = co_await vp.pdb->register_memory(dst.data(), m);
        const sim::Tick t0 = vp.sim.now();
        for (int i = 0; i < kCount; ++i) {
          vp.qpa->post_send(ib::SendWr{
              static_cast<std::uint64_t>(i), ib::Opcode::kRdmaWrite,
              {ib::Sge{src.data(), m, ms->lkey()}},
              reinterpret_cast<std::uint64_t>(dst.data()), md->rkey(), true});
        }
        for (int i = 0; i < kCount; ++i) (void)co_await vp.cqa->next();
        out = vp.sim.now() - t0;
      }(p, msg, elapsed),
      "bw");
  p.sim.run();
  return sim::bandwidth_mbps(static_cast<std::int64_t>(msg) * kCount,
                             elapsed);
}

}  // namespace

int main() {
  benchutil::title(
      "Raw InfiniBand verbs performance (paper section 4.2.1 text)");
  std::printf("%-34s %12s %12s\n", "metric", "measured", "paper");
  std::printf("%-34s %9.2f us %9.1f us\n", "RDMA write latency (4 B)",
              write_latency_usec(4), 5.9);
  std::printf("%-34s %7.0f MB/s %7.0f MB/s\n",
              "RDMA write peak bandwidth (1 MB)",
              write_bandwidth_mbps(1 << 20), 870.0);
  std::printf("\nLatency vs message size (verbs RDMA write):\n");
  std::printf("%8s %12s\n", "size", "latency us");
  for (std::size_t s : benchutil::sizes_4_to(16 * 1024)) {
    std::printf("%8s %12.2f\n", benchutil::human_size(s).c_str(),
                write_latency_usec(s));
  }
  return 0;
}
