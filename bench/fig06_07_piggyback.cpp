// Figures 6 and 7: the piggybacking optimization (section 4.3).
// Paper anchors: latency drops from 18.6 us to 7.4 us; small-message
// bandwidth improves substantially.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  const mpi::RuntimeConfig basic =
      benchutil::design_config(rdmach::Design::kBasic);
  const mpi::RuntimeConfig piggy =
      benchutil::design_config(rdmach::Design::kPiggyback);

  benchutil::title(
      "Figure 6: MPI small-message latency (paper: 18.6 -> 7.4 us)");
  std::printf("%8s %14s %14s\n", "size", "basic (us)", "piggyback (us)");
  for (std::size_t s : benchutil::sizes_4_to(16 * 1024)) {
    std::printf("%8s %14.2f %14.2f\n", benchutil::human_size(s).c_str(),
                benchutil::mpi_latency_usec(basic, s),
                benchutil::mpi_latency_usec(piggy, s));
  }

  benchutil::title("Figure 7: MPI small-message bandwidth");
  std::printf("%8s %14s %14s\n", "size", "basic MB/s", "piggyback MB/s");
  for (std::size_t s : benchutil::sizes_4_to(16 * 1024)) {
    std::printf("%8s %14.1f %14.1f\n", benchutil::human_size(s).c_str(),
                benchutil::mpi_bandwidth_mbps(basic, s),
                benchutil::mpi_bandwidth_mbps(piggy, s));
  }
  return 0;
}
