// Figure 15: InfiniBand verbs-level bandwidth, RDMA write vs RDMA read.
// Paper: write has a clear advantage for mid-sized messages (the
// outstanding-read limit makes each read pay its request round trip);
// the curves converge at 1M.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/mr.hpp"
#include "ib/qp.hpp"

namespace {

double verbs_bw(ib::Opcode op, std::size_t msg) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  ib::Node& a = fabric.add_node("a");
  ib::Node& b = fabric.add_node("b");
  ib::ProtectionDomain& pda = a.hca().alloc_pd();
  ib::ProtectionDomain& pdb = b.hca().alloc_pd();
  ib::CompletionQueue& cqa = a.hca().create_cq("cqa");
  ib::CompletionQueue& cqb = b.hca().create_cq("cqb");
  ib::QueuePair& qpa = a.hca().create_qp(pda, cqa, cqa);
  ib::QueuePair& qpb = b.hca().create_qp(pdb, cqb, cqb);
  qpa.connect(qpb);

  static std::vector<std::byte> x(1 << 20), y(1 << 20);
  sim::Tick elapsed = 0;
  constexpr int kCount = 32;
  sim.spawn(
      [](ib::ProtectionDomain& pa, ib::ProtectionDomain& pb,
         ib::QueuePair& qp, ib::CompletionQueue& cq, ib::Opcode o,
         std::size_t m, sim::Tick& out) -> sim::Task<void> {
        ib::MemoryRegion* ma = co_await pa.register_memory(x.data(), m);
        ib::MemoryRegion* mb = co_await pb.register_memory(y.data(), m);
        const sim::Tick t0 = qp.hca().fabric().sim().now();
        for (int i = 0; i < kCount; ++i) {
          qp.post_send(ib::SendWr{static_cast<std::uint64_t>(i), o,
                                  {ib::Sge{x.data(), m, ma->lkey()}},
                                  reinterpret_cast<std::uint64_t>(y.data()),
                                  mb->rkey(), true});
        }
        for (int i = 0; i < kCount; ++i) (void)co_await cq.next();
        out = qp.hca().fabric().sim().now() - t0;
      }(pda, pdb, qpa, cqa, op, msg, elapsed),
      "bw");
  sim.run();
  return sim::bandwidth_mbps(static_cast<std::int64_t>(msg) * kCount,
                             elapsed);
}

}  // namespace

int main() {
  benchutil::title(
      "Figure 15: verbs-level bandwidth, RDMA write vs RDMA read");
  std::printf("%8s %14s %14s\n", "size", "write MB/s", "read MB/s");
  for (std::size_t s : benchutil::sizes_pow2(4096, 1 << 20)) {
    std::printf("%8s %14.1f %14.1f\n", benchutil::human_size(s).c_str(),
                verbs_bw(ib::Opcode::kRdmaWrite, s),
                verbs_bw(ib::Opcode::kRdmaRead, s));
  }
  return 0;
}
