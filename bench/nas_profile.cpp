// Communication profile of the NAS kernels: message counts, RDMA
// operation mix, and bytes on the wire for each benchmark (class A,
// 4 nodes, zero-copy stack).  This is the workload characterization that
// explains Figures 16/17: which kernels are latency-bound (many small
// sends, LU), which are bandwidth-bound (few huge alltoalls, FT/IS), and
// why the design differences are small for the rest.
#include <cstdio>

#include "bench_util.hpp"
#include "ib/hca.hpp"

int main() {
  benchutil::title(
      "NAS communication profile (class A, 4 nodes, zero-copy stack)");
  std::printf("%-4s %9s %10s %10s %10s %12s %12s %9s\n", "bm", "time ms",
              "sends/rk", "unexp/rk", "writes", "reads", "wire MB", "Mop/s");

  for (const auto& [name, fn] : nas::suite()) {
    sim::Simulator sim;
    ib::Fabric fabric(sim);
    pmi::Job job(fabric, 4);
    nas::Result result;
    std::uint64_t sends = 0, unexpected = 0;
    job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
      mpi::Runtime rt(ctx, {});
      co_await rt.init();
      nas::Result r = co_await nas::kernel(name)(rt.world(), ctx,
                                                 nas::Class::A);
      if (ctx.rank == 0) result = r;
      sends += rt.engine().sends;
      unexpected += rt.engine().unexpected_hits;
      co_await rt.finalize();
    });
    sim.run();

    std::uint64_t writes = 0, reads = 0;
    std::int64_t wire_bytes = 0;
    for (std::size_t n = 0; n < fabric.node_count(); ++n) {
      writes += fabric.node(n).hca().writes_posted;
      reads += fabric.node(n).hca().reads_posted;
      wire_bytes += fabric.node(n).hca().bytes_tx;
    }
    std::printf("%-4s %9.2f %10.1f %10.1f %10lu %12lu %12.1f %9.1f\n",
                result.name.c_str(), result.time_sec * 1e3, sends / 4.0,
                unexpected / 4.0, static_cast<unsigned long>(writes),
                static_cast<unsigned long>(reads),
                static_cast<double>(wire_bytes) / 1e6, result.mops);
  }
  std::printf(
      "\n(sends include collectives' internal point-to-point traffic;\n"
      " reads are the zero-copy rendezvous pulls)\n");
  return 0;
}
