// Ablation: multi-rail striping of the adaptive rendezvous engine.
//
// Sweeps MPI bandwidth with the node built as 1, 2, and 4 rails (1x1,
// 2 HCAs x 1 port, 2 HCAs x 2 ports).  Large rendezvous stripe their
// chunk reads and write rounds across the rails, so two 870 MB/s rails
// lift the >= 1MB plateau until the shared 1600 MB/s node memory bus
// takes over as the cap -- which is also why four rails buy nothing over
// two on this testbed, exactly as PCI-X did on paper-era dual-port
// InfiniHosts.  A second section pits the learned weighted stripe policy
// against naive strict round-robin on an asymmetric fast+slow fabric.
// Emits BENCH_multirail.json with every measured point.
#include <cstdio>

#include "bench_util.hpp"

namespace {

ib::FabricConfig rails(int num_hcas, int ports_per_hca) {
  ib::FabricConfig f;
  f.num_hcas = num_hcas;
  f.ports_per_hca = ports_per_hca;
  return f;
}

struct Series {
  const char* name;
  ib::FabricConfig fcfg;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::smoke_mode(argc, argv);
  benchutil::JsonResult json("abl_multirail");
  const mpi::RuntimeConfig cfg =
      benchutil::design_config(rdmach::Design::kAdaptive);

  const Series series[] = {
      {"rails1", rails(1, 1)},
      {"rails2", rails(2, 1)},
      {"rails4", rails(2, 2)},
  };

  benchutil::title("Multi-rail ablation: MPI bandwidth (MB/s), adaptive");
  std::printf("%8s", "size");
  for (const Series& s : series) std::printf(" %12s", s.name);
  std::printf(" %12s\n", "2r/1r");
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{256u << 10, 1u << 20}
            : benchutil::sizes_pow2(64 * 1024, 8u << 20);
  for (const std::size_t sz : sizes) {
    std::printf("%8s", benchutil::human_size(sz).c_str());
    double one = 0.0;
    double two = 0.0;
    for (const Series& s : series) {
      const double mbps =
          benchutil::mpi_bandwidth_mbps(cfg, sz, 32u << 20, 16, s.fcfg);
      std::printf(" %12.1f", mbps);
      json.add(s.name, sz, mbps, "MB/s");
      if (s.fcfg.num_rails() == 1) one = mbps;
      if (s.fcfg.num_rails() == 2) two = mbps;
    }
    const double ratio = one > 0.0 ? two / one : 0.0;
    std::printf(" %12.2f\n", ratio);
    json.add("scaling-2r-over-1r", sz, ratio, "x");
  }

  // Small messages ride the rail-0 ring regardless of rail count; pin that
  // the extra rails leave latency untouched.
  benchutil::title("Multi-rail ablation: MPI latency (us), adaptive");
  std::printf("%8s", "size");
  for (const Series& s : series) std::printf(" %12s", s.name);
  std::printf("\n");
  for (const std::size_t sz : benchutil::sizes_4_to(smoke ? 64 : 1024)) {
    std::printf("%8s", benchutil::human_size(sz).c_str());
    for (const Series& s : series) {
      const double us = benchutil::mpi_latency_usec(cfg, sz, 30, s.fcfg);
      std::printf(" %12.2f", us);
      json.add(std::string("latency-") + s.name, sz, us, "us");
    }
    std::printf("\n");
  }

  // Asymmetric fabric: one calibrated 870 MB/s rail plus one at a third of
  // it.  The weighted policy converges to a goodput-proportional split;
  // strict round-robin gates every other chunk on the slow rail.
  benchutil::title(
      "Asymmetric rails (870 + 290 MB/s): stripe policy (MB/s)");
  ib::FabricConfig asym = rails(1, 2);
  asym.rail_link_mbps = {870.0, 290.0};
  mpi::RuntimeConfig weighted = cfg;
  weighted.stack.channel.rail_policy = rdmach::RailPolicy::kWeighted;
  mpi::RuntimeConfig naive = cfg;
  naive.stack.channel.rail_policy = rdmach::RailPolicy::kRoundRobin;
  std::printf("%8s %12s %12s %12s\n", "size", "weighted", "roundrobin",
              "w/rr");
  const std::vector<std::size_t> asym_sizes =
      smoke ? std::vector<std::size_t>{1u << 20}
            : benchutil::sizes_pow2(512 * 1024, 8u << 20);
  for (const std::size_t sz : asym_sizes) {
    const double w =
        benchutil::mpi_bandwidth_mbps(weighted, sz, 32u << 20, 16, asym);
    const double n =
        benchutil::mpi_bandwidth_mbps(naive, sz, 32u << 20, 16, asym);
    std::printf("%8s %12.1f %12.1f %12.2f\n",
                benchutil::human_size(sz).c_str(), w, n, n > 0 ? w / n : 0.0);
    json.add("asym-weighted", sz, w, "MB/s");
    json.add("asym-roundrobin", sz, n, "MB/s");
  }

  json.write("BENCH_multirail.json");
  return 0;
}
