// Extension: RDMA-based collectives vs point-to-point collectives (the
// paper's future-work item on "efficient collective communication on top
// of InfiniBand").  Direct flag/payload writes into pre-registered slots
// skip the MPI matching engine and channel framing on every hop.
#include <cstdio>

#include "bench_util.hpp"
#include "mpi/rdma_coll.hpp"

namespace {

struct Pair {
  double pt2pt_us = 0, rdma_us = 0;
};

Pair measure(int nprocs, int which, std::size_t doubles) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  pmi::Job job(fabric, nprocs);
  Pair out;
  job.launch([&, which, doubles](pmi::Context& ctx) -> sim::Task<void> {
    mpi::Runtime rt(ctx, {});
    co_await rt.init();
    mpi::Communicator& world = rt.world();
    auto coll = co_await mpi::RdmaColl::create(world, 64 * 1024);
    std::vector<double> in(doubles > 0 ? doubles : 1, 1.0), res(in.size());
    constexpr int kIters = 24;

    // bcast completes at the root without any delivery guarantee, so a
    // stream of bare bcasts pipelines arbitrarily deep; to compare
    // delivered latency, every bcast is paired with a same-type barrier
    // and the barrier-only time is subtracted by the caller.
    auto run_pt2pt = [&]() -> sim::Task<void> {
      for (int i = 0; i < kIters; ++i) {
        if (which == 0) {
          co_await world.barrier();
        } else if (which == 1) {
          co_await world.bcast(in.data(), static_cast<int>(doubles),
                               mpi::Datatype::kDouble, 0);
          co_await world.barrier();
        } else {
          co_await world.allreduce(in.data(), res.data(),
                                   static_cast<int>(doubles),
                                   mpi::Datatype::kDouble, mpi::Op::kSum);
        }
      }
    };
    auto run_rdma = [&]() -> sim::Task<void> {
      for (int i = 0; i < kIters; ++i) {
        if (which == 0) {
          co_await coll->barrier();
        } else if (which == 1) {
          co_await coll->bcast(in.data(), static_cast<int>(doubles),
                               mpi::Datatype::kDouble, 0);
          co_await coll->barrier();
        } else {
          co_await coll->allreduce(in.data(), res.data(),
                                   static_cast<int>(doubles),
                                   mpi::Datatype::kDouble, mpi::Op::kSum);
        }
      }
    };

    co_await world.barrier();
    sim::Tick t0 = ctx.sim().now();
    co_await run_pt2pt();
    if (ctx.rank == 0) {
      out.pt2pt_us = sim::to_usec(ctx.sim().now() - t0) / kIters;
    }
    co_await world.barrier();
    t0 = ctx.sim().now();
    co_await run_rdma();
    if (ctx.rank == 0) {
      out.rdma_us = sim::to_usec(ctx.sim().now() - t0) / kIters;
    }
    co_await rt.finalize();
  });
  sim.run();
  return out;
}

}  // namespace

int main() {
  benchutil::title(
      "Extension: RDMA-based collectives vs pt2pt collectives (us per op)");
  std::printf("%-22s %6s %12s %12s %9s\n", "collective", "nodes", "pt2pt",
              "rdma", "speedup");
  for (int p : {4, 8, 16}) {
    const Pair b = measure(p, 0, 0);
    std::printf("%-22s %6d %12.2f %12.2f %8.2fx\n", "barrier", p, b.pt2pt_us,
                b.rdma_us, b.pt2pt_us / b.rdma_us);
  }
  for (int p : {4, 8, 16}) {
    const Pair barrier = measure(p, 0, 0);
    Pair b = measure(p, 1, 64);  // 512-byte bcast, delivered latency
    b.pt2pt_us -= barrier.pt2pt_us;
    b.rdma_us -= barrier.rdma_us;
    std::printf("%-22s %6d %12.2f %12.2f %8.2fx\n", "bcast 512B delivered",
                p, b.pt2pt_us, b.rdma_us, b.pt2pt_us / b.rdma_us);
  }
  for (int p : {4, 8, 16}) {
    const Pair b = measure(p, 2, 64);
    std::printf("%-22s %6d %12.2f %12.2f %8.2fx\n", "allreduce 512B", p,
                b.pt2pt_us, b.rdma_us, b.pt2pt_us / b.rdma_us);
  }
  return 0;
}
