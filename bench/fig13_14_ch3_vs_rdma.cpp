// Figures 13 and 14: RDMA-Channel zero-copy (RDMA read) vs CH3-level
// zero-copy (RDMA write), section 6.  Paper: comparable for small and
// large messages, but CH3 wins in the 32K-256K band -- a direct
// consequence of raw RDMA write vs read bandwidth (Figure 15), not of the
// channel abstraction.
//
// The third column is this repo's adaptive rendezvous engine behind the
// same channel interface: it must close the mid-band gap (>= 0.98x CH3 at
// every size in the band) without giving up the small-message latency or
// the large-message peak.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  const bool smoke = benchutil::smoke_mode(argc, argv);
  const mpi::RuntimeConfig rdma = benchutil::stack_config(
      ch3::Stack::kRdmaChannel, rdmach::Design::kZeroCopy);
  const mpi::RuntimeConfig adaptive = benchutil::stack_config(
      ch3::Stack::kRdmaChannel, rdmach::Design::kAdaptive);
  const mpi::RuntimeConfig direct = benchutil::stack_config(
      ch3::Stack::kCh3Direct, rdmach::Design::kPipeline);

  benchutil::title("Figure 13: MPI latency, RDMA-Channel ZC vs CH3 ZC");
  std::printf("%8s %18s %14s %14s\n", "size", "rdma-channel (us)", "ch3 (us)",
              "adaptive (us)");
  for (std::size_t s : benchutil::sizes_4_to(smoke ? 1024 : 64 * 1024)) {
    std::printf("%8s %18.2f %14.2f %14.2f\n",
                benchutil::human_size(s).c_str(),
                benchutil::mpi_latency_usec(rdma, s),
                benchutil::mpi_latency_usec(direct, s),
                benchutil::mpi_latency_usec(adaptive, s));
  }

  benchutil::title(
      "Figure 14: MPI bandwidth, RDMA-Channel ZC vs CH3 ZC "
      "(paper: CH3 ahead at 32K-256K)");
  std::printf("%8s %18s %14s %14s\n", "size", "rdma-channel MB/s", "ch3 MB/s",
              "adaptive MB/s");
  for (std::size_t s :
       smoke ? std::vector<std::size_t>{64 * 1024, 256 * 1024}
             : benchutil::sizes_4_to(1 << 20)) {
    std::printf("%8s %18.1f %14.1f %14.1f\n",
                benchutil::human_size(s).c_str(),
                benchutil::mpi_bandwidth_mbps(rdma, s),
                benchutil::mpi_bandwidth_mbps(direct, s),
                benchutil::mpi_bandwidth_mbps(adaptive, s));
  }
  return 0;
}
