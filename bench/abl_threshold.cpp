// Ablation: the rendezvous/zero-copy switch-over threshold.  Too low and
// mid-size messages pay the RDMA-read round trip that the ring would have
// hidden; too high and large messages burn memory bandwidth on copies.
// The default (32K) sits where the curves cross.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main() {
  const std::vector<std::size_t> thresholds = {8 * 1024, 16 * 1024, 32 * 1024,
                                               64 * 1024, 128 * 1024};
  benchutil::title(
      "Ablation: zero-copy threshold sweep (bandwidth MB/s per threshold)");
  std::printf("%8s", "size");
  for (std::size_t t : thresholds) {
    std::printf(" %9s", benchutil::human_size(t).c_str());
  }
  std::printf("\n");
  for (std::size_t msg : benchutil::sizes_pow2(8 * 1024, 1 << 20)) {
    std::printf("%8s", benchutil::human_size(msg).c_str());
    for (std::size_t t : thresholds) {
      mpi::RuntimeConfig cfg =
          benchutil::design_config(rdmach::Design::kZeroCopy);
      cfg.stack.channel.zero_copy_threshold = t;
      std::printf(" %9.1f", benchutil::mpi_bandwidth_mbps(cfg, msg));
    }
    std::printf("\n");
  }

  benchutil::title(
      "Ablation: CH3-direct rendezvous threshold sweep (bandwidth MB/s)");
  std::printf("%8s", "size");
  for (std::size_t t : thresholds) {
    std::printf(" %9s", benchutil::human_size(t).c_str());
  }
  std::printf("\n");
  for (std::size_t msg : benchutil::sizes_pow2(8 * 1024, 1 << 20)) {
    std::printf("%8s", benchutil::human_size(msg).c_str());
    for (std::size_t t : thresholds) {
      mpi::RuntimeConfig cfg = benchutil::stack_config(
          ch3::Stack::kCh3Direct, rdmach::Design::kPipeline);
      cfg.stack.rndv_threshold = t;
      std::printf(" %9.1f", benchutil::mpi_bandwidth_mbps(cfg, msg));
    }
    std::printf("\n");
  }
  return 0;
}
