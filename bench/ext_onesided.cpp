// Extension: MPI-2 one-sided communication over RDMA (the paper's
// future-work section).  Compares one-sided put/get against two-sided
// send/recv: with the window pre-registered and the rendezvous handshake
// gone, a one-sided put is a bare RDMA write plus fence amortization.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mpi/window.hpp"

namespace {

struct Numbers {
  double put_us = 0, get_us = 0, send_us = 0, fadd_us = 0;
};

Numbers measure(std::size_t msg) {
  Numbers out;
  benchutil::run_pair(
      benchutil::design_config(rdmach::Design::kZeroCopy),
      [msg, &out](mpi::Communicator& world, pmi::Context& ctx)
          -> sim::Task<void> {
        constexpr int kIters = 16;
        std::vector<std::byte> mem(msg), buf(msg);
        auto win = co_await mpi::Window::create(world, mem.data(), msg);
        co_await win->fence();
        const int n = static_cast<int>(msg);
        const int peer = 1 - world.rank();

        // One-sided put (rank 0 is origin), fenced per iteration.
        sim::Tick t0 = ctx.sim().now();
        for (int i = 0; i < kIters; ++i) {
          if (world.rank() == 0) {
            co_await win->put(buf.data(), n, mpi::Datatype::kByte, 1, 0);
          }
          co_await win->fence();
        }
        if (world.rank() == 0) {
          out.put_us = sim::to_usec(ctx.sim().now() - t0) / kIters;
        }

        // One-sided get.
        t0 = ctx.sim().now();
        for (int i = 0; i < kIters; ++i) {
          if (world.rank() == 0) {
            co_await win->get(buf.data(), n, mpi::Datatype::kByte, 1, 0);
          }
          co_await win->fence();
        }
        if (world.rank() == 0) {
          out.get_us = sim::to_usec(ctx.sim().now() - t0) / kIters;
        }

        // Two-sided reference: send + barrier (same sync discipline).
        t0 = ctx.sim().now();
        for (int i = 0; i < kIters; ++i) {
          if (world.rank() == 0) {
            co_await world.send(buf.data(), n, mpi::Datatype::kByte, peer, 0);
          } else {
            co_await world.recv(buf.data(), n, mpi::Datatype::kByte, peer, 0);
          }
          co_await world.barrier();
        }
        if (world.rank() == 0) {
          out.send_us = sim::to_usec(ctx.sim().now() - t0) / kIters;
        }

        // Atomic fetch-add round trip.
        t0 = ctx.sim().now();
        if (world.rank() == 0) {
          for (int i = 0; i < kIters; ++i) {
            (void)co_await win->fetch_add(1, 0, 1);
          }
          out.fadd_us = sim::to_usec(ctx.sim().now() - t0) / kIters;
        }
        co_await world.barrier();
        co_await win->fence();
      });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::smoke_mode(argc, argv);
  benchutil::title(
      "Extension: MPI-2 one-sided over RDMA vs two-sided (per op + sync, us)");
  std::printf("%8s %10s %10s %12s\n", "size", "put", "get", "send+barrier");
  std::vector<std::size_t> sizes{std::size_t{8}, std::size_t{4096},
                                 std::size_t{64 * 1024}, std::size_t{1 << 20}};
  if (smoke) sizes = {std::size_t{8}, std::size_t{4096}};
  for (std::size_t s : sizes) {
    const Numbers n = measure(s);
    std::printf("%8s %10.2f %10.2f %12.2f\n",
                benchutil::human_size(s).c_str(), n.put_us, n.get_us,
                n.send_us);
  }
  const Numbers n = measure(8);
  std::printf("\natomic fetch-add round trip: %.2f us\n", n.fadd_us);
  return 0;
}
