// Real wall-clock microbenchmarks (google-benchmark) of the simulator's
// hot components: event processing, the bandwidth-calendar booking, slot
// framing, the registration-cache lookup, and the RNG.  These guard the
// *host* cost of running the simulation, not virtual-time results.
#include <benchmark/benchmark.h>

#include <vector>

#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "ib/mr.hpp"
#include "rdmach/reg_cache.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim.spawn(
        [](sim::Simulator& s) -> sim::Task<void> {
          for (int i = 0; i < 10'000; ++i) co_await s.delay(sim::nsec(10));
        }(sim),
        "ticker");
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_BandwidthCalendarBooking(benchmark::State& state) {
  sim::Simulator sim;
  sim::BandwidthResource bus(sim, "bus", 1600.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.reserve(2048));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BandwidthCalendarBooking);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void BM_RegCacheHit(benchmark::State& state) {
  sim::Simulator sim;
  ib::Fabric fabric(sim);
  ib::Node& n = fabric.add_node("n");
  ib::ProtectionDomain& pd = n.hca().alloc_pd();
  rdmach::RegCache cache(pd, 1 << 30, true);
  static std::vector<std::byte> buf(1 << 20);
  // Warm the cache.
  sim.spawn(
      [](rdmach::RegCache& c) -> sim::Task<void> {
        auto* mr = co_await c.acquire(buf.data(), buf.size());
        co_await c.release(mr);
      }(cache),
      "warm");
  sim.run();
  for (auto _ : state) {
    sim.spawn(
        [](rdmach::RegCache& c) -> sim::Task<void> {
          auto* mr = co_await c.acquire(buf.data(), buf.size());
          co_await c.release(mr);
        }(cache),
        "hit");
    sim.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegCacheHit);

}  // namespace

BENCHMARK_MAIN();
