// Ablation: the adaptive rendezvous engine against its ingredients.
//
// The paper's Figure 14 gap -- CH3's write-based rendezvous beating the
// RDMA-channel zero-copy read in the 32K-256K band -- is what the adaptive
// engine closes.  This bench shows each ingredient's contribution:
//
//   zerocopy            the baseline single-read rendezvous (Figure 14 loser)
//   adaptive            full engine: selector + write path + read pipeline
//   adaptive-no-qps     read pipeline collapsed to one read at a time
//   adaptive-write-only read path disabled; every rendezvous is RDMA write
//   ch3-direct          the CH3-level RDMA-write stack (Figure 14 winner)
//
// Also prints small-message latency (adaptive must track zero-copy) and the
// selector's learned state after a mixed-size stream.  Emits
// BENCH_adaptive.json with every measured point.
#include <cstdio>

#include "bench_util.hpp"

namespace {

struct Series {
  const char* name;
  mpi::RuntimeConfig cfg;
};

mpi::RuntimeConfig adaptive_cfg() {
  return benchutil::design_config(rdmach::Design::kAdaptive);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::smoke_mode(argc, argv);
  benchutil::JsonResult json("abl_adaptive");

  mpi::RuntimeConfig no_qps = adaptive_cfg();
  no_qps.stack.channel.rndv_read_qps = 0;
  mpi::RuntimeConfig write_only = adaptive_cfg();
  write_only.stack.channel.rndv_read_threshold = std::size_t{1} << 30;
  const Series series[] = {
      {"zerocopy", benchutil::design_config(rdmach::Design::kZeroCopy)},
      {"adaptive", adaptive_cfg()},
      {"adaptive-no-qps", no_qps},
      {"adaptive-write-only", write_only},
      {"ch3-direct", benchutil::stack_config(ch3::Stack::kCh3Direct,
                                             rdmach::Design::kPipeline)},
  };

  benchutil::title("Adaptive rendezvous ablation: MPI bandwidth (MB/s)");
  std::printf("%8s", "size");
  for (const Series& s : series) std::printf(" %20s", s.name);
  std::printf("\n");
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64 * 1024, 256 * 1024}
            : benchutil::sizes_pow2(16 * 1024, 1 << 20);
  for (const std::size_t sz : sizes) {
    std::printf("%8s", benchutil::human_size(sz).c_str());
    for (const Series& s : series) {
      const double mbps = benchutil::mpi_bandwidth_mbps(s.cfg, sz);
      std::printf(" %20.1f", mbps);
      json.add(s.name, sz, mbps, "MB/s");
    }
    std::printf("\n");
  }

  benchutil::title("Small-message MPI latency (us): adaptive vs zero-copy");
  std::printf("%8s %12s %12s\n", "size", "zerocopy", "adaptive");
  for (const std::size_t sz :
       benchutil::sizes_4_to(smoke ? 256 : 16 * 1024)) {
    const double zc = benchutil::mpi_latency_usec(series[0].cfg, sz);
    const double ad = benchutil::mpi_latency_usec(series[1].cfg, sz);
    std::printf("%8s %12.2f %12.2f\n", benchutil::human_size(sz).c_str(), zc,
                ad);
    json.add("latency-zerocopy", sz, zc, "us");
    json.add("latency-adaptive", sz, ad, "us");
  }

  // Selector state after a mixed-size stream: per-protocol traffic split
  // and the learned write/read crossover, read through the ChannelStats
  // snapshot API.
  rdmach::ChannelStats st;
  benchutil::run_pair_rt(
      adaptive_cfg(),
      [&st](mpi::Runtime& rt, mpi::Communicator& world,
            pmi::Context& ctx) -> sim::Task<void> {
        (void)ctx;
        const std::size_t kSizes[] = {2048, 40 * 1024, 96 * 1024, 256 * 1024};
        std::vector<std::byte> buf(256 * 1024);
        for (int round = 0; round < 24; ++round) {
          for (const std::size_t sz : kSizes) {
            const int n = static_cast<int>(sz);
            if (world.rank() == 0) {
              co_await world.send(buf.data(), n, mpi::Datatype::kByte, 1, 0);
            } else {
              co_await world.recv(buf.data(), n, mpi::Datatype::kByte, 0, 0);
            }
          }
        }
        if (world.rank() == 0) st = rt.engine().channel().channel_stats();
      });

  benchutil::title("ChannelStats after a mixed-size stream (rank 0 sender)");
  std::printf("%12s %8s %14s %10s %10s\n", "protocol", "ops", "bytes",
              "retries", "MB/s");
  const struct {
    const char* name;
    const rdmach::ProtoStats* p;
  } protos[] = {{"eager", &st.eager},
                {"rndv-write", &st.rndv_write},
                {"rndv-read", &st.rndv_read}};
  for (const auto& pr : protos) {
    std::printf("%12s %8llu %14llu %10llu %10.1f\n", pr.name,
                static_cast<unsigned long long>(pr.p->ops),
                static_cast<unsigned long long>(pr.p->bytes),
                static_cast<unsigned long long>(pr.p->retries), pr.p->mbps);
    json.add(std::string("stats-ops-") + pr.name, 0,
             static_cast<double>(pr.p->ops), "ops");
    json.add(std::string("stats-bytes-") + pr.name, 0,
             static_cast<double>(pr.p->bytes), "bytes");
  }
  std::printf("eager threshold %zu, learned write/read crossover %zu\n",
              st.eager_threshold, st.write_read_crossover);
  json.add("stats-crossover", 0,
           static_cast<double>(st.write_read_crossover), "bytes");

  json.write("BENCH_adaptive.json");
  return 0;
}
