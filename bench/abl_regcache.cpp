// Ablation: the registration (pin-down) cache of section 5.  With the
// cache disabled, every zero-copy transfer pays full registration and
// deregistration; with buffer reuse (the common NAS pattern, per the
// paper's citation of [15]) the cache absorbs almost all of that cost.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  benchutil::title(
      "Ablation: registration cache (zero-copy design, reused buffers)");
  std::printf("%8s %16s %16s %12s\n", "size", "cache on MB/s",
              "cache off MB/s", "speedup");
  for (std::size_t s : benchutil::sizes_pow2(32 * 1024, 1 << 20)) {
    mpi::RuntimeConfig on = benchutil::design_config(rdmach::Design::kZeroCopy);
    on.stack.channel.use_reg_cache = true;
    mpi::RuntimeConfig off = on;
    off.stack.channel.use_reg_cache = false;
    const double bw_on = benchutil::mpi_bandwidth_mbps(on, s);
    const double bw_off = benchutil::mpi_bandwidth_mbps(off, s);
    std::printf("%8s %16.1f %16.1f %11.2fx\n",
                benchutil::human_size(s).c_str(), bw_on, bw_off,
                bw_on / bw_off);
  }

  benchutil::title("Ablation: registration cache effect on latency at 64K");
  mpi::RuntimeConfig on = benchutil::design_config(rdmach::Design::kZeroCopy);
  mpi::RuntimeConfig off = on;
  off.stack.channel.use_reg_cache = false;
  std::printf("cache on : %8.2f us\n",
              benchutil::mpi_latency_usec(on, 64 * 1024));
  std::printf("cache off: %8.2f us\n",
              benchutil::mpi_latency_usec(off, 64 * 1024));
  return 0;
}
