// NAS under fault: what a fault campaign costs on real kernels.
//
// For each NAS kernel the bench runs a clean baseline and the four seeded
// standard mixes (kill-only, corrupt+exhaust, rail-down, combined) on the
// same two-rail fabric and the same integrity-checked zero-copy channel,
// with faults keyed to kernel progress through sim::FaultCampaign.  Every
// run must finish with a *numerically verified* result -- recovery that
// returns wrong answers fast is worthless -- and the combined mix must
// cost at most 25% of clean Mop/s (the bound the recovery machinery is
// engineered to; regressions fail the bench).  Emits BENCH_nasfault.json.
//
// Default scope: IS/FT/BT/CG/MG class A on 4 nodes (the paper's class-A
// suite corners).  NASFAULT_FULL=1 widens to all eight kernels plus the
// class-B/8 runs; --smoke narrows to IS alone for the perf ctest label.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign_util.hpp"

namespace {

struct RunSpec {
  std::string kernel;
  int nprocs;
  nas::Class cls;
};

constexpr double kMaxCombinedLossPct = 25.0;
constexpr std::uint64_t kSeed = 2026;

/// Thrown from the phase hook inside the victim's CG iteration loop: the
/// test's model of process death (the rank-main stops executing; the fault
/// schedule then takes its network down).
struct RankKilled {};

struct ShrinkOutcome {
  bool ok = false;
  double detect_us = 0;   // death -> first survivor ProcFailedError
  double recover_us = 0;  // death -> shrunk communicator in hand
  double mops = 0;        // the 3-rank re-run
  std::string detail;
};

double to_us(sim::Tick t) {
  return static_cast<double>(t) / static_cast<double>(sim::usec(1));
}

/// Shrink-and-continue: CG class A on 4 ranks with the failure detector
/// armed; rank 3 dies at iteration 5.  The survivors must each surface
/// ProcFailedError (or RevokedError once a peer revokes), run the ULFM
/// revoke/agree/shrink sequence, and finish a full CG class A on the
/// 3-rank survivor communicator with a numerically verified result.
ShrinkOutcome run_shrink_and_continue(const mpi::RuntimeConfig& base,
                                      const ib::FabricConfig& fcfg) {
  constexpr int kProcs = 4;
  constexpr int kVictim = 3;
  constexpr int kKillIter = 5;
  ShrinkOutcome out;
  mpi::RuntimeConfig cfg = base;
  cfg.stack.channel.ft_detector = true;
  sim::Simulator sim;
  ib::Fabric fabric(sim, fcfg);
  sim::FaultSchedule faults;
  fabric.attach_faults(&faults);
  pmi::Job job(fabric, kProcs);

  sim::Tick death_at = 0, first_error_at = 0, shrunk_at = 0;
  int continued = 0;
  bool verified = false;
  nas::ScopedPhaseHook hook([&](const nas::PhaseEvent& e) {
    if (e.rank == kVictim && e.phase == "cg.iter" &&
        e.iteration == kKillIter) {
      throw RankKilled{};
    }
  });

  // Runtimes owned outside the rank bodies: nobody finalizes after a death,
  // so per-rank teardown must wait for the full drain.
  std::vector<std::unique_ptr<mpi::Runtime>> rts(kProcs);
  job.launch([&](pmi::Context& ctx) -> sim::Task<void> {
    rts[ctx.rank] = std::make_unique<mpi::Runtime>(ctx, cfg);
    mpi::Runtime& rt = *rts[ctx.rank];
    co_await rt.init();
    bool died = false, failed = false;
    try {
      co_await nas::kernel("cg")(rt.world(), ctx, nas::Class::A);
    } catch (const RankKilled&) {
      died = true;
    } catch (const mpi::MpiError&) {
      // ProcFailedError from the detector, or RevokedError once a faster
      // survivor has already revoked -- either way, recover.
      failed = true;
    }
    if (died) {
      death_at = sim.now();
      faults.rank_down("node" + std::to_string(kVictim));
      co_return;  // process gone; no finalize
    }
    if (!failed) co_return;  // fault-free run (never happens here)
    if (first_error_at == 0) first_error_at = sim.now();
    rt.world().revoke();
    co_await rt.world().agree(0);
    mpi::Communicator* sc = co_await rt.world().shrink();
    if (sc == nullptr || sc->size() != kProcs - 1) co_return;
    if (shrunk_at == 0) shrunk_at = sim.now();
    nas::Result r = co_await nas::kernel("cg")(*sc, ctx, nas::Class::A);
    if (sc->rank() == 0) {
      verified = r.verified;
      out.mops = r.mops;
      out.detail = r.detail;
    }
    ++continued;
  });
  sim.run_until(sim::usec(120'000'000));

  out.ok = continued == kProcs - 1 && verified && death_at > 0 &&
           first_error_at > death_at && shrunk_at > first_error_at;
  out.detect_us = to_us(first_error_at - death_at);
  out.recover_us = to_us(shrunk_at - death_at);
  if (!out.ok && out.detail.empty()) {
    out.detail = "continued=" + std::to_string(continued) +
                 " verified=" + std::to_string(verified) +
                 " death_at=" + std::to_string(death_at) +
                 " first_error_at=" + std::to_string(first_error_at) +
                 " shrunk_at=" + std::to_string(shrunk_at);
  }
  return out;
}

/// Gray-failure campaigns (degrade-only, degrade+kill) on the adaptive
/// design with the health detector armed.  The contract the table checks:
/// a degrade-only run has ZERO false kDead convictions (no ChannelErrors,
/// no watchdog trips -- nothing actually died), quarantine does the
/// mitigating (at least one rail pulled proactively across the table), and
/// the degrade-only runtime loss stays within 30% of clean.  Emits
/// BENCH_grayfault.json.
bool run_gray_section(const std::vector<RunSpec>& specs,
                      const ib::FabricConfig& fabric) {
  constexpr double kMaxDegradeLossPct = 30.0;
  mpi::RuntimeConfig cfg =
      benchutil::campaign_config(rdmach::Design::kAdaptive);
  cfg.stack.channel.health_detector = true;
  // NAS alltoallv goodput is heavy-tailed (rendezvous handshakes overlap
  // with eager bursts), so the default 3-sigma band swallows a 10x-degraded
  // rail.  The campaign runs the detector at 1.5 sigma: tight enough to see
  // the degrade through the jitter, and the consecutive-sample accrual
  // still keeps ordinary outliers from tripping a quarantine.
  cfg.stack.channel.health_soft_sigma = 1.5;
  // Probe aggressively: the degrade windows are op-indexed, and a
  // quarantined rail only burns through its window via probe traffic.
  cfg.stack.channel.health_probe_interval = 4;
  benchutil::JsonResult json("nas_grayfault");
  bool ok = true;
  std::uint64_t total_quarantines = 0;

  benchutil::title(
      "NAS under gray failure: degraded links, suspicion, quarantine "
      "(adaptive, 2 rails, health detector on)");
  std::printf("%-4s %-14s %8s %7s %6s %6s %6s %6s %6s %9s\n", "bm", "mix",
              "Mop/s", "loss%", "quar", "reinst", "susp", "wdog", "fail",
              "degrade_ms");

  for (const RunSpec& spec : specs) {
    const std::string phase = benchutil::phase_of(spec.kernel);
    const benchutil::CampaignOutcome clean = benchutil::run_nas_campaign(
        spec.kernel, spec.nprocs, spec.cls, cfg, nullptr, fabric);
    if (!clean.completed || !clean.result.verified) {
      std::printf("%-4s gray clean run failed\n", spec.kernel.c_str());
      ok = false;
      continue;
    }
    json.add(spec.kernel + "/clean", static_cast<std::size_t>(spec.nprocs),
             clean.result.mops, "mops");

    for (const auto& [mix_name, mix] : benchutil::gray_mixes()) {
      sim::FaultCampaign campaign(kSeed);
      mix(campaign, phase, spec.nprocs);
      const benchutil::CampaignOutcome r = benchutil::run_nas_campaign(
          spec.kernel, spec.nprocs, spec.cls, cfg, &campaign, fabric);
      const std::string series = spec.kernel + "/" + mix_name;
      if (r.wedged || !r.completed || r.errors > 0 || !r.result.verified) {
        std::printf("%-4s %-14s FAILED: %s\n", spec.kernel.c_str(),
                    mix_name.c_str(),
                    r.wedged ? "wedged at deadline"
                             : (r.errors > 0 ? r.error_whats.front().c_str()
                                             : "result not verified"));
        ok = false;
        continue;
      }
      const double loss = 100.0 * (1.0 - r.result.mops / clean.result.mops);
      std::printf(
          "%-4s %-14s %8.1f %7.1f %6llu %6llu %6llu %6llu %6llu %9.1f\n",
          r.result.name.c_str(), mix_name.c_str(), r.result.mops, loss,
          static_cast<unsigned long long>(r.stats.rail_quarantines),
          static_cast<unsigned long long>(r.stats.rail_reinstates),
          static_cast<unsigned long long>(r.stats.suspicion_trips),
          static_cast<unsigned long long>(r.stats.watchdog_trips),
          static_cast<unsigned long long>(r.stats.rail_failovers),
          static_cast<double>(r.stats.degraded_ns) / 1e6);
      json.add(series, static_cast<std::size_t>(spec.nprocs), r.result.mops,
               "mops");
      json.add(series + "/loss", static_cast<std::size_t>(spec.nprocs), loss,
               "pct");
      json.add(series + "/quarantines",
               static_cast<std::size_t>(spec.nprocs),
               static_cast<double>(r.stats.rail_quarantines), "count");
      json.add(series + "/degraded",
               static_cast<std::size_t>(spec.nprocs),
               static_cast<double>(r.stats.degraded_ns) / 1e6, "ms");
      total_quarantines += r.stats.rail_quarantines;
      if (mix_name == "degrade") {
        // Degrade-only: nothing died, so nothing may be convicted.
        if (r.stats.watchdog_trips > 0) {
          std::printf("%-4s degrade-only run tripped the watchdog (false "
                      "kDead)\n",
                      spec.kernel.c_str());
          ok = false;
        }
        if (loss > kMaxDegradeLossPct) {
          std::printf("%-4s degrade-only loss %.1f%% exceeds the %.0f%% "
                      "bound\n",
                      spec.kernel.c_str(), loss, kMaxDegradeLossPct);
          ok = false;
        }
      }
    }
  }
  if (ok && total_quarantines == 0) {
    std::printf("gray: no run ever quarantined a rail -- the detector "
                "never mitigated\n");
    ok = false;
  }
  json.write("BENCH_grayfault.json");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::smoke_mode(argc, argv);
  const bool full = std::getenv("NASFAULT_FULL") != nullptr;
  bool gray_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gray") gray_only = true;
  }

  std::vector<RunSpec> specs;
  if (smoke) {
    specs = {{"is", 4, nas::Class::A}};
  } else if (full) {
    for (const auto& [name, fn] : nas::suite()) {
      specs.push_back({name, 4, nas::Class::A});
    }
    for (const char* k : {"is", "ft", "bt", "cg", "mg"}) {
      specs.push_back({k, 8, nas::Class::B});
    }
  } else {
    specs = {{"is", 4, nas::Class::A},
             {"ft", 4, nas::Class::A},
             {"bt", 4, nas::Class::A},
             {"cg", 4, nas::Class::A},
             {"mg", 4, nas::Class::A}};
  }

  const ib::FabricConfig fabric = benchutil::two_rail_fabric();
  bool ok = true;

  if (!gray_only) {
    const mpi::RuntimeConfig cfg =
        benchutil::campaign_config(rdmach::Design::kZeroCopy);
    benchutil::JsonResult json("nas_fault");

    benchutil::title(
        "NAS under fault: Mop/s vs clean per seeded mix (zero-copy, 2 rails)");
    std::printf("%-4s %-16s %8s %7s %6s %6s %9s %6s %5s\n", "bm", "mix",
                "Mop/s", "loss%", "recov", "wdog", "replayB", "crcRx", "fail");

    for (const RunSpec& spec : specs) {
      const std::string phase = benchutil::phase_of(spec.kernel);
      const benchutil::CampaignOutcome clean = benchutil::run_nas_campaign(
          spec.kernel, spec.nprocs, spec.cls, cfg, nullptr, fabric);
      const std::string label = std::string(nas::to_string(spec.cls)) + "/" +
                                std::to_string(spec.nprocs);
      if (!clean.completed || !clean.result.verified) {
        std::printf("%-4s clean run failed (%s)\n", spec.kernel.c_str(),
                    label.c_str());
        ok = false;
        continue;
      }
      std::printf("%-4s %-16s %8.1f %7s %6s %6s %9s %6s %5s  [%s]\n",
                  clean.result.name.c_str(), "clean", clean.result.mops, "-",
                  "-", "-", "-", "-", "-", label.c_str());
      json.add(spec.kernel + "/clean", static_cast<std::size_t>(spec.nprocs),
               clean.result.mops, "mops");

      for (const auto& [mix_name, mix] : benchutil::standard_mixes()) {
        sim::FaultCampaign campaign(kSeed);
        mix(campaign, phase, spec.nprocs);
        const benchutil::CampaignOutcome r = benchutil::run_nas_campaign(
            spec.kernel, spec.nprocs, spec.cls, cfg, &campaign, fabric);
        const std::string series = spec.kernel + "/" + mix_name;
        if (r.wedged || !r.completed || r.errors > 0 || !r.result.verified) {
          std::printf("%-4s %-16s FAILED: %s\n", spec.kernel.c_str(),
                      mix_name.c_str(),
                      r.wedged ? "wedged at deadline"
                               : (r.errors > 0
                                      ? r.error_whats.front().c_str()
                                      : "result not verified"));
          ok = false;
          continue;
        }
        const double loss =
            100.0 * (1.0 - r.result.mops / clean.result.mops);
        std::printf("%-4s %-16s %8.1f %7.1f %6llu %6llu %9llu %6llu %5llu\n",
                    r.result.name.c_str(), mix_name.c_str(), r.result.mops,
                    loss,
                    static_cast<unsigned long long>(r.stats.recoveries),
                    static_cast<unsigned long long>(r.stats.watchdog_trips),
                    static_cast<unsigned long long>(r.stats.replayed_bytes),
                    static_cast<unsigned long long>(r.stats.retransmits),
                    static_cast<unsigned long long>(r.stats.rail_failovers));
        json.add(series, static_cast<std::size_t>(spec.nprocs), r.result.mops,
                 "mops");
        json.add(series + "/loss", static_cast<std::size_t>(spec.nprocs), loss,
                 "pct");
        json.add(series + "/recoveries", static_cast<std::size_t>(spec.nprocs),
                 static_cast<double>(r.stats.recoveries), "count");
        json.add(series + "/replayed",
                 static_cast<std::size_t>(spec.nprocs),
                 static_cast<double>(r.stats.replayed_bytes), "bytes");
        if (mix_name == "combined" && loss > kMaxCombinedLossPct) {
          std::printf(
              "%-4s combined-mix loss %.1f%% exceeds the %.0f%% bound\n",
              spec.kernel.c_str(), loss, kMaxCombinedLossPct);
          ok = false;
        }
      }
    }

    benchutil::title(
        "Shrink-and-continue: CG class A, rank 3 dies at iteration 5");
    const ShrinkOutcome shrink = run_shrink_and_continue(cfg, fabric);
    if (shrink.ok) {
      std::printf(
          "cg   shrink-continue  %8.1f   detect %.0f us, shrink %.0f us, "
          "verified on 3 ranks\n",
          shrink.mops, shrink.detect_us, shrink.recover_us);
      json.add("cg/shrink", 3, shrink.mops, "mops");
      json.add("cg/shrink/detect", 4, shrink.detect_us, "us");
      json.add("cg/shrink/recover", 4, shrink.recover_us, "us");
    } else {
      std::printf("cg   shrink-continue  FAILED: %s\n", shrink.detail.c_str());
      ok = false;
    }

    json.write("BENCH_nasfault.json");
  }

  ok = run_gray_section(specs, fabric) && ok;

  if (!ok) {
    std::printf("\nnas_fault: FAILED (see rows above)\n");
    return 1;
  }
  std::printf("\nnas_fault: all runs verified; combined-mix loss within "
              "%.0f%%\n",
              kMaxCombinedLossPct);
  return 0;
}
