// NAS under fault: what a fault campaign costs on real kernels.
//
// For each NAS kernel the bench runs a clean baseline and the four seeded
// standard mixes (kill-only, corrupt+exhaust, rail-down, combined) on the
// same two-rail fabric and the same integrity-checked zero-copy channel,
// with faults keyed to kernel progress through sim::FaultCampaign.  Every
// run must finish with a *numerically verified* result -- recovery that
// returns wrong answers fast is worthless -- and the combined mix must
// cost at most 25% of clean Mop/s (the bound the recovery machinery is
// engineered to; regressions fail the bench).  Emits BENCH_nasfault.json.
//
// Default scope: IS/FT/BT/CG/MG class A on 4 nodes (the paper's class-A
// suite corners).  NASFAULT_FULL=1 widens to all eight kernels plus the
// class-B/8 runs; --smoke narrows to IS alone for the perf ctest label.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign_util.hpp"

namespace {

struct RunSpec {
  std::string kernel;
  int nprocs;
  nas::Class cls;
};

constexpr double kMaxCombinedLossPct = 25.0;
constexpr std::uint64_t kSeed = 2026;

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::smoke_mode(argc, argv);
  const bool full = std::getenv("NASFAULT_FULL") != nullptr;

  std::vector<RunSpec> specs;
  if (smoke) {
    specs = {{"is", 4, nas::Class::A}};
  } else if (full) {
    for (const auto& [name, fn] : nas::suite()) {
      specs.push_back({name, 4, nas::Class::A});
    }
    for (const char* k : {"is", "ft", "bt", "cg", "mg"}) {
      specs.push_back({k, 8, nas::Class::B});
    }
  } else {
    specs = {{"is", 4, nas::Class::A},
             {"ft", 4, nas::Class::A},
             {"bt", 4, nas::Class::A},
             {"cg", 4, nas::Class::A},
             {"mg", 4, nas::Class::A}};
  }

  const mpi::RuntimeConfig cfg =
      benchutil::campaign_config(rdmach::Design::kZeroCopy);
  const ib::FabricConfig fabric = benchutil::two_rail_fabric();
  benchutil::JsonResult json("nas_fault");
  bool ok = true;

  benchutil::title(
      "NAS under fault: Mop/s vs clean per seeded mix (zero-copy, 2 rails)");
  std::printf("%-4s %-16s %8s %7s %6s %6s %9s %6s %5s\n", "bm", "mix", "Mop/s",
              "loss%", "recov", "wdog", "replayB", "crcRx", "fail");

  for (const RunSpec& spec : specs) {
    const std::string phase = benchutil::phase_of(spec.kernel);
    const benchutil::CampaignOutcome clean = benchutil::run_nas_campaign(
        spec.kernel, spec.nprocs, spec.cls, cfg, nullptr, fabric);
    const std::string label = std::string(nas::to_string(spec.cls)) + "/" +
                              std::to_string(spec.nprocs);
    if (!clean.completed || !clean.result.verified) {
      std::printf("%-4s clean run failed (%s)\n", spec.kernel.c_str(),
                  label.c_str());
      ok = false;
      continue;
    }
    std::printf("%-4s %-16s %8.1f %7s %6s %6s %9s %6s %5s  [%s]\n",
                clean.result.name.c_str(), "clean", clean.result.mops, "-",
                "-", "-", "-", "-", "-", label.c_str());
    json.add(spec.kernel + "/clean", static_cast<std::size_t>(spec.nprocs),
             clean.result.mops, "mops");

    for (const auto& [mix_name, mix] : benchutil::standard_mixes()) {
      sim::FaultCampaign campaign(kSeed);
      mix(campaign, phase, spec.nprocs);
      const benchutil::CampaignOutcome r = benchutil::run_nas_campaign(
          spec.kernel, spec.nprocs, spec.cls, cfg, &campaign, fabric);
      const std::string series = spec.kernel + "/" + mix_name;
      if (r.wedged || !r.completed || r.errors > 0 || !r.result.verified) {
        std::printf("%-4s %-16s FAILED: %s\n", spec.kernel.c_str(),
                    mix_name.c_str(),
                    r.wedged ? "wedged at deadline"
                             : (r.errors > 0
                                    ? r.error_whats.front().c_str()
                                    : "result not verified"));
        ok = false;
        continue;
      }
      const double loss =
          100.0 * (1.0 - r.result.mops / clean.result.mops);
      std::printf("%-4s %-16s %8.1f %7.1f %6llu %6llu %9llu %6llu %5llu\n",
                  r.result.name.c_str(), mix_name.c_str(), r.result.mops,
                  loss,
                  static_cast<unsigned long long>(r.stats.recoveries),
                  static_cast<unsigned long long>(r.stats.watchdog_trips),
                  static_cast<unsigned long long>(r.stats.replayed_bytes),
                  static_cast<unsigned long long>(r.stats.retransmits),
                  static_cast<unsigned long long>(r.stats.rail_failovers));
      json.add(series, static_cast<std::size_t>(spec.nprocs), r.result.mops,
               "mops");
      json.add(series + "/loss", static_cast<std::size_t>(spec.nprocs), loss,
               "pct");
      json.add(series + "/recoveries", static_cast<std::size_t>(spec.nprocs),
               static_cast<double>(r.stats.recoveries), "count");
      json.add(series + "/replayed",
               static_cast<std::size_t>(spec.nprocs),
               static_cast<double>(r.stats.replayed_bytes), "bytes");
      if (mix_name == "combined" && loss > kMaxCombinedLossPct) {
        std::printf("%-4s combined-mix loss %.1f%% exceeds the %.0f%% bound\n",
                    spec.kernel.c_str(), loss, kMaxCombinedLossPct);
        ok = false;
      }
    }
  }

  json.write("BENCH_nasfault.json");
  if (!ok) {
    std::printf("\nnas_fault: FAILED (see rows above)\n");
    return 1;
  }
  std::printf("\nnas_fault: all runs verified; combined-mix loss within "
              "%.0f%%\n",
              kMaxCombinedLossPct);
  return 0;
}
