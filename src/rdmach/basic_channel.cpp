#include "rdmach/basic_channel.hpp"

#include <algorithm>

#include "rdmach/crc32c.hpp"

namespace rdmach {

sim::Task<std::size_t> BasicChannel::put(Connection& conn,
                                         std::span<const ConstIov> iovs) {
  auto& c = static_cast<VerbsConnection&>(conn);
  co_await call_overhead();
  const bool wired = co_await ensure_tx(c);
  if (!wired) co_return 0;
  co_await maybe_recover(c);
  if (credit_denied()) co_return 0;

  const std::size_t total = total_length(iovs);
  const std::uint64_t head = c.ctrl.head_master;
  const std::uint64_t tail = checked_tail(c);  // peer-maintained replica
  const std::size_t free_bytes =
      cfg_.ring_bytes - static_cast<std::size_t>(head - tail);
  const std::size_t n = std::min(total, free_bytes);
  if (n == 0) co_return 0;

  // 1. Copy the whole accepted region into the preregistered buffer
  //    (serialized with the transfer: the basic design's weakness).
  co_await copy_in(c, head, iovs, 0, n, total);

  // 2. RDMA-write the data (two writes if the region wraps the ring).
  // 3. Wait for the data to be placed before exposing it via the head
  //    pointer (conservative ordering; see header comment).  A transport
  //    error recovers and re-posts: the staging copy is intact and the
  //    offsets are unchanged, so the retry is idempotent.
  const std::size_t R = cfg_.ring_bytes;
  const std::size_t off = static_cast<std::size_t>(head % R);
  const std::size_t first = std::min(n, R - off);
  if (cfg_.integrity_check) {
    // Fold the accepted bytes into the rolling stream CRC; the head update
    // below carries (head, stream-CRC) as one 16-byte write, so the
    // receiver can verify the prefix [0, head) end to end.
    c.send_crc = crc32c_update(c.send_crc, c.staging.data() + off, first);
    if (first < n) {
      c.send_crc = crc32c_update(c.send_crc, c.staging.data(), n - first);
    }
    charge_crc(n);
  }
  for (;;) {
    const std::uint64_t wr_id = next_wr_id();
    if (first < n) {
      post_ring_write(c, off, first, off, /*signaled=*/false, next_wr_id());
      post_ring_write(c, 0, n - first, 0, /*signaled=*/true, wr_id);
    } else {
      post_ring_write(c, off, first, off, /*signaled=*/true, wr_id);
    }
    const ib::Wc wc = co_await await_completion(c, wr_id);
    if (wc.status == ib::WcStatus::kSuccess) break;
    co_await maybe_recover(c);
  }

  // 4. Adjust the head and 5. RDMA-write the remote head replica.  The
  //    basic design conservatively completes this write too before
  //    returning, so back-to-back puts serialize with the wire -- the
  //    behaviour behind the paper's 230 MB/s basic peak.  Once the head
  //    master is advanced the data region is covered by replay, so a
  //    failure here recovers (which rewrites data + head) and retries.
  c.ctrl.head_master = head + n;
  if (cfg_.integrity_check) c.ctrl.head_master_crc = c.send_crc;
  const std::size_t head_w = cfg_.integrity_check ? 16 : 8;
  for (;;) {
    const std::uint64_t head_wr = next_wr_id();
    c.qp->post_send(ib::SendWr{
        head_wr,
        ib::Opcode::kRdmaWrite,
        {ib::Sge{reinterpret_cast<std::byte*>(&c.ctrl) + kCtrlHeadMasterOff,
                 head_w, c.ctrl_mr->lkey()}},
        c.r_ctrl_addr + kCtrlHeadReplicaOff,
        c.r_ctrl_rkey,
        /*signaled=*/true});
    const ib::Wc wc = co_await await_completion(c, head_wr);
    if (wc.status == ib::WcStatus::kSuccess) break;
    co_await maybe_recover(c);
  }

  // 6. Return the number of bytes written.
  note(eager_track_, n);
  co_return n;
}

sim::Task<std::size_t> BasicChannel::get(Connection& conn,
                                         std::span<const Iov> iovs) {
  auto& c = static_cast<VerbsConnection&>(conn);
  co_await call_overhead();
  const bool wired = co_await ensure_rx(c);
  if (!wired) co_return 0;
  co_await maybe_recover(c);

  // 1. Check local replicas for new data.  With integrity on, only the
  //    CRC-verified prefix of the incoming stream is readable.
  const std::uint64_t head =
      cfg_.integrity_check ? verify_incoming(c) : c.ctrl.head_replica;
  const std::uint64_t tail = c.ctrl.tail_master;
  const std::size_t avail = static_cast<std::size_t>(head - tail);
  const std::size_t n = std::min(avail, total_length(iovs));
  if (n == 0) co_return 0;

  // 2. Copy out of the shared ring.
  co_await copy_out(c, tail, iovs, 0, n, n);

  // 3. Adjust the tail and 4. RDMA-write the remote tail replica
  //    (every get -- no delaying in the basic design).
  c.ctrl.tail_master = tail + n;
  post_tail_update(c);

  // 5. Return the number of bytes successfully read.
  co_return n;
}

std::uint64_t BasicChannel::journal_consumed(const VerbsConnection& c) const {
  return c.ctrl.tail_master;
}

std::uint64_t BasicChannel::verify_incoming(VerbsConnection& c) {
  const std::uint64_t h = c.ctrl.head_replica;
  if (h <= c.verified_head) return c.verified_head;
  const std::size_t R = cfg_.ring_bytes;
  if (h - c.verified_head > R) {
    // A head word lying garbage-high cannot be a real advance (the sender
    // never outruns the ring); NACK without touching the ring.
    flag_integrity_failure(c);
    return c.verified_head;
  }
  // The QP delivers in order, so a visible head implies the data write
  // before it landed: fold the new bytes into a tentative rolling CRC and
  // compare against the sender's stream CRC shipped with the head.
  const std::size_t n = static_cast<std::size_t>(h - c.verified_head);
  const std::size_t off = static_cast<std::size_t>(c.verified_head % R);
  const std::size_t first = std::min(n, R - off);
  std::uint32_t crc = crc32c_update(c.recv_crc, c.rx + off, first);
  if (first < n) crc = crc32c_update(crc, c.rx, n - first);
  charge_crc(n);
  if (crc != static_cast<std::uint32_t>(c.ctrl.head_replica_crc)) {
    // Data (or the head/CRC pair itself) corrupted in flight: NACK through
    // recovery; the sender's replay rewrites [tail_master, head_master)
    // bit-for-bit from staging and refreshes the head pair.
    flag_integrity_failure(c);
    return c.verified_head;
  }
  c.recv_crc = crc;
  c.verified_head = h;
  return h;
}

sim::Task<void> BasicChannel::replay(VerbsConnection& c,
                                     std::uint64_t peer_consumed) {
  // In-flight tail updates died with the old QP; the handshake watermark
  // is at least as fresh (the quiesce before publishing guarantees every
  // old-epoch write had landed when the peer read it).
  c.ctrl.tail_replica = std::max(c.ctrl.tail_replica, peer_consumed);
  c.tail_valid = std::max(c.tail_valid, peer_consumed);
  if (cfg_.integrity_check) {
    // Keep the local replica's self-check consistent with the resynced
    // value so checked_tail never trips on handshake-derived state.
    c.ctrl.tail_replica_crc = crc32c_u64(c.ctrl.tail_replica);
  }

  // Rewrite everything the peer has not consumed from the retained staging
  // copy, then refresh its head replica.  Bytes it already held are
  // rewritten bit-for-bit -- harmless.  Unsignaled: a failure still raises
  // an error CQE, which flags the connection for the next entry hook.
  const std::uint64_t head = c.ctrl.head_master;
  if (head > peer_consumed) {
    const std::size_t R = cfg_.ring_bytes;
    const std::size_t n = static_cast<std::size_t>(head - peer_consumed);
    const std::size_t off = static_cast<std::size_t>(peer_consumed % R);
    const std::size_t first = std::min(n, R - off);
    post_ring_write(c, off, first, off, /*signaled=*/false, next_wr_id());
    ++retransmits_;
    if (first < n) {
      post_ring_write(c, 0, n - first, 0, /*signaled=*/false, next_wr_id());
      ++retransmits_;
    }
    post_head_update(c);
    ++retransmits_;
    replayed_bytes_ += n;
  }
  co_return;
}

}  // namespace rdmach
