// Registration (pin-down) cache, paper section 5.
//
// "To reduce the number of registrations and deregistrations, we have
// implemented a registration cache.  The basic idea is to delay the
// deregistration of user buffers and put them into a cache.  If the same
// buffer is reused later, its registration information can be fetched
// directly from the cache instead of going through the expensive
// registration process.  Deregistration happens only when there are too
// many registered user buffers."
//
// acquire() pins an entry (it cannot be evicted while a transfer is using
// it); release() unpins but keeps it cached.  Eviction is LRU over
// unpinned entries once the cached byte total exceeds the capacity.
#pragma once

#include <cstdint>
#include <map>

#include "ib/mr.hpp"
#include "sim/task.hpp"

namespace rdmach {

class RegCache {
 public:
  /// `enabled=false` degrades to register-on-acquire / deregister-on-release
  /// (the ablation baseline).
  RegCache(ib::ProtectionDomain& pd, std::size_t capacity_bytes, bool enabled)
      : pd_(&pd), capacity_(capacity_bytes), enabled_(enabled) {}

  /// Returns a registration covering [addr, addr+len), reusing a cached
  /// one when possible.  The entry is pinned until release().  If the HCA
  /// refuses the registration (pin-down limit), unpinned entries are
  /// evicted one at a time and the registration retried; the
  /// ib::RegistrationError propagates only when nothing is evictable.
  sim::Task<ib::MemoryRegion*> acquire(const void* addr, std::size_t len);

  /// Unpins; with the cache enabled the registration is retained for
  /// reuse, otherwise it is deregistered immediately.
  sim::Task<void> release(ib::MemoryRegion* mr);

  /// Force-removes a registration regardless of pin count and deregisters
  /// it (QP-error recovery: translation state involved in a torn-down
  /// transfer is not trusted across the teardown).  The caller must
  /// re-acquire before reuse.
  sim::Task<void> invalidate(ib::MemoryRegion* mr);

  /// Deregisters every unpinned entry (finalize).
  sim::Task<void> flush();

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::size_t cached_bytes() const noexcept { return bytes_; }
  std::size_t entry_count() const noexcept { return entries_.size(); }
  bool enabled() const noexcept { return enabled_; }

 private:
  struct Entry {
    ib::MemoryRegion* mr = nullptr;
    int pins = 0;
    std::uint64_t last_use = 0;
  };

  sim::Task<void> evict_to_capacity();
  /// Evicts the LRU unpinned entry; false when everything is pinned.
  sim::Task<bool> evict_one();

  ib::ProtectionDomain* pd_;
  std::size_t capacity_;
  bool enabled_;
  std::map<const std::byte*, Entry> entries_;  // keyed by region start
  /// High-water mark of any cached region's length; bounds how far below a
  /// lookup address an enclosing entry's start can lie.
  std::size_t max_entry_len_ = 0;
  std::size_t bytes_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rdmach
