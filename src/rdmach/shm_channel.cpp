#include "rdmach/shm_channel.hpp"

#include <algorithm>

namespace rdmach {

namespace {
std::string key(int from, int to, const char* what) {
  return "shm:" + std::to_string(from) + ":" + std::to_string(to) + ":" + what;
}
}  // namespace

sim::Task<void> ShmChannel::init() {
  pmi::Kvs& kvs = *ctx_->kvs;
  conns_.resize(static_cast<std::size_t>(size()));
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    auto conn = std::make_unique<ShmConnection>();
    conn->peer = p;
    conn->in = std::make_unique<Ring>();
    conn->in->buf.assign(cfg_.ring_bytes, std::byte{0});
    kvs.put_u64(key(rank(), p, "ring"),
                reinterpret_cast<std::uint64_t>(conn->in.get()));
    conns_[static_cast<std::size_t>(p)] = std::move(conn);
  }
  kvs.put_u64("shm:" + std::to_string(rank()) + ":chan",
              reinterpret_cast<std::uint64_t>(this));
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    ShmConnection& c = *conns_[static_cast<std::size_t>(p)];
    c.out = reinterpret_cast<Ring*>(co_await kvs.get_u64(key(p, rank(), "ring")));
    c.peer_chan = reinterpret_cast<ShmChannel*>(
        co_await kvs.get_u64("shm:" + std::to_string(p) + ":chan"));
  }
  co_await ctx_->barrier->arrive();
}

sim::Task<void> ShmChannel::finalize() { co_await ctx_->barrier->arrive(); }

Connection& ShmChannel::connection(int peer) {
  auto& c = conns_.at(static_cast<std::size_t>(peer));
  if (!c) throw std::logic_error("no connection to self");
  return *c;
}

sim::Task<std::size_t> ShmChannel::put(Connection& conn,
                                       std::span<const ConstIov> iovs) {
  auto& c = static_cast<ShmConnection&>(conn);
  co_await ctx_->node->compute(cfg_.per_call_overhead);
  Ring& r = *c.out;
  const std::size_t R = r.buf.size();
  const std::size_t total = total_length(iovs);
  std::size_t n = std::min(total, R - static_cast<std::size_t>(r.head - r.tail));
  if (n == 0) co_return 0;
  const std::size_t accepted = n;
  std::size_t iov_idx = 0, in_iov = 0;
  std::uint64_t pos = r.head;
  while (n > 0) {
    const std::size_t off = static_cast<std::size_t>(pos % R);
    const std::size_t piece =
        std::min({n, iovs[iov_idx].len - in_iov, R - off});
    co_await ctx_->node->copy(r.buf.data() + off, iovs[iov_idx].base + in_iov,
                              piece, total);
    pos += piece;
    in_iov += piece;
    n -= piece;
    if (in_iov == iovs[iov_idx].len) {
      ++iov_idx;
      in_iov = 0;
    }
  }
  r.head += accepted;
  c.peer_chan->activity_.fire();
  note(eager_track_, accepted);
  co_return accepted;
}

sim::Task<std::size_t> ShmChannel::get(Connection& conn,
                                       std::span<const Iov> iovs) {
  auto& c = static_cast<ShmConnection&>(conn);
  co_await ctx_->node->compute(cfg_.per_call_overhead);
  Ring& r = *c.in;
  const std::size_t R = r.buf.size();
  const std::size_t want = total_length(iovs);
  std::size_t n =
      std::min(want, static_cast<std::size_t>(r.head - r.tail));
  if (n == 0) co_return 0;
  const std::size_t delivered = n;
  std::size_t iov_idx = 0, in_iov = 0;
  std::uint64_t pos = r.tail;
  while (n > 0) {
    const std::size_t off = static_cast<std::size_t>(pos % R);
    const std::size_t piece =
        std::min({n, iovs[iov_idx].len - in_iov, R - off});
    co_await ctx_->node->copy(iovs[iov_idx].base + in_iov, r.buf.data() + off,
                              piece, want);
    pos += piece;
    in_iov += piece;
    n -= piece;
    if (in_iov == iovs[iov_idx].len) {
      ++iov_idx;
      in_iov = 0;
    }
  }
  r.tail += delivered;
  c.peer_chan->activity_.fire();
  activity_.fire();  // a blocked local put may now have space
  co_return delivered;
}

sim::Task<void> ShmChannel::wait_for_activity() { co_await activity_.wait(); }

std::uint64_t ShmChannel::activity_count() const {
  return activity_.fire_count();
}

}  // namespace rdmach
