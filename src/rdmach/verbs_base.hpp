// Common machinery for the RDMA-write-based channel designs (basic,
// piggyback, pipeline, zero-copy): connection bootstrap through PMI,
// registered ring/staging/control-block memory, and completion dispatch.
//
// Memory layout per connection (mirroring paper section 4.2): the "shared"
// ring lives in the receiver's memory, registered and exported; the sender
// keeps a preregistered staging buffer of the same size; head and tail
// pointers are replicated so neither side ever polls through the network --
// the tail master lives at the receiver with a replica at the sender, the
// head master at the sender with a replica at the receiver.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ib/cq.hpp"
#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "ib/mr.hpp"
#include "ib/node.hpp"
#include "ib/qp.hpp"
#include "rdmach/channel.hpp"

namespace rdmach {

/// Registered control block; offsets are part of the wire protocol.
struct alignas(64) CtrlBlock {
  /// Written by the peer: how much of MY outgoing stream it has consumed.
  std::uint64_t tail_replica = 0;
  /// Written by the peer: how much it has produced into MY incoming ring
  /// (used by the basic design only; the others piggyback/flag instead).
  std::uint64_t head_replica = 0;
  /// My outgoing produced count (RDMA-write source for head updates).
  std::uint64_t head_master = 0;
  /// My incoming consumed count (RDMA-write source for tail updates).
  std::uint64_t tail_master = 0;
};

inline constexpr std::size_t kCtrlTailReplicaOff = 0;
inline constexpr std::size_t kCtrlHeadReplicaOff = 8;
inline constexpr std::size_t kCtrlHeadMasterOff = 16;
inline constexpr std::size_t kCtrlTailMasterOff = 24;

class VerbsConnection : public Connection {
 public:
  ib::QueuePair* qp = nullptr;
  std::vector<std::byte> recv_ring;  // peer RDMA-writes message data here
  std::vector<std::byte> staging;    // preregistered send-side copy buffer
  CtrlBlock ctrl;
  ib::MemoryRegion* ring_mr = nullptr;
  ib::MemoryRegion* staging_mr = nullptr;
  ib::MemoryRegion* ctrl_mr = nullptr;
  std::uint64_t r_ring_addr = 0;  // peer's recv ring (for my writes)
  std::uint32_t r_ring_rkey = 0;
  std::uint64_t r_ctrl_addr = 0;  // peer's control block
  std::uint32_t r_ctrl_rkey = 0;
};

class VerbsChannelBase : public Channel {
 public:
  sim::Task<void> init() override;
  sim::Task<void> finalize() override;
  Connection& connection(int peer) override;
  sim::Task<void> wait_for_activity() override;
  std::uint64_t activity_count() const override;

  ib::ProtectionDomain& pd() const noexcept { return *pd_; }
  ib::CompletionQueue& cq() const noexcept { return *cq_; }
  ib::Node& node() const noexcept { return *ctx_->node; }

 protected:
  VerbsChannelBase(pmi::Context& ctx, const ChannelConfig& cfg)
      : Channel(ctx, cfg) {}

  /// Design-specific connection state.
  virtual std::unique_ptr<VerbsConnection> make_connection() = 0;

  std::uint64_t next_wr_id() noexcept { return ++wr_seq_; }

  /// RDMA-writes staging[staging_off, +len) into the peer ring at ring_off.
  void post_ring_write(VerbsConnection& c, std::size_t staging_off,
                       std::size_t len, std::size_t ring_off, bool signaled,
                       std::uint64_t wr_id);

  /// RDMA-writes my head_master into the peer's head_replica (basic design).
  void post_head_update(VerbsConnection& c);
  /// RDMA-writes my tail_master into the peer's tail_replica.
  void post_tail_update(VerbsConnection& c);

  /// Polls every available CQE into the completion stash.
  void drain_cq();
  /// Removes a stashed completion for wr_id, if present.
  bool take_completion(std::uint64_t wr_id, ib::Wc* out);
  /// Blocks until the completion for wr_id is available (throws on error
  /// status -- channel-internal transfers are programmed correctly by
  /// construction, so an error CQE here is a bug, not a runtime condition).
  sim::Task<ib::Wc> await_completion(std::uint64_t wr_id);

  /// Charges the per-call software overhead.
  sim::Task<void> call_overhead() {
    return node().compute(cfg_.per_call_overhead);
  }

  /// Scatter/gather between an iov list (with a starting byte offset) and a
  /// ring region, handling ring wraparound; charges modelled copy time.
  /// `ws` is the working-set hint forwarded to Node::copy.
  sim::Task<void> copy_in(VerbsConnection& c, std::uint64_t ring_pos,
                          std::span<const ConstIov> iovs, std::size_t iov_off,
                          std::size_t n, std::size_t ws);
  sim::Task<void> copy_out(VerbsConnection& c, std::uint64_t ring_pos,
                           std::span<const Iov> iovs, std::size_t iov_off,
                           std::size_t n, std::size_t ws);

  std::vector<std::unique_ptr<VerbsConnection>> conns_;  // [peer]; self null

 private:
  ib::ProtectionDomain* pd_ = nullptr;
  ib::CompletionQueue* cq_ = nullptr;
  std::unordered_map<std::uint64_t, ib::Wc> completed_;
  std::uint64_t wr_seq_ = 0;
};

}  // namespace rdmach
