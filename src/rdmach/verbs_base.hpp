// Common machinery for the RDMA-write-based channel designs (basic,
// piggyback, pipeline, zero-copy): connection bootstrap through PMI,
// registered ring/staging/control-block memory, completion dispatch, and
// connection recovery.
//
// Memory layout per connection (mirroring paper section 4.2): the "shared"
// ring lives in the receiver's memory, registered and exported; the sender
// keeps a preregistered staging buffer of the same size; head and tail
// pointers are replicated so neither side ever polls through the network --
// the tail master lives at the receiver with a replica at the sender, the
// head master at the sender with a replica at the receiver.
//
// Recovery (see DESIGN.md "Connection recovery"): a transport error flushes
// the QP; both ranks then tear the QP pair down, re-handshake through PMI
// under a bumped epoch number, and the sender replays every ring byte the
// receiver has not acknowledged consuming from its retained staging copy.
// The head/tail counters plus the staging ring ARE the journal -- nothing
// extra is logged on the fast path.  Attempts back off exponentially; a
// budget of consecutive no-progress attempts bounds the retry loop, after
// which put/get raise ChannelError instead of hanging.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ib/cq.hpp"
#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "ib/mr.hpp"
#include "ib/node.hpp"
#include "ib/qp.hpp"
#include "ib/srq.hpp"
#include "rdmach/channel.hpp"

namespace rdmach {

/// Registered control block; offsets are part of the wire protocol.  Each
/// counter is paired with a CRC word directly behind it so that, with
/// integrity checking on, one contiguous 16-byte RDMA write carries the
/// value together with its self-check (with it off, the 8-byte value alone
/// is written and the CRC words stay zero).
struct alignas(64) CtrlBlock {
  /// Written by the peer: how much of MY outgoing stream it has consumed.
  std::uint64_t tail_replica = 0;
  /// CRC32C of the tail value, written with it (integrity_check only).
  std::uint64_t tail_replica_crc = 0;
  /// Written by the peer: how much it has produced into MY incoming ring
  /// (used by the basic design only; the others piggyback/flag instead).
  std::uint64_t head_replica = 0;
  /// Basic design, integrity on: the sender's rolling stream CRC32C over
  /// bytes [0, head_replica) of this direction.
  std::uint64_t head_replica_crc = 0;
  /// My outgoing produced count (RDMA-write source for head updates).
  std::uint64_t head_master = 0;
  std::uint64_t head_master_crc = 0;
  /// My incoming consumed count (RDMA-write source for tail updates).
  std::uint64_t tail_master = 0;
  std::uint64_t tail_master_crc = 0;
};

inline constexpr std::size_t kCtrlTailReplicaOff = 0;
inline constexpr std::size_t kCtrlHeadReplicaOff = 16;
inline constexpr std::size_t kCtrlHeadMasterOff = 32;
inline constexpr std::size_t kCtrlTailMasterOff = 48;

class VerbsConnection : public Connection {
 public:
  ib::QueuePair* qp = nullptr;
  std::vector<std::byte> recv_ring;  // peer RDMA-writes message data here
  std::vector<std::byte> staging;    // preregistered send-side copy buffer
  CtrlBlock ctrl;
  ib::MemoryRegion* ring_mr = nullptr;
  ib::MemoryRegion* staging_mr = nullptr;
  ib::MemoryRegion* ctrl_mr = nullptr;
  std::uint64_t r_ring_addr = 0;  // peer's recv ring (for my writes)
  std::uint32_t r_ring_rkey = 0;
  std::uint64_t r_ctrl_addr = 0;  // peer's control block
  std::uint32_t r_ctrl_rkey = 0;

  /// Recovery journal counters (the data itself lives in `staging` /
  /// `ctrl`, which survive QP replacement).
  struct Recovery {
    std::uint64_t epoch = 0;  // completed re-handshakes on this connection
    int attempts = 0;         // consecutive recoveries without progress
    std::uint64_t last_synced = 0;        // peer consumed mark at last epoch
    std::uint64_t last_synced_local = 0;  // my consumed mark at last epoch
    bool failed = false;  // an error CQE implicated the current QP
    bool dead = false;    // retry budget exhausted (here or at the peer)
    /// The current attempt run includes a CRC-mismatch NACK; colors the
    /// budget-exhaustion error ChannelError::kIntegrity.  Cleared with
    /// `attempts` whenever a recovery makes progress.
    bool integrity = false;
    // ---- watchdog (ChannelConfig::recovery_epoch_deadline) ----------------
    /// Virtual-time deadline of the current no-progress episode; armed by
    /// the episode's first recovery attempt, re-armed on progress, expired
    /// -> ChannelError::kDead with a RecoverySnapshot.  0 = never armed.
    sim::Tick deadline = 0;
    /// When the last recovery attempt started; a gap longer than the
    /// deadline window means a *new* episode (re-arm, don't trip) even
    /// though `attempts` carries over, mirroring the budget's semantics.
    sim::Tick last_attempt = 0;
    /// Deadline value a dma_arrival wakeup has been scheduled for (one
    /// call_at per armed deadline, not one per parked wait).
    sim::Tick wakeup_armed = 0;
    /// Integrity NACKs ever raised on this connection + epoch of the last
    /// (diagnostic snapshot fodder).
    std::uint64_t nacks = 0;
    std::uint64_t last_nack_epoch = 0;
    // ---- accrual suspicion (ChannelConfig::health_detector) ---------------
    /// Per-peer suspicion score: each no-progress recovery attempt accrues
    /// one unit, every successful completion observed for this connection
    /// decays one.  With the health detector on, a watchdog conviction
    /// additionally requires the score to have reached
    /// health_suspicion_trip -- a slow-but-alive peer whose completions
    /// keep trickling in accrues suspicion gradually instead of
    /// binary-tripping at the fixed deadline.  Unused (stays 0) with the
    /// detector off.
    int suspicion = 0;
  };
  Recovery rec;
  ib::Node* peer_node = nullptr;  // for CM-style recovery wakeups

  /// Rails this connection has stopped scheduling onto after their port
  /// died -- the once-per-(connection, rail) guard behind the failover
  /// counters.  Sized to the node's rail count at init.
  std::vector<char> rail_failed;

  // ---- end-to-end integrity state (ChannelConfig::integrity_check) --------
  /// Basic design: rolling CRC32C over every byte ever put / verified on
  /// this direction.
  std::uint32_t send_crc = 0;
  std::uint32_t recv_crc = 0;
  /// Basic design: incoming stream prefix whose CRC has been verified;
  /// get() never reads past it.
  std::uint64_t verified_head = 0;
  /// Highest tail_replica value that passed its self-check word; credit
  /// computations use this, so a corrupted (garbage-high) tail cannot fake
  /// ring space.
  std::uint64_t tail_valid = 0;
  /// Receiver-side CRC mismatch pending: the NACK that arms the next
  /// maybe_recover() to re-handshake and trigger the sender's replay.
  bool integrity_failed = false;

  // ---- lazy connect / connection cache (rank-dimension scaling) -----------
  /// Bring-up state.  Eager init wires every pair up front, so connections
  /// are born kReady; under ChannelConfig::lazy_connect they are born kCold
  /// and walk kCold -> kRequested -> kReady on first use, then kReady ->
  /// kEvictWait -> kCold when the LRU cache shrinks the wired set back
  /// under qp_budget.  Every KVS key of the lazy handshake is
  /// generation-scoped (lz_gen bumps at each teardown) so reconnects are
  /// fresh write-once exchanges, exactly like the epoch-scoped recovery
  /// keys.
  enum class Boot { kCold, kRequested, kReady, kEvictWait };
  Boot boot = Boot::kReady;
  /// Connect generation; evictions bump it.  rec.epoch deliberately
  /// survives teardown -- stale rcv:* keys from a previous life must not
  /// fake a pending peer re-handshake after a reconnect.
  std::uint64_t lz_gen = 0;
  /// My half of the handshake (ring lease, QP, published keys) exists for
  /// lz_gen.
  bool lz_local_ready = false;
  /// Connect / evict-wait retry pacing (rec.attempts is the shared budget).
  sim::Tick lz_next_attempt = 0;
  /// LRU stamp from the channel's use clock; 0 = never used.
  std::uint64_t lz_last_used = 0;
  /// Channel evict-sequence number when this rank last evicted this peer;
  /// 0 = never evicted.  A reconnect landing within qp_budget evictions of
  /// this stamp means the LRU threw away a connection the working set still
  /// needed (cache thrash) -- see ChannelStats::qp_thrash.
  std::uint64_t lz_evicted_at = 0;
  /// Receive-ring base: recv_ring.data() for a dedicated ring, or a
  /// SharedRecvPool lease.  Every receive-path read goes through this.
  std::byte* rx = nullptr;
  /// rx is leased from the channel's shared receive pool (no private
  /// ring_mr; the pool's one registration covers every lease).
  bool ring_pooled = false;
};

class VerbsChannelBase : public Channel {
 public:
  sim::Task<void> init() override;
  sim::Task<void> finalize() override;
  Connection& connection(int peer) override;
  sim::Task<void> wait_for_activity() override;
  std::uint64_t activity_count() const override;

  /// Under lazy_connect the progress engine iterates wired peers only
  /// (kReady/kEvictWait), never the full rank dimension.
  const std::vector<int>* active_peers() const override {
    return cfg_.lazy_connect ? &active_ : nullptr;
  }
  /// Services the lazy-connect mailbox (join requests, evict handshakes)
  /// once per progress pass; no-op with lazy_connect off.
  sim::Task<void> pre_progress() override;

  ib::ProtectionDomain& pd() const noexcept { return *pd_; }
  ib::CompletionQueue& cq() const noexcept { return *cq_; }
  ib::Node& node() const noexcept { return *ctx_->node; }

  /// How many QP re-handshakes this channel has completed (all peers).
  std::uint64_t recoveries() const noexcept { return recoveries_; }

  ChannelStats stats() const override {
    ChannelStats s = Channel::stats();
    s.recoveries = recoveries_;
    s.crc_failures = crc_failures_;
    s.retransmits = retransmits_;
    s.reg_fallbacks = reg_fallbacks_;
    s.cq_overruns = cq_overruns_;
    s.credit_stalls = credit_stalls_;
    s.watchdog_trips = watchdog_trips_;
    s.replayed_bytes = replayed_bytes_;
    s.rails.assign(rail_track_.begin(), rail_track_.end());
    s.rail_failovers = rail_failovers_;
    s.qps_created = qps_created_;
    s.qps_evicted = qps_evicted_;
    s.connects_on_demand = connects_on_demand_;
    s.qps_live = qps_live_;
    s.qp_thrash = qp_thrash_;
    s.obits_posted = obits_posted_;
    s.obit_fast_fails = obit_fast_fails_;
    s.rail_quarantines = rail_quarantines_;
    s.rail_reinstates = rail_reinstates_;
    s.suspicion_trips = suspicion_trips_;
    s.false_suspicions = false_suspicions_;
    s.degraded_ns = degraded_ns_;
    for (const RailHealth& h : rail_health_) {
      // Open quarantines count up to "now": a campaign that ends mid-
      // probation still reports how long the rail has been out.
      if (h.quarantined) {
        s.degraded_ns +=
            static_cast<std::uint64_t>(ctx_->sim().now() - h.since);
      }
    }
    s.srq_pool_high_water = srq_pool_.high_water();
    std::uint64_t resident = srq_pool_.bytes();
    for (const auto& c : conns_) {
      if (!c) continue;
      resident += c->recv_ring.size() + c->staging.size() + sizeof(CtrlBlock);
    }
    s.resident_bytes = resident;
    return s;
  }

  void reset_stats() override {
    Channel::reset_stats();
    recoveries_ = 0;
    crc_failures_ = 0;
    retransmits_ = 0;
    reg_fallbacks_ = 0;
    cq_overruns_ = 0;
    credit_stalls_ = 0;
    watchdog_trips_ = 0;
    replayed_bytes_ = 0;
    rail_failovers_ = 0;
    for (auto& t : rail_track_) t = ChannelStats::RailStats{};
    qps_created_ = 0;
    qps_evicted_ = 0;
    connects_on_demand_ = 0;
    qp_thrash_ = 0;
    obits_posted_ = 0;
    obit_fast_fails_ = 0;
    rail_quarantines_ = 0;
    rail_reinstates_ = 0;
    suspicion_trips_ = 0;
    false_suspicions_ = 0;
    degraded_ns_ = 0;
    for (RailHealth& h : rail_health_) {
      // Restart the open-quarantine clock so per-phase deltas stay exact.
      if (h.quarantined) h.since = ctx_->sim().now();
    }
    // qps_live_ / srq high water are state gauges, not counters: they keep
    // describing what is resident right now.
  }

 protected:
  VerbsChannelBase(pmi::Context& ctx, const ChannelConfig& cfg)
      : Channel(ctx, cfg) {}

  /// Design-specific connection state.
  virtual std::unique_ptr<VerbsConnection> make_connection() = 0;

  std::uint64_t next_wr_id() noexcept { return ++wr_seq_; }

  /// RDMA-writes staging[staging_off, +len) into the peer ring at ring_off.
  void post_ring_write(VerbsConnection& c, std::size_t staging_off,
                       std::size_t len, std::size_t ring_off, bool signaled,
                       std::uint64_t wr_id);

  /// RDMA-writes my head_master into the peer's head_replica (basic design).
  void post_head_update(VerbsConnection& c);
  /// RDMA-writes my tail_master into the peer's tail_replica.
  void post_tail_update(VerbsConnection& c);

  /// Polls every available CQE into the completion stash.
  void drain_cq();
  /// Removes a stashed completion for wr_id, if present.
  bool take_completion(std::uint64_t wr_id, ib::Wc* out);
  /// Blocks until the completion for wr_id is available.  Transport and
  /// flush errors are *returned* (they are runtime conditions the recovery
  /// layer handles); protection errors still throw -- channel-internal
  /// transfers are programmed correctly by construction, so a bad key or
  /// bounds violation here is a bug.
  sim::Task<ib::Wc> await_completion(std::uint64_t wr_id);
  /// Connection-aware variant: identical on the fault-free path (the
  /// watchdog is unarmed there, so wait sources and wakeup order do not
  /// change), but with a recovery episode in flight the park is bounded by
  /// the episode deadline -- a completion that never comes trips the
  /// watchdog (ChannelError::kDead + snapshot) instead of hanging forever.
  /// Designs should use this for any wait a recovery/replay can depend on.
  sim::Task<ib::Wc> await_completion(VerbsConnection& c, std::uint64_t wr_id);

  // ---- recovery watchdog --------------------------------------------------
  /// Whether `c` is inside an armed, still-current watchdog episode (a
  /// stale deadline left over from a long-finished episode does not count).
  bool watchdog_armed(const VerbsConnection& c) const {
    if (cfg_.recovery_epoch_deadline == 0 || c.rec.deadline == 0) {
      return false;
    }
    return ctx_->sim().now() - c.rec.last_attempt <=
           cfg_.recovery_epoch_deadline;
  }
  /// Armed episode past its deadline?  With the health detector on, the
  /// deadline alone does not convict: the connection's accrued suspicion
  /// must also have reached the trip threshold, so a slow-but-alive peer
  /// whose completions keep decaying the score is never declared dead by
  /// the clock alone (the accrual-detector semantics).
  bool watchdog_expired(const VerbsConnection& c) const {
    if (!watchdog_armed(c) || ctx_->sim().now() < c.rec.deadline) {
      return false;
    }
    if (cfg_.health_detector &&
        c.rec.suspicion < cfg_.health_suspicion_trip) {
      return false;
    }
    return true;
  }
  /// Declares `c` dead with a diagnostic snapshot: publishes the dead
  /// marker (releasing a peer parked in its own handshake), wakes both
  /// sides, and throws ChannelError::kDead.  `stage` names the stuck wait.
  [[noreturn]] void watchdog_abort(VerbsConnection& c, const char* stage);
  /// Builds the diagnostic snapshot from `c`'s current recovery state.
  RecoverySnapshot make_snapshot(const VerbsConnection& c,
                                 std::string stage) const;

  // ---- multi-rail bundle --------------------------------------------------
  /// Rail count of this rank's node, fixed at init.  1 on the default
  /// fabric; everything below collapses to the single-rail behavior then.
  int num_rails() const noexcept { return num_rails_; }
  /// The completion queue owned by `rail`'s HCA (rail 0 is cq()).
  ib::CompletionQueue& rail_cq(int rail) const { return *cqs_[static_cast<std::size_t>(rail)]; }
  /// Whether `rail`'s port is still up (initiator-side failure domain).
  bool rail_up(int rail) const {
    return rail >= 0 && rail < num_rails_ &&
           node().rail(rail).up();
  }
  /// First live rail, or 0 when every rail is dead (the recovery loop then
  /// keeps failing on it until the budget declares the connection dead).
  int lowest_live_rail() const {
    for (int r = 0; r < num_rails_; ++r) {
      if (node().rail(r).up()) return r;
    }
    return 0;
  }
  /// Creates a QP bound to `rail`'s port, completing into that rail's CQ.
  ib::QueuePair& create_rail_qp(int rail) {
    ib::Port& port = node().rail(rail);
    ++qps_created_;
    return port.hca().create_qp(pd(), rail_cq(rail), rail_cq(rail), port);
  }
  /// Accounts `bytes` of data-plane traffic scheduled onto `rail`.
  void note_rail(int rail, std::uint64_t bytes) {
    if (rail < 0 || rail >= num_rails_) return;
    auto& t = rail_track_[static_cast<std::size_t>(rail)];
    t.bytes += bytes;
    ++t.stripes;
  }
  /// Records that connection `c` abandoned dead `rail` (idempotent per
  /// (connection, rail): repeated recoveries of the same loss count once).
  void note_rail_dead(VerbsConnection& c, int rail) {
    if (rail < 0 || static_cast<std::size_t>(rail) >= c.rail_failed.size() ||
        c.rail_failed[static_cast<std::size_t>(rail)]) {
      return;
    }
    c.rail_failed[static_cast<std::size_t>(rail)] = 1;
    ++rail_track_[static_cast<std::size_t>(rail)].failovers;
    ++rail_failovers_;
  }

  // ---- gray-failure health monitor (ChannelConfig::health_detector) -------
  /// Per-rail accrual detector state.  Samples are per-chunk goodput
  /// observations (MB/s, the selector's unit); suspicious samples accrue a
  /// score instead of updating the EWMA (so a degraded rail cannot poison
  /// its own baseline), and crossing the trip threshold quarantines the
  /// rail out of the stripe set until probation probes measure healthy
  /// again.  All bookkeeping: no virtual time, no randomness.
  struct RailHealth {
    double mean = 0.0;          // goodput EWMA (MB/s)
    double var = 0.0;           // EWMA of squared deviation
    std::uint64_t samples = 0;  // healthy samples folded into the EWMA
    int suspicion = 0;          // accrued suspicion units
    bool quarantined = false;
    sim::Tick since = 0;        // quarantine entry (degraded_ns accounting)
    double baseline = 0.0;      // mean at quarantine entry
    int skip_count = 0;         // stripe decisions that skipped this rail
    int healthy_probes = 0;     // consecutive healthy probation probes
    bool probe_virgin = true;   // first probe decides false_suspicions
  };

  /// Stripe-set membership test: up AND (detector off OR not quarantined).
  /// Every adaptive scheduling site (write rail pick, read QP pick, aux-QP
  /// placement) consults this instead of rail_up() alone.
  bool rail_usable(int rail) const {
    if (!rail_up(rail)) return false;
    if (!cfg_.health_detector) return true;
    return !rail_health_[static_cast<std::size_t>(rail)].quarantined;
  }
  bool rail_quarantined(int rail) const {
    return cfg_.health_detector && rail >= 0 && rail < num_rails_ &&
           rail_health_[static_cast<std::size_t>(rail)].quarantined;
  }
  /// Probation policy: called by a scheduler each time it skips the
  /// quarantined `rail`; every health_probe_interval-th skip grants one
  /// single-chunk probe through it (the caller then schedules exactly one
  /// chunk there, whose completion sample is the probe's verdict).
  bool rail_probe_due(int rail) {
    if (!rail_quarantined(rail) || !rail_up(rail)) return false;
    RailHealth& h = rail_health_[static_cast<std::size_t>(rail)];
    if (++h.skip_count >= cfg_.health_probe_interval) {
      h.skip_count = 0;
      return true;
    }
    return false;
  }
  /// Detector input: one completed chunk of `bytes` that took
  /// `elapsed_usec` on `rail`.  Call beside the selector's record_rail.
  void note_rail_sample(int rail, std::uint64_t bytes, double elapsed_usec);

  // ---- connection recovery ------------------------------------------------
  /// How many units (bytes or slots, the design's choice) of the peer's
  /// incoming stream this rank has consumed -- the watermark published to
  /// the peer during a re-handshake so it knows where replay must start.
  virtual std::uint64_t journal_consumed(const VerbsConnection& c) const = 0;
  /// Units of my outgoing stream ever produced, in journal_consumed's
  /// unit; snapshots report produced minus the peer's last acknowledged
  /// watermark as the outstanding journal.
  virtual std::uint64_t journal_produced(const VerbsConnection& c) const {
    return c.ctrl.head_master;
  }
  /// Re-posts, onto the freshly connected QP, everything past the peer's
  /// acknowledged watermark: journalled ring state from `staging`, plus any
  /// design-specific in-flight control traffic (e.g. an interrupted
  /// zero-copy rendezvous).  Must be idempotent: replayed units may
  /// duplicate data the peer already holds bit-for-bit.
  virtual sim::Task<void> replay(VerbsConnection& c,
                                 std::uint64_t peer_consumed) = 0;
  /// Entry hook for put/get: raises ChannelError if the connection is dead,
  /// otherwise runs the recovery loop until the connection is clean.  Free
  /// of posts and virtual time on the fault-free path.
  sim::Task<void> maybe_recover(VerbsConnection& c);

  // ---- failure detector (process faults) ----------------------------------
  /// Publishes an obituary for `c`'s peer on the job-wide board.  Called at
  /// every site that convicts a peer as permanently dead (watchdog trip,
  /// retry-budget exhaustion, lazy-connect pacing budget), so the first
  /// rank to pay a full detection cost spares everyone else theirs.  Wakes
  /// every node's progress loop -- engines park on the fabric trigger, not
  /// the KVS one.  Idempotent per peer.
  void post_obituary(VerbsConnection& c);
  /// Whether `c`'s peer is already on the obituary board.
  bool peer_obituaried(const VerbsConnection& c) const {
    return ctx_->kvs->is_dead(c.peer);
  }
  /// Fast-fail gate: if the peer is obituaried (by anyone) and `c` is not
  /// yet locally marked dead, marks it and throws ChannelError::kDead with
  /// a snapshot -- the caller never burns a local retry budget against a
  /// known corpse.  No-op for live peers.
  void obit_fast_fail(VerbsConnection& c, const char* stage);

  // ---- lazy connect / connection cache ------------------------------------
  /// put()-side gate: under lazy_connect, services the handshake mailbox
  /// and drives `c` toward kReady, initiating the on-demand connect on
  /// first use.  Returns false when the connection is not usable yet (the
  /// caller accepts zero bytes this pass; a future wakeup is always
  /// pending, so a parked sender cannot deadlock).  Immediate true with
  /// lazy_connect off -- the eager path never reaches any of this.
  sim::Task<bool> ensure_tx(VerbsConnection& c);
  /// get()-side gate: like ensure_tx but passive -- a receiver never
  /// initiates a connection, it only answers the sender's request (the
  /// connect-request rendezvous of the lazy bootstrap).
  sim::Task<bool> ensure_rx(VerbsConnection& c);
  /// Cheap receive-path guard for lookahead/attach entry points: whether
  /// `c` currently has ring state worth reading.  Always true when eager.
  bool lazy_wired(const VerbsConnection& c) const {
    return !cfg_.lazy_connect ||
           c.boot == VerbsConnection::Boot::kReady ||
           c.boot == VerbsConnection::Boot::kEvictWait;
  }

  /// Highest unit of my outgoing stream the peer has acknowledged
  /// consuming; eviction requires journal_acked == journal_produced on both
  /// sides (an outstanding journal pins the connection).  Designs with
  /// piggybacked acknowledgements override.
  virtual std::uint64_t journal_acked(VerbsConnection& c) {
    return checked_tail(c);
  }
  /// Design veto on tearing down `c` (in-flight rendezvous, pending
  /// zero-copy acknowledgements, open CTS rounds...).
  virtual bool lazy_evictable(const VerbsConnection&) const { return true; }
  /// Zeroes design-specific journal counters at lazy teardown; the ctrl
  /// block itself is reset by the base.  Only fully-drained connections are
  /// ever torn down, so this is bookkeeping, not data loss.
  virtual void lazy_reset_journal(VerbsConnection&) {}
  /// Pushes out deferred consumption acknowledgements (piggybacked tail
  /// updates waiting for reverse traffic that may never come).  Called on
  /// wired connections while this rank is under cache pressure: an unsent
  /// ack pins the PEER's journal, so flushing is what lets the peer evict
  /// its half.  Default no-op (designs that ack on every get need none).
  virtual void lazy_flush_acks(VerbsConnection&) {}
  /// Design hooks around the lazy handshake: per-connection extras
  /// (auxiliary QPs, flag arrays) created with the local half, joined with
  /// the peer half, and dropped at teardown.  Defaults are no-ops.
  virtual sim::Task<void> lazy_setup_extra(VerbsConnection& c);
  virtual sim::Task<void> lazy_join_extra(VerbsConnection& c);
  virtual sim::Task<void> lazy_evict_extra(VerbsConnection& c);

  /// Generation-scoped KVS key of the lazy handshake; design hooks publish
  /// their extras under it so re-publishes after an eviction stay
  /// write-once.
  static std::string lazy_key(int from, int to, std::uint64_t gen,
                              const char* what);

  /// Charges the per-call software overhead, flushing any modelled CRC
  /// cost accumulated since the last coroutine point first.
  sim::Task<void> call_overhead() {
    if (pending_crc_bytes_ > 0) co_await flush_crc_charge();
    co_await node().compute(cfg_.per_call_overhead);
  }

  // ---- end-to-end integrity ----------------------------------------------
  /// Accumulates the modelled cost of checksumming `bytes` (the CRC walks
  /// the data through the CPU, i.e. memory-bus traffic).  Computation sites
  /// are often synchronous, so the charge is deferred and flushed at the
  /// next coroutine point (call_overhead / flush_crc_charge) -- at most one
  /// call late, which keeps the cost measurable without restructuring every
  /// header-poll site into a coroutine.
  void charge_crc(std::size_t bytes) {
    if (cfg_.integrity_check) pending_crc_bytes_ += bytes;
  }
  sim::Task<void> flush_crc_charge();
  /// Records a receiver-side CRC mismatch on `c`: bumps the counter, arms
  /// the recovery NACK, and wakes the local progress loop (detection
  /// happens inside a get()/put() that is about to return 0; with no other
  /// traffic, nothing else would re-enter maybe_recover).
  void flag_integrity_failure(VerbsConnection& c);
  /// `c.ctrl.tail_replica` filtered through its self-check word when
  /// integrity checking is on: a corrupted tail update is ignored (counted
  /// as a crc_failure) until the next clean one lands.
  std::uint64_t checked_tail(VerbsConnection& c);
  /// Injected ring-credit denial ("<node>.credit" fault scope):
  /// receiver-not-ready backpressure.  When it fires, the caller's put()
  /// accepts nothing this call; a delayed self-wakeup is scheduled so a
  /// sender parked in wait_for_activity() retries instead of deadlocking.
  bool credit_denied();
  /// Delayed dma_arrival self-wakeup (one retry_delay out) for degradation
  /// paths that turned work away with no future event otherwise pending.
  void schedule_retry_wakeup();

  /// Scatter/gather between an iov list (with a starting byte offset) and a
  /// ring region, handling ring wraparound; charges modelled copy time.
  /// `ws` is the working-set hint forwarded to Node::copy.
  sim::Task<void> copy_in(VerbsConnection& c, std::uint64_t ring_pos,
                          std::span<const ConstIov> iovs, std::size_t iov_off,
                          std::size_t n, std::size_t ws);
  sim::Task<void> copy_out(VerbsConnection& c, std::uint64_t ring_pos,
                           std::span<const Iov> iovs, std::size_t iov_off,
                           std::size_t n, std::size_t ws);

  // Integrity / degradation counters surfaced through stats().
  std::uint64_t crc_failures_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t reg_fallbacks_ = 0;
  std::uint64_t cq_overruns_ = 0;
  std::uint64_t credit_stalls_ = 0;
  std::uint64_t watchdog_trips_ = 0;
  /// Bytes re-posted by replay; designs account at each replay post site.
  std::uint64_t replayed_bytes_ = 0;

  std::vector<std::unique_ptr<VerbsConnection>> conns_;  // [peer]; self null
  /// Live QPs only; an error CQE whose qp_num is absent belongs to a torn
  /// down epoch and must not re-trigger recovery.  Protected so designs
  /// with auxiliary QPs (adaptive read pipeline) can enrol them for error
  /// dispatch.
  std::unordered_map<std::uint32_t, VerbsConnection*> qp_index_;

 private:
  /// One teardown + re-handshake + replay cycle.  Throws ChannelError when
  /// the retry budget runs out (publishing the dead marker first so the
  /// peer is released too).
  sim::Task<void> recover(VerbsConnection& c);
  /// Schedules one dma_arrival self-wakeup at `c`'s episode deadline (at
  /// most one per armed deadline value), so waits parked against the node
  /// trigger are guaranteed a wakeup at expiry.
  void arm_watchdog_wakeup(VerbsConnection& c);
  /// Finalize-time flush of one connection: quiesces the QP and re-runs
  /// recovery until every byte a put() accepted has actually been delivered
  /// (or the connection is dead, whose loss put/get already surfaced).
  sim::Task<void> drain_connection(VerbsConnection& c);
  /// CM-style out-of-band event: fires the peer node's dma_arrival one
  /// wire latency from now, so a rank parked in wait_for_activity() learns
  /// that a recovery handshake (or a dead marker) awaits it.
  void wake_peer(VerbsConnection& c);
  /// True when the peer has published its half of the next epoch's
  /// handshake -- the signal for a rank that saw no local error to join.
  bool peer_epoch_pending(VerbsConnection& c) const;

  // ---- lazy connect internals ---------------------------------------------
  /// One pass of the lazy control plane: drains the handshake mailbox,
  /// drives pending joins, then enforces qp_budget.  Reentrancy-guarded --
  /// every put/get/progress pass calls it.
  sim::Task<void> lazy_service();
  sim::Task<void> lz_handle_mail(const std::string& msg);
  /// Drives one kRequested connection: sets up the local half if needed,
  /// then joins the peer half once its qpn sentinel is published.
  sim::Task<void> lazy_advance(VerbsConnection& c);
  /// Allocates my half (ring lease or dedicated ring, staging, ctrl, QP)
  /// and publishes the generation-scoped keys, qpn last.  False = shared
  /// receive pool exhausted (counted as a credit stall; caller retries).
  sim::Task<bool> lazy_setup_local(VerbsConnection& c);
  /// Tears down a drained connection back to kCold and bumps lz_gen.
  sim::Task<void> lazy_teardown(VerbsConnection& c);
  /// Starts one LRU eviction handshake when the wired set exceeds
  /// qp_budget and a fully-drained victim exists.
  sim::Task<void> lazy_maybe_evict();
  /// Connect / evict-wait retry pacing against the shared attempt budget;
  /// throws ChannelError::kDead when it runs out (publishing the dead
  /// marker first, like recovery budget exhaustion).
  sim::Task<void> lz_pace(VerbsConnection& c, const char* stage);
  /// Appends a control message to the peer's mailbox and wakes it.
  void lz_post_mail(VerbsConnection& c, std::string msg);
  void lz_touch(VerbsConnection& c) { c.lz_last_used = ++lz_clock_; }
  void lz_activate(int peer);
  void lz_deactivate(int peer);
  void lz_unpend(int peer);

  ib::ProtectionDomain* pd_ = nullptr;
  ib::CompletionQueue* cq_ = nullptr;
  /// One CQ per rail; cqs_[0] == cq_ (the legacy name "rankN.cq", so
  /// single-rail traces are unchanged).  Completion dispatch drains all of
  /// them; wr_ids are globally unique across rails.
  std::vector<ib::CompletionQueue*> cqs_;
  int num_rails_ = 1;
  std::vector<ChannelStats::RailStats> rail_track_;
  std::uint64_t rail_failovers_ = 0;
  // ---- gray-failure health monitor ----------------------------------------
  std::vector<RailHealth> rail_health_;  // sized to num_rails_ at init
  std::uint64_t rail_quarantines_ = 0;
  std::uint64_t rail_reinstates_ = 0;
  std::uint64_t suspicion_trips_ = 0;
  std::uint64_t false_suspicions_ = 0;
  std::uint64_t degraded_ns_ = 0;  // closed quarantine windows only
  /// Cheap over-approximation of "some connection has an armed watchdog
  /// episode": set when recover() arms a deadline, never on the fault-free
  /// path -- gates the per-CQE qp_index_ lookup that credits successful
  /// completions as episode progress (drain_cq), so clean runs pay nothing.
  bool wd_hint_ = false;
  std::unordered_map<std::uint64_t, ib::Wc> completed_;
  /// drain_cq scratch for batched CQ polling (reused across passes so the
  /// hot path never allocates).
  std::vector<ib::Wc> wc_scratch_;
  std::uint64_t wr_seq_ = 0;
  std::uint64_t recoveries_ = 0;
  /// Modelled CRC cost not yet charged to the memory bus.
  std::size_t pending_crc_bytes_ = 0;

  // ---- lazy connect / connection cache state ------------------------------
  ib::SharedRecvPool srq_pool_;
  ib::MemoryRegion* srq_mr_ = nullptr;
  /// Wired peers (kReady/kEvictWait), ascending -- the progress engine's
  /// iteration set and the eviction scan's domain (bounded by qp_budget+1).
  std::vector<int> active_;
  /// Peers mid-handshake (kRequested); each service pass re-drives them.
  std::vector<int> lz_pending_;
  std::size_t lz_mail_cursor_ = 0;
  bool lz_service_busy_ = false;
  /// Peer of the one in-flight eviction handshake, or -1.
  int lz_evict_peer_ = -1;
  /// Peer the in-flight ensure_tx/ensure_rx is for, or -1: never picked as
  /// an eviction victim.  Without this, a rank whose other connections are
  /// all pinned (e.g. tail acks waiting on reverse traffic) would evict the
  /// one clean connection -- the one the current operation needs -- and
  /// livelock on evict/reconnect.
  int lz_protect_ = -1;
  std::uint64_t lz_clock_ = 0;
  std::uint64_t qps_created_ = 0;
  std::uint64_t qps_evicted_ = 0;
  std::uint64_t connects_on_demand_ = 0;
  /// Resident connections (wired QP sets), the qp_budget gauge.
  std::uint64_t qps_live_ = 0;
  /// Evictions this rank has initiated (the thrash-window clock).
  std::uint64_t lz_evict_seq_ = 0;
  std::uint64_t qp_thrash_ = 0;
  /// One-shot diagnostic guard for the thrash warning.
  bool qp_thrash_warned_ = false;
  std::uint64_t obits_posted_ = 0;
  std::uint64_t obit_fast_fails_ = 0;
};

}  // namespace rdmach
