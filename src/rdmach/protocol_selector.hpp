// Online rendezvous-protocol selector for the adaptive channel.
//
// The engine starts from static size thresholds (eager below the zero-copy
// threshold, RDMA-write rendezvous in the mid band, chunked RDMA-read
// pipeline above rndv_read_threshold) and then tunes the write/read
// crossover from observed goodput: every completed rendezvous reports
// (protocol, message length, elapsed virtual time), which feeds a per-
// protocol EWMA in log2 size buckets.  choose() picks the protocol whose
// EWMA goodput leads in the message's bucket, with a deterministic probe of
// the under-sampled protocol every Nth rendezvous so a protocol that fell
// behind keeps getting fresh measurements.  Everything is integer/EWMA
// state -- no wall clock, no randomness -- so decisions are reproducible in
// the deterministic simulation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rdmach {

class ProtocolSelector {
 public:
  enum class Proto { kEager, kWrite, kRead };

  struct Config {
    std::size_t eager_max = 32 * 1024;      // below: eager
    std::size_t read_min = 64 * 1024;       // static write/read boundary
    int probe_interval = 32;                // 0 = never probe
    double alpha = 0.3;                     // EWMA weight of new samples
  };

  explicit ProtocolSelector(const Config& cfg) : cfg_(cfg) {}

  /// Decides the protocol for a `len`-byte message and counts the decision
  /// toward the bucket's probe cadence.
  Proto choose(std::size_t len);

  /// Same decision without mutating probe state (for inspection/tests).
  Proto decision(std::size_t len) const;

  /// Reports a completed rendezvous: `bytes` moved in `elapsed_usec` of
  /// virtual time (RTS posted to ack received).  `concurrency` is how many
  /// rendezvous were in flight when this one started (itself included):
  /// under pipelining the raw elapsed time is mostly queueing behind the
  /// others, so the sample is normalized to elapsed/concurrency -- an
  /// estimate of the per-message service time -- before entering the EWMA.
  void record(Proto p, std::size_t len, std::uint64_t bytes,
              double elapsed_usec, unsigned concurrency = 1);

  /// Smallest message size at which decision() currently says kRead; sizes
  /// below it (and >= eager_max) go to the write path.  This is the learned
  /// crossover surfaced in ChannelStats.
  std::size_t write_read_crossover() const;

  double ewma_mbps(Proto p, std::size_t len) const;
  /// Best EWMA goodput of `p` across all size buckets (0 when unsampled);
  /// the representative per-protocol figure surfaced in ChannelStats.
  double peak_mbps(Proto p) const;
  std::size_t eager_max() const noexcept { return cfg_.eager_max; }

  // ---- per-rail goodput (multi-rail striping) -----------------------------
  /// Reports one completed stripe chunk on `rail`: `bytes` moved in
  /// `elapsed_usec` of virtual time (chunk issued to chunk retired).  Only
  /// relative accuracy matters -- the weights steer the stripe split, they
  /// are not a bandwidth figure.
  void record_rail(int rail, std::uint64_t bytes, double elapsed_usec);
  /// EWMA goodput of `rail` (0 when unsampled).
  double rail_mbps(int rail) const;
  /// Stripe weight for deficit scheduling.  Sampled rails use their EWMA;
  /// an unsampled rail borrows the best sampled weight (optimistic, so new
  /// or recovered rails get probed with real chunks), and with nothing
  /// sampled anywhere every rail weighs 1.0 (pure equal split).
  double rail_weight(int rail) const;

 private:
  // log2 buckets up to 2^47; bucket(len) groups [2^k, 2^(k+1)).
  static constexpr int kBuckets = 48;
  /// A learned decision overrides the static boundary only when the leading
  /// arm's EWMA beats the other by this factor.  Concurrency-normalized
  /// samples still carry scheduling noise; without a margin the decision
  /// flip-flops between protocols message to message, and the mixed
  /// schedule costs more than either pure one.
  static constexpr double kHysteresis = 1.15;
  static int bucket(std::size_t len);

  struct Arm {
    double mbps = 0.0;      // EWMA goodput
    std::uint64_t n = 0;    // samples
  };
  struct Bucket {
    Arm write;
    Arm read;
    std::uint64_t decisions = 0;
  };

  Proto best(const Bucket& b, std::size_t len) const;

  Config cfg_;
  std::array<Bucket, kBuckets> buckets_{};
  std::vector<Arm> rails_;  // grown on first record_rail for a rail index
};

}  // namespace rdmach
