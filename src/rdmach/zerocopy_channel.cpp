#include "rdmach/zerocopy_channel.hpp"

#include <algorithm>
#include <cstring>

#include "rdmach/crc32c.hpp"

namespace rdmach {

sim::Task<void> ZeroCopyChannel::init() {
  co_await PipelineChannel::init();
  cache_ = std::make_unique<RegCache>(pd(), cfg_.reg_cache_capacity,
                                      cfg_.use_reg_cache);
}

sim::Task<void> ZeroCopyChannel::finalize() {
  co_await cache_->flush();
  co_await PipelineChannel::finalize();
}

void ZeroCopyChannel::harvest_acks(SlotConnection& c) {
  for (;;) {
    const SlotHeader* hdr = peek_slot(c);
    if (hdr == nullptr ||
        hdr->kind != static_cast<std::uint32_t>(SlotKind::kAck)) {
      return;
    }
    c.rndv_acked = true;
    consume_slot(c);
  }
}

void ZeroCopyChannel::try_send_ack(SlotConnection& c) {
  if (free_slots(c) == 0) {
    c.ack_pending = true;
    return;
  }
  begin_slot(c, SlotKind::kAck, 0);
  finish_slot(c, 0);
  const std::size_t idx =
      static_cast<std::size_t>((c.slots_sent - 1) % slot_count());
  post_ring_write(c, idx * cfg_.chunk_bytes, kSlotOverhead,
                  idx * cfg_.chunk_bytes, /*signaled=*/false, next_wr_id());
  c.ack_pending = false;
}

namespace {
// "Because of the extra overhead in the implementation, the zero-copy
// design slightly increases the latency for small messages" (section 5):
// the threshold checks and rendezvous state machine cost a little on every
// call.
constexpr sim::Tick kZcStateOverhead = sim::nsec(100);
}  // namespace

sim::Task<std::size_t> ZeroCopyChannel::put(Connection& conn,
                                            std::span<const ConstIov> iovs) {
  auto& c = static_cast<SlotConnection&>(conn);
  co_await node().compute(kZcStateOverhead);
  const bool wired = co_await ensure_tx(c);
  if (!wired) co_return 0;
  co_await maybe_recover(c);

  // Sender-side rendezvous progress: learn of acks even when the caller is
  // only retrying (Figure 10: "Put ... Done" discovered via put).
  harvest_acks(c);
  if (c.rndv_active) {
    co_await call_overhead();
    if (!c.rndv_acked) co_return 0;
    // "When the acknowledgment packet is received at the sender side, the
    // sender deregisters the user buffer, completing the operation."
    co_await cache_->release(c.rndv_mr);
    c.rndv_active = false;
    c.rndv_acked = false;
    c.rndv_mr = nullptr;
    const std::size_t len = c.rndv_len;
    c.rndv_len = 0;
    note(rndv_read_track_, len);
    co_return len;
  }

  // Split the iov list at the first zero-copy-eligible buffer: everything
  // before it streams through the ring, the large buffer itself goes
  // rendezvous.
  std::size_t split = 0;
  while (split < iovs.size() && iovs[split].len < cfg_.zero_copy_threshold) {
    ++split;
  }

  std::size_t accepted = 0;
  if (split > 0) {
    accepted = co_await PipelineChannel::put(conn, iovs.subspan(0, split));
    if (accepted < total_length(iovs.subspan(0, split))) co_return accepted;
  } else {
    co_await call_overhead();
  }

  if (split < iovs.size() && free_slots(c) > 0) {
    const ConstIov& big = iovs[split];
    // Graceful degradation: if the HCA refuses the registration (pin-down
    // limit, injected exhaustion), fall back to streaming the buffer
    // through the pipelined copy path instead of failing the put.
    bool refused = false;
    try {
      c.rndv_mr = co_await cache_->acquire(big.base, big.len);
    } catch (const ib::RegistrationError&) {
      refused = true;  // co_await is illegal in a handler; flag and go
    }
    if (refused) {
      ++reg_fallbacks_;
      const std::size_t copied =
          co_await PipelineChannel::put(conn, iovs.subspan(split, 1));
      co_return accepted + copied;
    }
    RtsPayload rts{reinterpret_cast<std::uint64_t>(big.base), big.len,
                   c.rndv_mr->rkey()};
    // The trailing crc word goes on the wire only when integrity is on,
    // keeping the integrity-off RTS byte-identical to the original format.
    std::size_t rts_w = sizeof(rts) - sizeof(rts.crc);
    if (cfg_.integrity_check) {
      // Whole-message checksum rides in the RTS; the receiver withholds
      // completion until the pulled bytes reproduce it.
      rts.crc = crc32c(big.base, big.len);
      charge_crc(big.len);
      rts_w = sizeof(rts);
    }
    std::byte* payload = begin_slot(c, SlotKind::kRts, rts_w);
    std::memcpy(payload, &rts, rts_w);
    finish_slot(c, rts_w);
    const std::size_t idx =
        static_cast<std::size_t>((c.slots_sent - 1) % slot_count());
    post_ring_write(c, idx * cfg_.chunk_bytes, kSlotOverhead + rts_w,
                    idx * cfg_.chunk_bytes, /*signaled=*/false, next_wr_id());
    c.rndv_active = true;
    c.rndv_acked = false;
    c.rndv_len = big.len;
    // The rendezvous bytes are NOT counted yet: put keeps returning 0 for
    // them until the ack arrives (paper section 5).
  }
  co_return accepted;
}

sim::Task<void> ZeroCopyChannel::issue_read(SlotConnection& c,
                                            std::span<const Iov> iovs,
                                            std::size_t offset) {
  const std::size_t remaining = c.r_len - c.r_done;
  if (remaining == 0) co_return;
  // Find the contiguous destination piece at `offset` within the iov list.
  std::size_t skipped = 0;
  std::size_t iv = 0;
  while (iv < iovs.size() && skipped + iovs[iv].len <= offset) {
    skipped += iovs[iv].len;
    ++iv;
  }
  if (iv == iovs.size()) co_return;  // no buffer space offered
  std::byte* dst = iovs[iv].base + (offset - skipped);
  const std::size_t room = iovs[iv].len - (offset - skipped);
  const std::size_t m = std::min(remaining, room);
  if (m == 0) co_return;

  // Register the destination through the cache and pull the data straight
  // into the user buffer -- this is the zero-copy.
  bool refused = false;
  try {
    c.r_dst_mr = co_await cache_->acquire(dst, m);
  } catch (const ib::RegistrationError&) {
    refused = true;  // co_await is illegal in a handler; flag and go
  }
  if (refused) {
    // Transient exhaustion: leave the rendezvous where it is and retry the
    // registration on a later get (the wakeup keeps pollers from parking).
    ++reg_fallbacks_;
    schedule_retry_wakeup();
    co_return;
  }
  c.r_read_wr = next_wr_id();
  c.r_read_len = m;
  c.r_read_dst = dst;
  c.r_read_inflight = true;
  c.qp->post_send(ib::SendWr{c.r_read_wr,
                             ib::Opcode::kRdmaRead,
                             {ib::Sge{dst, m, c.r_dst_mr->lkey()}},
                             c.r_addr + c.r_done,
                             static_cast<std::uint32_t>(c.r_rkey),
                             /*signaled=*/true});
}

sim::Task<std::size_t> ZeroCopyChannel::get(Connection& conn,
                                            std::span<const Iov> iovs) {
  auto& c = static_cast<SlotConnection&>(conn);
  co_await call_overhead();
  const bool wired = co_await ensure_rx(c);
  if (!wired) co_return 0;
  co_await maybe_recover(c);

  const std::size_t want = total_length(iovs);
  std::size_t delivered = 0;

  while (true) {
    if (c.r_rndv_active) {
      if (c.r_read_inflight) {
        ib::Wc wc;
        if (!take_completion(c.r_read_wr, &wc)) break;  // still in flight
        if (wc.status == ib::WcStatus::kLocalProtectionError ||
            wc.status == ib::WcStatus::kRemoteAccessError) {
          throw std::logic_error("zero-copy RDMA read failed");
        }
        if (wc.status != ib::WcStatus::kSuccess) {
          // Transport failure mid-read: leave the rendezvous intact with
          // r_read_inflight set, so recovery's replay re-issues the read
          // on the replacement QP.  The next get() enters maybe_recover.
          break;
        }
        c.r_read_inflight = false;
        c.r_done += c.r_read_len;
        if (cfg_.integrity_check) {
          // Fold the landed piece into the rolling message CRC but defer
          // reporting it until the whole message verifies.
          c.r_crc = crc32c_update(c.r_crc, c.r_read_dst, c.r_read_len);
          charge_crc(c.r_read_len);
          c.r_unreported += c.r_read_len;
        } else {
          delivered += c.r_read_len;
        }
        co_await cache_->release(c.r_dst_mr);
        c.r_dst_mr = nullptr;
        if (c.r_done == c.r_len) {
          if (cfg_.integrity_check &&
              c.r_crc != static_cast<std::uint32_t>(c.r_crc_expect)) {
            // Pulled bytes do not reproduce the RTS checksum: NACK through
            // recovery and restart the pull from offset 0.  The sender's
            // buffer is still pinned (no ack was sent), so the rkey in our
            // stashed rendezvous state stays valid.
            flag_integrity_failure(c);
            c.r_done = 0;
            c.r_crc = 0;
            c.r_unreported = 0;
            break;
          }
          delivered += c.r_unreported;
          c.r_unreported = 0;
          // Rendezvous complete: retire the RTS slot and ack the sender.
          c.r_rndv_active = false;
          consume_slot(c);
          try_send_ack(c);
        }
        continue;
      }
      if (delivered + c.r_unreported >= want && c.r_done < c.r_len) break;
      co_await issue_read(c, iovs, delivered + c.r_unreported);
      break;  // read in flight (or no space); report what we have
    }

    if (delivered >= want) break;
    const SlotHeader* hdr = peek_slot(c);
    if (hdr == nullptr) break;
    switch (static_cast<SlotKind>(hdr->kind)) {
      case SlotKind::kData: {
        const std::size_t n =
            std::min(want - delivered, hdr->payload_len - c.cur_slot_off);
        const std::byte* payload = slot_payload(c);
        const std::size_t ring_pos =
            static_cast<std::size_t>(payload - c.rx + c.cur_slot_off);
        co_await copy_out(c, ring_pos, iovs, delivered, n, want);
        c.cur_slot_off += n;
        delivered += n;
        if (c.cur_slot_off == hdr->payload_len) consume_slot(c);
        break;
      }
      case SlotKind::kRts: {
        RtsPayload rts;  // crc stays 0 for a pre-integrity short RTS
        std::memcpy(&rts, slot_payload(c),
                    std::min<std::size_t>(hdr->payload_len, sizeof(rts)));
        c.r_rndv_active = true;
        c.r_addr = rts.addr;
        c.r_rkey = static_cast<std::uint32_t>(rts.rkey);
        c.r_len = static_cast<std::size_t>(rts.len);
        c.r_done = 0;
        c.r_crc_expect = rts.crc;
        c.r_crc = 0;
        c.r_unreported = 0;
        // The RTS slot stays at the front of the pipe (FIFO order) until
        // the pulled data has fully arrived.
        break;
      }
      case SlotKind::kAck: {
        c.rndv_acked = true;
        consume_slot(c);
        break;
      }
      case SlotKind::kRtsWrite:
      case SlotKind::kRtsRead:
      case SlotKind::kCts:
      case SlotKind::kAckTok:
        // Adaptive-engine slot kinds; never produced by a zero-copy peer.
        throw std::logic_error("zerocopy: adaptive slot kind in ring");
    }
  }

  if (c.ack_pending) try_send_ack(c);
  co_return delivered;
}

sim::Task<void> ZeroCopyChannel::replay(VerbsConnection& conn,
                                        std::uint64_t peer_consumed) {
  co_await PiggybackChannel::replay(conn, peer_consumed);
  auto& c = static_cast<SlotConnection&>(conn);
  // An RTS or ack slot in flight when the QP died is an ordinary unconsumed
  // slot, already re-posted above -- the rendezvous control packet is
  // idempotent by construction.  What slot replay cannot cover is an
  // initiated-but-dead RDMA read: re-pull the same piece into the same
  // destination, resuming at r_done.  The sender's source registration
  // (rndv_mr) survives recovery, so the advertised rkey is still valid.
  if (c.r_rndv_active && c.r_read_inflight && c.r_dst_mr != nullptr) {
    std::byte* dst = c.r_read_dst;
    const std::size_t m = c.r_read_len;
    co_await cache_->invalidate(c.r_dst_mr);
    c.r_dst_mr = co_await cache_->acquire(dst, m);
    c.r_read_wr = next_wr_id();
    ++retransmits_;
    replayed_bytes_ += m;
    c.qp->post_send(ib::SendWr{c.r_read_wr,
                               ib::Opcode::kRdmaRead,
                               {ib::Sge{dst, m, c.r_dst_mr->lkey()}},
                               c.r_addr + c.r_done,
                               c.r_rkey,
                               /*signaled=*/true});
  }
}

}  // namespace rdmach
