// Adaptive rendezvous engine.
//
// The paper's own evaluation (Figures 14/15) shows the zero-copy design
// losing to CH3 for mid-size messages: its rendezvous is a single RDMA
// read, and the HCA completes only one outstanding read per QP, so every
// message pays a full request round trip that nothing overlaps.  This
// design keeps the ring/slot machinery for small messages and replaces the
// single-read rendezvous with two protocols plus an online selector:
//
//  * RDMA-write path (kRtsWrite): the receiver answers the RTS with a CTS
//    carrying its registered sink window {addr, rkey, room}; the sender
//    RDMA-writes the data straight from the user buffer and posts an
//    8-byte FIN flag write behind it on the same QP -- QP ordering makes
//    the flag's arrival prove the data's.  One round trip of control, no
//    read request leg, but the CTS leg sits on the critical path.
//
//  * Chunked multi-read pipeline (kRtsRead): the RTS carries {addr, len,
//    rkey} as in the zero-copy design, but the receiver splits the pull
//    into rndv_read_chunk-sized reads striped over rndv_read_qps auxiliary
//    QPs, so up to N reads are outstanding despite the per-QP limit.
//
//  * The ProtocolSelector starts from static thresholds (eager below
//    zero_copy_threshold, write path in the mid band, read path from
//    rndv_read_threshold up) and moves the write/read crossover as
//    observed per-protocol goodput accumulates.
//
// put_pinned() is the fast path: rendezvous bytes are *accepted*
// immediately (so many sends overlap -- their RTS slots queue in the
// receiver's ring) and *released* when the ack retires the token; the
// release watermark preserves stream order.  The classic put() keeps the
// zero-copy channel's semantics (returns 0 until the rendezvous
// completes) so existing callers and differential tests hold.
#pragma once

#include <algorithm>
#include <deque>
#include <vector>

#include "rdmach/piggyback_channel.hpp"
#include "rdmach/protocol_selector.hpp"
#include "rdmach/reg_cache.hpp"

namespace rdmach {

/// kRtsWrite / kRtsRead slot payload (addr/rkey meaningful for kRtsRead).
struct AdaptiveRts {
  std::uint64_t token = 0;
  std::uint64_t len = 0;
  std::uint64_t addr = 0;
  std::uint64_t rkey = 0;
  /// CRC32C of the whole message (integrity_check only); the read path
  /// verifies the assembled sink against it before reporting bytes.
  std::uint64_t crc = 0;
};

/// kCts slot payload: one registered sink window of the receiver.
struct AdaptiveCts {
  std::uint64_t token = 0;
  std::uint64_t addr = 0;
  std::uint64_t rkey = 0;
  std::uint64_t room = 0;
};

/// kAckTok slot payload.
struct AdaptiveAck {
  std::uint64_t token = 0;
};

/// FIN-flag slots per connection; tokens map in round-robin.  Outstanding
/// rendezvous are bounded by the ring's slot count (each holds an RTS slot),
/// which is far below this, so a slot is always long retired before reuse.
inline constexpr std::size_t kFinSlots = 64;

class AdaptiveConnection : public SlotConnection {
 public:
  // ---- sender side --------------------------------------------------------
  struct OutRndv {
    std::uint64_t token = 0;
    ProtocolSelector::Proto proto = ProtocolSelector::Proto::kRead;
    const std::byte* src = nullptr;
    std::size_t len = 0;
    ib::MemoryRegion* mr = nullptr;  // source registration, held until ack
    sim::Tick start = 0;             // RTS post time (selector goodput)
    unsigned conc = 1;               // rendezvous in flight at start (incl. self)
    bool legacy = false;             // started by classic put()
    /// Rail carrying this rendezvous' write rounds (multi-rail; -1 until
    /// the first CTS assigns one, re-picked if the rail dies mid-round).
    int rail = -1;
    // Write path: the currently open CTS round writes source bytes
    // [round_base, w_sent) into the advertised window.
    bool cts_seen = false;
    std::uint64_t w_addr = 0;
    std::uint32_t w_rkey = 0;
    std::size_t round_base = 0;
    std::size_t w_sent = 0;
  };
  std::deque<OutRndv> out;  // un-retired tokens, oldest first
  std::uint64_t next_token = 0;

  /// Stream-order segment FIFO behind the put_pinned release watermark:
  /// eager segments are born done, rendezvous segments retire at ack.
  struct Seg {
    std::size_t len = 0;
    std::uint64_t token = 0;
    bool done = false;
  };
  std::deque<Seg> segs;

  // Classic put(): the single in-flight rendezvous it is polling on.
  bool legacy_active = false;
  bool legacy_done = false;
  std::size_t legacy_len = 0;

  // ---- receiver side ------------------------------------------------------
  struct Chunk {
    std::size_t off = 0;
    std::size_t len = 0;
    std::uint64_t wr = 0;
    int qp = -1;  // aux index; -1 = main QP (rndv_read_qps == 0)
    int rail = 0;          // rail the carrying QP rides (stats/selector)
    sim::Tick start = 0;   // post time, for the per-rail goodput EWMA
    std::byte* dst = nullptr;
    ib::MemoryRegion* mr = nullptr;
    bool done = false;
    bool failed = false;  // error CQE seen; replay re-issues
  };
  /// One inbound rendezvous.  The front entry's RTS slot sits at the ring
  /// head (kept there, FIFO, until the rendezvous retires); later entries
  /// were started through attach_rndv() while the head was still in
  /// flight -- their RTS slots sit in the drained-ahead region and are
  /// consumed when they reach the head.
  struct InRndv {
    std::uint64_t token = 0;
    bool read = false;  // which protocol the RTS requested
    std::size_t len = 0;
    std::size_t done = 0;      // contiguous bytes landed in the sink
    std::size_t reported = 0;  // bytes already returned from get
    /// Sink attached by attach_rndv(); empty for the head-of-pipe flow,
    /// which places into whatever iovs get() offers.
    std::vector<Iov> sink;
    std::size_t sink_len = 0;
    // Read path:
    std::uint64_t src_addr = 0;
    std::uint32_t src_rkey = 0;
    std::size_t issued = 0;      // next source offset to pull
    std::deque<Chunk> chunks;    // issue order == offset order
    // Write path: the open CTS round expects the FIN flag to reach expect.
    bool cts_open = false;
    std::size_t expect = 0;
    ib::MemoryRegion* dst_mr = nullptr;
    /// Start of the open round's sink window (integrity: the FIN-carried
    /// round CRC is verified over [round_dst, round_dst + expect - done)).
    std::byte* round_dst = nullptr;
    // Integrity (read path): rolling CRC over the retired chunk prefix, the
    // RTS-advertised whole-message CRC, and whether it has been reproduced.
    std::uint32_t crc_state = 0;
    std::uint64_t crc_expect = 0;
    bool verified = false;
    /// Slots drained ahead *between* the previous entry's RTS slot and this
    /// one's (frame headers, eager payloads, control slots); consumed in
    /// one burst when the previous entry retires.
    std::uint64_t gap_before = 0;
  };
  std::deque<InRndv> inq;
  /// Drained-ahead region past the last inq entry's RTS slot: whole slots
  /// already copied out / processed, plus the byte offset reached in the
  /// first partially drained slot.
  std::uint64_t tail_drained = 0;
  std::size_t tail_off = 0;

  /// Completion acks owed but not yet posted (ring was full), token order.
  std::deque<std::uint64_t> ack_queue;

  // ---- multi-rail striping state ------------------------------------------
  /// Bytes scheduled onto each rail by this connection (deficit counters
  /// for the weighted stripe policy; indexed by flat rail index).
  std::vector<std::uint64_t> rail_sched;
  /// Round-robin cursor for RailPolicy::kRoundRobin.
  std::size_t rr_next = 0;

  // ---- resources ----------------------------------------------------------
  std::vector<ib::QueuePair*> aux;  // my read-pipeline initiator QPs
  std::vector<std::uint64_t> fin_flags;  // peer FIN-writes land here
  std::vector<std::uint64_t> fin_src;    // my FIN write sources
  ib::MemoryRegion* fin_mr = nullptr;
  ib::MemoryRegion* fin_src_mr = nullptr;
  std::uint64_t r_fin_addr = 0;  // peer's fin_flags
  std::uint32_t r_fin_rkey = 0;
};

class AdaptiveChannel : public PipelineChannel {
 public:
  AdaptiveChannel(pmi::Context& ctx, const ChannelConfig& cfg)
      : PipelineChannel(ctx, cfg),
        sel_(ProtocolSelector::Config{cfg.zero_copy_threshold,
                                      cfg.rndv_read_threshold,
                                      cfg.selector_probe_interval,
                                      cfg.selector_alpha}) {}

  sim::Task<void> init() override;
  sim::Task<void> finalize() override;
  sim::Task<std::size_t> put(Connection& conn,
                             std::span<const ConstIov> iovs) override;
  sim::Task<std::size_t> get(Connection& conn,
                             std::span<const Iov> iovs) override;
  sim::Task<std::size_t> put_pinned(Connection& conn,
                                    std::span<const ConstIov> iovs) override;

  /// Rendezvous lookahead (see channel.hpp): overlap up to half the ring's
  /// slots worth of rendezvous beyond the head -- each holds an RTS slot
  /// plus its frame-header slot, so deeper lookahead could not be fed.
  std::size_t rndv_lookahead() const override {
    return std::max<std::size_t>(1, slot_count() / 2 - 1);
  }
  sim::Task<std::size_t> get_ahead(Connection& conn,
                                   std::span<const Iov> iovs) override;
  sim::Task<bool> attach_rndv(Connection& conn,
                              std::span<const Iov> sink) override;

  ChannelStats stats() const override;

  RegCache& reg_cache() noexcept { return *cache_; }
  const ProtocolSelector& selector() const noexcept { return sel_; }

 protected:
  std::unique_ptr<VerbsConnection> make_connection() override {
    return std::make_unique<AdaptiveConnection>();
  }

  /// Piggyback slot replay (covers RTS/CTS/ack control slots), then:
  /// errored aux QPs are reset in place (drained error-state QPs return to
  /// service with their peer binding intact), failed chunk reads re-issued
  /// with fresh destination registrations, and the open CTS round of every
  /// outbound write rendezvous re-written -- data then FIN, both idempotent
  /// because the loaned source bytes are still stable.
  sim::Task<void> replay(VerbsConnection& c,
                         std::uint64_t peer_consumed) override;

  /// Lazy-connect extras: the FIN-flag arrays and the read pipeline's aux
  /// QPs are built with the local half of the on-demand handshake (their
  /// endpoints publish under the generation-scoped keys), joined before
  /// the main QP's commit point, and dropped at teardown.
  sim::Task<void> lazy_setup_extra(VerbsConnection& c) override;
  sim::Task<void> lazy_join_extra(VerbsConnection& c) override;
  sim::Task<void> lazy_evict_extra(VerbsConnection& c) override;
  /// Rendezvous tokens, segment loans, and queued acks live outside the
  /// slot journal; a connection carrying any of them must not be torn down.
  bool lazy_evictable(const VerbsConnection& conn) const override {
    const auto& c = static_cast<const AdaptiveConnection&>(conn);
    return c.out.empty() && c.inq.empty() && c.segs.empty() &&
           c.ack_queue.empty() && !c.legacy_active;
  }
  void lazy_reset_journal(VerbsConnection& conn) override {
    PiggybackChannel::lazy_reset_journal(conn);
    auto& c = static_cast<AdaptiveConnection&>(conn);
    c.out.clear();
    c.segs.clear();
    c.inq.clear();
    c.ack_queue.clear();
    c.legacy_active = false;
    c.legacy_done = false;
    c.legacy_len = 0;
    c.tail_drained = 0;
    c.tail_off = 0;
  }

 private:
  sim::Task<std::size_t> engine(AdaptiveConnection& c,
                                std::span<const ConstIov> iovs, bool pinned);
  /// Consumes leading control slots (CTS, ack) so a sender stuck in put
  /// still makes rendezvous progress.
  sim::Task<void> progress_sender(AdaptiveConnection& c);
  /// False when the source registration was refused (pin-down exhaustion):
  /// nothing was posted and the caller should fall back to the copy path.
  sim::Task<bool> start_rndv(AdaptiveConnection& c, const ConstIov& big,
                             ProtocolSelector::Proto proto, bool pinned);
  void handle_cts(AdaptiveConnection& c, const AdaptiveCts& cts);
  sim::Task<void> handle_ack(AdaptiveConnection& c, std::uint64_t token);
  /// Data-plane progress for every inbound rendezvous (harvest reads, FIN
  /// checks, chunk issue, CTS rounds), the ahead control-slot scan, head
  /// reporting into *delivered (when non-null; bytes land in the caller's
  /// iovs only for an unattached head), and head retirement.
  sim::Task<void> progress_inbound(AdaptiveConnection& c,
                                   std::span<const Iov> iovs,
                                   std::size_t* delivered);
  /// Harvests one rendezvous' chunk-read completions and retires the done
  /// prefix.
  sim::Task<void> harvest_chunks(AdaptiveConnection& c,
                                 AdaptiveConnection::InRndv& r);
  /// Processes CTS/ack slots parked in the drained-ahead region (reverse
  /// traffic queued behind an in-flight inbound RTS).
  sim::Task<void> scan_ahead_ctrl(AdaptiveConnection& c);
  /// Slot depth (relative to slots_consumed) of the first un-drained slot.
  std::uint64_t ahead_depth(const AdaptiveConnection& c) const;
  void post_ctrl_slot(AdaptiveConnection& c, SlotKind kind, const void* body,
                      std::size_t len);
  void flush_acks(AdaptiveConnection& c);
  void advance_release(AdaptiveConnection& c);
  /// Aux QP (or main-QP fallback) with no read in flight across any
  /// inbound rendezvous; -2 when none.  Single-rail fabrics scan in aux
  /// order (the original schedule); multi-rail fabrics first pick a live
  /// rail by ChannelConfig::rail_policy, then a free QP bound to it.
  int pick_read_qp(AdaptiveConnection& c);
  void post_chunk_read(AdaptiveConnection& c,
                       const AdaptiveConnection::InRndv& r,
                       AdaptiveConnection::Chunk& ch);
  /// First usable aux QP riding `rail` (port up, not in error); -1 if none.
  int aux_on_rail(const AdaptiveConnection& c, int rail) const;
  /// Live rail for the next outbound write round, by stripe policy; -1
  /// when every rail (with an aux QP) is dead.
  int pick_write_rail(AdaptiveConnection& c);
  /// QP carrying rendezvous `r`'s data+FIN round; assigns (or, after a rail
  /// death, re-assigns) r.rail.  Falls back to the main QP when no aux QP
  /// survives.
  ib::QueuePair* write_qp(AdaptiveConnection& c,
                          AdaptiveConnection::OutRndv& r);

  std::unique_ptr<RegCache> cache_;
  ProtocolSelector sel_;
};

}  // namespace rdmach
