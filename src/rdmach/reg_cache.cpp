#include "rdmach/reg_cache.hpp"

#include <algorithm>

namespace rdmach {

sim::Task<ib::MemoryRegion*> RegCache::acquire(const void* addr,
                                               std::size_t len) {
  const auto* p = static_cast<const std::byte*>(addr);
  if (enabled_) {
    // Find a cached region enclosing [p, p+len).  Entries are keyed by
    // region start, so the match is not necessarily the nearest entry at or
    // before p: a request inside a large cached registration may be
    // preceded by smaller entries that start closer.  Walk backwards until
    // no earlier entry could reach p (bounded by the longest cached
    // region).
    auto it = entries_.upper_bound(p);
    while (it != entries_.begin()) {
      --it;
      if (it->second.mr->contains(p, len)) {
        ++hits_;
        ++it->second.pins;
        it->second.last_use = ++clock_;
        co_return it->second.mr;
      }
      if (it->first + max_entry_len_ <= p) break;
    }
  }
  ++misses_;
  ib::MemoryRegion* mr = nullptr;
  for (;;) {
    bool refused = false;  // co_await is illegal inside a handler
    try {
      mr = co_await pd_->register_memory(const_cast<void*>(addr), len,
                                         ib::kAllAccess);
    } catch (const ib::RegistrationError&) {
      refused = true;
    }
    if (!refused) break;
    // Pin-down limit: make room by dropping the LRU unpinned entry and
    // retry.  With nothing evictable the failure is genuine.
    // NB: the await result must go through a named local; gcc 12 emits a
    // broken actor for `if (!co_await ...)` conditions.
    const bool evicted = co_await evict_one();
    if (!evicted) {
      throw ib::RegistrationError("registration refused and cache has no "
                                  "evictable entry");
    }
  }
  if (!enabled_) co_return mr;
  // A fresh registration may share its start with a cached (shorter) one;
  // the table holds one entry per start, so the stale entry must go.  If
  // it is pinned by an in-flight transfer it cannot, and the new
  // registration stays untracked -- release() deregisters such strays.
  auto old = entries_.find(mr->addr());
  if (old != entries_.end()) {
    if (old->second.pins > 0) co_return mr;
    ib::MemoryRegion* stale = old->second.mr;
    bytes_ -= stale->length();
    entries_.erase(old);
    ++evictions_;
    co_await pd_->deregister(stale);
  }
  entries_[mr->addr()] = Entry{mr, 1, ++clock_};
  bytes_ += len;
  max_entry_len_ = std::max(max_entry_len_, len);
  co_await evict_to_capacity();
  co_return mr;
}

sim::Task<void> RegCache::release(ib::MemoryRegion* mr) {
  if (!enabled_) {
    co_await pd_->deregister(mr);
    co_return;
  }
  auto it = entries_.find(mr->addr());
  if (it != entries_.end() && it->second.mr == mr) {
    if (it->second.pins > 0) {
      --it->second.pins;
      it->second.last_use = ++clock_;
    }
  } else {
    // Untracked stray (its start was held by a pinned entry at acquire
    // time): nothing caches it, so the unpin is a deregistration.
    co_await pd_->deregister(mr);
  }
  co_await evict_to_capacity();
}

sim::Task<void> RegCache::evict_to_capacity() {
  while (bytes_ > capacity_) {
    const bool evicted = co_await evict_one();  // named local: see acquire()
    if (!evicted) co_return;                    // everything pinned
  }
}

sim::Task<bool> RegCache::evict_one() {
  auto victim = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.pins == 0 &&
        (victim == entries_.end() ||
         it->second.last_use < victim->second.last_use)) {
      victim = it;
    }
  }
  if (victim == entries_.end()) co_return false;
  ib::MemoryRegion* mr = victim->second.mr;
  bytes_ -= mr->length();
  entries_.erase(victim);
  ++evictions_;
  co_await pd_->deregister(mr);
  co_return true;
}

sim::Task<void> RegCache::invalidate(ib::MemoryRegion* mr) {
  if (enabled_) {
    auto it = entries_.find(mr->addr());
    if (it != entries_.end() && it->second.mr == mr) {
      bytes_ -= mr->length();
      entries_.erase(it);
    }
  }
  co_await pd_->deregister(mr);
}

sim::Task<void> RegCache::flush() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.pins == 0) {
      ib::MemoryRegion* mr = it->second.mr;
      bytes_ -= mr->length();
      it = entries_.erase(it);
      co_await pd_->deregister(mr);
    } else {
      ++it;
    }
  }
}

}  // namespace rdmach
