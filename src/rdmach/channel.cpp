#include "rdmach/channel.hpp"

#include <stdexcept>

#include "rdmach/adaptive_channel.hpp"
#include "rdmach/basic_channel.hpp"
#include "rdmach/multi_method_channel.hpp"
#include "rdmach/piggyback_channel.hpp"
#include "rdmach/shm_channel.hpp"
#include "rdmach/zerocopy_channel.hpp"

namespace rdmach {

const char* to_string(Design d) {
  switch (d) {
    case Design::kShm:
      return "shm";
    case Design::kBasic:
      return "basic";
    case Design::kPiggyback:
      return "piggyback";
    case Design::kPipeline:
      return "pipeline";
    case Design::kZeroCopy:
      return "zero-copy";
    case Design::kMultiMethod:
      return "multi-method";
    case Design::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

sim::Task<std::size_t> Channel::put_pinned(Connection& conn,
                                           std::span<const ConstIov> iovs) {
  // Copying designs never hold a reference into the caller's buffers past
  // the put call, so accept and release coincide.
  const std::size_t k = co_await put(conn, iovs);
  conn.loan_accepted += k;
  conn.loan_released += k;
  co_return k;
}

sim::Task<std::size_t> Channel::get_ahead(Connection& conn,
                                          std::span<const Iov> iovs) {
  (void)conn;
  (void)iovs;
  co_return 0;  // no lookahead support
}

sim::Task<bool> Channel::attach_rndv(Connection& conn,
                                     std::span<const Iov> sink) {
  (void)conn;
  (void)sink;
  co_return false;  // no lookahead support
}

sim::Task<void> Channel::pre_progress() {
  co_return;  // dense designs have no out-of-band service work
}

ChannelStats Channel::stats() const {
  ChannelStats s;
  s.eager = snapshot(eager_track_);
  s.rndv_write = snapshot(rndv_write_track_);
  s.rndv_read = snapshot(rndv_read_track_);
  s.eager_threshold = cfg_.zero_copy_threshold;
  s.rma_puts = rma_puts_;
  s.rma_gets = rma_gets_;
  s.rma_atomics = rma_atomics_;
  s.rma_flushes = rma_flushes_;
  return s;
}

void Channel::reset_stats() {
  eager_track_ = ProtoTrack{};
  rndv_write_track_ = ProtoTrack{};
  rndv_read_track_ = ProtoTrack{};
  rma_puts_ = 0;
  rma_gets_ = 0;
  rma_atomics_ = 0;
  rma_flushes_ = 0;
}

std::string ChannelError::to_string() const {
  std::string s = "ChannelError{";
  s += kind_ == kIntegrity ? "integrity" : "dead";
  s += " peer=" + std::to_string(peer_);
  s += ": ";
  s += what();
  if (has_snapshot_) {
    s += "; ";
    s += snapshot_.to_string();
  }
  s += "}";
  return s;
}

std::string RecoverySnapshot::to_string() const {
  return "recovery stuck at " + stage + ": epoch=" + std::to_string(epoch) +
         " attempts=" + std::to_string(attempts) +
         " journal_outstanding=" + std::to_string(journal_outstanding) +
         " rails=" + std::to_string(live_rails) + "/" +
         std::to_string(total_rails) + " nacks=" + std::to_string(nacks) +
         " last_nack_epoch=" + std::to_string(last_nack_epoch);
}

std::unique_ptr<Channel> Channel::create(pmi::Context& ctx,
                                         const ChannelConfig& cfg) {
  if (cfg.chunk_bytes <= kSlotOverhead ||
      cfg.ring_bytes % cfg.chunk_bytes != 0 ||
      cfg.ring_bytes / cfg.chunk_bytes < 2) {
    throw std::invalid_argument(
        "channel config: ring must hold >= 2 chunks and chunks must exceed "
        "the slot overhead");
  }
  switch (cfg.design) {
    case Design::kShm:
      return std::make_unique<ShmChannel>(ctx, cfg);
    case Design::kBasic:
      return std::make_unique<BasicChannel>(ctx, cfg);
    case Design::kPiggyback:
      return std::make_unique<PiggybackChannel>(ctx, cfg);
    case Design::kPipeline:
      return std::make_unique<PipelineChannel>(ctx, cfg);
    case Design::kZeroCopy:
      return std::make_unique<ZeroCopyChannel>(ctx, cfg);
    case Design::kMultiMethod:
      return std::make_unique<MultiMethodChannel>(ctx, cfg);
    case Design::kAdaptive:
      return std::make_unique<AdaptiveChannel>(ctx, cfg);
  }
  throw std::invalid_argument("unknown channel design");
}

}  // namespace rdmach
