#include "rdmach/channel.hpp"

#include <stdexcept>

#include "rdmach/basic_channel.hpp"
#include "rdmach/multi_method_channel.hpp"
#include "rdmach/piggyback_channel.hpp"
#include "rdmach/shm_channel.hpp"
#include "rdmach/zerocopy_channel.hpp"

namespace rdmach {

const char* to_string(Design d) {
  switch (d) {
    case Design::kShm:
      return "shm";
    case Design::kBasic:
      return "basic";
    case Design::kPiggyback:
      return "piggyback";
    case Design::kPipeline:
      return "pipeline";
    case Design::kZeroCopy:
      return "zero-copy";
    case Design::kMultiMethod:
      return "multi-method";
  }
  return "unknown";
}

std::unique_ptr<Channel> Channel::create(pmi::Context& ctx,
                                         const ChannelConfig& cfg) {
  if (cfg.chunk_bytes <= kSlotOverhead ||
      cfg.ring_bytes % cfg.chunk_bytes != 0 ||
      cfg.ring_bytes / cfg.chunk_bytes < 2) {
    throw std::invalid_argument(
        "channel config: ring must hold >= 2 chunks and chunks must exceed "
        "the slot overhead");
  }
  switch (cfg.design) {
    case Design::kShm:
      return std::make_unique<ShmChannel>(ctx, cfg);
    case Design::kBasic:
      return std::make_unique<BasicChannel>(ctx, cfg);
    case Design::kPiggyback:
      return std::make_unique<PiggybackChannel>(ctx, cfg);
    case Design::kPipeline:
      return std::make_unique<PipelineChannel>(ctx, cfg);
    case Design::kZeroCopy:
      return std::make_unique<ZeroCopyChannel>(ctx, cfg);
    case Design::kMultiMethod:
      return std::make_unique<MultiMethodChannel>(ctx, cfg);
  }
  throw std::invalid_argument("unknown channel design");
}

}  // namespace rdmach
