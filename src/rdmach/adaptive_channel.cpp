#include "rdmach/adaptive_channel.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "rdmach/crc32c.hpp"

namespace rdmach {

namespace {

/// Same per-call state-machine cost the zero-copy design charges (section
/// 5's "extra overhead ... slightly increases the latency").
constexpr sim::Tick kAdStateOverhead = sim::nsec(100);

std::string akey(int from, int to, const std::string& what) {
  return "ach:" + std::to_string(from) + ":" + std::to_string(to) + ":" + what;
}

/// Contiguous destination piece at byte `offset` of the iov list; len 0
/// when the list offers no space there.
Iov locate(std::span<const Iov> iovs, std::size_t offset) {
  std::size_t skipped = 0;
  for (const Iov& v : iovs) {
    if (offset < skipped + v.len) {
      const std::size_t in = offset - skipped;
      return Iov{v.base + in, v.len - in};
    }
    skipped += v.len;
  }
  return Iov{};
}

}  // namespace

sim::Task<void> AdaptiveChannel::init() {
  co_await PipelineChannel::init();
  cache_ = std::make_unique<RegCache>(pd(), cfg_.reg_cache_capacity,
                                      cfg_.use_reg_cache);
  if (cfg_.lazy_connect) co_return;  // extras built on demand, per peer
  pmi::Kvs& kvs = *ctx_->kvs;
  const int naux = std::max(0, cfg_.rndv_read_qps);

  // Per connection: FIN-flag landing zone + source words, and the read
  // pipeline's auxiliary QPs.  Published like the bootstrap endpoints.
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    auto& c = static_cast<AdaptiveConnection&>(connection(p));
    // Two words per FIN slot -- {progress, round CRC} -- so one contiguous
    // write carries the value and its check when integrity is on.
    c.fin_flags.assign(2 * kFinSlots, 0);
    c.fin_src.assign(2 * kFinSlots, 0);
    c.fin_mr = co_await pd().register_memory(
        c.fin_flags.data(), 2 * kFinSlots * sizeof(std::uint64_t),
        ib::kAllAccess);
    c.fin_src_mr = co_await pd().register_memory(
        c.fin_src.data(), 2 * kFinSlots * sizeof(std::uint64_t),
        ib::kAllAccess);
    kvs.put_u64(akey(rank(), p, "fin_addr"),
                reinterpret_cast<std::uint64_t>(c.fin_flags.data()));
    kvs.put_u64(akey(rank(), p, "fin_rkey"), c.fin_mr->rkey());
    // Aux QPs deal round-robin over the node's rails (rail 0 on a default
    // fabric, so the single-rail creation order is unchanged); each rides
    // its rail's port and completes into that rail's CQ.
    c.rail_sched.assign(static_cast<std::size_t>(num_rails()), 0);
    c.aux.resize(static_cast<std::size_t>(naux));
    for (int i = 0; i < naux; ++i) {
      c.aux[static_cast<std::size_t>(i)] = &create_rail_qp(i % num_rails());
      kvs.put_u64(akey(rank(), p, "aqpn" + std::to_string(i)),
                  c.aux[static_cast<std::size_t>(i)]->qp_num());
    }
  }
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    auto& c = static_cast<AdaptiveConnection&>(connection(p));
    c.r_fin_addr = co_await kvs.get_u64(akey(p, rank(), "fin_addr"));
    c.r_fin_rkey = static_cast<std::uint32_t>(
        co_await kvs.get_u64(akey(p, rank(), "fin_rkey")));
    if (rank() < p) {
      for (int i = 0; i < naux; ++i) {
        const auto qpn = static_cast<std::uint32_t>(
            co_await kvs.get_u64(akey(p, rank(), "aqpn" + std::to_string(i))));
        ib::QueuePair* peer_qp = ctx_->fabric().find_qp(qpn);
        if (peer_qp == nullptr) {
          throw std::runtime_error("adaptive bootstrap: aux QP not found");
        }
        c.aux[static_cast<std::size_t>(i)]->connect(*peer_qp);
      }
    }
  }
  co_await ctx_->barrier->arrive();
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    auto& c = static_cast<AdaptiveConnection&>(connection(p));
    for (ib::QueuePair* q : c.aux) qp_index_[q->qp_num()] = &c;
  }
}

sim::Task<void> AdaptiveChannel::finalize() {
  co_await cache_->flush();
  co_await PipelineChannel::finalize();
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    auto& c = static_cast<AdaptiveConnection&>(connection(p));
    if (c.fin_mr != nullptr) co_await pd().deregister(c.fin_mr);
    if (c.fin_src_mr != nullptr) co_await pd().deregister(c.fin_src_mr);
    c.fin_mr = nullptr;
    c.fin_src_mr = nullptr;
  }
}

sim::Task<void> AdaptiveChannel::lazy_setup_extra(VerbsConnection& conn) {
  auto& c = static_cast<AdaptiveConnection&>(conn);
  pmi::Kvs& kvs = *ctx_->kvs;
  const int naux = std::max(0, cfg_.rndv_read_qps);
  c.fin_flags.assign(2 * kFinSlots, 0);
  c.fin_src.assign(2 * kFinSlots, 0);
  c.fin_mr = co_await pd().register_memory(
      c.fin_flags.data(), 2 * kFinSlots * sizeof(std::uint64_t),
      ib::kAllAccess);
  c.fin_src_mr = co_await pd().register_memory(
      c.fin_src.data(), 2 * kFinSlots * sizeof(std::uint64_t),
      ib::kAllAccess);
  kvs.put_u64(lazy_key(rank(), c.peer, c.lz_gen, "fin_addr"),
              reinterpret_cast<std::uint64_t>(c.fin_flags.data()));
  kvs.put_u64(lazy_key(rank(), c.peer, c.lz_gen, "fin_rkey"),
              c.fin_mr->rkey());
  c.rail_sched.assign(static_cast<std::size_t>(num_rails()), 0);
  c.rr_next = 0;
  c.aux.assign(static_cast<std::size_t>(naux), nullptr);
  for (int i = 0; i < naux; ++i) {
    c.aux[static_cast<std::size_t>(i)] = &create_rail_qp(i % num_rails());
    kvs.put_u64(
        lazy_key(rank(), c.peer, c.lz_gen,
                 ("aqpn" + std::to_string(i)).c_str()),
        c.aux[static_cast<std::size_t>(i)]->qp_num());
  }
}

sim::Task<void> AdaptiveChannel::lazy_join_extra(VerbsConnection& conn) {
  auto& c = static_cast<AdaptiveConnection&>(conn);
  pmi::Kvs& kvs = *ctx_->kvs;
  // Every peer key under this generation is readable: the main-QP qpn
  // sentinel the caller saw is published after all of them.
  c.r_fin_addr = std::stoull(
      *kvs.find(lazy_key(c.peer, rank(), c.lz_gen, "fin_addr")));
  c.r_fin_rkey = static_cast<std::uint32_t>(
      std::stoull(*kvs.find(lazy_key(c.peer, rank(), c.lz_gen, "fin_rkey"))));
  if (rank() < c.peer) {
    // The lower rank wires each aux pair; connect() is bidirectional, so
    // by the time the higher rank sees the main QP connected its aux QPs
    // are wired too.
    for (std::size_t i = 0; i < c.aux.size(); ++i) {
      if (c.aux[i]->connected()) continue;
      const auto qpn = static_cast<std::uint32_t>(std::stoull(*kvs.find(
          lazy_key(c.peer, rank(), c.lz_gen,
                   ("aqpn" + std::to_string(static_cast<int>(i))).c_str()))));
      ib::QueuePair* peer_qp = ctx_->fabric().find_qp(qpn);
      if (peer_qp == nullptr) {
        throw std::runtime_error("lazy connect: peer aux QP not found");
      }
      c.aux[i]->connect(*peer_qp);
    }
  }
  for (ib::QueuePair* q : c.aux) qp_index_[q->qp_num()] = &c;
  co_return;
}

sim::Task<void> AdaptiveChannel::lazy_evict_extra(VerbsConnection& conn) {
  auto& c = static_cast<AdaptiveConnection&>(conn);
  for (ib::QueuePair* q : c.aux) {
    if (q == nullptr) continue;
    q->close();
    co_await q->quiesce();
    qp_index_.erase(q->qp_num());
  }
  c.aux.clear();
  if (c.fin_mr != nullptr) {
    co_await pd().deregister(c.fin_mr);
    c.fin_mr = nullptr;
  }
  if (c.fin_src_mr != nullptr) {
    co_await pd().deregister(c.fin_src_mr);
    c.fin_src_mr = nullptr;
  }
  c.fin_flags.clear();
  c.fin_src.clear();
  c.r_fin_addr = 0;
  c.r_fin_rkey = 0;
}

void AdaptiveChannel::post_ctrl_slot(AdaptiveConnection& c, SlotKind kind,
                                     const void* body, std::size_t len) {
  std::byte* payload = begin_slot(c, kind, len);
  std::memcpy(payload, body, len);
  finish_slot(c, len);
  const std::size_t idx =
      static_cast<std::size_t>((c.slots_sent - 1) % slot_count());
  post_ring_write(c, idx * cfg_.chunk_bytes, kSlotOverhead + len,
                  idx * cfg_.chunk_bytes, /*signaled=*/false, next_wr_id());
}

void AdaptiveChannel::flush_acks(AdaptiveConnection& c) {
  while (!c.ack_queue.empty() && free_slots(c) > 0) {
    AdaptiveAck ack{c.ack_queue.front()};
    post_ctrl_slot(c, SlotKind::kAckTok, &ack, sizeof(ack));
    c.ack_queue.pop_front();
  }
}

void AdaptiveChannel::advance_release(AdaptiveConnection& c) {
  while (!c.segs.empty() && c.segs.front().done) {
    c.loan_released += c.segs.front().len;
    c.segs.pop_front();
  }
}

int AdaptiveChannel::aux_on_rail(const AdaptiveConnection& c, int rail) const {
  for (std::size_t i = 0; i < c.aux.size(); ++i) {
    ib::QueuePair* q = c.aux[i];
    if (q->port().rail() == rail && q->port().up() && !q->in_error()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int AdaptiveChannel::pick_write_rail(AdaptiveConnection& c) {
  const int R = num_rails();
  if (cfg_.rail_policy == RailPolicy::kRoundRobin) {
    for (int step = 0; step < R; ++step) {
      const int r = static_cast<int>(
          (c.rr_next + static_cast<std::size_t>(step)) %
          static_cast<std::size_t>(R));
      if (!rail_up(r) || aux_on_rail(c, r) < 0) continue;
      if (rail_quarantined(r) && !rail_probe_due(r)) continue;
      c.rr_next = static_cast<std::size_t>((r + 1) % R);
      return r;
    }
    return -1;
  }
  int best = -1;
  double best_key = 0.0;
  for (int r = 0; r < R; ++r) {
    if (!rail_up(r) || aux_on_rail(c, r) < 0) continue;
    if (rail_quarantined(r)) {
      if (rail_probe_due(r)) return r;  // probation probe rides this round
      continue;
    }
    const double key =
        static_cast<double>(c.rail_sched[static_cast<std::size_t>(r)]) /
        sel_.rail_weight(r);
    if (best < 0 || key < best_key) {
      best = r;
      best_key = key;
    }
  }
  return best;
}

/// QP for an outbound write round's data+FIN pair.  Two pitfalls shape the
/// choice.  On the main QP, a 64K data write parks ~75us of wire time in
/// front of the ring's slot writes -- RTS slots for the *next* rendezvous
/// queue behind the current one's data and the pipeline collapses into
/// batches.  Striped over *several* QPs, concurrent data writes fair-share
/// the wire and all finish together, so every FIN (and therefore every
/// ack that refills the ring) arrives at once -- batches again.  One
/// dedicated QP does both jobs: data writes serialize behind each other,
/// so messages retire at wire pace and each ack releases the next RTS
/// while the wire is still busy, and the control plane never waits.  The
/// first aux QP is idle on the sending side (aux QPs initiate reads only
/// on the receiving side); data and FIN stay on the *same* QP so in-order
/// delivery still makes the flag vouch for the data.
///
/// Multi-rail: each rendezvous is assigned a rail at its first CTS (whole
/// rounds, never split -- the FIN must trail its round's data on one QP)
/// and keeps it unless the rail dies, in which case the next round or the
/// recovery rewrite moves it to a surviving rail.  Per-QP serialization
/// still paces each rail's rounds at that rail's wire speed.
ib::QueuePair* AdaptiveChannel::write_qp(AdaptiveConnection& c,
                                         AdaptiveConnection::OutRndv& r) {
  if (c.aux.empty()) return c.qp;
  if (num_rails() <= 1) return c.aux.front();
  if (r.rail >= 0 && rail_usable(r.rail)) {
    const int i = aux_on_rail(c, r.rail);
    if (i >= 0) return c.aux[static_cast<std::size_t>(i)];
  }
  r.rail = pick_write_rail(c);
  if (r.rail >= 0) {
    const int i = aux_on_rail(c, r.rail);
    if (i >= 0) return c.aux[static_cast<std::size_t>(i)];
  }
  return c.qp;  // every rail dead: the main QP carries the final attempts
}

int AdaptiveChannel::pick_read_qp(AdaptiveConnection& c) {
  // One read outstanding per QP (the HCA limit the pipeline exists to
  // hide): a QP is busy while an unfinished, unfailed chunk of *any*
  // inbound rendezvous rides on it.
  const int naux = static_cast<int>(c.aux.size());
  auto busy = [&c](int q) {
    for (const auto& r : c.inq) {
      for (const auto& ch : r.chunks) {
        if (!ch.done && !ch.failed && ch.qp == q) return true;
      }
    }
    return false;
  };
  if (num_rails() <= 1 || naux == 0) {
    // Single rail (or main-QP fallback): the original in-order scan, so
    // default fabrics produce the exact pre-multirail schedule.
    const int lo = naux == 0 ? -1 : 0;
    const int hi = naux == 0 ? 0 : naux;
    for (int q = lo; q < hi; ++q) {
      if (!busy(q)) return q;
    }
    return -2;
  }
  // Multi-rail: pick a live rail by stripe policy, then a free QP bound to
  // it.  Only rails offering a free, healthy QP compete this round.
  auto free_on_rail = [&](int rail) {
    for (std::size_t i = 0; i < c.aux.size(); ++i) {
      ib::QueuePair* q = c.aux[i];
      if (q->port().rail() == rail && q->port().up() && !q->in_error() &&
          !busy(static_cast<int>(i))) {
        return static_cast<int>(i);
      }
    }
    return -2;
  };
  const int R = num_rails();
  if (cfg_.rail_policy == RailPolicy::kRoundRobin) {
    // Naive strict rotation: chunk k rides rail k mod R (dead rails drop
    // out of the rotation); when the turn rail has no free QP the stripe
    // *waits* for it instead of borrowing another rail -- the baseline the
    // weighted policy is measured against, and exactly how it loses on
    // asymmetric fabrics (everything gates on the slowest rail).
    for (int step = 0; step < R; ++step) {
      const int r = static_cast<int>(
          (c.rr_next + static_cast<std::size_t>(step)) %
          static_cast<std::size_t>(R));
      if (!rail_up(r)) continue;
      if (rail_quarantined(r) && !rail_probe_due(r)) continue;
      const int q = free_on_rail(r);
      if (q != -2) c.rr_next = static_cast<std::size_t>((r + 1) % R);
      return q;
    }
    return -2;
  }
  // Weighted deficit: the rail furthest *behind* its goodput-proportional
  // share of scheduled bytes takes the next chunk, so a slow rail settles
  // at proportionally fewer chunks instead of gating the whole stripe.
  int best_q = -2;
  double best_key = 0.0;
  for (int r = 0; r < R; ++r) {
    if (!rail_up(r)) continue;
    if (rail_quarantined(r)) {
      // Quarantined rails sit out the stripe; every probe-interval-th skip
      // sends one chunk through as a probation probe instead.
      if (rail_probe_due(r)) {
        const int q = free_on_rail(r);
        if (q != -2) return q;
      }
      continue;
    }
    const int q = free_on_rail(r);
    if (q == -2) continue;
    const double key =
        static_cast<double>(c.rail_sched[static_cast<std::size_t>(r)]) /
        sel_.rail_weight(r);
    if (best_q == -2 || key < best_key) {
      best_q = q;
      best_key = key;
    }
  }
  return best_q;
}

void AdaptiveChannel::post_chunk_read(AdaptiveConnection& c,
                                      const AdaptiveConnection::InRndv& r,
                                      AdaptiveConnection::Chunk& ch) {
  ib::QueuePair* qp =
      ch.qp >= 0 ? c.aux[static_cast<std::size_t>(ch.qp)] : c.qp;
  // Rail accounting covers replays too: a re-issued chunk is real traffic
  // on whichever rail carries it now.
  ch.rail = qp->port().rail();
  ch.start = ctx_->sim().now();
  if (static_cast<std::size_t>(ch.rail) < c.rail_sched.size()) {
    c.rail_sched[static_cast<std::size_t>(ch.rail)] += ch.len;
  }
  note_rail(ch.rail, ch.len);
  qp->post_send(ib::SendWr{ch.wr,
                           ib::Opcode::kRdmaRead,
                           {ib::Sge{ch.dst, ch.len, ch.mr->lkey()}},
                           r.src_addr + ch.off,
                           r.src_rkey,
                           /*signaled=*/true});
}

std::uint64_t AdaptiveChannel::ahead_depth(const AdaptiveConnection& c) const {
  // The head entry's RTS slot sits at the consume point (depth 0); each
  // later entry contributes the drained gap before it plus its own RTS
  // slot; the drained tail follows the last entry.
  std::uint64_t d = 1;
  for (std::size_t i = 1; i < c.inq.size(); ++i) {
    d += c.inq[i].gap_before + 1;
  }
  return d + c.tail_drained;
}

sim::Task<void> AdaptiveChannel::scan_ahead_ctrl(AdaptiveConnection& c) {
  // Reverse-direction control (CTS for our outbound writes, acks retiring
  // our outbound tokens) can be parked behind the in-flight head RTS.
  // Control is token-addressed, so processing it in place is safe; the
  // slots are consumed later, when the stream position reaches them.
  while (!c.inq.empty() && c.tail_off == 0) {
    const SlotHeader* hdr = peek_slot_at(c, ahead_depth(c));
    if (hdr == nullptr) break;
    const auto kind = static_cast<SlotKind>(hdr->kind);
    if (kind == SlotKind::kCts) {
      AdaptiveCts cts;
      std::memcpy(&cts, slot_payload_at(c, ahead_depth(c)), sizeof(cts));
      handle_cts(c, cts);
    } else if (kind == SlotKind::kAckTok) {
      AdaptiveAck ack;
      std::memcpy(&ack, slot_payload_at(c, ahead_depth(c)), sizeof(ack));
      co_await handle_ack(c, ack.token);
    } else {
      break;  // stream bytes or a further RTS: lookahead's business
    }
    ++c.tail_drained;
  }
}

sim::Task<bool> AdaptiveChannel::start_rndv(AdaptiveConnection& c,
                                            const ConstIov& big,
                                            ProtocolSelector::Proto proto,
                                            bool pinned) {
  AdaptiveConnection::OutRndv r;
  r.proto = proto;
  r.src = big.base;
  r.len = big.len;
  r.start = ctx_->sim().now();
  r.conc = static_cast<unsigned>(c.out.size()) + 1;
  r.legacy = !pinned;
  bool refused = false;
  try {
    r.mr = co_await cache_->acquire(big.base, big.len);
  } catch (const ib::RegistrationError&) {
    refused = true;  // co_await is illegal in a handler; flag and go
  }
  if (refused) co_return false;  // caller degrades to the copy path
  r.token = c.next_token++;  // burn a token only once the start is certain
  AdaptiveRts rts{r.token, big.len, reinterpret_cast<std::uint64_t>(big.base),
                  r.mr->rkey()};
  // The trailing crc word goes on the wire only when integrity is on,
  // keeping the integrity-off RTS byte-identical to the original format.
  std::size_t rts_w = sizeof(rts) - sizeof(rts.crc);
  if (cfg_.integrity_check) {
    rts.crc = crc32c(big.base, big.len);
    charge_crc(big.len);
    rts_w = sizeof(rts);
  }
  const SlotKind kind = proto == ProtocolSelector::Proto::kRead
                            ? SlotKind::kRtsRead
                            : SlotKind::kRtsWrite;
  post_ctrl_slot(c, kind, &rts, rts_w);
  c.out.push_back(r);
  if (pinned) {
    c.loan_accepted += big.len;
    c.segs.push_back(AdaptiveConnection::Seg{big.len, r.token, false});
  }
  co_return true;
}

void AdaptiveChannel::handle_cts(AdaptiveConnection& c,
                                 const AdaptiveCts& cts) {
  for (auto& r : c.out) {
    if (r.token != cts.token) continue;
    const std::size_t m =
        std::min(r.len - r.w_sent, static_cast<std::size_t>(cts.room));
    r.cts_seen = true;
    r.w_addr = cts.addr;
    r.w_rkey = static_cast<std::uint32_t>(cts.rkey);
    r.round_base = r.w_sent;
    // Data straight from the loaned user buffer, FIN flag behind it on the
    // same QP: in-order delivery makes the flag vouch for the data.
    ib::QueuePair* wqp = write_qp(c, r);
    const int rail = wqp->port().rail();
    if (static_cast<std::size_t>(rail) < c.rail_sched.size()) {
      c.rail_sched[static_cast<std::size_t>(rail)] += m;
    }
    note_rail(rail, m);
    wqp->post_send(ib::SendWr{next_wr_id(),
                              ib::Opcode::kRdmaWrite,
                              {ib::Sge{const_cast<std::byte*>(r.src) + r.w_sent,
                                       m, r.mr->lkey()}},
                              cts.addr,
                              static_cast<std::uint32_t>(cts.rkey),
                              /*signaled=*/false});
    r.w_sent += m;
    const std::size_t fs = static_cast<std::size_t>(r.token % kFinSlots);
    c.fin_src[2 * fs] = r.w_sent;
    std::size_t fin_w = sizeof(std::uint64_t);
    if (cfg_.integrity_check) {
      // The FIN carries the round's data CRC in the adjacent word; the
      // 16-byte write lands atomically, so the flag vouches for both the
      // data's arrival and its checksum.
      c.fin_src[2 * fs + 1] = crc32c(r.src + r.round_base, m);
      charge_crc(m);
      fin_w = 2 * sizeof(std::uint64_t);
    }
    wqp->post_send(ib::SendWr{
        next_wr_id(),
        ib::Opcode::kRdmaWrite,
        {ib::Sge{reinterpret_cast<std::byte*>(&c.fin_src[2 * fs]), fin_w,
                 c.fin_src_mr->lkey()}},
        c.r_fin_addr + fs * 2 * sizeof(std::uint64_t),
        c.r_fin_rkey,
        /*signaled=*/false});
    return;
  }
  throw std::logic_error("adaptive channel: CTS for unknown token");
}

sim::Task<void> AdaptiveChannel::handle_ack(AdaptiveConnection& c,
                                            std::uint64_t token) {
  if (c.out.empty() || c.out.front().token != token) {
    throw std::logic_error("adaptive channel: out-of-order rendezvous ack");
  }
  AdaptiveConnection::OutRndv r = c.out.front();
  c.out.pop_front();
  co_await cache_->release(r.mr);
  const double elapsed =
      static_cast<double>(ctx_->sim().now() - r.start) / sim::usec(1);
  sel_.record(r.proto, r.len, r.len, elapsed, r.conc);
  note(r.proto == ProtocolSelector::Proto::kRead ? rndv_read_track_
                                                 : rndv_write_track_,
       r.len);
  // Write rendezvous never pass through harvest_chunks, so the ack is the
  // only point the sender can clock the rail that carried the rounds.  The
  // elapsed span includes the CTS handshake, but so does every healthy
  // baseline sample, and a degraded link dwarfs that fixed overhead.
  if (cfg_.health_detector && r.proto == ProtocolSelector::Proto::kWrite &&
      r.rail >= 0 && r.len * 2 >= cfg_.rndv_read_chunk) {
    note_rail_sample(r.rail, r.len, elapsed);
  }
  if (r.legacy) {
    c.legacy_done = true;
  } else {
    for (auto& s : c.segs) {
      if (!s.done && s.token == r.token) {
        s.done = true;
        break;
      }
    }
  }
}

sim::Task<void> AdaptiveChannel::progress_sender(AdaptiveConnection& c) {
  for (;;) {
    const SlotHeader* hdr = peek_slot(c);
    if (hdr == nullptr) break;
    const auto kind = static_cast<SlotKind>(hdr->kind);
    if (kind == SlotKind::kCts) {
      AdaptiveCts cts;
      std::memcpy(&cts, slot_payload(c), sizeof(cts));
      handle_cts(c, cts);
      consume_slot(c);
    } else if (kind == SlotKind::kAckTok) {
      AdaptiveAck ack;
      std::memcpy(&ack, slot_payload(c), sizeof(ack));
      co_await handle_ack(c, ack.token);
      consume_slot(c);
    } else {
      break;  // data or an inbound RTS: the receive side's business
    }
  }
  // An in-flight inbound RTS at the head parks reverse control behind it;
  // a sender stuck in put still needs those CTS/acks processed.
  co_await scan_ahead_ctrl(c);
  flush_acks(c);
  advance_release(c);
}

sim::Task<std::size_t> AdaptiveChannel::engine(AdaptiveConnection& c,
                                               std::span<const ConstIov> iovs,
                                               bool pinned) {
  co_await node().compute(kAdStateOverhead);
  const bool wired = co_await ensure_tx(c);
  if (!wired) co_return 0;
  co_await maybe_recover(c);
  co_await progress_sender(c);

  if (!pinned && c.legacy_active) {
    co_await call_overhead();
    if (!c.legacy_done) co_return 0;
    c.legacy_active = false;
    c.legacy_done = false;
    const std::size_t len = c.legacy_len;
    c.legacy_len = 0;
    co_return len;
  }

  std::size_t accepted = 0;
  std::size_t iv = 0;
  bool charged = false;
  while (iv < iovs.size()) {
    // Consecutive sub-threshold buffers stream through the ring in one
    // slot-copy pass.
    std::size_t run = iv;
    while (run < iovs.size() && iovs[run].len < sel_.eager_max()) ++run;
    if (run > iv) {
      auto sub = iovs.subspan(iv, run - iv);
      const std::size_t k = co_await PipelineChannel::put(c, sub);
      charged = true;
      if (k > 0) {
        if (pinned) {
          c.loan_accepted += k;
          c.segs.push_back(AdaptiveConnection::Seg{k, 0, true});
        }
        accepted += k;
      }
      if (k < total_length(sub)) break;  // ring full
      iv = run;
      continue;
    }
    if (free_slots(c) == 0) break;  // no slot for the RTS
    const ConstIov& big = iovs[iv];
    const ProtocolSelector::Proto proto = sel_.choose(big.len);
    const bool started = co_await start_rndv(c, big, proto, pinned);
    if (!started) {
      // Registration refused (pin-down exhaustion): degrade to the
      // pipelined copy path, and teach the selector the penalty -- an
      // uncached bus-speed pass over the buffer -- so it stops preferring
      // a protocol the HCA cannot currently serve.
      ++reg_fallbacks_;
      const ib::FabricConfig& f = ctx_->fabric().cfg();
      sel_.record(proto, big.len, big.len,
                  static_cast<double>(big.len) /
                      (f.bus_mbps / f.copy_factor_uncached),
                  1);
      const ConstIov one = big;
      const std::size_t k =
          co_await PipelineChannel::put(c, std::span<const ConstIov>(&one, 1));
      charged = true;
      if (k > 0) {
        if (pinned) {
          c.loan_accepted += k;
          c.segs.push_back(AdaptiveConnection::Seg{k, 0, true});
        }
        accepted += k;
      }
      if (k < big.len) break;  // ring full
      ++iv;
      continue;
    }
    if (!pinned) {
      // Classic semantics: the rendezvous bytes are not counted until the
      // ack retires them; put keeps returning 0 for this buffer.
      c.legacy_active = true;
      c.legacy_done = false;
      c.legacy_len = big.len;
      break;
    }
    accepted += big.len;
    ++iv;
  }
  if (!charged) co_await call_overhead();
  advance_release(c);
  co_return accepted;
}

sim::Task<std::size_t> AdaptiveChannel::put(Connection& conn,
                                            std::span<const ConstIov> iovs) {
  co_return co_await engine(static_cast<AdaptiveConnection&>(conn), iovs,
                            /*pinned=*/false);
}

sim::Task<std::size_t> AdaptiveChannel::put_pinned(
    Connection& conn, std::span<const ConstIov> iovs) {
  co_return co_await engine(static_cast<AdaptiveConnection&>(conn), iovs,
                            /*pinned=*/true);
}

sim::Task<void> AdaptiveChannel::harvest_chunks(
    AdaptiveConnection& /*c*/, AdaptiveConnection::InRndv& r) {
  for (auto& ch : r.chunks) {
    if (ch.done || ch.failed) continue;
    ib::Wc wc;
    const bool have = take_completion(ch.wr, &wc);
    if (!have) continue;
    if (wc.status == ib::WcStatus::kLocalProtectionError ||
        wc.status == ib::WcStatus::kRemoteAccessError) {
      throw std::logic_error("adaptive chunk read failed");
    }
    if (wc.status != ib::WcStatus::kSuccess) {
      // Transport/flush: recovery's replay re-issues this chunk.
      ch.failed = true;
      continue;
    }
    ch.done = true;
    // Per-rail goodput sample (chunk issued -> chunk retired): feeds the
    // weighted stripe policy.  Relative accuracy across rails is all that
    // matters here.
    const double chunk_usec =
        static_cast<double>(ctx_->sim().now() - ch.start) / sim::usec(1);
    sel_.record_rail(ch.rail, ch.len, chunk_usec);
    if (cfg_.health_detector && ch.len * 2 >= cfg_.rndv_read_chunk) {
      // Health sample: full-size chunks only -- tail fragments run at a
      // different goodput and would false-trip the suspicion score.
      note_rail_sample(ch.rail, ch.len, chunk_usec);
    }
    co_await cache_->release(ch.mr);
    ch.mr = nullptr;
  }
  while (!r.chunks.empty() && r.chunks.front().done) {
    if (cfg_.integrity_check) {
      // Chunks retire in offset order, so the rolling CRC walks the sink
      // contiguously; the whole message is checked against the RTS CRC
      // once done reaches len.
      const AdaptiveConnection::Chunk& ch = r.chunks.front();
      r.crc_state = crc32c_update(r.crc_state, ch.dst, ch.len);
      charge_crc(ch.len);
    }
    r.done += r.chunks.front().len;
    r.chunks.pop_front();
  }
}

sim::Task<void> AdaptiveChannel::progress_inbound(AdaptiveConnection& c,
                                                  std::span<const Iov> iovs,
                                                  std::size_t* delivered) {
  // 1. Land data for every rendezvous: chunk-read completions, FIN flags.
  for (auto& r : c.inq) {
    if (r.read) {
      co_await harvest_chunks(c, r);
      if (cfg_.integrity_check && r.done == r.len && !r.verified) {
        if (r.crc_state == static_cast<std::uint32_t>(r.crc_expect)) {
          r.verified = true;
        } else {
          // Pulled bytes do not reproduce the RTS checksum: NACK through
          // recovery and re-pull the whole message into the same sink.
          // Nothing was reported yet (reporting is gated on verified), so
          // placement offsets restart consistently at zero.
          flag_integrity_failure(c);
          r.done = 0;
          r.issued = 0;
          r.crc_state = 0;
          r.chunks.clear();
        }
      }
    } else {
      const std::size_t fs = static_cast<std::size_t>(r.token % kFinSlots);
      if (r.cts_open && c.fin_flags[2 * fs] >= r.expect) {
        if (cfg_.integrity_check) {
          const std::size_t m = r.expect - r.done;
          charge_crc(m);
          if (crc32c(r.round_dst, m) !=
              static_cast<std::uint32_t>(c.fin_flags[2 * fs + 1])) {
            // Round data damaged in flight: NACK; recovery's replay
            // rewrites the round and its FIN (fresh CRC) from the loaned
            // source bytes, and this check runs again.
            flag_integrity_failure(c);
            continue;
          }
        }
        // The FIN flag proves the round's data landed in the sink.
        co_await cache_->release(r.dst_mr);
        r.dst_mr = nullptr;
        r.done = r.expect;
        r.cts_open = false;
      }
    }
  }

  // 2. Report the head's landed bytes first so iov offsets below see a
  // consistent delivered/reported pair.  Integrity gates read-path bytes
  // until the whole message verified (they land zero-copy in the caller's
  // sink either way; only the reporting is withheld).
  if (delivered != nullptr) {
    auto& head = c.inq.front();
    const bool gated = cfg_.integrity_check && head.read && !head.verified;
    if (!gated && head.done > head.reported) {
      *delivered += head.done - head.reported;
      head.reported = head.done;
    }
  }

  // 3. Keep the pipelines full.  Attached entries place into their own
  // sink; the head may also use whatever space the caller is offering.
  for (std::size_t i = 0; i < c.inq.size(); ++i) {
    auto& r = c.inq[i];
    const bool use_iovs = i == 0 && r.sink_len == 0 && delivered != nullptr;
    if (r.read) {
      while (r.issued < r.len) {
        const int q = pick_read_qp(c);
        if (q == -2) break;
        Iov piece;
        if (r.sink_len > 0) {
          piece = locate(r.sink, r.issued);
        } else if (use_iovs) {
          piece = locate(iovs, *delivered + (r.issued - r.reported));
        }
        if (piece.len == 0) break;  // no sink space for this entry
        AdaptiveConnection::Chunk ch;
        ch.off = r.issued;
        ch.len =
            std::min({cfg_.rndv_read_chunk, r.len - r.issued, piece.len});
        ch.qp = q;
        ch.dst = piece.base;
        bool refused = false;
        try {
          ch.mr = co_await cache_->acquire(piece.base, ch.len);
        } catch (const ib::RegistrationError&) {
          refused = true;  // co_await is illegal in a handler; flag and go
        }
        if (refused) {
          // Transient pin-down exhaustion: stop issuing and retry on a
          // later pass (the wakeup keeps pollers from parking).
          ++reg_fallbacks_;
          schedule_retry_wakeup();
          break;
        }
        ch.wr = next_wr_id();
        r.chunks.push_back(ch);
        post_chunk_read(c, r, r.chunks.back());
        r.issued += ch.len;
      }
    } else if (!r.cts_open && r.done < r.len && free_slots(c) > 0) {
      Iov piece;
      if (r.sink_len > 0) {
        piece = locate(r.sink, r.done);
      } else if (use_iovs) {
        piece = locate(iovs, *delivered + (r.done - r.reported));
      }
      if (piece.len > 0) {
        const std::size_t m = std::min(r.len - r.done, piece.len);
        bool refused = false;
        try {
          r.dst_mr = co_await cache_->acquire(piece.base, m);
        } catch (const ib::RegistrationError&) {
          refused = true;  // co_await is illegal in a handler; flag and go
        }
        if (refused) {
          ++reg_fallbacks_;
          schedule_retry_wakeup();
        } else {
          AdaptiveCts cts{r.token, reinterpret_cast<std::uint64_t>(piece.base),
                          r.dst_mr->rkey(), m};
          post_ctrl_slot(c, SlotKind::kCts, &cts, sizeof(cts));
          r.round_dst = piece.base;
          r.expect = r.done + m;
          r.cts_open = true;
        }
      }
    }
  }

  // 4. Reverse-direction control parked behind the head RTS.
  co_await scan_ahead_ctrl(c);

  // 5. Report again (step 1 may have landed more) and retire the head once
  // everything is delivered AND reported: the ack releases the sender's
  // loan, and the consume burst frees the RTS slot plus the drained-ahead
  // slots between it and the next stop point.
  auto& head = c.inq.front();
  const bool head_gated =
      cfg_.integrity_check && head.read && !head.verified;
  if (delivered != nullptr && !head_gated && head.done > head.reported) {
    *delivered += head.done - head.reported;
    head.reported = head.done;
  }
  if (head.done == head.len && head.reported == head.len) {
    if (!head.read) {
      c.fin_flags[2 * (head.token % kFinSlots)] = 0;
      c.fin_flags[2 * (head.token % kFinSlots) + 1] = 0;
    }
    const std::uint64_t token = head.token;
    c.inq.pop_front();
    consume_slot(c);  // the RTS slot
    if (!c.inq.empty()) {
      for (std::uint64_t s = 0; s < c.inq.front().gap_before; ++s) {
        consume_slot(c);
      }
      c.inq.front().gap_before = 0;
    } else {
      for (std::uint64_t s = 0; s < c.tail_drained; ++s) consume_slot(c);
      c.tail_drained = 0;
      c.cur_slot_off = c.tail_off;  // partially drained next slot, if any
      c.tail_off = 0;
    }
    c.ack_queue.push_back(token);
    flush_acks(c);
  }
}

sim::Task<std::size_t> AdaptiveChannel::get(Connection& conn,
                                            std::span<const Iov> iovs) {
  auto& c = static_cast<AdaptiveConnection&>(conn);
  co_await call_overhead();
  const bool wired = co_await ensure_rx(c);
  if (!wired) co_return 0;
  co_await maybe_recover(c);

  const std::size_t want = total_length(iovs);
  std::size_t delivered = 0;
  bool stop = false;

  while (!stop) {
    if (!c.inq.empty()) {
      co_await progress_inbound(c, iovs, &delivered);
      // Head still in flight, or it retired with attached successors
      // behind it (whose bytes belong to the *next* frames -- the caller
      // re-enters with their sinks): report what has landed.
      if (!c.inq.empty()) break;
      continue;
    }
    if (delivered >= want) break;
    const SlotHeader* hdr = peek_slot(c);
    if (hdr == nullptr) break;
    switch (static_cast<SlotKind>(hdr->kind)) {
      case SlotKind::kData: {
        const std::size_t n =
            std::min(want - delivered, hdr->payload_len - c.cur_slot_off);
        const std::byte* payload = slot_payload(c);
        const std::size_t ring_pos =
            static_cast<std::size_t>(payload - c.rx + c.cur_slot_off);
        co_await copy_out(c, ring_pos, iovs, delivered, n, want);
        c.cur_slot_off += n;
        delivered += n;
        if (c.cur_slot_off == hdr->payload_len) consume_slot(c);
        break;
      }
      case SlotKind::kRtsRead:
      case SlotKind::kRtsWrite: {
        AdaptiveRts rts;  // crc stays 0 for a pre-integrity short RTS
        std::memcpy(&rts, slot_payload(c),
                    std::min<std::size_t>(hdr->payload_len, sizeof(rts)));
        AdaptiveConnection::InRndv r;
        r.token = rts.token;
        r.read = static_cast<SlotKind>(hdr->kind) == SlotKind::kRtsRead;
        r.len = static_cast<std::size_t>(rts.len);
        r.src_addr = rts.addr;
        r.src_rkey = static_cast<std::uint32_t>(rts.rkey);
        r.crc_expect = rts.crc;
        // The RTS slot stays at the pipe head (FIFO order) until the
        // rendezvous completes.
        c.inq.push_back(std::move(r));
        break;
      }
      case SlotKind::kCts: {
        AdaptiveCts cts;
        std::memcpy(&cts, slot_payload(c), sizeof(cts));
        handle_cts(c, cts);
        consume_slot(c);
        break;
      }
      case SlotKind::kAckTok: {
        AdaptiveAck ack;
        std::memcpy(&ack, slot_payload(c), sizeof(ack));
        co_await handle_ack(c, ack.token);
        consume_slot(c);
        // Return before parsing further stream bytes: the caller must
        // observe the advanced release watermark first, so a sender
        // blocked on this ack completes before the next frame's sink is
        // even needed.
        stop = true;
        break;
      }
      default:
        throw std::logic_error("adaptive channel: unexpected slot kind");
    }
  }

  flush_acks(c);
  advance_release(c);
  co_return delivered;
}

sim::Task<std::size_t> AdaptiveChannel::get_ahead(Connection& conn,
                                                  std::span<const Iov> iovs) {
  auto& c = static_cast<AdaptiveConnection&>(conn);
  if (!lazy_wired(c) || c.inq.empty()) co_return 0;
  co_await node().compute(kAdStateOverhead);
  const std::size_t want = total_length(iovs);
  std::size_t delivered = 0;
  while (delivered < want) {
    co_await scan_ahead_ctrl(c);
    const SlotHeader* hdr = peek_slot_at(c, ahead_depth(c));
    if (hdr == nullptr ||
        static_cast<SlotKind>(hdr->kind) != SlotKind::kData) {
      break;  // nothing queued yet, or an RTS that needs attach_rndv
    }
    const std::size_t n =
        std::min(want - delivered, hdr->payload_len - c.tail_off);
    const std::byte* payload = slot_payload_at(c, ahead_depth(c));
    const std::size_t ring_pos =
        static_cast<std::size_t>(payload - c.rx + c.tail_off);
    co_await copy_out(c, ring_pos, iovs, delivered, n, want);
    c.tail_off += n;
    delivered += n;
    if (c.tail_off == hdr->payload_len) {
      ++c.tail_drained;  // consumed later, when the head catches up
      c.tail_off = 0;
    }
  }
  flush_acks(c);
  advance_release(c);
  co_return delivered;
}

sim::Task<bool> AdaptiveChannel::attach_rndv(Connection& conn,
                                             std::span<const Iov> sink) {
  auto& c = static_cast<AdaptiveConnection&>(conn);
  if (!lazy_wired(c)) co_return false;
  if (c.inq.empty() || c.inq.size() > rndv_lookahead()) co_return false;
  co_await node().compute(kAdStateOverhead);
  co_await scan_ahead_ctrl(c);
  if (c.tail_off != 0) co_return false;  // cursor mid-slot: not at an RTS
  const SlotHeader* hdr = peek_slot_at(c, ahead_depth(c));
  if (hdr == nullptr) co_return false;
  const auto kind = static_cast<SlotKind>(hdr->kind);
  if (kind != SlotKind::kRtsRead && kind != SlotKind::kRtsWrite) {
    co_return false;
  }
  AdaptiveRts rts;  // crc stays 0 for a pre-integrity short RTS
  std::memcpy(&rts, slot_payload_at(c, ahead_depth(c)),
              std::min<std::size_t>(hdr->payload_len, sizeof(rts)));
  if (total_length(sink) < rts.len) co_return false;  // partial sinks stay
                                                      // on the head flow
  AdaptiveConnection::InRndv r;
  r.token = rts.token;
  r.read = kind == SlotKind::kRtsRead;
  r.len = static_cast<std::size_t>(rts.len);
  r.src_addr = rts.addr;
  r.src_rkey = static_cast<std::uint32_t>(rts.rkey);
  r.crc_expect = rts.crc;
  r.sink.assign(sink.begin(), sink.end());
  r.sink_len = total_length(sink);
  r.gap_before = c.tail_drained;  // drained slots between the previous RTS
  c.tail_drained = 0;             // and this one, consumed at its retire
  c.inq.push_back(std::move(r));
  // Kick the new entry's data leg immediately -- overlapping it with the
  // head's is the whole point.
  co_await progress_inbound(c, {}, nullptr);
  flush_acks(c);
  advance_release(c);
  co_return true;
}

sim::Task<void> AdaptiveChannel::replay(VerbsConnection& conn,
                                        std::uint64_t peer_consumed) {
  co_await PiggybackChannel::replay(conn, peer_consumed);
  auto& c = static_cast<AdaptiveConnection&>(conn);

  // Aux QPs are not torn down with the main QP's epoch: a drained errored
  // QP returns to service in place, peer binding intact.  A QP whose rail
  // died stays in the error state -- its port never comes back -- and the
  // connection records the failover once; its traffic moves to surviving
  // rails below.
  for (ib::QueuePair* q : c.aux) {
    if (!q->in_error()) continue;
    co_await q->quiesce();
    if (q->port().up()) {
      q->reset();
    } else {
      note_rail_dead(c, q->port().rail());
    }
  }

  // Inbound read pipelines: sweep any verdicts that raced in, then re-pull
  // every failed chunk with a fresh destination registration (translation
  // state involved in a torn-down transfer is not trusted).  The sender's
  // source registration is held until our ack, so the rkey is still valid.
  // A chunk whose QP died with its rail is reassigned in place (the deque
  // position preserves offset-order retirement) to a surviving QP --
  // queueing behind that QP's own chunk is acceptable on the failover path.
  for (auto& r : c.inq) {
    if (!r.read) continue;
    co_await harvest_chunks(c, r);
    for (auto& ch : r.chunks) {
      if (!ch.failed) continue;
      std::byte* dst = ch.dst;
      const std::size_t m = ch.len;
      co_await cache_->invalidate(ch.mr);
      ch.mr = co_await cache_->acquire(dst, m);
      ch.wr = next_wr_id();
      ch.failed = false;
      ib::QueuePair* cur =
          ch.qp >= 0 ? c.aux[static_cast<std::size_t>(ch.qp)] : c.qp;
      if (cur->in_error() || !cur->port().up()) {
        // Dead rail: first healthy aux QP, else the fresh main QP (whose
        // failure, with every rail dead, exhausts the recovery budget).
        int nq = -1;
        for (std::size_t i = 0; i < c.aux.size(); ++i) {
          if (!c.aux[i]->in_error() && c.aux[i]->port().up()) {
            nq = static_cast<int>(i);
            break;
          }
        }
        ch.qp = nq;
      }
      post_chunk_read(c, r, ch);
      ++rndv_read_track_.retries;
      ++retransmits_;
      replayed_bytes_ += m;
    }
  }

  // Outbound write rendezvous: the data and FIN writes of the open CTS
  // round were unsignaled; any of them may have died with the QP.  Re-write
  // the whole round from the loaned source bytes -- bit-identical, so a
  // duplicate is harmless -- and the FIN behind it.
  for (auto& r : c.out) {
    if (r.proto != ProtocolSelector::Proto::kWrite || !r.cts_seen ||
        r.w_sent == r.round_base) {
      continue;
    }
    const std::size_t m = r.w_sent - r.round_base;
    // write_qp re-picks the round's rail if its old one died; the CTS
    // window (receiver memory registration) is rail-agnostic, so the same
    // rkey serves from the surviving rail.
    ib::QueuePair* wqp = write_qp(c, r);
    note_rail(wqp->port().rail(), m);
    wqp->post_send(
        ib::SendWr{next_wr_id(),
                   ib::Opcode::kRdmaWrite,
                   {ib::Sge{const_cast<std::byte*>(r.src) + r.round_base, m,
                            r.mr->lkey()}},
                   r.w_addr,
                   r.w_rkey,
                   /*signaled=*/false});
    const std::size_t fs = static_cast<std::size_t>(r.token % kFinSlots);
    c.fin_src[2 * fs] = r.w_sent;
    std::size_t fin_w = sizeof(std::uint64_t);
    if (cfg_.integrity_check) {
      // Fresh round CRC with the rewrite: if the original data write was
      // the corrupted one, the receiver's pending FIN check now passes.
      c.fin_src[2 * fs + 1] = crc32c(r.src + r.round_base, m);
      charge_crc(m);
      fin_w = 2 * sizeof(std::uint64_t);
    }
    wqp->post_send(ib::SendWr{
        next_wr_id(),
        ib::Opcode::kRdmaWrite,
        {ib::Sge{reinterpret_cast<std::byte*>(&c.fin_src[2 * fs]), fin_w,
                 c.fin_src_mr->lkey()}},
        c.r_fin_addr + fs * 2 * sizeof(std::uint64_t),
        c.r_fin_rkey,
        /*signaled=*/false});
    ++rndv_write_track_.retries;
    retransmits_ += 2;
    replayed_bytes_ += m;
  }
}

ChannelStats AdaptiveChannel::stats() const {
  ChannelStats s = VerbsChannelBase::stats();
  s.eager_threshold = sel_.eager_max();
  s.write_read_crossover = sel_.write_read_crossover();
  // The selector's EWMAs are the live per-protocol goodput estimates;
  // surface the best-sampled figure of each rendezvous protocol.
  const double w = sel_.peak_mbps(ProtocolSelector::Proto::kWrite);
  const double r = sel_.peak_mbps(ProtocolSelector::Proto::kRead);
  if (w > 0.0) s.rndv_write.mbps = w;
  if (r > 0.0) s.rndv_read.mbps = r;
  return s;
}

}  // namespace rdmach
