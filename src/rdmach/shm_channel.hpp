// Globally-shared-memory reference implementation of put/get (Figure 3).
//
// "A shared buffer (organized logically as a ring) is placed in shared
// memory, together with a head pointer and a tail pointer.  The put
// operation copies the user buffer to the shared buffer and adjusts the
// head pointer.  The get operation involves reading from the shared buffer
// and adjusting the tail pointer.  In the case of buffer overflow or
// underflow, the operations return immediately and the caller will retry."
//
// This is the scheme the RDMA designs emulate over the wire.  Because the
// simulated ranks share one address space, it is implemented literally; it
// serves as the semantic reference in differential tests (every RDMA
// design must deliver byte-identical streams) and as the intra-node
// baseline.  Its timing charges copies only, no NIC path -- do not use it
// for cross-node performance claims.
#pragma once

#include "rdmach/channel.hpp"
#include "sim/sync.hpp"

namespace rdmach {

class ShmChannel : public Channel {
 public:
  ShmChannel(pmi::Context& ctx, const ChannelConfig& cfg)
      : Channel(ctx, cfg), activity_(ctx.sim()) {}

  sim::Task<void> init() override;
  sim::Task<void> finalize() override;
  Connection& connection(int peer) override;
  sim::Task<std::size_t> put(Connection& conn,
                             std::span<const ConstIov> iovs) override;
  sim::Task<std::size_t> get(Connection& conn,
                             std::span<const Iov> iovs) override;
  sim::Task<void> wait_for_activity() override;
  std::uint64_t activity_count() const override;

 private:
  struct Ring {
    std::vector<std::byte> buf;
    std::uint64_t head = 0;  // bytes produced
    std::uint64_t tail = 0;  // bytes consumed
  };

  struct ShmConnection : Connection {
    std::unique_ptr<Ring> in;        // owned here; peer writes into it
    Ring* out = nullptr;             // peer's inbound ring
    ShmChannel* peer_chan = nullptr; // for wakeups
  };

  std::vector<std::unique_ptr<ShmConnection>> conns_;
  sim::Trigger activity_;
};

}  // namespace rdmach
