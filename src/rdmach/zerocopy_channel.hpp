// Zero-copy design, paper section 5.
//
// Small messages travel through the ring exactly as in the pipelining
// design.  A buffer of at least `zero_copy_threshold` bytes bypasses the
// ring: the sender registers it (through the registration cache), writes a
// special RTS slot carrying {address, size, rkey} into the pipe, and
// returns 0 from put until the transfer completes.  When the receiver's
// get reaches the RTS slot it registers its own destination buffer and
// issues an RDMA read that pulls the data straight into the user buffer;
// while the read is in flight get returns 0.  Once the read finishes, the
// next get sends an acknowledgement slot back and returns the byte count;
// the ack lets the sender release ("deregister" into the cache) its buffer
// and report completion from the next put -- the exact handshake of
// Figure 10.
//
// RDMA read (receiver pulls) was chosen over RDMA write (sender pushes)
// because in MPICH2 get is always called after put for large messages
// (section 5); the CH3-level design in src/ch3 is the write-based
// alternative for comparison.
#pragma once

#include "rdmach/piggyback_channel.hpp"
#include "rdmach/reg_cache.hpp"

namespace rdmach {

/// RTS slot payload.
struct RtsPayload {
  std::uint64_t addr = 0;
  std::uint64_t len = 0;
  std::uint64_t rkey = 0;
  /// CRC32C of the whole advertised buffer (integrity_check only; the RTS
  /// slot itself is covered by the slot CRC).  Widened to 64 bits to keep
  /// the struct trivially packed.
  std::uint64_t crc = 0;
};

class ZeroCopyChannel : public PipelineChannel {
 public:
  ZeroCopyChannel(pmi::Context& ctx, const ChannelConfig& cfg)
      : PipelineChannel(ctx, cfg) {}

  sim::Task<void> init() override;
  sim::Task<void> finalize() override;
  sim::Task<std::size_t> put(Connection& conn,
                             std::span<const ConstIov> iovs) override;
  sim::Task<std::size_t> get(Connection& conn,
                             std::span<const Iov> iovs) override;

  RegCache& reg_cache() noexcept { return *cache_; }

 protected:
  /// Piggyback slot replay, plus: an RDMA read interrupted mid-rendezvous
  /// has its destination registration invalidated (not trusted across the
  /// teardown), re-acquired, and the read re-posted on the fresh QP at the
  /// same offset.
  sim::Task<void> replay(VerbsConnection& c,
                         std::uint64_t peer_consumed) override;

  /// Rendezvous state (pinned source buffer, in-flight RDMA read, deferred
  /// ack) lives outside the slot journal, so a connection mid-rendezvous
  /// must not be torn down.
  bool lazy_evictable(const VerbsConnection& conn) const override {
    const auto& c = static_cast<const SlotConnection&>(conn);
    return !c.rndv_active && !c.r_rndv_active && !c.ack_pending &&
           !c.r_read_inflight;
  }

 private:
  /// Consumes leading ack slots (sender-side progress made from put).
  void harvest_acks(SlotConnection& c);
  /// Sends the rendezvous-complete ack if a slot is free.
  void try_send_ack(SlotConnection& c);
  /// Issues the next RDMA read of an active inbound rendezvous into the
  /// caller's buffers starting at `offset`; no-op if nothing to read or no
  /// buffer space.
  sim::Task<void> issue_read(SlotConnection& c, std::span<const Iov> iovs,
                             std::size_t offset);

  std::unique_ptr<RegCache> cache_;
};

}  // namespace rdmach
