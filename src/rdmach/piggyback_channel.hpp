// Piggybacking and pipelining designs, paper sections 4.3 and 4.4.
//
// The ring is divided into fixed-size chunks ("slots").  Each transfer
// writes one slot with a single RDMA write containing:
//
//   [ header: payload_len | gen (head flag) | kind | piggyback_tail ]
//   [ payload ... ]
//   [ gen (tail flag / "bottom fill") ]
//
// The generation number doubles as both polling flags, so a slot whose
// previous-round content happens to look like data can never be mistaken
// for a new message.  Head-pointer updates are gone entirely -- arrival of
// the flags IS the head update.  Tail updates are delayed: they piggyback
// on reverse-direction slots via the header's piggyback_tail field, and an
// explicit 8-byte tail write is sent only after `tail_update_slots`
// consumed slots see no reverse traffic.
//
// PiggybackChannel sends a large message by copying every chunk into the
// staging buffer first and only then posting the RDMA writes (copies and
// transfers serialized).  PipelineChannel posts each chunk's write
// immediately after copying it, overlapping the copy of chunk k+1 with the
// wire time of chunk k (section 4.4).
#pragma once

#include "rdmach/verbs_base.hpp"

namespace rdmach {

enum class SlotKind : std::uint32_t {
  kData = 0xD1,
  kRts = 0xD2,  // zero-copy rendezvous request (ZeroCopyChannel)
  kAck = 0xD3,  // zero-copy completion acknowledgement
  // Adaptive rendezvous engine (AdaptiveChannel):
  kRtsWrite = 0xD4,  // rendezvous request, sender-driven RDMA-write path
  kRtsRead = 0xD5,   // rendezvous request, chunked RDMA-read path
  kCts = 0xD6,       // receiver's clear-to-send (registered sink window)
  kAckTok = 0xD7,    // tokened rendezvous completion acknowledgement
};

struct SlotHeader {
  std::uint32_t payload_len = 0;
  std::uint32_t gen = 0;  // head flag
  std::uint32_t kind = 0;
  /// CRC32C over the header (this word zeroed) + payload, written with the
  /// slot when ChannelConfig::integrity_check is on; zero otherwise.  The
  /// "bottom-fill" flags gain their checksum word here.
  std::uint32_t crc = 0;
  std::uint64_t piggyback_tail = 0;
};
static_assert(sizeof(SlotHeader) == 24);

/// Per-slot framing overhead: header + 4-byte tail flag.
inline constexpr std::size_t kSlotOverhead = sizeof(SlotHeader) + 4;

class SlotConnection : public VerbsConnection {
 public:
  // -- sender side ----------------------------------------------------------
  std::uint64_t slots_sent = 0;
  /// Highest consumed-slot count learned through piggybacked headers
  /// (ctrl.tail_replica carries the explicitly RDMA-written updates).
  std::uint64_t tail_piggy = 0;

  // -- receiver side ---------------------------------------------------------
  std::uint64_t slots_consumed = 0;   // mirrored into ctrl.tail_master
  std::size_t cur_slot_off = 0;       // payload bytes already delivered
  std::uint64_t consumed_since_update = 0;
  /// Integrity: per-slot-index generation whose CRC already verified, so a
  /// ready slot is checksummed once, not on every poll (lazily sized to
  /// slot_count()).
  std::vector<std::uint32_t> slot_crc_ok;

  // -- zero-copy sender state (ZeroCopyChannel) ------------------------------
  bool rndv_active = false;
  bool rndv_acked = false;
  std::size_t rndv_len = 0;
  ib::MemoryRegion* rndv_mr = nullptr;

  // -- zero-copy receiver state ----------------------------------------------
  bool r_rndv_active = false;
  std::uint64_t r_addr = 0;
  std::uint32_t r_rkey = 0;
  std::size_t r_len = 0;
  std::size_t r_done = 0;
  bool r_read_inflight = false;
  std::uint64_t r_read_wr = 0;
  std::size_t r_read_len = 0;
  std::byte* r_read_dst = nullptr;  // exact destination (the cached MR may
                                    // start earlier); recovery re-reads here
  ib::MemoryRegion* r_dst_mr = nullptr;
  bool ack_pending = false;

  // -- zero-copy receiver integrity (ChannelConfig::integrity_check) ---------
  /// Whole-message CRC advertised in the RTS; the rolling state over landed
  /// reads; and bytes landed but not yet reported to the caller (reporting
  /// is deferred until the message verifies).
  std::uint64_t r_crc_expect = 0;
  std::uint32_t r_crc = 0;
  std::size_t r_unreported = 0;
};

class PiggybackChannel : public VerbsChannelBase {
 public:
  PiggybackChannel(pmi::Context& ctx, const ChannelConfig& cfg,
                   bool pipelined = false)
      : VerbsChannelBase(ctx, cfg), pipelined_(pipelined) {}

  sim::Task<std::size_t> put(Connection& conn,
                             std::span<const ConstIov> iovs) override;
  sim::Task<std::size_t> get(Connection& conn,
                             std::span<const Iov> iovs) override;

  std::size_t slot_count() const noexcept {
    return cfg_.ring_bytes / cfg_.chunk_bytes;
  }
  std::size_t slot_capacity() const noexcept {
    return cfg_.chunk_bytes - kSlotOverhead;
  }

 protected:
  std::unique_ptr<VerbsConnection> make_connection() override {
    return std::make_unique<SlotConnection>();
  }

  std::size_t free_slots(SlotConnection& c) {
    // The explicit tail replica goes through its self-check (integrity on)
    // so corrupted credit cannot overrun live slots; piggybacked tails ride
    // inside CRC-verified slots and are trusted once harvested.
    const std::uint64_t consumed = std::max(checked_tail(c), c.tail_piggy);
    return slot_count() - static_cast<std::size_t>(c.slots_sent - consumed);
  }

  std::uint32_t send_gen(const SlotConnection& c) const {
    return static_cast<std::uint32_t>(c.slots_sent / slot_count()) + 1;
  }
  std::uint32_t recv_gen(const SlotConnection& c) const {
    return static_cast<std::uint32_t>(c.slots_consumed / slot_count()) + 1;
  }

  /// Prepares the current staging slot (header + payload area + tail flag)
  /// for a payload of `len` bytes and returns a pointer to the payload
  /// area.  finish_slot() posts it.
  std::byte* begin_slot(SlotConnection& c, SlotKind kind, std::size_t len);
  void finish_slot(SlotConnection& c, std::size_t len);

  /// Points at the slot the receiver would consume next, or nullptr if its
  /// flags are not complete yet.  Also harvests the piggybacked tail.
  const SlotHeader* peek_slot(SlotConnection& c);
  const std::byte* slot_payload(const SlotConnection& c) const;

  /// Like peek_slot/slot_payload but `depth` slots past the consume point
  /// (depth 0 is the head).  Consumption stays strictly FIFO -- a caller
  /// that drains a deeper slot must account for it and consume it only
  /// once everything before it has been consumed.
  const SlotHeader* peek_slot_at(SlotConnection& c, std::uint64_t depth);
  const std::byte* slot_payload_at(const SlotConnection& c,
                                   std::uint64_t depth) const;

  /// Marks the current receive slot consumed and sends a (possibly
  /// delayed) explicit tail update when due.
  void consume_slot(SlotConnection& c);

  /// Integrity check for the slot at absolute index `abs` (already
  /// flag-complete).  Verified slots are cached per (index, gen); a
  /// mismatch NACKs via flag_integrity_failure and returns false.
  bool verify_slot(SlotConnection& c, std::uint64_t abs,
                   const std::byte* slot, const SlotHeader* hdr);

  std::size_t tail_threshold() const {
    return cfg_.tail_update_slots != 0 ? cfg_.tail_update_slots
                                       : std::max<std::size_t>(1, slot_count() / 2);
  }

  /// Slot-granular journal: the consumed watermark counts slots.
  std::uint64_t journal_consumed(const VerbsConnection& c) const override;
  std::uint64_t journal_produced(const VerbsConnection& c) const override;
  /// Piggybacked tails count as acknowledgements too (they rode inside
  /// CRC-verified slots), so eviction is not held up waiting for an
  /// explicit tail write that delayed-tail-update may never send.
  std::uint64_t journal_acked(VerbsConnection& c) override {
    auto& sc = static_cast<SlotConnection&>(c);
    return std::max(checked_tail(sc), sc.tail_piggy);
  }
  /// Delayed tail update: consumed slots whose explicit tail write is still
  /// deferred pin the peer's journal.  Under cache pressure, send it now.
  void lazy_flush_acks(VerbsConnection& c) override {
    auto& sc = static_cast<SlotConnection&>(c);
    if (sc.consumed_since_update == 0) return;
    post_tail_update(sc);
    sc.consumed_since_update = 0;
  }
  /// A re-connected peer starts from slot 0 in a zeroed ring.
  void lazy_reset_journal(VerbsConnection& c) override {
    auto& sc = static_cast<SlotConnection&>(c);
    sc.slots_sent = 0;
    sc.tail_piggy = 0;
    sc.slots_consumed = 0;
    sc.cur_slot_off = 0;
    sc.consumed_since_update = 0;
    sc.slot_crc_ok.clear();
  }
  /// Re-posts staged slots [peer_consumed, slots_sent) -- each slot's
  /// length is recovered from its staged header -- and resyncs both local
  /// views of the peer's consumption forward.
  sim::Task<void> replay(VerbsConnection& c,
                         std::uint64_t peer_consumed) override;

  bool pipelined_;
};

/// Section 4.4: piggybacking + per-chunk copy/transfer overlap.
class PipelineChannel : public PiggybackChannel {
 public:
  PipelineChannel(pmi::Context& ctx, const ChannelConfig& cfg)
      : PiggybackChannel(ctx, cfg, /*pipelined=*/true) {}
};

}  // namespace rdmach
