#include "rdmach/verbs_base.hpp"

#include <stdexcept>
#include <string>

namespace rdmach {

namespace {

std::string key(int from, int to, const char* what) {
  return "ch:" + std::to_string(from) + ":" + std::to_string(to) + ":" + what;
}

}  // namespace

sim::Task<void> VerbsChannelBase::init() {
  pmi::Kvs& kvs = *ctx_->kvs;
  pd_ = &node().hca().alloc_pd();
  cq_ = &node().hca().create_cq("rank" + std::to_string(rank()) + ".cq");

  conns_.clear();
  conns_.resize(static_cast<std::size_t>(size()));
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    auto conn = make_connection();
    conn->peer = p;
    conn->recv_ring.assign(cfg_.ring_bytes, std::byte{0});
    conn->staging.assign(cfg_.ring_bytes, std::byte{0});
    conn->ring_mr = co_await pd_->register_memory(
        conn->recv_ring.data(), conn->recv_ring.size(), ib::kAllAccess);
    conn->staging_mr = co_await pd_->register_memory(
        conn->staging.data(), conn->staging.size(), ib::kAllAccess);
    conn->ctrl_mr = co_await pd_->register_memory(&conn->ctrl,
                                                  sizeof(CtrlBlock),
                                                  ib::kAllAccess);
    conn->qp = &node().hca().create_qp(*pd_, *cq_, *cq_);
    kvs.put_u64(key(rank(), p, "qpn"), conn->qp->qp_num());
    kvs.put_u64(key(rank(), p, "ring_addr"),
                reinterpret_cast<std::uint64_t>(conn->recv_ring.data()));
    kvs.put_u64(key(rank(), p, "ring_rkey"), conn->ring_mr->rkey());
    kvs.put_u64(key(rank(), p, "ctrl_addr"),
                reinterpret_cast<std::uint64_t>(&conn->ctrl));
    kvs.put_u64(key(rank(), p, "ctrl_rkey"), conn->ctrl_mr->rkey());
    conns_[static_cast<std::size_t>(p)] = std::move(conn);
  }

  // Fetch peer endpoints; the lower rank of each pair connects the QPs.
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    VerbsConnection& c = *conns_[static_cast<std::size_t>(p)];
    c.r_ring_addr = co_await kvs.get_u64(key(p, rank(), "ring_addr"));
    c.r_ring_rkey = static_cast<std::uint32_t>(
        co_await kvs.get_u64(key(p, rank(), "ring_rkey")));
    c.r_ctrl_addr = co_await kvs.get_u64(key(p, rank(), "ctrl_addr"));
    c.r_ctrl_rkey = static_cast<std::uint32_t>(
        co_await kvs.get_u64(key(p, rank(), "ctrl_rkey")));
    if (rank() < p) {
      const auto peer_qpn = static_cast<std::uint32_t>(
          co_await kvs.get_u64(key(p, rank(), "qpn")));
      ib::QueuePair* peer_qp = ctx_->fabric().find_qp(peer_qpn);
      if (peer_qp == nullptr) {
        throw std::runtime_error("bootstrap: peer QP not found");
      }
      c.qp->connect(*peer_qp);
    }
  }
  co_await ctx_->barrier->arrive();
}

sim::Task<void> VerbsChannelBase::finalize() {
  // Quiesce: every rank stops producing before buffers are released.
  co_await ctx_->barrier->arrive();
  for (auto& c : conns_) {
    if (!c) continue;
    co_await pd_->deregister(c->ring_mr);
    co_await pd_->deregister(c->staging_mr);
    co_await pd_->deregister(c->ctrl_mr);
  }
  co_await ctx_->barrier->arrive();
}

Connection& VerbsChannelBase::connection(int peer) {
  auto& c = conns_.at(static_cast<std::size_t>(peer));
  if (!c) throw std::logic_error("no connection to self");
  return *c;
}

sim::Task<void> VerbsChannelBase::wait_for_activity() {
  co_await node().dma_arrival().wait();
}

std::uint64_t VerbsChannelBase::activity_count() const {
  return node().dma_arrival().fire_count();
}

void VerbsChannelBase::post_ring_write(VerbsConnection& c,
                                       std::size_t staging_off,
                                       std::size_t len, std::size_t ring_off,
                                       bool signaled, std::uint64_t wr_id) {
  c.qp->post_send(ib::SendWr{
      wr_id,
      ib::Opcode::kRdmaWrite,
      {ib::Sge{c.staging.data() + staging_off, len, c.staging_mr->lkey()}},
      c.r_ring_addr + ring_off,
      c.r_ring_rkey,
      signaled});
}

void VerbsChannelBase::post_head_update(VerbsConnection& c) {
  c.qp->post_send(ib::SendWr{
      next_wr_id(),
      ib::Opcode::kRdmaWrite,
      {ib::Sge{reinterpret_cast<std::byte*>(&c.ctrl) + kCtrlHeadMasterOff, 8,
               c.ctrl_mr->lkey()}},
      c.r_ctrl_addr + kCtrlHeadReplicaOff,
      c.r_ctrl_rkey,
      /*signaled=*/false});
}

void VerbsChannelBase::post_tail_update(VerbsConnection& c) {
  c.qp->post_send(ib::SendWr{
      next_wr_id(),
      ib::Opcode::kRdmaWrite,
      {ib::Sge{reinterpret_cast<std::byte*>(&c.ctrl) + kCtrlTailMasterOff, 8,
               c.ctrl_mr->lkey()}},
      c.r_ctrl_addr + kCtrlTailReplicaOff,
      c.r_ctrl_rkey,
      /*signaled=*/false});
}

void VerbsChannelBase::drain_cq() {
  while (auto wc = cq_->poll()) {
    completed_[wc->wr_id] = *wc;
  }
}

bool VerbsChannelBase::take_completion(std::uint64_t wr_id, ib::Wc* out) {
  drain_cq();
  auto it = completed_.find(wr_id);
  if (it == completed_.end()) return false;
  if (out != nullptr) *out = it->second;
  completed_.erase(it);
  return true;
}

sim::Task<ib::Wc> VerbsChannelBase::await_completion(std::uint64_t wr_id) {
  ib::Wc wc;
  for (;;) {
    if (take_completion(wr_id, &wc)) {
      if (wc.status != ib::WcStatus::kSuccess) {
        throw std::logic_error(std::string("channel-internal WR failed: ") +
                               ib::to_string(wc.status));
      }
      co_return wc;
    }
    co_await cq_->wait_nonempty();
  }
}

sim::Task<void> VerbsChannelBase::copy_in(VerbsConnection& c,
                                          std::uint64_t ring_pos,
                                          std::span<const ConstIov> iovs,
                                          std::size_t iov_off, std::size_t n,
                                          std::size_t ws) {
  const std::size_t R = cfg_.ring_bytes;
  std::size_t iv = 0;
  std::size_t skipped = 0;
  // Locate the iov containing iov_off.
  while (iv < iovs.size() && skipped + iovs[iv].len <= iov_off) {
    skipped += iovs[iv].len;
    ++iv;
  }
  std::size_t in_iov = iov_off - skipped;
  while (n > 0 && iv < iovs.size()) {
    const std::size_t off = static_cast<std::size_t>(ring_pos % R);
    std::size_t piece = std::min({n, iovs[iv].len - in_iov, R - off});
    co_await node().copy(c.staging.data() + off, iovs[iv].base + in_iov,
                         piece, ws);
    ring_pos += piece;
    in_iov += piece;
    n -= piece;
    if (in_iov == iovs[iv].len) {
      ++iv;
      in_iov = 0;
    }
  }
}

sim::Task<void> VerbsChannelBase::copy_out(VerbsConnection& c,
                                           std::uint64_t ring_pos,
                                           std::span<const Iov> iovs,
                                           std::size_t iov_off, std::size_t n,
                                           std::size_t ws) {
  const std::size_t R = cfg_.ring_bytes;
  std::size_t iv = 0;
  std::size_t skipped = 0;
  while (iv < iovs.size() && skipped + iovs[iv].len <= iov_off) {
    skipped += iovs[iv].len;
    ++iv;
  }
  std::size_t in_iov = iov_off - skipped;
  while (n > 0 && iv < iovs.size()) {
    const std::size_t off = static_cast<std::size_t>(ring_pos % R);
    std::size_t piece = std::min({n, iovs[iv].len - in_iov, R - off});
    co_await node().copy(iovs[iv].base + in_iov, c.recv_ring.data() + off,
                         piece, ws);
    ring_pos += piece;
    in_iov += piece;
    n -= piece;
    if (in_iov == iovs[iv].len) {
      ++iv;
      in_iov = 0;
    }
  }
}

}  // namespace rdmach
