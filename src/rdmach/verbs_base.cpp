#include "rdmach/verbs_base.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "rdmach/crc32c.hpp"
#include "sim/fault.hpp"

namespace rdmach {

namespace {

std::string key(int from, int to, const char* what) {
  return "ch:" + std::to_string(from) + ":" + std::to_string(to) + ":" + what;
}

/// Recovery-handshake keys are epoch-scoped so every re-handshake is a
/// fresh exchange (PMI keys are write-once in real mpd too).
std::string rec_key(int from, int to, std::uint64_t epoch, const char* what) {
  return "rcv:" + std::to_string(from) + ":" + std::to_string(to) + ":" +
         std::to_string(epoch) + ":" + what;
}

std::string dead_key(int from, int to) {
  return "rcv:" + std::to_string(from) + ":" + std::to_string(to) + ":dead";
}

}  // namespace

sim::Task<void> VerbsChannelBase::init() {
  pmi::Kvs& kvs = *ctx_->kvs;
  pd_ = &node().hca().alloc_pd();
  cq_ = &node().hca().create_cq("rank" + std::to_string(rank()) + ".cq");

  // Rail bundle: one CQ per rail, owned by the rail's HCA.  Rail 0 reuses
  // the CQ above (legacy name, so single-rail runs are bit-identical).
  num_rails_ = node().num_rails();
  cqs_.assign(1, cq_);
  for (int r = 1; r < num_rails_; ++r) {
    cqs_.push_back(&node().rail(r).hca().create_cq(
        "rank" + std::to_string(rank()) + ".rail" + std::to_string(r) +
        ".cq"));
  }
  rail_track_.assign(static_cast<std::size_t>(num_rails_), {});

  conns_.clear();
  conns_.resize(static_cast<std::size_t>(size()));
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    auto conn = make_connection();
    conn->peer = p;
    conn->rail_failed.assign(static_cast<std::size_t>(num_rails_), 0);
    conn->recv_ring.assign(cfg_.ring_bytes, std::byte{0});
    conn->staging.assign(cfg_.ring_bytes, std::byte{0});
    conn->ring_mr = co_await pd_->register_memory(
        conn->recv_ring.data(), conn->recv_ring.size(), ib::kAllAccess);
    conn->staging_mr = co_await pd_->register_memory(
        conn->staging.data(), conn->staging.size(), ib::kAllAccess);
    conn->ctrl_mr = co_await pd_->register_memory(&conn->ctrl,
                                                  sizeof(CtrlBlock),
                                                  ib::kAllAccess);
    conn->qp = &node().hca().create_qp(*pd_, *cq_, *cq_);
    kvs.put_u64(key(rank(), p, "qpn"), conn->qp->qp_num());
    kvs.put_u64(key(rank(), p, "ring_addr"),
                reinterpret_cast<std::uint64_t>(conn->recv_ring.data()));
    kvs.put_u64(key(rank(), p, "ring_rkey"), conn->ring_mr->rkey());
    kvs.put_u64(key(rank(), p, "ctrl_addr"),
                reinterpret_cast<std::uint64_t>(&conn->ctrl));
    kvs.put_u64(key(rank(), p, "ctrl_rkey"), conn->ctrl_mr->rkey());
    conns_[static_cast<std::size_t>(p)] = std::move(conn);
  }

  // Fetch peer endpoints; the lower rank of each pair connects the QPs.
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    VerbsConnection& c = *conns_[static_cast<std::size_t>(p)];
    c.r_ring_addr = co_await kvs.get_u64(key(p, rank(), "ring_addr"));
    c.r_ring_rkey = static_cast<std::uint32_t>(
        co_await kvs.get_u64(key(p, rank(), "ring_rkey")));
    c.r_ctrl_addr = co_await kvs.get_u64(key(p, rank(), "ctrl_addr"));
    c.r_ctrl_rkey = static_cast<std::uint32_t>(
        co_await kvs.get_u64(key(p, rank(), "ctrl_rkey")));
    if (rank() < p) {
      const auto peer_qpn = static_cast<std::uint32_t>(
          co_await kvs.get_u64(key(p, rank(), "qpn")));
      ib::QueuePair* peer_qp = ctx_->fabric().find_qp(peer_qpn);
      if (peer_qp == nullptr) {
        throw std::runtime_error("bootstrap: peer QP not found");
      }
      c.qp->connect(*peer_qp);
    }
  }
  co_await ctx_->barrier->arrive();

  // Both directions are connected now: index QPs for error-CQE dispatch and
  // remember the peer node for out-of-band recovery wakeups.
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    VerbsConnection& c = *conns_[static_cast<std::size_t>(p)];
    c.peer_node = &c.qp->peer()->node();
    qp_index_[c.qp->qp_num()] = &c;
  }
}

sim::Task<void> VerbsChannelBase::drain_connection(VerbsConnection& c) {
  sim::Simulator& sim = ctx_->sim();
  for (;;) {
    bool dead = false;  // co_await is illegal inside a handler
    try {
      co_await maybe_recover(c);
    } catch (const ChannelError&) {
      // Nothing more can be delivered; the data loss was already surfaced
      // as ChannelError from the puts/gets that needed the connection.
      dead = true;
    }
    if (dead) co_return;
    co_await c.qp->quiesce();
    // An errored WQE's completion trails the quiesce by the NAK round trip
    // (the engine goes idle when it gives up, the CQE lands 2*wire_latency
    // later) -- wait it out so drain_cq sees the verdict.
    co_await sim.delay(2 * ctx_->fabric().cfg().wire_latency + 1);
    drain_cq();
    if (!c.rec.failed && !c.integrity_failed && !peer_epoch_pending(c)) {
      co_return;
    }
  }
}

sim::Task<void> VerbsChannelBase::finalize() {
  // Flush before stopping: "my put accepted those bytes" must mean "the
  // peer can read them", even though data/tail writes are posted unsignaled
  // and their loss is only discovered by the *next* channel entry -- which,
  // at shutdown, would never come.  (Regression: an MPI rank whose last
  // packet's ring write died with the QP parked in the finalize barrier
  // while its peer waited forever for the bytes.)
  for (auto& c : conns_) {
    if (!c) continue;
    co_await drain_connection(*c);
  }

  // Recovery-aware barrier: a drained rank keeps answering epoch
  // handshakes -- a slower peer may still need our half of a re-handshake
  // to redeliver its own traffic.  A blocking arrive() here would deadlock
  // exactly the case the drain above exists for, with the roles swapped.
  const std::uint64_t token = ctx_->barrier->arrive_split();
  while (!ctx_->barrier->done(token)) {
    bool serviced = false;
    for (auto& cp : conns_) {
      if (!cp || cp->rec.dead) continue;
      drain_cq();
      if (cp->rec.failed || peer_epoch_pending(*cp)) {
        co_await drain_connection(*cp);
        serviced = true;
      }
    }
    if (ctx_->barrier->done(token)) break;
    if (!serviced) co_await wait_for_activity();
  }
  // Completing the barrier wakes peers parked in the service loop above
  // (wait_for_activity is a node-level event; the barrier release is not).
  node().dma_arrival().fire();
  for (auto& c : conns_) {
    if (!c) continue;
    wake_peer(*c);
  }

  // All ranks have drained and stopped producing; buffers can go.
  for (auto& c : conns_) {
    if (!c) continue;
    co_await pd_->deregister(c->ring_mr);
    co_await pd_->deregister(c->staging_mr);
    co_await pd_->deregister(c->ctrl_mr);
  }
  co_await ctx_->barrier->arrive();
}

Connection& VerbsChannelBase::connection(int peer) {
  auto& c = conns_.at(static_cast<std::size_t>(peer));
  if (!c) throw std::logic_error("no connection to self");
  return *c;
}

sim::Task<void> VerbsChannelBase::wait_for_activity() {
  co_await node().dma_arrival().wait();
}

std::uint64_t VerbsChannelBase::activity_count() const {
  return node().dma_arrival().fire_count();
}

void VerbsChannelBase::post_ring_write(VerbsConnection& c,
                                       std::size_t staging_off,
                                       std::size_t len, std::size_t ring_off,
                                       bool signaled, std::uint64_t wr_id) {
  c.qp->post_send(ib::SendWr{
      wr_id,
      ib::Opcode::kRdmaWrite,
      {ib::Sge{c.staging.data() + staging_off, len, c.staging_mr->lkey()}},
      c.r_ring_addr + ring_off,
      c.r_ring_rkey,
      signaled});
}

void VerbsChannelBase::post_head_update(VerbsConnection& c) {
  // With integrity on, the 16-byte write carries the value together with
  // its CRC word (the basic design keeps head_master_crc current).
  const std::size_t w = cfg_.integrity_check ? 16 : 8;
  c.qp->post_send(ib::SendWr{
      next_wr_id(),
      ib::Opcode::kRdmaWrite,
      {ib::Sge{reinterpret_cast<std::byte*>(&c.ctrl) + kCtrlHeadMasterOff, w,
               c.ctrl_mr->lkey()}},
      c.r_ctrl_addr + kCtrlHeadReplicaOff,
      c.r_ctrl_rkey,
      /*signaled=*/false});
}

void VerbsChannelBase::post_tail_update(VerbsConnection& c) {
  std::size_t w = 8;
  if (cfg_.integrity_check) {
    c.ctrl.tail_master_crc = crc32c_u64(c.ctrl.tail_master);
    charge_crc(sizeof(c.ctrl.tail_master));
    w = 16;
  }
  c.qp->post_send(ib::SendWr{
      next_wr_id(),
      ib::Opcode::kRdmaWrite,
      {ib::Sge{reinterpret_cast<std::byte*>(&c.ctrl) + kCtrlTailMasterOff, w,
               c.ctrl_mr->lkey()}},
      c.r_ctrl_addr + kCtrlTailReplicaOff,
      c.r_ctrl_rkey,
      /*signaled=*/false});
}

void VerbsChannelBase::drain_cq() {
  // Every rail's CQ feeds one completion stash; wr_ids are unique across
  // rails, so waiters don't care which CQ their CQE arrived on.
  for (ib::CompletionQueue* cq : cqs_) {
    while (auto wc = cq->poll()) {
      if (wc->status == ib::WcStatus::kTransportError ||
          wc->status == ib::WcStatus::kFlushError) {
        // Map the CQE back to its connection.  A qp_num missing from the
        // index belongs to an already torn-down epoch (a straggler flush);
        // it must not re-trip recovery on the replacement QP.
        auto it = qp_index_.find(wc->qp_num);
        if (it != qp_index_.end()) it->second->rec.failed = true;
      }
      completed_[wc->wr_id] = *wc;
    }
    if (cq->overrun()) {
      // Drain-and-rearm: an injected overrun dropped CQEs before they were
      // queued.  Their true verdicts are unknowable (real HCAs lose them
      // outright), so resurface each as a flush on its connection -- waiters
      // unblock, the connection recovers, and replay (idempotent) redelivers
      // whatever the lost completions covered.
      for (ib::Wc wc : cq->rearm()) {
        wc.status = ib::WcStatus::kFlushError;
        auto it = qp_index_.find(wc.qp_num);
        if (it != qp_index_.end()) it->second->rec.failed = true;
        completed_[wc.wr_id] = wc;
        ++cq_overruns_;
      }
    }
  }
}

bool VerbsChannelBase::take_completion(std::uint64_t wr_id, ib::Wc* out) {
  drain_cq();
  auto it = completed_.find(wr_id);
  if (it == completed_.end()) return false;
  if (out != nullptr) *out = it->second;
  completed_.erase(it);
  return true;
}

sim::Task<ib::Wc> VerbsChannelBase::await_completion(std::uint64_t wr_id) {
  ib::Wc wc;
  for (;;) {
    if (take_completion(wr_id, &wc)) {
      if (wc.status == ib::WcStatus::kLocalProtectionError ||
          wc.status == ib::WcStatus::kRemoteAccessError) {
        throw std::logic_error(std::string("channel-internal WR failed: ") +
                               ib::to_string(wc.status));
      }
      co_return wc;
    }
    if (num_rails_ > 1) {
      // A CQE may land on any rail's CQ; dma_arrival fires on every CQE
      // delivery (including the overrun path), so it is the one event that
      // covers them all.
      co_await node().dma_arrival().wait();
    } else {
      co_await cq_->wait_nonempty();
    }
  }
}

sim::Task<ib::Wc> VerbsChannelBase::await_completion(VerbsConnection& c,
                                                     std::uint64_t wr_id) {
  ib::Wc wc;
  for (;;) {
    if (take_completion(wr_id, &wc)) {
      if (wc.status == ib::WcStatus::kLocalProtectionError ||
          wc.status == ib::WcStatus::kRemoteAccessError) {
        throw std::logic_error(std::string("channel-internal WR failed: ") +
                               ib::to_string(wc.status));
      }
      co_return wc;
    }
    if (watchdog_expired(c)) watchdog_abort(c, "completion");
    if (watchdog_armed(c)) {
      // Park against the node trigger (fired on every CQE delivery on any
      // rail, and by the scheduled deadline wakeup) so this wait cannot
      // outlive the episode deadline.
      arm_watchdog_wakeup(c);
      co_await node().dma_arrival().wait();
    } else if (num_rails_ > 1) {
      co_await node().dma_arrival().wait();
    } else {
      co_await cq_->wait_nonempty();
    }
  }
}

void VerbsChannelBase::arm_watchdog_wakeup(VerbsConnection& c) {
  if (c.rec.deadline == 0 || c.rec.wakeup_armed == c.rec.deadline) return;
  c.rec.wakeup_armed = c.rec.deadline;
  sim::Simulator& sim = ctx_->sim();
  if (c.rec.deadline <= sim.now()) return;
  ib::Node* n = &node();
  sim.call_at(c.rec.deadline, [n] { n->dma_arrival().fire(); });
}

RecoverySnapshot VerbsChannelBase::make_snapshot(const VerbsConnection& c,
                                                 std::string stage) const {
  RecoverySnapshot s;
  s.stage = std::move(stage);
  s.epoch = c.rec.epoch;
  s.attempts = c.rec.attempts;
  // Units the peer has not acknowledged consuming of my outgoing stream
  // (bytes for the basic design, slots for the slot-ring family): what a
  // further replay would have to carry.
  const std::uint64_t produced = journal_produced(c);
  s.journal_outstanding =
      produced > c.rec.last_synced ? produced - c.rec.last_synced : 0;
  s.total_rails = num_rails_;
  for (int r = 0; r < num_rails_; ++r) {
    if (node().rail(r).up()) ++s.live_rails;
  }
  s.nacks = c.rec.nacks;
  s.last_nack_epoch = c.rec.last_nack_epoch;
  return s;
}

void VerbsChannelBase::watchdog_abort(VerbsConnection& c, const char* stage) {
  ++watchdog_trips_;
  c.rec.dead = true;
  // Same release protocol as budget exhaustion: the peer may be parked in
  // its own handshake wait -- publish the verdict, then wake it.
  ctx_->kvs->put(dead_key(rank(), c.peer), "1");
  wake_peer(c);
  node().dma_arrival().fire();
  RecoverySnapshot snap = make_snapshot(c, std::string("watchdog:") + stage);
  throw ChannelError(c.peer,
                     "connection to rank " + std::to_string(c.peer) +
                         " watchdog expired (" + snap.to_string() + ")",
                     ChannelError::kDead, std::move(snap));
}

sim::Task<void> VerbsChannelBase::maybe_recover(VerbsConnection& c) {
  drain_cq();
  pmi::Kvs& kvs = *ctx_->kvs;
  for (;;) {
    if (!c.rec.dead && kvs.has(dead_key(c.peer, rank()))) c.rec.dead = true;
    if (c.rec.dead) {
      throw ChannelError(c.peer, "connection to rank " +
                                     std::to_string(c.peer) + " is dead");
    }
    if (!c.rec.failed && !c.integrity_failed && !peer_epoch_pending(c)) {
      co_return;
    }
    co_await recover(c);
    drain_cq();
  }
}

sim::Task<void> VerbsChannelBase::flush_crc_charge() {
  while (pending_crc_bytes_ > 0) {
    const std::size_t n = pending_crc_bytes_;
    pending_crc_bytes_ = 0;
    co_await node().bus().transfer(static_cast<std::int64_t>(n));
  }
}

void VerbsChannelBase::flag_integrity_failure(VerbsConnection& c) {
  ++crc_failures_;
  c.integrity_failed = true;
  c.rec.nacks++;
  c.rec.last_nack_epoch = c.rec.epoch;
  node().dma_arrival().fire();
}

std::uint64_t VerbsChannelBase::checked_tail(VerbsConnection& c) {
  if (!cfg_.integrity_check) return c.ctrl.tail_replica;
  const std::uint64_t t = c.ctrl.tail_replica;
  if (t > c.tail_valid) {
    charge_crc(sizeof(t));
    if (crc32c_u64(t) == static_cast<std::uint32_t>(c.ctrl.tail_replica_crc)) {
      c.tail_valid = t;
    } else {
      // A lying tail word (e.g. corrupted garbage-high) must not mint ring
      // credit.  No NACK needed: tail updates are repeated, so the next
      // clean one heals this without a round trip.
      ++crc_failures_;
    }
  }
  return c.tail_valid;
}

bool VerbsChannelBase::credit_denied() {
  sim::FaultSchedule* faults = ctx_->fabric().faults();
  if (faults == nullptr) return false;
  if (!faults->check(node().name() + ".credit")) return false;
  ++credit_stalls_;
  schedule_retry_wakeup();
  return true;
}

void VerbsChannelBase::schedule_retry_wakeup() {
  sim::Simulator& sim = ctx_->sim();
  ib::Node* n = &node();
  sim.call_at(sim.now() + ctx_->fabric().cfg().retry_delay,
              [n] { n->dma_arrival().fire(); });
}

bool VerbsChannelBase::peer_epoch_pending(VerbsConnection& c) const {
  return ctx_->kvs->has(rec_key(c.peer, rank(), c.rec.epoch + 1, "qpn"));
}

void VerbsChannelBase::wake_peer(VerbsConnection& c) {
  if (c.peer_node == nullptr) return;
  sim::Simulator& sim = ctx_->sim();
  ib::Node* peer_node = c.peer_node;
  sim.call_at(sim.now() + ctx_->fabric().cfg().wire_latency,
              [peer_node] { peer_node->dma_arrival().fire(); });
}

sim::Task<void> VerbsChannelBase::recover(VerbsConnection& c) {
  pmi::Kvs& kvs = *ctx_->kvs;
  sim::Simulator& sim = ctx_->sim();
  const std::uint64_t next_epoch = c.rec.epoch + 1;

  // A CRC-mismatch NACK colors this attempt run: should the budget run out
  // before a clean retransmission lands, the error reports an integrity
  // exhaustion rather than a transport death.
  if (c.integrity_failed) c.rec.integrity = true;

  // Watchdog episode accounting.  A fresh episode -- first attempt ever,
  // first after a progress refund, or first after a quiet gap longer than
  // the deadline window -- (re)arms the deadline; an episode still spinning
  // at its deadline is aborted here (the backoff below bounds the spacing
  // of these checks, so a spin cannot dodge the deadline for long).
  if (cfg_.recovery_epoch_deadline > 0) {
    const sim::Tick now = sim.now();
    const bool fresh = c.rec.deadline == 0 || c.rec.attempts == 0 ||
                       now - c.rec.last_attempt > cfg_.recovery_epoch_deadline;
    if (fresh) {
      c.rec.deadline = now + cfg_.recovery_epoch_deadline;
    } else if (now >= c.rec.deadline) {
      ++c.rec.attempts;
      watchdog_abort(c, "retry-loop");
    }
    c.rec.last_attempt = now;
  }

  if (++c.rec.attempts > cfg_.recovery_max_attempts) {
    // Publish the verdict *before* throwing so the peer -- possibly parked
    // inside its own handshake wait -- is released rather than deadlocked.
    c.rec.dead = true;
    kvs.put(dead_key(rank(), c.peer), "1");
    wake_peer(c);
    const ChannelError::Kind kind =
        c.rec.integrity ? ChannelError::kIntegrity : ChannelError::kDead;
    throw ChannelError(
        c.peer,
        "connection to rank " + std::to_string(c.peer) +
            " beyond recovery: " +
            std::to_string(cfg_.recovery_max_attempts) +
            " consecutive attempts without progress" +
            (kind == ChannelError::kIntegrity ? " (integrity)" : ""),
        kind, make_snapshot(c, "retry-budget"));
  }

  // Bounded exponential backoff before touching the wire again.
  sim::Tick backoff = cfg_.recovery_backoff;
  for (int i = 1; i < c.rec.attempts &&
                  backoff < cfg_.recovery_backoff_cap; ++i) {
    backoff *= 2;
  }
  co_await sim.delay(std::min(backoff, cfg_.recovery_backoff_cap));

  // Tear down: error the old QP, wait until nothing it initiated can still
  // land in peer memory (the precondition for trusting replayed state),
  // then drop it from the CQE index so straggler flushes are inert.
  c.qp->close();
  co_await c.qp->quiesce();
  qp_index_.erase(c.qp->qp_num());

  // Fresh QP on the lowest live rail (rail 0 unless its port died -- a rail
  // failure is a failover, not a retry storm; with every rail dead we stay
  // on rail 0 and let the attempt budget declare the connection dead).
  // Publish my half of the epoch handshake: the new QP number and how much
  // of the peer's stream I had consumed (its replay start).
  if (!c.qp->port().up()) note_rail_dead(c, c.qp->port().rail());
  c.qp = &create_rail_qp(lowest_live_rail());
  kvs.put_u64(rec_key(rank(), c.peer, next_epoch, "qpn"), c.qp->qp_num());
  kvs.put_u64(rec_key(rank(), c.peer, next_epoch, "consumed"),
              journal_consumed(c));
  wake_peer(c);

  // Join the peer's half -- unless it declared the connection dead, or the
  // watchdog deadline passes first (a peer that never answers must not
  // park this rank forever).
  const bool bounded = watchdog_armed(c);
  std::optional<std::string> peer_qpn_s;
  std::optional<std::string> peer_consumed_s;
  if (bounded) {
    peer_qpn_s = co_await kvs.get_unless_before(
        rec_key(c.peer, rank(), next_epoch, "qpn"), dead_key(c.peer, rank()),
        c.rec.deadline);
    if (peer_qpn_s) {
      peer_consumed_s = co_await kvs.get_unless_before(
          rec_key(c.peer, rank(), next_epoch, "consumed"),
          dead_key(c.peer, rank()), c.rec.deadline);
    }
  } else {
    peer_qpn_s = co_await kvs.get_unless(
        rec_key(c.peer, rank(), next_epoch, "qpn"), dead_key(c.peer, rank()));
    peer_consumed_s = co_await kvs.get_unless(
        rec_key(c.peer, rank(), next_epoch, "consumed"),
        dead_key(c.peer, rank()));
  }
  if (!peer_qpn_s || !peer_consumed_s) {
    if (!kvs.has(dead_key(c.peer, rank())) && watchdog_expired(c)) {
      watchdog_abort(c, "handshake");
    }
    c.rec.dead = true;
    throw ChannelError(c.peer, "connection to rank " +
                                   std::to_string(c.peer) +
                                   " declared dead by peer");
  }
  const auto peer_qpn =
      static_cast<std::uint32_t>(std::stoull(*peer_qpn_s));
  const std::uint64_t peer_consumed = std::stoull(*peer_consumed_s);

  // Same connect protocol as bootstrap: the lower rank wires the pair.
  if (rank() < c.peer) {
    ib::QueuePair* peer_qp = ctx_->fabric().find_qp(peer_qpn);
    if (peer_qp == nullptr) {
      throw std::runtime_error("recovery: peer QP not found");
    }
    c.qp->connect(*peer_qp);
  } else if (watchdog_armed(c)) {
    const bool connected = co_await c.qp->wait_connected_until(c.rec.deadline);
    if (!connected) watchdog_abort(c, "connect");
  } else {
    co_await c.qp->wait_connected();
  }

  c.rec.epoch = next_epoch;
  c.rec.failed = false;
  // The NACK is consumed: the re-handshake tells the sender to retransmit
  // (replay below on its side).  A fresh mismatch on the retransmitted data
  // will re-arm it.
  c.integrity_failed = false;
  qp_index_[c.qp->qp_num()] = &c;
  ++recoveries_;

  // Progress in either direction since the last epoch refunds the retry
  // budget; only consecutive *no-progress* attempts count against it.
  const std::uint64_t local_consumed = journal_consumed(c);
  if (peer_consumed > c.rec.last_synced ||
      local_consumed > c.rec.last_synced_local) {
    c.rec.attempts = 0;
    c.rec.integrity = false;
    // Progress ends the watchdog episode; the next attempt re-arms afresh.
    if (cfg_.recovery_epoch_deadline > 0) {
      c.rec.deadline = sim.now() + cfg_.recovery_epoch_deadline;
    }
  }
  c.rec.last_synced = peer_consumed;
  c.rec.last_synced_local = local_consumed;

  co_await replay(c, peer_consumed);
}

sim::Task<void> VerbsChannelBase::copy_in(VerbsConnection& c,
                                          std::uint64_t ring_pos,
                                          std::span<const ConstIov> iovs,
                                          std::size_t iov_off, std::size_t n,
                                          std::size_t ws) {
  const std::size_t R = cfg_.ring_bytes;
  std::size_t iv = 0;
  std::size_t skipped = 0;
  // Locate the iov containing iov_off.
  while (iv < iovs.size() && skipped + iovs[iv].len <= iov_off) {
    skipped += iovs[iv].len;
    ++iv;
  }
  std::size_t in_iov = iov_off - skipped;
  while (n > 0 && iv < iovs.size()) {
    const std::size_t off = static_cast<std::size_t>(ring_pos % R);
    std::size_t piece = std::min({n, iovs[iv].len - in_iov, R - off});
    co_await node().copy(c.staging.data() + off, iovs[iv].base + in_iov,
                         piece, ws);
    ring_pos += piece;
    in_iov += piece;
    n -= piece;
    if (in_iov == iovs[iv].len) {
      ++iv;
      in_iov = 0;
    }
  }
}

sim::Task<void> VerbsChannelBase::copy_out(VerbsConnection& c,
                                           std::uint64_t ring_pos,
                                           std::span<const Iov> iovs,
                                           std::size_t iov_off, std::size_t n,
                                           std::size_t ws) {
  const std::size_t R = cfg_.ring_bytes;
  std::size_t iv = 0;
  std::size_t skipped = 0;
  while (iv < iovs.size() && skipped + iovs[iv].len <= iov_off) {
    skipped += iovs[iv].len;
    ++iv;
  }
  std::size_t in_iov = iov_off - skipped;
  while (n > 0 && iv < iovs.size()) {
    const std::size_t off = static_cast<std::size_t>(ring_pos % R);
    std::size_t piece = std::min({n, iovs[iv].len - in_iov, R - off});
    co_await node().copy(iovs[iv].base + in_iov, c.recv_ring.data() + off,
                         piece, ws);
    ring_pos += piece;
    in_iov += piece;
    n -= piece;
    if (in_iov == iovs[iv].len) {
      ++iv;
      in_iov = 0;
    }
  }
}

}  // namespace rdmach
