#include "rdmach/verbs_base.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "rdmach/crc32c.hpp"
#include "sim/fault.hpp"

namespace rdmach {

namespace {

std::string key(int from, int to, const char* what) {
  return "ch:" + std::to_string(from) + ":" + std::to_string(to) + ":" + what;
}

/// Recovery-handshake keys are epoch-scoped so every re-handshake is a
/// fresh exchange (PMI keys are write-once in real mpd too).
std::string rec_key(int from, int to, std::uint64_t epoch, const char* what) {
  return "rcv:" + std::to_string(from) + ":" + std::to_string(to) + ":" +
         std::to_string(epoch) + ":" + what;
}

std::string dead_key(int from, int to) {
  return "rcv:" + std::to_string(from) + ":" + std::to_string(to) + ":dead";
}

/// Per-rank mailbox key of the lazy-connect control plane; messages are
/// appended (Kvs::append) and consumed in FIFO order through a cursor, so
/// an evict-ack for generation g is always processed before the connect
/// request that opens generation g+1.
std::string lz_mail_key(int r) { return "lzm:" + std::to_string(r); }

}  // namespace

std::string VerbsChannelBase::lazy_key(int from, int to, std::uint64_t gen,
                                       const char* what) {
  return "lz:" + std::to_string(from) + ":" + std::to_string(to) + ":" +
         std::to_string(gen) + ":" + what;
}

sim::Task<void> VerbsChannelBase::init() {
  pmi::Kvs& kvs = *ctx_->kvs;
  pd_ = &node().hca().alloc_pd();
  cq_ = &node().hca().create_cq("rank" + std::to_string(rank()) + ".cq");

  // Rail bundle: one CQ per rail, owned by the rail's HCA.  Rail 0 reuses
  // the CQ above (legacy name, so single-rail runs are bit-identical).
  num_rails_ = node().num_rails();
  cqs_.assign(1, cq_);
  for (int r = 1; r < num_rails_; ++r) {
    cqs_.push_back(&node().rail(r).hca().create_cq(
        "rank" + std::to_string(rank()) + ".rail" + std::to_string(r) +
        ".cq"));
  }
  rail_track_.assign(static_cast<std::size_t>(num_rails_), {});
  rail_health_.assign(static_cast<std::size_t>(num_rails_), {});

  conns_.clear();
  conns_.resize(static_cast<std::size_t>(size()));

  if (cfg_.lazy_connect) {
    // Lazy bootstrap: no per-pair rings, MRs, or QPs -- a rank's footprint
    // at init is O(1), not O(ranks).  Connections are born cold; the first
    // put() runs the on-demand handshake (ensure_tx / lazy_service).  The
    // shared receive pool, when configured, is allocated and registered
    // once here: one rkey covers every lease it will ever hand out.
    if (cfg_.srq_pool_rings > 0) {
      srq_pool_.reset(cfg_.srq_pool_rings, cfg_.ring_bytes);
      srq_mr_ = co_await pd_->register_memory(
          srq_pool_.base(), srq_pool_.bytes(), ib::kAllAccess);
    }
    for (int p = 0; p < size(); ++p) {
      if (p == rank()) continue;
      auto conn = make_connection();
      conn->peer = p;
      conn->rail_failed.assign(static_cast<std::size_t>(num_rails_), 0);
      conn->boot = VerbsConnection::Boot::kCold;
      // The peer's node is known from the process map alone -- needed for
      // connect-request wakeups before any QP exists.
      conn->peer_node = &ctx_->fabric().node(
          static_cast<std::size_t>(p / ctx_->ranks_per_node));
      conns_[static_cast<std::size_t>(p)] = std::move(conn);
    }
    co_await ctx_->barrier->arrive();
    co_return;
  }

  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    auto conn = make_connection();
    conn->peer = p;
    conn->rail_failed.assign(static_cast<std::size_t>(num_rails_), 0);
    conn->recv_ring.assign(cfg_.ring_bytes, std::byte{0});
    conn->rx = conn->recv_ring.data();
    conn->staging.assign(cfg_.ring_bytes, std::byte{0});
    conn->ring_mr = co_await pd_->register_memory(
        conn->recv_ring.data(), conn->recv_ring.size(), ib::kAllAccess);
    conn->staging_mr = co_await pd_->register_memory(
        conn->staging.data(), conn->staging.size(), ib::kAllAccess);
    conn->ctrl_mr = co_await pd_->register_memory(&conn->ctrl,
                                                  sizeof(CtrlBlock),
                                                  ib::kAllAccess);
    conn->qp = &node().hca().create_qp(*pd_, *cq_, *cq_);
    ++qps_created_;
    kvs.put_u64(key(rank(), p, "qpn"), conn->qp->qp_num());
    kvs.put_u64(key(rank(), p, "ring_addr"),
                reinterpret_cast<std::uint64_t>(conn->recv_ring.data()));
    kvs.put_u64(key(rank(), p, "ring_rkey"), conn->ring_mr->rkey());
    kvs.put_u64(key(rank(), p, "ctrl_addr"),
                reinterpret_cast<std::uint64_t>(&conn->ctrl));
    kvs.put_u64(key(rank(), p, "ctrl_rkey"), conn->ctrl_mr->rkey());
    conns_[static_cast<std::size_t>(p)] = std::move(conn);
  }

  // Fetch peer endpoints; the lower rank of each pair connects the QPs.
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    VerbsConnection& c = *conns_[static_cast<std::size_t>(p)];
    c.r_ring_addr = co_await kvs.get_u64(key(p, rank(), "ring_addr"));
    c.r_ring_rkey = static_cast<std::uint32_t>(
        co_await kvs.get_u64(key(p, rank(), "ring_rkey")));
    c.r_ctrl_addr = co_await kvs.get_u64(key(p, rank(), "ctrl_addr"));
    c.r_ctrl_rkey = static_cast<std::uint32_t>(
        co_await kvs.get_u64(key(p, rank(), "ctrl_rkey")));
    if (rank() < p) {
      const auto peer_qpn = static_cast<std::uint32_t>(
          co_await kvs.get_u64(key(p, rank(), "qpn")));
      ib::QueuePair* peer_qp = ctx_->fabric().find_qp(peer_qpn);
      if (peer_qp == nullptr) {
        throw std::runtime_error("bootstrap: peer QP not found");
      }
      c.qp->connect(*peer_qp);
    }
  }
  co_await ctx_->barrier->arrive();

  // Both directions are connected now: index QPs for error-CQE dispatch and
  // remember the peer node for out-of-band recovery wakeups.
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    VerbsConnection& c = *conns_[static_cast<std::size_t>(p)];
    c.peer_node = &c.qp->peer()->node();
    qp_index_[c.qp->qp_num()] = &c;
    ++qps_live_;
  }
}

sim::Task<void> VerbsChannelBase::drain_connection(VerbsConnection& c) {
  sim::Simulator& sim = ctx_->sim();
  for (;;) {
    bool dead = false;  // co_await is illegal inside a handler
    try {
      co_await maybe_recover(c);
    } catch (const ChannelError&) {
      // Nothing more can be delivered; the data loss was already surfaced
      // as ChannelError from the puts/gets that needed the connection.
      dead = true;
    }
    if (dead) co_return;
    co_await c.qp->quiesce();
    // An errored WQE's completion trails the quiesce by the NAK round trip
    // (the engine goes idle when it gives up, the CQE lands 2*wire_latency
    // later) -- wait it out so drain_cq sees the verdict.
    co_await sim.delay(2 * ctx_->fabric().cfg().wire_latency + 1);
    drain_cq();
    if (!c.rec.failed && !c.integrity_failed && !peer_epoch_pending(c)) {
      co_return;
    }
  }
}

sim::Task<void> VerbsChannelBase::finalize() {
  // Flush before stopping: "my put accepted those bytes" must mean "the
  // peer can read them", even though data/tail writes are posted unsignaled
  // and their loss is only discovered by the *next* channel entry -- which,
  // at shutdown, would never come.  (Regression: an MPI rank whose last
  // packet's ring write died with the QP parked in the finalize barrier
  // while its peer waited forever for the bytes.)
  for (auto& c : conns_) {
    if (!c) continue;
    // Lazy mode: cold connections have nothing to drain; a half-built one
    // (kRequested, peer never joined) has no wired QP either.
    if (c->qp == nullptr || !c->qp->connected()) continue;
    co_await drain_connection(*c);
  }

  // Recovery-aware barrier: a drained rank keeps answering epoch
  // handshakes -- a slower peer may still need our half of a re-handshake
  // to redeliver its own traffic.  A blocking arrive() here would deadlock
  // exactly the case the drain above exists for, with the roles swapped.
  const std::uint64_t token = ctx_->barrier->arrive_split();
  while (!ctx_->barrier->done(token)) {
    // Obituaried ranks can never arrive: drop them from the participant
    // set (idempotent per rank) so survivors' finalize does not wedge on a
    // corpse.  Re-checked each pass -- an obituary can land while parked.
    for (int r : ctx_->kvs->obits()) ctx_->barrier->abandon(r);
    if (ctx_->barrier->done(token)) break;
    bool serviced = false;
    // A finalizing rank keeps answering the lazy control plane too: a
    // slower peer may still need our half of an evict handshake to get out
    // of kEvictWait.
    if (cfg_.lazy_connect) co_await lazy_service();
    for (auto& cp : conns_) {
      if (!cp || cp->rec.dead) continue;
      if (cp->qp == nullptr || !cp->qp->connected()) continue;
      drain_cq();
      if (cp->rec.failed || peer_epoch_pending(*cp)) {
        co_await drain_connection(*cp);
        serviced = true;
      }
    }
    if (ctx_->barrier->done(token)) break;
    if (!serviced) co_await wait_for_activity();
  }
  // Completing the barrier wakes peers parked in the service loop above
  // (wait_for_activity is a node-level event; the barrier release is not).
  node().dma_arrival().fire();
  for (auto& c : conns_) {
    if (!c) continue;
    wake_peer(*c);
  }

  // All ranks have drained and stopped producing; buffers can go.  Cold
  // lazy connections have no registrations; pooled rings go back to the
  // shared pool (whose one registration is dropped last).
  for (auto& c : conns_) {
    if (!c) continue;
    if (c->ring_mr != nullptr) co_await pd_->deregister(c->ring_mr);
    if (c->staging_mr != nullptr) co_await pd_->deregister(c->staging_mr);
    if (c->ctrl_mr != nullptr) co_await pd_->deregister(c->ctrl_mr);
    if (c->ring_pooled) {
      srq_pool_.release(c->rx);
      c->ring_pooled = false;
      c->rx = nullptr;
    }
  }
  if (srq_mr_ != nullptr) {
    co_await pd_->deregister(srq_mr_);
    srq_mr_ = nullptr;
  }
  co_await ctx_->barrier->arrive();
}

Connection& VerbsChannelBase::connection(int peer) {
  auto& c = conns_.at(static_cast<std::size_t>(peer));
  if (!c) throw std::logic_error("no connection to self");
  return *c;
}

sim::Task<void> VerbsChannelBase::wait_for_activity() {
  co_await node().dma_arrival().wait();
}

std::uint64_t VerbsChannelBase::activity_count() const {
  return node().dma_arrival().fire_count();
}

void VerbsChannelBase::post_ring_write(VerbsConnection& c,
                                       std::size_t staging_off,
                                       std::size_t len, std::size_t ring_off,
                                       bool signaled, std::uint64_t wr_id) {
  c.qp->post_send(ib::SendWr{
      wr_id,
      ib::Opcode::kRdmaWrite,
      {ib::Sge{c.staging.data() + staging_off, len, c.staging_mr->lkey()}},
      c.r_ring_addr + ring_off,
      c.r_ring_rkey,
      signaled});
}

void VerbsChannelBase::post_head_update(VerbsConnection& c) {
  // With integrity on, the 16-byte write carries the value together with
  // its CRC word (the basic design keeps head_master_crc current).
  const std::size_t w = cfg_.integrity_check ? 16 : 8;
  c.qp->post_send(ib::SendWr{
      next_wr_id(),
      ib::Opcode::kRdmaWrite,
      {ib::Sge{reinterpret_cast<std::byte*>(&c.ctrl) + kCtrlHeadMasterOff, w,
               c.ctrl_mr->lkey()}},
      c.r_ctrl_addr + kCtrlHeadReplicaOff,
      c.r_ctrl_rkey,
      /*signaled=*/false});
}

void VerbsChannelBase::post_tail_update(VerbsConnection& c) {
  std::size_t w = 8;
  if (cfg_.integrity_check) {
    c.ctrl.tail_master_crc = crc32c_u64(c.ctrl.tail_master);
    charge_crc(sizeof(c.ctrl.tail_master));
    w = 16;
  }
  c.qp->post_send(ib::SendWr{
      next_wr_id(),
      ib::Opcode::kRdmaWrite,
      {ib::Sge{reinterpret_cast<std::byte*>(&c.ctrl) + kCtrlTailMasterOff, w,
               c.ctrl_mr->lkey()}},
      c.r_ctrl_addr + kCtrlTailReplicaOff,
      c.r_ctrl_rkey,
      /*signaled=*/false});
}

void VerbsChannelBase::drain_cq() {
  // Every rail's CQ feeds one completion stash; wr_ids are unique across
  // rails, so waiters don't care which CQ their CQE arrived on.
  for (ib::CompletionQueue* cq : cqs_) {
    // Batched poll: one call drains the whole rail instead of one poll per
    // WQE (the reused scratch keeps the hot path allocation-free).
    wc_scratch_.clear();
    cq->poll_batch(wc_scratch_);
    for (const ib::Wc& wc : wc_scratch_) {
      if (wc.status == ib::WcStatus::kTransportError ||
          wc.status == ib::WcStatus::kFlushError) {
        // Map the CQE back to its connection.  A qp_num missing from the
        // index belongs to an already torn-down epoch (a straggler flush);
        // it must not re-trip recovery on the replacement QP.
        auto it = qp_index_.find(wc.qp_num);
        if (it != qp_index_.end()) it->second->rec.failed = true;
      } else if (wd_hint_ && wc.status == ib::WcStatus::kSuccess) {
        // A *partial* CQ drain is progress too: a successful CQE on a
        // connection inside an armed watchdog episode re-arms its deadline,
        // so a degraded (slow, not dead) rail that is steadily completing
        // WQEs can never be convicted by the clock between two recovery
        // attempts.  Pure bookkeeping -- no virtual time, and wd_hint_ is
        // only ever set by recover(), so fault-free traces are untouched.
        auto it = qp_index_.find(wc.qp_num);
        if (it != qp_index_.end()) {
          VerbsConnection::Recovery& rec = it->second->rec;
          if (rec.deadline != 0 &&
              ctx_->sim().now() - rec.last_attempt <=
                  cfg_.recovery_epoch_deadline) {
            rec.deadline = ctx_->sim().now() + cfg_.recovery_epoch_deadline;
            if (rec.suspicion > 0) --rec.suspicion;
          }
        }
      }
      completed_[wc.wr_id] = wc;
    }
    if (cq->overrun()) {
      // Drain-and-rearm: an injected overrun dropped CQEs before they were
      // queued.  Their true verdicts are unknowable (real HCAs lose them
      // outright), so resurface each as a flush on its connection -- waiters
      // unblock, the connection recovers, and replay (idempotent) redelivers
      // whatever the lost completions covered.
      for (ib::Wc wc : cq->rearm()) {
        wc.status = ib::WcStatus::kFlushError;
        auto it = qp_index_.find(wc.qp_num);
        if (it != qp_index_.end()) it->second->rec.failed = true;
        completed_[wc.wr_id] = wc;
        ++cq_overruns_;
      }
    }
  }
}

void VerbsChannelBase::note_rail_sample(int rail, std::uint64_t bytes,
                                        double elapsed_usec) {
  if (!cfg_.health_detector || rail < 0 || rail >= num_rails_ ||
      elapsed_usec <= 0.0) {
    return;
  }
  RailHealth& h = rail_health_[static_cast<std::size_t>(rail)];
  const double mbps = static_cast<double>(bytes) / elapsed_usec;

  if (h.quarantined) {
    // Probation: this sample is a probe's verdict.  Healthy = within the
    // reinstate factor of the pre-quarantine baseline goodput.
    const bool healthy =
        mbps >= cfg_.health_reinstate_factor * h.baseline;
    if (h.probe_virgin) {
      h.probe_virgin = false;
      // The very first probe already measuring healthy means the detector
      // jumped at noise, not at a degrade.
      if (healthy) ++false_suspicions_;
    }
    if (!healthy) {
      h.healthy_probes = 0;
      return;
    }
    if (++h.healthy_probes < cfg_.health_reinstate_probes) return;
    // Reinstate: rejoin the stripe set without a reconnect.  The EWMA
    // restarts its warmup from the probe's reading -- the healed rail's
    // goodput, not the degraded history.
    h.quarantined = false;
    h.suspicion = 0;
    h.samples = 1;
    h.mean = mbps;
    h.var = 0.0;
    h.skip_count = 0;
    h.healthy_probes = 0;
    degraded_ns_ += static_cast<std::uint64_t>(ctx_->sim().now() - h.since);
    ++rail_reinstates_;
    return;
  }

  // Suspicion test against the EWMA *before* folding the sample in, with
  // the deviation floored at 10 % of the mean so a near-zero variance
  // cannot hair-trigger on ordinary jitter.
  if (h.samples >= static_cast<std::uint64_t>(cfg_.health_warmup)) {
    const double sigma =
        std::max(std::sqrt(h.var), 0.1 * h.mean);
    if (mbps < h.mean - cfg_.health_soft_sigma * sigma) {
      // Suspicious samples accrue score and are NOT folded into the EWMA:
      // a degraded rail must not drag its own baseline down until the
      // degrade looks normal.
      if (++h.suspicion == cfg_.health_suspicion_trip) {
        ++suspicion_trips_;
        // Never quarantine the last usable rail -- a fully-degraded node
        // still needs a stripe set of one.
        int usable = 0;
        for (int r = 0; r < num_rails_; ++r) {
          if (rail_usable(r)) ++usable;
        }
        if (usable > 1) {
          h.quarantined = true;
          h.since = ctx_->sim().now();
          h.baseline = h.mean;
          h.skip_count = 0;
          h.healthy_probes = 0;
          h.probe_virgin = true;
          ++rail_quarantines_;
        } else {
          // Conviction refused; keep accruing so a later-recovered fleet
          // can still quarantine (score capped at trip by the == above).
          --h.suspicion;
        }
      }
      return;
    }
    if (h.suspicion > 0) --h.suspicion;
  }
  if (h.samples == 0) {
    h.mean = mbps;
    h.var = 0.0;
  } else {
    const double a = cfg_.health_alpha;
    const double d = mbps - h.mean;
    h.mean += a * d;
    h.var = (1.0 - a) * (h.var + a * d * d);
  }
  ++h.samples;
}

bool VerbsChannelBase::take_completion(std::uint64_t wr_id, ib::Wc* out) {
  drain_cq();
  auto it = completed_.find(wr_id);
  if (it == completed_.end()) return false;
  if (out != nullptr) *out = it->second;
  completed_.erase(it);
  return true;
}

sim::Task<ib::Wc> VerbsChannelBase::await_completion(std::uint64_t wr_id) {
  ib::Wc wc;
  for (;;) {
    if (take_completion(wr_id, &wc)) {
      if (wc.status == ib::WcStatus::kLocalProtectionError ||
          wc.status == ib::WcStatus::kRemoteAccessError) {
        throw std::logic_error(std::string("channel-internal WR failed: ") +
                               ib::to_string(wc.status));
      }
      co_return wc;
    }
    if (num_rails_ > 1) {
      // A CQE may land on any rail's CQ; dma_arrival fires on every CQE
      // delivery (including the overrun path), so it is the one event that
      // covers them all.
      co_await node().dma_arrival().wait();
    } else {
      co_await cq_->wait_nonempty();
    }
  }
}

sim::Task<ib::Wc> VerbsChannelBase::await_completion(VerbsConnection& c,
                                                     std::uint64_t wr_id) {
  ib::Wc wc;
  for (;;) {
    if (take_completion(wr_id, &wc)) {
      if (wc.status == ib::WcStatus::kLocalProtectionError ||
          wc.status == ib::WcStatus::kRemoteAccessError) {
        throw std::logic_error(std::string("channel-internal WR failed: ") +
                               ib::to_string(wc.status));
      }
      co_return wc;
    }
    if (watchdog_expired(c)) watchdog_abort(c, "completion");
    if (watchdog_armed(c)) {
      // Park against the node trigger (fired on every CQE delivery on any
      // rail, and by the scheduled deadline wakeup) so this wait cannot
      // outlive the episode deadline.
      arm_watchdog_wakeup(c);
      co_await node().dma_arrival().wait();
    } else if (num_rails_ > 1) {
      co_await node().dma_arrival().wait();
    } else {
      co_await cq_->wait_nonempty();
    }
  }
}

void VerbsChannelBase::arm_watchdog_wakeup(VerbsConnection& c) {
  if (c.rec.deadline == 0 || c.rec.wakeup_armed == c.rec.deadline) return;
  c.rec.wakeup_armed = c.rec.deadline;
  sim::Simulator& sim = ctx_->sim();
  if (c.rec.deadline <= sim.now()) return;
  ib::Node* n = &node();
  sim.call_at(c.rec.deadline, [n] { n->dma_arrival().fire(); });
}

RecoverySnapshot VerbsChannelBase::make_snapshot(const VerbsConnection& c,
                                                 std::string stage) const {
  RecoverySnapshot s;
  s.stage = std::move(stage);
  s.epoch = c.rec.epoch;
  s.attempts = c.rec.attempts;
  // Units the peer has not acknowledged consuming of my outgoing stream
  // (bytes for the basic design, slots for the slot-ring family): what a
  // further replay would have to carry.
  const std::uint64_t produced = journal_produced(c);
  s.journal_outstanding =
      produced > c.rec.last_synced ? produced - c.rec.last_synced : 0;
  s.total_rails = num_rails_;
  for (int r = 0; r < num_rails_; ++r) {
    if (node().rail(r).up()) ++s.live_rails;
  }
  s.nacks = c.rec.nacks;
  s.last_nack_epoch = c.rec.last_nack_epoch;
  return s;
}

void VerbsChannelBase::post_obituary(VerbsConnection& c) {
  if (!cfg_.ft_detector) return;
  if (!ctx_->kvs->post_obit(c.peer)) return;
  ++obits_posted_;
  // Progress engines park on the fabric dma_arrival triggers, not the KVS
  // one: wake every node (one wire latency out, like any CM event) so
  // parked loops re-check the board instead of sleeping on a corpse.
  pmi::wake_all_ranks(*ctx_);
}

void VerbsChannelBase::obit_fast_fail(VerbsConnection& c, const char* stage) {
  if (!cfg_.ft_detector || !peer_obituaried(c)) return;
  ++obit_fast_fails_;
  c.rec.dead = true;
  RecoverySnapshot snap = make_snapshot(c, std::string("obituary:") + stage);
  throw ChannelError(c.peer,
                     "rank " + std::to_string(c.peer) +
                         " has a published obituary (" + stage + ")",
                     ChannelError::kDead, std::move(snap));
}

void VerbsChannelBase::watchdog_abort(VerbsConnection& c, const char* stage) {
  ++watchdog_trips_;
  c.rec.dead = true;
  // Same release protocol as budget exhaustion: the peer may be parked in
  // its own handshake wait -- publish the verdict, then wake it.
  ctx_->kvs->put(dead_key(rank(), c.peer), "1");
  wake_peer(c);
  node().dma_arrival().fire();
  post_obituary(c);
  RecoverySnapshot snap = make_snapshot(c, std::string("watchdog:") + stage);
  throw ChannelError(c.peer,
                     "connection to rank " + std::to_string(c.peer) +
                         " watchdog expired (" + snap.to_string() + ")",
                     ChannelError::kDead, std::move(snap));
}

sim::Task<void> VerbsChannelBase::maybe_recover(VerbsConnection& c) {
  drain_cq();
  pmi::Kvs& kvs = *ctx_->kvs;
  for (;;) {
    if (!c.rec.dead && kvs.has(dead_key(c.peer, rank()))) c.rec.dead = true;
    if (c.rec.dead) {
      throw ChannelError(c.peer,
                         "connection to rank " + std::to_string(c.peer) +
                             " is dead",
                         ChannelError::kDead, make_snapshot(c, "dead"));
    }
    // Obituary board: someone else already paid the detection cost for
    // this peer -- fail fast instead of burning a local retry budget.
    // Re-checked every loop pass, so an obituary landing mid-burn aborts
    // the remaining backoff ladder too.
    obit_fast_fail(c, "recover-entry");
    if (!c.rec.failed && !c.integrity_failed && !peer_epoch_pending(c)) {
      co_return;
    }
    co_await recover(c);
    drain_cq();
  }
}

sim::Task<void> VerbsChannelBase::flush_crc_charge() {
  while (pending_crc_bytes_ > 0) {
    const std::size_t n = pending_crc_bytes_;
    pending_crc_bytes_ = 0;
    co_await node().bus().transfer(static_cast<std::int64_t>(n));
  }
}

void VerbsChannelBase::flag_integrity_failure(VerbsConnection& c) {
  ++crc_failures_;
  c.integrity_failed = true;
  c.rec.nacks++;
  c.rec.last_nack_epoch = c.rec.epoch;
  node().dma_arrival().fire();
}

std::uint64_t VerbsChannelBase::checked_tail(VerbsConnection& c) {
  if (!cfg_.integrity_check) return c.ctrl.tail_replica;
  const std::uint64_t t = c.ctrl.tail_replica;
  if (t > c.tail_valid) {
    charge_crc(sizeof(t));
    if (crc32c_u64(t) == static_cast<std::uint32_t>(c.ctrl.tail_replica_crc)) {
      c.tail_valid = t;
    } else {
      // A lying tail word (e.g. corrupted garbage-high) must not mint ring
      // credit.  No NACK needed: tail updates are repeated, so the next
      // clean one heals this without a round trip.
      ++crc_failures_;
    }
  }
  return c.tail_valid;
}

bool VerbsChannelBase::credit_denied() {
  sim::FaultSchedule* faults = ctx_->fabric().faults();
  if (faults == nullptr) return false;
  if (!faults->check(node().name() + ".credit")) return false;
  ++credit_stalls_;
  schedule_retry_wakeup();
  return true;
}

void VerbsChannelBase::schedule_retry_wakeup() {
  sim::Simulator& sim = ctx_->sim();
  ib::Node* n = &node();
  sim.call_at(sim.now() + ctx_->fabric().cfg().retry_delay,
              [n] { n->dma_arrival().fire(); });
}

bool VerbsChannelBase::peer_epoch_pending(VerbsConnection& c) const {
  return ctx_->kvs->has(rec_key(c.peer, rank(), c.rec.epoch + 1, "qpn"));
}

void VerbsChannelBase::wake_peer(VerbsConnection& c) {
  if (c.peer_node == nullptr) return;
  sim::Simulator& sim = ctx_->sim();
  ib::Node* peer_node = c.peer_node;
  sim.call_at(sim.now() + ctx_->fabric().cfg().wire_latency,
              [peer_node] { peer_node->dma_arrival().fire(); });
}

sim::Task<void> VerbsChannelBase::recover(VerbsConnection& c) {
  pmi::Kvs& kvs = *ctx_->kvs;
  sim::Simulator& sim = ctx_->sim();
  const std::uint64_t next_epoch = c.rec.epoch + 1;

  // A CRC-mismatch NACK colors this attempt run: should the budget run out
  // before a clean retransmission lands, the error reports an integrity
  // exhaustion rather than a transport death.
  if (c.integrity_failed) c.rec.integrity = true;

  // Watchdog episode accounting.  A fresh episode -- first attempt ever,
  // first after a progress refund, or first after a quiet gap longer than
  // the deadline window -- (re)arms the deadline; an episode still spinning
  // at its deadline is aborted here (the backoff below bounds the spacing
  // of these checks, so a spin cannot dodge the deadline for long).
  if (cfg_.recovery_epoch_deadline > 0) {
    const sim::Tick now = sim.now();
    const bool fresh = c.rec.deadline == 0 || c.rec.attempts == 0 ||
                       now - c.rec.last_attempt > cfg_.recovery_epoch_deadline;
    if (fresh) {
      c.rec.deadline = now + cfg_.recovery_epoch_deadline;
    } else if (now >= c.rec.deadline &&
               (!cfg_.health_detector ||
                c.rec.suspicion >= cfg_.health_suspicion_trip)) {
      // With the health detector on, the deadline alone does not convict:
      // the episode must also have accrued enough suspicion (attempts with
      // no completions decaying the score) -- the accrual-detector gate.
      ++c.rec.attempts;
      watchdog_abort(c, "retry-loop");
    }
    c.rec.last_attempt = now;
    // From here on, successful completions observed by drain_cq count as
    // episode progress (partial-drain re-arm); the hint is never set on
    // the fault-free path.
    wd_hint_ = true;
    if (cfg_.health_detector) ++c.rec.suspicion;
  }

  if (++c.rec.attempts > cfg_.recovery_max_attempts) {
    // Publish the verdict *before* throwing so the peer -- possibly parked
    // inside its own handshake wait -- is released rather than deadlocked.
    c.rec.dead = true;
    kvs.put(dead_key(rank(), c.peer), "1");
    wake_peer(c);
    post_obituary(c);
    const ChannelError::Kind kind =
        c.rec.integrity ? ChannelError::kIntegrity : ChannelError::kDead;
    throw ChannelError(
        c.peer,
        "connection to rank " + std::to_string(c.peer) +
            " beyond recovery: " +
            std::to_string(cfg_.recovery_max_attempts) +
            " consecutive attempts without progress" +
            (kind == ChannelError::kIntegrity ? " (integrity)" : ""),
        kind, make_snapshot(c, "retry-budget"));
  }

  // Bounded exponential backoff before touching the wire again.
  sim::Tick backoff = cfg_.recovery_backoff;
  for (int i = 1; i < c.rec.attempts &&
                  backoff < cfg_.recovery_backoff_cap; ++i) {
    backoff *= 2;
  }
  co_await sim.delay(std::min(backoff, cfg_.recovery_backoff_cap));

  // Tear down: error the old QP, wait until nothing it initiated can still
  // land in peer memory (the precondition for trusting replayed state),
  // then drop it from the CQE index so straggler flushes are inert.
  c.qp->close();
  co_await c.qp->quiesce();
  qp_index_.erase(c.qp->qp_num());

  // Fresh QP on the lowest live rail (rail 0 unless its port died -- a rail
  // failure is a failover, not a retry storm; with every rail dead we stay
  // on rail 0 and let the attempt budget declare the connection dead).
  // Publish my half of the epoch handshake: the new QP number and how much
  // of the peer's stream I had consumed (its replay start).
  if (!c.qp->port().up()) note_rail_dead(c, c.qp->port().rail());
  c.qp = &create_rail_qp(lowest_live_rail());
  kvs.put_u64(rec_key(rank(), c.peer, next_epoch, "qpn"), c.qp->qp_num());
  kvs.put_u64(rec_key(rank(), c.peer, next_epoch, "consumed"),
              journal_consumed(c));
  wake_peer(c);

  // Join the peer's half -- unless it declared the connection dead, or the
  // watchdog deadline passes first (a peer that never answers must not
  // park this rank forever).
  const bool bounded = watchdog_armed(c);
  std::optional<std::string> peer_qpn_s;
  std::optional<std::string> peer_consumed_s;
  if (bounded) {
    peer_qpn_s = co_await kvs.get_unless_before(
        rec_key(c.peer, rank(), next_epoch, "qpn"), dead_key(c.peer, rank()),
        c.rec.deadline);
    if (peer_qpn_s) {
      peer_consumed_s = co_await kvs.get_unless_before(
          rec_key(c.peer, rank(), next_epoch, "consumed"),
          dead_key(c.peer, rank()), c.rec.deadline);
    }
  } else {
    peer_qpn_s = co_await kvs.get_unless(
        rec_key(c.peer, rank(), next_epoch, "qpn"), dead_key(c.peer, rank()));
    peer_consumed_s = co_await kvs.get_unless(
        rec_key(c.peer, rank(), next_epoch, "consumed"),
        dead_key(c.peer, rank()));
  }
  if (!peer_qpn_s || !peer_consumed_s) {
    if (!kvs.has(dead_key(c.peer, rank())) && watchdog_expired(c)) {
      watchdog_abort(c, "handshake");
    }
    c.rec.dead = true;
    throw ChannelError(c.peer,
                       "connection to rank " + std::to_string(c.peer) +
                           " declared dead by peer",
                       ChannelError::kDead,
                       make_snapshot(c, "peer-declared-dead"));
  }
  const auto peer_qpn =
      static_cast<std::uint32_t>(std::stoull(*peer_qpn_s));
  const std::uint64_t peer_consumed = std::stoull(*peer_consumed_s);

  // Same connect protocol as bootstrap: the lower rank wires the pair.
  if (rank() < c.peer) {
    ib::QueuePair* peer_qp = ctx_->fabric().find_qp(peer_qpn);
    if (peer_qp == nullptr) {
      throw std::runtime_error("recovery: peer QP not found");
    }
    c.qp->connect(*peer_qp);
  } else if (watchdog_armed(c)) {
    const bool connected = co_await c.qp->wait_connected_until(c.rec.deadline);
    if (!connected) watchdog_abort(c, "connect");
  } else {
    co_await c.qp->wait_connected();
  }

  c.rec.epoch = next_epoch;
  c.rec.failed = false;
  // The NACK is consumed: the re-handshake tells the sender to retransmit
  // (replay below on its side).  A fresh mismatch on the retransmitted data
  // will re-arm it.
  c.integrity_failed = false;
  qp_index_[c.qp->qp_num()] = &c;
  ++recoveries_;

  // Progress in either direction since the last epoch refunds the retry
  // budget; only consecutive *no-progress* attempts count against it.
  const std::uint64_t local_consumed = journal_consumed(c);
  if (peer_consumed > c.rec.last_synced ||
      local_consumed > c.rec.last_synced_local) {
    c.rec.attempts = 0;
    c.rec.integrity = false;
    c.rec.suspicion = 0;
    // Progress ends the watchdog episode; the next attempt re-arms afresh.
    if (cfg_.recovery_epoch_deadline > 0) {
      c.rec.deadline = sim.now() + cfg_.recovery_epoch_deadline;
    }
  }
  c.rec.last_synced = peer_consumed;
  c.rec.last_synced_local = local_consumed;

  co_await replay(c, peer_consumed);
}

sim::Task<void> VerbsChannelBase::lazy_setup_extra(VerbsConnection&) {
  co_return;
}
sim::Task<void> VerbsChannelBase::lazy_join_extra(VerbsConnection&) {
  co_return;
}
sim::Task<void> VerbsChannelBase::lazy_evict_extra(VerbsConnection&) {
  co_return;
}

sim::Task<void> VerbsChannelBase::pre_progress() {
  if (cfg_.lazy_connect) co_await lazy_service();
}

void VerbsChannelBase::lz_post_mail(VerbsConnection& c, std::string msg) {
  ctx_->kvs->append(lz_mail_key(c.peer), std::move(msg));
  wake_peer(c);
}

void VerbsChannelBase::lz_activate(int peer) {
  auto it = std::lower_bound(active_.begin(), active_.end(), peer);
  if (it == active_.end() || *it != peer) active_.insert(it, peer);
}

void VerbsChannelBase::lz_deactivate(int peer) {
  auto it = std::lower_bound(active_.begin(), active_.end(), peer);
  if (it != active_.end() && *it == peer) active_.erase(it);
}

void VerbsChannelBase::lz_unpend(int peer) {
  lz_pending_.erase(std::remove(lz_pending_.begin(), lz_pending_.end(), peer),
                    lz_pending_.end());
}

sim::Task<void> VerbsChannelBase::lz_pace(VerbsConnection& c,
                                          const char* stage) {
  sim::Simulator& sim = ctx_->sim();
  if (sim.now() < c.lz_next_attempt) co_return;
  if (++c.rec.attempts > cfg_.recovery_max_attempts) {
    // Same release protocol as recovery budget exhaustion: publish the
    // verdict before throwing so a peer parked in its own half of the
    // handshake is released rather than deadlocked.
    c.rec.dead = true;
    ctx_->kvs->put(dead_key(rank(), c.peer), "1");
    wake_peer(c);
    post_obituary(c);
    throw ChannelError(c.peer,
                       "connection to rank " + std::to_string(c.peer) +
                           " beyond reach: " +
                           std::to_string(cfg_.recovery_max_attempts) +
                           " lazy-connect attempts without an answer (" +
                           stage + ")",
                       ChannelError::kDead, make_snapshot(c, stage));
  }
  sim::Tick backoff = cfg_.recovery_backoff;
  for (int i = 1;
       i < c.rec.attempts && backoff < cfg_.recovery_backoff_cap; ++i) {
    backoff *= 2;
  }
  c.lz_next_attempt = sim.now() + std::min(backoff, cfg_.recovery_backoff_cap);
  // Guaranteed self-wakeup at the next pacing step: a sender whose put()
  // keeps returning 0 may have no other future event, and a parked progress
  // loop with an empty queue would otherwise be a DeadlockError.
  ib::Node* n = &node();
  sim.call_at(c.lz_next_attempt, [n] { n->dma_arrival().fire(); });
  wake_peer(c);  // re-nudge: the peer may have slept through the first one
}

sim::Task<bool> VerbsChannelBase::lazy_setup_local(VerbsConnection& c) {
  if (c.lz_local_ready) co_return true;
  pmi::Kvs& kvs = *ctx_->kvs;
  std::uint64_t ring_addr = 0;
  std::uint32_t ring_rkey = 0;
  if (srq_pool_.configured()) {
    std::byte* lease = srq_pool_.acquire();
    if (lease == nullptr) {
      // Shared-pool exhaustion maps onto the credit-denial degradation
      // path: backpressure (the requester stays cold, a delayed wakeup
      // retries), never a deadlock.
      ++credit_stalls_;
      schedule_retry_wakeup();
      co_return false;
    }
    c.rx = lease;
    c.ring_pooled = true;
    ring_addr = reinterpret_cast<std::uint64_t>(lease);
    ring_rkey = srq_mr_->rkey();
  } else {
    c.recv_ring.assign(cfg_.ring_bytes, std::byte{0});
    c.rx = c.recv_ring.data();
    c.ring_mr = co_await pd_->register_memory(c.rx, cfg_.ring_bytes,
                                              ib::kAllAccess);
    ring_addr = reinterpret_cast<std::uint64_t>(c.rx);
    ring_rkey = c.ring_mr->rkey();
  }
  c.staging.assign(cfg_.ring_bytes, std::byte{0});
  c.staging_mr = co_await pd_->register_memory(c.staging.data(),
                                               c.staging.size(),
                                               ib::kAllAccess);
  c.ctrl = CtrlBlock{};
  c.ctrl_mr = co_await pd_->register_memory(&c.ctrl, sizeof(CtrlBlock),
                                            ib::kAllAccess);
  c.qp = &create_rail_qp(lowest_live_rail());
  kvs.put_u64(lazy_key(rank(), c.peer, c.lz_gen, "ring_addr"), ring_addr);
  kvs.put_u64(lazy_key(rank(), c.peer, c.lz_gen, "ring_rkey"), ring_rkey);
  kvs.put_u64(lazy_key(rank(), c.peer, c.lz_gen, "ctrl_addr"),
              reinterpret_cast<std::uint64_t>(&c.ctrl));
  kvs.put_u64(lazy_key(rank(), c.peer, c.lz_gen, "ctrl_rkey"),
              c.ctrl_mr->rkey());
  co_await lazy_setup_extra(c);
  // qpn is published last: its presence tells the peer that every other
  // key of this generation (including design extras) is readable
  // synchronously -- the join never blocks on a half-written half.
  kvs.put_u64(lazy_key(rank(), c.peer, c.lz_gen, "qpn"), c.qp->qp_num());
  c.lz_local_ready = true;
  wake_peer(c);
  co_return true;
}

sim::Task<void> VerbsChannelBase::lazy_advance(VerbsConnection& c) {
  if (c.boot != VerbsConnection::Boot::kRequested) co_return;
  pmi::Kvs& kvs = *ctx_->kvs;
  if (kvs.has(dead_key(c.peer, rank()))) {
    // The peer died mid-handshake; its verdict surfaces at the next
    // put/get on this connection.  Local registrations (if any) are
    // reclaimed at finalize.
    c.rec.dead = true;
    lz_unpend(c.peer);
    co_return;
  }
  const bool have_local = co_await lazy_setup_local(c);
  if (!have_local) co_return;
  const std::string* qpn_s = kvs.find(lazy_key(c.peer, rank(), c.lz_gen,
                                               "qpn"));
  if (qpn_s == nullptr) co_return;  // peer half not published yet
  c.r_ring_addr =
      std::stoull(*kvs.find(lazy_key(c.peer, rank(), c.lz_gen, "ring_addr")));
  c.r_ring_rkey = static_cast<std::uint32_t>(
      std::stoull(*kvs.find(lazy_key(c.peer, rank(), c.lz_gen, "ring_rkey"))));
  c.r_ctrl_addr =
      std::stoull(*kvs.find(lazy_key(c.peer, rank(), c.lz_gen, "ctrl_addr")));
  c.r_ctrl_rkey = static_cast<std::uint32_t>(
      std::stoull(*kvs.find(lazy_key(c.peer, rank(), c.lz_gen, "ctrl_rkey"))));
  if (rank() < c.peer) {
    if (!c.qp->connected()) {
      ib::QueuePair* peer_qp =
          ctx_->fabric().find_qp(static_cast<std::uint32_t>(
              std::stoull(*qpn_s)));
      if (peer_qp == nullptr) {
        throw std::runtime_error("lazy connect: peer QP not found");
      }
      // Design extras (auxiliary QPs) wire first; the main QP connect is
      // the commit point the higher rank polls.
      co_await lazy_join_extra(c);
      c.qp->connect(*peer_qp);
      wake_peer(c);
    }
  } else {
    if (!c.qp->connected()) co_return;  // the lower rank wires the pair
    co_await lazy_join_extra(c);
  }
  c.peer_node = &c.qp->peer()->node();
  qp_index_[c.qp->qp_num()] = &c;
  c.boot = VerbsConnection::Boot::kReady;
  c.rec.attempts = 0;
  lz_unpend(c.peer);
  lz_activate(c.peer);
  ++qps_live_;
  ++connects_on_demand_;
  // Evict/reconnect ping-pong: re-wiring a peer this rank itself evicted
  // within the last qp_budget evictions means the working set (for the
  // tree collectives, 2*log2(p) dissemination peers) exceeds the budget --
  // every round now pays a teardown it immediately undoes.
  if (c.lz_evicted_at != 0 && cfg_.qp_budget > 0 &&
      lz_evict_seq_ - c.lz_evicted_at <
          static_cast<std::uint64_t>(cfg_.qp_budget)) {
    ++qp_thrash_;
    if (!qp_thrash_warned_) {
      qp_thrash_warned_ = true;
      std::fprintf(stderr,
                   "rdmach: rank %d qp_budget=%d thrashes: peer %d "
                   "re-wired %llu evictions after this rank evicted it "
                   "(working set exceeds the budget; raise qp_budget)\n",
                   rank(), cfg_.qp_budget, c.peer,
                   static_cast<unsigned long long>(lz_evict_seq_ -
                                                   c.lz_evicted_at));
    }
  }
  c.lz_evicted_at = 0;
  lz_touch(c);
}

sim::Task<void> VerbsChannelBase::lazy_teardown(VerbsConnection& c) {
  if (c.qp != nullptr) {
    // close + quiesce: after this, nothing this half ever posted can still
    // land in peer memory (the same precondition recovery relies on).
    c.qp->close();
    co_await c.qp->quiesce();
    qp_index_.erase(c.qp->qp_num());
  }
  co_await lazy_evict_extra(c);
  if (c.staging_mr != nullptr) {
    co_await pd_->deregister(c.staging_mr);
    c.staging_mr = nullptr;
  }
  if (c.ctrl_mr != nullptr) {
    co_await pd_->deregister(c.ctrl_mr);
    c.ctrl_mr = nullptr;
  }
  if (c.ring_pooled) {
    srq_pool_.release(c.rx);
    c.ring_pooled = false;
  } else if (c.ring_mr != nullptr) {
    co_await pd_->deregister(c.ring_mr);
  }
  c.ring_mr = nullptr;
  c.rx = nullptr;
  std::vector<std::byte>().swap(c.recv_ring);
  std::vector<std::byte>().swap(c.staging);
  // The journal restarts from zero on both sides symmetrically; eviction
  // only ever fires on a fully-drained, fully-acknowledged connection, so
  // this loses bookkeeping, not data.
  c.ctrl = CtrlBlock{};
  c.send_crc = 0;
  c.recv_crc = 0;
  c.verified_head = 0;
  c.tail_valid = 0;
  c.integrity_failed = false;
  lazy_reset_journal(c);
  c.rec.failed = false;
  c.rec.attempts = 0;
  c.rec.integrity = false;
  c.rec.deadline = 0;
  c.rec.last_synced = 0;
  c.rec.last_synced_local = 0;
  // rec.epoch survives (see VerbsConnection::lz_gen comment).
  c.lz_local_ready = false;
  ++c.lz_gen;
  c.boot = VerbsConnection::Boot::kCold;
  lz_deactivate(c.peer);
  --qps_live_;
}

sim::Task<void> VerbsChannelBase::lazy_maybe_evict() {
  if (lz_evict_peer_ >= 0) co_return;
  const bool over_budget =
      cfg_.qp_budget > 0 &&
      qps_live_ > static_cast<std::uint64_t>(cfg_.qp_budget);
  // Shared-pool pressure: a requested-but-cold peer is stalled waiting for
  // a receive-ring lease.  Evicting an idle lease-holder is the only way
  // it can ever wire, so pool exhaustion degrades to backpressure (the
  // stalled side retries on its wakeup) instead of deadlock, even when the
  // QP budget itself is not exceeded.
  const bool pool_pressure = srq_pool_.configured() &&
                             srq_pool_.free_rings() == 0 &&
                             !lz_pending_.empty();
  if (!over_budget && !pool_pressure) co_return;
  // LRU scan over the wired set (bounded by qp_budget + 1 entries, never
  // the rank dimension).  A connection with outstanding journal state, a
  // recovery in flight, or a design veto (open rendezvous) is pinned.
  VerbsConnection* victim = nullptr;
  for (int p : active_) {
    if (p == lz_protect_) continue;  // the caller is mid-op on this peer
    VerbsConnection& c = *conns_[static_cast<std::size_t>(p)];
    if (c.boot != VerbsConnection::Boot::kReady || c.rec.failed ||
        c.rec.dead || c.integrity_failed || peer_epoch_pending(c) ||
        !lazy_evictable(c)) {
      continue;
    }
    if (journal_acked(c) != journal_produced(c)) continue;
    if (!over_budget && !c.ring_pooled) continue;  // must free a lease
    if (victim == nullptr || c.lz_last_used < victim->lz_last_used) {
      victim = &c;
    }
  }
  if (victim == nullptr) co_return;  // soft budget: nothing evictable now
  VerbsConnection& v = *victim;
  v.boot = VerbsConnection::Boot::kEvictWait;
  v.rec.attempts = 0;
  v.lz_next_attempt = ctx_->sim().now();
  // Thrash-window stamp: if this rank re-wires the same peer within the
  // next qp_budget evictions, the LRU threw away a connection the working
  // set still needed (see the qp_thrash accounting in lazy_advance).
  v.lz_evicted_at = ++lz_evict_seq_;
  lz_evict_peer_ = v.peer;
  lz_post_mail(v, "e:" + std::to_string(rank()) + ":" +
                      std::to_string(v.lz_gen) + ":" +
                      std::to_string(journal_consumed(v)));
}

sim::Task<void> VerbsChannelBase::lz_handle_mail(const std::string& msg) {
  // "<op>:<from>:<gen>[:<consumed>]"
  const std::size_t a = msg.find(':');
  const std::size_t b = msg.find(':', a + 1);
  const std::size_t d = msg.find(':', b + 1);
  const char op = msg[0];
  const int from = std::stoi(msg.substr(a + 1, b - a - 1));
  const std::uint64_t gen = std::stoull(
      msg.substr(b + 1, d == std::string::npos ? d : d - b - 1));
  VerbsConnection& c = *conns_[static_cast<std::size_t>(from)];
  using Boot = VerbsConnection::Boot;
  switch (op) {
    case 'c':
      // Connect request: the passive side joins the rendezvous.  A stale
      // generation, or a connection we already consider requested/wired,
      // needs no action (both sides may initiate simultaneously).
      if (gen == c.lz_gen && c.boot == Boot::kCold) {
        c.boot = Boot::kRequested;
        c.rec.attempts = 0;
        c.lz_next_attempt = ctx_->sim().now();
        lz_pending_.push_back(from);
        co_await lazy_advance(c);
      }
      co_return;
    case 'e': {
      const std::uint64_t peer_consumed = std::stoull(msg.substr(d + 1));
      if (gen != c.lz_gen) {
        lz_post_mail(c, "n:" + std::to_string(rank()) + ":" +
                            std::to_string(gen));
        co_return;
      }
      if (c.boot == Boot::kEvictWait) {
        // Mutual eviction: both sides requested; each treats the other's
        // request as the acknowledgement.
        co_await lazy_teardown(c);
        ++qps_evicted_;
        if (lz_evict_peer_ == from) lz_evict_peer_ = -1;
        co_return;
      }
      // Safe to honour only when this direction is drained too: everything
      // I produced was consumed (the initiator's claim must match my
      // produced count -- it diverges if I produced more since), and the
      // initiator's tail acknowledgements have all landed in my control
      // block (journal_acked == journal_produced rules out an in-flight
      // ctrl write hitting memory I am about to deregister).
      const bool ok =
          c.boot == Boot::kReady && !c.rec.failed && !c.rec.dead &&
          !c.integrity_failed && !peer_epoch_pending(c) &&
          lazy_evictable(c) && peer_consumed == journal_produced(c) &&
          journal_acked(c) == journal_produced(c);
      if (!ok) {
        lz_post_mail(c, "n:" + std::to_string(rank()) + ":" +
                            std::to_string(gen));
        co_return;
      }
      co_await lazy_teardown(c);
      ++qps_evicted_;
      // Acknowledge only after the teardown's quiesce: when the initiator
      // processes this, nothing of ours can still be in flight toward it.
      lz_post_mail(c, "a:" + std::to_string(rank()) + ":" +
                          std::to_string(gen));
      co_return;
    }
    case 'a':
      if (gen == c.lz_gen && c.boot == Boot::kEvictWait) {
        co_await lazy_teardown(c);
        ++qps_evicted_;
      }
      if (lz_evict_peer_ == from) lz_evict_peer_ = -1;
      co_return;
    case 'n':
      if (gen == c.lz_gen && c.boot == Boot::kEvictWait) {
        c.boot = Boot::kReady;
        c.lz_evicted_at = 0;  // eviction refused: no teardown, no thrash
        lz_touch(c);          // do not immediately re-pick the same victim
      }
      if (lz_evict_peer_ == from) lz_evict_peer_ = -1;
      co_return;
    default:
      co_return;
  }
}

sim::Task<void> VerbsChannelBase::lazy_service() {
  if (lz_service_busy_) co_return;
  lz_service_busy_ = true;
  std::exception_ptr err;
  try {
    const std::vector<std::string>& box = ctx_->kvs->mail(lz_mail_key(rank()));
    while (lz_mail_cursor_ < box.size()) {
      const std::string msg = box[lz_mail_cursor_];
      ++lz_mail_cursor_;
      co_await lz_handle_mail(msg);
    }
    if (!lz_pending_.empty()) {
      const std::vector<int> pending = lz_pending_;
      for (int p : pending) {
        co_await lazy_advance(*conns_[static_cast<std::size_t>(p)]);
      }
    }
    // Under cache pressure, flush deferred consumption acks on every wired
    // connection.  A deferred ack pins the peer's journal: at scale the
    // pressure is symmetric (both sides over budget), so flushing here is
    // what lets peers retire their half of idle connections -- and their
    // flushes unpin ours.
    if ((cfg_.qp_budget > 0 &&
         qps_live_ > static_cast<std::uint64_t>(cfg_.qp_budget)) ||
        (srq_pool_.configured() && srq_pool_.free_rings() == 0 &&
         !lz_pending_.empty())) {
      for (int p : active_) {
        VerbsConnection& c = *conns_[static_cast<std::size_t>(p)];
        if (c.boot == VerbsConnection::Boot::kReady) lazy_flush_acks(c);
      }
    }
    co_await lazy_maybe_evict();
  } catch (...) {
    err = std::current_exception();
  }
  lz_service_busy_ = false;
  if (err) std::rethrow_exception(err);
}

namespace {
/// Pins a peer against eviction for the duration of an ensure_* call.
struct [[nodiscard]] EvictShield {
  int& slot;
  int prev;
  EvictShield(int& s, int peer) : slot(s), prev(s) { s = peer; }
  ~EvictShield() { slot = prev; }
};
}  // namespace

sim::Task<bool> VerbsChannelBase::ensure_tx(VerbsConnection& c) {
  if (!cfg_.lazy_connect) co_return true;
  using Boot = VerbsConnection::Boot;
  EvictShield shield(lz_protect_, c.peer);
  co_await lazy_service();
  if (c.boot == Boot::kReady) {
    lz_touch(c);
    co_return true;
  }
  if (c.boot == Boot::kEvictWait) {
    // No new journal entries while the evict handshake is in flight, but
    // recovery stays serviced (the peer's answer may depend on it) and the
    // wait is paced/bounded so a silently dead peer cannot park us.
    co_await maybe_recover(c);
    co_await lz_pace(c, "evict-wait");
    co_return false;
  }
  if (c.boot == Boot::kCold) {
    c.boot = Boot::kRequested;
    c.rec.attempts = 0;
    c.lz_next_attempt = ctx_->sim().now();
    lz_pending_.push_back(c.peer);
    lz_post_mail(c, "c:" + std::to_string(rank()) + ":" +
                        std::to_string(c.lz_gen));
    co_await lazy_advance(c);
    if (c.boot == Boot::kReady) co_return true;  // peer half was waiting
  }
  if (c.rec.dead || ctx_->kvs->has(dead_key(c.peer, rank()))) {
    c.rec.dead = true;
    throw ChannelError(c.peer,
                       "connection to rank " + std::to_string(c.peer) +
                           " is dead",
                       ChannelError::kDead,
                       make_snapshot(c, "lazy-connect:dead"));
  }
  obit_fast_fail(c, "lazy-connect");
  co_await lz_pace(c, "connect-budget");
  co_return false;
}

sim::Task<bool> VerbsChannelBase::ensure_rx(VerbsConnection& c) {
  if (!cfg_.lazy_connect) co_return true;
  using Boot = VerbsConnection::Boot;
  EvictShield shield(lz_protect_, c.peer);
  co_await lazy_service();
  if (c.boot == Boot::kReady || c.boot == Boot::kEvictWait) {
    lz_touch(c);
    co_return true;
  }
  // Passive: never initiate -- but surface a dead sender so a receive from
  // a killed never-connected rank fails instead of spinning.
  if (c.rec.dead || ctx_->kvs->has(dead_key(c.peer, rank()))) {
    c.rec.dead = true;
    throw ChannelError(c.peer,
                       "connection to rank " + std::to_string(c.peer) +
                           " is dead",
                       ChannelError::kDead,
                       make_snapshot(c, "lazy-accept:dead"));
  }
  obit_fast_fail(c, "lazy-accept");
  co_return false;
}

sim::Task<void> VerbsChannelBase::copy_in(VerbsConnection& c,
                                          std::uint64_t ring_pos,
                                          std::span<const ConstIov> iovs,
                                          std::size_t iov_off, std::size_t n,
                                          std::size_t ws) {
  const std::size_t R = cfg_.ring_bytes;
  std::size_t iv = 0;
  std::size_t skipped = 0;
  // Locate the iov containing iov_off.
  while (iv < iovs.size() && skipped + iovs[iv].len <= iov_off) {
    skipped += iovs[iv].len;
    ++iv;
  }
  std::size_t in_iov = iov_off - skipped;
  while (n > 0 && iv < iovs.size()) {
    const std::size_t off = static_cast<std::size_t>(ring_pos % R);
    std::size_t piece = std::min({n, iovs[iv].len - in_iov, R - off});
    co_await node().copy(c.staging.data() + off, iovs[iv].base + in_iov,
                         piece, ws);
    ring_pos += piece;
    in_iov += piece;
    n -= piece;
    if (in_iov == iovs[iv].len) {
      ++iv;
      in_iov = 0;
    }
  }
}

sim::Task<void> VerbsChannelBase::copy_out(VerbsConnection& c,
                                           std::uint64_t ring_pos,
                                           std::span<const Iov> iovs,
                                           std::size_t iov_off, std::size_t n,
                                           std::size_t ws) {
  const std::size_t R = cfg_.ring_bytes;
  std::size_t iv = 0;
  std::size_t skipped = 0;
  while (iv < iovs.size() && skipped + iovs[iv].len <= iov_off) {
    skipped += iovs[iv].len;
    ++iv;
  }
  std::size_t in_iov = iov_off - skipped;
  while (n > 0 && iv < iovs.size()) {
    const std::size_t off = static_cast<std::size_t>(ring_pos % R);
    std::size_t piece = std::min({n, iovs[iv].len - in_iov, R - off});
    co_await node().copy(iovs[iv].base + in_iov, c.rx + off, piece, ws);
    ring_pos += piece;
    in_iov += piece;
    n -= piece;
    if (in_iov == iovs[iv].len) {
      ++iv;
      in_iov = 0;
    }
  }
}

}  // namespace rdmach
