#include "rdmach/protocol_selector.hpp"

#include <bit>

namespace rdmach {

int ProtocolSelector::bucket(std::size_t len) {
  const int b = len == 0 ? 0 : std::bit_width(len) - 1;
  return b < kBuckets ? b : kBuckets - 1;
}

ProtocolSelector::Proto ProtocolSelector::best(const Bucket& b,
                                               std::size_t len) const {
  // With both arms sampled and one clearly ahead the EWMA decides;
  // one-sided data, empty data, or a within-margin race falls back to the
  // static boundary (probing is what fills the missing arm).
  if (b.write.n > 0 && b.read.n > 0) {
    if (b.write.mbps > b.read.mbps * kHysteresis) return Proto::kWrite;
    if (b.read.mbps > b.write.mbps * kHysteresis) return Proto::kRead;
  }
  return len >= cfg_.read_min ? Proto::kRead : Proto::kWrite;
}

ProtocolSelector::Proto ProtocolSelector::choose(std::size_t len) {
  if (len < cfg_.eager_max) return Proto::kEager;
  Bucket& b = buckets_[static_cast<std::size_t>(bucket(len))];
  ++b.decisions;
  if (cfg_.probe_interval > 0 &&
      b.decisions % static_cast<std::uint64_t>(cfg_.probe_interval) == 0) {
    // Deterministic exploration: measure the protocol with fewer samples.
    return b.write.n <= b.read.n ? Proto::kWrite : Proto::kRead;
  }
  return best(b, len);
}

ProtocolSelector::Proto ProtocolSelector::decision(std::size_t len) const {
  if (len < cfg_.eager_max) return Proto::kEager;
  return best(buckets_[static_cast<std::size_t>(bucket(len))], len);
}

void ProtocolSelector::record(Proto p, std::size_t len, std::uint64_t bytes,
                              double elapsed_usec, unsigned concurrency) {
  if (p == Proto::kEager || elapsed_usec <= 0.0) return;
  Arm& a = p == Proto::kWrite
               ? buckets_[static_cast<std::size_t>(bucket(len))].write
               : buckets_[static_cast<std::size_t>(bucket(len))].read;
  const double service =
      elapsed_usec / static_cast<double>(concurrency == 0 ? 1 : concurrency);
  const double mbps = static_cast<double>(bytes) / service;  // B/us==MB/s
  a.mbps = a.n == 0 ? mbps : (1.0 - cfg_.alpha) * a.mbps + cfg_.alpha * mbps;
  ++a.n;
}

std::size_t ProtocolSelector::write_read_crossover() const {
  for (std::size_t sz = cfg_.eager_max ? cfg_.eager_max : 1; sz != 0;
       sz <<= 1) {
    if (decision(sz) == Proto::kRead) return sz;
    if (sz > (std::size_t{1} << 40)) break;  // beyond any real message
  }
  return std::size_t{1} << 40;  // write wins everywhere measured
}

double ProtocolSelector::ewma_mbps(Proto p, std::size_t len) const {
  const Bucket& b = buckets_[static_cast<std::size_t>(bucket(len))];
  return p == Proto::kWrite ? b.write.mbps : b.read.mbps;
}

void ProtocolSelector::record_rail(int rail, std::uint64_t bytes,
                                   double elapsed_usec) {
  if (rail < 0 || elapsed_usec <= 0.0) return;
  if (static_cast<std::size_t>(rail) >= rails_.size()) {
    rails_.resize(static_cast<std::size_t>(rail) + 1);
  }
  Arm& a = rails_[static_cast<std::size_t>(rail)];
  const double mbps = static_cast<double>(bytes) / elapsed_usec;  // B/us==MB/s
  a.mbps = a.n == 0 ? mbps : (1.0 - cfg_.alpha) * a.mbps + cfg_.alpha * mbps;
  ++a.n;
}

double ProtocolSelector::rail_mbps(int rail) const {
  if (rail < 0 || static_cast<std::size_t>(rail) >= rails_.size()) return 0.0;
  const Arm& a = rails_[static_cast<std::size_t>(rail)];
  return a.n > 0 ? a.mbps : 0.0;
}

double ProtocolSelector::rail_weight(int rail) const {
  const double own = rail_mbps(rail);
  if (own > 0.0) return own;
  double best = 0.0;
  for (const Arm& a : rails_) {
    if (a.n > 0 && a.mbps > best) best = a.mbps;
  }
  return best > 0.0 ? best : 1.0;
}

double ProtocolSelector::peak_mbps(Proto p) const {
  double best = 0.0;
  for (const Bucket& b : buckets_) {
    const Arm& a = p == Proto::kWrite ? b.write : b.read;
    if (a.n > 0 && a.mbps > best) best = a.mbps;
  }
  return best;
}

}  // namespace rdmach
