// The MPICH2 RDMA Channel interface (paper section 3.2).
//
// The interface contains five functions, "among which only two are central
// to communication": put (write) and get (read).  Both accept a connection
// and a list of buffers, return the number of bytes completed, and are
// nonblocking -- if fewer bytes complete than requested, the caller retries
// later.  Logically each connection direction is a FIFO pipe: put appends
// to it, get consumes from it.
//
// Five implementations are provided, mirroring the paper's progression:
//   * ShmChannel       -- Figure 3: ring buffer in literally shared memory
//                         (the scheme the RDMA designs emulate); also the
//                         semantic reference for differential tests.
//   * BasicChannel     -- section 4.2: RDMA-write emulation of the shared
//                         ring; three RDMA writes per message (data, head
//                         pointer, tail pointer).
//   * PiggybackChannel -- section 4.3: head updates piggybacked on the data
//                         (size header + two polling flags per chunk), tail
//                         updates delayed/batched/piggybacked.
//   * PipelineChannel  -- section 4.4: large messages copied and written
//                         chunk-by-chunk so copies overlap RDMA.
//   * ZeroCopyChannel  -- section 5: large messages bypass the ring via a
//                         control packet + RDMA read into the user buffer,
//                         with a registration cache.
//
// In our simulated-process model put/get are coroutines because they spend
// *virtual CPU time* (modelled memcpy); they still never wait for remote
// progress, preserving the paper's nonblocking contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "pmi/pmi.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace rdmach {

struct Iov {
  std::byte* base = nullptr;
  std::size_t len = 0;
};

struct ConstIov {
  const std::byte* base = nullptr;
  std::size_t len = 0;

  ConstIov() = default;
  ConstIov(const std::byte* b, std::size_t n) : base(b), len(n) {}
  ConstIov(const Iov& iov) : base(iov.base), len(iov.len) {}  // NOLINT
  ConstIov(const void* b, std::size_t n)
      : base(static_cast<const std::byte*>(b)), len(n) {}
};

inline std::size_t total_length(std::span<const ConstIov> iovs) {
  std::size_t n = 0;
  for (const auto& v : iovs) n += v.len;
  return n;
}

inline std::size_t total_length(std::span<const Iov> iovs) {
  std::size_t n = 0;
  for (const auto& v : iovs) n += v.len;
  return n;
}

enum class Design {
  kShm,
  kBasic,
  kPiggyback,
  kPipeline,
  kZeroCopy,
  /// Figure 1's multi-method box: shared memory within a node, the
  /// zero-copy RDMA design across nodes (requires a pmi::Job built with
  /// ranks_per_node > 1 to have any intra-node pairs).
  kMultiMethod,
  /// Adaptive rendezvous engine: eager slots below a threshold, then a
  /// per-message choice between sender-driven RDMA-write rendezvous and a
  /// chunked multi-QP RDMA-read pipeline, steered by an online selector
  /// that tunes the crossover from observed per-protocol goodput.
  kAdaptive,
};

const char* to_string(Design d);

/// Stripe policy for spreading rendezvous traffic over a multi-rail node.
enum class RailPolicy {
  kWeighted,    // deficit scheduling against per-rail goodput EWMAs
  kRoundRobin,  // strict rotation over live rails (naive baseline)
};

struct ChannelConfig {
  Design design = Design::kZeroCopy;
  /// Shared ring buffer per connection direction (also the staging size).
  std::size_t ring_bytes = 128 * 1024;
  /// Fixed chunk size the ring is divided into (Figure 9; paper picks 16K).
  std::size_t chunk_bytes = 16 * 1024;
  /// Buffers of at least this size use the zero-copy path (ZeroCopy only).
  /// Below it, the per-message RDMA-read round trip would cost more than
  /// the pipelined copies save.
  std::size_t zero_copy_threshold = 32 * 1024;
  /// Send an explicit tail update after this many consumed slots with no
  /// reverse traffic to piggyback on.  0 = half the slot count.
  std::size_t tail_update_slots = 0;
  /// CPU cost charged per put/get invocation (channel bookkeeping).
  sim::Tick per_call_overhead = sim::usec(0.05);
  /// Registration cache (section 5) for zero-copy user buffers.
  bool use_reg_cache = true;
  std::size_t reg_cache_capacity = 64u << 20;

  // ---- end-to-end integrity -----------------------------------------------
  /// Adds a CRC32C to every ring slot header and rendezvous completion and
  /// verifies it at the receiver: a payload bit flipped in flight is
  /// detected instead of silently delivered, NACKed through the recovery
  /// handshake, and retransmitted under the recovery retry budget
  /// (ChannelError::kIntegrity on exhaustion).  The checksum cost is
  /// charged to the modelled memory bus, so turning this on has a
  /// measurable price (bench/abl_integrity.cpp); off by default so the
  /// fault-free figure baselines are bit-identical.
  bool integrity_check = false;

  // ---- connection recovery ------------------------------------------------
  /// How many consecutive recovery attempts (QP teardown + re-handshake +
  /// replay) a connection may make without either direction's consumed
  /// watermark advancing before the connection is declared dead and put/get
  /// raise ChannelError.  Attempts that make progress reset the budget.
  int recovery_max_attempts = 8;
  /// Backoff before the first re-handshake; doubles per consecutive attempt.
  sim::Tick recovery_backoff = sim::usec(20);
  /// Ceiling for the exponential backoff.
  sim::Tick recovery_backoff_cap = sim::usec(2000);
  /// Recovery watchdog: virtual-time budget for one recovery *episode* (a
  /// run of back-to-back attempts with no watermark progress).  An episode
  /// still unfinished at its deadline -- spinning re-handshakes, a replay
  /// whose completions never come, a handshake parked on a peer that never
  /// answers -- is converted into ChannelError::kDead with a diagnostic
  /// RecoverySnapshot instead of hanging forever.  Progress re-arms the
  /// deadline, so long fault storms that keep moving data are not killed.
  /// 0 disables the watchdog (attempt budget only).  Sized so the attempt
  /// budget gets first say on the pure retry-spin path (default budget *
  /// capped backoff ~= 16 ms << 50 ms).
  sim::Tick recovery_epoch_deadline = sim::usec(50'000);

  // ---- process-fault detection --------------------------------------------
  /// Failure detector for *permanent* rank death: when the recovery
  /// watchdog, the retry budget, or the lazy-connect pacing budget convicts
  /// a peer as dead, publish a job-wide obituary (PMI-KVS board, piggybacked
  /// in-band on eager headers by the MPI engine) so every other rank learns
  /// of the death in O(1) observations and fails fast with the snapshot
  /// attached, instead of each independently burning a full retry budget.
  /// Off by default: a conviction then stays a pairwise verdict (the
  /// pre-detector behavior -- a budget exhaustion on one pair says nothing
  /// certain about the peer's other connections), and the board is never
  /// consulted.  With it on and no faults injected, traces stay
  /// bit-identical: the detector only acts on convictions.
  bool ft_detector = false;

  // ---- gray-failure health monitor ----------------------------------------
  /// Accrual-style per-rail health detector: completion-latency samples feed
  /// a per-rail goodput EWMA + variance, deviant samples accrue a suspicion
  /// score, and a rail whose suspicion crosses `health_suspicion_trip` is
  /// proactively *quarantined* -- pulled from the adaptive stripe set and
  /// kept on probation with periodic single-chunk probes -- before any
  /// watchdog conviction.  A degraded-then-healed rail is reinstated without
  /// a reconnect once probes recover.  Off by default: detection falls back
  /// to the fixed recovery_epoch_deadline alone, and armed-but-fault-free
  /// traces stay bit-identical (the monitor consumes no virtual time and
  /// draws no randomness either way).
  bool health_detector = false;
  /// EWMA weight for new per-rail goodput samples.
  double health_alpha = 0.2;
  /// A sample slower than mean + this many sigmas is "suspicious" and
  /// accrues one unit of suspicion; healthy samples decay the score.
  double health_soft_sigma = 3.0;
  /// Accrued suspicion units that trip quarantine.
  int health_suspicion_trip = 3;
  /// Minimum samples on a rail before suspicion can accrue (EWMA warmup).
  int health_warmup = 8;
  /// Probation: one single-chunk probe is allowed through a quarantined
  /// rail every this many scheduling decisions that would otherwise have
  /// skipped it.
  int health_probe_interval = 16;
  /// A probe within this factor of the rail's pre-degrade goodput EWMA
  /// counts as healthy; enough healthy probes reinstate the rail.
  double health_reinstate_factor = 0.5;
  /// Consecutive healthy probes required to reinstate.
  int health_reinstate_probes = 2;

  // ---- adaptive rendezvous engine (Design::kAdaptive) ---------------------
  /// Static starting point for the write/read crossover: rendezvous of at
  /// least this many bytes begin on the chunked-read pipeline, smaller ones
  /// on the write path.  The online selector moves the boundary as observed
  /// goodput accumulates.  (The eager/rendezvous boundary is
  /// zero_copy_threshold, as in the zero-copy design.)
  std::size_t rndv_read_threshold = 256 * 1024;
  /// Chunk size of the multi-read pipeline; one read is outstanding per aux
  /// QP (the HCA's one-outstanding-read limit), so a large pull becomes
  /// ceil(len / chunk) reads striped over the aux QPs.
  std::size_t rndv_read_chunk = 128 * 1024;
  /// Auxiliary QP pairs per connection for the read pipeline.  0 degrades
  /// to single-read-at-a-time on the main QP (the zero-copy behavior).
  int rndv_read_qps = 4;
  /// Every Nth rendezvous in a size bucket probes the protocol with fewer
  /// samples instead of the current best (deterministic exploration).
  /// 0 disables probing (pure static thresholds).
  int selector_probe_interval = 32;
  /// EWMA weight for new goodput observations in the selector.
  double selector_alpha = 0.3;

  // ---- multi-rail striping (nodes with >1 HCA/port) -----------------------
  /// How rendezvous chunks are spread over the node's rails.  kWeighted
  /// balances scheduled bytes against each rail's learned goodput EWMA (a
  /// slow rail gets proportionally fewer chunks); kRoundRobin rotates
  /// strictly -- the naive baseline the weighted policy is measured against.
  /// Irrelevant on single-rail fabrics: rail 0 carries everything.
  RailPolicy rail_policy = RailPolicy::kWeighted;

  // ---- rank-dimension scaling ---------------------------------------------
  /// On-demand connection establishment: init() allocates no per-peer
  /// rings/QPs; a connection is wired on the first put() toward a peer via
  /// a PMI connect-request rendezvous (the passive side joins lazily when
  /// it sees the request).  Off by default -- the eager bootstrap stays
  /// bit-identical to the paper-era behavior.
  bool lazy_connect = false;
  /// Connection-cache budget (lazy_connect only): when more than this many
  /// peers are wired, the least-recently-used fully-drained connection is
  /// torn down (both sides agree through an evict handshake) and its peer
  /// transparently re-connects on next use.  0 = unlimited (no eviction).
  /// The bound is soft: a connection whose journal has outstanding entries
  /// refuses eviction until drained.
  int qp_budget = 0;
  /// SRQ-style shared receive pool: receive rings come from a per-rank pool
  /// of this many ring_bytes-sized leases (one MR for the whole pool)
  /// instead of a dedicated allocation per peer.  Pool exhaustion maps onto
  /// the credit-denial backpressure path (credit_stalls), not deadlock.
  /// 0 = dedicated per-peer rings (the paper's layout).
  std::size_t srq_pool_rings = 0;
};

/// Per-protocol transfer counters for ChannelStats.
struct ProtoStats {
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  /// Recovery re-posts of this protocol's in-flight operations.
  std::uint64_t retries = 0;
  /// Observed goodput (MB/s, MB = 1e6 B): selector EWMA for the rendezvous
  /// protocols of the adaptive design, bytes-over-active-interval elsewhere.
  double mbps = 0.0;
};

/// Snapshot of a channel's protocol decisions and per-protocol traffic;
/// benches and tests read it through Channel::stats().
struct ChannelStats {
  ProtoStats eager;
  ProtoStats rndv_write;
  ProtoStats rndv_read;
  /// Completed QP re-handshakes (all peers).
  std::uint64_t recoveries = 0;
  // ---- integrity / degradation counters (all monotone) --------------------
  /// Receiver-side CRC32C mismatches (integrity_check on).
  std::uint64_t crc_failures = 0;
  /// Units re-posted by recovery replay (ring slots, reads, write rounds).
  std::uint64_t retransmits = 0;
  /// Rendezvous demoted to the pipelined copy path (or deferred) because a
  /// buffer registration was refused.
  std::uint64_t reg_fallbacks = 0;
  /// CQEs dropped by an injected CQ overrun and resurfaced via
  /// drain-and-rearm recovery.
  std::uint64_t cq_overruns = 0;
  /// put() attempts turned away by credit denial (receiver-not-ready
  /// backpressure instead of deadlock).
  std::uint64_t credit_stalls = 0;
  /// Recovery episodes the watchdog aborted (stuck replay/re-handshake
  /// converted into ChannelError::kDead).
  std::uint64_t watchdog_trips = 0;
  /// Bytes re-posted by recovery replay (journalled ring data, re-issued
  /// rendezvous reads/rounds) -- the data-volume face of `retransmits`.
  std::uint64_t replayed_bytes = 0;
  /// Current eager/rendezvous boundary in bytes.
  std::size_t eager_threshold = 0;
  /// Current write/read rendezvous crossover in bytes (adaptive design:
  /// the selector's learned boundary; others: 0).
  std::size_t write_read_crossover = 0;
  // ---- multi-rail ---------------------------------------------------------
  /// Per-rail data-plane traffic (indexed by the node's flat rail index).
  /// `stripes` counts rendezvous chunks/rounds scheduled onto the rail;
  /// `failovers` counts connections that abandoned it after it died.
  struct RailStats {
    std::uint64_t bytes = 0;
    std::uint64_t stripes = 0;
    std::uint64_t failovers = 0;
  };
  std::vector<RailStats> rails;
  /// Total (connection, rail) pairs that failed over to surviving rails.
  std::uint64_t rail_failovers = 0;
  // ---- gray-failure health monitor (health_detector) ----------------------
  /// Rails pulled from the stripe set by accrued suspicion (proactive
  /// quarantine, before any watchdog conviction).
  std::uint64_t rail_quarantines = 0;
  /// Quarantined rails returned to service after probes recovered.
  std::uint64_t rail_reinstates = 0;
  /// Suspicion-score threshold crossings (one per quarantine entry; kept
  /// separate so a future per-peer detector can trip without quarantining).
  std::uint64_t suspicion_trips = 0;
  /// Quarantines whose very first probe already measured healthy -- the
  /// detector jumped at noise, not at a degrade.
  std::uint64_t false_suspicions = 0;
  /// Virtual nanoseconds rails spent in quarantine (summed across rails).
  std::uint64_t degraded_ns = 0;
  // ---- rank-dimension scaling (lazy connect / SRQ pool) -------------------
  /// QPs this rank ever created (bootstrap, on-demand connects, recovery
  /// re-handshakes, auxiliary read-pipeline QPs).
  std::uint64_t qps_created = 0;
  /// Connections torn down by the LRU connection cache (qp_budget).
  std::uint64_t qps_evicted = 0;
  /// Connections wired on demand (first-use or re-connect after eviction).
  std::uint64_t connects_on_demand = 0;
  /// Peak simultaneously leased rings in the shared receive pool.
  std::uint64_t srq_pool_high_water = 0;
  /// Bytes of per-rank communication memory currently resident: staging +
  /// receive rings (pooled or dedicated) + control blocks.
  std::uint64_t resident_bytes = 0;
  /// Currently wired peer connections (O(active peers), not O(ranks)).
  std::uint64_t qps_live = 0;
  /// LRU ping-pong: reconnects of a peer this rank itself evicted within
  /// the last qp_budget evictions -- a qp_budget smaller than the working
  /// set (2*log2(p) dissemination peers for the tree collectives) makes
  /// every collective round pay a teardown + rendezvous it immediately
  /// undoes.  Nonzero means "raise qp_budget".
  std::uint64_t qp_thrash = 0;
  // ---- process-fault detection --------------------------------------------
  /// Obituaries this rank published (peers it convicted as permanently
  /// dead via retry-budget exhaustion or a watchdog trip).
  std::uint64_t obits_posted = 0;
  /// Operations against a peer that failed fast off the obituary board
  /// instead of burning a local retry budget -- the O(1)-detection payoff.
  std::uint64_t obit_fast_fails = 0;
  // ---- one-sided RMA (mpi::Window through the CH3 note hook) --------------
  /// Window put/get/atomic operations issued and flush/fence epochs closed
  /// by this rank.  The window drives its own QP mesh, so these are
  /// accounted at the facade the engine exposes (note_rma), not by any
  /// member's data path -- MultiMethod sums members *and* its own.
  std::uint64_t rma_puts = 0;
  std::uint64_t rma_gets = 0;
  std::uint64_t rma_atomics = 0;
  std::uint64_t rma_flushes = 0;
};

/// One-sided operation classes for Channel::note_rma / ChannelStats.
enum class RmaOp { kPut, kGet, kAtomic, kFlush };

/// Diagnostic state of a recovery episode at the moment it was given up,
/// attached to the ChannelError so a failed NAS run (or chaos soak) reports
/// *where* recovery was stuck without a debugger.
struct RecoverySnapshot {
  /// Where the episode died: "retry-budget", "watchdog:retry-loop",
  /// "watchdog:handshake", "watchdog:connect", "watchdog:completion".
  std::string stage;
  std::uint64_t epoch = 0;  // completed re-handshakes on the connection
  int attempts = 0;         // consecutive no-progress attempts so far
  /// Journal units (design's choice: bytes or slots) produced but not yet
  /// acknowledged consumed by the peer -- what a further replay would carry.
  std::uint64_t journal_outstanding = 0;
  int live_rails = 0;
  int total_rails = 0;
  /// Integrity NACKs raised on this connection, and the epoch of the last.
  std::uint64_t nacks = 0;
  std::uint64_t last_nack_epoch = 0;

  std::string to_string() const;
};

/// Raised by put/get when a connection is beyond recovery: the retry budget
/// is exhausted (locally or on the peer, via its published dead marker), or
/// the recovery watchdog expired on a stuck episode.  The channel object
/// itself stays usable for other peers; only the named connection is dead.
class ChannelError : public std::runtime_error {
 public:
  /// What exhausted the budget: kDead = transport errors (QPs kept dying)
  /// or a watchdog-detected hang, kIntegrity = repeated end-to-end CRC
  /// mismatches that retransmission could not clear.
  enum Kind { kDead, kIntegrity };

  ChannelError(int peer, const std::string& what, Kind kind = kDead)
      : std::runtime_error(what), peer_(peer), kind_(kind) {}
  ChannelError(int peer, const std::string& what, Kind kind,
               RecoverySnapshot snapshot)
      : std::runtime_error(what),
        peer_(peer),
        kind_(kind),
        snapshot_(std::move(snapshot)),
        has_snapshot_(true) {}
  int peer() const noexcept { return peer_; }
  Kind kind() const noexcept { return kind_; }
  /// Episode diagnostics, present on errors raised by the recovery layer
  /// (budget exhaustion and watchdog trips).
  bool has_snapshot() const noexcept { return has_snapshot_; }
  const RecoverySnapshot& snapshot() const noexcept { return snapshot_; }

  /// One-line render of everything the error carries -- kind, peer, message,
  /// and the recovery snapshot when present -- so a nasfault failure or test
  /// log shows *where* recovery was stuck, not just the error code.
  std::string to_string() const;

 private:
  int peer_;
  Kind kind_;
  RecoverySnapshot snapshot_;
  bool has_snapshot_ = false;
};

/// Per-peer endpoint handle.  Concrete channels subclass this with their
/// protocol state; users treat it as opaque.
class Connection {
 public:
  virtual ~Connection() = default;
  int peer = -1;

  /// Loan watermarks maintained by Channel::put_pinned (see there).  Bytes
  /// with stream position < loan_released are no longer referenced by the
  /// channel; [loan_released, loan_accepted) are on loan and must stay
  /// stable.  Cumulative over the connection's lifetime.
  std::uint64_t loan_accepted = 0;
  std::uint64_t loan_released = 0;
};

class Channel {
 public:
  /// Builds an uninitialized channel of the configured design for this
  /// rank; call init() from the rank's process before first use.
  static std::unique_ptr<Channel> create(pmi::Context& ctx,
                                         const ChannelConfig& cfg);

  virtual ~Channel() = default;

  // ---- the five functions -------------------------------------------------
  /// (1) init: allocate/register rings, exchange keys via PMI, connect QPs.
  virtual sim::Task<void> init() = 0;
  /// (2) finalize: quiesce and release registered memory.
  virtual sim::Task<void> finalize() = 0;
  /// (3) process management: the connection to a peer rank.
  virtual Connection& connection(int peer) = 0;
  /// (4) put: append to the pipe; returns bytes accepted (possibly 0).
  virtual sim::Task<std::size_t> put(Connection& conn,
                                     std::span<const ConstIov> iovs) = 0;
  /// (5) get: consume from the pipe into `iovs`; returns bytes delivered
  /// (possibly 0).  May make internal protocol progress even when
  /// returning 0.
  virtual sim::Task<std::size_t> get(Connection& conn,
                                     std::span<const Iov> iovs) = 0;

  /// Like put, but accepted bytes are *loaned*: the caller keeps them
  /// stable and unchanged until the release watermark passes them
  /// (put_released(conn) >= their stream position).  This lets zero-copy
  /// rendezvous accept a large buffer immediately -- without blocking the
  /// pipe behind its completion -- while the transfer still reads from the
  /// caller's memory.  The default forwards to put (copying designs release
  /// on accept).  Do not mix put and put_pinned on one connection.
  virtual sim::Task<std::size_t> put_pinned(Connection& conn,
                                            std::span<const ConstIov> iovs);

  /// Cumulative bytes ever accepted / released by put_pinned on `conn`.
  std::uint64_t put_accepted(const Connection& conn) const noexcept {
    return conn.loan_accepted;
  }
  std::uint64_t put_released(const Connection& conn) const noexcept {
    return conn.loan_released;
  }

  // ---- rendezvous lookahead -----------------------------------------------
  /// get() parks on an in-flight rendezvous at the head of the pipe until
  /// its data leg completes.  A framing-aware caller (ch3::StreamMux) can
  /// overlap the data legs of *successive* messages: while the head is in
  /// flight, get_ahead() drains the stream bytes queued behind it (the next
  /// frames' headers and eager payloads), and attach_rndv() hands the
  /// channel the sink for a rendezvous parked behind the head so its
  /// transfer starts immediately instead of after the head retires.
  /// Completion stays in stream order: bytes landed ahead are only
  /// *reported* by get() once everything before them has been delivered.
  ///
  /// rndv_lookahead() returns how many rendezvous the channel can hold in
  /// flight beyond the head; 0 (the default) means no lookahead support and
  /// the other two calls are no-ops.
  virtual std::size_t rndv_lookahead() const { return 0; }
  virtual sim::Task<std::size_t> get_ahead(Connection& conn,
                                           std::span<const Iov> iovs);
  virtual sim::Task<bool> attach_rndv(Connection& conn,
                                      std::span<const Iov> sink);

  /// Snapshot of protocol decisions and per-protocol traffic counters.
  virtual ChannelStats stats() const;

  /// Zeroes every counter behind stats() so per-run deltas are exact --
  /// call it after init() (bootstrap traffic excluded) or between phases
  /// that must be accounted separately.  Monotone-counter semantics resume
  /// from zero; connection/protocol *state* is untouched.
  virtual void reset_stats();

  /// One-sided RMA accounting (mpi::Window): the window moves its traffic
  /// over a dedicated QP mesh, so the op counts are *noted* here rather
  /// than observed by put/get, and surface through stats().
  virtual void note_rma(RmaOp op) {
    switch (op) {
      case RmaOp::kPut: ++rma_puts_; break;
      case RmaOp::kGet: ++rma_gets_; break;
      case RmaOp::kAtomic: ++rma_atomics_; break;
      case RmaOp::kFlush: ++rma_flushes_; break;
    }
  }

  // ---- conveniences -------------------------------------------------------
  // Coroutines (not plain forwarders) so the iov lives in the frame for the
  // whole lazy-task lifetime.
  sim::Task<std::size_t> put(Connection& conn, const void* buf,
                             std::size_t len) {
    const ConstIov iov{buf, len};
    co_return co_await put(conn, std::span<const ConstIov>(&iov, 1));
  }
  sim::Task<std::size_t> get(Connection& conn, void* buf, std::size_t len) {
    const Iov iov{static_cast<std::byte*>(buf), len};
    co_return co_await get(conn, std::span<const Iov>(&iov, 1));
  }

  // ---- sparse progress (rank-dimension scaling) ---------------------------
  /// Peers with live channel state, sorted ascending -- the set a progress
  /// loop must visit.  nullptr (the default, and always for eager
  /// bootstrap) means "all peers": callers keep their dense per-rank scan,
  /// bit-identical to the historical behavior.
  virtual const std::vector<int>* active_peers() const { return nullptr; }
  /// Out-of-band service hook for sparse progress loops: drains connection
  /// requests / evict handshakes that no per-peer put/get would otherwise
  /// observe.  No-op by default; called only when active_peers() != nullptr.
  virtual sim::Task<void> pre_progress();

  /// Blocks until this rank may have new work (incoming DMA, completion,
  /// ...).  Progress loops call this between polls; pair with
  /// activity_count() to close the check-then-sleep race.
  virtual sim::Task<void> wait_for_activity() = 0;
  /// Monotone counter that advances whenever wait_for_activity() would
  /// have been woken.
  virtual std::uint64_t activity_count() const = 0;

  int rank() const noexcept { return ctx_->rank; }
  int size() const noexcept { return ctx_->size; }
  pmi::Context& ctx() const noexcept { return *ctx_; }
  const ChannelConfig& config() const noexcept { return cfg_; }

 protected:
  Channel(pmi::Context& ctx, const ChannelConfig& cfg)
      : ctx_(&ctx), cfg_(cfg) {}

  /// Raw per-protocol accounting behind stats(); note() records an op and
  /// the active interval used to derive an aggregate MB/s.
  struct ProtoTrack {
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    std::uint64_t retries = 0;
    sim::Tick first = 0;
    sim::Tick last = 0;
  };
  void note(ProtoTrack& t, std::size_t bytes) {
    const sim::Tick now = ctx_->sim().now();
    if (t.ops == 0) t.first = now;
    t.last = now;
    ++t.ops;
    t.bytes += bytes;
  }
  static ProtoStats snapshot(const ProtoTrack& t) {
    ProtoStats s{t.ops, t.bytes, t.retries, 0.0};
    if (t.last > t.first && t.bytes > 0) {
      s.mbps = static_cast<double>(t.bytes) /
               (static_cast<double>(t.last - t.first) / sim::usec(1));
    }
    return s;
  }

  pmi::Context* ctx_;
  ChannelConfig cfg_;
  ProtoTrack eager_track_;
  ProtoTrack rndv_write_track_;
  ProtoTrack rndv_read_track_;
  std::uint64_t rma_puts_ = 0;
  std::uint64_t rma_gets_ = 0;
  std::uint64_t rma_atomics_ = 0;
  std::uint64_t rma_flushes_ = 0;
};

}  // namespace rdmach
