// The basic design, paper section 4.2: a byte-granular emulation of the
// shared-memory ring of Figure 3 using RDMA writes.
//
// A matching put/get pair costs three RDMA writes: one for the data, one to
// update the remote head-pointer replica, and one to update the remote
// tail-pointer replica.  The sender conservatively waits for the data
// write's completion before publishing the new head (interpretation
// decision recorded in DESIGN.md: it explains the paper's 18.6 us basic
// latency, ~2x the single-write piggyback design plus overheads), and
// copies the *entire* accepted region before posting any RDMA write --
// the copy/transfer serialization the pipelining optimization later removes.
#pragma once

#include "rdmach/verbs_base.hpp"

namespace rdmach {

class BasicChannel : public VerbsChannelBase {
 public:
  BasicChannel(pmi::Context& ctx, const ChannelConfig& cfg)
      : VerbsChannelBase(ctx, cfg) {}

  sim::Task<std::size_t> put(Connection& conn,
                             std::span<const ConstIov> iovs) override;
  sim::Task<std::size_t> get(Connection& conn,
                             std::span<const Iov> iovs) override;

 protected:
  std::unique_ptr<VerbsConnection> make_connection() override {
    return std::make_unique<VerbsConnection>();
  }

  /// Byte-granular journal: the consumed watermark is the tail master.
  std::uint64_t journal_consumed(const VerbsConnection& c) const override;
  /// Rewrites ring bytes [peer_consumed, head_master) from staging and
  /// refreshes the remote head replica; resyncs the local tail replica
  /// forward to the watermark the peer published.
  sim::Task<void> replay(VerbsConnection& c,
                         std::uint64_t peer_consumed) override;

 private:
  /// Integrity path of get(): extends the verified incoming prefix by
  /// checking new ring bytes [verified_head, head_replica) against the
  /// sender's rolling stream CRC; on mismatch flags the NACK and leaves
  /// the readable head where it was.
  std::uint64_t verify_incoming(VerbsConnection& c);
};

}  // namespace rdmach
