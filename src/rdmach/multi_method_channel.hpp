// The multi-method channel of Figure 1: per-connection method selection --
// literally shared memory for peers on the same node, the zero-copy
// RDMA design for peers across the fabric.  MPICH2's implementation
// structure shows exactly this box ("Multi-Method Channel" combining
// SHMEM and network channels under CH3).
#pragma once

#include <algorithm>

#include "rdmach/channel.hpp"
#include "sim/sync.hpp"

namespace rdmach {

class MultiMethodChannel : public Channel {
 public:
  MultiMethodChannel(pmi::Context& ctx, const ChannelConfig& cfg);
  ~MultiMethodChannel() override;

  sim::Task<void> init() override;
  sim::Task<void> finalize() override;
  Connection& connection(int peer) override;
  sim::Task<std::size_t> put(Connection& conn,
                             std::span<const ConstIov> iovs) override;
  sim::Task<std::size_t> get(Connection& conn,
                             std::span<const Iov> iovs) override;
  sim::Task<void> wait_for_activity() override;
  std::uint64_t activity_count() const override;

  /// True when `peer` shares this rank's node (served by shared memory).
  bool is_local(int peer) const;

  /// The cross-node member channel (null before init); tests reach through
  /// it for recovery statistics.
  Channel* net() const noexcept { return net_.get(); }

  /// Member-channel counters, summed (mbps: the busier member's figure).
  /// Starts from the facade's own base counters: one-sided RMA is noted on
  /// the channel object the engine exposes -- this one -- so the rma_*
  /// counts live here, not in any member.
  ChannelStats stats() const override {
    ChannelStats s = Channel::stats();
    const Channel* members[] = {shm_.get(), net_.get()};
    for (const Channel* m : members) {
      if (m == nullptr) continue;
      const ChannelStats t = m->stats();
      const ProtoStats* from[] = {&t.eager, &t.rndv_write, &t.rndv_read};
      ProtoStats* to[] = {&s.eager, &s.rndv_write, &s.rndv_read};
      for (int i = 0; i < 3; ++i) {
        to[i]->ops += from[i]->ops;
        to[i]->bytes += from[i]->bytes;
        to[i]->retries += from[i]->retries;
        to[i]->mbps = std::max(to[i]->mbps, from[i]->mbps);
      }
      s.recoveries += t.recoveries;
      s.crc_failures += t.crc_failures;
      s.retransmits += t.retransmits;
      s.reg_fallbacks += t.reg_fallbacks;
      s.cq_overruns += t.cq_overruns;
      s.credit_stalls += t.credit_stalls;
      s.watchdog_trips += t.watchdog_trips;
      s.replayed_bytes += t.replayed_bytes;
      s.rma_puts += t.rma_puts;
      s.rma_gets += t.rma_gets;
      s.rma_atomics += t.rma_atomics;
      s.rma_flushes += t.rma_flushes;
      s.qps_created += t.qps_created;
      s.qps_evicted += t.qps_evicted;
      s.connects_on_demand += t.connects_on_demand;
      s.qps_live += t.qps_live;
      s.resident_bytes += t.resident_bytes;
      s.srq_pool_high_water =
          std::max(s.srq_pool_high_water, t.srq_pool_high_water);
      s.eager_threshold = std::max(s.eager_threshold, t.eager_threshold);
      s.write_read_crossover =
          std::max(s.write_read_crossover, t.write_read_crossover);
      if (t.rails.size() > s.rails.size()) s.rails.resize(t.rails.size());
      for (std::size_t i = 0; i < t.rails.size(); ++i) {
        s.rails[i].bytes += t.rails[i].bytes;
        s.rails[i].stripes += t.rails[i].stripes;
        s.rails[i].failovers += t.rails[i].failovers;
      }
      s.rail_failovers += t.rail_failovers;
      s.rail_quarantines += t.rail_quarantines;
      s.rail_reinstates += t.rail_reinstates;
      s.suspicion_trips += t.suspicion_trips;
      s.false_suspicions += t.false_suspicions;
      s.degraded_ns += t.degraded_ns;
    }
    return s;
  }

  /// stats() sums the members' monotone counters, so exact per-run deltas
  /// need the members themselves reset -- forwarding keeps the sum and its
  /// parts consistent (the bug this override fixes: resetting only the
  /// facade while the members kept counting).
  void reset_stats() override {
    Channel::reset_stats();
    if (shm_) shm_->reset_stats();
    if (net_) net_->reset_stats();
  }

 private:
  struct Routed : Connection {
    Channel* via = nullptr;
    Connection* inner = nullptr;
  };

  std::unique_ptr<Channel> shm_;
  std::unique_ptr<Channel> net_;
  std::vector<std::unique_ptr<Routed>> conns_;
  std::unique_ptr<sim::Trigger> activity_;
};

}  // namespace rdmach
