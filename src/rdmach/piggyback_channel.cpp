#include "rdmach/piggyback_channel.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "rdmach/crc32c.hpp"

namespace rdmach {

namespace {
/// Fixed software cost of assembling one slot (header construction, flag
/// placement, descriptor build).  Amortized away at 16K chunks; it is what
/// makes 1K chunks a poor choice in the Figure 9 sweep.
constexpr sim::Tick kSlotBuildOverhead = sim::nsec(300);
}  // namespace

std::byte* PiggybackChannel::begin_slot(SlotConnection& c, SlotKind kind,
                                        std::size_t len) {
  const std::size_t idx =
      static_cast<std::size_t>(c.slots_sent % slot_count());
  std::byte* slot = c.staging.data() + idx * cfg_.chunk_bytes;
  SlotHeader hdr;
  hdr.payload_len = static_cast<std::uint32_t>(len);
  hdr.gen = send_gen(c);
  hdr.kind = static_cast<std::uint32_t>(kind);
  // Piggyback the freshest consumption state of the reverse direction.
  hdr.piggyback_tail = c.slots_consumed;
  c.consumed_since_update = 0;
  std::memcpy(slot, &hdr, sizeof(hdr));
  return slot + sizeof(SlotHeader);
}

void PiggybackChannel::finish_slot(SlotConnection& c, std::size_t len) {
  const std::size_t idx =
      static_cast<std::size_t>(c.slots_sent % slot_count());
  std::byte* slot = c.staging.data() + idx * cfg_.chunk_bytes;
  const std::uint32_t gen = send_gen(c);
  std::memcpy(slot + sizeof(SlotHeader) + len, &gen, sizeof(gen));
  if (cfg_.integrity_check) {
    // The staged header's crc word is still zero (begin_slot wrote it so):
    // checksum header + payload in place and drop the result into the slot.
    // The tail flag is excluded -- it is the arrival signal, not data.
    const std::uint32_t crc = crc32c(slot, sizeof(SlotHeader) + len);
    std::memcpy(slot + offsetof(SlotHeader, crc), &crc, sizeof(crc));
    charge_crc(sizeof(SlotHeader) + len);
  }
  ++c.slots_sent;
}

const SlotHeader* PiggybackChannel::peek_slot(SlotConnection& c) {
  return peek_slot_at(c, 0);
}

const SlotHeader* PiggybackChannel::peek_slot_at(SlotConnection& c,
                                                 std::uint64_t depth) {
  if (depth >= slot_count()) return nullptr;  // sender can't have sent it yet
  const std::uint64_t abs = c.slots_consumed + depth;
  const std::size_t idx = static_cast<std::size_t>(abs % slot_count());
  const std::byte* slot = c.rx + idx * cfg_.chunk_bytes;
  const auto* hdr = reinterpret_cast<const SlotHeader*>(slot);
  const std::uint32_t gen =
      static_cast<std::uint32_t>(abs / slot_count()) + 1;
  if (hdr->gen != gen) return nullptr;  // head flag not set
  if (hdr->payload_len > slot_capacity()) {
    // A corrupted length would index the tail flag outside the slot; NACK
    // instead of reading wild memory.  (Without the integrity option the
    // header is trusted, as in the paper's designs.)
    if (cfg_.integrity_check) flag_integrity_failure(c);
    return nullptr;
  }
  std::uint32_t tail_flag = 0;
  std::memcpy(&tail_flag, slot + sizeof(SlotHeader) + hdr->payload_len,
              sizeof(tail_flag));
  if (tail_flag != gen) return nullptr;  // message body still in flight
  // Verify before the piggyback harvest: a corrupted piggyback_tail must
  // not leak into the credit machinery.
  if (cfg_.integrity_check && !verify_slot(c, abs, slot, hdr)) return nullptr;
  // Harvest the piggybacked tail update for our sending direction.
  if (hdr->piggyback_tail > c.tail_piggy) c.tail_piggy = hdr->piggyback_tail;
  return hdr;
}

bool PiggybackChannel::verify_slot(SlotConnection& c, std::uint64_t abs,
                                   const std::byte* slot,
                                   const SlotHeader* hdr) {
  if (c.slot_crc_ok.size() != slot_count()) {
    c.slot_crc_ok.assign(slot_count(), 0);
  }
  const std::size_t idx = static_cast<std::size_t>(abs % slot_count());
  if (c.slot_crc_ok[idx] == hdr->gen) return true;  // already verified
  SlotHeader h = *hdr;
  h.crc = 0;  // the sender checksummed with this word zeroed
  std::uint32_t crc = crc32c_update(0, &h, sizeof(h));
  crc = crc32c_update(crc, slot + sizeof(SlotHeader), hdr->payload_len);
  charge_crc(sizeof(SlotHeader) + hdr->payload_len);
  if (crc != hdr->crc) {
    // Slot damaged in flight: NACK through recovery; the sender's replay
    // rewrites every unconsumed staged slot bit-for-bit.
    flag_integrity_failure(c);
    return false;
  }
  c.slot_crc_ok[idx] = hdr->gen;
  return true;
}

const std::byte* PiggybackChannel::slot_payload(const SlotConnection& c) const {
  return slot_payload_at(c, 0);
}

const std::byte* PiggybackChannel::slot_payload_at(const SlotConnection& c,
                                                   std::uint64_t depth) const {
  const std::size_t idx =
      static_cast<std::size_t>((c.slots_consumed + depth) % slot_count());
  return c.rx + idx * cfg_.chunk_bytes + sizeof(SlotHeader);
}

void PiggybackChannel::consume_slot(SlotConnection& c) {
  ++c.slots_consumed;
  c.cur_slot_off = 0;
  c.ctrl.tail_master = c.slots_consumed;
  ++c.consumed_since_update;
  // Delayed explicit update: only when enough slots were freed with no
  // reverse-direction traffic to piggyback on.  Several consumed slots
  // collapse into this single 8-byte write.
  if (c.consumed_since_update >= tail_threshold()) {
    post_tail_update(c);
    c.consumed_since_update = 0;
  }
}

sim::Task<std::size_t> PiggybackChannel::put(Connection& conn,
                                             std::span<const ConstIov> iovs) {
  auto& c = static_cast<SlotConnection&>(conn);
  co_await call_overhead();
  const bool wired = co_await ensure_tx(c);
  if (!wired) co_return 0;
  co_await maybe_recover(c);
  if (credit_denied()) co_return 0;

  const std::size_t total = total_length(iovs);
  const std::size_t cap = slot_capacity();
  std::size_t accepted = 0;

  // Slots copied in this call but (in the non-pipelined design) not yet
  // posted: (staging offset, total slot bytes, ring offset).
  struct Pending {
    std::size_t off;
    std::size_t bytes;
  };
  std::vector<Pending> pending;

  while (accepted < total && free_slots(c) > 0) {
    const std::size_t len = std::min(cap, total - accepted);
    const std::size_t idx =
        static_cast<std::size_t>(c.slots_sent % slot_count());
    co_await node().compute(kSlotBuildOverhead);
    std::byte* payload = begin_slot(c, SlotKind::kData, len);

    // Charge the user->staging copy (working set = whole message, so big
    // messages see the paper's cache effect).
    const std::size_t payload_off =
        static_cast<std::size_t>(payload - c.staging.data());
    co_await copy_in(c, payload_off, iovs, accepted, len, total);

    finish_slot(c, len);
    const std::size_t slot_bytes = sizeof(SlotHeader) + len + 4;
    const std::size_t ring_off = idx * cfg_.chunk_bytes;
    if (pipelined_) {
      // Section 4.4: initiate the transfer immediately after copying this
      // chunk, overlapping it with the copy of the next chunk.
      post_ring_write(c, ring_off, slot_bytes, ring_off, /*signaled=*/false,
                      next_wr_id());
    } else {
      pending.push_back(Pending{ring_off, slot_bytes});
    }
    accepted += len;
  }

  for (const Pending& p : pending) {
    post_ring_write(c, p.off, p.bytes, p.off, /*signaled=*/false,
                    next_wr_id());
  }
  if (accepted > 0) note(eager_track_, accepted);
  co_return accepted;
}

sim::Task<std::size_t> PiggybackChannel::get(Connection& conn,
                                             std::span<const Iov> iovs) {
  auto& c = static_cast<SlotConnection&>(conn);
  co_await call_overhead();
  const bool wired = co_await ensure_rx(c);
  if (!wired) co_return 0;
  co_await maybe_recover(c);

  const std::size_t want = total_length(iovs);
  std::size_t delivered = 0;
  while (delivered < want) {
    const SlotHeader* hdr = peek_slot(c);
    if (hdr == nullptr) break;
    if (hdr->kind != static_cast<std::uint32_t>(SlotKind::kData)) {
      throw std::logic_error("piggyback channel: unexpected control slot");
    }
    const std::size_t n =
        std::min(want - delivered, hdr->payload_len - c.cur_slot_off);
    const std::byte* payload = slot_payload(c);
    const std::size_t ring_pos =
        static_cast<std::size_t>(payload - c.rx + c.cur_slot_off);
    co_await copy_out(c, ring_pos, iovs, delivered, n, want);
    c.cur_slot_off += n;
    delivered += n;
    if (c.cur_slot_off == hdr->payload_len) consume_slot(c);
  }
  co_return delivered;
}

std::uint64_t PiggybackChannel::journal_consumed(
    const VerbsConnection& c) const {
  return static_cast<const SlotConnection&>(c).slots_consumed;
}

sim::Task<void> PiggybackChannel::replay(VerbsConnection& conn,
                                         std::uint64_t peer_consumed) {
  auto& c = static_cast<SlotConnection&>(conn);
  // In-flight explicit/piggybacked tail updates died with the old QP; the
  // handshake watermark supersedes them.
  c.tail_piggy = std::max(c.tail_piggy, peer_consumed);
  c.ctrl.tail_replica = std::max(c.ctrl.tail_replica, peer_consumed);
  c.tail_valid = std::max(c.tail_valid, peer_consumed);
  if (cfg_.integrity_check) {
    // Keep the resynced replica's self-check consistent so checked_tail
    // never trips on handshake-derived state.
    c.ctrl.tail_replica_crc = crc32c_u64(c.ctrl.tail_replica);
  }

  // Re-post every staged slot the peer has not consumed.  Slot lengths are
  // recovered from the retained staged headers; slots the peer already has
  // (complete or partially read -- cur_slot_off > 0) are rewritten with
  // identical bytes, so its gen flags and read position stay valid.
  for (std::uint64_t s = peer_consumed; s < c.slots_sent; ++s) {
    const std::size_t idx = static_cast<std::size_t>(s % slot_count());
    const std::size_t ring_off = idx * cfg_.chunk_bytes;
    SlotHeader hdr;
    std::memcpy(&hdr, c.staging.data() + ring_off, sizeof(hdr));
    const std::size_t slot_bytes = sizeof(SlotHeader) + hdr.payload_len + 4;
    post_ring_write(c, ring_off, slot_bytes, ring_off, /*signaled=*/false,
                    next_wr_id());
    ++retransmits_;
    replayed_bytes_ += slot_bytes;
  }
  co_return;
}

std::uint64_t PiggybackChannel::journal_produced(
    const VerbsConnection& c) const {
  return static_cast<const SlotConnection&>(c).slots_sent;
}

}  // namespace rdmach
