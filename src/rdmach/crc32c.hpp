// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) -- the
// checksum behind the integrity layer (ChannelConfig::integrity_check).
// Software table implementation; the *modelled* cost is charged separately
// to the node's memory bus (VerbsChannelBase::charge_crc), so the overhead
// shows up in virtual time rather than host time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace rdmach {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// Folds `len` bytes into a running CRC32C state.  States compose:
/// crc32c_update(crc32c_update(0, a), b) == crc32c(a || b); start from 0.
inline std::uint32_t crc32c_update(std::uint32_t crc, const void* data,
                                   std::size_t len) {
  const auto& t = detail::crc32c_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (len-- > 0) {
    crc = t[(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

inline std::uint32_t crc32c(const void* data, std::size_t len) {
  return crc32c_update(0, data, len);
}

/// Self-check word for an 8-byte counter (head/tail control updates carry
/// their own CRC so a corrupted pointer word is detectable in place).
inline std::uint32_t crc32c_u64(std::uint64_t v) {
  return crc32c_update(0, &v, sizeof(v));
}

}  // namespace rdmach
