#include "rdmach/multi_method_channel.hpp"

#include "rdmach/shm_channel.hpp"
#include "rdmach/zerocopy_channel.hpp"

namespace rdmach {

MultiMethodChannel::MultiMethodChannel(pmi::Context& ctx,
                                       const ChannelConfig& cfg)
    : Channel(ctx, cfg),
      activity_(std::make_unique<sim::Trigger>(ctx.sim())) {
  ChannelConfig shm_cfg = cfg;
  shm_cfg.design = Design::kShm;
  shm_ = std::make_unique<ShmChannel>(ctx, shm_cfg);
  ChannelConfig net_cfg = cfg;
  net_cfg.design = Design::kZeroCopy;
  net_ = std::make_unique<ZeroCopyChannel>(ctx, net_cfg);
}

MultiMethodChannel::~MultiMethodChannel() = default;

bool MultiMethodChannel::is_local(int peer) const {
  const auto& c = conns_.at(static_cast<std::size_t>(peer));
  return c != nullptr && c->via == shm_.get();
}

sim::Task<void> MultiMethodChannel::init() {
  // Publish my node id so every peer can route by locality.
  ctx_->kvs->put_u64("mm:node:" + std::to_string(rank()),
                     static_cast<std::uint64_t>(ctx_->node->id()));
  co_await shm_->init();
  co_await net_->init();

  conns_.resize(static_cast<std::size_t>(size()));
  for (int p = 0; p < size(); ++p) {
    if (p == rank()) continue;
    const auto peer_node =
        co_await ctx_->kvs->get_u64("mm:node:" + std::to_string(p));
    auto routed = std::make_unique<Routed>();
    routed->peer = p;
    const bool local =
        peer_node == static_cast<std::uint64_t>(ctx_->node->id());
    routed->via = local ? shm_.get() : net_.get();
    routed->inner = &routed->via->connection(p);
    conns_[static_cast<std::size_t>(p)] = std::move(routed);
  }

  // Relay both sub-channels' wakeups into one trigger so progress loops
  // have a single thing to sleep on.
  sim::Simulator& sim = ctx_->sim();
  sim.spawn_daemon(
      [](Channel* ch, sim::Trigger* t) -> sim::Task<void> {
        for (;;) {
          co_await ch->wait_for_activity();
          t->fire();
        }
      }(shm_.get(), activity_.get()),
      "mm-shm-relay");
  sim.spawn_daemon(
      [](Channel* ch, sim::Trigger* t) -> sim::Task<void> {
        for (;;) {
          co_await ch->wait_for_activity();
          t->fire();
        }
      }(net_.get(), activity_.get()),
      "mm-net-relay");
}

sim::Task<void> MultiMethodChannel::finalize() {
  co_await shm_->finalize();
  co_await net_->finalize();
}

Connection& MultiMethodChannel::connection(int peer) {
  auto& c = conns_.at(static_cast<std::size_t>(peer));
  if (!c) throw std::logic_error("no connection to self");
  return *c;
}

sim::Task<std::size_t> MultiMethodChannel::put(Connection& conn,
                                               std::span<const ConstIov> iovs) {
  auto& r = static_cast<Routed&>(conn);
  co_return co_await r.via->put(*r.inner, iovs);
}

sim::Task<std::size_t> MultiMethodChannel::get(Connection& conn,
                                               std::span<const Iov> iovs) {
  auto& r = static_cast<Routed&>(conn);
  co_return co_await r.via->get(*r.inner, iovs);
}

sim::Task<void> MultiMethodChannel::wait_for_activity() {
  co_await activity_->wait();
}

std::uint64_t MultiMethodChannel::activity_count() const {
  return shm_->activity_count() + net_->activity_count();
}

}  // namespace rdmach
