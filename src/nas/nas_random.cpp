#include "nas/nas_random.hpp"

namespace nas {

double randlc(double* x, double a) {
  // Break a and x into two 23-bit halves and do 46-bit modular arithmetic
  // exactly in doubles (the classic NPB implementation).
  const double t1a = kR23 * a;
  const double a1 = static_cast<double>(static_cast<std::int64_t>(t1a));
  const double a2 = a - kT23 * a1;

  const double t1x = kR23 * (*x);
  const double x1 = static_cast<double>(static_cast<std::int64_t>(t1x));
  const double x2 = *x - kT23 * x1;

  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = static_cast<double>(static_cast<std::int64_t>(kR23 * t1));
  const double z = t1 - kT23 * t2;
  const double t3 = kT23 * z + a2 * x2;
  const double t4 = static_cast<double>(static_cast<std::int64_t>(kR46 * t3));
  *x = t3 - kT46 * t4;
  return kR46 * (*x);
}

void vranlc(int n, double* x, double a, double* y) {
  for (int i = 0; i < n; ++i) y[i] = randlc(x, a);
}

double advance_seed(double s, double a, std::int64_t exp) {
  // Square-and-multiply on the multiplier.
  double b = s;
  double t = a;
  while (exp > 0) {
    if (exp & 1) (void)randlc(&b, t);
    double tt = t;
    (void)randlc(&tt, t);
    // randlc(&tt, t) computes tt = t*t mod 2^46 when tt starts at t.
    t = tt;
    exp >>= 1;
  }
  return b;
}

}  // namespace nas
