// BT -- block-tridiagonal ADI solver.
//
// Same ADI structure as SP but each grid point carries a 3-component state
// coupled by a constant 3x3 SPD matrix, so every directional sweep solves
// block-tridiagonal systems with 3x3 blocks (LU factorization of each
// pivot block per point -- the dense small-block arithmetic that makes BT
// compute-heavy relative to its communication).
// Scaled grids: S 12^3/10, W 24^3/10, A 32^3/20, B 48^3/20 (official A is
// 64^3/200; square process counts as in the paper).
#include <array>
#include <cmath>
#include <vector>

#include "nas/nas.hpp"
#include "nas/pencil.hpp"

namespace nas {

namespace {

struct BtConfig {
  int n;
  int iters;
};

BtConfig bt_config(Class c) {
  switch (c) {
    case Class::S:
      return {12, 10};
    case Class::W:
      return {24, 10};
    case Class::A:
      return {32, 20};
    case Class::B:
      return {48, 20};
  }
  return {12, 10};
}

using M3 = std::array<double, 9>;  // row-major 3x3
using V3 = std::array<double, 3>;

M3 mat_mul(const M3& a, const M3& b) {
  M3 c{};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double s = 0;
      for (int k = 0; k < 3; ++k) s += a[static_cast<std::size_t>(i * 3 + k)] * b[static_cast<std::size_t>(k * 3 + j)];
      c[static_cast<std::size_t>(i * 3 + j)] = s;
    }
  }
  return c;
}

V3 mat_vec(const M3& a, const V3& v) {
  V3 r{};
  for (int i = 0; i < 3; ++i) {
    r[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i * 3)] * v[0] +
                                     a[static_cast<std::size_t>(i * 3 + 1)] * v[1] +
                                     a[static_cast<std::size_t>(i * 3 + 2)] * v[2];
  }
  return r;
}

M3 mat_inv(const M3& m) {
  const double a = m[0], b = m[1], c = m[2], d = m[3], e = m[4], f = m[5],
               g = m[6], h = m[7], i = m[8];
  const double det =
      a * (e * i - f * h) - b * (d * i - f * g) + c * (d * h - e * g);
  const double s = 1.0 / det;
  return M3{(e * i - f * h) * s, (c * h - b * i) * s, (b * f - c * e) * s,
            (f * g - d * i) * s, (a * i - c * g) * s, (c * d - a * f) * s,
            (d * h - e * g) * s, (b * g - a * h) * s, (a * e - b * d) * s};
}

M3 mat_sub(const M3& a, const M3& b) {
  M3 c;
  for (std::size_t k = 0; k < 9; ++k) c[k] = a[k] - b[k];
  return c;
}

V3 vec_add(const V3& a, const V3& b) { return V3{a[0] + b[0], a[1] + b[1], a[2] + b[2]}; }

/// Block Thomas for (B - A x_{i-1} - A x_{i+1}) with constant blocks:
/// diag block B = I(1+2a) + aC... passed explicitly.  Solves in place over
/// the 3-vectors d[0..n) with element stride `stride` vectors.
void thomas_block(const M3& diag, const M3& off, int n, double* d,
                  int stride) {
  thread_local std::vector<M3> cp;
  if (static_cast<int>(cp.size()) < n) cp.resize(static_cast<std::size_t>(n));
  auto vec_at = [&](int i) -> double* {
    return d + static_cast<std::size_t>(i) * static_cast<std::size_t>(stride) * 3;
  };
  // Forward elimination.
  M3 inv = mat_inv(diag);
  cp[0] = mat_mul(inv, off);
  {
    V3 v{vec_at(0)[0], vec_at(0)[1], vec_at(0)[2]};
    const V3 r = mat_vec(inv, v);
    vec_at(0)[0] = r[0];
    vec_at(0)[1] = r[1];
    vec_at(0)[2] = r[2];
  }
  for (int i = 1; i < n; ++i) {
    const M3 denom = mat_sub(diag, mat_mul(off, cp[static_cast<std::size_t>(i - 1)]));
    inv = mat_inv(denom);
    cp[static_cast<std::size_t>(i)] = mat_mul(inv, off);
    V3 prev{vec_at(i - 1)[0], vec_at(i - 1)[1], vec_at(i - 1)[2]};
    V3 cur{vec_at(i)[0], vec_at(i)[1], vec_at(i)[2]};
    const V3 rhs = vec_add(cur, mat_vec(off, prev));
    const V3 r = mat_vec(inv, rhs);
    vec_at(i)[0] = r[0];
    vec_at(i)[1] = r[1];
    vec_at(i)[2] = r[2];
  }
  // Back substitution.
  for (int i = n - 2; i >= 0; --i) {
    V3 next{vec_at(i + 1)[0], vec_at(i + 1)[1], vec_at(i + 1)[2]};
    const V3 corr = mat_vec(cp[static_cast<std::size_t>(i)], next);
    vec_at(i)[0] -= corr[0];
    vec_at(i)[1] -= corr[1];
    vec_at(i)[2] -= corr[2];
  }
}

}  // namespace

sim::Task<Result> bt(mpi::Communicator& world, pmi::Context& ctx, Class cls) {
  const BtConfig cfg = bt_config(cls);
  const int n = cfg.n;
  const int p = world.size();
  const int rank = world.rank();
  const int nzl = n / p;
  const int nxl = n / p;
  const double a = 0.4;

  // Coupling matrix (SPD, diagonally dominant) and the sweep blocks.
  const M3 coupling{2.0, 0.3, 0.1, 0.3, 2.0, 0.3, 0.1, 0.3, 2.0};
  M3 diag{};  // I + 2a*C
  M3 off{};   // a*C
  for (std::size_t k = 0; k < 9; ++k) {
    off[k] = a * coupling[k];
    diag[k] = 2.0 * off[k];
  }
  diag[0] += 1.0;
  diag[4] += 1.0;
  diag[8] += 1.0;

  auto zidx = [&](int z, int y, int x) {
    return ((static_cast<std::size_t>(z) * n + y) * n + x) * 3;
  };
  auto xidx = [&](int xl, int y, int z) {
    return ((static_cast<std::size_t>(xl) * n + y) * n + z) * 3;
  };

  std::vector<double> u(static_cast<std::size_t>(nzl) * n * n * 3);
  for (int z = 0; z < nzl; ++z) {
    const int gz = rank * nzl + z;
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        for (int k = 0; k < 3; ++k) {
          u[zidx(z, y, x) + static_cast<std::size_t>(k)] =
              std::sin(M_PI * (gz + 1) / (n + 1)) *
                  std::sin(M_PI * (y + 1) / (n + 1)) *
                  std::sin(M_PI * (x + 1) / (n + 1)) +
              0.1 * (k + 1) * std::cos(gz + 2.0 * y + 3.0 * x);
        }
      }
    }
  }
  std::vector<double> tr(static_cast<std::size_t>(nxl) * n * n * 3);
  PencilBufs bufs;

  auto norm2 = [&]() -> sim::Task<double> {
    double local = 0;
    for (double v : u) local += v * v;
    double total = 0;
    co_await world.allreduce(&local, &total, 1, mpi::Datatype::kDouble,
                             mpi::Op::kSum);
    co_return std::sqrt(total);
  };

  co_await world.barrier();
  const double t0 = world.wtime();
  const double norm0 = co_await norm2();

  bool monotone = true;
  double prev = norm0;
  const double block_flops = 180.0;  // per point per block-line solve
  for (int it = 0; it < cfg.iters; ++it) {
    notify_phase(world, "bt.sweep", it);
    for (int z = 0; z < nzl; ++z) {
      for (int y = 0; y < n; ++y) {
        thomas_block(diag, off, n, &u[zidx(z, y, 0)], 1);
      }
    }
    co_await charge(ctx, block_flops * nzl * n * n);
    for (int z = 0; z < nzl; ++z) {
      for (int x = 0; x < n; ++x) {
        thomas_block(diag, off, n, &u[zidx(z, 0, x)], n);
      }
    }
    co_await charge(ctx, block_flops * nzl * n * n);
    co_await transpose_zx(world, n, n, n, 3, u.data(), tr.data(), true, bufs);
    co_await charge(ctx, 12.0 * nzl * n * n);
    for (int xl = 0; xl < nxl; ++xl) {
      for (int y = 0; y < n; ++y) {
        thomas_block(diag, off, n, &tr[xidx(xl, y, 0)], 1);
      }
    }
    co_await charge(ctx, block_flops * nxl * n * n);
    co_await transpose_zx(world, n, n, n, 3, tr.data(), u.data(), false, bufs);
    co_await charge(ctx, 12.0 * nzl * n * n);

    const double norm = co_await norm2();
    monotone = monotone && norm < prev;
    prev = norm;
  }
  const double elapsed = world.wtime() - t0;

  const bool ok = monotone && prev < norm0 && std::isfinite(prev);

  Result r;
  r.name = "BT";
  r.cls = cls;
  r.nprocs = p;
  r.verified = ok;
  r.time_sec = elapsed;
  r.mops = 3.0 * block_flops * n * n * n * cfg.iters / elapsed / 1e6;
  r.detail = "|u|/|u0|=" + std::to_string(prev / norm0);
  co_return r;
}

}  // namespace nas
