// CG -- conjugate gradient.
//
// Solves A z = b for a sparse symmetric positive-definite matrix with
// unpreconditioned CG, 1-D row partition.  A is the 7-point Laplacian of a
// g^3 grid plus a diagonal shift (structurally different from but
// spiritually equivalent to NAS makea(): sparse, SPD, constant row
// degree).  Communication per iteration: an allgatherv to assemble the
// full iterate for the local SpMV and two allreduce dot products -- CG's
// characteristic latency-sensitive pattern.
// Scaled grids: S 16^3, W 20^3, A 24^3 (13824 rows, near NAS A's 14000), B 40^3 rows.
#include <cmath>
#include <vector>

#include "nas/nas.hpp"

namespace nas {

namespace {

struct CgConfig {
  int g;      // grid edge; n = g^3 rows
  int iters;  // CG iterations
};

CgConfig cg_config(Class c) {
  switch (c) {
    case Class::S:
      return {16, 15};
    case Class::W:
      return {20, 15};
    case Class::A:
      return {24, 25};
    case Class::B:
      return {40, 25};
  }
  return {16, 15};
}

/// y[r0..r1) = (A x)[r0..r1) for the shifted 7-point Laplacian; x is the
/// full vector.
void spmv(int g, int r0, int r1, const std::vector<double>& x,
          std::vector<double>& y) {
  const double shift = 6.5;  // diagonal dominance => SPD
  for (int row = r0; row < r1; ++row) {
    const int i = row % g;
    const int j = (row / g) % g;
    const int k = row / (g * g);
    double v = (6.0 + shift) * x[static_cast<std::size_t>(row)];
    if (i > 0) v -= x[static_cast<std::size_t>(row - 1)];
    if (i < g - 1) v += -x[static_cast<std::size_t>(row + 1)];
    if (j > 0) v -= x[static_cast<std::size_t>(row - g)];
    if (j < g - 1) v -= x[static_cast<std::size_t>(row + g)];
    if (k > 0) v -= x[static_cast<std::size_t>(row - g * g)];
    if (k < g - 1) v -= x[static_cast<std::size_t>(row + g * g)];
    y[static_cast<std::size_t>(row - r0)] = v;
  }
}

}  // namespace

sim::Task<Result> cg(mpi::Communicator& world, pmi::Context& ctx, Class cls) {
  const CgConfig cfg = cg_config(cls);
  const int n = cfg.g * cfg.g * cfg.g;
  const int p = world.size();
  const int rank = world.rank();

  // Row partition (block, with the remainder spread over the low ranks).
  std::vector<int> counts(static_cast<std::size_t>(p)),
      displs(static_cast<std::size_t>(p));
  {
    int off = 0;
    for (int r = 0; r < p; ++r) {
      counts[static_cast<std::size_t>(r)] = n / p + (r < n % p ? 1 : 0);
      displs[static_cast<std::size_t>(r)] = off;
      off += counts[static_cast<std::size_t>(r)];
    }
  }
  const int r0 = displs[static_cast<std::size_t>(rank)];
  const int rows = counts[static_cast<std::size_t>(rank)];
  const int r1 = r0 + rows;

  // b = 1 (deterministic), x0 = 0.
  std::vector<double> b_loc(static_cast<std::size_t>(rows), 1.0);
  std::vector<double> x_full(static_cast<std::size_t>(n), 0.0);
  std::vector<double> p_full(static_cast<std::size_t>(n), 0.0);
  std::vector<double> r_loc = b_loc;          // r = b - A*0 = b
  std::vector<double> p_loc = r_loc;
  std::vector<double> ap_loc(static_cast<std::size_t>(rows));

  auto dot = [&](const std::vector<double>& a,
                 const std::vector<double>& c) {
    double s = 0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * c[i];
    return s;
  };

  co_await world.barrier();
  const double t0 = world.wtime();

  double rho = 0;
  {
    const double local = dot(r_loc, r_loc);
    co_await world.allreduce(&local, &rho, 1, mpi::Datatype::kDouble,
                             mpi::Op::kSum);
  }
  const double rho0 = rho;

  for (int it = 0; it < cfg.iters; ++it) {
    notify_phase(world, "cg.iter", it);
    // Assemble the full search direction for the local SpMV.
    co_await world.allgatherv(p_loc.data(), rows, p_full.data(), counts,
                              displs, mpi::Datatype::kDouble);
    spmv(cfg.g, r0, r1, p_full, ap_loc);
    co_await charge(ctx, 14.0 * rows);

    double pap = 0;
    {
      const double local = dot(p_loc, ap_loc);
      co_await world.allreduce(&local, &pap, 1, mpi::Datatype::kDouble,
                               mpi::Op::kSum);
    }
    const double alpha = rho / pap;
    for (int i = 0; i < rows; ++i) {
      x_full[static_cast<std::size_t>(r0 + i)] +=
          alpha * p_loc[static_cast<std::size_t>(i)];
      r_loc[static_cast<std::size_t>(i)] -=
          alpha * ap_loc[static_cast<std::size_t>(i)];
    }
    co_await charge(ctx, 6.0 * rows);

    double rho_new = 0;
    {
      const double local = dot(r_loc, r_loc);
      co_await world.allreduce(&local, &rho_new, 1, mpi::Datatype::kDouble,
                               mpi::Op::kSum);
    }
    const double beta = rho_new / rho;
    rho = rho_new;
    for (int i = 0; i < rows; ++i) {
      p_loc[static_cast<std::size_t>(i)] =
          r_loc[static_cast<std::size_t>(i)] +
          beta * p_loc[static_cast<std::size_t>(i)];
    }
    co_await charge(ctx, 4.0 * rows);
  }
  const double elapsed = world.wtime() - t0;

  // Verification: CG on an SPD system must have reduced the residual by
  // orders of magnitude in this many iterations.
  const bool ok = rho < 1e-10 * rho0 && std::isfinite(rho);

  Result res;
  res.name = "CG";
  res.cls = cls;
  res.nprocs = p;
  res.verified = ok;
  res.time_sec = elapsed;
  const double flops_per_iter = 24.0 * n;
  res.mops = flops_per_iter * cfg.iters / elapsed / 1e6;
  res.detail = "r/r0=" + std::to_string(rho / rho0);
  co_return res;
}

}  // namespace nas
