// The NAS pseudo-random number generator: the 48-bit linear congruential
// scheme  x_{k+1} = a * x_k mod 2^46  used by every NPB kernel, with the
// log-time seed-advance that lets each rank jump straight to its slice of
// the stream.
#pragma once

#include <cstdint>

namespace nas {

inline constexpr double kR23 = 1.0 / 8388608.0;            // 2^-23
inline constexpr double kT23 = 8388608.0;                  // 2^23
inline constexpr double kR46 = kR23 * kR23;                // 2^-46
inline constexpr double kT46 = kT23 * kT23;                // 2^46
inline constexpr double kDefaultA = 1220703125.0;          // 5^13

/// One step: returns a uniform deviate in (0,1) and advances *x.
double randlc(double* x, double a);

/// Fills y[0..n) with deviates, advancing *x.
void vranlc(int n, double* x, double a, double* y);

/// Computes a^exp mod 2^46 seed-advance: returns the seed after `exp`
/// applications of randlc with multiplier a, starting from s.
double advance_seed(double s, double a, std::int64_t exp);

}  // namespace nas
