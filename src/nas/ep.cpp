// EP -- embarrassingly parallel.
//
// Generates pairs of uniform deviates with the NAS generator, applies the
// Marsaglia polar method acceptance test, and tallies Gaussian deviates in
// ten concentric square annuli.  Each rank jumps to its slice of the random
// stream with the log-time seed advance, so the global result is
// independent of the process count -- which is exactly what verification
// checks (a serial reference over the same stream).
// Communication: three allreduces at the end.  Scaled sample counts:
// S 2^18, W 2^20, A 2^22, B 2^23 (official A is 2^28).
#include <array>
#include <cmath>

#include "nas/nas.hpp"
#include "nas/nas_random.hpp"

namespace nas {

namespace {

std::int64_t samples_for(Class c) {
  switch (c) {
    case Class::S:
      return 1 << 18;
    case Class::W:
      return 1 << 20;
    case Class::A:
      return 1 << 22;
    case Class::B:
      return 1 << 23;
  }
  return 1 << 18;
}

struct Tally {
  double sx = 0, sy = 0;
  std::array<double, 10> q{};
};

/// Processes `count` pairs starting `first` pairs into the stream.
Tally ep_slice(std::int64_t first, std::int64_t count) {
  Tally t;
  constexpr double kSeed = 271828183.0;
  // Each pair consumes two deviates.
  double x = advance_seed(kSeed, kDefaultA, 2 * first);
  for (std::int64_t i = 0; i < count; ++i) {
    const double u1 = 2.0 * randlc(&x, kDefaultA) - 1.0;
    const double u2 = 2.0 * randlc(&x, kDefaultA) - 1.0;
    const double s = u1 * u1 + u2 * u2;
    if (s > 1.0 || s == 0.0) continue;
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    const double gx = u1 * f;
    const double gy = u2 * f;
    t.sx += gx;
    t.sy += gy;
    const double m = std::max(std::fabs(gx), std::fabs(gy));
    const auto bin = static_cast<std::size_t>(m);
    if (bin < t.q.size()) t.q[bin] += 1.0;
  }
  return t;
}

}  // namespace

sim::Task<Result> ep(mpi::Communicator& world, pmi::Context& ctx, Class cls) {
  const std::int64_t n = samples_for(cls);
  const int p = world.size();
  const std::int64_t per = n / p;
  const std::int64_t first = per * world.rank();
  const std::int64_t mine =
      world.rank() == p - 1 ? n - first : per;  // remainder to the last rank

  co_await world.barrier();
  const double t0 = world.wtime();

  const Tally local = ep_slice(first, mine);
  // ~60 flops per generated pair (two randlc + polar test + occasional
  // log/sqrt).
  co_await charge(ctx, static_cast<double>(mine) * 60.0);

  Tally global;
  notify_phase(world, "ep.tally", 0);
  co_await world.allreduce(&local.sx, &global.sx, 2, mpi::Datatype::kDouble,
                           mpi::Op::kSum);
  co_await world.allreduce(local.q.data(), global.q.data(), 10,
                           mpi::Datatype::kDouble, mpi::Op::kSum);
  const double elapsed = world.wtime() - t0;

  // Verification: the parallel tallies must reproduce the serial stream
  // bit-for-bit (EP's defining property), and every accepted pair must be
  // counted exactly once.
  bool ok = true;
  if (world.rank() == 0) {
    const Tally ref = ep_slice(0, n);
    ok = std::fabs(global.sx - ref.sx) < 1e-9 &&
         std::fabs(global.sy - ref.sy) < 1e-9;
    for (std::size_t i = 0; i < ref.q.size(); ++i) {
      ok = ok && global.q[i] == ref.q[i];
    }
  }
  int ok_int = ok ? 1 : 0;
  co_await world.bcast(&ok_int, 1, mpi::Datatype::kInt, 0);

  Result r;
  r.name = "EP";
  r.cls = cls;
  r.nprocs = p;
  r.verified = ok_int == 1;
  r.time_sec = elapsed;
  r.mops = static_cast<double>(n) / elapsed / 1e6;
  r.detail = "sx=" + std::to_string(global.sx);
  co_return r;
}

}  // namespace nas
