// Shared pencil-transpose helper for the ADI solvers (SP, BT) and tri- /
// block-tridiagonal line solvers.
//
// Fields live in z-slab layout  in[z_local][y][x][K]  (K components, K
// fastest).  The z sweep needs whole z lines, so the field is globally
// transposed to x-slab layout  out[x_local][y][z][K]  with one alltoall --
// the same redistribution NAS SP/BT perform between directional sweeps.
#pragma once

#include <vector>

#include "mpi/comm.hpp"
#include "sim/task.hpp"

namespace nas {

struct PencilBufs {
  std::vector<double> send, recv;
  void ensure(std::size_t n) {
    if (send.size() < n) send.resize(n);
    if (recv.size() < n) recv.resize(n);
  }
};

/// z-slabs -> x-slabs when `forward`, the inverse otherwise.
inline sim::Task<void> transpose_zx(mpi::Communicator& world, int nx, int ny,
                                    int nz, int K, const double* in,
                                    double* out, bool forward,
                                    PencilBufs& bufs) {
  const int p = world.size();
  const int nzl = nz / p;
  const int nxl = nx / p;
  const std::size_t total =
      static_cast<std::size_t>(nzl) * ny * nx * static_cast<std::size_t>(K);
  const std::size_t block = total / static_cast<std::size_t>(p);
  bufs.ensure(total);

  auto zidx = [&](int z, int y, int x) {
    return ((static_cast<std::size_t>(z) * ny + y) * nx + x) *
           static_cast<std::size_t>(K);
  };
  auto xidx = [&](int xl, int y, int z) {
    return ((static_cast<std::size_t>(xl) * ny + y) * nz + z) *
           static_cast<std::size_t>(K);
  };

  if (forward) {
    std::size_t o = 0;
    for (int j = 0; j < p; ++j) {
      for (int z = 0; z < nzl; ++z) {
        for (int y = 0; y < ny; ++y) {
          for (int xl = 0; xl < nxl; ++xl) {
            const double* src = in + zidx(z, y, j * nxl + xl);
            for (int k = 0; k < K; ++k) bufs.send[o++] = src[k];
          }
        }
      }
    }
    co_await world.alltoall(bufs.send.data(), static_cast<int>(block),
                            bufs.recv.data(), mpi::Datatype::kDouble);
    o = 0;
    for (int j = 0; j < p; ++j) {
      for (int zl = 0; zl < nzl; ++zl) {
        for (int y = 0; y < ny; ++y) {
          for (int xl = 0; xl < nxl; ++xl) {
            double* dst = out + xidx(xl, y, j * nzl + zl);
            for (int k = 0; k < K; ++k) dst[k] = bufs.recv[o++];
          }
        }
      }
    }
  } else {
    std::size_t o = 0;
    for (int j = 0; j < p; ++j) {
      for (int zl = 0; zl < nzl; ++zl) {
        for (int y = 0; y < ny; ++y) {
          for (int xl = 0; xl < nxl; ++xl) {
            const double* src = in + xidx(xl, y, j * nzl + zl);
            for (int k = 0; k < K; ++k) bufs.send[o++] = src[k];
          }
        }
      }
    }
    co_await world.alltoall(bufs.send.data(), static_cast<int>(block),
                            bufs.recv.data(), mpi::Datatype::kDouble);
    o = 0;
    for (int j = 0; j < p; ++j) {
      for (int z = 0; z < nzl; ++z) {
        for (int y = 0; y < ny; ++y) {
          for (int xl = 0; xl < nxl; ++xl) {
            double* dst = out + zidx(z, y, j * nxl + xl);
            for (int k = 0; k < K; ++k) dst[k] = bufs.recv[o++];
          }
        }
      }
    }
  }
}

/// Thomas algorithm for the constant-coefficient tridiagonal system
/// (1 + 2a) x_i - a x_{i-1} - a x_{i+1} = d_i  (Dirichlet ends), solved in
/// place over a strided vector d[0..n) with stride `stride` doubles.
inline void thomas_scalar(double a, int n, double* d, int stride) {
  thread_local std::vector<double> c;
  if (static_cast<int>(c.size()) < n) c.resize(static_cast<std::size_t>(n));
  const double b = 1.0 + 2.0 * a;
  c[0] = -a / b;
  d[0] /= b;
  for (int i = 1; i < n; ++i) {
    const double m = 1.0 / (b + a * c[static_cast<std::size_t>(i - 1)]);
    c[static_cast<std::size_t>(i)] = -a * m;
    d[static_cast<std::size_t>(i) * static_cast<std::size_t>(stride)] =
        (d[static_cast<std::size_t>(i) * static_cast<std::size_t>(stride)] +
         a * d[static_cast<std::size_t>(i - 1) *
               static_cast<std::size_t>(stride)]) *
        m;
  }
  for (int i = n - 2; i >= 0; --i) {
    d[static_cast<std::size_t>(i) * static_cast<std::size_t>(stride)] -=
        c[static_cast<std::size_t>(i)] *
        d[static_cast<std::size_t>(i + 1) * static_cast<std::size_t>(stride)];
  }
}

}  // namespace nas
