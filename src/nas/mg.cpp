// MG -- 3-D multigrid.
//
// V-cycles of weighted-Jacobi smoothing / full-weighting restriction /
// block prolongation on a periodic g^3 Poisson problem, partitioned in
// z-slabs.  The communication signature matches NAS MG: a pair of
// xy-plane halo exchanges (sendrecv with the z-neighbours) around every
// smoothing and residual step at every level, with message sizes shrinking
// 4x per level -- a mix of large and small nearest-neighbour traffic.
// Scaled grids: S 32^3/4 cycles, W 64^3/3, A 64^3/5, B 128^3/5 (official A
// is 256^3).
#include <cmath>
#include <vector>

#include "nas/nas.hpp"
#include "nas/nas_random.hpp"

namespace nas {

namespace {

struct MgConfig {
  int g;       // fine grid edge
  int cycles;  // V-cycles
};

MgConfig mg_config(Class c) {
  switch (c) {
    case Class::S:
      return {32, 4};
    case Class::W:
      return {64, 3};
    case Class::A:
      return {64, 5};
    case Class::B:
      return {128, 5};
  }
  return {32, 4};
}

/// One level's slab: nzl local planes plus one ghost plane on each side.
struct Level {
  int g = 0;    // plane edge (g x g)
  int nzl = 0;  // local planes
  std::vector<double> u, f, r;

  std::size_t idx(int z, int y, int x) const {  // z in [-1, nzl]
    return static_cast<std::size_t>(
        ((z + 1) * g + y) * g + x);
  }
  std::size_t plane() const { return static_cast<std::size_t>(g) * g; }
};

/// Exchanges the ghost planes of `v` with the z-neighbours (periodic).
sim::Task<void> halo(mpi::Communicator& world, Level& lv,
                     std::vector<double>& v) {
  const int p = world.size();
  const int up = (world.rank() + 1) % p;
  const int down = (world.rank() - 1 + p) % p;
  const std::size_t n = lv.plane();
  // Send my top plane up / receive my bottom ghost from below...
  co_await world.sendrecv(&v[lv.idx(lv.nzl - 1, 0, 0)], static_cast<int>(n),
                          mpi::Datatype::kDouble, up, 11,
                          &v[lv.idx(-1, 0, 0)], static_cast<int>(n),
                          mpi::Datatype::kDouble, down, 11);
  // ...and my bottom plane down / top ghost from above.
  co_await world.sendrecv(&v[lv.idx(0, 0, 0)], static_cast<int>(n),
                          mpi::Datatype::kDouble, down, 12,
                          &v[lv.idx(lv.nzl, 0, 0)], static_cast<int>(n),
                          mpi::Datatype::kDouble, up, 12);
}

int wrap(int i, int g) { return (i + g) % g; }

/// r = f - A u  (A = 7-point Laplacian, h = 1).
void residual(Level& lv) {
  const int g = lv.g;
  for (int z = 0; z < lv.nzl; ++z) {
    for (int y = 0; y < g; ++y) {
      for (int x = 0; x < g; ++x) {
        const double lap =
            6.0 * lv.u[lv.idx(z, y, x)] - lv.u[lv.idx(z - 1, y, x)] -
            lv.u[lv.idx(z + 1, y, x)] - lv.u[lv.idx(z, wrap(y - 1, g), x)] -
            lv.u[lv.idx(z, wrap(y + 1, g), x)] -
            lv.u[lv.idx(z, y, wrap(x - 1, g))] -
            lv.u[lv.idx(z, y, wrap(x + 1, g))];
        lv.r[lv.idx(z, y, x)] = lv.f[lv.idx(z, y, x)] - lap;
      }
    }
  }
}

/// Weighted Jacobi sweep: u += w/6 * (f - A u), using r as scratch.
void smooth(Level& lv, double w) {
  residual(lv);
  const double s = w / 6.0;
  for (int z = 0; z < lv.nzl; ++z) {
    for (int y = 0; y < lv.g; ++y) {
      for (int x = 0; x < lv.g; ++x) {
        lv.u[lv.idx(z, y, x)] += s * lv.r[lv.idx(z, y, x)];
      }
    }
  }
}

double flops_per_point_smooth() { return 10.0; }

}  // namespace

sim::Task<Result> mg(mpi::Communicator& world, pmi::Context& ctx, Class cls) {
  const MgConfig cfg = mg_config(cls);
  const int p = world.size();
  const int rank = world.rank();

  // Build the level hierarchy: coarsen while every rank keeps >= 2 planes.
  std::vector<Level> levels;
  for (int g = cfg.g; g / p >= 2; g /= 2) {
    Level lv;
    lv.g = g;
    lv.nzl = g / p;
    const std::size_t total = static_cast<std::size_t>(lv.nzl + 2) * lv.plane();
    lv.u.assign(total, 0.0);
    lv.f.assign(total, 0.0);
    lv.r.assign(total, 0.0);
    levels.push_back(std::move(lv));
  }
  const int nlev = static_cast<int>(levels.size());

  // Deterministic +-1 source spikes (NAS MG style) on the fine grid.
  {
    Level& fine = levels[0];
    double seed = 314159265.0;
    for (int s = 0; s < 20; ++s) {
      const int x = static_cast<int>(randlc(&seed, kDefaultA) * cfg.g);
      const int y = static_cast<int>(randlc(&seed, kDefaultA) * cfg.g);
      const int z = static_cast<int>(randlc(&seed, kDefaultA) * cfg.g);
      const int zr = z / fine.nzl;  // owning rank
      if (zr == rank) {
        fine.f[fine.idx(z - rank * fine.nzl, y, x)] = (s % 2 == 0) ? 1.0 : -1.0;
      }
    }
  }

  auto grid_norm = [&](Level& lv, std::vector<double>& v) -> sim::Task<double> {
    double local = 0;
    for (int z = 0; z < lv.nzl; ++z) {
      for (int y = 0; y < lv.g; ++y) {
        for (int x = 0; x < lv.g; ++x) {
          const double a = v[lv.idx(z, y, x)];
          local += a * a;
        }
      }
    }
    double total = 0;
    co_await world.allreduce(&local, &total, 1, mpi::Datatype::kDouble,
                             mpi::Op::kSum);
    co_return std::sqrt(total);
  };

  // Recursive V-cycle expressed iteratively over the level index.
  std::function<sim::Task<void>(int)> vcycle = [&](int li) -> sim::Task<void> {
    Level& lv = levels[static_cast<std::size_t>(li)];
    const double points = static_cast<double>(lv.nzl) * lv.plane();
    for (int s = 0; s < 2; ++s) {
      co_await halo(world, lv, lv.u);
      smooth(lv, 0.8);
      co_await charge(ctx, points * flops_per_point_smooth());
    }
    if (li + 1 < nlev) {
      co_await halo(world, lv, lv.u);
      residual(lv);
      co_await charge(ctx, points * 8.0);
      // Full-weighting restriction: coarse f = average of the 2x2x2 block.
      Level& cl = levels[static_cast<std::size_t>(li + 1)];
      std::fill(cl.u.begin(), cl.u.end(), 0.0);
      for (int z = 0; z < cl.nzl; ++z) {
        for (int y = 0; y < cl.g; ++y) {
          for (int x = 0; x < cl.g; ++x) {
            double s = 0;
            for (int dz = 0; dz < 2; ++dz) {
              for (int dy = 0; dy < 2; ++dy) {
                for (int dx = 0; dx < 2; ++dx) {
                  s += lv.r[lv.idx(2 * z + dz, wrap(2 * y + dy, lv.g),
                                   wrap(2 * x + dx, lv.g))];
                }
              }
            }
            // Scale by 4 = h^2 ratio so the coarse problem is consistent.
            cl.f[cl.idx(z, y, x)] = s * 0.5;
          }
        }
      }
      co_await charge(ctx, points);
      co_await vcycle(li + 1);
      // Prolongation: add each coarse correction to its 8 fine children.
      for (int z = 0; z < cl.nzl; ++z) {
        for (int y = 0; y < cl.g; ++y) {
          for (int x = 0; x < cl.g; ++x) {
            const double c = cl.u[cl.idx(z, y, x)];
            for (int dz = 0; dz < 2; ++dz) {
              for (int dy = 0; dy < 2; ++dy) {
                for (int dx = 0; dx < 2; ++dx) {
                  lv.u[lv.idx(2 * z + dz, wrap(2 * y + dy, lv.g),
                              wrap(2 * x + dx, lv.g))] += c;
                }
              }
            }
          }
        }
      }
      co_await charge(ctx, points);
    }
    for (int s = 0; s < 2; ++s) {
      co_await halo(world, lv, lv.u);
      smooth(lv, 0.8);
      co_await charge(ctx, points * flops_per_point_smooth());
    }
  };

  co_await world.barrier();
  const double t0 = world.wtime();

  Level& fine = levels[0];
  co_await halo(world, fine, fine.u);
  residual(fine);
  const double norm0 = co_await grid_norm(fine, fine.r);

  bool monotone = true;
  double prev = norm0;
  for (int c = 0; c < cfg.cycles; ++c) {
    notify_phase(world, "mg.cycle", c);
    co_await vcycle(0);
    co_await halo(world, fine, fine.u);
    residual(fine);
    const double norm = co_await grid_norm(fine, fine.r);
    monotone = monotone && norm < prev;
    prev = norm;
  }
  const double elapsed = world.wtime() - t0;

  const bool ok = monotone && prev < 0.1 * norm0 && std::isfinite(prev);
  const double points = static_cast<double>(cfg.g) * cfg.g * cfg.g;

  Result r;
  r.name = "MG";
  r.cls = cls;
  r.nprocs = p;
  r.verified = ok;
  r.time_sec = elapsed;
  r.mops = points * 60.0 * cfg.cycles / elapsed / 1e6;
  r.detail = "r/r0=" + std::to_string(prev / norm0);
  co_return r;
}

}  // namespace nas
