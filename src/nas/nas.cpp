#include "nas/nas.hpp"

#include <stdexcept>

namespace nas {

const char* to_string(Class c) {
  switch (c) {
    case Class::S:
      return "S";
    case Class::W:
      return "W";
    case Class::A:
      return "A";
    case Class::B:
      return "B";
  }
  return "?";
}

const std::vector<std::pair<std::string, KernelFn>>& suite() {
  static const std::vector<std::pair<std::string, KernelFn>> kSuite = {
      {"ep", ep}, {"is", is}, {"cg", cg}, {"mg", mg},
      {"ft", ft}, {"lu", lu}, {"sp", sp}, {"bt", bt},
  };
  return kSuite;
}

namespace {
PhaseHook g_phase_hook;
}  // namespace

void set_phase_hook(PhaseHook hook) { g_phase_hook = std::move(hook); }

void notify_phase(const mpi::Communicator& world, const std::string& phase,
                  int iteration) {
  if (!g_phase_hook) return;
  g_phase_hook(PhaseEvent{phase, iteration, world.rank()});
}

KernelFn kernel(const std::string& name) {
  for (const auto& [n, fn] : suite()) {
    if (n == name) return fn;
  }
  throw std::invalid_argument("unknown NAS kernel: " + name);
}

}  // namespace nas
