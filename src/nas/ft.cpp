// FT -- 3-D fast Fourier transform.
//
// Complex radix-2 FFTs along x and y on local z-slabs, then a global
// transpose (alltoall of large blocks -- the benchmark's signature
// communication) to make z local for the final pass.  Each iteration runs
// forward + inverse transforms; verification checks the round trip against
// the original field and a checksum reduction.
// Scaled grids (nx, ny, nz): S 32^3, W 64x32x32, A 64^3, B 128x64x64
// (official A is 256x256x128).
#include <cmath>
#include <complex>
#include <vector>

#include "nas/nas.hpp"
#include "nas/nas_random.hpp"

namespace nas {

namespace {

using Cplx = std::complex<double>;

struct FtConfig {
  int nx, ny, nz;
  int iters;
};

FtConfig ft_config(Class c) {
  switch (c) {
    case Class::S:
      return {32, 32, 32, 2};
    case Class::W:
      return {64, 32, 32, 2};
    case Class::A:
      return {64, 64, 64, 4};
    case Class::B:
      return {128, 64, 64, 4};
  }
  return {32, 32, 32, 2};
}

/// In-place iterative radix-2 FFT of length n (power of two).
/// sign = -1 forward, +1 inverse (unnormalized).
void fft1d(Cplx* a, int n, int sign) {
  // Bit-reversal permutation.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (int len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * M_PI / len;
    const Cplx wl(std::cos(ang), std::sin(ang));
    for (int i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (int k = 0; k < len / 2; ++k) {
        const Cplx u = a[i + k];
        const Cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
}

double fft_flops(int n) { return 5.0 * n * std::log2(static_cast<double>(n)); }

}  // namespace

sim::Task<Result> ft(mpi::Communicator& world, pmi::Context& ctx, Class cls) {
  const FtConfig cfg = ft_config(cls);
  const int p = world.size();
  const int rank = world.rank();
  const int nzl = cfg.nz / p;  // local z planes (z-slab layout)
  const int nxl = cfg.nx / p;  // local x pencils (after transpose)
  const std::size_t local_n =
      static_cast<std::size_t>(nzl) * cfg.ny * cfg.nx;

  // Deterministic initial field from the NAS stream (sliced per rank).
  std::vector<Cplx> u0(local_n);
  {
    double seed =
        advance_seed(314159265.0, kDefaultA,
                     2 * static_cast<std::int64_t>(local_n) * rank);
    for (auto& c : u0) {
      const double re = randlc(&seed, kDefaultA);
      const double im = randlc(&seed, kDefaultA);
      c = Cplx(re, im);
    }
  }

  // work[z][y][x] layout, x fastest.
  auto at = [&](std::vector<Cplx>& v, int z, int y, int x) -> Cplx& {
    return v[(static_cast<std::size_t>(z) * cfg.ny + y) * cfg.nx + x];
  };
  // transposed layout: [x_local][y][z], z fastest.
  auto att = [&](std::vector<Cplx>& v, int xl, int y, int z) -> Cplx& {
    return v[(static_cast<std::size_t>(xl) * cfg.ny + y) * cfg.nz + z];
  };

  std::vector<Cplx> work = u0;
  std::vector<Cplx> tr(static_cast<std::size_t>(nxl) * cfg.ny * cfg.nz);
  std::vector<Cplx> sendbuf(local_n), recvbuf(local_n);
  std::vector<Cplx> line(static_cast<std::size_t>(
      std::max(std::max(cfg.nx, cfg.ny), cfg.nz)));

  // Forward (sign=-1) or inverse (sign=+1) distributed 3-D FFT.
  // Forward: work (z-slab) -> tr (x-pencil).  Inverse: tr -> work.
  auto fft3d = [&](int sign, bool forward) -> sim::Task<void> {
    if (forward) {
      // x-direction (contiguous lines).
      for (int z = 0; z < nzl; ++z) {
        for (int y = 0; y < cfg.ny; ++y) {
          fft1d(&at(work, z, y, 0), cfg.nx, sign);
        }
      }
      co_await charge(ctx, nzl * cfg.ny * fft_flops(cfg.nx));
      // y-direction (strided; gather into a line).
      for (int z = 0; z < nzl; ++z) {
        for (int x = 0; x < cfg.nx; ++x) {
          for (int y = 0; y < cfg.ny; ++y) line[static_cast<std::size_t>(y)] = at(work, z, y, x);
          fft1d(line.data(), cfg.ny, sign);
          for (int y = 0; y < cfg.ny; ++y) at(work, z, y, x) = line[static_cast<std::size_t>(y)];
        }
      }
      co_await charge(ctx, nzl * cfg.nx * (fft_flops(cfg.ny) + 4.0 * cfg.ny));

      // Global transpose z-slabs -> x-pencils: block for rank j is
      // x in [j*nxl, (j+1)*nxl).
      for (int j = 0; j < p; ++j) {
        std::size_t o = static_cast<std::size_t>(j) * nzl * cfg.ny * nxl;
        for (int z = 0; z < nzl; ++z) {
          for (int y = 0; y < cfg.ny; ++y) {
            for (int xl = 0; xl < nxl; ++xl) {
              sendbuf[o++] = at(work, z, y, j * nxl + xl);
            }
          }
        }
      }
      co_await charge(ctx, static_cast<double>(local_n) * 2.0);
      co_await world.alltoall(sendbuf.data(),
                              static_cast<int>(nzl * cfg.ny * nxl * 2),
                              recvbuf.data(), mpi::Datatype::kDouble);
      // Unpack: block from rank j covers z in [j*nzl, (j+1)*nzl).
      for (int j = 0; j < p; ++j) {
        std::size_t o = static_cast<std::size_t>(j) * nzl * cfg.ny * nxl;
        for (int zl = 0; zl < nzl; ++zl) {
          for (int y = 0; y < cfg.ny; ++y) {
            for (int xl = 0; xl < nxl; ++xl) {
              att(tr, xl, y, j * nzl + zl) = recvbuf[o++];
            }
          }
        }
      }
      co_await charge(ctx, static_cast<double>(local_n) * 2.0);
      // z-direction (contiguous in tr).
      for (int xl = 0; xl < nxl; ++xl) {
        for (int y = 0; y < cfg.ny; ++y) {
          fft1d(&att(tr, xl, y, 0), cfg.nz, sign);
        }
      }
      co_await charge(ctx, nxl * cfg.ny * fft_flops(cfg.nz));
    } else {
      // Inverse order: z first, transpose back, then y, then x.
      for (int xl = 0; xl < nxl; ++xl) {
        for (int y = 0; y < cfg.ny; ++y) {
          fft1d(&att(tr, xl, y, 0), cfg.nz, sign);
        }
      }
      co_await charge(ctx, nxl * cfg.ny * fft_flops(cfg.nz));
      for (int j = 0; j < p; ++j) {
        std::size_t o = static_cast<std::size_t>(j) * nzl * cfg.ny * nxl;
        for (int zl = 0; zl < nzl; ++zl) {
          for (int y = 0; y < cfg.ny; ++y) {
            for (int xl = 0; xl < nxl; ++xl) {
              sendbuf[o++] = att(tr, xl, y, j * nzl + zl);
            }
          }
        }
      }
      co_await charge(ctx, static_cast<double>(local_n) * 2.0);
      co_await world.alltoall(sendbuf.data(),
                              static_cast<int>(nzl * cfg.ny * nxl * 2),
                              recvbuf.data(), mpi::Datatype::kDouble);
      for (int j = 0; j < p; ++j) {
        std::size_t o = static_cast<std::size_t>(j) * nzl * cfg.ny * nxl;
        for (int z = 0; z < nzl; ++z) {
          for (int y = 0; y < cfg.ny; ++y) {
            for (int xl = 0; xl < nxl; ++xl) {
              at(work, z, y, j * nxl + xl) = recvbuf[o++];
            }
          }
        }
      }
      co_await charge(ctx, static_cast<double>(local_n) * 2.0);
      for (int z = 0; z < nzl; ++z) {
        for (int x = 0; x < cfg.nx; ++x) {
          for (int y = 0; y < cfg.ny; ++y) line[static_cast<std::size_t>(y)] = at(work, z, y, x);
          fft1d(line.data(), cfg.ny, sign);
          for (int y = 0; y < cfg.ny; ++y) at(work, z, y, x) = line[static_cast<std::size_t>(y)];
        }
      }
      co_await charge(ctx, nzl * cfg.nx * (fft_flops(cfg.ny) + 4.0 * cfg.ny));
      for (int z = 0; z < nzl; ++z) {
        for (int y = 0; y < cfg.ny; ++y) {
          fft1d(&at(work, z, y, 0), cfg.nx, sign);
        }
      }
      co_await charge(ctx, nzl * cfg.ny * fft_flops(cfg.nx));
    }
  };

  co_await world.barrier();
  const double t0 = world.wtime();

  bool ok = true;
  Cplx checksum{};
  const double n_total =
      static_cast<double>(cfg.nx) * cfg.ny * cfg.nz;
  for (int it = 0; it < cfg.iters; ++it) {
    notify_phase(world, "ft.pass", it);
    co_await fft3d(-1, /*forward=*/true);
    // Checksum of the spectrum (reduced): NAS-style per-iteration output.
    Cplx local{};
    for (std::size_t i = 0; i < tr.size(); i += 97) local += tr[i];
    double re[2] = {local.real(), local.imag()};
    double sum[2] = {0, 0};
    co_await world.allreduce(re, sum, 2, mpi::Datatype::kDouble, mpi::Op::kSum);
    checksum = Cplx(sum[0], sum[1]);

    co_await fft3d(+1, /*forward=*/false);
    // Normalize and compare with the original field.
    double err = 0;
    for (std::size_t i = 0; i < work.size(); ++i) {
      work[i] /= n_total;
      err = std::max(err, std::abs(work[i] - u0[i]));
    }
    co_await charge(ctx, static_cast<double>(local_n) * 4.0);
    double max_err = 0;
    co_await world.allreduce(&err, &max_err, 1, mpi::Datatype::kDouble,
                             mpi::Op::kMax);
    ok = ok && max_err < 1e-9;
  }
  const double elapsed = world.wtime() - t0;

  Result r;
  r.name = "FT";
  r.cls = cls;
  r.nprocs = p;
  r.verified = ok && std::isfinite(checksum.real());
  r.time_sec = elapsed;
  const double flops_per_iter =
      2.0 * n_total *
      (5.0 * std::log2(n_total));  // fwd+inv 3-D transforms
  r.mops = flops_per_iter * cfg.iters / elapsed / 1e6;
  r.detail = "checksum=(" + std::to_string(checksum.real()) + "," +
             std::to_string(checksum.imag()) + ")";
  co_return r;
}

}  // namespace nas
