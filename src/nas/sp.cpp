// SP -- scalar ADI (pentadiagonal-style) solver.
//
// Each iteration performs the three directional implicit sweeps of an ADI
// step for the 3-D heat equation,
//   (I - a Dxx)(I - a Dyy)(I - a Dzz) u^{n+1} = u^n ,
// with Thomas solves along every grid line.  x and y lines are local to
// the z-slab layout; the z sweep redistributes the field to x-pencils with
// a global transpose (alltoall) and back -- one transpose pair per
// iteration, the pattern that dominates SP's communication.
// Scaled grids: S 16^3/10 iters, W 24^3/15, A 32^3/30, B 48^3/30
// (official A is 64^3/400; the paper runs SP on square process counts
// only, which our benches honour by running SP on 4 nodes).
#include <cmath>
#include <vector>

#include "nas/nas.hpp"
#include "nas/pencil.hpp"

namespace nas {

namespace {

struct SpConfig {
  int n;
  int iters;
};

SpConfig sp_config(Class c) {
  switch (c) {
    case Class::S:
      return {16, 10};
    case Class::W:
      return {24, 15};
    case Class::A:
      return {32, 30};
    case Class::B:
      return {48, 30};
  }
  return {16, 10};
}

}  // namespace

sim::Task<Result> sp(mpi::Communicator& world, pmi::Context& ctx, Class cls) {
  const SpConfig cfg = sp_config(cls);
  const int n = cfg.n;
  const int p = world.size();
  const int rank = world.rank();
  const int nzl = n / p;
  const int nxl = n / p;
  const double a = 0.5;  // diffusion number per sweep

  auto zidx = [&](int z, int y, int x) {
    return (static_cast<std::size_t>(z) * n + y) * n + x;
  };
  auto xidx = [&](int xl, int y, int z) {
    return (static_cast<std::size_t>(xl) * n + y) * n + z;
  };

  // Initial condition: smooth deterministic bump field.
  std::vector<double> u(static_cast<std::size_t>(nzl) * n * n);
  for (int z = 0; z < nzl; ++z) {
    const int gz = rank * nzl + z;
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        u[zidx(z, y, x)] = std::sin(M_PI * (gz + 1) / (n + 1)) *
                           std::sin(M_PI * (y + 1) / (n + 1)) *
                           std::sin(M_PI * (x + 1) / (n + 1)) +
                           0.3 * std::cos(2.0 * (gz + y + x));
      }
    }
  }
  std::vector<double> tr(static_cast<std::size_t>(nxl) * n * n);
  PencilBufs bufs;

  auto norm2 = [&]() -> sim::Task<double> {
    double local = 0;
    for (double v : u) local += v * v;
    double total = 0;
    co_await world.allreduce(&local, &total, 1, mpi::Datatype::kDouble,
                             mpi::Op::kSum);
    co_return std::sqrt(total);
  };

  co_await world.barrier();
  const double t0 = world.wtime();
  const double norm0 = co_await norm2();

  bool monotone = true;
  double prev = norm0;
  for (int it = 0; it < cfg.iters; ++it) {
    notify_phase(world, "sp.sweep", it);
    // x sweep (lines contiguous in the z-slab layout).
    for (int z = 0; z < nzl; ++z) {
      for (int y = 0; y < n; ++y) {
        thomas_scalar(a, n, &u[zidx(z, y, 0)], 1);
      }
    }
    co_await charge(ctx, 8.0 * nzl * n * n);
    // y sweep (stride n).
    for (int z = 0; z < nzl; ++z) {
      for (int x = 0; x < n; ++x) {
        thomas_scalar(a, n, &u[zidx(z, 0, x)], n);
      }
    }
    co_await charge(ctx, 8.0 * nzl * n * n);
    // z sweep: transpose to x-pencils, solve contiguous z lines, back.
    co_await transpose_zx(world, n, n, n, 1, u.data(), tr.data(),
                          /*forward=*/true, bufs);
    co_await charge(ctx, 4.0 * nzl * n * n);
    for (int xl = 0; xl < nxl; ++xl) {
      for (int y = 0; y < n; ++y) {
        thomas_scalar(a, n, &tr[xidx(xl, y, 0)], 1);
      }
    }
    co_await charge(ctx, 8.0 * nxl * n * n);
    co_await transpose_zx(world, n, n, n, 1, tr.data(), u.data(),
                          /*forward=*/false, bufs);
    co_await charge(ctx, 4.0 * nzl * n * n);

    // Heat diffusion with Dirichlet walls decays monotonically.
    const double norm = co_await norm2();
    monotone = monotone && norm < prev;
    prev = norm;
  }
  const double elapsed = world.wtime() - t0;

  const bool ok = monotone && prev < norm0 && std::isfinite(prev);

  Result r;
  r.name = "SP";
  r.cls = cls;
  r.nprocs = p;
  r.verified = ok;
  r.time_sec = elapsed;
  r.mops = 32.0 * n * n * n * cfg.iters / elapsed / 1e6;
  r.detail = "|u|/|u0|=" + std::to_string(prev / norm0);
  co_return r;
}

}  // namespace nas
