// LU -- SSOR wavefront solver.
//
// Symmetric successive over-relaxation sweeps on a 2-D Poisson problem
// with a 1-D row-block partition.  The forward sweep propagates a data
// dependency from the top rank downward (and the backward sweep upward),
// which is pipelined by column blocks: each rank receives a short boundary
// segment, relaxes its block, and forwards the new boundary -- NAS LU's
// signature traffic of *many small messages* along the wavefront, which is
// what makes it latency-sensitive in Figures 16/17.
// Scaled grids: S 64^2/10 iters, W 96^2/15, A 128^2/30, B 192^2/30
// (official LU operates on a 3-D grid; the 2-D wavefront preserves the
// dependency structure and message-size mix).
#include <cmath>
#include <vector>

#include "nas/nas.hpp"

namespace nas {

namespace {

struct LuConfig {
  int n;      // grid edge (n x n), n % p == 0
  int iters;  // SSOR iterations
  int block;  // wavefront column-block width
};

LuConfig lu_config(Class c) {
  switch (c) {
    case Class::S:
      return {64, 30, 16};
    case Class::W:
      return {96, 40, 16};
    case Class::A:
      return {128, 60, 16};
    case Class::B:
      return {192, 60, 16};
  }
  return {64, 30, 16};
}

}  // namespace

sim::Task<Result> lu(mpi::Communicator& world, pmi::Context& ctx, Class cls) {
  const LuConfig cfg = lu_config(cls);
  const int p = world.size();
  const int rank = world.rank();
  const int n = cfg.n;
  const int rows = n / p;  // my rows: [rank*rows, ...)
  const int up = rank > 0 ? rank - 1 : mpi::kProcNull;
  const int down = rank + 1 < p ? rank + 1 : mpi::kProcNull;

  // u with one ghost row above and below; Dirichlet zero boundary.
  auto idx = [n](int i, int j) {
    return static_cast<std::size_t>(i + 1) * n + j;  // i in [-1, rows]
  };
  std::vector<double> u(static_cast<std::size_t>(rows + 2) * n, 0.0);
  std::vector<double> f(static_cast<std::size_t>(rows + 2) * n, 0.0);
  for (int i = 0; i < rows; ++i) {
    const int gi = rank * rows + i;
    for (int j = 0; j < n; ++j) {
      // Smooth deterministic source.
      f[idx(i, j)] = std::sin((gi + 1) * 3.0 / n) * std::cos((j + 1) * 5.0 / n);
    }
  }

  // SSOR relaxation of the implicitly time-stepped operator
  // (4 + sigma) u - sum(neighbours) = f  -- the diagonal shift plays the
  // role of NAS LU's 1/dt term and is what makes plain SSOR converge.
  const double w = 1.2;
  const double sigma = 0.5;
  const double diag = 4.0 + sigma;

  auto relax_point = [&](int i, int j) {
    const double gs =
        (u[idx(i - 1, j)] + u[idx(i + 1, j)] +
         (j > 0 ? u[idx(i, j - 1)] : 0.0) +
         (j < n - 1 ? u[idx(i, j + 1)] : 0.0) + f[idx(i, j)]) /
        diag;
    u[idx(i, j)] = (1 - w) * u[idx(i, j)] + w * gs;
  };

  auto residual_norm = [&]() -> sim::Task<double> {
    // Refresh both ghost rows, then evaluate ||f - A u||.
    co_await world.sendrecv(&u[idx(rows - 1, 0)], n, mpi::Datatype::kDouble,
                            down, 21, &u[idx(-1, 0)], n,
                            mpi::Datatype::kDouble, up, 21);
    co_await world.sendrecv(&u[idx(0, 0)], n, mpi::Datatype::kDouble, up, 22,
                            &u[idx(rows, 0)], n, mpi::Datatype::kDouble, down,
                            22);
    double local = 0;
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < n; ++j) {
        const double r = f[idx(i, j)] -
                         ((4.0 + 0.5) * u[idx(i, j)] - u[idx(i - 1, j)] -
                          u[idx(i + 1, j)] -
                          (j > 0 ? u[idx(i, j - 1)] : 0.0) -
                          (j < n - 1 ? u[idx(i, j + 1)] : 0.0));
        local += r * r;
      }
    }
    co_await charge(ctx, 9.0 * rows * n);
    double total = 0;
    co_await world.allreduce(&local, &total, 1, mpi::Datatype::kDouble,
                             mpi::Op::kSum);
    co_return std::sqrt(total);
  };

  co_await world.barrier();
  const double t0 = world.wtime();
  const double norm0 = co_await residual_norm();

  const int nblocks = n / cfg.block;
  for (int it = 0; it < cfg.iters; ++it) {
    notify_phase(world, "lu.ssor", it);
    // Forward wavefront: dependency flows top -> bottom, pipelined per
    // column block.
    for (int b = 0; b < nblocks; ++b) {
      const int j0 = b * cfg.block;
      if (up != mpi::kProcNull) {
        co_await world.recv(&u[idx(-1, j0)], cfg.block, mpi::Datatype::kDouble,
                            up, 100 + b);
      }
      for (int i = 0; i < rows; ++i) {
        for (int j = j0; j < j0 + cfg.block; ++j) relax_point(i, j);
      }
      co_await charge(ctx, 10.0 * rows * cfg.block);
      if (down != mpi::kProcNull) {
        co_await world.send(&u[idx(rows - 1, j0)], cfg.block,
                            mpi::Datatype::kDouble, down, 100 + b);
      }
    }
    // Backward wavefront: bottom -> top.
    for (int b = nblocks - 1; b >= 0; --b) {
      const int j0 = b * cfg.block;
      if (down != mpi::kProcNull) {
        co_await world.recv(&u[idx(rows, j0)], cfg.block,
                            mpi::Datatype::kDouble, down, 200 + b);
      }
      for (int i = rows - 1; i >= 0; --i) {
        for (int j = j0 + cfg.block - 1; j >= j0; --j) relax_point(i, j);
      }
      co_await charge(ctx, 10.0 * rows * cfg.block);
      if (up != mpi::kProcNull) {
        co_await world.send(&u[idx(0, j0)], cfg.block, mpi::Datatype::kDouble,
                            up, 200 + b);
      }
    }
  }

  const double norm = co_await residual_norm();
  const double elapsed = world.wtime() - t0;

  const bool ok = norm < 1e-4 * norm0 && std::isfinite(norm);

  Result r;
  r.name = "LU";
  r.cls = cls;
  r.nprocs = p;
  r.verified = ok;
  r.time_sec = elapsed;
  r.mops = 20.0 * n * n * cfg.iters / elapsed / 1e6;
  r.detail = "r/r0=" + std::to_string(norm / norm0);
  co_return r;
}

}  // namespace nas
