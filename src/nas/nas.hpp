// NAS Parallel Benchmarks -- faithful-pattern mini implementations.
//
// The paper's application-level evaluation (section 7, Figures 16/17) runs
// the NPB suite, class A on 4 nodes and class B on 8 nodes.  This module
// reimplements all eight benchmarks in C++ against our MPI layer with the
// reference communication patterns:
//
//   EP  pseudo-random pairs, allreduce of tallies          (compute-bound)
//   IS  integer bucket sort: alltoall(v) of keys
//   CG  conjugate gradient: allgatherv + allreduce dot products
//   MG  3-D multigrid V-cycles: nearest-neighbour halo exchanges per level
//   FT  3-D FFT: global transpose (alltoall) per dimension pass
//   LU  SSOR wavefronts: many small pipelined point-to-point messages
//   SP  scalar pentadiagonal-style ADI sweeps with pencil transposes
//   BT  block-tridiagonal ADI sweeps with pencil transposes
//
// Problem *geometry* is scaled down from the official classes so the whole
// suite runs in seconds on one simulation host (per-kernel notes in
// src/nas/README.md); the class names are kept because the figures compare
// channel designs at fixed workload, not absolute Mop/s.  Computation is
// performed for real (each kernel self-verifies) and its virtual time is
// charged at a calibrated per-flop rate approximating the testbed's
// 2.4 GHz Xeon.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mpi/runtime.hpp"
#include "pmi/pmi.hpp"

namespace nas {

enum class Class { S, W, A, B };

const char* to_string(Class c);

struct Result {
  std::string name;
  Class cls = Class::S;
  int nprocs = 0;
  bool verified = false;
  double time_sec = 0;   // virtual seconds
  double mops = 0;       // millions of operations per virtual second
  std::string detail;    // verification metric, e.g. final residual
};

/// Approximate sustained per-operation cost of the testbed CPU
/// (2.4 GHz Xeon: ~1.2 sustained Gflop/s on these memory-bound kernels).
inline constexpr double kNsPerFlop = 0.85;

/// Charges virtual CPU time for `flops` units of real arithmetic.
inline sim::Task<void> charge(pmi::Context& ctx, double flops) {
  return ctx.node->compute(sim::nsec(flops * kNsPerFlop));
}

using KernelFn =
    std::function<sim::Task<Result>(mpi::Communicator&, pmi::Context&, Class)>;

// ---- kernel progress hooks --------------------------------------------------
// Each kernel announces its main-loop progress ("is.iter" completed its 3rd
// occurrence, ...) so external machinery -- fault campaigns above all
// (sim/campaign.hpp) -- can key actions to *workload* phase rather than
// wall-clock or raw operation counts.  The hook is process-global: the
// simulation is single-threaded, and one harness observes all ranks.

/// One progress event.  `phase` is "<kernel>.<loop>" ("is.iter", "ft.pass",
/// "mg.cycle"); `iteration` counts occurrences per rank from 0.
struct PhaseEvent {
  std::string phase;
  int iteration = 0;
  int rank = 0;
};

using PhaseHook = std::function<void(const PhaseEvent&)>;

/// Installs (or, with an empty function, clears) the global phase hook.
void set_phase_hook(PhaseHook hook);

/// Kernel-side announcement; a no-op when no hook is installed.
void notify_phase(const mpi::Communicator& world, const std::string& phase,
                  int iteration);

/// RAII installer so harnesses cannot leak a hook past their scope.
class ScopedPhaseHook {
 public:
  explicit ScopedPhaseHook(PhaseHook hook) { set_phase_hook(std::move(hook)); }
  ~ScopedPhaseHook() { set_phase_hook({}); }
  ScopedPhaseHook(const ScopedPhaseHook&) = delete;
  ScopedPhaseHook& operator=(const ScopedPhaseHook&) = delete;
};

/// All eight kernels, in canonical suite order.
const std::vector<std::pair<std::string, KernelFn>>& suite();

/// Look up one kernel by lower-case name ("ep", "is", ...).
KernelFn kernel(const std::string& name);

// Individual entry points.
sim::Task<Result> ep(mpi::Communicator&, pmi::Context&, Class);
sim::Task<Result> is(mpi::Communicator&, pmi::Context&, Class);
sim::Task<Result> cg(mpi::Communicator&, pmi::Context&, Class);
sim::Task<Result> mg(mpi::Communicator&, pmi::Context&, Class);
sim::Task<Result> ft(mpi::Communicator&, pmi::Context&, Class);
sim::Task<Result> lu(mpi::Communicator&, pmi::Context&, Class);
sim::Task<Result> sp(mpi::Communicator&, pmi::Context&, Class);
sim::Task<Result> bt(mpi::Communicator&, pmi::Context&, Class);

}  // namespace nas
