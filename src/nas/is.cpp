// IS -- integer sort.
//
// Bucket sort of uniformly distributed integer keys: each rank generates
// its slice of the key stream, histograms it into one bucket range per
// rank, exchanges bucket sizes with an alltoall and the keys themselves
// with an alltoallv (the benchmark's dominant communication), then
// counting-sorts its received range.  Verification checks global
// sortedness across rank boundaries and conservation of the key count.
// Scaled sizes (keys / max key): S 2^16/2^11, W 2^18/2^13, A 2^20/2^15,
// B 2^21/2^16 (official A is 2^23/2^19).
#include <algorithm>
#include <numeric>
#include <vector>

#include "nas/nas.hpp"
#include "nas/nas_random.hpp"

namespace nas {

namespace {

struct IsConfig {
  std::int64_t total_keys;
  int max_key;  // keys are in [0, max_key)
  int iterations;
};

IsConfig is_config(Class c) {
  switch (c) {
    case Class::S:
      return {1 << 16, 1 << 11, 5};
    case Class::W:
      return {1 << 18, 1 << 13, 5};
    case Class::A:
      return {1 << 20, 1 << 15, 10};
    case Class::B:
      return {1 << 21, 1 << 16, 10};
  }
  return {1 << 16, 1 << 11, 5};
}

}  // namespace

sim::Task<Result> is(mpi::Communicator& world, pmi::Context& ctx, Class cls) {
  const IsConfig cfg = is_config(cls);
  const int p = world.size();
  const int rank = world.rank();
  const std::int64_t per = cfg.total_keys / p;

  // Generate this rank's keys from its slice of the NAS stream.
  std::vector<int> keys(static_cast<std::size_t>(per));
  {
    double seed = advance_seed(314159265.0, kDefaultA, per * rank);
    for (auto& k : keys) {
      k = static_cast<int>(randlc(&seed, kDefaultA) * cfg.max_key);
    }
  }
  co_await charge(ctx, static_cast<double>(per) * 12.0);

  const int keys_per_rank = cfg.max_key / p;  // bucket range per rank
  auto owner = [&](int key) {
    return std::min(key / keys_per_rank, p - 1);
  };

  co_await world.barrier();
  const double t0 = world.wtime();

  std::vector<int> sorted;  // my received range, sorted (last iteration)
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    notify_phase(world, "is.iter", iter);
    // 1. Histogram into per-destination buckets.
    std::vector<int> scounts(static_cast<std::size_t>(p), 0);
    for (int k : keys) ++scounts[static_cast<std::size_t>(owner(k))];
    co_await charge(ctx, static_cast<double>(per) * 5.0);

    // 2. Exchange counts.
    std::vector<int> rcounts(static_cast<std::size_t>(p), 0);
    co_await world.alltoall(scounts.data(), 1, rcounts.data(),
                            mpi::Datatype::kInt);

    // 3. Pack keys by destination.
    std::vector<int> sdispls(static_cast<std::size_t>(p), 0),
        rdispls(static_cast<std::size_t>(p), 0);
    for (int i = 1; i < p; ++i) {
      sdispls[static_cast<std::size_t>(i)] =
          sdispls[static_cast<std::size_t>(i - 1)] +
          scounts[static_cast<std::size_t>(i - 1)];
      rdispls[static_cast<std::size_t>(i)] =
          rdispls[static_cast<std::size_t>(i - 1)] +
          rcounts[static_cast<std::size_t>(i - 1)];
    }
    std::vector<int> packed(keys.size());
    std::vector<int> cursor = sdispls;
    for (int k : keys) {
      packed[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(owner(k))]++)] = k;
    }
    co_await charge(ctx, static_cast<double>(per) * 7.0);

    // 4. The all-to-all key exchange (the benchmark's heart).
    const int total_recv = rdispls[static_cast<std::size_t>(p - 1)] +
                           rcounts[static_cast<std::size_t>(p - 1)];
    std::vector<int> mine(static_cast<std::size_t>(total_recv));
    co_await world.alltoallv(packed.data(), scounts, sdispls, mine.data(),
                             rcounts, rdispls, mpi::Datatype::kInt);

    // 5. Local counting sort of my key range.
    const int lo = rank * keys_per_rank;
    const int hi = rank == p - 1 ? cfg.max_key : lo + keys_per_rank;
    std::vector<int> counts(static_cast<std::size_t>(hi - lo), 0);
    for (int k : mine) ++counts[static_cast<std::size_t>(k - lo)];
    sorted.clear();
    sorted.reserve(mine.size());
    for (int v = lo; v < hi; ++v) {
      sorted.insert(sorted.end(),
                    static_cast<std::size_t>(counts[static_cast<std::size_t>(v - lo)]),
                    v);
    }
    co_await charge(ctx, static_cast<double>(total_recv) * 10.0 +
                             static_cast<double>(hi - lo));
  }
  const double elapsed = world.wtime() - t0;

  // Verification: local sortedness, boundary order with the neighbour
  // ranks, and conservation of the global key count.
  bool ok = std::is_sorted(sorted.begin(), sorted.end());
  const int my_first = sorted.empty() ? (rank * keys_per_rank) : sorted.front();
  const int my_last =
      sorted.empty() ? (rank * keys_per_rank) : sorted.back();
  int prev_last = 0;
  co_await world.sendrecv(&my_last, 1, mpi::Datatype::kInt,
                          rank + 1 < p ? rank + 1 : mpi::kProcNull, 77,
                          &prev_last, 1, mpi::Datatype::kInt,
                          rank > 0 ? rank - 1 : mpi::kProcNull, 77);
  if (rank > 0) ok = ok && prev_last <= my_first;
  long my_count = static_cast<long>(sorted.size());
  long total = 0;
  co_await world.allreduce(&my_count, &total, 1, mpi::Datatype::kLong,
                           mpi::Op::kSum);
  ok = ok && total == cfg.total_keys;
  int ok_all = 0;
  const int ok_int = ok ? 1 : 0;
  co_await world.allreduce(&ok_int, &ok_all, 1, mpi::Datatype::kInt,
                           mpi::Op::kMin);

  Result r;
  r.name = "IS";
  r.cls = cls;
  r.nprocs = p;
  r.verified = ok_all == 1;
  r.time_sec = elapsed;
  r.mops = static_cast<double>(cfg.total_keys) * cfg.iterations / elapsed /
           1e6;
  r.detail = "keys=" + std::to_string(total);
  co_return r;
}

}  // namespace nas
