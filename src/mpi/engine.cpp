#include "mpi/engine.hpp"

#include <algorithm>
#include <cstring>

#include "ib/node.hpp"

namespace mpi {

Engine::Engine(pmi::Context& ctx, const EngineConfig& cfg)
    : ctx_(&ctx),
      cfg_(cfg),
      ch3_(ch3::make_channel(ctx, cfg.stack)),
      ft_armed_(cfg.stack.channel.ft_detector) {}

Engine::~Engine() = default;

sim::Task<void> Engine::init() { co_await ch3_->init(*this); }

sim::Task<void> Engine::finalize() {
  // Drain whatever is still moving (e.g. FIN packets of our last sends),
  // then synchronize with the fabric-level finalize inside the channel.
  co_await ch3_->finalize();
}

std::unique_ptr<Engine::PostedRecv> Engine::match_posted(
    const ch3::MatchHeader& h) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches(*it, h)) {
      auto r = std::make_unique<PostedRecv>(std::move(*it));
      posted_.erase(it);
      return r;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// EngineHooks
// ---------------------------------------------------------------------------

ch3::Sink Engine::on_eager(int src, const ch3::MatchHeader& hdr) {
  const std::uint64_t id = ++cookie_seq_;
  if (auto r = match_posted(hdr)) {
    check_truncation(r->cap, hdr);
    inflight_[id] = Inflight{r->req, nullptr, src};
    return ch3::Sink{r->buf, id};
  }
  auto u = std::make_unique<UnexMsg>();
  u->hdr = hdr;
  u->src_vc = src;
  u->data.resize(hdr.length);
  UnexMsg* raw = u.get();
  unexpected_.push_back(std::move(u));
  inflight_[id] = Inflight{nullptr, raw, src};
  return ch3::Sink{raw->data.data(), id};
}

void Engine::on_eager_complete(const ch3::Sink& sink,
                               const ch3::MatchHeader& hdr) {
  auto it = inflight_.find(sink.cookie);
  if (it == inflight_.end()) {
    throw MpiError("eager completion for unknown delivery");
  }
  Inflight inf = it->second;
  inflight_.erase(it);
  if (inf.req) {
    complete_recv(*inf.req, hdr);
    return;
  }
  inf.unex->data_ready = true;
  if (inf.unex->claimed) {
    deferred_copies_.push_back(inf.unex);  // charged copy in progress loop
  }
}

void Engine::on_rts(int src, const ch3::MatchHeader& hdr,
                    std::uint64_t token) {
  if (auto r = match_posted(hdr)) {
    check_truncation(r->cap, hdr);
    const std::uint64_t id = ++cookie_seq_;
    inflight_[id] = Inflight{r->req, nullptr, src};
    // Stash the envelope for completion-time status.
    inflight_[id].req->status.source = hdr.src;
    inflight_[id].req->status.tag = hdr.tag;
    inflight_[id].req->status.bytes = hdr.length;
    ch3_->rndv_recv_ready(src, token, r->buf, hdr.length, id);
    return;
  }
  auto u = std::make_unique<UnexMsg>();
  u->hdr = hdr;
  u->src_vc = src;
  u->rndv = true;
  u->token = token;
  unexpected_.push_back(std::move(u));
}

void Engine::on_rndv_complete(std::uint64_t cookie) {
  auto it = inflight_.find(cookie);
  if (it == inflight_.end()) {
    throw MpiError("rendezvous completion for unknown delivery");
  }
  it->second.req->recv_done = true;
  inflight_.erase(it);
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

sim::Task<Request> Engine::isend(const void* buf, std::size_t bytes,
                                 int dst_world, int src_comm_rank, int tag,
                                 std::uint64_t context) {
  auto st = std::make_shared<detail::ReqState>();
  st->is_send = true;
  if (dst_world == kProcNull) {
    st->ch3_send.done = true;
    co_return Request(st);
  }
  ++sends;
  co_await ctx_->node->compute(cfg_.per_op_overhead);
  ch3::MatchHeader hdr;
  hdr.src = src_comm_rank;
  hdr.tag = tag;
  hdr.context_id = context;
  hdr.length = bytes;

  if (dst_world == world_rank()) {
    // Self-send: route through the matching engine locally.
    if (auto r = match_posted(hdr)) {
      check_truncation(r->cap, hdr);
      co_await ctx_->node->copy(r->buf, buf, bytes);
      complete_recv(*r->req, hdr);
    } else {
      auto u = std::make_unique<UnexMsg>();
      u->hdr = hdr;
      u->src_vc = world_rank();
      u->data.resize(bytes);
      co_await ctx_->node->copy(u->data.data(), buf, bytes);
      u->data_ready = true;
      unexpected_.push_back(std::move(u));
    }
    st->ch3_send.done = true;
    co_return Request(st);
  }

  ch3_->start_send(dst_world, hdr, buf, &st->ch3_send);
  if (ft_armed_) pending_sends_.push_back(PendingSend{dst_world, context, st});
  co_return Request(st);
}

sim::Task<Request> Engine::irecv(void* buf, std::size_t bytes,
                                 int src_comm_rank, int tag,
                                 std::uint64_t context) {
  auto st = std::make_shared<detail::ReqState>();
  if (src_comm_rank == kProcNull) {
    st->recv_done = true;
    st->status.source = kProcNull;
    st->status.bytes = 0;
    co_return Request(st);
  }
  ++recvs;
  co_await ctx_->node->compute(cfg_.per_op_overhead);

  // First consult the unexpected queue (arrival order).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    UnexMsg& u = **it;
    if (u.claimed || !matches(context, src_comm_rank, tag, u.hdr)) continue;
    check_truncation(bytes, u.hdr);
    ++unexpected_hits;
    if (u.rndv) {
      const std::uint64_t id = ++cookie_seq_;
      inflight_[id] = Inflight{st, nullptr, u.src_vc};
      st->status.source = u.hdr.src;
      st->status.tag = u.hdr.tag;
      st->status.bytes = u.hdr.length;
      ch3_->rndv_recv_ready(u.src_vc, u.token, buf, u.hdr.length, id);
      unexpected_.erase(it);
      co_return Request(st);
    }
    if (u.data_ready) {
      co_await ctx_->node->copy(buf, u.data.data(), u.hdr.length);
      complete_recv(*st, u.hdr);
      unexpected_.erase(it);
      co_return Request(st);
    }
    // Matched while the payload is still arriving into the temp buffer.
    u.claimed = st;
    u.claimed_buf = static_cast<std::byte*>(buf);
    co_return Request(st);
  }

  posted_.push_back(PostedRecv{context, src_comm_rank, tag,
                               static_cast<std::byte*>(buf), bytes, st});
  co_return Request(st);
}

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

sim::Task<bool> Engine::run_deferred() {
  bool any = false;
  while (!deferred_copies_.empty()) {
    UnexMsg* u = deferred_copies_.back();
    deferred_copies_.pop_back();
    co_await ctx_->node->copy(u->claimed_buf, u->data.data(), u->hdr.length);
    complete_recv(*u->claimed, u->hdr);
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (it->get() == u) {
        unexpected_.erase(it);
        break;
      }
    }
    any = true;
  }
  co_return any;
}

int Engine::dead_src_world(std::uint64_t context, int src) const {
  const auto git = groups_.find(context);
  if (git == groups_.end()) return -1;
  const std::vector<int>& group = *git->second;
  const pmi::Kvs& kvs = *ctx_->kvs;
  if (src == kAnySource) {
    for (const int w : group) {
      if (kvs.is_dead(w)) return w;
    }
    return -1;
  }
  if (src < 0 || static_cast<std::size_t>(src) >= group.size()) return -1;
  const int w = group[static_cast<std::size_t>(src)];
  return kvs.is_dead(w) ? w : -1;
}

void Engine::ft_sweep() {
  if (!ft_armed_) return;
  pmi::Kvs& kvs = *ctx_->kvs;
  const std::uint64_t gen = kvs.obit_version() + kvs.mail_count("rvk");
  if (gen == ft_gen_seen_) return;
  ft_gen_seen_ = gen;

  const auto revoked = [&kvs](std::uint64_t c) {
    return kvs.has("rvk:" + std::to_string(c));
  };
  const auto dead_msg = [](int w) {
    return "rank " + std::to_string(w) + " has a published obituary";
  };

  for (auto it = posted_.begin(); it != posted_.end();) {
    if (revoked(it->context)) {
      fail_req(*it->req, /*revoked=*/true, -1,
               "receive interrupted: communicator revoked");
      it = posted_.erase(it);
      continue;
    }
    const int w = dead_src_world(it->context, it->src);
    if (w >= 0) {
      fail_req(*it->req, /*revoked=*/false, w,
               "receive from dead process: " + dead_msg(w));
      it = posted_.erase(it);
      continue;
    }
    ++it;
  }

  // Matched receives whose payload is mid-delivery from a rank that died:
  // the data leg will never finish, so fail the request (the entry stays --
  // a straggling completion on a failed request is harmless).
  for (auto& [cookie, inf] : inflight_) {
    (void)cookie;
    if (inf.req && inf.src_world >= 0 && kvs.is_dead(inf.src_world)) {
      fail_req(*inf.req, /*revoked=*/false, inf.src_world,
               "delivery from dead process: " + dead_msg(inf.src_world));
    }
  }
  for (auto& u : unexpected_) {
    if (u->claimed && u->src_vc >= 0 && !u->data_ready &&
        kvs.is_dead(u->src_vc)) {
      fail_req(*u->claimed, /*revoked=*/false, u->src_vc,
               "delivery from dead process: " + dead_msg(u->src_vc));
    }
  }

  for (auto it = pending_sends_.begin(); it != pending_sends_.end();) {
    std::shared_ptr<detail::ReqState> st = it->req.lock();
    if (!st || st->completed()) {
      it = pending_sends_.erase(it);
      continue;
    }
    if (revoked(it->context)) {
      fail_req(*st, /*revoked=*/true, -1,
               "send interrupted: communicator revoked");
      it = pending_sends_.erase(it);
      continue;
    }
    if (kvs.is_dead(it->dst_world)) {
      fail_req(*st, /*revoked=*/false, it->dst_world,
               "send to dead process: " + dead_msg(it->dst_world));
      it = pending_sends_.erase(it);
      continue;
    }
    ++it;
  }
}

sim::Task<void> Engine::progress_until(const std::function<bool()>& pred) {
  ft_sweep();
  while (!pred()) {
    const std::uint64_t gen = ch3_->activity_count();
    bool moved = false;
    try {
      moved = co_await ch3_->progress_once();
    } catch (const ch3::VcError& e) {
      // With the detector armed a VC failure is a process failure: surface
      // it as the typed MPI error so collectives and callers can run the
      // revoke -> agree -> shrink path.  Unarmed, keep the historic VcError.
      if (!ft_armed_) throw;
      throw ProcFailedError(e.peer(), e.what());
    }
    moved |= co_await run_deferred();
    ft_sweep();
    if (pred()) break;
    if (!moved && ch3_->activity_count() == gen) {
      co_await ch3_->wait_for_activity();
    }
  }
}

sim::Task<void> Engine::wait(const Request& r) {
  co_await progress_until([&r] { return r.done(); });
  throw_if_failed(r);
}

sim::Task<void> Engine::wait_all(std::span<const Request> rs) {
  co_await progress_until([rs] {
    return std::all_of(rs.begin(), rs.end(),
                       [](const Request& r) { return r.done(); });
  });
  for (const Request& r : rs) throw_if_failed(r);
}

sim::Task<bool> Engine::test(const Request& r) {
  (void)co_await ch3_->progress_once();
  (void)co_await run_deferred();
  ft_sweep();
  throw_if_failed(r);
  co_return r.done();
}

Engine::UnexMsg* Engine::find_unexpected(std::uint64_t context, int src,
                                         int tag) {
  for (auto& u : unexpected_) {
    if (!u->claimed && matches(context, src, tag, u->hdr)) return u.get();
  }
  return nullptr;
}

sim::Task<bool> Engine::iprobe(int src_comm_rank, int tag,
                               std::uint64_t context, Status* st) {
  (void)co_await ch3_->progress_once();
  (void)co_await run_deferred();
  if (UnexMsg* u = find_unexpected(context, src_comm_rank, tag)) {
    if (st != nullptr) {
      st->source = u->hdr.src;
      st->tag = u->hdr.tag;
      st->bytes = u->hdr.length;
    }
    co_return true;
  }
  co_return false;
}

sim::Task<Status> Engine::probe(int src_comm_rank, int tag,
                                std::uint64_t context) {
  co_await progress_until([this, context, src_comm_rank, tag] {
    return find_unexpected(context, src_comm_rank, tag) != nullptr;
  });
  UnexMsg* u = find_unexpected(context, src_comm_rank, tag);
  Status st;
  st.source = u->hdr.src;
  st.tag = u->hdr.tag;
  st.bytes = u->hdr.length;
  co_return st;
}

}  // namespace mpi
