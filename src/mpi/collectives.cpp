// Collective algorithms, built on the point-to-point layer with internal
// tags on the communicator's collective context.  Algorithm choices follow
// the classic MPICH implementations: dissemination barrier, binomial-tree
// bcast/reduce, recursive-doubling allreduce (power-of-two), ring
// allgather, and pairwise-shift alltoall.
#include <algorithm>
#include <cstring>
#include <vector>

#include "ib/node.hpp"
#include "mpi/comm.hpp"

namespace mpi {

namespace {

bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace

sim::Task<void> Communicator::barrier() {
  ft_check();
  const int p = size();
  if (p == 1) co_return;
  const int tag = next_coll_tag();
  std::byte token{0};
  // Dissemination: after ceil(log2 p) rounds everyone has heard from all.
  for (int k = 1; k < p; k <<= 1) {
    const int to = (my_rank_ + k) % p;
    const int from = (my_rank_ - k + p) % p;
    std::byte in{0};
    co_await sendrecv_bytes(&token, 1, to, &in, 1, from, tag, coll_context());
  }
}

sim::Task<void> Communicator::bcast(void* buf, int count, Datatype d,
                                    int root) {
  ft_check();
  const int p = size();
  if (p == 1) co_return;
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype_size(d);
  const int tag = next_coll_tag();
  const int vr = (my_rank_ - root + p) % p;  // rank relative to root
  // Binomial tree: receive from parent, then forward to children.
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      const int parent = ((vr - mask) + root) % p;
      Request r = co_await irecv_bytes(buf, bytes, parent, tag,
                                       coll_context());
      co_await eng_->wait(r);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) {
      const int child = (vr + mask + root) % p;
      Request r = co_await isend_bytes(buf, bytes, child, tag,
                                       coll_context());
      co_await eng_->wait(r);
    }
    mask >>= 1;
  }
}

sim::Task<void> Communicator::reduce(const void* sendbuf, void* recvbuf,
                                     int count, Datatype d, Op op, int root) {
  ft_check();
  const int p = size();
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype_size(d);
  // Accumulator starts as a copy of the local contribution.
  std::vector<std::byte> acc(bytes);
  std::memcpy(acc.data(), sendbuf, bytes);
  if (p > 1) {
    const int tag = next_coll_tag();
    const int vr = (my_rank_ - root + p) % p;
    std::vector<std::byte> tmp(bytes);
    // Binomial tree: children fold into parents.
    for (int mask = 1; mask < p; mask <<= 1) {
      if (vr & mask) {
        const int parent = ((vr - mask) + root) % p;
        Request r = co_await isend_bytes(acc.data(), bytes, parent, tag,
                                         coll_context());
        co_await eng_->wait(r);
        break;
      }
      if (vr + mask < p) {
        const int child = (vr + mask + root) % p;
        Request r = co_await irecv_bytes(tmp.data(), bytes, child, tag,
                                         coll_context());
        co_await eng_->wait(r);
        apply_op(op, d, tmp.data(), acc.data(), count);
      }
    }
  }
  if (my_rank_ == root) std::memcpy(recvbuf, acc.data(), bytes);
}

sim::Task<void> Communicator::allreduce(const void* sendbuf, void* recvbuf,
                                        int count, Datatype d, Op op) {
  ft_check();
  const int p = size();
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype_size(d);
  std::memcpy(recvbuf, sendbuf, bytes);
  if (p == 1) co_return;
  if (is_pow2(p)) {
    // Recursive doubling: log2(p) exchange-and-combine rounds.
    const int tag = next_coll_tag();
    std::vector<std::byte> tmp(bytes);
    for (int mask = 1; mask < p; mask <<= 1) {
      const int partner = my_rank_ ^ mask;
      co_await sendrecv_bytes(recvbuf, bytes, partner, tmp.data(), bytes,
                              partner, tag, coll_context());
      apply_op(op, d, tmp.data(), recvbuf, count);
    }
    co_return;
  }
  co_await reduce(sendbuf, recvbuf, count, d, op, 0);
  co_await bcast(recvbuf, count, d, 0);
}

sim::Task<void> Communicator::gather(const void* sendbuf, int scount,
                                     void* recvbuf, Datatype d, int root) {
  ft_check();
  const int p = size();
  const std::size_t bytes =
      static_cast<std::size_t>(scount) * datatype_size(d);
  const int tag = next_coll_tag();
  if (my_rank_ != root) {
    Request r = co_await isend_bytes(sendbuf, bytes, root, tag,
                                     coll_context());
    co_await eng_->wait(r);
    co_return;
  }
  auto* out = static_cast<std::byte*>(recvbuf);
  std::vector<Request> reqs;
  for (int r = 0; r < p; ++r) {
    if (r == my_rank_) {
      std::memcpy(out + static_cast<std::size_t>(r) * bytes, sendbuf, bytes);
      continue;
    }
    reqs.push_back(co_await irecv_bytes(
        out + static_cast<std::size_t>(r) * bytes, bytes, r, tag,
        coll_context()));
  }
  co_await eng_->wait_all(reqs);
}

sim::Task<void> Communicator::gatherv(const void* sendbuf, int scount,
                                      void* recvbuf,
                                      std::span<const int> rcounts,
                                      std::span<const int> displs, Datatype d,
                                      int root) {
  ft_check();
  const int p = size();
  const std::size_t el = datatype_size(d);
  const int tag = next_coll_tag();
  if (my_rank_ != root) {
    Request r = co_await isend_bytes(
        sendbuf, static_cast<std::size_t>(scount) * el, root, tag,
        coll_context());
    co_await eng_->wait(r);
    co_return;
  }
  auto* out = static_cast<std::byte*>(recvbuf);
  std::vector<Request> reqs;
  for (int r = 0; r < p; ++r) {
    std::byte* dst = out + static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]) * el;
    const std::size_t n =
        static_cast<std::size_t>(rcounts[static_cast<std::size_t>(r)]) * el;
    if (r == my_rank_) {
      std::memcpy(dst, sendbuf, n);
      continue;
    }
    reqs.push_back(
        co_await irecv_bytes(dst, n, r, tag, coll_context()));
  }
  co_await eng_->wait_all(reqs);
}

sim::Task<void> Communicator::scatter(const void* sendbuf, int count,
                                      void* recvbuf, Datatype d, int root) {
  ft_check();
  const int p = size();
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype_size(d);
  const int tag = next_coll_tag();
  if (my_rank_ == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < p; ++r) {
      const std::byte* src = in + static_cast<std::size_t>(r) * bytes;
      if (r == my_rank_) {
        std::memcpy(recvbuf, src, bytes);
        continue;
      }
      reqs.push_back(
          co_await isend_bytes(src, bytes, r, tag, coll_context()));
    }
    co_await eng_->wait_all(reqs);
    co_return;
  }
  Request r = co_await irecv_bytes(recvbuf, bytes, root, tag, coll_context());
  co_await eng_->wait(r);
}

sim::Task<void> Communicator::scatterv(const void* sendbuf,
                                       std::span<const int> scounts,
                                       std::span<const int> displs,
                                       void* recvbuf, int rcount, Datatype d,
                                       int root) {
  ft_check();
  const int p = size();
  const std::size_t el = datatype_size(d);
  const int tag = next_coll_tag();
  if (my_rank_ == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < p; ++r) {
      const std::byte* src =
          in + static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]) * el;
      const std::size_t n =
          static_cast<std::size_t>(scounts[static_cast<std::size_t>(r)]) * el;
      if (r == my_rank_) {
        std::memcpy(recvbuf, src, n);
        continue;
      }
      reqs.push_back(co_await isend_bytes(src, n, r, tag, coll_context()));
    }
    co_await eng_->wait_all(reqs);
    co_return;
  }
  Request r = co_await irecv_bytes(
      recvbuf, static_cast<std::size_t>(rcount) * el, root, tag,
      coll_context());
  co_await eng_->wait(r);
}

sim::Task<void> Communicator::allgather(const void* sendbuf, int scount,
                                        void* recvbuf, Datatype d) {
  ft_check();
  const int p = size();
  const std::size_t bytes =
      static_cast<std::size_t>(scount) * datatype_size(d);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(my_rank_) * bytes, sendbuf,
              bytes);
  if (p == 1) co_return;
  const int tag = next_coll_tag();
  // Ring: in step s, pass along the block originated by (rank - s).
  const int to = (my_rank_ + 1) % p;
  const int from = (my_rank_ - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int send_block = (my_rank_ - s + p) % p;
    const int recv_block = (my_rank_ - s - 1 + p) % p;
    co_await sendrecv_bytes(
        out + static_cast<std::size_t>(send_block) * bytes, bytes, to,
        out + static_cast<std::size_t>(recv_block) * bytes, bytes, from, tag,
        coll_context());
  }
}

sim::Task<void> Communicator::allgatherv(const void* sendbuf, int scount,
                                         void* recvbuf,
                                         std::span<const int> rcounts,
                                         std::span<const int> displs,
                                         Datatype d) {
  ft_check();
  const int p = size();
  const std::size_t el = datatype_size(d);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(
                        displs[static_cast<std::size_t>(my_rank_)]) * el,
              sendbuf, static_cast<std::size_t>(scount) * el);
  if (p == 1) co_return;
  const int tag = next_coll_tag();
  const int to = (my_rank_ + 1) % p;
  const int from = (my_rank_ - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int sb = (my_rank_ - s + p) % p;
    const int rb = (my_rank_ - s - 1 + p) % p;
    co_await sendrecv_bytes(
        out + static_cast<std::size_t>(displs[static_cast<std::size_t>(sb)]) * el,
        static_cast<std::size_t>(rcounts[static_cast<std::size_t>(sb)]) * el,
        to,
        out + static_cast<std::size_t>(displs[static_cast<std::size_t>(rb)]) * el,
        static_cast<std::size_t>(rcounts[static_cast<std::size_t>(rb)]) * el,
        from, tag, coll_context());
  }
}

sim::Task<void> Communicator::alltoall(const void* sendbuf, int scount,
                                       void* recvbuf, Datatype d) {
  ft_check();
  const int p = size();
  const std::size_t bytes =
      static_cast<std::size_t>(scount) * datatype_size(d);
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(my_rank_) * bytes,
              in + static_cast<std::size_t>(my_rank_) * bytes, bytes);
  if (p == 1) co_return;
  const int tag = next_coll_tag();
  // Pairwise shift: step s exchanges with rank +- s.
  for (int s = 1; s < p; ++s) {
    const int to = (my_rank_ + s) % p;
    const int from = (my_rank_ - s + p) % p;
    co_await sendrecv_bytes(in + static_cast<std::size_t>(to) * bytes, bytes,
                            to,
                            out + static_cast<std::size_t>(from) * bytes,
                            bytes, from, tag, coll_context());
  }
}

sim::Task<void> Communicator::alltoallv(
    const void* sendbuf, std::span<const int> scounts,
    std::span<const int> sdispls, void* recvbuf,
    std::span<const int> rcounts, std::span<const int> rdispls, Datatype d) {
  ft_check();
  const int p = size();
  const std::size_t el = datatype_size(d);
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  auto sview = [&](int r) {
    return in + static_cast<std::size_t>(sdispls[static_cast<std::size_t>(r)]) * el;
  };
  auto rview = [&](int r) {
    return out + static_cast<std::size_t>(rdispls[static_cast<std::size_t>(r)]) * el;
  };
  std::memcpy(rview(my_rank_), sview(my_rank_),
              static_cast<std::size_t>(scounts[static_cast<std::size_t>(my_rank_)]) * el);
  if (p == 1) co_return;
  const int tag = next_coll_tag();
  for (int s = 1; s < p; ++s) {
    const int to = (my_rank_ + s) % p;
    const int from = (my_rank_ - s + p) % p;
    co_await sendrecv_bytes(
        sview(to),
        static_cast<std::size_t>(scounts[static_cast<std::size_t>(to)]) * el,
        to, rview(from),
        static_cast<std::size_t>(rcounts[static_cast<std::size_t>(from)]) * el,
        from, tag, coll_context());
  }
}

sim::Task<void> Communicator::reduce_scatter(const void* sendbuf,
                                             void* recvbuf,
                                             std::span<const int> counts,
                                             Datatype d, Op op) {
  ft_check();
  const int p = size();
  int total = 0;
  std::vector<int> displs(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    displs[static_cast<std::size_t>(r)] = total;
    total += counts[static_cast<std::size_t>(r)];
  }
  std::vector<std::byte> full(static_cast<std::size_t>(total) *
                              datatype_size(d));
  co_await reduce(sendbuf, full.data(), total, d, op, 0);
  co_await scatterv(full.data(), counts, displs, recvbuf,
                    counts[static_cast<std::size_t>(my_rank_)], d, 0);
}

sim::Task<void> Communicator::scan(const void* sendbuf, void* recvbuf,
                                   int count, Datatype d, Op op) {
  ft_check();
  const int p = size();
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype_size(d);
  std::memcpy(recvbuf, sendbuf, bytes);
  if (p == 1) co_return;
  const int tag = next_coll_tag();
  if (my_rank_ > 0) {
    std::vector<std::byte> tmp(bytes);
    Request r = co_await irecv_bytes(tmp.data(), bytes, my_rank_ - 1, tag,
                                     coll_context());
    co_await eng_->wait(r);
    apply_op(op, d, tmp.data(), recvbuf, count);
  }
  if (my_rank_ + 1 < p) {
    Request r = co_await isend_bytes(recvbuf, bytes, my_rank_ + 1, tag,
                                     coll_context());
    co_await eng_->wait(r);
  }
}

}  // namespace mpi
