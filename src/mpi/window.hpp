// MPI one-sided communication over RDMA -- the paper's stated future
// work ("provide support for MPI-2 functionalities such as one-sided
// communication using RDMA and atomic operations in InfiniBand",
// section 9), grown in the foMPI direction (Gerstenberger et al.): puts
// and gets map 1:1 onto RDMA writes and reads against the exposed window
// memory, completion is epoch-scoped and per-target instead of
// collective, and synchronization never involves the target CPU.
//
// Supported surface and semantics:
//   * create()     -- collective; registers the window memory and builds a
//                     dedicated QP mesh (one-sided traffic does not touch
//                     the two-sided channel at all).  A small registered
//                     control block per rank carries the accumulate lock
//                     word and the notified-access counters.
//   * put/get      -- nonblocking RMA; complete at the next flush of the
//                     target (or fence).  Puts at or below
//                     WindowConfig::inline_threshold are *inline-eager*:
//                     the payload is staged into a pre-registered ring at
//                     post time, so the origin buffer is immediately
//                     reusable; larger transfers are zero-copy over
//                     RegCache-registered user memory.
//   * put_notify   -- put plus an 8-byte remote completion-flag write on
//                     the same QP: RC in-order delivery makes the flag
//                     visible only after the data, so wait_notify() gives
//                     producer/consumer pairs a poll-free handshake.
//   * accumulate   -- serialized remote read-modify-write: a per-window
//                     HCA compare-and-swap lock at the target orders
//                     conflicting accumulates from different origins, so
//                     concurrent kSum/kMax/... updates are no longer lost
//                     (the historical racy RMW emulation is gone).
//   * fetch_add    -- genuinely atomic 64-bit fetch-and-add via the HCA.
//   * fence()      -- active-target compatibility path: drains all
//                     outstanding RMA, then a collective barrier.
//   * lock_all()/unlock_all(), flush(t)/flush_all()/flush_local*() --
//                     passive-target epochs: flush completes this origin's
//                     outstanding RDMA toward the target over the window
//                     CQ -- no barrier, no target involvement.  In this RC
//                     model a local write CQE implies remote placement, so
//                     flush_local shares flush's implementation (kept as a
//                     distinct call because its *contract* is weaker).
//
// Recovery composition: every async op is journalled until its CQE
// retires it.  A flush that observes an error CQE tears the affected QP
// down (close/quiesce/reset -- the peer binding survives, no re-handshake
// needed) and replays that target's journal in order under a bounded
// attempt budget with exponential backoff.  Replay is exact here: a
// killed WQE never reached the responder, and notify flags write absolute
// sequence numbers.  Budget exhaustion raises ChannelError (kDead) --
// or, with the channel's ft_detector armed, convicts the target on the
// obituary board and raises ProcFailedError; subsequent RMA entry paths
// toward a convicted rank fail fast off the board.  A watchdog deadline
// bounds every wait, so a flush spanning a fault storm errors instead of
// hanging.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "ib/cq.hpp"
#include "ib/mr.hpp"
#include "ib/qp.hpp"
#include "mpi/comm.hpp"
#include "rdmach/reg_cache.hpp"

namespace mpi {

/// Per-window knobs.  The defaults keep the historical verbs sequence for
/// every pre-existing call (inline-eager off), so fence-only users are
/// trace-bit-identical to the pre-epoch implementation.
struct WindowConfig {
  /// Puts of at most this many bytes are copied into the window's
  /// registered staging ring at post time (origin buffer immediately
  /// reusable, no RegCache lookup).  0 disables the inline-eager path.
  std::size_t inline_threshold = 0;
  /// Staging-ring slots (each inline_threshold bytes, 8 minimum); when
  /// every slot is in flight the put falls back to the zero-copy path.
  std::size_t inline_slots = 16;
  /// Consecutive no-progress recovery attempts on one target before the
  /// connection is declared dead (ChannelError / ProcFailedError).
  int recovery_max_attempts = 8;
  /// Backoff before a recovery attempt; doubles per consecutive attempt.
  sim::Tick recovery_backoff = sim::usec(20);
  sim::Tick recovery_backoff_cap = sim::usec(2000);
  /// Watchdog: virtual-time budget for one drain/lock episode with no
  /// completion progress; expiry raises ChannelError instead of hanging.
  /// 0 disables the watchdog.
  sim::Tick flush_deadline = sim::usec(50'000);
};

class Window {
 public:
  /// Collective over `comm`: every rank exposes [base, base+bytes).
  static sim::Task<std::unique_ptr<Window>> create(Communicator& comm,
                                                   void* base,
                                                   std::size_t bytes);
  static sim::Task<std::unique_ptr<Window>> create(Communicator& comm,
                                                   void* base,
                                                   std::size_t bytes,
                                                   const WindowConfig& cfg);

  ~Window();
  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  /// RDMA-writes `count` elements into target's window at byte
  /// displacement `disp`.  With the inline-eager path off or the payload
  /// above the threshold, the origin buffer must stay valid until the op
  /// completes (flush of that target, or fence).
  sim::Task<void> put(const void* origin, int count, Datatype d, int target,
                      std::size_t disp);

  /// put plus a remote notify-counter bump the target can wait_notify()
  /// on; the flag travels on the same QP after the data, so observing it
  /// implies the data landed.
  sim::Task<void> put_notify(const void* origin, int count, Datatype d,
                             int target, std::size_t disp);

  /// Blocks until `origin` has posted at least `count` put_notify()s
  /// toward this rank's window over its lifetime.
  sim::Task<void> wait_notify(int origin, std::uint64_t count);

  /// Notifies received from `origin` so far.
  std::uint64_t notify_count(int origin) const;

  /// RDMA-reads from the target's window into `origin`.
  sim::Task<void> get(void* origin, int count, Datatype d, int target,
                      std::size_t disp);

  /// Serialized remote read-modify-write (see header comment): safe under
  /// concurrent conflicting accumulates from any set of origins.
  sim::Task<void> accumulate(const void* origin, int count, Datatype d, Op op,
                             int target, std::size_t disp);

  /// Atomic 64-bit fetch-and-add on the target window word; returns the
  /// value before the addition.  Safe under arbitrary concurrency.
  sim::Task<std::int64_t> fetch_add(int target, std::size_t disp,
                                    std::int64_t value);

  // ---- passive-target epochs ----------------------------------------------
  /// Opens a passive-target access epoch toward every member.  Purely
  /// local (RC QPs are permanently ready); kept for MPI shape.
  void lock_all() { locked_all_ = true; }
  /// Closes the epoch: flush_all(), then the epoch mark drops.
  sim::Task<void> unlock_all();
  /// Completes every outstanding RMA this origin has issued toward
  /// `target` -- no barrier, no target involvement.
  sim::Task<void> flush(int target);
  sim::Task<void> flush_all();
  /// Local-completion flush: in this RC model a local CQE implies remote
  /// placement, so these share flush's implementation; the weaker MPI
  /// contract (origin buffers reusable, data not necessarily visible) is
  /// what callers should rely on.
  sim::Task<void> flush_local(int target);
  sim::Task<void> flush_local_all();
  bool locked_all() const noexcept { return locked_all_; }

  /// Active-target epoch boundary: drain everything, then barrier.
  sim::Task<void> fence();

  Communicator& comm() const noexcept { return *comm_; }
  std::size_t size_bytes() const noexcept { return bytes_; }
  const WindowConfig& config() const noexcept { return cfg_; }

  /// Window-local observability (tests and benches).
  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t atomics = 0;
    std::uint64_t flushes = 0;
    std::uint64_t inline_puts = 0;    // staged through the inline ring
    std::uint64_t replays = 0;        // journal entries re-posted
    std::uint64_t replayed_bytes = 0;
    std::uint64_t recoveries = 0;     // QP reset cycles completed
    std::uint64_t lock_spins = 0;     // accumulate CAS retries
    std::uint64_t obit_fast_fails = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  Window(Communicator& comm, void* base, std::size_t bytes,
         const WindowConfig& cfg);

  /// Process-wide window-creation counter; combined with an allreduce it
  /// yields an id all members agree on (create() is collective).
  static std::uint64_t& win_seq_counter();

  struct Peer {
    ib::QueuePair* qp = nullptr;
    std::uint64_t raddr = 0;       // window base
    std::uint64_t rbytes = 0;      // target's exposed size (may differ)
    std::uint32_t rkey = 0;
    std::uint64_t ctrl_raddr = 0;  // control block (lock + notify slots)
    std::uint32_t ctrl_rkey = 0;
    std::uint64_t outstanding = 0;  // journalled ops not yet retired
    std::uint64_t notify_out = 0;   // notifies sent toward this target
    bool failed = false;            // error CQE seen; recovery pending
    int attempts = 0;               // consecutive no-progress recoveries
  };

  /// Journalled async operation: everything needed to rebuild its WQE for
  /// replay, plus the resources to release when its CQE retires it.
  struct OpRecord {
    int target = -1;
    ib::Opcode op = ib::Opcode::kRdmaWrite;
    std::byte* local = nullptr;
    std::size_t len = 0;
    std::uint64_t remote_addr = 0;
    std::uint32_t rkey = 0;
    std::uint32_t lkey = 0;
    std::uint64_t atomic_arg = 0;
    std::uint64_t atomic_swap = 0;
    ib::MemoryRegion* mr = nullptr;  // RegCache pin, released at retire
    int inline_slot = -1;            // staging slot, freed at retire
    int notify_slot = -1;            // notify flag source slot, ditto
  };

  sim::Task<void> init();

  // ---- issue ----------------------------------------------------------------
  std::uint64_t post_op(OpRecord rec);
  ib::SendWr build_wr(std::uint64_t wr_id, const OpRecord& rec) const;
  /// Synchronous RMA with recovery: posts, awaits the CQE, retries through
  /// recover() on error.  Not journalled (nothing outlives the await).
  sim::Task<ib::Wc> rma_sync(OpRecord rec);
  int alloc_inline_slot();
  int alloc_notify_slot();

  // ---- completion / recovery ------------------------------------------------
  void process_wc(const ib::Wc& wc);
  void drain_cq();
  /// Waits for CQ activity, bounded by `deadline` (0 = unbounded).
  sim::Task<void> wait_cq_until(sim::Tick deadline);
  /// Drains outstanding ops toward `target` (-1 = every target),
  /// recovering failed QPs as needed; the watchdog bounds each wait.
  sim::Task<void> drain_target(int target);
  /// One recovery attempt for a failed target: budget/ft checks, backoff,
  /// close+quiesce+reset, drain stale CQEs, replay the journal in order.
  sim::Task<void> recover(int target);
  /// Abandon a dead target's journal (before throwing): free slots, queue
  /// pins for release, zero its outstanding count.
  void abandon_target(int target);
  sim::Task<void> drain_releases();
  sim::Tick arm_deadline() const;
  [[noreturn]] void throw_dead(int target, const char* stage);

  // ---- fault-tolerance entry checks -----------------------------------------
  /// Obituary fast-fail: ProcFailedError if the channel's detector is
  /// armed and the target has a published obituary.  Pure KVS lookup, so
  /// fault-free traces are unchanged.
  void ft_entry(int target);
  void note_rma(rdmach::RmaOp op);

  void check_range(int target, std::size_t disp, std::size_t len) const;

  Communicator* comm_;
  std::byte* base_;
  std::size_t bytes_;
  WindowConfig cfg_;
  std::uint64_t win_id_ = 0;
  bool locked_all_ = false;

  ib::ProtectionDomain* pd_ = nullptr;
  ib::CompletionQueue* cq_ = nullptr;
  ib::MemoryRegion* mr_ = nullptr;
  std::unique_ptr<rdmach::RegCache> cache_;
  std::vector<Peer> peers_;

  /// Registered control block, all u64 slots:
  ///   [0]          accumulate lock word (0 free, else owner rank + 1)
  ///   [1]          local scratch for CAS results / lock release
  ///   [2 .. 2+p)   notify counters, indexed by origin rank
  ///   [2+p .. 2+p+kNotifySlots)  outgoing notify flag sources.  A ring,
  ///                not a per-target slot: the HCA gathers the source at
  ///                WQE-processing time, so every in-flight flag write
  ///                must own its 8-byte source until the CQE retires it --
  ///                pipelined put_notify calls sharing one slot could
  ///                deliver a later absolute count with the earlier flag.
  static constexpr std::size_t kNotifySlots = 16;
  std::vector<std::uint64_t> ctrl_;
  ib::MemoryRegion* ctrl_mr_ = nullptr;
  std::vector<char> notify_busy_;

  /// Inline-eager staging ring (registered once at create).
  std::vector<std::byte> slab_;
  ib::MemoryRegion* slab_mr_ = nullptr;
  std::vector<char> slot_busy_;

  std::uint64_t wr_seq_ = 0;
  std::map<std::uint64_t, OpRecord> journal_;  // ordered: replay in post order
  /// rma_sync rendezvous: the single wr_id currently awaited (one sync op
  /// in flight per window -- the callers are sequential) and its CQE.
  std::uint64_t sync_wait_id_ = 0;
  std::optional<ib::Wc> sync_wc_;
  std::vector<ib::MemoryRegion*> release_q_;
  bool progress_ = false;          // set by process_wc on any retire
  sim::Tick armed_deadline_ = 0;   // last deadline a wakeup was scheduled for
  Stats stats_;
};

}  // namespace mpi
