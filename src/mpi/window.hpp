// MPI-2 one-sided communication over RDMA -- the paper's stated future
// work ("provide support for MPI-2 functionalities such as one-sided
// communication using RDMA and atomic operations in InfiniBand",
// section 9), built exactly the way the paper anticipates: puts and gets
// map 1:1 onto RDMA writes and reads against the exposed window memory,
// fetch_add maps onto the InfiniBand atomic, and active-target
// synchronization (fence) is a completion drain plus a barrier.
//
// Supported subset and semantics:
//   * create()    -- collective; registers the window memory and builds a
//                    dedicated QP mesh (one-sided traffic does not touch
//                    the two-sided channel at all).
//   * put/get     -- nonblocking RMA; complete at the next fence().
//   * accumulate  -- read-modify-write emulation (RDMA read, local op,
//                    RDMA write).  Because the target CPU is not involved,
//                    concurrent conflicting accumulates to the same
//                    location from *different* origins within one epoch
//                    are not supported (documented restriction).
//   * fetch_add   -- genuinely atomic 64-bit fetch-and-add via the HCA.
//   * fence()     -- closes the epoch: waits for local completions of all
//                    issued RMA, then synchronizes the communicator.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "ib/cq.hpp"
#include "ib/mr.hpp"
#include "ib/qp.hpp"
#include "mpi/comm.hpp"
#include "rdmach/reg_cache.hpp"

namespace mpi {

class Window {
 public:
  /// Collective over `comm`: every rank exposes [base, base+bytes).
  static sim::Task<std::unique_ptr<Window>> create(Communicator& comm,
                                                   void* base,
                                                   std::size_t bytes);

  ~Window();
  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  /// RDMA-writes `count` elements into target's window at byte
  /// displacement `disp`.  Origin buffer must stay valid until fence().
  sim::Task<void> put(const void* origin, int count, Datatype d, int target,
                      std::size_t disp);

  /// RDMA-reads from the target's window into `origin`.
  sim::Task<void> get(void* origin, int count, Datatype d, int target,
                      std::size_t disp);

  /// Read-modify-write accumulate (see restriction in the header comment).
  sim::Task<void> accumulate(const void* origin, int count, Datatype d, Op op,
                             int target, std::size_t disp);

  /// Atomic 64-bit fetch-and-add on the target window word; returns the
  /// value before the addition.  Safe under arbitrary concurrency.
  sim::Task<std::int64_t> fetch_add(int target, std::size_t disp,
                                    std::int64_t value);

  /// Active-target epoch boundary.
  sim::Task<void> fence();

  Communicator& comm() const noexcept { return *comm_; }
  std::size_t size_bytes() const noexcept { return bytes_; }

 private:
  Window(Communicator& comm, void* base, std::size_t bytes);

  /// Process-wide window-creation counter; combined with an allreduce it
  /// yields an id all members agree on (create() is collective).
  static std::uint64_t& win_seq_counter();

  struct Peer {
    ib::QueuePair* qp = nullptr;
    std::uint64_t raddr = 0;
    std::uint32_t rkey = 0;
  };

  sim::Task<void> init();
  sim::Task<ib::Wc> await_wc(std::uint64_t wr_id);
  void drain_cq();
  std::uint64_t post_rma(int target, ib::Opcode op, void* local,
                         std::size_t len, std::size_t disp,
                         std::uint64_t atomic_arg = 0,
                         std::uint64_t atomic_swap = 0);
  void check_range(int target, std::size_t disp, std::size_t len) const;

  Communicator* comm_;
  std::byte* base_;
  std::size_t bytes_;
  std::uint64_t win_id_ = 0;

  ib::ProtectionDomain* pd_ = nullptr;
  ib::CompletionQueue* cq_ = nullptr;
  ib::MemoryRegion* mr_ = nullptr;
  std::unique_ptr<rdmach::RegCache> cache_;
  std::vector<Peer> peers_;

  std::uint64_t wr_seq_ = 0;
  std::vector<std::uint64_t> pending_;  // RMA issued this epoch
  std::unordered_map<std::uint64_t, ib::Wc> completed_;
  std::vector<std::pair<std::uint64_t, ib::MemoryRegion*>> pinned_;
};

}  // namespace mpi
