#include "mpi/window.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <string>
#include <utility>

#include "ib/hca.hpp"
#include "ib/node.hpp"
#include "pmi/pmi.hpp"

namespace mpi {

Window::Window(Communicator& comm, void* base, std::size_t bytes,
               const WindowConfig& cfg)
    : comm_(&comm),
      base_(static_cast<std::byte*>(base)),
      bytes_(bytes),
      cfg_(cfg) {}

Window::~Window() = default;

sim::Task<std::unique_ptr<Window>> Window::create(Communicator& comm,
                                                  void* base,
                                                  std::size_t bytes) {
  // Not a forwarding call: the config must be owned by this frame (a
  // temporary passed by reference would dangle across the suspension).
  auto win =
      std::unique_ptr<Window>(new Window(comm, base, bytes, WindowConfig{}));
  co_await win->init();
  co_return win;
}

sim::Task<std::unique_ptr<Window>> Window::create(Communicator& comm,
                                                  void* base,
                                                  std::size_t bytes,
                                                  const WindowConfig& cfg) {
  auto win = std::unique_ptr<Window>(new Window(comm, base, bytes, cfg));
  co_await win->init();
  co_return win;
}

sim::Task<void> Window::init() {
  Engine& eng = comm_->engine();
  pmi::Context& ctx = eng.ctx();
  pmi::Kvs& kvs = *ctx.kvs;
  const int p = comm_->size();
  const int me = comm_->rank();

  // All members agree on a fresh window id (same trick as comm split).
  std::uint64_t local_seq = ++win_seq_counter();
  std::uint64_t agreed = 0;
  co_await comm_->allreduce(&local_seq, &agreed, 1, Datatype::kLong,
                            Op::kMax);
  win_id_ = (comm_->context() << 20) | agreed;

  pd_ = &ctx.node->hca().alloc_pd();
  cq_ = &ctx.node->hca().create_cq("win" + std::to_string(win_id_) + ".cq");
  mr_ = co_await pd_->register_memory(base_, bytes_, ib::kAllAccess);
  cache_ = std::make_unique<rdmach::RegCache>(*pd_, 64u << 20, true);

  // Control block: accumulate lock word, CAS scratch, inbound notify
  // counters by origin, and a ring of outbound notify flag sources (each
  // flag write needs a registered 8-byte source that stays stable until
  // its CQE retires it -- see the layout comment in the header).
  ctrl_.assign(2 + static_cast<std::size_t>(p) + kNotifySlots, 0);
  notify_busy_.assign(kNotifySlots, 0);
  ctrl_mr_ = co_await pd_->register_memory(ctrl_.data(), ctrl_.size() * 8,
                                           ib::kAllAccess);

  // Inline-eager staging ring (off by default).
  if (cfg_.inline_threshold > 0 && cfg_.inline_slots > 0) {
    const std::size_t sb = std::max<std::size_t>(cfg_.inline_threshold, 8);
    slab_.resize(sb * cfg_.inline_slots);
    slab_mr_ = co_await pd_->register_memory(slab_.data(), slab_.size(),
                                             ib::kAllAccess);
    slot_busy_.assign(cfg_.inline_slots, 0);
  }

  auto key = [this](int from, int to, const char* what) {
    return "win:" + std::to_string(win_id_) + ":" + std::to_string(from) +
           ":" + std::to_string(to) + ":" + what;
  };

  peers_.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    ib::QueuePair& qp = ctx.node->hca().create_qp(*pd_, *cq_, *cq_);
    peers_[static_cast<std::size_t>(r)].qp = &qp;
    kvs.put_u64(key(me, r, "qpn"), qp.qp_num());
  }
  kvs.put_u64(key(me, -1, "addr"), reinterpret_cast<std::uint64_t>(base_));
  kvs.put_u64(key(me, -1, "size"), bytes_);
  kvs.put_u64(key(me, -1, "rkey"), mr_->rkey());
  kvs.put_u64(key(me, -1, "caddr"),
              reinterpret_cast<std::uint64_t>(ctrl_.data()));
  kvs.put_u64(key(me, -1, "ckey"), ctrl_mr_->rkey());

  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    Peer& peer = peers_[static_cast<std::size_t>(r)];
    peer.raddr = co_await kvs.get_u64(key(r, -1, "addr"));
    peer.rbytes = co_await kvs.get_u64(key(r, -1, "size"));
    peer.rkey =
        static_cast<std::uint32_t>(co_await kvs.get_u64(key(r, -1, "rkey")));
    peer.ctrl_raddr = co_await kvs.get_u64(key(r, -1, "caddr"));
    peer.ctrl_rkey =
        static_cast<std::uint32_t>(co_await kvs.get_u64(key(r, -1, "ckey")));
    if (me < r) {
      const auto peer_qpn = static_cast<std::uint32_t>(
          co_await kvs.get_u64(key(r, me, "qpn")));
      ib::QueuePair* remote = ctx.fabric().find_qp(peer_qpn);
      peer.qp->connect(*remote);
    }
  }
  co_await comm_->barrier();
}

std::uint64_t& Window::win_seq_counter() {
  static std::uint64_t counter = 0;
  return counter;
}

// ---- issue ------------------------------------------------------------------

ib::SendWr Window::build_wr(std::uint64_t wr_id, const OpRecord& rec) const {
  ib::SendWr wr;
  wr.wr_id = wr_id;
  wr.opcode = rec.op;
  wr.remote_addr = rec.remote_addr;
  wr.rkey = rec.rkey;
  wr.signaled = true;
  wr.atomic_arg = rec.atomic_arg;
  wr.atomic_swap = rec.atomic_swap;
  wr.sgl = {ib::Sge{rec.local, rec.len, rec.lkey}};
  return wr;
}

std::uint64_t Window::post_op(OpRecord rec) {
  Peer& peer = peers_.at(static_cast<std::size_t>(rec.target));
  const std::uint64_t wr_id = ++wr_seq_;
  peer.qp->post_send(build_wr(wr_id, rec));
  ++peer.outstanding;
  journal_.emplace(wr_id, std::move(rec));
  return wr_id;
}

int Window::alloc_inline_slot() {
  for (std::size_t i = 0; i < slot_busy_.size(); ++i) {
    if (slot_busy_[i] == 0) {
      slot_busy_[i] = 1;
      return static_cast<int>(i);
    }
  }
  return -1;
}

int Window::alloc_notify_slot() {
  for (std::size_t i = 0; i < notify_busy_.size(); ++i) {
    if (notify_busy_[i] == 0) {
      notify_busy_[i] = 1;
      return static_cast<int>(i);
    }
  }
  return -1;
}

sim::Task<ib::Wc> Window::rma_sync(OpRecord rec) {
  const int target = rec.target;
  sim::Simulator& sim = comm_->engine().ctx().sim();
  for (;;) {
    const std::uint64_t id = ++wr_seq_;
    sync_wait_id_ = id;
    sync_wc_.reset();
    peers_.at(static_cast<std::size_t>(target)).qp->post_send(
        build_wr(id, rec));
    sim::Tick deadline = arm_deadline();
    std::optional<ib::Wc> got;
    for (;;) {
      drain_cq();
      if (sync_wc_ && sync_wc_->wr_id == id) {
        got = *sync_wc_;
        sync_wc_.reset();
        break;
      }
      if (progress_) {
        progress_ = false;
        deadline = arm_deadline();
      } else if (deadline != 0 && sim.now() >= deadline) {
        sync_wait_id_ = 0;
        throw_dead(target, "window:watchdog:sync");
      }
      co_await wait_cq_until(deadline);
    }
    sync_wait_id_ = 0;
    if (got->status == ib::WcStatus::kSuccess) {
      peers_[static_cast<std::size_t>(target)].attempts = 0;
      co_return *got;
    }
    co_await recover(target);  // throws when the target is beyond recovery
  }
}

// ---- data ops ---------------------------------------------------------------

void Window::check_range(int target, std::size_t disp,
                         std::size_t len) const {
  // create() takes per-rank bytes, so windows may be asymmetric: validate
  // against the *target's* exposed size (exchanged at create), not ours --
  // otherwise a legal access to a larger remote window throws and an
  // out-of-range access to a smaller one surfaces as a remote-access CQE
  // plus QP recovery churn instead of a clean local error.
  const std::size_t limit =
      target == comm_->rank()
          ? bytes_
          : static_cast<std::size_t>(
                peers_[static_cast<std::size_t>(target)].rbytes);
  if (disp + len > limit) {
    throw MpiError("one-sided access outside the target window");
  }
}

sim::Task<void> Window::put(const void* origin, int count, Datatype d,
                            int target, std::size_t disp) {
  const std::size_t len = static_cast<std::size_t>(count) * datatype_size(d);
  check_range(target, disp, len);
  ++stats_.puts;
  note_rma(rdmach::RmaOp::kPut);
  if (target == comm_->rank()) {
    co_await comm_->engine().ctx().node->copy(base_ + disp, origin, len);
    co_return;
  }
  ft_entry(target);
  Peer& peer = peers_[static_cast<std::size_t>(target)];
  if (cfg_.inline_threshold > 0 && len <= cfg_.inline_threshold) {
    const int slot = alloc_inline_slot();
    if (slot >= 0) {
      const std::size_t sb = std::max<std::size_t>(cfg_.inline_threshold, 8);
      std::byte* stage = slab_.data() + static_cast<std::size_t>(slot) * sb;
      co_await comm_->engine().ctx().node->copy(stage, origin, len);
      OpRecord rec;
      rec.target = target;
      rec.op = ib::Opcode::kRdmaWrite;
      rec.local = stage;
      rec.len = len;
      rec.remote_addr = peer.raddr + disp;
      rec.rkey = peer.rkey;
      rec.lkey = slab_mr_->lkey();
      rec.inline_slot = slot;
      ++stats_.inline_puts;
      post_op(std::move(rec));
      co_return;
    }
  }
  ib::MemoryRegion* mr = co_await cache_->acquire(origin, len);
  OpRecord rec;
  rec.target = target;
  rec.op = ib::Opcode::kRdmaWrite;
  rec.local = static_cast<std::byte*>(const_cast<void*>(origin));
  rec.len = len;
  rec.remote_addr = peer.raddr + disp;
  rec.rkey = peer.rkey;
  rec.lkey = mr->lkey();
  rec.mr = mr;
  post_op(std::move(rec));
}

sim::Task<void> Window::get(void* origin, int count, Datatype d, int target,
                            std::size_t disp) {
  const std::size_t len = static_cast<std::size_t>(count) * datatype_size(d);
  check_range(target, disp, len);
  ++stats_.gets;
  note_rma(rdmach::RmaOp::kGet);
  if (target == comm_->rank()) {
    co_await comm_->engine().ctx().node->copy(origin, base_ + disp, len);
    co_return;
  }
  ft_entry(target);
  Peer& peer = peers_[static_cast<std::size_t>(target)];
  ib::MemoryRegion* mr = co_await cache_->acquire(origin, len);
  OpRecord rec;
  rec.target = target;
  rec.op = ib::Opcode::kRdmaRead;
  rec.local = static_cast<std::byte*>(origin);
  rec.len = len;
  rec.remote_addr = peer.raddr + disp;
  rec.rkey = peer.rkey;
  rec.lkey = mr->lkey();
  rec.mr = mr;
  post_op(std::move(rec));
}

sim::Task<void> Window::put_notify(const void* origin, int count, Datatype d,
                                   int target, std::size_t disp) {
  co_await put(origin, count, d, target, disp);
  const int me = comm_->rank();
  if (target == me) {
    ctrl_[2 + static_cast<std::size_t>(me)] += 1;
    // Remote flags wake waiters through the inbound-DMA trigger; a local
    // bump must do the same or a coroutine already blocked in
    // wait_notify(me, ...) never re-evaluates its predicate.
    comm_->engine().ctx().node->dma_arrival().fire();
    co_return;
  }
  Peer& peer = peers_[static_cast<std::size_t>(target)];
  ++peer.notify_out;
  // The flag travels on the same QP *after* the data; RC in-order delivery
  // makes it visible only once the data landed.  The value is an absolute
  // sequence number, so replay after recovery is idempotent.  Each
  // in-flight flag owns its own registered source slot until the CQE
  // retires it: the HCA gathers the source at WQE-processing time, so a
  // shared slot would let a later put_notify's count ride the earlier
  // flag write.  Ring exhaustion falls back to draining (every retired op
  // frees its slot).
  int slot = alloc_notify_slot();
  if (slot < 0) {
    co_await drain_target(target);
    slot = alloc_notify_slot();
  }
  if (slot < 0) {
    co_await drain_target(-1);  // empties the journal: every slot frees
    slot = alloc_notify_slot();
  }
  const std::size_t out_slot = 2 + peers_.size() + static_cast<std::size_t>(slot);
  ctrl_[out_slot] = peer.notify_out;
  OpRecord rec;
  rec.target = target;
  rec.op = ib::Opcode::kRdmaWrite;
  rec.local = reinterpret_cast<std::byte*>(&ctrl_[out_slot]);
  rec.len = 8;
  rec.remote_addr = peer.ctrl_raddr + (2 + static_cast<std::size_t>(me)) * 8;
  rec.rkey = peer.ctrl_rkey;
  rec.lkey = ctrl_mr_->lkey();
  rec.notify_slot = slot;
  post_op(std::move(rec));
}

sim::Task<void> Window::wait_notify(int origin, std::uint64_t count) {
  // Inbound flag writes land in ctrl_ and fire this node's dma_arrival.
  sim::Trigger& t = comm_->engine().ctx().node->dma_arrival();
  co_await sim::wait_until(t, [this, origin, count] {
    return ctrl_[2 + static_cast<std::size_t>(origin)] >= count;
  });
}

std::uint64_t Window::notify_count(int origin) const {
  return ctrl_[2 + static_cast<std::size_t>(origin)];
}

sim::Task<void> Window::accumulate(const void* origin, int count, Datatype d,
                                   Op op, int target, std::size_t disp) {
  const std::size_t len = static_cast<std::size_t>(count) * datatype_size(d);
  check_range(target, disp, len);
  ++stats_.atomics;
  note_rma(rdmach::RmaOp::kAtomic);
  if (target == comm_->rank()) {
    // Participate in the same lock protocol as remote origins.  A remote
    // RMW holds our lock word across its read/modify/write; this local
    // check-and-apply runs in one coroutine step (no suspension), so once
    // the word reads free the update is atomic with the check.
    sim::Simulator& lsim = comm_->engine().ctx().sim();
    sim::Tick ldeadline = arm_deadline();
    std::uint64_t lowner = ctrl_[0];
    while (ctrl_[0] != 0) {
      ++stats_.lock_spins;
      if (ctrl_[0] != lowner) {
        // The lock moved to a new holder: the queue is making progress, so
        // re-arm (expiry is reserved for a holder that never budges).
        lowner = ctrl_[0];
        ldeadline = arm_deadline();
      } else if (ldeadline != 0 && lsim.now() >= ldeadline) {
        throw rdmach::ChannelError(
            target, "accumulate: window RMW lock never released",
            rdmach::ChannelError::kDead);
      }
      co_await lsim.delay(sim::usec(1));
    }
    apply_op(op, d, origin, base_ + disp, count);
    co_return;
  }
  ft_entry(target);
  Peer& peer = peers_[static_cast<std::size_t>(target)];
  sim::Simulator& sim = comm_->engine().ctx().sim();
  const std::uint64_t my_tag = static_cast<std::uint64_t>(comm_->rank()) + 1;

  // Acquire the target's window RMW lock: HCA compare-and-swap on the
  // control block's lock word serializes conflicting accumulates from any
  // set of origins (this is what makes the old racy read-modify-write
  // emulation safe).
  sim::Tick deadline = arm_deadline();
  std::uint64_t owner = 0;
  bool owner_seen = false;
  for (;;) {
    OpRecord cas;
    cas.target = target;
    cas.op = ib::Opcode::kCompareSwap;
    cas.local = reinterpret_cast<std::byte*>(&ctrl_[1]);
    cas.len = 8;
    cas.remote_addr = peer.ctrl_raddr;
    cas.rkey = peer.ctrl_rkey;
    cas.lkey = ctrl_mr_->lkey();
    cas.atomic_arg = 0;
    cas.atomic_swap = my_tag;
    (void)co_await rma_sync(std::move(cas));
    if (ctrl_[1] == 0) break;  // prior value was "free": lock is ours
    ++stats_.lock_spins;
    if (!owner_seen || ctrl_[1] != owner) {
      // A different holder since we last looked: the lock queue is making
      // progress, so re-arm the watchdog -- under healthy contention
      // (many origins rotating through the lock) the total wait can
      // legitimately exceed one fixed deadline.  A holder that never
      // budges still expires it.
      owner = ctrl_[1];
      owner_seen = true;
      deadline = arm_deadline();
    } else if (deadline != 0 && sim.now() >= deadline) {
      throw rdmach::ChannelError(
          target, "accumulate: window RMW lock never released",
          rdmach::ChannelError::kDead);
    }
    co_await sim.delay(sim::usec(1));  // deterministic retry pacing
  }

  // Read-modify-write under the lock.  A failure in here (retry budget,
  // watchdog, obituary conviction) must not leak the remote lock word:
  // healthy origins accumulating to a live target would spin until their
  // own watchdog and raise a false kDead.  co_await is illegal inside a
  // catch handler, so capture the exception and clean up after.
  std::vector<std::byte> tmp(len);
  ib::MemoryRegion* mr = nullptr;
  std::exception_ptr failure;
  try {
    mr = co_await cache_->acquire(tmp.data(), len);
    OpRecord rd;
    rd.target = target;
    rd.op = ib::Opcode::kRdmaRead;
    rd.local = tmp.data();
    rd.len = len;
    rd.remote_addr = peer.raddr + disp;
    rd.rkey = peer.rkey;
    rd.lkey = mr->lkey();
    (void)co_await rma_sync(std::move(rd));
    apply_op(op, d, origin, tmp.data(), count);
    OpRecord wb;
    wb.target = target;
    wb.op = ib::Opcode::kRdmaWrite;
    wb.local = tmp.data();
    wb.len = len;
    wb.remote_addr = peer.raddr + disp;
    wb.rkey = peer.rkey;
    wb.lkey = mr->lkey();
    (void)co_await rma_sync(std::move(wb));
  } catch (...) {
    failure = std::current_exception();
  }
  if (mr != nullptr) {
    try {
      co_await cache_->release(mr);
    } catch (...) {
      if (!failure) failure = std::current_exception();
    }
  }

  // Release the lock: only the holder writes it, so a plain RDMA write of
  // zero suffices (and is idempotent under replay).  On the failure path
  // this is best-effort with one fresh recovery budget -- the 8-byte
  // write is cheap, and if the target is genuinely dead the attempt fails
  // fast off the obituary board or burns one budget round; the original
  // error still propagates.
  if (failure) peer.attempts = 0;
  ctrl_[1] = 0;
  try {
    OpRecord unlock;
    unlock.target = target;
    unlock.op = ib::Opcode::kRdmaWrite;
    unlock.local = reinterpret_cast<std::byte*>(&ctrl_[1]);
    unlock.len = 8;
    unlock.remote_addr = peer.ctrl_raddr;
    unlock.rkey = peer.ctrl_rkey;
    unlock.lkey = ctrl_mr_->lkey();
    (void)co_await rma_sync(std::move(unlock));
  } catch (...) {
    if (!failure) throw;  // RMW succeeded: the unlock failure is primary
  }
  if (failure) std::rethrow_exception(failure);
}

sim::Task<std::int64_t> Window::fetch_add(int target, std::size_t disp,
                                          std::int64_t value) {
  check_range(target, disp, 8);
  ++stats_.atomics;
  note_rma(rdmach::RmaOp::kAtomic);
  if (target == comm_->rank()) {
    auto* p = reinterpret_cast<std::int64_t*>(base_ + disp);
    const std::int64_t old = *p;
    *p += value;
    co_return old;
  }
  ft_entry(target);
  Peer& peer = peers_[static_cast<std::size_t>(target)];
  std::uint64_t old = 0;
  ib::MemoryRegion* mr = co_await cache_->acquire(&old, 8);
  OpRecord rec;
  rec.target = target;
  rec.op = ib::Opcode::kFetchAdd;
  rec.local = reinterpret_cast<std::byte*>(&old);
  rec.len = 8;
  rec.remote_addr = peer.raddr + disp;
  rec.rkey = peer.rkey;
  rec.lkey = mr->lkey();
  rec.atomic_arg = static_cast<std::uint64_t>(value);
  (void)co_await rma_sync(std::move(rec));
  co_await cache_->release(mr);
  co_return static_cast<std::int64_t>(old);
}

// ---- completion / recovery --------------------------------------------------

void Window::process_wc(const ib::Wc& wc) {
  auto it = journal_.find(wc.wr_id);
  if (it == journal_.end()) {
    // Not journalled: either the rma_sync rendezvous, or a stale CQE of a
    // journal entry that was re-keyed for replay (its original delivery is
    // idempotent; drop it).
    if (sync_wait_id_ != 0 && wc.wr_id == sync_wait_id_) sync_wc_ = wc;
    return;
  }
  OpRecord& rec = it->second;
  Peer& peer = peers_[static_cast<std::size_t>(rec.target)];
  if (wc.status == ib::WcStatus::kSuccess) {
    if (rec.mr != nullptr) release_q_.push_back(rec.mr);
    if (rec.inline_slot >= 0) slot_busy_[static_cast<std::size_t>(rec.inline_slot)] = 0;
    if (rec.notify_slot >= 0) notify_busy_[static_cast<std::size_t>(rec.notify_slot)] = 0;
    if (peer.outstanding > 0) --peer.outstanding;
    peer.attempts = 0;  // completion progress re-arms the retry budget
    progress_ = true;
    journal_.erase(it);
  } else {
    peer.failed = true;
  }
}

void Window::drain_cq() {
  while (auto wc = cq_->poll()) process_wc(*wc);
  if (cq_->overrun()) {
    for (const ib::Wc& wc : cq_->rearm()) process_wc(wc);
  }
}

sim::Tick Window::arm_deadline() const {
  if (cfg_.flush_deadline == 0) return 0;
  return comm_->engine().ctx().sim().now() + cfg_.flush_deadline;
}

sim::Task<void> Window::wait_cq_until(sim::Tick deadline) {
  if (deadline == 0) {
    co_await cq_->wait_nonempty();
    co_return;
  }
  sim::Simulator& sim = comm_->engine().ctx().sim();
  if (sim.now() >= deadline) co_return;
  if (armed_deadline_ != deadline) {
    // One wakeup event per distinct deadline: fire the CQ trigger so the
    // predicate's time clause is re-evaluated (the wait_connected_until
    // idiom).  Firing a trigger with no waiters is a no-op, so stray
    // wakeups after the epoch completes cost nothing.
    armed_deadline_ = deadline;
    sim::Trigger* t = &cq_->arrival();
    sim.call_at(deadline, [t] { t->fire(); });
  }
  co_await sim::wait_until(cq_->arrival(), [this, deadline, &sim] {
    return !cq_->empty() || cq_->overrun() || sim.now() >= deadline;
  });
}

sim::Task<void> Window::drain_target(int target) {
  sim::Simulator& sim = comm_->engine().ctx().sim();
  auto remaining = [this, target]() -> std::uint64_t {
    if (target >= 0) return peers_[static_cast<std::size_t>(target)].outstanding;
    std::uint64_t n = 0;
    for (const Peer& p : peers_) n += p.outstanding;
    return n;
  };
  auto next_failed = [this, target]() -> int {
    for (int r = 0; r < static_cast<int>(peers_.size()); ++r) {
      if (!peers_[static_cast<std::size_t>(r)].failed) continue;
      if (target < 0 || r == target) return r;
    }
    return -1;
  };
  auto first_outstanding = [this]() -> int {
    for (int r = 0; r < static_cast<int>(peers_.size()); ++r) {
      if (peers_[static_cast<std::size_t>(r)].outstanding > 0) return r;
    }
    return -1;
  };
  sim::Tick deadline = arm_deadline();
  for (;;) {
    drain_cq();
    for (int r = next_failed(); r != -1; r = next_failed()) {
      co_await recover(r);
      drain_cq();
      deadline = arm_deadline();
    }
    if (remaining() == 0) co_return;
    if (progress_) {
      progress_ = false;
      deadline = arm_deadline();
    } else if (deadline != 0 && sim.now() >= deadline) {
      throw_dead(target >= 0 ? target : first_outstanding(),
                 "window:watchdog:flush");
    }
    co_await wait_cq_until(deadline);
  }
}

sim::Task<void> Window::recover(int target) {
  Peer& peer = peers_[static_cast<std::size_t>(target)];
  peer.failed = false;
  Engine& eng = comm_->engine();
  pmi::Context& pctx = eng.ctx();
  pmi::Kvs& kvs = *pctx.kvs;
  const int wr = comm_->world_rank(target);

  // Obituary board first: someone else may already have convicted the
  // target, in which case burning our own budget is pointless.
  if (eng.ft_armed() && kvs.obit_version() != 0 && kvs.is_dead(wr)) {
    abandon_target(target);
    ++stats_.obit_fast_fails;
    throw ProcFailedError(wr, "one-sided peer (world rank " +
                                  std::to_string(wr) +
                                  ") has a published obituary");
  }

  ++peer.attempts;
  if (peer.attempts > cfg_.recovery_max_attempts) {
    abandon_target(target);
    if (eng.ft_armed()) {
      if (kvs.post_obit(wr)) pmi::wake_all_ranks(pctx);
      throw ProcFailedError(wr, "one-sided retry budget exhausted toward "
                                "world rank " +
                                    std::to_string(wr));
    }
    throw_dead(target, "window:retry-budget");
  }

  sim::Tick backoff = cfg_.recovery_backoff;
  for (int i = 1; i < peer.attempts; ++i) {
    backoff = std::min<sim::Tick>(backoff * 2, cfg_.recovery_backoff_cap);
  }
  co_await pctx.sim().delay(backoff);

  // Tear the QP down, wait until nothing of it can touch memory later,
  // then consume its flushed CQEs so they cannot alias the replay.
  peer.qp->close();
  co_await peer.qp->quiesce();
  drain_cq();
  peer.failed = false;  // the drained error CQEs are what we are recovering
  peer.qp->reset();

  // Replay the target's journal in original post order under fresh wr_ids.
  // Safe: a killed WQE never reached the responder, and everything
  // journalled (puts, gets, absolute-value notify flags) is idempotent
  // even if its original delivery did land and only the CQE was lost.
  std::vector<OpRecord> replays;
  for (auto it = journal_.begin(); it != journal_.end();) {
    if (it->second.target == target) {
      replays.push_back(std::move(it->second));
      it = journal_.erase(it);
    } else {
      ++it;
    }
  }
  peer.outstanding -= std::min<std::uint64_t>(peer.outstanding,
                                              replays.size());
  for (OpRecord& rec : replays) {
    ++stats_.replays;
    stats_.replayed_bytes += rec.len;
    post_op(std::move(rec));
  }
  ++stats_.recoveries;
  progress_ = true;  // a completed reset counts as episode progress
}

void Window::abandon_target(int target) {
  Peer& peer = peers_[static_cast<std::size_t>(target)];
  for (auto it = journal_.begin(); it != journal_.end();) {
    if (it->second.target != target) {
      ++it;
      continue;
    }
    if (it->second.mr != nullptr) release_q_.push_back(it->second.mr);
    if (it->second.inline_slot >= 0) {
      slot_busy_[static_cast<std::size_t>(it->second.inline_slot)] = 0;
    }
    if (it->second.notify_slot >= 0) {
      notify_busy_[static_cast<std::size_t>(it->second.notify_slot)] = 0;
    }
    it = journal_.erase(it);
  }
  peer.outstanding = 0;
  peer.failed = false;
}

sim::Task<void> Window::drain_releases() {
  // FIFO so RegCache sees releases in pin order (matches the historical
  // fence teardown).
  std::size_t i = 0;
  while (i < release_q_.size()) {
    ib::MemoryRegion* mr = release_q_[i++];
    co_await cache_->release(mr);
  }
  release_q_.clear();
}

void Window::throw_dead(int target, const char* stage) {
  rdmach::RecoverySnapshot snap;
  snap.stage = stage;
  snap.epoch = stats_.recoveries;
  if (target >= 0) {
    const Peer& peer = peers_[static_cast<std::size_t>(target)];
    snap.attempts = peer.attempts;
    snap.journal_outstanding = peer.outstanding;
  } else {
    snap.journal_outstanding = journal_.size();
  }
  throw rdmach::ChannelError(
      target, std::string("one-sided epoch gave up (") + stage + ")",
      rdmach::ChannelError::kDead, std::move(snap));
}

// ---- epochs -----------------------------------------------------------------

sim::Task<void> Window::flush(int target) {
  ++stats_.flushes;
  note_rma(rdmach::RmaOp::kFlush);
  if (target == comm_->rank()) co_return;  // self ops complete synchronously
  ft_entry(target);
  co_await drain_target(target);
  co_await drain_releases();
}

sim::Task<void> Window::flush_all() {
  ++stats_.flushes;
  note_rma(rdmach::RmaOp::kFlush);
  for (int r = 0; r < static_cast<int>(peers_.size()); ++r) {
    if (peers_[static_cast<std::size_t>(r)].outstanding > 0) ft_entry(r);
  }
  co_await drain_target(-1);
  co_await drain_releases();
}

sim::Task<void> Window::flush_local(int target) { return flush(target); }

sim::Task<void> Window::flush_local_all() { return flush_all(); }

sim::Task<void> Window::unlock_all() {
  co_await flush_all();
  locked_all_ = false;
}

sim::Task<void> Window::fence() {
  // Local completion of everything issued this epoch...
  co_await drain_target(-1);
  co_await drain_releases();
  // ...then the collective epoch boundary.  RC ordering means a write
  // whose CQE we have seen is already visible at the target, so the
  // barrier is sufficient for the fence semantics.
  co_await comm_->barrier();
}

// ---- fault-tolerance entry checks -------------------------------------------

void Window::ft_entry(int target) {
  Engine& eng = comm_->engine();
  if (!eng.ft_armed()) return;
  pmi::Kvs& kvs = *eng.ctx().kvs;
  if (kvs.obit_version() == 0) return;
  const int wr = comm_->world_rank(target);
  if (kvs.is_dead(wr)) {
    ++stats_.obit_fast_fails;
    throw ProcFailedError(
        wr, "one-sided operation toward dead rank (world " +
                std::to_string(wr) + ")");
  }
}

void Window::note_rma(rdmach::RmaOp op) {
  comm_->engine().channel().note_rma(op);
}

}  // namespace mpi
