#include "mpi/window.hpp"

#include <algorithm>
#include <cstring>

#include "ib/hca.hpp"
#include "ib/node.hpp"

namespace mpi {

Window::Window(Communicator& comm, void* base, std::size_t bytes)
    : comm_(&comm), base_(static_cast<std::byte*>(base)), bytes_(bytes) {}

Window::~Window() = default;

sim::Task<std::unique_ptr<Window>> Window::create(Communicator& comm,
                                                  void* base,
                                                  std::size_t bytes) {
  auto win = std::unique_ptr<Window>(new Window(comm, base, bytes));
  co_await win->init();
  co_return win;
}

sim::Task<void> Window::init() {
  Engine& eng = comm_->engine();
  pmi::Context& ctx = eng.ctx();
  pmi::Kvs& kvs = *ctx.kvs;
  const int p = comm_->size();
  const int me = comm_->rank();

  // All members agree on a fresh window id (same trick as comm split).
  std::uint64_t local_seq = ++win_seq_counter();
  std::uint64_t agreed = 0;
  co_await comm_->allreduce(&local_seq, &agreed, 1, Datatype::kLong,
                            Op::kMax);
  win_id_ = (comm_->context() << 20) | agreed;

  pd_ = &ctx.node->hca().alloc_pd();
  cq_ = &ctx.node->hca().create_cq("win" + std::to_string(win_id_) + ".cq");
  mr_ = co_await pd_->register_memory(base_, bytes_, ib::kAllAccess);
  cache_ = std::make_unique<rdmach::RegCache>(*pd_, 64u << 20, true);

  auto key = [this](int from, int to, const char* what) {
    return "win:" + std::to_string(win_id_) + ":" + std::to_string(from) +
           ":" + std::to_string(to) + ":" + what;
  };

  peers_.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    ib::QueuePair& qp = ctx.node->hca().create_qp(*pd_, *cq_, *cq_);
    peers_[static_cast<std::size_t>(r)].qp = &qp;
    kvs.put_u64(key(me, r, "qpn"), qp.qp_num());
  }
  kvs.put_u64(key(me, -1, "addr"), reinterpret_cast<std::uint64_t>(base_));
  kvs.put_u64(key(me, -1, "rkey"), mr_->rkey());

  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    Peer& peer = peers_[static_cast<std::size_t>(r)];
    peer.raddr = co_await kvs.get_u64(key(r, -1, "addr"));
    peer.rkey =
        static_cast<std::uint32_t>(co_await kvs.get_u64(key(r, -1, "rkey")));
    if (me < r) {
      const auto peer_qpn = static_cast<std::uint32_t>(
          co_await kvs.get_u64(key(r, me, "qpn")));
      ib::QueuePair* remote = ctx.fabric().find_qp(peer_qpn);
      peer.qp->connect(*remote);
    }
  }
  co_await comm_->barrier();
}

std::uint64_t& Window::win_seq_counter() {
  static std::uint64_t counter = 0;
  return counter;
}

void Window::drain_cq() {
  while (auto wc = cq_->poll()) completed_[wc->wr_id] = *wc;
}

sim::Task<ib::Wc> Window::await_wc(std::uint64_t wr_id) {
  for (;;) {
    drain_cq();
    auto it = completed_.find(wr_id);
    if (it != completed_.end()) {
      ib::Wc wc = it->second;
      completed_.erase(it);
      if (wc.status != ib::WcStatus::kSuccess) {
        throw MpiError(std::string("one-sided operation failed: ") +
                       ib::to_string(wc.status));
      }
      co_return wc;
    }
    co_await cq_->wait_nonempty();
  }
}

void Window::check_range(int target, std::size_t disp,
                         std::size_t len) const {
  (void)target;
  if (disp + len > bytes_) {
    throw MpiError("one-sided access outside the window");
  }
}

std::uint64_t Window::post_rma(int target, ib::Opcode op, void* local,
                               std::size_t len, std::size_t disp,
                               std::uint64_t atomic_arg,
                               std::uint64_t atomic_swap) {
  Peer& peer = peers_.at(static_cast<std::size_t>(target));
  const std::uint64_t wr_id = ++wr_seq_;
  ib::SendWr wr;
  wr.wr_id = wr_id;
  wr.opcode = op;
  wr.remote_addr = peer.raddr + disp;
  wr.rkey = peer.rkey;
  wr.signaled = true;
  wr.atomic_arg = atomic_arg;
  wr.atomic_swap = atomic_swap;
  // The SGE lkey is filled by the caller via pinned_ registration.
  wr.sgl = {ib::Sge{static_cast<std::byte*>(local), len,
                    pinned_.back().second->lkey()}};
  peer.qp->post_send(std::move(wr));
  pending_.push_back(wr_id);
  return wr_id;
}

sim::Task<void> Window::put(const void* origin, int count, Datatype d,
                            int target, std::size_t disp) {
  const std::size_t len = static_cast<std::size_t>(count) * datatype_size(d);
  check_range(target, disp, len);
  if (target == comm_->rank()) {
    co_await comm_->engine().ctx().node->copy(base_ + disp, origin, len);
    co_return;
  }
  ib::MemoryRegion* mr = co_await cache_->acquire(origin, len);
  pinned_.emplace_back(wr_seq_ + 1, mr);
  post_rma(target, ib::Opcode::kRdmaWrite, const_cast<void*>(origin), len,
           disp);
}

sim::Task<void> Window::get(void* origin, int count, Datatype d, int target,
                            std::size_t disp) {
  const std::size_t len = static_cast<std::size_t>(count) * datatype_size(d);
  check_range(target, disp, len);
  if (target == comm_->rank()) {
    co_await comm_->engine().ctx().node->copy(origin, base_ + disp, len);
    co_return;
  }
  ib::MemoryRegion* mr = co_await cache_->acquire(origin, len);
  pinned_.emplace_back(wr_seq_ + 1, mr);
  post_rma(target, ib::Opcode::kRdmaRead, origin, len, disp);
}

sim::Task<void> Window::accumulate(const void* origin, int count, Datatype d,
                                   Op op, int target, std::size_t disp) {
  const std::size_t len = static_cast<std::size_t>(count) * datatype_size(d);
  check_range(target, disp, len);
  if (target == comm_->rank()) {
    apply_op(op, d, origin, base_ + disp, count);
    co_return;
  }
  // Read-modify-write emulation: fetch the target range, combine locally,
  // write it back -- fully synchronous so the epoch restriction is the
  // only correctness caveat.
  std::vector<std::byte> tmp(len);
  ib::MemoryRegion* mr = co_await cache_->acquire(tmp.data(), len);
  pinned_.emplace_back(wr_seq_ + 1, mr);
  const std::uint64_t rd = post_rma(target, ib::Opcode::kRdmaRead, tmp.data(),
                                    len, disp);
  (void)co_await await_wc(rd);
  apply_op(op, d, origin, tmp.data(), count);
  pinned_.emplace_back(wr_seq_ + 1, mr);
  const std::uint64_t wr = post_rma(target, ib::Opcode::kRdmaWrite,
                                    tmp.data(), len, disp);
  (void)co_await await_wc(wr);
  // tmp dies here: both operations completed, safe to unpin.
  co_await cache_->release(mr);
  co_await cache_->release(mr);
  pending_.erase(std::remove(pending_.begin(), pending_.end(), rd),
                 pending_.end());
  pending_.erase(std::remove(pending_.begin(), pending_.end(), wr),
                 pending_.end());
  pinned_.erase(std::remove_if(pinned_.begin(), pinned_.end(),
                               [mr](const auto& p) { return p.second == mr; }),
                pinned_.end());
}

sim::Task<std::int64_t> Window::fetch_add(int target, std::size_t disp,
                                          std::int64_t value) {
  check_range(target, disp, 8);
  if (target == comm_->rank()) {
    auto* p = reinterpret_cast<std::int64_t*>(base_ + disp);
    const std::int64_t old = *p;
    *p += value;
    co_return old;
  }
  std::uint64_t old = 0;
  ib::MemoryRegion* mr = co_await cache_->acquire(&old, 8);
  pinned_.emplace_back(wr_seq_ + 1, mr);
  const std::uint64_t id =
      post_rma(target, ib::Opcode::kFetchAdd, &old, 8, disp,
               static_cast<std::uint64_t>(value));
  (void)co_await await_wc(id);
  co_await cache_->release(mr);
  pending_.erase(std::remove(pending_.begin(), pending_.end(), id),
                 pending_.end());
  pinned_.erase(std::remove_if(pinned_.begin(), pinned_.end(),
                               [mr](const auto& p) { return p.second == mr; }),
                pinned_.end());
  co_return static_cast<std::int64_t>(old);
}

sim::Task<void> Window::fence() {
  // Local completion of everything issued this epoch...
  for (std::uint64_t id : pending_) {
    (void)co_await await_wc(id);
  }
  pending_.clear();
  for (auto& [id, mr] : pinned_) {
    co_await cache_->release(mr);
  }
  pinned_.clear();
  // ...then the collective epoch boundary.  RC ordering means a write
  // whose CQE we have seen is already visible at the target, so the
  // barrier is sufficient for the fence semantics.
  co_await comm_->barrier();
}

}  // namespace mpi
