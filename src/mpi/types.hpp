// MPI-1 value types: datatypes, reduction operations, status, wildcards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
/// MPI_PROC_NULL: sends/receives to it complete immediately with no data.
inline constexpr int kProcNull = -2;

enum class Datatype : std::uint8_t {
  kByte,
  kChar,
  kInt,
  kLong,
  kFloat,
  kDouble,
  kDoubleInt,  // {double, int} pairs, for kMaxLoc / kMinLoc
};

/// Element type for kDoubleInt reductions.
struct DoubleInt {
  double value;
  std::int32_t index;
};

constexpr std::size_t datatype_size(Datatype d) {
  switch (d) {
    case Datatype::kByte:
    case Datatype::kChar:
      return 1;
    case Datatype::kInt:
      return 4;
    case Datatype::kFloat:
      return 4;
    case Datatype::kLong:
      return 8;
    case Datatype::kDouble:
      return 8;
    case Datatype::kDoubleInt:
      return sizeof(DoubleInt);
  }
  return 0;
}

enum class Op : std::uint8_t {
  kSum,
  kProd,
  kMax,
  kMin,
  kLand,
  kLor,
  kBand,
  kBor,
  kMaxLoc,
  kMinLoc,
};

/// Applies `inout[i] = inout[i] OP in[i]` elementwise.
void apply_op(Op op, Datatype d, const void* in, void* inout, int count);

struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;

  int count(Datatype d) const {
    return static_cast<int>(bytes / datatype_size(d));
  }
};

class MpiError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace mpi
