// MPI-1 value types: datatypes, reduction operations, status, wildcards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
/// MPI_PROC_NULL: sends/receives to it complete immediately with no data.
inline constexpr int kProcNull = -2;

enum class Datatype : std::uint8_t {
  kByte,
  kChar,
  kInt,
  kLong,
  kFloat,
  kDouble,
  kDoubleInt,  // {double, int} pairs, for kMaxLoc / kMinLoc
};

/// Element type for kDoubleInt reductions.
struct DoubleInt {
  double value;
  std::int32_t index;
};

constexpr std::size_t datatype_size(Datatype d) {
  switch (d) {
    case Datatype::kByte:
    case Datatype::kChar:
      return 1;
    case Datatype::kInt:
      return 4;
    case Datatype::kFloat:
      return 4;
    case Datatype::kLong:
      return 8;
    case Datatype::kDouble:
      return 8;
    case Datatype::kDoubleInt:
      return sizeof(DoubleInt);
  }
  return 0;
}

enum class Op : std::uint8_t {
  kSum,
  kProd,
  kMax,
  kMin,
  kLand,
  kLor,
  kBand,
  kBor,
  kMaxLoc,
  kMinLoc,
};

/// Applies `inout[i] = inout[i] OP in[i]` elementwise.
void apply_op(Op op, Datatype d, const void* in, void* inout, int count);

struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;

  int count(Datatype d) const {
    return static_cast<int>(bytes / datatype_size(d));
  }
};

class MpiError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// ULFM-style MPI_ERR_PROC_FAILED: the operation involved a rank with a
/// published obituary (or the transport convicted it mid-operation).  The
/// communicator stays usable toward live members; Communicator::shrink()
/// builds a clean replacement.
class ProcFailedError : public MpiError {
 public:
  ProcFailedError(int world_rank, const std::string& what)
      : MpiError(what), world_rank_(world_rank) {}
  /// World rank of the failed process (-1 if unattributable).
  int world_rank() const noexcept { return world_rank_; }

 private:
  int world_rank_;
};

/// ULFM-style MPI_ERR_REVOKED: the communicator was revoked (by any member,
/// typically after it observed a process failure); every pending and future
/// operation on it fails with this error so all members reach the
/// revoke -> agree -> shrink recovery path instead of hanging.
class RevokedError : public MpiError {
 public:
  RevokedError(std::uint64_t context, const std::string& what)
      : MpiError(what), context_(context) {}
  std::uint64_t context() const noexcept { return context_; }

 private:
  std::uint64_t context_;
};

}  // namespace mpi
