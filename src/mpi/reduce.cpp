#include <algorithm>

#include "mpi/types.hpp"

namespace mpi {

namespace {

template <class T>
void apply_arith(Op op, const T* in, T* inout, int count) {
  switch (op) {
    case Op::kSum:
      for (int i = 0; i < count; ++i) inout[i] = inout[i] + in[i];
      return;
    case Op::kProd:
      for (int i = 0; i < count; ++i) inout[i] = inout[i] * in[i];
      return;
    case Op::kMax:
      for (int i = 0; i < count; ++i) inout[i] = std::max(inout[i], in[i]);
      return;
    case Op::kMin:
      for (int i = 0; i < count; ++i) inout[i] = std::min(inout[i], in[i]);
      return;
    default:
      break;
  }
  throw MpiError("reduction op not defined for this datatype");
}

template <class T>
void apply_logical(Op op, const T* in, T* inout, int count) {
  switch (op) {
    case Op::kLand:
      for (int i = 0; i < count; ++i) inout[i] = (inout[i] && in[i]) ? 1 : 0;
      return;
    case Op::kLor:
      for (int i = 0; i < count; ++i) inout[i] = (inout[i] || in[i]) ? 1 : 0;
      return;
    case Op::kBand:
      for (int i = 0; i < count; ++i) inout[i] = inout[i] & in[i];
      return;
    case Op::kBor:
      for (int i = 0; i < count; ++i) inout[i] = inout[i] | in[i];
      return;
    default:
      apply_arith(op, in, inout, count);
      return;
  }
}

void apply_loc(Op op, const DoubleInt* in, DoubleInt* inout, int count) {
  for (int i = 0; i < count; ++i) {
    const bool take =
        op == Op::kMaxLoc
            ? (in[i].value > inout[i].value ||
               (in[i].value == inout[i].value && in[i].index < inout[i].index))
            : (in[i].value < inout[i].value ||
               (in[i].value == inout[i].value && in[i].index < inout[i].index));
    if (take) inout[i] = in[i];
  }
}

}  // namespace

void apply_op(Op op, Datatype d, const void* in, void* inout, int count) {
  switch (d) {
    case Datatype::kByte:
    case Datatype::kChar:
      apply_logical(op, static_cast<const std::uint8_t*>(in),
                    static_cast<std::uint8_t*>(inout), count);
      return;
    case Datatype::kInt:
      apply_logical(op, static_cast<const std::int32_t*>(in),
                    static_cast<std::int32_t*>(inout), count);
      return;
    case Datatype::kLong:
      apply_logical(op, static_cast<const std::int64_t*>(in),
                    static_cast<std::int64_t*>(inout), count);
      return;
    case Datatype::kFloat:
      apply_arith(op, static_cast<const float*>(in), static_cast<float*>(inout),
                  count);
      return;
    case Datatype::kDouble:
      apply_arith(op, static_cast<const double*>(in),
                  static_cast<double*>(inout), count);
      return;
    case Datatype::kDoubleInt:
      if (op != Op::kMaxLoc && op != Op::kMinLoc) {
        throw MpiError("kDoubleInt supports only kMaxLoc/kMinLoc");
      }
      apply_loc(op, static_cast<const DoubleInt*>(in),
                static_cast<DoubleInt*>(inout), count);
      return;
  }
  throw MpiError("unknown datatype in reduction");
}

}  // namespace mpi
