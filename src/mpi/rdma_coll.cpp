#include "mpi/rdma_coll.hpp"

#include <cstring>

#include "ib/hca.hpp"
#include "ib/node.hpp"

namespace mpi {

namespace {

int ceil_log2(int p) {
  int r = 0;
  while ((1 << r) < p) ++r;
  return r;
}

bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace

std::uint64_t& RdmaColl::coll_seq_counter() {
  static std::uint64_t counter = 0;
  return counter;
}

RdmaColl::RdmaColl(Communicator& comm, std::size_t max_payload)
    : comm_(&comm), max_payload_(max_payload) {}

RdmaColl::~RdmaColl() = default;

sim::Task<std::unique_ptr<RdmaColl>> RdmaColl::create(
    Communicator& comm, std::size_t max_payload) {
  auto coll =
      std::unique_ptr<RdmaColl>(new RdmaColl(comm, max_payload));
  co_await coll->init();
  co_return coll;
}

sim::Task<void> RdmaColl::init() {
  Engine& eng = comm_->engine();
  pmi::Context& ctx = eng.ctx();
  pmi::Kvs& kvs = *ctx.kvs;
  const int p = comm_->size();
  const int me = comm_->rank();
  rounds_ = ceil_log2(p) + 1;

  std::uint64_t local_seq = ++coll_seq_counter();
  std::uint64_t agreed = 0;
  co_await comm_->allreduce(&local_seq, &agreed, 1, Datatype::kLong, Op::kMax);
  id_ = (comm_->context() << 24) | agreed;

  pd_ = &ctx.node->hca().alloc_pd();
  cq_ = &ctx.node->hca().create_cq("coll" + std::to_string(id_) + ".cq");
  recv_.assign(static_cast<std::size_t>(rounds_) * kSlotDepth * slot_stride(),
               std::byte{0});
  staging_.assign(
      static_cast<std::size_t>(rounds_) * kSlotDepth * slot_stride(),
      std::byte{0});
  recv_mr_ =
      co_await pd_->register_memory(recv_.data(), recv_.size(), ib::kAllAccess);
  staging_mr_ = co_await pd_->register_memory(staging_.data(),
                                              staging_.size(), ib::kAllAccess);

  auto key = [this](int from, int to, const char* what) {
    return "coll:" + std::to_string(id_) + ":" + std::to_string(from) + ":" +
           std::to_string(to) + ":" + what;
  };

  peers_.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    ib::QueuePair& qp = ctx.node->hca().create_qp(*pd_, *cq_, *cq_);
    peers_[static_cast<std::size_t>(r)].qp = &qp;
    kvs.put_u64(key(me, r, "qpn"), qp.qp_num());
  }
  kvs.put_u64(key(me, -1, "addr"),
              reinterpret_cast<std::uint64_t>(recv_.data()));
  kvs.put_u64(key(me, -1, "rkey"), recv_mr_->rkey());

  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    Peer& peer = peers_[static_cast<std::size_t>(r)];
    peer.raddr = co_await kvs.get_u64(key(r, -1, "addr"));
    peer.rkey =
        static_cast<std::uint32_t>(co_await kvs.get_u64(key(r, -1, "rkey")));
    if (me < r) {
      const auto peer_qpn = static_cast<std::uint32_t>(
          co_await kvs.get_u64(key(r, me, "qpn")));
      peer.qp->connect(*ctx.fabric().find_qp(peer_qpn));
    }
  }
  co_await comm_->barrier();
}

// Slot-reuse safety: a write for operation N+k lands in the same slot as
// operation N only when k >= kSlotDepth.  For barrier/allreduce, reaching
// operation N+1 requires the partner to have *finished* operation N (the
// exchange is symmetric), so a lag of kSlotDepth operations is impossible.
// bcast is one-directional -- the root returns without any sign the
// children consumed their slots -- so it resynchronizes with a barrier
// every kSlotDepth/2 operations, bounding the lag the same way.
sim::Task<void> RdmaColl::write_slot(int peer, int round, const void* data,
                                     std::size_t bytes, std::uint64_t seq) {
  // Assemble [flag | bytes | payload] in the registered staging slot and
  // push it with one RDMA write; the slot lands atomically, so the flag
  // doubles as both polling flags of the piggyback scheme.
  std::byte* s = staging_.data() + slot_index(round, seq);
  auto* hdr = reinterpret_cast<Slot*>(s);
  hdr->flag = seq;
  hdr->bytes = bytes;
  if (bytes > 0) {
    co_await comm_->engine().ctx().node->copy(s + sizeof(Slot), data, bytes);
  }
  Peer& pr = peers_.at(static_cast<std::size_t>(peer));
  pr.qp->post_send(ib::SendWr{
      ++wr_seq_,
      ib::Opcode::kRdmaWrite,
      {ib::Sge{s, sizeof(Slot) + bytes, staging_mr_->lkey()}},
      pr.raddr + slot_index(round, seq),
      pr.rkey,
      /*signaled=*/false});
  ++rdma_ops_;
}

sim::Task<const std::byte*> RdmaColl::wait_slot(int round,
                                                std::uint64_t seq) {
  ib::Node& node = *comm_->engine().ctx().node;
  Slot* slot = my_slot(round, seq);
  while (slot->flag != seq) {
    co_await node.dma_arrival().wait();
  }
  co_return reinterpret_cast<const std::byte*>(slot) + sizeof(Slot);
}

sim::Task<void> RdmaColl::barrier() {
  const int p = comm_->size();
  if (p == 1) co_return;
  const std::uint64_t seq = ++seq_;
  const int me = comm_->rank();
  int round = 0;
  for (int k = 1; k < p; k <<= 1, ++round) {
    co_await write_slot((me + k) % p, round, nullptr, 0, seq);
    (void)co_await wait_slot(round, seq);
  }
}

sim::Task<void> RdmaColl::bcast(void* buf, int count, Datatype d, int root) {
  const int p = comm_->size();
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype_size(d);
  if (p == 1) co_return;
  if (bytes > max_payload_) {  // payload exceeds the slot: fall back
    co_await comm_->bcast(buf, count, d, root);
    co_return;
  }
  // Bound receiver lag (see write_slot comment).
  if (seq_ % (kSlotDepth / 2) == 0) co_await barrier();
  const std::uint64_t seq = ++seq_;
  const int me = comm_->rank();
  const int vr = (me - root + p) % p;
  int mask = 1;
  int recv_round = -1;
  while (mask < p) {
    if (vr & mask) {
      recv_round = ceil_log2(mask + 1) - 1;
      const std::byte* payload = co_await wait_slot(recv_round, seq);
      std::memcpy(buf, payload, bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) {
      const int child = (vr + mask + root) % p;
      const int round = ceil_log2(mask + 1) - 1;
      co_await write_slot(child, round, buf, bytes, seq);
    }
    mask >>= 1;
  }
}

sim::Task<void> RdmaColl::allreduce(const void* sendbuf, void* recvbuf,
                                    int count, Datatype d, Op op) {
  const int p = comm_->size();
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype_size(d);
  std::memcpy(recvbuf, sendbuf, bytes);
  if (p == 1) co_return;
  if (!is_pow2(p) || bytes > max_payload_) {
    co_await comm_->allreduce(sendbuf, recvbuf, count, d, op);
    co_return;
  }
  const std::uint64_t seq = ++seq_;
  const int me = comm_->rank();
  int round = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++round) {
    const int partner = me ^ mask;
    co_await write_slot(partner, round, recvbuf, bytes, seq);
    const std::byte* payload = co_await wait_slot(round, seq);
    apply_op(op, d, payload, recvbuf, count);
  }
}

}  // namespace mpi
