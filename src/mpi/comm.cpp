#include "mpi/comm.hpp"

#include "mpi/runtime.hpp"

namespace mpi {

sim::Task<Request> Communicator::isend_bytes(const void* buf,
                                             std::size_t bytes, int dst,
                                             int tag, std::uint64_t ctx) {
  ft_check_peer(dst);
  const int dst_world = dst == kProcNull ? kProcNull : world_rank(dst);
  co_return co_await eng_->isend(buf, bytes, dst_world, my_rank_, tag, ctx);
}

sim::Task<Request> Communicator::irecv_bytes(void* buf, std::size_t bytes,
                                             int src, int tag,
                                             std::uint64_t ctx) {
  ft_check_peer(src);
  co_return co_await eng_->irecv(buf, bytes, src, tag, ctx);
}

sim::Task<Request> Communicator::isend(const void* buf, int count, Datatype d,
                                       int dst, int tag) {
  co_return co_await isend_bytes(
      buf, static_cast<std::size_t>(count) * datatype_size(d), dst, tag,
      context_);
}

sim::Task<Request> Communicator::irecv(void* buf, int count, Datatype d,
                                       int src, int tag) {
  co_return co_await irecv_bytes(
      buf, static_cast<std::size_t>(count) * datatype_size(d), src, tag,
      context_);
}

sim::Task<void> Communicator::send(const void* buf, int count, Datatype d,
                                   int dst, int tag) {
  Request r = co_await isend(buf, count, d, dst, tag);
  co_await eng_->wait(r);
}

sim::Task<void> Communicator::recv(void* buf, int count, Datatype d, int src,
                                   int tag, Status* status) {
  Request r = co_await irecv(buf, count, d, src, tag);
  co_await eng_->wait(r);
  if (status != nullptr) *status = r.status();
}

sim::Task<void> Communicator::sendrecv(const void* sbuf, int scount,
                                       Datatype sd, int dst, int stag,
                                       void* rbuf, int rcount, Datatype rd,
                                       int src, int rtag, Status* status) {
  Request rs = co_await isend(sbuf, scount, sd, dst, stag);
  Request rr = co_await irecv(rbuf, rcount, rd, src, rtag);
  const Request both[2] = {rs, rr};
  co_await eng_->wait_all(both);
  if (status != nullptr) *status = rr.status();
}

sim::Task<void> Communicator::sendrecv_bytes(const void* sbuf,
                                             std::size_t sbytes, int dst,
                                             void* rbuf, std::size_t rbytes,
                                             int src, int tag,
                                             std::uint64_t ctx) {
  Request rs = co_await isend_bytes(sbuf, sbytes, dst, tag, ctx);
  Request rr = co_await irecv_bytes(rbuf, rbytes, src, tag, ctx);
  const Request both[2] = {rs, rr};
  co_await eng_->wait_all(both);
}

sim::Task<void> Communicator::send_typed(const void* buf, int count,
                                         const TypeLayout& layout, int dst,
                                         int tag) {
  const std::size_t bytes = layout.size() * static_cast<std::size_t>(count);
  std::vector<std::byte> wire(bytes);
  layout.pack(buf, count, wire.data());
  // The pack is a real gather; charge it like any other copy.
  co_await eng_->ctx().node->bus().transfer(
      static_cast<std::int64_t>(2 * bytes));
  Request r = co_await isend_bytes(wire.data(), bytes, dst, tag, context_);
  co_await eng_->wait(r);
}

sim::Task<void> Communicator::recv_typed(void* buf, int count,
                                         const TypeLayout& layout, int src,
                                         int tag, Status* status) {
  const std::size_t bytes = layout.size() * static_cast<std::size_t>(count);
  std::vector<std::byte> wire(bytes);
  Request r = co_await irecv_bytes(wire.data(), bytes, src, tag, context_);
  co_await eng_->wait(r);
  layout.unpack(wire.data(), count, buf);
  co_await eng_->ctx().node->bus().transfer(
      static_cast<std::int64_t>(2 * bytes));
  if (status != nullptr) *status = r.status();
}

sim::Task<Communicator*> Communicator::split(int color, int key) {
  // Gather (color, key) from everyone, then all members deterministically
  // compute the subgroups.  The new context id is agreed by max-reduction
  // of the runtime counters; disjoint subgroups may share it safely because
  // messages are routed by world rank.
  const int p = size();
  struct Entry {
    int color, key, rank;
  };
  std::vector<Entry> entries(static_cast<std::size_t>(p));
  const Entry mine{color, key, my_rank_};
  co_await allgather(&mine, static_cast<int>(sizeof(Entry)), entries.data(),
                     Datatype::kByte);

  std::uint64_t next_ctx = rt_->peek_next_context();
  std::uint64_t agreed = 0;
  co_await allreduce(&next_ctx, &agreed, 1, Datatype::kLong, Op::kMax);
  rt_->bump_next_context(agreed + 2);

  if (color < 0) co_return nullptr;  // MPI_UNDEFINED

  std::vector<Entry> members;
  for (const Entry& e : entries) {
    if (e.color == color) members.push_back(e);
  }
  std::stable_sort(members.begin(), members.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.key != b.key ? a.key < b.key : a.rank < b.rank;
                   });
  std::vector<int> group;
  int my_new_rank = -1;
  for (const Entry& e : members) {
    if (e.rank == my_rank_) my_new_rank = static_cast<int>(group.size());
    group.push_back(world_rank(e.rank));
  }
  co_return &rt_->adopt_comm(std::move(group), my_new_rank, agreed);
}

}  // namespace mpi
