// RDMA-accelerated collectives -- the paper's third future-work item ("we
// are also working on how to support efficient collective communication on
// top of InfiniBand").
//
// The point-to-point collectives in collectives.cpp pay the full MPI stack
// (matching, request management, channel framing) on every hop.  This
// module implements the latency-critical collectives *directly* on RDMA
// writes into pre-registered per-communicator buffers, the way the
// RDMA-collective literature of the era does (cf. the paper's citation
// [21], "Efficient Collective Operations using Remote Memory Operations"):
//
//   * barrier    -- dissemination, one 16-byte flag write per round
//   * bcast      -- binomial tree, payload + flag in one write per edge
//   * allreduce  -- recursive doubling with per-round exchange slots
//                   (power-of-two communicators; falls back to the
//                   point-to-point algorithm otherwise)
//
// Slot discipline: every rank owns one receive slot per algorithm round;
// a slot is stamped with the collective's sequence number, so reuse across
// operations needs no handshake (collectives are called in the same order
// by every member, which MPI already requires).
#pragma once

#include <memory>
#include <vector>

#include "ib/cq.hpp"
#include "ib/mr.hpp"
#include "ib/qp.hpp"
#include "mpi/comm.hpp"

namespace mpi {

class RdmaColl {
 public:
  /// Collective over `comm`.  `max_payload` bounds the per-slot payload
  /// (allreduce/bcast fall back to point-to-point beyond it).
  static sim::Task<std::unique_ptr<RdmaColl>> create(
      Communicator& comm, std::size_t max_payload = 4096);

  ~RdmaColl();
  RdmaColl(const RdmaColl&) = delete;
  RdmaColl& operator=(const RdmaColl&) = delete;

  sim::Task<void> barrier();
  sim::Task<void> bcast(void* buf, int count, Datatype d, int root);
  sim::Task<void> allreduce(const void* sendbuf, void* recvbuf, int count,
                            Datatype d, Op op);

  std::uint64_t rdma_ops() const noexcept { return rdma_ops_; }

 private:
  struct Slot {
    std::uint64_t flag = 0;   // sequence stamp; written last semantically
    std::uint64_t bytes = 0;  // valid payload length
    // payload follows
  };

  struct Peer {
    ib::QueuePair* qp = nullptr;
    std::uint64_t raddr = 0;  // peer's slot array base
    std::uint32_t rkey = 0;
  };

  RdmaColl(Communicator& comm, std::size_t max_payload);
  sim::Task<void> init();

  /// Slots are rotated kSlotDepth deep per round so an in-flight write for
  /// operation N+k never clobbers a slot a lagging peer has not read yet
  /// (see the reuse analysis in rdma_coll.cpp).
  static constexpr int kSlotDepth = 8;

  std::size_t slot_stride() const noexcept {
    return sizeof(Slot) + max_payload_;
  }
  std::size_t slot_index(int round, std::uint64_t seq) const noexcept {
    return (static_cast<std::size_t>(round) * kSlotDepth +
            static_cast<std::size_t>(seq % kSlotDepth)) *
           slot_stride();
  }
  Slot* my_slot(int round, std::uint64_t seq) {
    return reinterpret_cast<Slot*>(recv_.data() + slot_index(round, seq));
  }

  /// RDMA-writes `bytes` of `data` (may be null for flag-only) stamped
  /// with `seq` into `peer`'s slot for `round`.
  sim::Task<void> write_slot(int peer, int round, const void* data,
                             std::size_t bytes, std::uint64_t seq);
  /// Polls (sleeping on dma_arrival) until my slot for `round` carries
  /// `seq`; returns its payload pointer.
  sim::Task<const std::byte*> wait_slot(int round, std::uint64_t seq);

  static std::uint64_t& coll_seq_counter();

  Communicator* comm_;
  std::size_t max_payload_;
  int rounds_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t seq_ = 0;

  ib::ProtectionDomain* pd_ = nullptr;
  ib::CompletionQueue* cq_ = nullptr;
  std::vector<std::byte> recv_;     // my slot array (peers write here)
  std::vector<std::byte> staging_;  // registered send-side assembly area
  ib::MemoryRegion* recv_mr_ = nullptr;
  ib::MemoryRegion* staging_mr_ = nullptr;
  std::vector<Peer> peers_;
  std::uint64_t wr_seq_ = 0;
  std::uint64_t rdma_ops_ = 0;
};

}  // namespace mpi
