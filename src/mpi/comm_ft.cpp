// ULFM-style fault tolerance: revoke / agree / shrink, and the entry
// checks that give collectives uniform-error semantics on a communicator
// with a dead member.
//
// All three recovery operations run over the PMI control plane (KVS board
// reads/writes plus deadline-bounded waits), never over the message plane:
// a protocol step can therefore always terminate even when the ranks it is
// waiting on are dead, by converting silence-past-deadline into an obituary
// conviction and moving on.  Agreement uses a lowest-live-rank leader with
// takeover: the first decision written wins (has+put with no suspension in
// between is atomic in the event simulation), so every survivor adopts the
// same value no matter how many leaders died before one succeeded.
#include <algorithm>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"

namespace mpi {

namespace {

/// How long a member may stay silent (no contribution / no decision) in an
/// FT protocol step before the waiters convict it as dead.  Generous against
/// collective call skew (microseconds to low milliseconds) and above the
/// channel recovery watchdog (50 ms), so the transport always gets the
/// first say on a conviction.
constexpr sim::Tick kFtDeadline = sim::usec(100'000);

std::string dead_key(int world) { return "ft:dead:" + std::to_string(world); }

}  // namespace

void Communicator::ft_check() const {
  if (!ft_on()) return;
  const pmi::Kvs& kvs = *eng_->ctx().kvs;
  if (kvs.mail_count("rvk") != 0 &&
      kvs.has("rvk:" + std::to_string(context_))) {
    throw RevokedError(context_, "communicator (context " +
                                     std::to_string(context_) + ") is revoked");
  }
  if (kvs.obit_version() == 0) return;
  for (const int w : group_) {
    if (kvs.is_dead(w)) {
      throw ProcFailedError(
          w, "collective on a communicator whose rank (world " +
                 std::to_string(w) + ") has a published obituary");
    }
  }
}

void Communicator::ft_check_peer(int r) const {
  if (!ft_on() || r == kProcNull) return;
  if (r == kAnySource) {
    ft_check();
    return;
  }
  const pmi::Kvs& kvs = *eng_->ctx().kvs;
  if (kvs.mail_count("rvk") != 0 &&
      kvs.has("rvk:" + std::to_string(context_))) {
    throw RevokedError(context_, "communicator (context " +
                                     std::to_string(context_) + ") is revoked");
  }
  const int w = world_rank(r);
  if (kvs.obit_version() != 0 && kvs.is_dead(w)) {
    throw ProcFailedError(w, "point-to-point with dead rank (world " +
                                 std::to_string(w) + ")");
  }
}

void Communicator::revoke() {
  if (!ft_on()) return;
  pmi::Kvs& kvs = *eng_->ctx().kvs;
  const std::string key = "rvk:" + std::to_string(context_);
  if (kvs.has(key)) return;  // idempotent: first revocation wins
  kvs.put(key, "1");
  kvs.put("rvk:" + std::to_string(coll_context()), "1");
  // One mailbox entry per revocation: the engine sweeps and the entry
  // checks use the mailbox size as a cheap change-generation.
  kvs.append("rvk", std::to_string(context_));
  pmi::wake_all_ranks(eng_->ctx());
}

bool Communicator::revoked() const {
  if (!ft_on()) return false;
  return eng_->ctx().kvs->has("rvk:" + std::to_string(context_));
}

std::vector<int> Communicator::failed_ranks() const {
  std::vector<int> out;
  if (!ft_on()) return out;
  const pmi::Kvs& kvs = *eng_->ctx().kvs;
  for (int r = 0; r < size(); ++r) {
    if (kvs.is_dead(world_rank(r))) out.push_back(r);
  }
  return out;
}

sim::Task<std::string> Communicator::ft_decide(std::string base,
                                               FtDecision kind) {
  pmi::Kvs& kvs = *eng_->ctx().kvs;
  const std::string key = base + ":d";
  for (;;) {
    int leader = -1;
    for (int r = 0; r < size(); ++r) {
      if (!kvs.is_dead(world_rank(r))) {
        leader = r;
        break;
      }
    }
    if (leader < 0) {
      throw MpiError("ft_decide: every member (including this one) has a "
                     "published obituary");
    }
    if (leader == my_rank_ && !kvs.has(key)) {
      kvs.put(key, kind == FtDecision::kAgree ? decide_agree(base)
                                              : decide_shrink(base));
      pmi::wake_all_ranks(eng_->ctx());
    }
    const int leader_world = world_rank(leader);
    const auto got = co_await kvs.get_unless_before(
        key, dead_key(leader_world), eng_->ctx().sim().now() + kFtDeadline);
    if (got) co_return *got;
    if (const std::string* v = kvs.find(key)) co_return *v;
    // No decision: either the leader's obituary aborted the wait (next live
    // member takes over on the next pass) or the leader went silent past
    // the deadline -- convict it so the protocol can move on.
    if (!kvs.is_dead(leader_world) && kvs.post_obit(leader_world)) {
      pmi::wake_all_ranks(eng_->ctx());
    }
  }
}

sim::Task<int> Communicator::agree(int flag) {
  if (!ft_on()) {
    // No failure detector: plain fault-intolerant AND-reduction.
    int out = 0;
    co_await allreduce(&flag, &out, 1, Datatype::kInt, Op::kBand);
    co_return out;
  }
  pmi::Kvs& kvs = *eng_->ctx().kvs;
  const std::uint64_t seq = ++agree_seq_;
  const std::string base =
      "agr:" + std::to_string(context_) + ":" + std::to_string(seq);
  kvs.put(base + ":c:" + std::to_string(my_rank_),
          std::to_string(flag & ~kAgreeFlagDead));

  // Gather: wait for each member's contribution, or learn (possibly by
  // convicting it) that the member is dead.  After this loop, every member
  // has either contributed or has a published obituary -- the decision
  // below is computed over a settled board.
  for (int r = 0; r < size(); ++r) {
    if (r == my_rank_) continue;
    const int w = world_rank(r);
    if (kvs.is_dead(w)) continue;
    const std::string ckey = base + ":c:" + std::to_string(r);
    const auto got = co_await kvs.get_unless_before(
        ckey, dead_key(w), eng_->ctx().sim().now() + kFtDeadline);
    if (got || kvs.has(ckey) || kvs.is_dead(w)) continue;
    if (kvs.post_obit(w)) pmi::wake_all_ranks(eng_->ctx());
  }

  const std::string decided = co_await ft_decide(base, FtDecision::kAgree);
  co_return std::stoi(decided);
}

std::string Communicator::decide_agree(const std::string& base) const {
  const pmi::Kvs& kvs = *eng_->ctx().kvs;
  int v = ~kAgreeFlagDead;  // AND identity over the value bits
  bool any_dead = false;
  for (int r = 0; r < size(); ++r) {
    if (const std::string* c = kvs.find(base + ":c:" + std::to_string(r))) {
      v &= std::stoi(*c);
    } else {
      any_dead = true;  // settled board: missing means dead
    }
    if (kvs.is_dead(world_rank(r))) any_dead = true;
  }
  if (any_dead) v |= kAgreeFlagDead;
  return std::to_string(v);
}

sim::Task<Communicator*> Communicator::shrink() {
  if (!ft_on()) {
    // No failure detector: nobody can be dead, so "shrink" is a plain
    // order-preserving duplicate.
    co_return co_await split(0, my_rank_);
  }
  pmi::Kvs& kvs = *eng_->ctx().kvs;
  const std::uint64_t seq = ++shrink_seq_;
  const std::string base =
      "shr:" + std::to_string(context_) + ":" + std::to_string(seq);
  // Contribution: this member's next-context watermark.  Members can
  // legitimately disagree (uneven split histories); the decision takes the
  // max, which is fresh for everyone.
  kvs.put(base + ":c:" + std::to_string(my_rank_),
          std::to_string(rt_->peek_next_context()));

  for (int r = 0; r < size(); ++r) {
    if (r == my_rank_) continue;
    const int w = world_rank(r);
    if (kvs.is_dead(w)) continue;
    const std::string ckey = base + ":c:" + std::to_string(r);
    const auto got = co_await kvs.get_unless_before(
        ckey, dead_key(w), eng_->ctx().sim().now() + kFtDeadline);
    if (got || kvs.has(ckey) || kvs.is_dead(w)) continue;
    if (kvs.post_obit(w)) pmi::wake_all_ranks(eng_->ctx());
  }

  const std::string decided = co_await ft_decide(base, FtDecision::kShrink);

  const std::size_t semi = decided.find(';');
  const std::uint64_t new_ctx = std::stoull(decided.substr(0, semi));
  rt_->bump_next_context(new_ctx + 2);
  std::vector<int> group;
  int my_new_rank = -1;
  for (std::size_t pos = semi + 1; pos < decided.size();) {
    std::size_t comma = decided.find(',', pos);
    if (comma == std::string::npos) comma = decided.size();
    const int w = std::stoi(decided.substr(pos, comma - pos));
    if (w == eng_->world_rank()) my_new_rank = static_cast<int>(group.size());
    group.push_back(w);
    pos = comma + 1;
  }
  if (my_new_rank < 0) co_return nullptr;  // convicted while shrinking
  co_return &rt_->adopt_comm(std::move(group), my_new_rank, new_ctx);
}

/// Decision: "<new context>;<world rank>,<world rank>,..." -- survivors in
/// old relative order, re-ranked densely.
std::string Communicator::decide_shrink(const std::string& base) const {
  const pmi::Kvs& kvs = *eng_->ctx().kvs;
  std::uint64_t ctx = 0;
  std::string survivors;
  for (int r = 0; r < size(); ++r) {
    const int w = world_rank(r);
    const std::string* c = kvs.find(base + ":c:" + std::to_string(r));
    if (c == nullptr || kvs.is_dead(w)) continue;
    ctx = std::max(ctx, static_cast<std::uint64_t>(std::stoull(*c)));
    if (!survivors.empty()) survivors += ',';
    survivors += std::to_string(w);
  }
  return std::to_string(ctx) + ';' + survivors;
}

}  // namespace mpi
