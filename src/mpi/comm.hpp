// Communicators and the typed MPI-1 API.
//
// The API is the MPI-1 subset the paper's evaluation needs (all of the NAS
// kernels run on it): blocking and nonblocking point-to-point with tag and
// source wildcards, sendrecv, and the standard collective set.  Calls are
// coroutines -- "blocking" means blocking in virtual time; nonblocking
// calls may still charge local CPU time (matching, local copies) but never
// wait on remote progress.
#pragma once

#include <span>
#include <vector>

#include "mpi/datatype.hpp"
#include "mpi/engine.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"

namespace mpi {

class Runtime;

class Communicator {
 public:
  int rank() const noexcept { return my_rank_; }
  int size() const noexcept { return static_cast<int>(group_.size()); }
  Engine& engine() const noexcept { return *eng_; }
  std::uint64_t context() const noexcept { return context_; }
  /// World rank of a communicator rank.
  int world_rank(int r) const { return group_.at(static_cast<std::size_t>(r)); }
  /// The comm-rank -> world-rank map.
  const std::vector<int>& group() const noexcept { return group_; }

  double wtime() const { return eng_->wtime(); }

  // ---- point-to-point -----------------------------------------------------
  sim::Task<Request> isend(const void* buf, int count, Datatype d, int dst,
                           int tag);
  sim::Task<Request> irecv(void* buf, int count, Datatype d, int src, int tag);
  sim::Task<void> send(const void* buf, int count, Datatype d, int dst,
                       int tag);
  sim::Task<void> recv(void* buf, int count, Datatype d, int src, int tag,
                       Status* status = nullptr);
  sim::Task<void> sendrecv(const void* sbuf, int scount, Datatype sd, int dst,
                           int stag, void* rbuf, int rcount, Datatype rd,
                           int src, int rtag, Status* status = nullptr);
  /// Derived-datatype transfers (MPI_Type_vector and friends): the data is
  /// packed through the dataloop engine into a contiguous wire format (a
  /// modelled copy on each side) and moved as bytes.
  sim::Task<void> send_typed(const void* buf, int count,
                             const TypeLayout& layout, int dst, int tag);
  sim::Task<void> recv_typed(void* buf, int count, const TypeLayout& layout,
                             int src, int tag, Status* status = nullptr);

  /// MPI_Probe / MPI_Iprobe: inspect a pending message's envelope without
  /// receiving it (probe blocks; iprobe is a single progress pass).
  sim::Task<Status> probe(int src, int tag) {
    return eng_->probe(src, tag, context_);
  }
  sim::Task<bool> iprobe(int src, int tag, Status* st = nullptr) {
    return eng_->iprobe(src, tag, context_, st);
  }
  sim::Task<void> wait(const Request& r) { return eng_->wait(r); }
  sim::Task<void> wait_all(std::span<const Request> rs) {
    return eng_->wait_all(rs);
  }
  sim::Task<bool> test(const Request& r) { return eng_->test(r); }

  // ---- collectives ----------------------------------------------------------
  sim::Task<void> barrier();
  sim::Task<void> bcast(void* buf, int count, Datatype d, int root);
  sim::Task<void> reduce(const void* sendbuf, void* recvbuf, int count,
                         Datatype d, Op op, int root);
  sim::Task<void> allreduce(const void* sendbuf, void* recvbuf, int count,
                            Datatype d, Op op);
  sim::Task<void> gather(const void* sendbuf, int scount, void* recvbuf,
                         Datatype d, int root);
  sim::Task<void> gatherv(const void* sendbuf, int scount, void* recvbuf,
                          std::span<const int> rcounts,
                          std::span<const int> displs, Datatype d, int root);
  sim::Task<void> scatter(const void* sendbuf, int count, void* recvbuf,
                          Datatype d, int root);
  sim::Task<void> scatterv(const void* sendbuf, std::span<const int> scounts,
                           std::span<const int> displs, void* recvbuf,
                           int rcount, Datatype d, int root);
  sim::Task<void> allgather(const void* sendbuf, int scount, void* recvbuf,
                            Datatype d);
  sim::Task<void> allgatherv(const void* sendbuf, int scount, void* recvbuf,
                             std::span<const int> rcounts,
                             std::span<const int> displs, Datatype d);
  sim::Task<void> alltoall(const void* sendbuf, int scount, void* recvbuf,
                           Datatype d);
  sim::Task<void> alltoallv(const void* sendbuf, std::span<const int> scounts,
                            std::span<const int> sdispls, void* recvbuf,
                            std::span<const int> rcounts,
                            std::span<const int> rdispls, Datatype d);
  sim::Task<void> reduce_scatter(const void* sendbuf, void* recvbuf,
                                 std::span<const int> counts, Datatype d,
                                 Op op);
  sim::Task<void> scan(const void* sendbuf, void* recvbuf, int count,
                       Datatype d, Op op);

  /// MPI_Comm_split.  Collective; returns the new communicator (owned by
  /// the Runtime).  Pass color < 0 for MPI_UNDEFINED (returns nullptr).
  sim::Task<Communicator*> split(int color, int key);

  // ---- ULFM-style fault tolerance (channel config ft_detector on) ---------
  // The recovery sequence after a ProcFailedError is the ULFM idiom:
  //   comm.revoke();                    // every member now errors out
  //   int ok = co_await comm.agree(0);  // consistent view of the damage
  //   Communicator* next = co_await comm.shrink();  // survivors continue
  // All three run over the PMI control plane (no message-plane traffic), so
  // they terminate even when further members die mid-protocol.

  /// MPI_Comm_revoke: marks the communicator revoked for every member.
  /// Pending and future point-to-point and collective operations on it fail
  /// with RevokedError on all members -- no rank stays blocked inside a
  /// collective whose peers have moved on to recovery.  Not itself
  /// collective: any single member may revoke.
  void revoke();
  /// True once any member has revoked this communicator.
  bool revoked() const;

  /// MPI_Comm_agree: fault-tolerant agreement.  Returns the bitwise AND of
  /// the `flag` contributions of the members that could participate;
  /// members discovered dead (obituary, or silence past the agreement
  /// deadline -- in which case this call convicts them) are excluded and
  /// the result carries the kAgreeFlagDead bit so every survivor learns a
  /// failure happened.  Terminates regardless of which members die at which
  /// protocol step: a dead decision leader is detected by deadline and the
  /// next live member takes over; the first posted decision wins and is
  /// adopted by everyone, so all survivors return the same value.  Never
  /// throws on process failure (it is the recovery primitive).
  sim::Task<int> agree(int flag);
  /// Set in agree()'s result when any member was excluded as dead.
  static constexpr int kAgreeFlagDead = 1 << 30;

  /// MPI_Comm_shrink: collective over the survivors; returns a new
  /// communicator (owned by the Runtime) containing the live members,
  /// re-ranked densely in their old relative order, on a fresh context.
  /// The decision (context id + survivor list) is agreed through the same
  /// leader protocol as agree(), so every survivor adopts the identical
  /// group even if more members die mid-shrink.
  sim::Task<Communicator*> shrink();

  /// Comm ranks with a published obituary, in comm-rank order.
  std::vector<int> failed_ranks() const;

 private:
  friend class Runtime;
  Communicator(Runtime& rt, Engine& eng, std::vector<int> group, int my_rank,
               std::uint64_t context)
      : rt_(&rt),
        eng_(&eng),
        group_(std::move(group)),
        my_rank_(my_rank),
        context_(context) {}

  /// Raw byte-level helpers in communicator coordinates.
  sim::Task<Request> isend_bytes(const void* buf, std::size_t bytes, int dst,
                                 int tag, std::uint64_t ctx);
  sim::Task<Request> irecv_bytes(void* buf, std::size_t bytes, int src,
                                 int tag, std::uint64_t ctx);
  sim::Task<void> sendrecv_bytes(const void* sbuf, std::size_t sbytes, int dst,
                                 void* rbuf, std::size_t rbytes, int src,
                                 int tag, std::uint64_t ctx);
  std::uint64_t coll_context() const noexcept { return context_ + 1; }
  /// Fault-tolerance entry checks (no-ops with the detector unarmed; pure
  /// KVS lookups otherwise, so fault-free traces stay bit-identical).
  /// ft_check: collective semantics -- error if the communicator is revoked
  /// or *any* member has a published obituary (uniform error on every
  /// member).  ft_check_peer: point-to-point semantics -- error only for a
  /// revoked communicator or a dead counterpart.
  bool ft_on() const noexcept { return eng_->ft_armed(); }
  void ft_check() const;
  void ft_check_peer(int r) const;
  /// Leader-based one-shot agreement on the PMI board: waits for
  /// `base` + ":d" to be decided, taking over as leader (and convicting
  /// silent leaders by deadline) as needed.  `kind` selects the decision
  /// computation a leader runs over the settled contribution board.  Plain
  /// values rather than a callback: a capturing std::function crossing the
  /// coroutine's suspension points miscompiles under gcc 12 (the captured
  /// strings are destroyed out of the coroutine frame).
  enum class FtDecision { kAgree, kShrink };
  sim::Task<std::string> ft_decide(std::string base, FtDecision kind);
  std::string decide_agree(const std::string& base) const;
  std::string decide_shrink(const std::string& base) const;
  /// Fresh tag for one collective invocation (advances identically on every
  /// member because collectives are called in the same order).
  int next_coll_tag() noexcept {
    coll_seq_ = (coll_seq_ + 1) & 0x3fffff;
    return static_cast<int>(coll_seq_);
  }

  Runtime* rt_;
  Engine* eng_;
  std::vector<int> group_;  // comm rank -> world rank
  int my_rank_;
  std::uint64_t context_;
  std::uint32_t coll_seq_ = 0;
  /// Invocation counters for the FT operations (advance identically on all
  /// members because the operations are called in the same order).
  std::uint32_t agree_seq_ = 0;
  std::uint32_t shrink_seq_ = 0;
};

}  // namespace mpi
