// Communicators and the typed MPI-1 API.
//
// The API is the MPI-1 subset the paper's evaluation needs (all of the NAS
// kernels run on it): blocking and nonblocking point-to-point with tag and
// source wildcards, sendrecv, and the standard collective set.  Calls are
// coroutines -- "blocking" means blocking in virtual time; nonblocking
// calls may still charge local CPU time (matching, local copies) but never
// wait on remote progress.
#pragma once

#include <span>
#include <vector>

#include "mpi/datatype.hpp"
#include "mpi/engine.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"

namespace mpi {

class Runtime;

class Communicator {
 public:
  int rank() const noexcept { return my_rank_; }
  int size() const noexcept { return static_cast<int>(group_.size()); }
  Engine& engine() const noexcept { return *eng_; }
  std::uint64_t context() const noexcept { return context_; }
  /// World rank of a communicator rank.
  int world_rank(int r) const { return group_.at(static_cast<std::size_t>(r)); }

  double wtime() const { return eng_->wtime(); }

  // ---- point-to-point -----------------------------------------------------
  sim::Task<Request> isend(const void* buf, int count, Datatype d, int dst,
                           int tag);
  sim::Task<Request> irecv(void* buf, int count, Datatype d, int src, int tag);
  sim::Task<void> send(const void* buf, int count, Datatype d, int dst,
                       int tag);
  sim::Task<void> recv(void* buf, int count, Datatype d, int src, int tag,
                       Status* status = nullptr);
  sim::Task<void> sendrecv(const void* sbuf, int scount, Datatype sd, int dst,
                           int stag, void* rbuf, int rcount, Datatype rd,
                           int src, int rtag, Status* status = nullptr);
  /// Derived-datatype transfers (MPI_Type_vector and friends): the data is
  /// packed through the dataloop engine into a contiguous wire format (a
  /// modelled copy on each side) and moved as bytes.
  sim::Task<void> send_typed(const void* buf, int count,
                             const TypeLayout& layout, int dst, int tag);
  sim::Task<void> recv_typed(void* buf, int count, const TypeLayout& layout,
                             int src, int tag, Status* status = nullptr);

  /// MPI_Probe / MPI_Iprobe: inspect a pending message's envelope without
  /// receiving it (probe blocks; iprobe is a single progress pass).
  sim::Task<Status> probe(int src, int tag) {
    return eng_->probe(src, tag, context_);
  }
  sim::Task<bool> iprobe(int src, int tag, Status* st = nullptr) {
    return eng_->iprobe(src, tag, context_, st);
  }
  sim::Task<void> wait(const Request& r) { return eng_->wait(r); }
  sim::Task<void> wait_all(std::span<const Request> rs) {
    return eng_->wait_all(rs);
  }
  sim::Task<bool> test(const Request& r) { return eng_->test(r); }

  // ---- collectives ----------------------------------------------------------
  sim::Task<void> barrier();
  sim::Task<void> bcast(void* buf, int count, Datatype d, int root);
  sim::Task<void> reduce(const void* sendbuf, void* recvbuf, int count,
                         Datatype d, Op op, int root);
  sim::Task<void> allreduce(const void* sendbuf, void* recvbuf, int count,
                            Datatype d, Op op);
  sim::Task<void> gather(const void* sendbuf, int scount, void* recvbuf,
                         Datatype d, int root);
  sim::Task<void> gatherv(const void* sendbuf, int scount, void* recvbuf,
                          std::span<const int> rcounts,
                          std::span<const int> displs, Datatype d, int root);
  sim::Task<void> scatter(const void* sendbuf, int count, void* recvbuf,
                          Datatype d, int root);
  sim::Task<void> scatterv(const void* sendbuf, std::span<const int> scounts,
                           std::span<const int> displs, void* recvbuf,
                           int rcount, Datatype d, int root);
  sim::Task<void> allgather(const void* sendbuf, int scount, void* recvbuf,
                            Datatype d);
  sim::Task<void> allgatherv(const void* sendbuf, int scount, void* recvbuf,
                             std::span<const int> rcounts,
                             std::span<const int> displs, Datatype d);
  sim::Task<void> alltoall(const void* sendbuf, int scount, void* recvbuf,
                           Datatype d);
  sim::Task<void> alltoallv(const void* sendbuf, std::span<const int> scounts,
                            std::span<const int> sdispls, void* recvbuf,
                            std::span<const int> rcounts,
                            std::span<const int> rdispls, Datatype d);
  sim::Task<void> reduce_scatter(const void* sendbuf, void* recvbuf,
                                 std::span<const int> counts, Datatype d,
                                 Op op);
  sim::Task<void> scan(const void* sendbuf, void* recvbuf, int count,
                       Datatype d, Op op);

  /// MPI_Comm_split.  Collective; returns the new communicator (owned by
  /// the Runtime).  Pass color < 0 for MPI_UNDEFINED (returns nullptr).
  sim::Task<Communicator*> split(int color, int key);

 private:
  friend class Runtime;
  Communicator(Runtime& rt, Engine& eng, std::vector<int> group, int my_rank,
               std::uint64_t context)
      : rt_(&rt),
        eng_(&eng),
        group_(std::move(group)),
        my_rank_(my_rank),
        context_(context) {}

  /// Raw byte-level helpers in communicator coordinates.
  sim::Task<Request> isend_bytes(const void* buf, std::size_t bytes, int dst,
                                 int tag, std::uint64_t ctx);
  sim::Task<Request> irecv_bytes(void* buf, std::size_t bytes, int src,
                                 int tag, std::uint64_t ctx);
  sim::Task<void> sendrecv_bytes(const void* sbuf, std::size_t sbytes, int dst,
                                 void* rbuf, std::size_t rbytes, int src,
                                 int tag, std::uint64_t ctx);
  std::uint64_t coll_context() const noexcept { return context_ + 1; }
  /// Fresh tag for one collective invocation (advances identically on every
  /// member because collectives are called in the same order).
  int next_coll_tag() noexcept {
    coll_seq_ = (coll_seq_ + 1) & 0x3fffff;
    return static_cast<int>(coll_seq_);
  }

  Runtime* rt_;
  Engine* eng_;
  std::vector<int> group_;  // comm rank -> world rank
  int my_rank_;
  std::uint64_t context_;
  std::uint32_t coll_seq_ = 0;
};

}  // namespace mpi
