// Derived datatypes: typemap-based descriptions of non-contiguous data
// (MPI_Type_contiguous / MPI_Type_vector / MPI_Type_indexed).
//
// Over a byte-stream channel, MPICH moves non-contiguous datatypes by
// packing them through a "dataloop" engine; this module is that engine.
// A TypeLayout is a normalized list of (offset, length) byte blocks plus
// an extent; typed sends pack into a contiguous staging buffer (a modelled
// copy, like any other), move bytes, and unpack at the receiver.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mpi/types.hpp"

namespace mpi {

class TypeLayout {
 public:
  /// `count` consecutive elements of a basic datatype.
  static TypeLayout contiguous(int count, Datatype base);

  /// `count` blocks of `blocklen` base elements, the starts of consecutive
  /// blocks `stride` base elements apart (MPI_Type_vector).
  static TypeLayout vector(int count, int blocklen, int stride,
                           Datatype base);

  /// Blocks of `blocklens[i]` base elements at element displacement
  /// `displs[i]` (MPI_Type_indexed).
  static TypeLayout indexed(std::span<const int> blocklens,
                            std::span<const int> displs, Datatype base);

  /// Total payload bytes of one element of this type.
  std::size_t size() const noexcept { return size_; }
  /// Distance in bytes between consecutive elements of this type.
  std::size_t extent() const noexcept { return extent_; }
  std::size_t block_count() const noexcept { return blocks_.size(); }

  /// Gathers `count` elements starting at `src` into the contiguous `dst`
  /// (which must hold count * size() bytes).
  void pack(const void* src, int count, void* dst) const;
  /// Scatters the contiguous `src` into `count` elements at `dst`.
  void unpack(const void* src, int count, void* dst) const;

 private:
  struct Block {
    std::size_t offset;
    std::size_t length;
  };

  TypeLayout(std::vector<Block> blocks, std::size_t extent);

  std::vector<Block> blocks_;  // normalized: sorted, adjacent runs merged
  std::size_t size_ = 0;
  std::size_t extent_ = 0;
};

}  // namespace mpi
