// The message engine: the ADI3 role in MPICH2's hierarchy.
//
// Owns the CH3 channel, the posted-receive and unexpected-message queues,
// tag/source matching with wildcards, and the progress loop that every
// blocking operation drives.  All ranks are single coroutines, so there is
// at most one progress_until() active per rank at a time.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "ch3/ch3.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"

namespace mpi {

struct EngineConfig {
  ch3::StackConfig stack;
  /// MPI software-stack cost charged per point-to-point call (request
  /// allocation, matching, bookkeeping).  Part of the gap between the
  /// channel's raw latency and the paper's MPI-level numbers; calibrated
  /// so the piggyback design lands at the paper's 7.4 us.
  sim::Tick per_op_overhead = sim::usec(0.52);
};

class Engine final : public ch3::EngineHooks {
 public:
  Engine(pmi::Context& ctx, const EngineConfig& cfg);
  ~Engine() override;

  sim::Task<void> init();
  sim::Task<void> finalize();

  /// Starts a send of `bytes` from `buf` to world rank `dst_world`.
  /// `src_comm_rank` is this rank's id inside the communicator (what the
  /// receiver matches on).
  sim::Task<Request> isend(const void* buf, std::size_t bytes, int dst_world,
                           int src_comm_rank, int tag, std::uint64_t context);

  /// Posts a receive; `src_comm_rank` may be kAnySource, `tag` kAnyTag.
  sim::Task<Request> irecv(void* buf, std::size_t bytes, int src_comm_rank,
                           int tag, std::uint64_t context);

  sim::Task<void> wait(const Request& r);
  sim::Task<void> wait_all(std::span<const Request> rs);
  /// One progress pass, then reports completion.
  sim::Task<bool> test(const Request& r);

  /// MPI_Iprobe: one progress pass, then reports whether a matching
  /// message is pending (without consuming it); fills `st` if so.
  sim::Task<bool> iprobe(int src_comm_rank, int tag, std::uint64_t context,
                         Status* st);
  /// MPI_Probe: blocks until a matching message is pending.
  sim::Task<Status> probe(int src_comm_rank, int tag, std::uint64_t context);

  /// Drives channel progress and deferred engine work until pred() holds.
  sim::Task<void> progress_until(const std::function<bool()>& pred);

  pmi::Context& ctx() const noexcept { return *ctx_; }
  const EngineConfig& config() const noexcept { return cfg_; }
  int world_rank() const noexcept { return ctx_->rank; }
  int world_size() const noexcept { return ctx_->size; }
  double wtime() const { return sim::to_sec(ctx_->sim().now()); }
  ch3::Ch3Channel& channel() noexcept { return *ch3_; }

  // ---- process-fault tolerance --------------------------------------------
  /// Whether the failure detector is armed (channel config ft_detector).
  /// Off: every FT hook below is a no-op and behavior is bit-identical to
  /// the pre-FT engine.
  bool ft_armed() const noexcept { return ft_armed_; }
  /// Registers a communicator's comm-rank -> world-rank map under both of
  /// its context ids, so the fault sweep can attribute posted receives
  /// (keyed by comm rank) to obituaries (keyed by world rank).  `group`
  /// must stay alive as long as the engine (communicators are never freed
  /// before finalize).
  void register_group(std::uint64_t context, const std::vector<int>* group) {
    if (!ft_armed_) return;
    groups_[context] = group;
    groups_[context + 1] = group;
  }
  /// Fails every posted receive, claimed unexpected delivery, and pending
  /// send that involves a newly obituaried rank or a newly revoked context.
  /// Cheap when nothing changed (one generation compare); called from the
  /// progress loop so blocked waiters observe deaths without new traffic.
  void ft_sweep();

  // -- EngineHooks ----------------------------------------------------------
  ch3::Sink on_eager(int src, const ch3::MatchHeader& hdr) override;
  void on_eager_complete(const ch3::Sink& sink,
                         const ch3::MatchHeader& hdr) override;
  void on_rts(int src, const ch3::MatchHeader& hdr,
              std::uint64_t token) override;
  void on_rndv_complete(std::uint64_t cookie) override;

 private:
  struct PostedRecv {
    std::uint64_t context;
    int src;  // comm rank or kAnySource
    int tag;  // or kAnyTag
    std::byte* buf;
    std::size_t cap;
    std::shared_ptr<detail::ReqState> req;
  };

  struct UnexMsg {
    ch3::MatchHeader hdr;
    int src_vc = -1;
    bool rndv = false;
    std::uint64_t token = 0;           // rendezvous: channel token
    std::vector<std::byte> data;       // eager payload buffer
    bool data_ready = false;
    std::shared_ptr<detail::ReqState> claimed;  // matched but data pending
    std::byte* claimed_buf = nullptr;
  };

  /// In-flight delivery bookkeeping, keyed by the sink cookie.
  struct Inflight {
    std::shared_ptr<detail::ReqState> req;  // matched receive, or
    UnexMsg* unex = nullptr;                // unexpected buffer
    int src_world = -1;  // sending rank, for the fault sweep
  };

  /// A started channel send the fault sweep may still have to fail
  /// (ft_armed only; pruned as requests complete).
  struct PendingSend {
    int dst_world;
    std::uint64_t context;
    std::weak_ptr<detail::ReqState> req;
  };

  static bool matches(const PostedRecv& r, const ch3::MatchHeader& h) {
    return r.context == h.context_id &&
           (r.src == kAnySource || r.src == h.src) &&
           (r.tag == kAnyTag || r.tag == h.tag);
  }
  static bool matches(std::uint64_t context, int src, int tag,
                      const ch3::MatchHeader& h) {
    return context == h.context_id && (src == kAnySource || src == h.src) &&
           (tag == kAnyTag || tag == h.tag);
  }

  /// Removes and returns the first matching posted receive, if any.
  std::unique_ptr<PostedRecv> match_posted(const ch3::MatchHeader& h);

  /// First unclaimed unexpected message matching (context, src, tag).
  UnexMsg* find_unexpected(std::uint64_t context, int src, int tag);

  static void complete_recv(detail::ReqState& st, const ch3::MatchHeader& h) {
    st.status.source = h.src;
    st.status.tag = h.tag;
    st.status.bytes = h.length;
    st.recv_done = true;
  }

  /// Runs deferred charged work (copies of claimed unexpected messages).
  sim::Task<bool> run_deferred();

  /// Marks a request failed (it now counts as completed) with the fault
  /// attribution wait/test will rethrow.
  static void fail_req(detail::ReqState& st, bool revoked, int world_rank,
                       std::string why) {
    if (st.failed || st.completed()) return;
    st.failed = true;
    st.revoked = revoked;
    st.failed_rank = world_rank;
    st.error = std::move(why);
  }
  /// Rethrows a failed request's fault as the typed MPI error.
  static void throw_if_failed(const Request& r) {
    const detail::ReqState* st = r.state();
    if (st == nullptr || !st->failed) return;
    if (st->revoked) throw RevokedError(0, st->error);
    throw ProcFailedError(st->failed_rank, st->error);
  }
  /// World rank of a newly dead source matching a posted receive's
  /// (context, comm-rank src) pair, or -1.  kAnySource receives fail when
  /// *any* group member is dead (the ULFM wildcard rule: the message might
  /// have been the corpse's).
  int dead_src_world(std::uint64_t context, int src) const;

  void check_truncation(std::size_t cap, const ch3::MatchHeader& h) const {
    if (h.length > cap) {
      throw MpiError("message truncation: incoming " +
                     std::to_string(h.length) + " bytes > posted " +
                     std::to_string(cap));
    }
  }

  pmi::Context* ctx_;
  EngineConfig cfg_;
  std::unique_ptr<ch3::Ch3Channel> ch3_;

  std::list<PostedRecv> posted_;
  std::list<std::unique_ptr<UnexMsg>> unexpected_;
  std::unordered_map<std::uint64_t, Inflight> inflight_;
  std::vector<UnexMsg*> deferred_copies_;
  std::uint64_t cookie_seq_ = 0;

  // ---- process-fault tolerance --------------------------------------------
  bool ft_armed_ = false;
  /// Last observed obituary-board + revocation-list generation; the sweep
  /// only walks the queues when it moves.
  std::uint64_t ft_gen_seen_ = 0;
  std::unordered_map<std::uint64_t, const std::vector<int>*> groups_;
  std::vector<PendingSend> pending_sends_;

  // statistics (reported by benches / examples)
 public:
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t unexpected_hits = 0;
};

}  // namespace mpi
