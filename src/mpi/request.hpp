// Nonblocking-operation requests.
#pragma once

#include <memory>
#include <string>

#include "ch3/ch3.hpp"
#include "mpi/types.hpp"

namespace mpi {

namespace detail {

struct ReqState {
  bool is_send = false;
  bool recv_done = false;
  ch3::SendReq ch3_send;  // channel flips ch3_send.done for sends
  Status status;

  // Fault-tolerance outcome (set by the engine's fault sweep): a failed
  // request counts as completed -- waiters unblock -- and wait/test raise
  // ProcFailedError or RevokedError from these fields instead of returning.
  bool failed = false;
  bool revoked = false;   // failure cause: revocation (else process death)
  int failed_rank = -1;   // world rank of the dead process, if attributable
  std::string error;

  bool completed() const noexcept {
    return failed || (is_send ? ch3_send.done : recv_done);
  }
};

}  // namespace detail

/// Handle to a pending isend/irecv.  Copyable; all copies observe the same
/// completion state.  A default-constructed Request is already complete
/// (the MPI_REQUEST_NULL analogue).
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<detail::ReqState> s) : s_(std::move(s)) {}

  bool done() const noexcept { return !s_ || s_->completed(); }
  const Status& status() const {
    static const Status kEmpty{};
    return s_ ? s_->status : kEmpty;
  }
  detail::ReqState* state() const noexcept { return s_.get(); }

 private:
  std::shared_ptr<detail::ReqState> s_;
};

}  // namespace mpi
