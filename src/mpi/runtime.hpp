// Per-rank MPI runtime: owns the engine and the communicators.
//
// Usage inside a rank coroutine:
//   mpi::Runtime rt(ctx, cfg);
//   co_await rt.init();
//   mpi::Communicator& world = rt.world();
//   ... world.send / world.allreduce / ...
//   co_await rt.finalize();
#pragma once

#include <deque>
#include <memory>

#include "mpi/comm.hpp"
#include "mpi/engine.hpp"

namespace mpi {

struct RuntimeConfig {
  ch3::StackConfig stack;
  sim::Tick per_op_overhead = sim::usec(0.52);
};

class Runtime {
 public:
  Runtime(pmi::Context& ctx, const RuntimeConfig& cfg = {})
      : ctx_(&ctx), engine_(ctx, EngineConfig{cfg.stack, cfg.per_op_overhead}) {}

  sim::Task<void> init() {
    co_await engine_.init();
    std::vector<int> group(static_cast<std::size_t>(ctx_->size));
    for (int r = 0; r < ctx_->size; ++r) group[static_cast<std::size_t>(r)] = r;
    world_ = &adopt_comm(std::move(group), ctx_->rank, /*context=*/0);
  }

  sim::Task<void> finalize() {
    // A dead member can never reach the world barrier; survivors skip it
    // (channel finalize's job-wide PMI barrier abandons obituaried ranks,
    // which is the synchronization that actually matters for teardown).
    bool skip_barrier = false;
    if (engine_.ft_armed() && ctx_->kvs->obit_version() != 0) {
      for (const int w : world_->group()) {
        if (ctx_->kvs->is_dead(w)) {
          skip_barrier = true;
          break;
        }
      }
    }
    if (!skip_barrier) co_await world_->barrier();
    co_await engine_.finalize();
  }

  Communicator& world() noexcept { return *world_; }
  Engine& engine() noexcept { return engine_; }
  pmi::Context& ctx() noexcept { return *ctx_; }

  Communicator& adopt_comm(std::vector<int> group, int my_rank,
                           std::uint64_t context) {
    comms_.push_back(std::unique_ptr<Communicator>(new Communicator(
        *this, engine_, std::move(group), my_rank, context)));
    Communicator& c = *comms_.back();
    engine_.register_group(context, &c.group());
    return c;
  }

  std::uint64_t peek_next_context() const noexcept { return next_context_; }
  void bump_next_context(std::uint64_t v) {
    if (v > next_context_) next_context_ = v;
  }

 private:
  pmi::Context* ctx_;
  Engine engine_;
  Communicator* world_ = nullptr;
  std::deque<std::unique_ptr<Communicator>> comms_;
  std::uint64_t next_context_ = 4;  // 0/1: world pt2pt + collectives
};

}  // namespace mpi
